package blinktree_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes each example binary end-to-end; they self-check
// (order violations, money conservation, invariant verification) and exit
// non-zero on failure.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; skipped in -short")
	}
	examples := map[string]string{
		"quickstart": "tree verified clean",
		"kvstore":    "money conserved",
		"inventory":  "consolidations",
		"rangescan":  "0 order violations",
		"timeseries": "tree verified clean",
	}
	for name, want := range examples {
		t.Run(name, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("%s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
