package blinktree_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"blinktree"
)

// TestCommandLineTools exercises blinkbench (figures mode), blinkcheck and
// blinkdump end-to-end against a real durable tree.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd tools are slow to build; skipped in -short")
	}
	dir := t.TempDir()
	tr, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Put([]byte{byte(i >> 8), byte(i), 'k'}, []byte("v"))
	}
	x, _ := tr.Begin()
	x.Put([]byte("txn-key"), []byte("v"))
	x.Commit()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			t.Fatalf("go %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := run("run", "./cmd/blinkcheck", "-path", dir, "-pagesize", "1024")
	if !strings.Contains(out, "ok: tree verified clean") || !strings.Contains(out, "records: 501") {
		t.Fatalf("blinkcheck output:\n%s", out)
	}

	out = run("run", "./cmd/blinkcheck", "-path", dir, "-pagesize", "1024", "-deep")
	for _, want := range []string{"ok: deep audit clean", "records: 501", "no leaks", "dense"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkcheck -deep missing %q:\n%s", want, out)
		}
	}

	out = run("run", "./cmd/blinkdump", "-path", dir, "-pagesize", "1024", "-tree", "-wal")
	if !strings.Contains(out, "write-ahead log:") || !strings.Contains(out, "tree structure") {
		t.Fatalf("blinkdump output:\n%s", out)
	}
	if !strings.Contains(out, "SMO format") && !strings.Contains(out, "BEGIN") {
		t.Fatalf("blinkdump WAL section missing records:\n%s", out)
	}

	out = run("run", "./cmd/blinkbench", "-list")
	for _, want := range []string{"figures", "E1", "E10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkbench -list missing %q:\n%s", want, out)
		}
	}

	out = run("run", "./cmd/blinkbench", "-exp", "figures")
	for _, want := range []string{"Figure 1", "Figure 4", "aborted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkbench figures missing %q:\n%s", want, out)
		}
	}

	for _, tool := range []string{"blinkbench", "blinkcheck", "blinkdump"} {
		out = run("run", "./cmd/"+tool, "-version")
		if !strings.Contains(out, "blinktree") || !strings.Contains(out, "go1") {
			t.Fatalf("%s -version output:\n%s", tool, out)
		}
	}
}

// TestSpanTraceEndToEnd runs blinkbench with span sampling, captures the
// Chrome trace JSON, and feeds it back through blinkdump -spans: the
// attribution table must come out of both ends.
func TestSpanTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd tools are slow to build; skipped in -short")
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")

	out, err := exec.Command("go", "run", "./cmd/blinkbench",
		"-lat", "-spans", "-preload", "500", "-ops", "2000",
		"-sample", "8", "-spansout", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("blinkbench -spans: %v\n%s", err, out)
	}
	for _, want := range []string{
		"tail-latency attribution", "stage coverage 100.0%",
		"p99 tail:", "p999 tail:", "slow-op flight recorder", "wrote",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("blinkbench -spans missing %q:\n%s", want, out)
		}
	}

	out, err = exec.Command("go", "run", "./cmd/blinkdump", "-spans", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("blinkdump -spans: %v\n%s", err, out)
	}
	for _, want := range []string{"tail-latency attribution", "p999 tail:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("blinkdump -spans missing %q:\n%s", want, out)
		}
	}
}
