package blinktree_test

import (
	"os/exec"
	"strings"
	"testing"

	"blinktree"
)

// TestCommandLineTools exercises blinkbench (figures mode), blinkcheck and
// blinkdump end-to-end against a real durable tree.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd tools are slow to build; skipped in -short")
	}
	dir := t.TempDir()
	tr, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Put([]byte{byte(i >> 8), byte(i), 'k'}, []byte("v"))
	}
	x, _ := tr.Begin()
	x.Put([]byte("txn-key"), []byte("v"))
	x.Commit()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			t.Fatalf("go %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := run("run", "./cmd/blinkcheck", "-path", dir, "-pagesize", "1024")
	if !strings.Contains(out, "ok: tree verified clean") || !strings.Contains(out, "records: 501") {
		t.Fatalf("blinkcheck output:\n%s", out)
	}

	out = run("run", "./cmd/blinkcheck", "-path", dir, "-pagesize", "1024", "-deep")
	for _, want := range []string{"ok: deep audit clean", "records: 501", "no leaks", "dense"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkcheck -deep missing %q:\n%s", want, out)
		}
	}

	out = run("run", "./cmd/blinkdump", "-path", dir, "-pagesize", "1024", "-tree", "-wal")
	if !strings.Contains(out, "write-ahead log:") || !strings.Contains(out, "tree structure") {
		t.Fatalf("blinkdump output:\n%s", out)
	}
	if !strings.Contains(out, "SMO format") && !strings.Contains(out, "BEGIN") {
		t.Fatalf("blinkdump WAL section missing records:\n%s", out)
	}

	out = run("run", "./cmd/blinkbench", "-list")
	for _, want := range []string{"figures", "E1", "E10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkbench -list missing %q:\n%s", want, out)
		}
	}

	out = run("run", "./cmd/blinkbench", "-exp", "figures")
	for _, want := range []string{"Figure 1", "Figure 4", "aborted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkbench figures missing %q:\n%s", want, out)
		}
	}
}
