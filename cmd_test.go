package blinktree_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"blinktree"
	"blinktree/internal/resp"
)

// TestCommandLineTools exercises blinkbench (figures mode), blinkcheck and
// blinkdump end-to-end against a real durable tree.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd tools are slow to build; skipped in -short")
	}
	dir := t.TempDir()
	tr, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Put([]byte{byte(i >> 8), byte(i), 'k'}, []byte("v"))
	}
	x, _ := tr.Begin()
	x.Put([]byte("txn-key"), []byte("v"))
	x.Commit()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			t.Fatalf("go %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := run("run", "./cmd/blinkcheck", "-path", dir, "-pagesize", "1024")
	if !strings.Contains(out, "ok: tree verified clean") || !strings.Contains(out, "records: 501") {
		t.Fatalf("blinkcheck output:\n%s", out)
	}

	out = run("run", "./cmd/blinkcheck", "-path", dir, "-pagesize", "1024", "-deep")
	for _, want := range []string{"ok: deep audit clean", "records: 501", "no leaks", "dense"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkcheck -deep missing %q:\n%s", want, out)
		}
	}

	out = run("run", "./cmd/blinkdump", "-path", dir, "-pagesize", "1024", "-tree", "-wal")
	if !strings.Contains(out, "write-ahead log:") || !strings.Contains(out, "tree structure") {
		t.Fatalf("blinkdump output:\n%s", out)
	}
	if !strings.Contains(out, "SMO format") && !strings.Contains(out, "BEGIN") {
		t.Fatalf("blinkdump WAL section missing records:\n%s", out)
	}

	out = run("run", "./cmd/blinkbench", "-list")
	for _, want := range []string{"figures", "E1", "E10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkbench -list missing %q:\n%s", want, out)
		}
	}

	out = run("run", "./cmd/blinkbench", "-exp", "figures")
	for _, want := range []string{"Figure 1", "Figure 4", "aborted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blinkbench figures missing %q:\n%s", want, out)
		}
	}

	for _, tool := range []string{"blinkbench", "blinkcheck", "blinkdump"} {
		out = run("run", "./cmd/"+tool, "-version")
		if !strings.Contains(out, "blinktree") || !strings.Contains(out, "go1") {
			t.Fatalf("%s -version output:\n%s", tool, out)
		}
	}
}

// TestBlinkdEndToEnd boots a real blinkd binary on a durable store, drives
// every protocol verb through the resp client, scrapes the admin port, then
// sends SIGTERM and asserts a clean-shutdown exit 0 — after which the store
// must reopen with the committed data intact.
func TestBlinkdEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd tools are slow to build; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "blinkd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/blinkd").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/blinkd: %v\n%s", err, out)
	}

	dir := t.TempDir()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0",
		"-path", dir, "-pagesize", "4096", "-durability", "group")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// The banner lines carry the dynamically chosen ports.
	var addr, adminAddr string
	sc := bufio.NewScanner(stderr)
	for (addr == "" || adminAddr == "") && sc.Scan() {
		line := sc.Text()
		if _, rest, ok := strings.Cut(line, " listening on "); ok {
			addr, _, _ = strings.Cut(rest, " ")
		}
		if _, rest, ok := strings.Cut(line, " admin on http://"); ok {
			adminAddr, _, _ = strings.Cut(rest, "/")
		}
	}
	if addr == "" || adminAddr == "" {
		t.Fatalf("blinkd banner did not announce addresses (addr=%q admin=%q)", addr, adminAddr)
	}
	var rest bytes.Buffer
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
	}()

	c, err := resp.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(30 * time.Second))
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get([]byte("k1")); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("GET k1 = %q, %v, %v", v, ok, err)
	}
	if del, err := c.Del([]byte("k1")); err != nil || !del {
		t.Fatalf("DEL k1 = %v, %v", del, err)
	}
	// A pipelined transaction: BEGIN, two SETs, COMMIT in one flush.
	for _, args := range [][]string{
		{"BEGIN"}, {"SET", "txn-a", "1"}, {"SET", "txn-b", "2"}, {"COMMIT"},
	} {
		if err := c.SendStr(args...); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rep, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if rep.IsError() {
			t.Fatalf("txn pipeline reply %d: %v", i, rep.Err())
		}
	}
	rep, err := c.DoStr("SCAN", "txn-", "txn-zzz", "10")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != resp.KindArray || len(rep.Array) != 4 {
		t.Fatalf("SCAN reply: kind=%v len=%d", rep.Kind, len(rep.Array))
	}
	rep, err = c.DoStr("INFO")
	if err != nil {
		t.Fatal(err)
	}
	info := string(rep.Bulk)
	for _, want := range []string{"server:blinkd", "txns_committed:1", "commands_set:"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}

	// Admin port: Prometheus series for both the tree and the server.
	body := httpGet(t, fmt.Sprintf("http://%s/metrics?format=prometheus", adminAddr))
	for _, want := range []string{"blinktree_ops_total", "blinktree_server_connections", `blinktree_server_commands_total{verb="SET"}`} {
		if !strings.Contains(body, want) {
			t.Fatalf("admin metrics missing %q", want)
		}
	}
	if body := httpGet(t, fmt.Sprintf("http://%s/healthz", adminAddr)); !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %q", body)
	}

	// SIGTERM must drain and exit 0 with a clean-shutdown banner.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd.Wait() }()
	select {
	case err := <-waitDone:
		killed = true
		if err != nil {
			t.Fatalf("blinkd exit after SIGTERM: %v\nstderr:\n%s", err, rest.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("blinkd did not exit within 60s of SIGTERM")
	}
	<-drained
	if !strings.Contains(rest.String(), "clean shutdown") {
		t.Fatalf("stderr missing clean-shutdown banner:\n%s", rest.String())
	}

	// The committed transaction must survive the restart boundary.
	tr, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if v, err := tr.Get([]byte("txn-a")); err != nil || string(v) != "1" {
		t.Fatalf("after restart Get(txn-a) = %q, %v", v, err)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	res, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSpanTraceEndToEnd runs blinkbench with span sampling, captures the
// Chrome trace JSON, and feeds it back through blinkdump -spans: the
// attribution table must come out of both ends.
func TestSpanTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd tools are slow to build; skipped in -short")
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")

	out, err := exec.Command("go", "run", "./cmd/blinkbench",
		"-lat", "-spans", "-preload", "500", "-ops", "2000",
		"-sample", "8", "-spansout", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("blinkbench -spans: %v\n%s", err, out)
	}
	for _, want := range []string{
		"tail-latency attribution", "stage coverage 100.0%",
		"p99 tail:", "p999 tail:", "slow-op flight recorder", "wrote",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("blinkbench -spans missing %q:\n%s", want, out)
		}
	}

	out, err = exec.Command("go", "run", "./cmd/blinkdump", "-spans", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("blinkdump -spans: %v\n%s", err, out)
	}
	for _, want := range []string{"tail-latency attribution", "p999 tail:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("blinkdump -spans missing %q:\n%s", want, out)
		}
	}
}
