package blinkmetrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	blinktree "blinktree"
	"blinktree/internal/obs"
)

// openTree builds an in-memory tree with full observability and some traffic.
func openTree(t *testing.T) *blinktree.Tree {
	t.Helper()
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	tr, err := blinktree.Open(blinktree.Options{
		PageSize:      512,
		Observability: &blinktree.Observability{Metrics: true, Trace: true},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	for i := 0; i < 500; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if err := tr.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < 100; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if _, err := tr.Get(k); err != nil {
			t.Fatalf("get: %v", err)
		}
		if err := tr.Delete(k); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	tr.Maintain()
	return tr
}

func TestHandlerExpvarJSON(t *testing.T) {
	tr := openTree(t)
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"stats", "scheduler", "latch", "pool", "store", "locks", "latency", "trace"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("missing top-level key %q", key)
		}
	}
	lat, ok := doc["latency"].(map[string]any)
	if !ok {
		t.Fatalf("latency section missing")
	}
	ops := lat["ops"].(map[string]any)
	ins := ops["insert"].(map[string]any)
	if ins["count"].(float64) < 400 {
		t.Errorf("insert histogram count = %v, want >= 400", ins["count"])
	}
	if ins["p50_ns"].(float64) <= 0 || ins["p999_ns"].(float64) < ins["p50_ns"].(float64) {
		t.Errorf("implausible quantiles: %v", ins)
	}
}

func TestHandlerPrometheus(t *testing.T) {
	tr := openTree(t)
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))

	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()

	// Every abort cause must be present even at zero, with dx and dd as
	// distinct causes.
	for _, series := range []string{
		`blinktree_smo_aborts_total{action="post",cause="dx"}`,
		`blinktree_smo_aborts_total{action="post",cause="dd"}`,
		`blinktree_smo_aborts_total{action="delete",cause="dx"}`,
		`blinktree_smo_aborts_total{action="delete",cause="edge"}`,
		`blinktree_ops_total{op="insert"} 500`,
		`blinktree_ops_total{op="delete"} 100`,
		`blinktree_op_latency_seconds_bucket{op="insert",le="+Inf"}`,
		`blinktree_op_latency_seconds_count{op="search"} 100`,
		`blinktree_action_latency_seconds_bucket{action="post",le="+Inf"}`,
		"# TYPE blinktree_op_latency_seconds histogram",
		"blinktree_recovered 0",
		`blinktree_recovery_total{event="records_scanned"} 0`,
		`blinktree_recovery_total{event="full_redo_retries"} 0`,
		"blinktree_recovery_torn_tail_bytes 0",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("missing series %q", series)
		}
	}

	// le buckets must be cumulative: the +Inf bucket equals the count.
	if !strings.Contains(body, "blinktree_op_latency_seconds_count{op=\"insert\"} ") {
		t.Errorf("missing insert histogram count")
	}
}

func TestHandlerTraceDump(t *testing.T) {
	tr := openTree(t)
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=trace", nil))

	events, err := obs.ReadTrace(rec.Body)
	if err != nil {
		t.Fatalf("trace dump does not round-trip: %v", err)
	}
	if len(events) == 0 {
		t.Fatalf("no trace events; splits should have enqueued posts")
	}
	var sawEnq, sawDone bool
	for _, e := range events {
		switch e.Kind {
		case obs.EvEnqueued:
			sawEnq = true
		case obs.EvCompleted:
			sawDone = true
		}
	}
	if !sawEnq || !sawDone {
		t.Errorf("missing lifecycle kinds: enqueued=%v completed=%v", sawEnq, sawDone)
	}
}

func TestWriteExpvarDisabledTree(t *testing.T) {
	if obs.ForceTrace {
		t.Skip("obstrace build forces metrics on for every tree")
	}
	tr, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer tr.Close()
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}

	var sb strings.Builder
	if err := WriteExpvar(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("expvar: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := doc["latency"]; ok {
		t.Errorf("latency section present on a tree without metrics")
	}
	sb.Reset()
	if err := WritePrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("prometheus: %v", err)
	}
	if !strings.Contains(sb.String(), `blinktree_smo_aborts_total{action="post",cause="dd"} 0`) {
		t.Errorf("zero-valued abort series must still be emitted")
	}
}

// TestPrometheusHeadersEveryFamily asserts that EVERY family appearing as a
// sample line in the Prometheus exposition carries both a # HELP and a
// # TYPE header, for a tree with metrics enabled so the Obs-gated sections
// are exercised too. Histogram families export _bucket/_sum/_count samples
// under the base family's headers.
func TestPrometheusHeadersEveryFamily(t *testing.T) {
	tr := openTree(t)
	var sb strings.Builder
	if err := WritePrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("prometheus: %v", err)
	}

	help := map[string]bool{}
	typ := map[string]string{}
	var families []string
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("malformed HELP line %q (missing help text?)", line)
			}
			help[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typ[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		if name == "" {
			t.Fatalf("sample line with empty family: %q", line)
		}
		families = append(families, name)
	}
	if len(families) == 0 {
		t.Fatal("no sample lines in exposition")
	}

	// base maps a sample family to the family its headers are declared
	// under: histogram samples use the _bucket/_sum/_count suffixes.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && typ[trimmed] == "histogram" {
				return trimmed
			}
		}
		return name
	}
	seen := map[string]bool{}
	for _, name := range families {
		b := base(name)
		if seen[b] {
			continue
		}
		seen[b] = true
		if !help[b] {
			t.Errorf("family %q (sample %q) has no # HELP header", b, name)
		}
		if typ[b] == "" {
			t.Errorf("family %q (sample %q) has no # TYPE header", b, name)
		}
	}

	// The wal_group families named by the runbook must all be declared.
	for _, f := range []string{
		"blinktree_wal_group_total", "blinktree_wal_group_batch_max",
		"blinktree_wal_group_force_seconds", "blinktree_wal_group_ack_seconds",
		"blinktree_wal_group_batch_commits",
	} {
		if !help[f] || typ[f] == "" {
			t.Errorf("wal group family %q missing headers (help=%v type=%q)", f, help[f], typ[f])
		}
	}
}

// openSpanTree builds an in-memory tree sampling every operation's span.
func openSpanTree(t *testing.T) *blinktree.Tree {
	t.Helper()
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	tr, err := blinktree.Open(blinktree.Options{
		PageSize:      512,
		Observability: &blinktree.Observability{Spans: true, SampleEvery: 1},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	for i := 0; i < 200; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if err := tr.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if _, err := tr.Get(k); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	return tr
}

func TestHandlerSpansEndpoint(t *testing.T) {
	tr := openSpanTree(t)
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=spans", nil))

	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	spans, err := obs.ReadChromeTrace(rec.Body)
	if err != nil {
		t.Fatalf("spans endpoint does not round-trip: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans from a tree sampling every operation")
	}
	for _, sp := range spans {
		if sp.Total <= 0 {
			t.Errorf("span %d has non-positive total %v", sp.Seq, sp.Total)
		}
	}
}

// TestPrometheusSpanSeries checks the span-derived families: stage latency
// histograms, the sampled/slow counters, and the threshold gauge.
func TestPrometheusSpanSeries(t *testing.T) {
	tr := openSpanTree(t)
	var sb strings.Builder
	if err := WritePrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("prometheus: %v", err)
	}
	body := sb.String()
	for _, series := range []string{
		"# TYPE blinktree_stage_latency_seconds histogram",
		`blinktree_stage_latency_seconds_bucket{stage="traverse",le="+Inf"}`,
		`blinktree_stage_latency_seconds_bucket{stage="wal-append",le="+Inf"}`,
		`blinktree_spans_total{event="sampled"}`,
		`blinktree_spans_total{event="slow"}`,
		"blinktree_slow_op_threshold_seconds",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("missing series %q", series)
		}
	}
	if strings.Contains(body, `blinktree_spans_total{event="sampled"} 0`) {
		t.Errorf("sampled span counter is zero with SampleEvery=1")
	}
}

// TestPrometheusBuildInfo checks the build_info gauge is exported even for a
// tree with observability disabled.
func TestPrometheusBuildInfo(t *testing.T) {
	tr, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer tr.Close()
	var sb strings.Builder
	if err := WritePrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("prometheus: %v", err)
	}
	body := sb.String()
	if !strings.Contains(body, "# TYPE blinktree_build_info gauge") {
		t.Errorf("missing build_info TYPE header")
	}
	if !strings.Contains(body, `blinktree_build_info{version="`) || !strings.Contains(body, "} 1\n") {
		t.Errorf("missing build_info sample: %q", body[:200])
	}
}

// TestPrometheusRecoveredTree reopens a durable tree and checks that the
// recovery series reflect the replay (Recovered gauge flips to 1 and the
// scan counter is nonzero).
func TestPrometheusRecoveredTree(t *testing.T) {
	dir := t.TempDir()
	tr, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 50; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if err := tr.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	tr, err = blinktree.Open(blinktree.Options{Path: dir, PageSize: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer tr.Close()

	var sb strings.Builder
	if err := WritePrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("prometheus: %v", err)
	}
	body := sb.String()
	if !strings.Contains(body, "blinktree_recovered 1") {
		t.Errorf("recovered gauge not set after reopen")
	}
	if strings.Contains(body, `blinktree_recovery_total{event="records_scanned"} 0`) {
		t.Errorf("records_scanned is zero after replaying a non-empty log")
	}
}

func TestPrometheusBulkLoadFamily(t *testing.T) {
	tr, err := blinktree.Open(blinktree.Options{PageSize: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer tr.Close()
	i := 0
	next := func() ([]byte, []byte, bool) {
		if i >= 4000 {
			return nil, nil, false
		}
		k := []byte{byte(i >> 8), byte(i)}
		i++
		return k, k, true
	}
	if err := tr.BulkLoadParallel(next, 0.85, 4); err != nil {
		t.Fatalf("bulk load: %v", err)
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("prometheus: %v", err)
	}
	body := sb.String()
	for _, series := range []string{
		`blinktree_bulkload_total{event="pages"}`,
		`blinktree_bulkload_total{event="chunks"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("missing series %q", series)
		}
	}
	if strings.Contains(body, `blinktree_bulkload_total{event="pages"} 0`) {
		t.Errorf("bulkload pages counter is zero after a load")
	}

	// The expvar document carries the same counters inside the stats block.
	m := tr.Snapshot()
	doc := ExpvarDoc(m)
	raw, err := json.Marshal(doc["stats"])
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	var stats map[string]any
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("unmarshal stats: %v", err)
	}
	if v, ok := stats["BulkLoadPages"].(float64); !ok || v == 0 {
		t.Errorf("expvar stats BulkLoadPages = %v", stats["BulkLoadPages"])
	}
	if v, ok := stats["BulkLoadChunks"].(float64); !ok || v == 0 {
		t.Errorf("expvar stats BulkLoadChunks = %v", stats["BulkLoadChunks"])
	}
}
