package blinkmetrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	blinktree "blinktree"
	"blinktree/internal/obs"
)

// openTree builds an in-memory tree with full observability and some traffic.
func openTree(t *testing.T) *blinktree.Tree {
	t.Helper()
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	tr, err := blinktree.Open(blinktree.Options{
		PageSize:      512,
		Observability: &blinktree.Observability{Metrics: true, Trace: true},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	for i := 0; i < 500; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if err := tr.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < 100; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if _, err := tr.Get(k); err != nil {
			t.Fatalf("get: %v", err)
		}
		if err := tr.Delete(k); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	tr.Maintain()
	return tr
}

func TestHandlerExpvarJSON(t *testing.T) {
	tr := openTree(t)
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"stats", "scheduler", "latch", "pool", "store", "locks", "latency", "trace"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("missing top-level key %q", key)
		}
	}
	lat, ok := doc["latency"].(map[string]any)
	if !ok {
		t.Fatalf("latency section missing")
	}
	ops := lat["ops"].(map[string]any)
	ins := ops["insert"].(map[string]any)
	if ins["count"].(float64) < 400 {
		t.Errorf("insert histogram count = %v, want >= 400", ins["count"])
	}
	if ins["p50_ns"].(float64) <= 0 || ins["p999_ns"].(float64) < ins["p50_ns"].(float64) {
		t.Errorf("implausible quantiles: %v", ins)
	}
}

func TestHandlerPrometheus(t *testing.T) {
	tr := openTree(t)
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))

	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()

	// Every abort cause must be present even at zero, with dx and dd as
	// distinct causes.
	for _, series := range []string{
		`blinktree_smo_aborts_total{action="post",cause="dx"}`,
		`blinktree_smo_aborts_total{action="post",cause="dd"}`,
		`blinktree_smo_aborts_total{action="delete",cause="dx"}`,
		`blinktree_smo_aborts_total{action="delete",cause="edge"}`,
		`blinktree_ops_total{op="insert"} 500`,
		`blinktree_ops_total{op="delete"} 100`,
		`blinktree_op_latency_seconds_bucket{op="insert",le="+Inf"}`,
		`blinktree_op_latency_seconds_count{op="search"} 100`,
		`blinktree_action_latency_seconds_bucket{action="post",le="+Inf"}`,
		"# TYPE blinktree_op_latency_seconds histogram",
		"blinktree_recovered 0",
		`blinktree_recovery_total{event="records_scanned"} 0`,
		`blinktree_recovery_total{event="full_redo_retries"} 0`,
		"blinktree_recovery_torn_tail_bytes 0",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("missing series %q", series)
		}
	}

	// le buckets must be cumulative: the +Inf bucket equals the count.
	if !strings.Contains(body, "blinktree_op_latency_seconds_count{op=\"insert\"} ") {
		t.Errorf("missing insert histogram count")
	}
}

func TestHandlerTraceDump(t *testing.T) {
	tr := openTree(t)
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=trace", nil))

	events, err := obs.ReadTrace(rec.Body)
	if err != nil {
		t.Fatalf("trace dump does not round-trip: %v", err)
	}
	if len(events) == 0 {
		t.Fatalf("no trace events; splits should have enqueued posts")
	}
	var sawEnq, sawDone bool
	for _, e := range events {
		switch e.Kind {
		case obs.EvEnqueued:
			sawEnq = true
		case obs.EvCompleted:
			sawDone = true
		}
	}
	if !sawEnq || !sawDone {
		t.Errorf("missing lifecycle kinds: enqueued=%v completed=%v", sawEnq, sawDone)
	}
}

func TestWriteExpvarDisabledTree(t *testing.T) {
	if obs.ForceTrace {
		t.Skip("obstrace build forces metrics on for every tree")
	}
	tr, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer tr.Close()
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}

	var sb strings.Builder
	if err := WriteExpvar(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("expvar: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := doc["latency"]; ok {
		t.Errorf("latency section present on a tree without metrics")
	}
	sb.Reset()
	if err := WritePrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("prometheus: %v", err)
	}
	if !strings.Contains(sb.String(), `blinktree_smo_aborts_total{action="post",cause="dd"} 0`) {
		t.Errorf("zero-valued abort series must still be emitted")
	}
}

// TestPrometheusRecoveredTree reopens a durable tree and checks that the
// recovery series reflect the replay (Recovered gauge flips to 1 and the
// scan counter is nonzero).
func TestPrometheusRecoveredTree(t *testing.T) {
	dir := t.TempDir()
	tr, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 50; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if err := tr.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	tr, err = blinktree.Open(blinktree.Options{Path: dir, PageSize: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer tr.Close()

	var sb strings.Builder
	if err := WritePrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatalf("prometheus: %v", err)
	}
	body := sb.String()
	if !strings.Contains(body, "blinktree_recovered 1") {
		t.Errorf("recovered gauge not set after reopen")
	}
	if strings.Contains(body, `blinktree_recovery_total{event="records_scanned"} 0`) {
		t.Errorf("records_scanned is zero after replaying a non-empty log")
	}
}
