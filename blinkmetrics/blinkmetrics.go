// Package blinkmetrics exports a tree's observability snapshot over HTTP.
//
// Two wire formats are supported from the same handler:
//
//   - expvar-compatible JSON (the default): one document with every counter
//     family plus, when metrics are enabled, per-class latency summaries
//     (count, mean, p50/p99/p999).
//   - Prometheus text exposition (?format=prometheus): counters, gauges and
//     cumulative le-bucket histograms in seconds.
//
// The package reads only through the public blinktree API; a *blinktree.Tree
// is a Source as-is:
//
//	http.Handle("/metrics", blinkmetrics.Handler(tree))
package blinkmetrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"

	blinktree "blinktree"
	"blinktree/internal/buildinfo"
	"blinktree/internal/obs"
)

// Source supplies snapshots to the handler. *blinktree.Tree implements it.
type Source interface {
	Snapshot() blinktree.Metrics
	TraceEvents() []blinktree.TraceEvent
	Spans() []blinktree.OpTrace
}

// Handler serves src's current snapshot. The format is chosen by the
// "format" query parameter: "prometheus" (or "prom") for text exposition,
// "trace" for the JSON Lines trace dump, "spans" for the sampled-span ring
// as Chrome trace-event JSON (loadable in Perfetto / about:tracing),
// anything else for expvar JSON.
func Handler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "prometheus", "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = WritePrometheus(w, src.Snapshot())
		case "trace":
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = obs.WriteTrace(w, src.TraceEvents())
		case "spans":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = obs.WriteChromeTrace(w, src.Spans())
		default:
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = WriteExpvar(w, src.Snapshot())
		}
	})
}

// Publish registers src under name with the process expvar registry, so the
// snapshot appears in /debug/vars alongside the runtime's variables.
func Publish(name string, src Source) {
	expvar.Publish(name, expvar.Func(func() any { return ExpvarDoc(src.Snapshot()) }))
}

// ExpvarDoc builds the JSON document WriteExpvar emits. Map keys marshal in
// sorted order, so the output is deterministic for a given snapshot.
func ExpvarDoc(m blinktree.Metrics) map[string]any {
	doc := map[string]any{
		"stats":     m.Stats,
		"scheduler": m.Sched,
		"latch":     m.Latch,
		"pool":      m.Pool,
		"store":     m.Store,
		"locks":     m.Locks,
		"height":    m.Height,
		"wal": map[string]uint64{
			"appends":              m.LogAppends,
			"forces":               m.LogForces,
			"group_commits":        m.WALGroup.Commits,
			"group_immediate_acks": m.WALGroup.ImmediateAcks,
			"group_forces":         m.WALGroup.Forces,
			"group_max_batch":      m.WALGroup.MaxBatch,
		},
		"recovery": m.Recovery,
	}
	if m.Obs == nil {
		return doc
	}
	ops := map[string]any{}
	for op := obs.OpSearch; op < obs.OpCount; op++ {
		ops[op.String()] = histSummary(m.Obs.Ops[op])
	}
	actions := map[string]any{}
	for a := obs.ActPost; a < obs.ActCount; a++ {
		actions[a.String()] = histSummary(m.Obs.Actions[a])
	}
	doc["latency"] = map[string]any{
		"ops":         ops,
		"actions":     actions,
		"page_load":   histSummary(m.Obs.PageLoad),
		"writeback":   histSummary(m.Obs.WriteBack),
		"log_append":  histSummary(m.Obs.LogAppend),
		"log_flush":   histSummary(m.Obs.LogFlush),
		"lock_wait":   histSummary(m.Obs.LockWait),
		"group_force": histSummary(m.Obs.GroupForce),
		"group_ack":   histSummary(m.Obs.GroupAck),
	}
	doc["trace"] = map[string]uint64{
		"emitted":          m.Obs.TraceSeq,
		"dropped":          m.Obs.TraceDropped,
		"latch_long_waits": m.Obs.LatchLongWaits,
	}
	stages := map[string]any{}
	for st := obs.SpanStage(0); st < obs.StageCount; st++ {
		stages[st.String()] = histSummary(m.Obs.SpanStages[st])
	}
	doc["spans"] = map[string]any{
		"sampled":           m.Obs.SpansSampled,
		"slow":              m.Obs.SlowOps,
		"slow_threshold_ns": m.Obs.SlowOpThresholdNS,
		"stages":            stages,
	}
	doc["combining"] = map[string]any{
		"wait":      histSummary(m.Obs.CombineWait),
		"batch_sum": m.Obs.CombineBatchSum,
		"batch_cnt": m.Obs.CombineBatchCount,
		"batch_max": m.Obs.CombineBatchMax,
	}
	return doc
}

// histSummary condenses one histogram into the JSON latency summary.
func histSummary(h obs.HistogramSnapshot) map[string]any {
	return map[string]any{
		"count":   h.Count,
		"sum_ns":  h.Sum,
		"mean_ns": int64(h.Mean()),
		"p50_ns":  int64(h.Quantile(0.50)),
		"p99_ns":  int64(h.Quantile(0.99)),
		"p999_ns": int64(h.Quantile(0.999)),
	}
}

// WriteExpvar writes the expvar-compatible JSON document for m.
func WriteExpvar(w io.Writer, m blinktree.Metrics) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ExpvarDoc(m))
}

// promWriter accumulates Prometheus text exposition lines, remembering the
// first write error so call sites stay linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// hist emits one histogram in Prometheus form (cumulative le buckets, in
// seconds) with a fixed label.
func (p *promWriter) hist(name, labelKey, labelVal string, h obs.HistogramSnapshot) {
	label := ""
	if labelKey != "" {
		label = labelKey + `="` + labelVal + `",`
	}
	var cum uint64
	for i := 0; i < obs.HistBuckets-1; i++ {
		cum += h.Buckets[i]
		le := strconv.FormatFloat(h.BucketBound(i).Seconds(), 'g', -1, 64)
		p.printf("%s_bucket{%sle=\"%s\"} %d\n", name, label, le, cum)
	}
	p.printf("%s_bucket{%sle=\"+Inf\"} %d\n", name, label, h.Count)
	flabel := ""
	if labelKey != "" {
		flabel = "{" + labelKey + `="` + labelVal + `"}`
	}
	p.printf("%s_sum%s %g\n", name, flabel, float64(h.Sum)/1e9)
	p.printf("%s_count%s %d\n", name, flabel, h.Count)
}

// WritePrometheus writes m in Prometheus text exposition format. Every
// series is emitted even at zero, so scrapes see a stable set and the SMO
// abort causes (dx vs dd vs identity vs edge) are always distinguishable.
func WritePrometheus(w io.Writer, m blinktree.Metrics) error {
	p := &promWriter{w: w}
	s := m.Stats

	p.header("blinktree_build_info", "Build metadata; the value is always 1.", "gauge")
	p.printf("blinktree_build_info{version=%q,goversion=%q,tags=%q,revision=%q} 1\n",
		buildinfo.Version(), buildinfo.GoVersion(), buildinfo.Tags(), buildinfo.Revision())

	p.header("blinktree_ops_total", "Completed operations by class.", "counter")
	for _, v := range []struct {
		op string
		n  uint64
	}{
		{"search", s.Searches}, {"insert", s.Inserts}, {"update", s.Updates},
		{"delete", s.Deletes}, {"scan", s.Scans},
	} {
		p.printf("blinktree_ops_total{op=%q} %d\n", v.op, v.n)
	}

	p.header("blinktree_traversal_total", "Traversal behaviour.", "counter")
	p.printf("blinktree_traversal_total{event=\"side\"} %d\n", s.SideTraversals)
	p.printf("blinktree_traversal_total{event=\"restart\"} %d\n", s.Restarts)
	p.printf("blinktree_traversal_total{event=\"exhausted\"} %d\n", s.TraverseExhausted)

	p.header("blinktree_optread_total", "Optimistic read-path traversal outcomes.", "counter")
	for _, v := range []struct {
		event string
		n     uint64
	}{
		{"attempt", s.OptReadAttempts}, {"restart", s.OptReadRestarts},
		{"fallback", s.OptReadFallbacks},
	} {
		p.printf("blinktree_optread_total{event=%q} %d\n", v.event, v.n)
	}

	p.header("blinktree_smo_total", "Structure modifications completed by kind.", "counter")
	for _, v := range []struct {
		kind string
		n    uint64
	}{
		{"split", s.Splits}, {"post", s.PostsDone},
		{"leaf_consolidate", s.LeafConsolidated},
		{"index_consolidate", s.IndexConsolidated},
		{"grow", s.Grows}, {"shrink", s.Shrinks},
	} {
		p.printf("blinktree_smo_total{kind=%q} %d\n", v.kind, v.n)
	}

	// Abort causes are split so D_X (global index-delete state) and D_D
	// (per-parent data-delete state) remain distinguishable downstream.
	p.header("blinktree_smo_aborts_total", "Maintenance actions abandoned, by action and cause.", "counter")
	for _, v := range []struct {
		action, cause string
		n             uint64
	}{
		{"post", "dx", s.PostsAbortDX},
		{"post", "dd", s.PostsAbortDD},
		{"post", "identity", s.PostsAbortID},
		{"delete", "dx", s.DeleteAbortDX},
		{"delete", "dd", 0}, // consolidation never aborts on D_D; kept for a stable series set
		{"delete", "identity", s.DeleteAbortID},
		{"delete", "edge", s.DeleteAbortEdge},
	} {
		p.printf("blinktree_smo_aborts_total{action=%q,cause=%q} %d\n", v.action, v.cause, v.n)
	}

	p.header("blinktree_smo_skips_total", "Consolidations skipped (victim refilled or does not fit).", "counter")
	p.printf("blinktree_smo_skips_total %d\n", s.DeleteSkipFit)

	p.header("blinktree_scheduler_total", "Maintenance scheduler activity.", "counter")
	for _, v := range []struct {
		event string
		n     uint64
	}{
		{"enqueued_post", s.PostsEnqueued}, {"enqueued_delete", s.DeletesEnqueued},
		{"processed", s.TodoProcessed}, {"requeued", s.PostsRequeued},
		{"inline_assist", s.TodoInlineAssists}, {"dedup_hit", s.TodoDedupHits},
		{"drain_bailout", s.DrainBailouts},
	} {
		p.printf("blinktree_scheduler_total{event=%q} %d\n", v.event, v.n)
	}

	p.header("blinktree_combine_total", "Hot-leaf operation-combining activity.", "counter")
	for _, v := range []struct {
		event string
		n     uint64
	}{
		{"publish", s.CombinePublishes}, {"drained", s.CombineDrained},
		{"retry", s.CombineRetries}, {"batch", s.CombineBatches},
	} {
		p.printf("blinktree_combine_total{event=%q} %d\n", v.event, v.n)
	}

	p.header("blinktree_append_fastpath_total", "Right-edge append fast-path outcomes.", "counter")
	p.printf("blinktree_append_fastpath_total{event=\"hit\"} %d\n", s.AppendFastHits)
	p.printf("blinktree_append_fastpath_total{event=\"miss\"} %d\n", s.AppendFastMisses)

	p.header("blinktree_bulkload_total", "Bulk-load build activity.", "counter")
	p.printf("blinktree_bulkload_total{event=\"pages\"} %d\n", s.BulkLoadPages)
	p.printf("blinktree_bulkload_total{event=\"chunks\"} %d\n", s.BulkLoadChunks)

	p.header("blinktree_txn_total", "Transaction outcomes and §2.4 lock/latch interaction.", "counter")
	for _, v := range []struct {
		event string
		n     uint64
	}{
		{"commit", s.TxnCommits}, {"abort", s.TxnAborts},
		{"abort_dx", s.TxnAbortsDX}, {"deadlock", s.TxnDeadlocks},
		{"nowait_denied", s.NoWaitDenied}, {"relatch", s.Relatches},
		{"relatch_fast", s.RelatchFast},
	} {
		p.printf("blinktree_txn_total{event=%q} %d\n", v.event, v.n)
	}

	p.header("blinktree_latch_acquire_total", "Granted latch requests by mode.", "counter")
	p.printf("blinktree_latch_acquire_total{mode=\"shared\"} %d\n", m.Latch.AcquireShared)
	p.printf("blinktree_latch_acquire_total{mode=\"update\"} %d\n", m.Latch.AcquireUpdate)
	p.printf("blinktree_latch_acquire_total{mode=\"exclusive\"} %d\n", m.Latch.AcquireExclusive)
	p.header("blinktree_latch_waits_total", "Blocking latch acquisitions.", "counter")
	p.printf("blinktree_latch_waits_total %d\n", m.Latch.Waits)
	p.header("blinktree_latch_wait_seconds_total", "Total time spent blocked on latches.", "counter")
	p.printf("blinktree_latch_wait_seconds_total %g\n", float64(m.Latch.WaitNanos)/1e9)
	p.header("blinktree_latch_long_waits_total", "Latch waits at or above the configured threshold.", "counter")
	p.printf("blinktree_latch_long_waits_total %d\n", m.Latch.LongWaits)
	p.header("blinktree_latch_try_failures_total", "TryAcquire refusals.", "counter")
	p.printf("blinktree_latch_try_failures_total %d\n", m.Latch.TryFailures)

	p.header("blinktree_lock_total", "Record lock manager activity.", "counter")
	for _, v := range []struct {
		event string
		n     uint64
	}{
		{"grant", m.Locks.Grants}, {"immediate", m.Locks.ImmediateOK},
		{"nowait_denied", m.Locks.NoWaitDenials}, {"wait", m.Locks.Waits},
		{"deadlock", m.Locks.Deadlocks},
	} {
		p.printf("blinktree_lock_total{event=%q} %d\n", v.event, v.n)
	}

	p.header("blinktree_pool_total", "Buffer pool activity.", "counter")
	for _, v := range []struct {
		event string
		n     uint64
	}{
		{"hit", m.Pool.Hits}, {"miss", m.Pool.Misses},
		{"eviction", m.Pool.Evictions}, {"writeback", m.Pool.WriteBacks},
	} {
		p.printf("blinktree_pool_total{event=%q} %d\n", v.event, v.n)
	}
	p.header("blinktree_pool_resident_pages", "Pages resident in the buffer pool.", "gauge")
	p.printf("blinktree_pool_resident_pages %d\n", m.Pool.Resident)

	p.header("blinktree_store_total", "Page store I/O.", "counter")
	for _, v := range []struct {
		event string
		n     uint64
	}{
		{"read", m.Store.Reads}, {"write", m.Store.Writes},
		{"alloc", m.Store.Allocs}, {"dealloc", m.Store.Deallocs},
	} {
		p.printf("blinktree_store_total{event=%q} %d\n", v.event, v.n)
	}
	p.header("blinktree_store_live_pages", "Currently allocated pages.", "gauge")
	p.printf("blinktree_store_live_pages %d\n", m.Store.LivePages)

	p.header("blinktree_wal_total", "Write-ahead log activity.", "counter")
	p.printf("blinktree_wal_total{event=\"append\"} %d\n", m.LogAppends)
	p.printf("blinktree_wal_total{event=\"force\"} %d\n", m.LogForces)

	g := m.WALGroup
	p.header("blinktree_wal_group_total", "Commit pipeline activity (group/periodic/async durability).", "counter")
	p.printf("blinktree_wal_group_total{event=\"commit\"} %d\n", g.Commits)
	p.printf("blinktree_wal_group_total{event=\"immediate_ack\"} %d\n", g.ImmediateAcks)
	p.printf("blinktree_wal_group_total{event=\"force\"} %d\n", g.Forces)
	p.header("blinktree_wal_group_batch_max", "Largest number of commits acknowledged by one coalesced force.", "gauge")
	p.printf("blinktree_wal_group_batch_max %d\n", g.MaxBatch)

	p.header("blinktree_height", "Current root level.", "gauge")
	p.printf("blinktree_height %d\n", m.Height)

	// Recovery counters are fixed at open time; exporting them as a stable
	// series set lets dashboards alert on torn pages or full-redo retries
	// after a crash-restart.
	rs := m.Recovery
	p.header("blinktree_recovered", "1 when the last open replayed a log, 0 for a fresh start.", "gauge")
	recovered := 0
	if rs.Recovered {
		recovered = 1
	}
	p.printf("blinktree_recovered %d\n", recovered)
	p.header("blinktree_recovery_total", "Work performed by crash recovery at the last open.", "counter")
	for _, v := range []struct {
		event string
		n     int
	}{
		{"records_scanned", rs.RecordsScanned},
		{"smo_redone", rs.SMOsRedone},
		{"recop_redone", rs.RecOpsRedone},
		{"skipped_by_lsn", rs.SkippedByLSN},
		{"images_applied", rs.ImagesApplied},
		{"allocs_replayed", rs.AllocsReplayed},
		{"deallocs_replayed", rs.DeallocsReplayed},
		{"bulk_chunks_skipped", rs.BulkChunksSkipped},
		{"losers_undone", rs.LosersUndone},
		{"corrupt_pages", rs.CorruptPages},
		{"full_redo_retries", rs.FullRedoRetries},
	} {
		p.printf("blinktree_recovery_total{event=%q} %d\n", v.event, v.n)
	}
	p.header("blinktree_recovery_torn_tail_bytes", "Trailing bytes past the last valid WAL frame at the last open.", "gauge")
	p.printf("blinktree_recovery_torn_tail_bytes %d\n", rs.TornTailBytes)

	if m.Obs != nil {
		p.header("blinktree_op_latency_seconds", "Operation latency by class.", "histogram")
		for op := obs.OpSearch; op < obs.OpCount; op++ {
			p.hist("blinktree_op_latency_seconds", "op", op.String(), m.Obs.Ops[op])
		}
		p.header("blinktree_action_latency_seconds", "Maintenance action processing latency by kind.", "histogram")
		for a := obs.ActPost; a < obs.ActCount; a++ {
			p.hist("blinktree_action_latency_seconds", "action", a.String(), m.Obs.Actions[a])
		}
		p.header("blinktree_io_latency_seconds", "Buffer pool and WAL I/O latency.", "histogram")
		p.hist("blinktree_io_latency_seconds", "io", "page_load", m.Obs.PageLoad)
		p.hist("blinktree_io_latency_seconds", "io", "writeback", m.Obs.WriteBack)
		p.hist("blinktree_io_latency_seconds", "io", "log_append", m.Obs.LogAppend)
		p.hist("blinktree_io_latency_seconds", "io", "log_flush", m.Obs.LogFlush)
		p.header("blinktree_lock_wait_seconds", "Blocking record-lock wait latency.", "histogram")
		p.hist("blinktree_lock_wait_seconds", "", "", m.Obs.LockWait)
		p.header("blinktree_wal_group_force_seconds", "Coalesced commit-force wall time on the log-writer.", "histogram")
		p.hist("blinktree_wal_group_force_seconds", "", "", m.Obs.GroupForce)
		p.header("blinktree_wal_group_ack_seconds", "Parked-commit delay from enqueue to acknowledgement.", "histogram")
		p.hist("blinktree_wal_group_ack_seconds", "", "", m.Obs.GroupAck)
		p.header("blinktree_wal_group_batch_commits", "Commits per counted coalesced force (sum over count).", "counter")
		p.printf("blinktree_wal_group_batch_commits{stat=\"sum\"} %d\n", m.Obs.GroupBatchSum)
		p.printf("blinktree_wal_group_batch_commits{stat=\"count\"} %d\n", m.Obs.GroupBatchCount)
		p.header("blinktree_combine_wait_seconds", "Publisher delay from buffer publish to drained result.", "histogram")
		p.hist("blinktree_combine_wait_seconds", "", "", m.Obs.CombineWait)
		p.header("blinktree_combine_batch_ops", "Operations per counted combining drain (sum over count).", "counter")
		p.printf("blinktree_combine_batch_ops{stat=\"sum\"} %d\n", m.Obs.CombineBatchSum)
		p.printf("blinktree_combine_batch_ops{stat=\"count\"} %d\n", m.Obs.CombineBatchCount)
		p.header("blinktree_combine_batch_max", "Largest number of operations applied by one combining drain.", "gauge")
		p.printf("blinktree_combine_batch_max %d\n", m.Obs.CombineBatchMax)

		p.header("blinktree_trace_events_total", "Trace events emitted and dropped by the bounded ring.", "counter")
		p.printf("blinktree_trace_events_total{state=\"emitted\"} %d\n", m.Obs.TraceSeq)
		p.printf("blinktree_trace_events_total{state=\"dropped\"} %d\n", m.Obs.TraceDropped)

		p.header("blinktree_stage_latency_seconds", "Per-stage time within sampled operation spans.", "histogram")
		for st := obs.SpanStage(0); st < obs.StageCount; st++ {
			p.hist("blinktree_stage_latency_seconds", "stage", st.String(), m.Obs.SpanStages[st])
		}
		p.header("blinktree_spans_total", "Sampled spans and slow-op flight-recorder captures.", "counter")
		p.printf("blinktree_spans_total{event=\"sampled\"} %d\n", m.Obs.SpansSampled)
		p.printf("blinktree_spans_total{event=\"slow\"} %d\n", m.Obs.SlowOps)
		p.header("blinktree_slow_op_threshold_seconds", "Current slow-op flight-recorder threshold.", "gauge")
		p.printf("blinktree_slow_op_threshold_seconds %g\n", float64(m.Obs.SlowOpThresholdNS)/1e9)
	}

	return p.err
}
