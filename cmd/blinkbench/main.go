// Command blinkbench regenerates the experiments in DESIGN.md/EXPERIMENTS.md:
// every figure of the paper (as an executable walkthrough) and every
// quantitative claim (as a benchmark table against the comparator
// algorithms).
//
// Usage:
//
//	blinkbench -exp all                 # run everything at quick scale
//	blinkbench -exp E2,E3 -scale full   # specific experiments, full scale
//	blinkbench -exp figures             # Figures 1-4 walkthrough
//	blinkbench -list                    # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blinktree/internal/bench"
	"blinktree/internal/core"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiments to run: all, figures, or comma-separated IDs (E1..E11)")
		scale   = flag.String("scale", "quick", "quick or full")
		preload = flag.Int("preload", 0, "override preload record count")
		ops     = flag.Int("ops", 0, "override measured operation count")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("figures  Figures 1-4 walkthrough (half splits, access parent)")
		for _, id := range bench.ExperimentIDs {
			fmt.Printf("%-8s (see DESIGN.md experiment index)\n", id)
		}
		return
	}

	sc := bench.Quick
	if *scale == "full" {
		sc = bench.Full
	}
	if *preload > 0 {
		sc.Preload = *preload
	}
	if *ops > 0 {
		sc.Ops = *ops
	}

	var ids []string
	runFigures := false
	switch *exp {
	case "all":
		ids = bench.ExperimentIDs
		runFigures = true
	case "figures":
		runFigures = true
	default:
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "figures" {
				runFigures = true
				continue
			}
			if bench.Experiments[id] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if runFigures {
		fmt.Println("== Figures 1-4 walkthrough ==")
		if err := core.WriteFigureWalkthrough(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		tb, err := bench.Experiments[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tb.Render(os.Stdout)
	}
}
