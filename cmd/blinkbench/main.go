// Command blinkbench regenerates the experiments in DESIGN.md/EXPERIMENTS.md:
// every figure of the paper (as an executable walkthrough) and every
// quantitative claim (as a benchmark table against the comparator
// algorithms).
//
// Usage:
//
//	blinkbench -exp all                 # run everything at quick scale
//	blinkbench -exp E2,E3 -scale full   # specific experiments, full scale
//	blinkbench -exp figures             # Figures 1-4 walkthrough
//	blinkbench -list                    # list experiments
//	blinkbench -lat                     # mixed-workload latency profile
//	blinkbench -lat -json               # ... plus the expvar JSON snapshot
//	blinkbench -lat -trace              # ... plus the SMO trace events
//	blinkbench -spans                   # ... plus sampled operation spans and
//	                                    #     the tail-latency attribution table
//	blinkbench -spans -spansout t.json  # ... and write the spans as Chrome
//	                                    #     trace-event JSON (Perfetto)
//	blinkbench -commit                  # commit-path durability sweep
//	blinkbench -commit -out BENCH_commit.json -gate 1.0
//	                                    # ... persist the trajectory and fail
//	                                    #     unless group >= sync at the
//	                                    #     highest writer count
//	blinkbench -load                    # bulk-load scale sweep (10M + 20M keys,
//	                                    #     serial vs parallel fan-outs)
//	blinkbench -load -keys 10000000 -fill 0.9 -parallel 1,8 \
//	           -out BENCH_scale.json -speedup 3.0
//	                                    # ... persist the trajectory and fail
//	                                    #     unless parallel@8 loads >= 3x the
//	                                    #     serial rows/s
//	blinkbench -skew                    # skew scenario matrix (distribution x
//	                                    #     goroutines x contention engine)
//	blinkbench -skew -out BENCH_skew.json -skewfrac 0.25 -combratio 0.9
//	                                    # ... persist the matrix and fail
//	                                    #     unless zipf holds 25% of uniform
//	                                    #     and combining-on holds 90% of
//	                                    #     combining-off under zipf
//	blinkbench -remote 127.0.0.1:6380   # drive a running blinkd server
//	blinkbench -remote :6380 -conns 16 -pipeline 32 -dist zipf -txnevery 10
//	                                    # ... 16 pipelined connections, skewed
//	                                    #     keys, every 10th op transactional
//	blinkbench -net                     # embedded-vs-networked sweep (E16)
//	blinkbench -net -out BENCH_net.json -netgate 2.0
//	                                    # ... persist the report and fail
//	                                    #     unless pipelined >= 2x unpipelined
//	                                    #     at 16 connections
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"blinktree/blinkmetrics"
	"blinktree/internal/bench"
	"blinktree/internal/buildinfo"
	"blinktree/internal/core"
	"blinktree/internal/obs"
	"blinktree/internal/wal"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiments to run: all, figures, or comma-separated IDs (E1..E12)")
		scale    = flag.String("scale", "quick", "quick or full")
		preload  = flag.Int("preload", 0, "override preload record count")
		ops      = flag.Int("ops", 0, "override measured operation count")
		list     = flag.Bool("list", false, "list experiments and exit")
		lat      = flag.Bool("lat", false, "run a mixed-workload latency profile (p50/p99/p999 per operation class) instead of experiments")
		jsonOut  = flag.Bool("json", false, "with -lat: print the expvar JSON metrics snapshot after the profile")
		traceOut = flag.Bool("trace", false, "with -lat: print the buffered SMO trace events after the profile")
		spansOut = flag.Bool("spans", false, "with -lat (implied): sample operation spans and print the tail-latency attribution table")
		spansTo  = flag.String("spansout", "", "with -spans: write the sampled spans as Chrome trace-event JSON to this file")
		sample   = flag.Int("sample", 64, "with -spans: sample one operation span in every N operations")
		version  = flag.Bool("version", false, "print build information and exit")

		commit     = flag.Bool("commit", false, "run the commit-path durability sweep instead of experiments")
		durability = flag.String("durability", "sync,group", "with -commit: comma-separated durability modes to measure")
		writers    = flag.String("writers", "1,4,16", "with -commit: comma-separated concurrent committer counts")
		commitOps  = flag.Int("commitops", 200, "with -commit: transactions per writer")
		out        = flag.String("out", "", "with -commit or -skew: also write the JSON report to this file")
		gate       = flag.Float64("gate", 0, "with -commit: exit nonzero unless group throughput >= gate * sync throughput at the highest writer count (0 disables)")

		load         = flag.Bool("load", false, "run the bulk-load scale sweep instead of experiments")
		loadKeys     = flag.String("keys", "10000000,20000000", "with -load: comma-separated tier sizes (keys to load)")
		loadFill     = flag.Float64("fill", 0.85, "with -load: bulk-load fill factor")
		loadParallel = flag.String("parallel", "1,8", "with -load: comma-separated bulk-load fan-outs (1 = serial baseline)")
		loadSpeedup  = flag.Float64("speedup", 0, "with -load: exit nonzero unless the highest fan-out loads at least speedup x the serial rows/s at the smallest tier (0 disables)")

		remote    = flag.String("remote", "", "drive a running blinkd server at this address instead of running experiments")
		conns     = flag.Int("conns", 4, "with -remote: concurrent client connections")
		pipeline  = flag.Int("pipeline", 1, "with -remote: commands kept in flight per connection (1 = strict request/response)")
		remoteOps = flag.Int("remoteops", 10000, "with -remote: total measured operations")
		dist      = flag.String("dist", "uniform", "with -remote: key distribution (uniform, zipf, sequential, hotspot, moving-hotspot, seq-append)")
		txnEvery  = flag.Int("txnevery", 0, "with -remote: wrap every Nth operation in BEGIN/COMMIT (0 disables)")

		netSweep    = flag.Bool("net", false, "run the embedded-vs-networked comparison (E16) instead of experiments")
		netConns    = flag.String("netconns", "1,4,16,64", "with -net: comma-separated connection counts")
		netPipeline = flag.String("netpipeline", "1,32", "with -net: comma-separated pipeline depths")
		netOps      = flag.Int("netops", 0, "with -net: measured operations per cell (0 = default 20000)")
		netGate     = flag.Float64("netgate", 0, "with -net: exit nonzero unless pipelined throughput >= netgate x unpipelined at 16 connections (0 disables)")

		skew       = flag.Bool("skew", false, "run the skew scenario matrix instead of experiments")
		skewThread = flag.String("skewthreads", "1,4,8,16", "with -skew: comma-separated goroutine counts")
		skewOps    = flag.Int("skewops", 0, "with -skew: measured operations per cell (0 = default 20000)")
		skewFrac   = flag.Float64("skewfrac", 0, "with -skew: exit nonzero unless zipf throughput >= skewfrac * uniform throughput at the highest goroutine count, contention engine on (0 disables)")
		combRatio  = flag.Float64("combratio", 0, "with -skew: exit nonzero unless combining-on throughput >= combratio * combining-off under zipf at the highest goroutine count (0 disables)")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	if *commit {
		if err := commitSweep(os.Stdout, *durability, *writers, *commitOps, *out, *gate); err != nil {
			fmt.Fprintf(os.Stderr, "commit sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *load {
		if err := loadSweep(os.Stdout, *loadKeys, *loadParallel, *loadFill, *out, *loadSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "load sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *skew {
		if err := skewSweep(os.Stdout, *skewThread, *skewOps, *out, *skewFrac, *combRatio); err != nil {
			fmt.Fprintf(os.Stderr, "skew sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *remote != "" {
		if err := remoteRun(os.Stdout, *remote, *conns, *pipeline, *remoteOps, *dist, *txnEvery); err != nil {
			fmt.Fprintf(os.Stderr, "remote run: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *netSweep {
		if err := netRun(os.Stdout, *netConns, *netPipeline, *netOps, *out, *netGate); err != nil {
			fmt.Fprintf(os.Stderr, "net sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("figures  Figures 1-4 walkthrough (half splits, access parent)")
		for _, id := range bench.ExperimentIDs {
			fmt.Printf("%-8s (see DESIGN.md experiment index)\n", id)
		}
		return
	}

	sc := bench.Quick
	if *scale == "full" {
		sc = bench.Full
	}
	if *preload > 0 {
		sc.Preload = *preload
	}
	if *ops > 0 {
		sc.Ops = *ops
	}

	if *lat || *jsonOut || *traceOut || *spansOut || *spansTo != "" {
		p := profileOpts{
			json: *jsonOut, trace: *traceOut,
			spans: *spansOut || *spansTo != "", spansPath: *spansTo, sample: *sample,
		}
		if err := latencyProfile(os.Stdout, sc, p); err != nil {
			fmt.Fprintf(os.Stderr, "latency profile: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var ids []string
	runFigures := false
	switch *exp {
	case "all":
		ids = bench.ExperimentIDs
		runFigures = true
	case "figures":
		runFigures = true
	default:
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "figures" {
				runFigures = true
				continue
			}
			if bench.Experiments[id] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if runFigures {
		fmt.Println("== Figures 1-4 walkthrough ==")
		if err := core.WriteFigureWalkthrough(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		tb, err := bench.Experiments[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tb.Render(os.Stdout)
	}
}

// commitSweep runs the commit-path durability benchmark, prints the cells
// as a table, optionally persists the JSON trajectory (BENCH_commit.json)
// and applies the group-vs-sync throughput gate.
func commitSweep(w io.Writer, modesCSV, writersCSV string, ops int, outPath string, gate float64) error {
	var cfg bench.CommitConfig
	cfg.OpsPerWriter = ops
	for _, s := range strings.Split(modesCSV, ",") {
		m, err := wal.ParseDurabilityMode(s)
		if err != nil {
			return err
		}
		cfg.Modes = append(cfg.Modes, m)
	}
	for _, s := range strings.Split(writersCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -writers entry %q", s)
		}
		cfg.Writers = append(cfg.Writers, n)
	}

	rep, err := bench.RunCommit(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== commit path: %d txns/writer, simulated force %s ==\n",
		rep.OpsPerWriter, time.Duration(rep.SyncDelayNS))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\twriters\tcommits/s\tdevice forces\tcommits/force\tmax batch")
	for _, r := range rep.Results {
		perForce := float64(r.Commits)
		if r.DeviceForces > 0 {
			perForce = float64(r.Commits) / float64(r.DeviceForces)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%.1f\t%d\n",
			r.Mode, r.Writers, r.CommitsPerSec, r.DeviceForces, perForce, r.Group.MaxBatch)
	}
	tw.Flush()

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	if gate > 0 {
		desc, err := rep.GateGroupVsSync(gate)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "gate ok: %s\n", desc)
	}
	return nil
}

// loadSweep runs the bulk-load scale sweep, prints rows/s and pages-built
// per cell, optionally persists the JSON report (BENCH_scale.json) and
// applies the parallel-speedup gate.
func loadSweep(w io.Writer, keysCSV, parallelCSV string, fill float64, outPath string, speedup float64) error {
	cfg := bench.ScaleConfig{Fill: fill}
	for _, s := range strings.Split(keysCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -keys entry %q", s)
		}
		cfg.Tiers = append(cfg.Tiers, n)
	}
	for _, s := range strings.Split(parallelCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -parallel entry %q", s)
		}
		cfg.Parallel = append(cfg.Parallel, n)
	}

	rep, err := bench.RunScale(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== bulk-load scale sweep: fill %.2f, page size %d ==\n", rep.Fill, rep.PageSize)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "keys\tparallel\trows/s\tpages built\tchunks\theight\tfanout\tget p50\tput p50\tscan ns/key\tclean")
	for _, r := range rep.Results {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%d\t%d\t%d\t%.1f\t%s\t%s\t%.0f\t%v\n",
			r.Keys, r.Parallel, r.RowsPerSec, r.PagesBuilt, r.Chunks,
			r.Height, r.IndexFanout,
			time.Duration(r.GetP50NS), time.Duration(r.PutP50NS),
			r.ScanNSPerKey, r.VerifyClean)
	}
	tw.Flush()

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	if speedup > 0 {
		desc, err := rep.GateParallelSpeedup(speedup)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "speedup gate ok: %s\n", desc)
	}
	return nil
}

// skewSweep runs the skew scenario matrix, prints the cells as a table,
// optionally persists the JSON report (BENCH_skew.json) and applies the
// skew-vs-uniform and combining-on-vs-off throughput gates.
func skewSweep(w io.Writer, threadsCSV string, ops int, outPath string, skewFrac, combRatio float64) error {
	var cfg bench.SkewConfig
	cfg.Ops = ops
	for _, s := range strings.Split(threadsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -skewthreads entry %q", s)
		}
		cfg.Goroutines = append(cfg.Goroutines, n)
	}

	rep, err := bench.RunSkew(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== skew matrix: %d keys, %d preloaded, %d ops/cell, zipf s=%.2f ==\n",
		rep.KeySpace, rep.Preload, rep.Ops, rep.ZipfS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dist\tgoroutines\tcombining\tops/s\tpublishes\tbatches\tfastpath hits\tlatch waits")
	for _, r := range rep.Results {
		comb := "off"
		if r.Combining {
			comb = "on"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.0f\t%d\t%d\t%d\t%d\n",
			r.Dist, r.Goroutines, comb, r.OpsPerSec,
			r.CombinePublishes, r.CombineBatches, r.AppendFastHits, r.LatchWaits)
	}
	tw.Flush()

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	if skewFrac > 0 {
		desc, err := rep.GateSkewVsUniform(skewFrac)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "skew gate ok: %s\n", desc)
	}
	if combRatio > 0 {
		desc, err := rep.GateCombining(combRatio)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "combining gate ok: %s\n", desc)
	}
	return nil
}

// remoteRun drives a running blinkd server with the configured connection
// count, pipeline depth and key distribution, and prints the aggregate
// throughput. Every workload generator the embedded runner supports drives
// the server unchanged; a 50/30/15/5 insert/search/delete/scan mix keeps
// all four data verbs under load.
func remoteRun(w io.Writer, addr string, conns, pipeline, ops int, distName string, txnEvery int) error {
	d, err := bench.ParseDist(distName)
	if err != nil {
		return err
	}
	cfg := bench.RemoteConfig{
		Addr:     addr,
		Conns:    conns,
		Pipeline: pipeline,
		Ops:      ops,
		TxnEvery: txnEvery,
		Spec: bench.Spec{
			Dist: d,
			Mix:  bench.Mix{Insert: 50, Search: 30, Delete: 15, Scan: 5},
		},
	}
	res, err := bench.RunRemote(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== remote: %s, dist %s, txnevery %d ==\n", addr, d, txnEvery)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "conns\tpipeline\tops\telapsed\tops/s\terrors\taborts")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%.0f\t%d\t%d\n",
		res.Conns, res.Pipeline, res.Ops,
		time.Duration(res.ElapsedMS*float64(time.Millisecond)).Round(time.Millisecond),
		res.Throughput, res.Errors, res.Aborts)
	tw.Flush()
	if res.Errors > 0 {
		return fmt.Errorf("%d unexpected error replies", res.Errors)
	}
	return nil
}

// netRun runs the embedded-vs-networked comparison (E16), prints the cells
// as a table, optionally persists the JSON report (BENCH_net.json) and
// applies the pipelining gate at 16 connections.
func netRun(w io.Writer, connsCSV, pipelineCSV string, ops int, outPath string, gate float64) error {
	cfg := bench.NetConfig{Ops: ops}
	for _, s := range strings.Split(connsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -netconns entry %q", s)
		}
		cfg.Conns = append(cfg.Conns, n)
	}
	for _, s := range strings.Split(pipelineCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -netpipeline entry %q", s)
		}
		cfg.Pipelines = append(cfg.Pipelines, n)
	}

	rep, err := bench.RunNet(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== embedded vs networked: %d keys, %d preloaded, %d ops/cell ==\n",
		rep.Config.KeySpace, rep.Config.Preload, rep.Config.Ops)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tconns\tpipeline\tops\tops/s\terrors")
	for _, r := range rep.Results {
		pipe := "-"
		if r.Mode == "net" {
			pipe = strconv.Itoa(r.Pipeline)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.0f\t%d\n",
			r.Mode, r.Conns, pipe, r.Ops, r.Throughput, r.Errors)
	}
	tw.Flush()

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	if gate > 0 {
		desc, err := rep.GatePipeline(16, gate)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "pipeline gate ok: %s\n", desc)
	}
	return nil
}

// profileOpts selects the optional outputs of latencyProfile.
type profileOpts struct {
	json      bool   // expvar JSON snapshot
	trace     bool   // SMO trace ring dump
	spans     bool   // sample operation spans, print tail attribution
	spansPath string // write sampled spans as Chrome trace JSON here
	sample    int    // span sampling rate (1 in N)
}

// latencyProfile runs a 40/40/20 insert/search/delete mix with full
// observability enabled and reports per-class latency percentiles (preload
// excluded), optionally followed by the expvar JSON snapshot, the trace
// ring contents, and the sampled-span tail-latency attribution table.
func latencyProfile(w io.Writer, sc bench.Scale, po profileOpts) error {
	tr, err := core.New(core.Options{
		PageSize: 1024, MinFill: 0.35, Workers: 2,
		Observability: &obs.Config{
			Metrics: true, Trace: true,
			Spans: po.spans, SampleEvery: po.sample,
		},
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	spec := bench.Spec{
		KeySpace: sc.Preload * 2,
		Preload:  sc.Preload,
		Ops:      sc.Ops,
		Mix:      bench.Mix{Insert: 40, Search: 40, Delete: 20},
	}
	if err := bench.Preload(tr, spec); err != nil {
		return err
	}
	pre := tr.Registry().Snapshot()

	threads := sc.Threads[len(sc.Threads)-1]
	perG := spec.Ops / threads
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	start := time.Now()
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			errCh <- bench.Worker(tr, spec, seed, perG)
		}(int64(g) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	tr.DrainTodo()

	m := tr.Snapshot()
	fmt.Fprintf(w, "== latency profile: mix %s, %d ops, %d goroutines, %.0f ops/s ==\n",
		spec.Mix, perG*threads, threads, float64(perG*threads)/elapsed.Seconds())
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "op\tcount\tmean\tp50\tp99\tp999")
	for op := obs.OpSearch; op < obs.OpCount; op++ {
		h := m.Obs.Ops[op].Delta(pre.Ops[op])
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n", op, h.Count,
			h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999))
	}
	tw.Flush()

	if po.json {
		fmt.Fprintln(w, "-- expvar snapshot --")
		if err := blinkmetrics.WriteExpvar(w, m); err != nil {
			return err
		}
	}
	if po.trace {
		evs := tr.TraceEvents()
		fmt.Fprintf(w, "-- trace ring: %d events (%d emitted, %d dropped) --\n",
			len(evs), m.Obs.TraceSeq, m.Obs.TraceDropped)
		for _, e := range evs {
			fmt.Fprintln(w, obs.FormatEvent(e))
		}
	}
	if po.spans {
		spans := tr.Spans()
		if err := obs.WriteAttribution(w, spans); err != nil {
			return err
		}
		fmt.Fprintf(w, "slow-op flight recorder: %d captures at/above %s\n",
			len(tr.SlowSpans()), time.Duration(m.Obs.SlowOpThresholdNS))
		if po.spansPath != "" {
			f, err := os.Create(po.spansPath)
			if err != nil {
				return err
			}
			if err := obs.WriteChromeTrace(f, spans); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %d spans to %s\n", len(spans), po.spansPath)
		}
	}
	return nil
}
