// Command blinkd serves a blinktree over TCP, speaking the RESP-style
// pipelined wire protocol specified in PROTOCOL.md (GET/SET/DEL/SCAN,
// BEGIN/COMMIT/ABORT, PING/INFO). A second listener (-admin) exposes the
// combined tree + server metrics (/metrics, Prometheus or expvar JSON) and
// a health probe (/healthz).
//
// Usage:
//
//	blinkd -addr :6380 -path /var/lib/blinkd          # durable store
//	blinkd -addr :6380 -admin :6381 -durability group # group-commit WAL
//	blinkd -addr 127.0.0.1:0                          # volatile, test port
//	blinkbench -remote 127.0.0.1:6380                 # drive it with load
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// commands already received finish executing and their replies flush,
// open transactions abort, and the tree closes (forcing the WAL), bounded
// by -draintimeout. Exit code 0 means every completed commit is durable.
// See OPERATIONS.md ("Operating blinkd") for the runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	blinktree "blinktree"
	"blinktree/internal/buildinfo"
	"blinktree/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:6380", "data-port listen address")
		admin         = flag.String("admin", "", "admin-port listen address for /metrics and /healthz (empty disables)")
		path          = flag.String("path", "", "directory for the durable files (pages.db, wal.log); empty runs volatile and in-memory")
		pageSize      = flag.Int("pagesize", 0, "node size in bytes (0 = default 4096)")
		cacheSize     = flag.Int("cache", 0, "buffer pool capacity in nodes (0 = default 4096)")
		durability    = flag.String("durability", "sync", "commit durability with -path: sync, group, periodic or async")
		flushInterval = flag.Duration("flushinterval", 0, "periodic/async background force period (0 = default 2ms)")
		flushBytes    = flag.Int64("flushbytes", 0, "periodic mode's unforced-byte force threshold (0 = default 256KiB)")
		maxConns      = flag.Int("maxconns", 0, "concurrent connection limit (0 = default 1024)")
		idle          = flag.Duration("idle", 0, "per-connection idle timeout; negative disables (0 = default 5m)")
		maxScan       = flag.Int("maxscan", 0, "per-SCAN record cap (0 = default 1000)")
		drainTimeout  = flag.Duration("draintimeout", 30*time.Second, "graceful-shutdown drain bound before connections are closed forcibly")
		version       = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if err := run(*addr, *admin, *path, *pageSize, *cacheSize, *durability,
		*flushInterval, *flushBytes, *maxConns, *idle, *maxScan, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "blinkd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, admin, path string, pageSize, cacheSize int, durability string,
	flushInterval time.Duration, flushBytes int64, maxConns int,
	idle time.Duration, maxScan int, drainTimeout time.Duration) error {

	opts := blinktree.Options{
		Path:          path,
		PageSize:      pageSize,
		CacheSize:     cacheSize,
		FlushInterval: flushInterval,
		FlushBytes:    flushBytes,
		Observability: &blinktree.Observability{Metrics: true},
	}
	if path != "" {
		mode, err := blinktree.ParseDurabilityMode(durability)
		if err != nil {
			return err
		}
		opts.Durability = mode
	}
	tree, err := blinktree.Open(opts)
	if err != nil {
		return err
	}
	// The server owns the tree from here: Shutdown closes it.

	srv := server.New(tree, server.Config{
		Addr:        addr,
		MaxConns:    maxConns,
		IdleTimeout: idle,
		MaxScan:     maxScan,
	})
	if err := srv.Listen(); err != nil {
		tree.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "blinkd %s listening on %s", buildinfo.Version(), srv.Addr())
	if path != "" {
		fmt.Fprintf(os.Stderr, " (store %s, durability %s)", path, durability)
	} else {
		fmt.Fprint(os.Stderr, " (volatile)")
	}
	fmt.Fprintln(os.Stderr)

	var adminSrv *http.Server
	if admin != "" {
		ln, err := net.Listen("tcp", admin)
		if err != nil {
			tree.Close()
			return fmt.Errorf("admin listen: %w", err)
		}
		adminSrv = &http.Server{Handler: server.AdminHandler(srv)}
		fmt.Fprintf(os.Stderr, "blinkd admin on http://%s/metrics\n", ln.Addr())
		go adminSrv.Serve(ln)
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "blinkd: %s received, draining (bound %s)\n", s, drainTimeout)
	case err := <-serveDone:
		// Listener died without a shutdown request.
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		srv.Shutdown(ctx)
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if adminSrv != nil {
		adminSrv.Shutdown(ctx)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveDone; err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "blinkd: clean shutdown")
	return nil
}
