// Command blinkcheck opens a durable blinktree directory, recovers it,
// verifies every structural invariant, and reports summary statistics.
//
// Usage:
//
//	blinkcheck -path /data/mytree [-pagesize 4096]
//
// Exit status 0 means the tree recovered and verified clean.
package main

import (
	"flag"
	"fmt"
	"os"

	"blinktree"
)

func main() {
	var (
		path     = flag.String("path", "", "tree directory (pages.db + wal.log)")
		pageSize = flag.Int("pagesize", 4096, "page size the tree was created with")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "blinkcheck: -path is required")
		os.Exit(2)
	}
	tr, err := blinktree.Open(blinktree.Options{Path: *path, PageSize: *pageSize, Workers: -1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "blinkcheck: open/recover: %v\n", err)
		os.Exit(1)
	}
	defer tr.Close()
	if err := tr.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "blinkcheck: INVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	n, err := tr.Len()
	if err != nil {
		fmt.Fprintf(os.Stderr, "blinkcheck: counting records: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok: tree verified clean\n")
	fmt.Printf("records: %d\nheight:  %d\n", n, tr.Height())
	s := tr.Stats()
	fmt.Printf("splits since open: %d, consolidations: %d\n",
		s.Splits, s.LeafConsolidated+s.IndexConsolidated)
}
