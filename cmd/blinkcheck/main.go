// Command blinkcheck opens a durable blinktree directory, recovers it,
// verifies every structural invariant, and reports summary statistics.
//
// Usage:
//
//	blinkcheck -path /data/mytree [-pagesize 4096] [-deep]
//
// -deep additionally runs the whole-store audit: every allocated page must
// checksum-verify and be reachable from the tree (leaks fail), delete-state
// counters must sit only where the paper allows them, and the write-ahead
// log must have a dense LSN sequence. It also prints what recovery did to
// bring the tree up — redo/undo work, torn pages healed, torn log tail
// discarded — which is the first thing to read when triaging a directory
// salvaged from a crash (see OPERATIONS.md).
//
// Exit status 0 means the tree recovered and verified clean.
package main

import (
	"flag"
	"fmt"
	"os"

	"blinktree"
	"blinktree/internal/buildinfo"
)

func main() {
	var (
		path       = flag.String("path", "", "tree directory (pages.db + wal.log)")
		pageSize   = flag.Int("pagesize", 4096, "page size the tree was created with")
		deep       = flag.Bool("deep", false, "run the deep audit: page scan, D_D placement, WAL tail")
		durability = flag.String("durability", "sync", "durability mode to open with: sync, group, periodic or async (recovery is identical in every mode)")
		nocombine  = flag.Bool("nocombine", false, "disable the hot-leaf combining layer and append fast path (a checker runs single-threaded; both are irrelevant and this keeps the write path minimal)")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "blinkcheck: -path is required")
		os.Exit(2)
	}
	mode, err := blinktree.ParseDurabilityMode(*durability)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blinkcheck: %v\n", err)
		os.Exit(2)
	}
	opts := blinktree.Options{Path: *path, PageSize: *pageSize, Workers: -1, Durability: mode}
	if *nocombine {
		opts.Combining = blinktree.FeatureOff
		opts.AppendFastPath = blinktree.FeatureOff
	}
	tr, err := blinktree.Open(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blinkcheck: open/recover: %v\n", err)
		os.Exit(1)
	}
	defer tr.Close()

	rs := tr.RecoveryStats()
	if rs.Recovered {
		fmt.Printf("recovery: scanned %d log records, redo from LSN %d: %d SMOs, %d record ops (%d skipped by page LSN)\n",
			rs.RecordsScanned, rs.RedoStart, rs.SMOsRedone, rs.RecOpsRedone, rs.SkippedByLSN)
		if rs.LosersUndone > 0 {
			fmt.Printf("recovery: rolled back %d uncommitted transactions\n", rs.LosersUndone)
		}
		if rs.CorruptPages > 0 || rs.FullRedoRetries > 0 {
			fmt.Printf("recovery: healed %d torn/corrupt pages (%d full-log redo retries)\n",
				rs.CorruptPages, rs.FullRedoRetries)
		}
		if rs.TornTail {
			fmt.Printf("recovery: discarded torn log tail (%d trailing bytes past last valid frame)\n",
				rs.TornTailBytes)
		}
	}

	if *deep {
		rep, err := tr.VerifyDeep()
		if err != nil {
			fmt.Fprintf(os.Stderr, "blinkcheck: DEEP AUDIT FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ok: deep audit clean\n")
		fmt.Printf("records: %d\nheight:  %d\n", rep.Records, rep.Height)
		for lvl := len(rep.NodesPerLevel) - 1; lvl >= 0; lvl-- {
			fmt.Printf("level %d: %d nodes\n", lvl, rep.NodesPerLevel[lvl])
		}
		fmt.Printf("pages: %d live, %d reachable (no leaks)\n", rep.LivePages, rep.ReachablePages)
		fmt.Printf("delete state: %d level-1 nodes carry a nonzero D_D\n", rep.DDCarriers)
		if rep.WALRecords > 0 {
			fmt.Printf("wal: %d records, LSN %d..%d (dense)\n", rep.WALRecords, rep.WALFirstLSN, rep.WALLastLSN)
		} else {
			fmt.Printf("wal: empty\n")
		}
		if rep.TailTorn {
			fmt.Printf("wal: torn tail, %d trailing bytes (discarded by recovery; harmless)\n", rep.TailTornBytes)
		}
		return
	}

	if err := tr.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "blinkcheck: INVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	n, err := tr.Len()
	if err != nil {
		fmt.Fprintf(os.Stderr, "blinkcheck: counting records: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ok: tree verified clean\n")
	fmt.Printf("records: %d\nheight:  %d\n", n, tr.Height())
	s := tr.Stats()
	fmt.Printf("splits since open: %d, consolidations: %d\n",
		s.Splits, s.LeafConsolidated+s.IndexConsolidated)
}
