// Command blinkdump renders the physical structure of a durable blinktree
// (every node, level by level, with fence keys, side pointers and D_D
// counters) and/or its write-ahead log records.
//
// Usage:
//
//	blinkdump -path /data/mytree            # tree structure
//	blinkdump -path /data/mytree -wal       # log records instead
//	blinkdump -path /data/mytree -wal -tree # both
//	blinkdump -trace events.jsonl           # render a trace dump ("-" = stdin)
//	blinkdump -spans trace.json             # tail-latency attribution from a
//	                                        # span capture ("-" = stdin)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"blinktree/internal/buildinfo"
	"blinktree/internal/core"
	"blinktree/internal/obs"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

func main() {
	var (
		path      = flag.String("path", "", "tree directory (pages.db + wal.log)")
		pageSize  = flag.Int("pagesize", 4096, "page size the tree was created with")
		dumpWAL   = flag.Bool("wal", false, "dump write-ahead log records")
		dumpTree  = flag.Bool("tree", false, "dump tree structure (default unless -wal)")
		traceFile = flag.String("trace", "", "render a JSON Lines trace dump (blinkmetrics ?format=trace or blinkbench -lat -trace); \"-\" reads stdin")
		spansFile = flag.String("spans", "", "render the tail-latency attribution table from a Chrome trace-event span capture (blinkmetrics ?format=spans or blinkbench -spansout); \"-\" reads stdin")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	if *traceFile != "" {
		if err := dumpTrace(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: %v\n", err)
			os.Exit(1)
		}
	}
	if *spansFile != "" {
		if err := dumpSpans(*spansFile); err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceFile != "" || *spansFile != "" {
		if *path == "" {
			return
		}
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "blinkdump: -path, -trace or -spans is required")
		os.Exit(2)
	}
	if !*dumpWAL {
		*dumpTree = true
	}

	if *dumpWAL {
		dev, err := wal.OpenFileDevice(filepath.Join(*path, "wal.log"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: %v\n", err)
			os.Exit(1)
		}
		log, err := wal.NewLog(dev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: %v\n", err)
			os.Exit(1)
		}
		recs, err := log.DurableRecords()
		if err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- write-ahead log: %d records --\n", len(recs))
		for _, r := range recs {
			fmt.Println(r)
		}
		dev.Close()
	}

	if *dumpTree {
		store, err := storage.OpenFileStore(filepath.Join(*path, "pages.db"), *pageSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: %v\n", err)
			os.Exit(1)
		}
		dev, err := wal.OpenFileDevice(filepath.Join(*path, "wal.log"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: %v\n", err)
			os.Exit(1)
		}
		defer dev.Close()
		// A dump never writes: keep the contention engine (combining,
		// append fast path) out of the mount entirely.
		tr, err := core.New(core.Options{
			PageSize: *pageSize, Store: store, LogDevice: dev,
			Workers:   core.WorkersNone,
			Combining: core.FeatureOff, AppendFastPath: core.FeatureOff,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: recover: %v\n", err)
			os.Exit(1)
		}
		defer tr.Close()
		fmt.Println("-- tree structure --")
		if err := tr.Dump(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "blinkdump: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpTrace renders a JSON Lines trace dump human-readably.
func dumpTrace(name string) error {
	var r io.Reader = os.Stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ReadTrace(r)
	if err != nil {
		return err
	}
	fmt.Printf("-- trace: %d events --\n", len(events))
	for _, e := range events {
		fmt.Println(obs.FormatEvent(e))
	}
	return nil
}

// dumpSpans reads a Chrome trace-event span capture and prints the
// tail-latency attribution table.
func dumpSpans(name string) error {
	var r io.Reader = os.Stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	spans, err := obs.ReadChromeTrace(r)
	if err != nil {
		return err
	}
	return obs.WriteAttribution(os.Stdout, spans)
}
