package blinktree_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blinktree"
)

// TestFileBackedWALTruncationSweep exercises crash recovery on the real
// file-backed store: build a durable tree, keep a copy of its directory,
// then truncate wal.log at a sweep of byte offsets — including offsets that
// land mid-frame, the torn-tail case — and require every truncation to
// recover to a tree that passes the deep audit and holds a prefix of the
// acknowledged history.
func TestFileBackedWALTruncationSweep(t *testing.T) {
	src := t.TempDir()
	tr, err := blinktree.Open(blinktree.Options{Path: src, PageSize: 512, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	// History: puts with a flush midway so there is an acknowledged prefix.
	const total = 60
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := tr.Put([]byte(k), []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		if i == total/2 {
			if err := tr.FlushLog(); err != nil {
				t.Fatal(err)
			}
		}
	}
	tr.Maintain()
	if err := tr.FlushLog(); err != nil {
		t.Fatal(err)
	}
	// Abandon-style stop: close the tree normally but keep the pre-close
	// copy of the directory as the crash image. (Close flushes; the sweep
	// wants the un-flushed shape, so copy first.)
	pages, err := os.ReadFile(filepath.Join(src, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(src, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(wal) < 64 {
		t.Fatalf("wal too small to sweep: %d bytes", len(wal))
	}

	// Sweep truncation points: step through the log in uneven strides so
	// both frame boundaries and mid-frame (torn) offsets are hit.
	for cut := len(wal); cut > 0; cut -= 37 {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "pages.db"), pages, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 512, Workers: -1})
		if err != nil {
			t.Fatalf("cut %d: recovery: %v", cut, err)
		}
		rep, err := rec.VerifyDeep()
		if err != nil {
			t.Fatalf("cut %d: deep audit: %v", cut, err)
		}
		// The recovered keys must be a contiguous prefix of the insert
		// history: key-K present implies key-(K-1) present.
		n := 0
		for i := 0; i < total; i++ {
			v, err := rec.Get([]byte(fmt.Sprintf("key-%04d", i)))
			if err == blinktree.ErrKeyNotFound {
				break
			}
			if err != nil {
				t.Fatalf("cut %d: get: %v", cut, err)
			}
			if string(v) != fmt.Sprintf("val-%04d", i) {
				t.Fatalf("cut %d: key-%04d has value %q", cut, i, v)
			}
			n++
		}
		if n != rep.Records {
			t.Fatalf("cut %d: recovered %d records but prefix length is %d (holes)", cut, rep.Records, n)
		}
		// An uncut log must recover the complete history.
		if cut == len(wal) && n != total {
			t.Fatalf("full log recovered only %d/%d records", n, total)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}
