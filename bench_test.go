// Benchmarks regenerating the experiment tables (E1..E11 in DESIGN.md) as
// testing.B targets, plus micro-benchmarks of the primitive operations.
// Each BenchmarkE* corresponds to one experiment; run the full harness with
// cmd/blinkbench for the rendered tables.
package blinktree_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"blinktree"
	"blinktree/internal/bench"
	"blinktree/internal/core"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// mkTree builds a preloaded core tree for benchmarks.
func mkTree(b *testing.B, opts core.Options, preload int) *core.Tree {
	b.Helper()
	tr, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < preload; i++ {
		if err := tr.Put(bench.Key(i), make([]byte, 24)); err != nil {
			b.Fatal(err)
		}
	}
	tr.DrainTodo()
	b.Cleanup(func() { tr.Close() })
	return tr
}

// --- micro-benchmarks -------------------------------------------------

func BenchmarkPut(b *testing.B) {
	tr := mkTree(b, core.Options{PageSize: 4096, Workers: 2}, 0)
	val := make([]byte, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(bench.Key(i), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := mkTree(b, core.Options{PageSize: 4096, Workers: 2}, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(bench.Key(i % 100_000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	tr := mkTree(b, core.Options{PageSize: 4096, MinFill: 0.35, Workers: 2}, 0)
	val := make([]byte, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(bench.Key(i), val)
		if err := tr.Delete(bench.Key(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan100(b *testing.B) {
	tr := mkTree(b, core.Options{PageSize: 4096, Workers: 2}, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		tr.Scan(bench.Key((i*977)%90_000), nil, func(_, _ []byte) bool {
			cnt++
			return cnt < 100
		})
	}
}

func BenchmarkTxnCommit(b *testing.B) {
	tr := mkTree(b, core.Options{PageSize: 4096, Workers: 2, LogDevice: wal.NewMemDevice()}, 0)
	val := make([]byte, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := tr.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := x.Put(bench.Key(i), val); err != nil {
			b.Fatal(err)
		}
		if err := x.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1: mixed throughput, all comparators, parallel -------------------

func BenchmarkE1Mixed(b *testing.B) {
	spec := bench.Spec{
		KeySpace: 50_000,
		Mix:      bench.Mix{Insert: 30, Search: 40, Delete: 25, Scan: 5},
	}
	for _, cfg := range bench.Comparators(1024, false) {
		b.Run(cfg.Name, func(b *testing.B) {
			tr := mkTree(b, cfg.Opts, 20_000)
			b.ResetTimer()
			var seed int64
			b.RunParallel(func(pb *testing.PB) {
				seed++
				g := bench.NewGen(spec, seed)
				for pb.Next() {
					op := g.Next()
					k := bench.Key(op.K)
					switch op.Kind {
					case bench.OpInsert:
						tr.Put(k, g.Value())
					case bench.OpSearch:
						tr.Get(k)
					case bench.OpDelete:
						tr.Delete(k)
					case bench.OpScan:
						cnt := 0
						tr.Scan(k, nil, func(_, _ []byte) bool {
							cnt++
							return cnt < 20
						})
					}
				}
			})
		})
	}
}

// --- E2: utilization under skewed purge --------------------------------

func BenchmarkE2SkewedPurge(b *testing.B) {
	for _, cfg := range bench.Comparators(1024, false) {
		if cfg.Name == "no-delete" || cfg.Name == "serial-smo" {
			continue
		}
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr := mkTree(b, cfg.Opts, 10_000)
				g := bench.NewGen(bench.Spec{KeySpace: 10_000, Dist: bench.Zipf, ZipfS: 1.3,
					Mix: bench.Mix{Delete: 100}}, int64(i))
				b.StartTimer()
				for j := 0; j < 8000; j++ {
					tr.Delete(bench.Key(g.NextKey()))
				}
				tr.DrainTodo()
				b.StopTimer()
				util, err := bench.LeafUtilization(tr, 1024)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(util, "leaf-fill")
				b.ReportMetric(float64(tr.StoreStats().LivePages), "live-pages")
				tr.Close()
				b.StartTimer()
			}
		})
	}
}

// --- E3: log records per consolidation ---------------------------------

func BenchmarkE3Logging(b *testing.B) {
	for _, cfg := range bench.Comparators(1024, true) {
		if cfg.Name == "no-delete" || cfg.Name == "serial-smo" {
			continue
		}
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := cfg
				cfg.Opts.LogDevice = wal.NewMemDevice()
				tr := mkTree(b, cfg.Opts, 6000)
				b.StartTimer()
				for j := 0; j < 6000; j++ {
					tr.Delete(bench.Key(j))
				}
				for r := 0; r < 6; r++ {
					tr.DrainTodo()
					tr.Has(bench.Key(0))
				}
				b.StopTimer()
				appends, _ := tr.LogStats()
				s := tr.Stats()
				if cons := s.LeafConsolidated + s.IndexConsolidated; cons > 0 {
					b.ReportMetric(float64(appends)/float64(cons), "log-appends/consolidation")
				}
				tr.Close()
				b.StartTimer()
			}
		})
	}
}

// --- E4: delete-state profile -------------------------------------------

func BenchmarkE4DeleteHeavy(b *testing.B) {
	cfg := bench.Comparators(1024, false)[0]
	tr := mkTree(b, cfg.Opts, 20_000)
	g := bench.NewGen(bench.Spec{KeySpace: 20_000,
		Mix: bench.Mix{Delete: 60, Insert: 25, Search: 15}}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := g.Next()
		k := bench.Key(op.K)
		switch op.Kind {
		case bench.OpInsert:
			tr.Put(k, g.Value())
		case bench.OpDelete:
			tr.Delete(k)
		default:
			tr.Get(k)
		}
	}
	b.StopTimer()
	tr.DrainTodo()
	s := tr.Stats()
	if total := s.LeafConsolidated + s.IndexConsolidated; total > 0 {
		b.ReportMetric(100*float64(s.LeafConsolidated)/float64(total), "leaf-delete-%")
	}
	if posts := s.PostsDone + s.PostsAbortDX + s.PostsAbortDD + s.PostsAbortID; posts > 0 {
		b.ReportMetric(100*float64(s.PostsDone)/float64(posts), "post-success-%")
	}
}

// --- E5: transactional hotspot ------------------------------------------

func BenchmarkE5TxnHotspot(b *testing.B) {
	cfg := bench.Comparators(1024, false)[0]
	tr := mkTree(b, cfg.Opts, 64)
	val := make([]byte, 24)
	b.ResetTimer()
	var seed int64
	b.RunParallel(func(pb *testing.PB) {
		seed++
		g := bench.NewGen(bench.Spec{KeySpace: 64, Mix: bench.Mix{Insert: 60, Search: 40}}, seed)
		for pb.Next() {
			for {
				x, err := tr.Begin()
				if err != nil {
					return
				}
				var oerr error
				for j := 0; j < 4 && oerr == nil; j++ {
					op := g.Next()
					if op.Kind == bench.OpInsert {
						oerr = x.Put(bench.Key(op.K), val)
					} else {
						_, oerr = x.Get(bench.Key(op.K))
						if errors.Is(oerr, core.ErrKeyNotFound) {
							oerr = nil
						}
					}
					runtime.Gosched()
				}
				if oerr == nil {
					oerr = x.Commit()
				} else if !errors.Is(oerr, core.ErrTxnAborted) {
					x.Abort()
				}
				if errors.Is(oerr, core.ErrTxnAborted) {
					continue
				}
				if oerr != nil {
					b.Error(oerr)
					return
				}
				break
			}
		}
	})
	b.StopTimer()
	s := tr.Stats()
	locks := tr.LockStats()
	if g := locks.ImmediateOK + s.NoWaitDenied; g > 0 {
		b.ReportMetric(100*float64(locks.ImmediateOK)/float64(g), "no-wait-success-%")
	}
	b.ReportMetric(float64(s.Relatches), "relatches")
}

// --- E6: lookup cost with unposted index terms ---------------------------

func BenchmarkE6SideTraversal(b *testing.B) {
	for _, phase := range []string{"pending", "posted"} {
		b.Run(phase, func(b *testing.B) {
			tr := mkTree(b, core.Options{PageSize: 1024, Workers: core.WorkersNone}, 0)
			// Maintenance lags by ~1/8 of the load (the lazy steady state);
			// "posted" then drains fully.
			val := make([]byte, 24)
			for i := 0; i < 20_000; i++ {
				tr.Put(bench.Key(i), val)
				if i%2500 == 0 {
					tr.DrainTodo()
				}
			}
			if phase == "posted" {
				tr.DrainTodo()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Get(bench.Key((i * 131) % 20_000))
			}
			b.StopTimer()
			s := tr.Stats()
			if s.Searches > 0 {
				b.ReportMetric(float64(s.SideTraversals)/float64(s.Searches), "side-traversals/op")
			}
		})
	}
}

// --- E7: scans concurrent with purge --------------------------------------

func BenchmarkE7ScanDuringPurge(b *testing.B) {
	for _, cfg := range bench.Comparators(1024, false) {
		if cfg.Name == "no-delete" {
			continue
		}
		b.Run(cfg.Name, func(b *testing.B) {
			tr := mkTree(b, cfg.Opts, 20_000)
			stop := make(chan struct{})
			go func() {
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					if i%7 != 0 {
						tr.Delete(bench.Key(i % 20_000))
					}
					i++
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cnt := 0
				tr.Scan(bench.Key((i*97)%20_000), nil, func(_, _ []byte) bool {
					cnt++
					return cnt < 50
				})
			}
			b.StopTimer()
			close(stop)
		})
	}
}

// --- E8: ablation ----------------------------------------------------------

func BenchmarkE8Ablation(b *testing.B) {
	for _, mode := range []struct {
		name   string
		single bool
	}{{"split-dx-dd", false}, {"single-counter", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tr := mkTree(b, core.Options{
				PageSize: 1024, MinFill: 0.35, Workers: 2, SingleDeleteState: mode.single,
			}, 10_000)
			g := bench.NewGen(bench.Spec{KeySpace: 10_000,
				Mix: bench.Mix{Delete: 40, Insert: 40, Search: 20}}, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := g.Next()
				k := bench.Key(op.K)
				switch op.Kind {
				case bench.OpInsert:
					tr.Put(k, g.Value())
				case bench.OpDelete:
					tr.Delete(k)
				default:
					tr.Get(k)
				}
			}
			b.StopTimer()
			tr.DrainTodo()
			s := tr.Stats()
			done := s.LeafConsolidated + s.IndexConsolidated
			aborted := s.DeleteAbortDX + s.DeleteAbortID
			if done+aborted > 0 {
				b.ReportMetric(100*float64(aborted)/float64(done+aborted), "delete-abort-%")
			}
		})
	}
}

// --- E9: recovery time -------------------------------------------------------

func BenchmarkE9Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := wal.NewMemDevice()
		tr, err := core.New(core.Options{
			PageSize: 1024, Workers: 2,
			Store: storage.NewMemStore(1024), LogDevice: dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 5000; j++ {
			tr.Put(bench.Key(j), make([]byte, 24))
		}
		tr.FlushLog()
		dev.Crash()
		tr.Abandon()
		b.StartTimer()

		tr2, err := core.New(core.Options{
			PageSize: 1024, Workers: 2,
			Store: storage.NewMemStore(1024), LogDevice: dev,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if n, _ := tr2.Len(); n != 5000 {
			b.Fatalf("recovered %d records", n)
		}
		tr2.Close()
		b.StartTimer()
	}
}

// --- E10: cost of delete support -----------------------------------------------

func BenchmarkE10Overhead(b *testing.B) {
	for _, cfg := range bench.Comparators(1024, false) {
		if cfg.Name != "delete-state" && cfg.Name != "no-delete" {
			continue
		}
		b.Run(cfg.Name, func(b *testing.B) {
			tr := mkTree(b, cfg.Opts, 20_000)
			b.ResetTimer()
			var seed int64
			b.RunParallel(func(pb *testing.PB) {
				seed++
				g := bench.NewGen(bench.Spec{KeySpace: 40_000,
					Mix: bench.Mix{Insert: 40, Search: 60}}, seed)
				for pb.Next() {
					op := g.Next()
					if op.Kind == bench.OpInsert {
						tr.Put(bench.Key(op.K), g.Value())
					} else {
						tr.Get(bench.Key(op.K))
					}
				}
			})
		})
	}
}

// --- extensions ---------------------------------------------------------------

func BenchmarkBulkLoadVsPut(b *testing.B) {
	const n = 20_000
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tr, err := core.New(core.Options{PageSize: 4096, Workers: core.WorkersNone})
			if err != nil {
				b.Fatal(err)
			}
			j := 0
			val := make([]byte, 24)
			b.StartTimer()
			err = tr.BulkLoad(func() ([]byte, []byte, bool) {
				if j >= n {
					return nil, nil, false
				}
				k := bench.Key(j)
				j++
				return k, val, true
			}, 0.9)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			tr.Close()
			b.StartTimer()
		}
	})
	b.Run("put", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Background workers keep index terms posted; without them a
			// sequential load degrades into a leaf-chain walk.
			tr, err := core.New(core.Options{PageSize: 4096, Workers: 2})
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 24)
			b.StartTimer()
			for j := 0; j < n; j++ {
				tr.Put(bench.Key(j), val)
			}
			b.StopTimer()
			tr.Close()
			b.StartTimer()
		}
	})
}

func BenchmarkReverseScan100(b *testing.B) {
	tr := mkTree(b, core.Options{PageSize: 4096, Workers: 2}, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		tr.ScanReverse(nil, bench.Key((i*977)%90_000+10_000), func(_, _ []byte) bool {
			cnt++
			return cnt < 100
		})
	}
}

// --- public API benchmark ---------------------------------------------------------

func BenchmarkPublicAPIPutGet(b *testing.B) {
	tr, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	val := make([]byte, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("user%010d", i%10000))
		tr.Put(k, val)
		tr.Get(k)
	}
}

// --- E11: maintenance scheduler sharding --------------------------------

// BenchmarkE11SchedulerShards measures an SMO-heavy parallel mixed workload
// (small pages force frequent splits and consolidations, so every operation
// touches the maintenance scheduler) with the monolithic 1-shard layout
// against the GOMAXPROCS-derived sharded default.
func BenchmarkE11SchedulerShards(b *testing.B) {
	spec := bench.Spec{
		KeySpace: 50_000,
		Mix:      bench.Mix{Insert: 40, Delete: 40, Search: 20},
	}
	for _, sh := range []struct {
		name   string
		shards int
	}{{"shards=1", 1}, {"shards=auto", 0}} {
		b.Run(sh.name, func(b *testing.B) {
			opts := core.Options{PageSize: 1024, MinFill: 0.35, Workers: 2, TodoShards: sh.shards}
			tr := mkTree(b, opts, 20_000)
			b.ResetTimer()
			var seed int64
			b.RunParallel(func(pb *testing.PB) {
				seed++
				g := bench.NewGen(spec, seed)
				for pb.Next() {
					op := g.Next()
					k := bench.Key(op.K)
					switch op.Kind {
					case bench.OpInsert:
						tr.Put(k, g.Value())
					case bench.OpDelete:
						tr.Delete(k)
					default:
						tr.Get(k)
					}
				}
			})
		})
	}
}
