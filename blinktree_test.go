package blinktree_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"blinktree"
)

func TestOpenVolatileRoundTrip(t *testing.T) {
	tr, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("hello"))
	if err != nil || string(got) != "world" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := tr.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get([]byte("hello")); !errors.Is(err, blinktree.ErrKeyNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestOpenDurableRecovers(t *testing.T) {
	dir := t.TempDir()
	tr, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	tr2, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	for i := 0; i < 500; i++ {
		got, err := tr2.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened get %d: %q, %v", i, got, err)
		}
	}
	if err := tr2.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesOpen(t *testing.T) {
	for _, b := range []blinktree.Baseline{
		blinktree.BaselinePaper, blinktree.BaselineDrain,
		blinktree.BaselineSerialSMO, blinktree.BaselineNoDelete,
	} {
		tr, err := blinktree.Open(blinktree.Options{Baseline: b, PageSize: 512})
		if err != nil {
			t.Fatalf("baseline %d: %v", b, err)
		}
		for i := 0; i < 200; i++ {
			tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("baseline %d verify: %v", b, err)
		}
		tr.Close()
	}
	if _, err := blinktree.Open(blinktree.Options{Baseline: blinktree.Baseline(99)}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestTxnSavepointAndGetDelete(t *testing.T) {
	dir := t.TempDir()
	tr, err := blinktree.Open(blinktree.Options{Path: dir, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	x, _ := tr.Begin()
	x.Put([]byte("a"), []byte("1"))
	sp := x.Savepoint()
	x.Put([]byte("b"), []byte("2"))
	if err := x.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := x.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	if v, err := x.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, err)
	}
	if _, err := x.Get([]byte("b")); !errors.Is(err, blinktree.ErrKeyNotFound) {
		t.Fatalf("b = %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := tr.Has([]byte("a")); !ok {
		t.Fatal("a missing after commit")
	}
	if err := tr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestCursorSeekPublic(t *testing.T) {
	tr, _ := blinktree.Open(blinktree.Options{})
	defer tr.Close()
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	cur := tr.NewCursor(nil, nil)
	cur.Seek([]byte("k040"))
	k, _, ok, err := cur.Next()
	if err != nil || !ok || string(k) != "k040" {
		t.Fatalf("after Seek: %q %v %v", k, ok, err)
	}
}

func TestTxnAPI(t *testing.T) {
	tr, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	x, err := tr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if x.ID() == 0 {
		t.Fatal("zero txn ID")
	}
	x.Put([]byte("a"), []byte("1"))
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}

	y, _ := tr.Begin()
	y.Put([]byte("a"), []byte("2"))
	if err := y.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Get([]byte("a"))
	if string(got) != "1" {
		t.Fatalf("after abort: %q", got)
	}
}

func TestScanAndCursor(t *testing.T) {
	tr, _ := blinktree.Open(blinktree.Options{PageSize: 512})
	defer tr.Close()
	for i := 0; i < 300; i++ {
		tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte{byte(i)})
	}
	n, err := tr.Count([]byte("k00100"), []byte("k00200"))
	if err != nil || n != 100 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	cur := tr.NewCursor([]byte("k00290"), nil)
	seen := 0
	var last []byte
	for {
		k, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if last != nil && bytes.Compare(last, k) >= 0 {
			t.Fatal("cursor out of order")
		}
		last = append(last[:0], k...)
		seen++
	}
	if seen != 10 {
		t.Fatalf("cursor saw %d, want 10", seen)
	}
	if total, _ := tr.Len(); total != 300 {
		t.Fatalf("Len = %d", total)
	}
}

func TestReverseScanAndMinMax(t *testing.T) {
	tr, _ := blinktree.Open(blinktree.Options{PageSize: 512})
	defer tr.Close()
	for i := 0; i < 200; i++ {
		tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte{byte(i)})
	}
	var keys []string
	tr.ScanReverse([]byte("k00050"), []byte("k00060"), func(k, _ []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if len(keys) != 10 || keys[0] != "k00059" || keys[9] != "k00050" {
		t.Fatalf("reverse scan: %v", keys)
	}
	mink, _, err := tr.Min()
	if err != nil || string(mink) != "k00000" {
		t.Fatalf("Min = %q, %v", mink, err)
	}
	maxk, _, err := tr.Max()
	if err != nil || string(maxk) != "k00199" {
		t.Fatalf("Max = %q, %v", maxk, err)
	}
}

func TestMaintainAndStats(t *testing.T) {
	tr, _ := blinktree.Open(blinktree.Options{PageSize: 512, Workers: -1})
	defer tr.Close()
	for i := 0; i < 1000; i++ {
		tr.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte("v"), 20))
	}
	tr.Maintain()
	s := tr.Stats()
	if s.Splits == 0 || s.PostsDone == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if tr.Height() == 0 {
		t.Fatal("height 0 after 1000 inserts on 512-byte pages")
	}
}

func TestCustomComparatorPublic(t *testing.T) {
	ci := func(a, b []byte) int { return bytes.Compare(bytes.ToLower(a), bytes.ToLower(b)) }
	tr, err := blinktree.Open(blinktree.Options{Comparator: ci})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Put([]byte("Apple"), []byte("1"))
	tr.Put([]byte("BANANA"), []byte("2"))
	got, err := tr.Get([]byte("apple"))
	if err != nil || string(got) != "1" {
		t.Fatalf("case-folded get: %q, %v", got, err)
	}
	var order []string
	tr.Scan(nil, nil, func(k, _ []byte) bool {
		order = append(order, string(k))
		return true
	})
	if len(order) != 2 || order[0] != "Apple" {
		t.Fatalf("scan order: %v", order)
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestScanPrefix(t *testing.T) {
	tr, _ := blinktree.Open(blinktree.Options{})
	defer tr.Close()
	for _, k := range []string{"app", "apple", "apple-pie", "applz", "banana", "appl"} {
		tr.Put([]byte(k), []byte("v"))
	}
	var got []string
	tr.ScanPrefix([]byte("appl"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"appl", "apple", "apple-pie", "applz"}
	if len(got) != len(want) {
		t.Fatalf("prefix scan: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix scan: %v, want %v", got, want)
		}
	}
	// All-0xFF prefix: successor is +inf.
	tr.Put([]byte{0xFF, 0xFF, 0x01}, []byte("v"))
	n := 0
	tr.ScanPrefix([]byte{0xFF, 0xFF}, func(_, _ []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("0xFF prefix scan saw %d", n)
	}
}

func TestBulkLoadPublicAPI(t *testing.T) {
	tr, _ := blinktree.Open(blinktree.Options{PageSize: 512})
	defer tr.Close()
	i := 0
	err := tr.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= 2000 {
			return nil, nil, false
		}
		k := []byte(fmt.Sprintf("k%06d", i))
		i++
		return k, []byte("v"), true
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Len(); n != 2000 {
		t.Fatalf("Len = %d", n)
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPublicAPI(t *testing.T) {
	tr, _ := blinktree.Open(blinktree.Options{PageSize: 512})
	defer tr.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("g%d-%04d", g, i))
				tr.Put(k, []byte("v"))
				tr.Get(k)
				if i%3 == 0 {
					tr.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func ExampleTree() {
	tr, _ := blinktree.Open(blinktree.Options{})
	defer tr.Close()
	tr.Put([]byte("b"), []byte("2"))
	tr.Put([]byte("a"), []byte("1"))
	tr.Put([]byte("c"), []byte("3"))
	tr.Scan(nil, nil, func(k, v []byte) bool {
		fmt.Printf("%s=%s\n", k, v)
		return true
	})
	// Output:
	// a=1
	// b=2
	// c=3
}
