package blinktree_test

import (
	"bufio"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is a self-contained documentation lint (the
// container has no third-party linters): every exported type, function,
// method, constant and variable in the public package and the durability
// packages (internal/wal, internal/storage) must carry a doc comment, and
// each package must have a package comment. The durability contract of this
// codebase lives in godoc; an undocumented exported symbol is a contract
// nobody can rely on.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range []string{".", "internal/wal", "internal/storage", "internal/sim", "internal/resp", "internal/server"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") || name == "main" {
				continue
			}
			hasPkgDoc := false
			for fname, f := range pkg.Files {
				if strings.HasSuffix(fname, "_test.go") {
					continue
				}
				if f.Doc != nil {
					hasPkgDoc = true
				}
				lintFile(t, fset, f)
			}
			if !hasPkgDoc {
				t.Errorf("%s: package %s has no package comment", dir, name)
			}
		}
	}
}

// TestServerVerbsDocumented cross-checks the server's wire-protocol surface
// against its specification: every verb registered in the dispatch table
// (the `verbs` map literal in internal/server/server.go) must have a
// `### VERB` section in PROTOCOL.md, and PROTOCOL.md must not document a
// verb the server does not implement. A verb that exists only in code is an
// undocumented protocol; one that exists only in the spec is vaporware.
func TestServerVerbsDocumented(t *testing.T) {
	registered := dispatchTableVerbs(t)
	documented := protocolDocVerbs(t)
	for v := range registered {
		if !documented[v] {
			t.Errorf("verb %s is in the server dispatch table but has no `### %s` section in PROTOCOL.md", v, v)
		}
	}
	for v := range documented {
		if !registered[v] {
			t.Errorf("PROTOCOL.md documents `### %s` but the server dispatch table has no such verb", v)
		}
	}
	if len(registered) == 0 || len(documented) == 0 {
		t.Fatalf("found %d registered and %d documented verbs; the lint is parsing nothing", len(registered), len(documented))
	}
}

// dispatchTableVerbs parses internal/server/server.go and returns the string
// keys of the `verbs` map composite literal.
func dispatchTableVerbs(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/server/server.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, decl := range f.Decls {
		d, ok := decl.(*ast.GenDecl)
		if !ok || d.Tok != token.VAR {
			continue
		}
		for _, spec := range d.Specs {
			s, ok := spec.(*ast.ValueSpec)
			if !ok || len(s.Names) != 1 || s.Names[0].Name != "verbs" || len(s.Values) != 1 {
				continue
			}
			lit, ok := s.Values[0].(*ast.CompositeLit)
			if !ok {
				t.Fatalf("verbs is not a composite literal")
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.BasicLit)
				if !ok || key.Kind != token.STRING {
					t.Fatalf("verbs key %v is not a string literal", kv.Key)
				}
				out[strings.Trim(key.Value, `"`)] = true
			}
		}
	}
	return out
}

// protocolDocVerbs returns the set of `### VERB` headings in PROTOCOL.md.
func protocolDocVerbs(t *testing.T) map[string]bool {
	t.Helper()
	f, err := os.Open("PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, ok := strings.CutPrefix(sc.Text(), "### ")
		if !ok {
			continue
		}
		name = strings.TrimSpace(name)
		if name != "" && name == strings.ToUpper(name) && !strings.Contains(name, " ") {
			out[name] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func lintFile(t *testing.T, fset *token.FileSet, f *ast.File) {
	t.Helper()
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				t.Errorf("%s: exported %s %s has no doc comment",
					fset.Position(d.Pos()), declKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(t, fset, d)
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// lintGenDecl checks const/var/type declarations. A doc comment on the decl
// group covers every name in it (the iota-enum idiom); otherwise each
// exported spec needs its own comment.
func lintGenDecl(t *testing.T, fset *token.FileSet, d *ast.GenDecl) {
	t.Helper()
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				t.Errorf("%s: exported type %s has no doc comment",
					fset.Position(s.Pos()), s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported %s %s has no doc comment",
						fset.Position(name.Pos()), d.Tok, name.Name)
				}
			}
		}
	}
}
