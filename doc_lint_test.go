package blinktree_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is a self-contained documentation lint (the
// container has no third-party linters): every exported type, function,
// method, constant and variable in the public package and the durability
// packages (internal/wal, internal/storage) must carry a doc comment, and
// each package must have a package comment. The durability contract of this
// codebase lives in godoc; an undocumented exported symbol is a contract
// nobody can rely on.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range []string{".", "internal/wal", "internal/storage", "internal/sim"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") || name == "main" {
				continue
			}
			hasPkgDoc := false
			for fname, f := range pkg.Files {
				if strings.HasSuffix(fname, "_test.go") {
					continue
				}
				if f.Doc != nil {
					hasPkgDoc = true
				}
				lintFile(t, fset, f)
			}
			if !hasPkgDoc {
				t.Errorf("%s: package %s has no package comment", dir, name)
			}
		}
	}
}

func lintFile(t *testing.T, fset *token.FileSet, f *ast.File) {
	t.Helper()
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				t.Errorf("%s: exported %s %s has no doc comment",
					fset.Position(d.Pos()), declKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(t, fset, d)
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// lintGenDecl checks const/var/type declarations. A doc comment on the decl
// group covers every name in it (the iota-enum idiom); otherwise each
// exported spec needs its own comment.
func lintGenDecl(t *testing.T, fset *token.FileSet, d *ast.GenDecl) {
	t.Helper()
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				t.Errorf("%s: exported type %s has no doc comment",
					fset.Position(s.Pos()), s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported %s %s has no doc comment",
						fset.Position(name.Pos()), d.Tok, name.Name)
				}
			}
		}
	}
}
