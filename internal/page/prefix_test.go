package page

import (
	"reflect"
	"strings"
	"testing"
)

// compressibleIndex returns an index page whose fences share a long prefix,
// with compression requested.
func compressibleIndex() *Content {
	return &Content{
		ID: 5, Kind: Index, Level: 1, LSN: 9,
		Low:      []byte("user001000"),
		High:     []byte("user002000"),
		Right:    6,
		Keys:     [][]byte{[]byte("user001000"), []byte("user001400"), []byte("user001800")},
		Children: []PageID{20, 21, 22},
		Compress: true,
	}
}

func TestPrefixLen(t *testing.T) {
	c := compressibleIndex()
	if got := c.PrefixLen(); got != len("user00") {
		t.Fatalf("PrefixLen = %d, want %d", got, len("user00"))
	}
	cases := []struct {
		name string
		mut  func(*Content)
	}{
		{"compression off", func(c *Content) { c.Compress = false }},
		{"leaf page", func(c *Content) { c.Kind = Leaf }},
		{"infinite high fence", func(c *Content) { c.High = nil }},
		{"minus-infinity low fence", func(c *Content) { c.Low = []byte{} }},
	}
	for _, tc := range cases {
		c := compressibleIndex()
		tc.mut(c)
		if got := c.PrefixLen(); got != 0 {
			t.Errorf("%s: PrefixLen = %d, want 0", tc.name, got)
		}
	}
}

func TestPrefixRoundTrip(t *testing.T) {
	c := compressibleIndex()
	buf, err := Marshal(c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Compress {
		t.Fatal("compression flag lost in round trip")
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestPrefixShrinksSize(t *testing.T) {
	c := compressibleIndex()
	plain := compressibleIndex()
	plain.Compress = false
	saved := len(c.Keys) * c.PrefixLen()
	if got := plain.Size() - c.Size(); got != saved {
		t.Fatalf("compression saved %d bytes, want %d", got, saved)
	}
	// Size must match the marshaled payload exactly: a page of exactly
	// Size() bytes fits, one byte fewer does not.
	if _, err := Marshal(c, c.Size()); err != nil {
		t.Fatalf("marshal at exact Size: %v", err)
	}
	if _, err := Marshal(c, c.Size()-1); err == nil {
		t.Fatal("marshal below Size succeeded")
	}
}

func TestPrefixMarshalRejectsStrayKey(t *testing.T) {
	c := compressibleIndex()
	c.Keys[1] = []byte("zzz") // does not carry the fence prefix
	_, err := Marshal(c, 4096)
	if err == nil {
		t.Fatal("marshal accepted a key outside the fence prefix")
	}
	if !strings.Contains(err.Error(), "fence prefix") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPrefixLeafNeverCompressed(t *testing.T) {
	c := leafContent()
	c.Compress = true
	buf, err := Marshal(c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	// The flag is an index-page property; a leaf image never carries it,
	// so the intent bit does not survive the round trip (the tree's codec
	// reapplies it from the comparator).
	if got.Compress {
		t.Fatal("leaf image carries the compression flag")
	}
	got.Compress = true
	c.ID = got.ID // leafContent sets ID; keep DeepEqual honest
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestPrefixCloneCopiesFlag(t *testing.T) {
	c := compressibleIndex()
	cl := c.Clone()
	if !cl.Compress {
		t.Fatal("Clone dropped the compression flag")
	}
}
