// Package page defines the serialized form of B-link-tree nodes.
//
// Following the paper (§2.1), nodes are Pi-tree style: every node carries an
// explicit key-space description — a low fence key (inclusive) and a high
// fence key (exclusive) — and the side pointer together with the high fence
// key forms a complete index term for the right sibling. That is what lets a
// side traversal re-discover a missing index term with no extra access
// (§2.3): the traverser already has both the sibling's address and its key
// space.
//
// Parent-of-leaf nodes additionally persist their data-delete-state counter
// D_D (§4.1.2): keeping D_D in the node means it survives cache eviction, so
// fewer index postings are aborted after the parent is re-fetched.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageID identifies a page in the underlying store. Zero is never a valid
// page: it doubles as the nil pointer.
type PageID uint64

// InvalidPage is the nil page pointer.
const InvalidPage PageID = 0

// Kind discriminates leaf (data) nodes from index (internal) nodes.
type Kind uint8

// Node kinds.
const (
	// Leaf nodes hold user records. The paper calls these data nodes.
	Leaf Kind = iota + 1
	// Index nodes hold separator keys and child pointers.
	Index
)

// String returns "leaf" or "index".
func (k Kind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Index:
		return "index"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Content is the serializable state of one node. It is deliberately free of
// any synchronization state: latches, pins and to-do bookkeeping are volatile
// and live in the in-memory node wrapper (internal/core).
type Content struct {
	ID    PageID
	Kind  Kind
	Level uint8 // 0 for leaves, parent-of-leaf is 1
	LSN   uint64

	// Right is the side pointer; InvalidPage when this node is the
	// rightmost at its level. The side link's key-space description is
	// High: the right sibling covers [High, <right sibling's High>).
	Right PageID

	// DD is the data-delete-state counter D_D. Meaningful only for
	// parent-of-leaf nodes (Level == 1); persisted so that it survives
	// cache eviction (§4.1.2 reason 1).
	DD uint64

	// Epoch is the node's incarnation number, assigned at allocation and
	// never changed. Remembered node references carry (ID, Epoch) pairs;
	// a structure modification that finds a different epoch under a
	// remembered ID knows the ID was deallocated and recycled, and aborts.
	// This closes a narrow ABA window left by the delete-state counters
	// alone (a victim observed via a cousin's side pointer after the D_X
	// increment); see DESIGN.md.
	Epoch uint64

	// Low is the inclusive low fence; empty means -inf for the leftmost
	// node of a level. High is the exclusive high fence; nil means +inf.
	Low  []byte
	High []byte

	// Compress requests fence-key prefix compression when this content is
	// marshaled (index nodes only). Under bytewise key ordering every key k
	// in an index node satisfies Low <= k < High, which forces k to carry
	// the common byte prefix of Low and High; Marshal stores keys with that
	// prefix stripped and Unmarshal reconstructs them, so the compression
	// is invisible above this package. The field is volatile intent, not
	// serialized state: the tree sets it only under the default bytewise
	// comparator (a custom comparator does not guarantee the prefix
	// property) and Unmarshal sets it when the image's flag bit says the
	// keys were stored stripped.
	Compress bool

	// Keys are the record keys (leaf) or separator keys (index), sorted.
	Keys [][]byte
	// Vals holds the record values; used only when Kind == Leaf.
	Vals [][]byte
	// Children holds child pointers; used only when Kind == Index.
	// Children[i] covers [Keys[i], Keys[i+1]) with Children[len-1]
	// covering [Keys[len-1], High). An index node with n keys has n
	// children; the node's Low equals Keys[0].
	Children []PageID
}

// Serialization layout (little endian):
//
//	offset  size  field
//	0       4     magic "BLNK"
//	4       4     crc32 (castagnoli) of bytes [8:used]
//	8       1     kind
//	9       1     level
//	10      2     flags (bit 0: High present)
//	12      8     page id
//	20      8     LSN
//	28      8     right sibling
//	36      8     D_D
//	44      8     epoch
//	52      2     key count
//	54      2     low fence length
//	56      2     high fence length
//	58      ...   low fence, high fence, then per entry:
//	               u16 keyLen, key, then (leaf) u16 valLen, val
//	                                   or (index) u64 child
const (
	headerSize = 58
	magic      = "BLNK"
	// flagHasHigh distinguishes an absent high fence (+inf) from an empty
	// one; flagPrefix marks an index page whose keys are stored with the
	// common prefix of Low and High stripped (see Content.Compress).
	flagHasHigh = 1 << 0
	flagPrefix  = 1 << 1
	maxEntryLen = 0xFFFF
	offCRC      = 4
	offKind     = 8
	offLevel    = 9
	offFlags    = 10
	offID       = 12
	offLSN      = 20
	offRight    = 28
	offDD       = 36
	offEpoch    = 44
	offKeyCount = 52
	offLowLen   = 54
	offHighLen  = 56
	offPayload  = headerSize
	crcStart    = offKind
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by Marshal and Unmarshal.
var (
	// ErrTooLarge means the content does not fit in the page size.
	ErrTooLarge = errors.New("page: content exceeds page size")
	// ErrCorrupt means the buffer fails structural or checksum validation.
	ErrCorrupt = errors.New("page: corrupt page image")
)

// PrefixLen returns the number of leading key bytes elided per key when c
// is marshaled: the length of the common byte prefix of Low and High when
// compression is requested and applicable, zero otherwise. Compression needs
// a finite key space on both sides — a node with High == nil (+inf) or an
// empty Low (-inf) has no shared prefix to exploit.
func (c *Content) PrefixLen() int {
	if !c.Compress || c.Kind != Index || c.High == nil || len(c.Low) == 0 {
		return 0
	}
	return commonPrefix(c.Low, c.High)
}

// commonPrefix returns the length of the longest common prefix of a and b.
func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Size returns the number of bytes c occupies when marshaled. The tree uses
// this for occupancy decisions (split when full, consolidate when
// under-utilized). With prefix compression in effect the size reflects the
// stripped keys, so occupancy decisions see the real on-page density.
func (c *Content) Size() int {
	n := headerSize + len(c.Low) + len(c.High)
	for i, k := range c.Keys {
		n += 2 + len(k)
		if c.Kind == Leaf {
			n += 2 + len(c.Vals[i])
		} else {
			n += 8
		}
	}
	return n - len(c.Keys)*c.PrefixLen()
}

// EntrySize returns the marshaled size of one entry with the given key and
// value lengths (vlen is ignored for index nodes, which store a fixed-size
// child pointer).
func EntrySize(kind Kind, klen, vlen int) int {
	if kind == Leaf {
		return 2 + klen + 2 + vlen
	}
	return 2 + klen + 8
}

// Marshal serializes c into a buffer of exactly pageSize bytes.
func Marshal(c *Content, pageSize int) ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	need := c.Size()
	if need > pageSize {
		return nil, fmt.Errorf("%w: need %d, page %d", ErrTooLarge, need, pageSize)
	}
	cp := c.PrefixLen()
	if cp > 0 {
		// Every key must carry the prefix: guaranteed by the fence
		// invariant Low <= k < High under bytewise ordering, which is the
		// only ordering the tree sets Compress under. A violation here
		// means the caller compressed under a comparator that does not
		// preserve the prefix property.
		for i, k := range c.Keys {
			if len(k) < cp || string(k[:cp]) != string(c.Low[:cp]) {
				return nil, fmt.Errorf("page: key %d lacks fence prefix under compression", i)
			}
		}
	}
	buf := make([]byte, pageSize)
	copy(buf[0:4], magic)
	buf[offKind] = byte(c.Kind)
	buf[offLevel] = c.Level
	var flags uint16
	if c.High != nil {
		flags |= flagHasHigh
	}
	if cp > 0 {
		flags |= flagPrefix
	}
	binary.LittleEndian.PutUint16(buf[offFlags:], flags)
	binary.LittleEndian.PutUint64(buf[offID:], uint64(c.ID))
	binary.LittleEndian.PutUint64(buf[offLSN:], c.LSN)
	binary.LittleEndian.PutUint64(buf[offRight:], uint64(c.Right))
	binary.LittleEndian.PutUint64(buf[offDD:], c.DD)
	binary.LittleEndian.PutUint64(buf[offEpoch:], c.Epoch)
	binary.LittleEndian.PutUint16(buf[offKeyCount:], uint16(len(c.Keys)))
	binary.LittleEndian.PutUint16(buf[offLowLen:], uint16(len(c.Low)))
	binary.LittleEndian.PutUint16(buf[offHighLen:], uint16(len(c.High)))

	p := offPayload
	p += copy(buf[p:], c.Low)
	p += copy(buf[p:], c.High)
	for i, k := range c.Keys {
		k = k[cp:] // stored stripped when compression is in effect (cp == 0 otherwise)
		binary.LittleEndian.PutUint16(buf[p:], uint16(len(k)))
		p += 2
		p += copy(buf[p:], k)
		if c.Kind == Leaf {
			v := c.Vals[i]
			binary.LittleEndian.PutUint16(buf[p:], uint16(len(v)))
			p += 2
			p += copy(buf[p:], v)
		} else {
			binary.LittleEndian.PutUint64(buf[p:], uint64(c.Children[i]))
			p += 8
		}
	}
	binary.LittleEndian.PutUint32(buf[offCRC:], crc32.Checksum(buf[crcStart:p], castagnoli))
	return buf, nil
}

// Unmarshal parses a page image produced by Marshal. The returned Content
// does not alias buf.
func Unmarshal(buf []byte) (*Content, error) {
	if len(buf) < headerSize || string(buf[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	c := &Content{
		Kind:  Kind(buf[offKind]),
		Level: buf[offLevel],
		ID:    PageID(binary.LittleEndian.Uint64(buf[offID:])),
		LSN:   binary.LittleEndian.Uint64(buf[offLSN:]),
		Right: PageID(binary.LittleEndian.Uint64(buf[offRight:])),
		DD:    binary.LittleEndian.Uint64(buf[offDD:]),
		Epoch: binary.LittleEndian.Uint64(buf[offEpoch:]),
	}
	if c.Kind != Leaf && c.Kind != Index {
		return nil, fmt.Errorf("%w: kind %d", ErrCorrupt, c.Kind)
	}
	flags := binary.LittleEndian.Uint16(buf[offFlags:])
	nkeys := int(binary.LittleEndian.Uint16(buf[offKeyCount:]))
	lowLen := int(binary.LittleEndian.Uint16(buf[offLowLen:]))
	highLen := int(binary.LittleEndian.Uint16(buf[offHighLen:]))

	p := offPayload
	take := func(n int) ([]byte, error) {
		if p+n > len(buf) {
			return nil, fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, p)
		}
		b := make([]byte, n)
		copy(b, buf[p:p+n])
		p += n
		return b, nil
	}
	var err error
	if c.Low, err = take(lowLen); err != nil {
		return nil, err
	}
	if flags&flagHasHigh != 0 {
		if c.High, err = take(highLen); err != nil {
			return nil, err
		}
	} else if highLen != 0 {
		return nil, fmt.Errorf("%w: high length without flag", ErrCorrupt)
	}
	cp := 0
	if flags&flagPrefix != 0 {
		c.Compress = true
		if cp = c.PrefixLen(); cp == 0 {
			return nil, fmt.Errorf("%w: prefix flag on incompressible page", ErrCorrupt)
		}
	}
	c.Keys = make([][]byte, 0, nkeys)
	if c.Kind == Leaf {
		c.Vals = make([][]byte, 0, nkeys)
	} else {
		c.Children = make([]PageID, 0, nkeys)
	}
	for i := 0; i < nkeys; i++ {
		if p+2 > len(buf) {
			return nil, fmt.Errorf("%w: truncated key length", ErrCorrupt)
		}
		klen := int(binary.LittleEndian.Uint16(buf[p:]))
		p += 2
		var k []byte
		if cp > 0 {
			// Reconstruct the full key: elided fence prefix + stored tail.
			if p+klen > len(buf) {
				return nil, fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, p)
			}
			k = make([]byte, cp+klen)
			copy(k, c.Low[:cp])
			copy(k[cp:], buf[p:p+klen])
			p += klen
		} else if k, err = take(klen); err != nil {
			return nil, err
		}
		c.Keys = append(c.Keys, k)
		if c.Kind == Leaf {
			if p+2 > len(buf) {
				return nil, fmt.Errorf("%w: truncated value length", ErrCorrupt)
			}
			vlen := int(binary.LittleEndian.Uint16(buf[p:]))
			p += 2
			v, err := take(vlen)
			if err != nil {
				return nil, err
			}
			c.Vals = append(c.Vals, v)
		} else {
			if p+8 > len(buf) {
				return nil, fmt.Errorf("%w: truncated child pointer", ErrCorrupt)
			}
			c.Children = append(c.Children, PageID(binary.LittleEndian.Uint64(buf[p:])))
			p += 8
		}
	}
	want := binary.LittleEndian.Uint32(buf[offCRC:])
	if got := crc32.Checksum(buf[crcStart:p], castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return c, nil
}

// validate checks structural consistency before marshaling.
func (c *Content) validate() error {
	if c.Kind != Leaf && c.Kind != Index {
		return fmt.Errorf("page: invalid kind %d", c.Kind)
	}
	if c.Kind == Leaf && len(c.Vals) != len(c.Keys) {
		return fmt.Errorf("page: leaf with %d keys, %d vals", len(c.Keys), len(c.Vals))
	}
	if c.Kind == Index && len(c.Children) != len(c.Keys) {
		return fmt.Errorf("page: index with %d keys, %d children", len(c.Keys), len(c.Children))
	}
	if len(c.Keys) > maxEntryLen {
		return fmt.Errorf("page: too many keys (%d)", len(c.Keys))
	}
	if len(c.Low) > maxEntryLen || len(c.High) > maxEntryLen {
		return fmt.Errorf("page: fence key too long")
	}
	for i, k := range c.Keys {
		if len(k) > maxEntryLen {
			return fmt.Errorf("page: key %d too long (%d)", i, len(k))
		}
		if c.Kind == Leaf && len(c.Vals[i]) > maxEntryLen {
			return fmt.Errorf("page: value %d too long (%d)", i, len(c.Vals[i]))
		}
	}
	return nil
}

// Clone returns a deep copy of c.
func (c *Content) Clone() *Content {
	d := &Content{
		ID: c.ID, Kind: c.Kind, Level: c.Level, LSN: c.LSN,
		Right: c.Right, DD: c.DD, Epoch: c.Epoch, Compress: c.Compress,
	}
	d.Low = append([]byte(nil), c.Low...)
	if c.High != nil {
		d.High = append([]byte(nil), c.High...)
	}
	d.Keys = make([][]byte, len(c.Keys))
	for i, k := range c.Keys {
		d.Keys[i] = append([]byte(nil), k...)
	}
	if c.Kind == Leaf {
		d.Vals = make([][]byte, len(c.Vals))
		for i, v := range c.Vals {
			d.Vals[i] = append([]byte(nil), v...)
		}
	} else {
		d.Children = append([]PageID(nil), c.Children...)
	}
	return d
}
