package page

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func leafContent() *Content {
	return &Content{
		ID: 7, Kind: Leaf, Level: 0, LSN: 42, Right: 9, DD: 0,
		Low:  []byte("apple"),
		High: []byte("mango"),
		Keys: [][]byte{[]byte("apple"), []byte("banana"), []byte("cherry")},
		Vals: [][]byte{[]byte("1"), []byte("2"), []byte("3")},
	}
}

func indexContent() *Content {
	return &Content{
		ID: 3, Kind: Index, Level: 1, LSN: 17, Right: 0, DD: 12,
		Low:      []byte{},
		High:     nil, // +inf
		Keys:     [][]byte{{}, []byte("k1"), []byte("k2")},
		Children: []PageID{10, 11, 12},
	}
}

func TestRoundTripLeaf(t *testing.T) {
	c := leafContent()
	buf, err := Marshal(c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 4096 {
		t.Fatalf("len(buf) = %d, want 4096", len(buf))
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestRoundTripIndex(t *testing.T) {
	c := indexContent()
	buf, err := Marshal(c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.High != nil {
		t.Fatalf("High = %q, want nil (+inf)", got.High)
	}
	if !reflect.DeepEqual(c.Children, got.Children) {
		t.Fatalf("children mismatch: %v vs %v", got.Children, c.Children)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestEmptyHighVsNilHigh(t *testing.T) {
	// High == []byte{} (a real empty fence) must be distinguishable from
	// High == nil (+inf) across a round trip.
	c := leafContent()
	c.High = []byte{}
	buf, err := Marshal(c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.High == nil {
		t.Fatal("empty High decoded as nil")
	}
}

func TestSizeMatchesMarshal(t *testing.T) {
	for _, c := range []*Content{leafContent(), indexContent()} {
		need := c.Size()
		// Marshal into exactly Size bytes must succeed...
		if _, err := Marshal(c, need); err != nil {
			t.Fatalf("Marshal at exact size %d: %v", need, err)
		}
		// ...and into one byte less must fail.
		if _, err := Marshal(c, need-1); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("Marshal at size-1: %v, want ErrTooLarge", err)
		}
	}
}

func TestEntrySize(t *testing.T) {
	if got := EntrySize(Leaf, 5, 7); got != 2+5+2+7 {
		t.Fatalf("EntrySize(Leaf,5,7) = %d", got)
	}
	if got := EntrySize(Index, 5, 999); got != 2+5+8 {
		t.Fatalf("EntrySize(Index,5,_) = %d", got)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	buf, err := Marshal(leafContent(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	buf[headerSize+3] ^= 0xFF
	if _, err := Unmarshal(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Unmarshal of corrupted page: %v, want ErrCorrupt", err)
	}
}

func TestBadMagic(t *testing.T) {
	buf, _ := Marshal(leafContent(), 4096)
	buf[0] = 'X'
	if _, err := Unmarshal(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v, want ErrCorrupt", err)
	}
}

func TestTruncatedBuffer(t *testing.T) {
	buf, _ := Marshal(leafContent(), 4096)
	for _, n := range []int{0, 3, headerSize - 1, headerSize + 2} {
		if _, err := Unmarshal(buf[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Unmarshal(buf[:%d]): %v, want ErrCorrupt", n, err)
		}
	}
}

func TestValidateMismatchedSlices(t *testing.T) {
	c := leafContent()
	c.Vals = c.Vals[:2]
	if _, err := Marshal(c, 4096); err == nil {
		t.Fatal("leaf with mismatched vals marshaled")
	}
	d := indexContent()
	d.Children = d.Children[:1]
	if _, err := Marshal(d, 4096); err == nil {
		t.Fatal("index with mismatched children marshaled")
	}
	e := leafContent()
	e.Kind = Kind(9)
	if _, err := Marshal(e, 4096); err == nil {
		t.Fatal("invalid kind marshaled")
	}
}

func TestUnmarshalRejectsUnknownKind(t *testing.T) {
	buf, _ := Marshal(leafContent(), 4096)
	buf[offKind] = 99
	if _, err := Unmarshal(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind: %v, want ErrCorrupt", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := leafContent()
	d := c.Clone()
	d.Keys[0][0] = 'z'
	d.Vals[0][0] = 'z'
	d.Low[0] = 'z'
	if c.Keys[0][0] == 'z' || c.Vals[0][0] == 'z' || c.Low[0] == 'z' {
		t.Fatal("Clone shares backing arrays")
	}
	i := indexContent()
	j := i.Clone()
	j.Children[0] = 999
	if i.Children[0] == 999 {
		t.Fatal("Clone shares children slice")
	}
	if j.High != nil {
		t.Fatal("Clone invented a high fence")
	}
}

func TestUnmarshalDoesNotAliasBuffer(t *testing.T) {
	buf, _ := Marshal(leafContent(), 4096)
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xAA
	}
	if !bytes.Equal(got.Keys[0], []byte("apple")) {
		t.Fatal("Unmarshal result aliases input buffer")
	}
}

func TestKindString(t *testing.T) {
	if Leaf.String() != "leaf" || Index.String() != "index" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatalf("Kind(9).String() = %q", Kind(9).String())
	}
}

// randomContent builds a structurally valid random Content.
func randomContent(rng *rand.Rand) *Content {
	c := &Content{
		ID:    PageID(rng.Uint64()%1000 + 1),
		LSN:   rng.Uint64() % 100000,
		Right: PageID(rng.Uint64() % 50),
		DD:    rng.Uint64() % 1000,
		Epoch: rng.Uint64() % 100000,
		Level: uint8(rng.Intn(4)),
	}
	if rng.Intn(2) == 0 {
		c.Kind = Leaf
		c.Level = 0
	} else {
		c.Kind = Index
		c.Level = uint8(rng.Intn(3) + 1)
	}
	randKey := func(maxLen int) []byte {
		b := make([]byte, rng.Intn(maxLen))
		rng.Read(b)
		return b
	}
	c.Low = randKey(20)
	if rng.Intn(3) > 0 {
		c.High = randKey(20)
	}
	n := rng.Intn(30)
	for i := 0; i < n; i++ {
		c.Keys = append(c.Keys, randKey(32))
		if c.Kind == Leaf {
			c.Vals = append(c.Vals, randKey(64))
		} else {
			c.Children = append(c.Children, PageID(rng.Uint64()%10000+1))
		}
	}
	if c.Kind == Leaf {
		if c.Vals == nil {
			c.Vals = [][]byte{}
		}
	} else if c.Children == nil {
		c.Children = []PageID{}
	}
	if c.Keys == nil {
		c.Keys = [][]byte{}
	}
	return c
}

// TestQuickRoundTrip property-tests Marshal/Unmarshal over random contents.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomContent(rng)
		size := c.Size()
		buf, err := Marshal(c, size+rng.Intn(256))
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		return reflect.DeepEqual(c, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCorruptionDetected flips one random byte in the payload and
// verifies the checksum catches it (header magic corruption is caught by the
// magic check instead).
func TestQuickCorruptionDetected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomContent(rng)
		buf, err := Marshal(c, c.Size())
		if err != nil {
			return false
		}
		if len(buf) <= crcStart {
			return true
		}
		pos := crcStart + rng.Intn(len(buf)-crcStart)
		buf[pos] ^= byte(1 + rng.Intn(255))
		_, err = Unmarshal(buf)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalLeaf(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := &Content{ID: 1, Kind: Leaf, Low: []byte("a"), High: []byte("z")}
	for i := 0; i < 100; i++ {
		c.Keys = append(c.Keys, []byte(fmt.Sprintf("key-%06d", i)))
		v := make([]byte, 16)
		rng.Read(v)
		c.Vals = append(c.Vals, v)
	}
	size := c.Size()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(c, size); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalLeaf(b *testing.B) {
	c := &Content{ID: 1, Kind: Leaf, Low: []byte("a"), High: []byte("z")}
	for i := 0; i < 100; i++ {
		c.Keys = append(c.Keys, []byte(fmt.Sprintf("key-%06d", i)))
		c.Vals = append(c.Vals, bytes.Repeat([]byte{byte(i)}, 16))
	}
	buf, err := Marshal(c, c.Size())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
