package obs

import (
	"sync"
	"testing"
	"time"
)

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	for _, q := range []float64{0.001, 0.5, 0.99, 0.999, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("Quantile(%g) on empty histogram = %v, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("Mean on empty histogram = %v, want 0", s.Mean())
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(300 * time.Nanosecond)
	s := h.Snapshot()
	want := bucketBound(bucketFor(300)) // the bucket's upper bound, 512ns
	for _, q := range []float64{0.001, 0.5, 0.999, 1} {
		if got := s.Quantile(q); got != want {
			t.Errorf("Quantile(%g) = %v, want %v", q, got, want)
		}
	}
	if s.Count != 1 || s.Sum != 300 {
		t.Errorf("count/sum = %d/%d, want 1/300", s.Count, s.Sum)
	}
}

func TestQuantileAllMassInOverflowBucket(t *testing.T) {
	var h Histogram
	// Far beyond the largest finite bound (~4.3s): everything lands in the
	// unbounded last bucket.
	for i := 0; i < 10; i++ {
		h.Observe(time.Hour)
	}
	s := h.Snapshot()
	if got := s.Buckets[HistBuckets-1]; got != 10 {
		t.Fatalf("overflow bucket count = %d, want 10", got)
	}
	want := bucketBound(HistBuckets - 1) // largest finite bound
	for _, q := range []float64{0.5, 0.999} {
		if got := s.Quantile(q); got != want {
			t.Errorf("Quantile(%g) = %v, want the largest finite bound %v", q, got, want)
		}
	}
	// The quantile is clamped, but the sum is exact.
	if s.Sum != uint64(10*time.Hour) {
		t.Errorf("sum = %d, want %d", s.Sum, uint64(10*time.Hour))
	}
}

func TestQuantileNegativeClampedToZero(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Sum != 0 {
		t.Errorf("negative observation: bucket0=%d sum=%d, want 1/0", s.Buckets[0], s.Sum)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while others
// take snapshots; run under -race this checks the lock-free protocol, and
// the final snapshot must account for every observation exactly.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				// No cross-counter invariant holds mid-race (buckets and
				// count are separate atomics), but each counter must be
				// monotone across snapshots.
				s := h.Snapshot()
				if s.Count < last {
					t.Errorf("count went backwards: %d -> %d", last, s.Count)
					return
				}
				last = s.Count
			}
		}()
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(seed*1000+i) * time.Nanosecond)
			}
		}(g)
	}
	// Release the snapshotters once every writer's observation has landed,
	// then wait for everything.
	for h.count.Load() < writers*perG {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Fatalf("count = %d, want %d", s.Count, writers*perG)
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}
