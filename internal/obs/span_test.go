package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// spanRegistry builds a span-sampling registry for tests.
func spanRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	cfg.Spans = true
	r := New(cfg)
	if r == nil {
		t.Fatal("New returned nil with Spans enabled")
	}
	return r
}

func TestSpanNilReceiverSafe(t *testing.T) {
	var sp *Span
	if !sp.Now().IsZero() {
		t.Error("nil span Now() should be zero")
	}
	// Every method must be callable on nil without panicking.
	sp.StageSince(StageLatchS, 0, time.Now())
	sp.EnterPhase(StageDescend)
	sp.ExitPhase()
	sp.Restart()
	sp.Fallback()
	sp.StageCommit(time.Millisecond, time.Millisecond)

	var r *Registry
	if got := r.SpanStart(OpSearch); got != nil {
		t.Error("nil registry SpanStart should return nil")
	}
	r.SpanEnd(nil, OpSearch, time.Millisecond)
	r.SlowOp(OpSearch, time.Hour)
	if r.Spans() != nil || r.SlowSpans() != nil {
		t.Error("nil registry rings should be nil")
	}
}

// TestSpanStageSumEqualsTotal is the core accounting invariant: after
// SpanEnd, the per-stage times (StageOther included) sum to the operation's
// total latency exactly.
func TestSpanStageSumEqualsTotal(t *testing.T) {
	r := spanRegistry(t, Config{SampleEvery: 1})
	sp := r.SpanStart(OpInsert)
	if sp == nil {
		t.Fatal("SampleEvery=1 must sample every operation")
	}
	start := time.Now()

	sp.EnterPhase(StageTraverse)
	lt0 := sp.Now()
	time.Sleep(2 * time.Millisecond) // a "latch acquire" inside the phase
	sp.StageSince(StageLatchX, 1, lt0)
	time.Sleep(time.Millisecond) // structural time charged to the phase
	sp.ExitPhase()

	at0 := sp.Now()
	time.Sleep(time.Millisecond)
	sp.StageSince(StageWALAppend, 0, at0)

	total := time.Since(start) + 500*time.Microsecond // uninstrumented tail
	r.SpanEnd(sp, OpInsert, total)

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	tr := spans[0]
	if tr.Op != OpInsert || !tr.Sampled || tr.Total != total {
		t.Fatalf("trace = %+v", tr)
	}
	var sum time.Duration
	for st := SpanStage(0); st < StageCount; st++ {
		if tr.Stages[st] < 0 {
			t.Errorf("stage %s negative: %v", st, tr.Stages[st])
		}
		sum += tr.Stages[st]
	}
	if sum != total {
		t.Errorf("stage sum %v != total %v", sum, total)
	}
	// The latch wait must not be double-charged to the traverse phase:
	// traverse is exclusive, so it is well under the phase's 3ms wall time.
	if tr.Stages[StageLatchX] < 2*time.Millisecond {
		t.Errorf("latch-x = %v, want >= 2ms", tr.Stages[StageLatchX])
	}
	if tr.Stages[StageTraverse] >= 3*time.Millisecond {
		t.Errorf("traverse = %v charged inclusively (want exclusive of the 2ms latch wait)", tr.Stages[StageTraverse])
	}
	if tr.Stages[StageOther] <= 0 {
		t.Errorf("other = %v, want > 0 (uninstrumented tail)", tr.Stages[StageOther])
	}
	if tr.Counts[StageLatchX] != 1 || tr.Counts[StageWALAppend] != 1 {
		t.Errorf("counts = %v", tr.Counts)
	}
}

func TestSpanSamplingOneInN(t *testing.T) {
	r := spanRegistry(t, Config{SampleEvery: 4})
	var sampled int
	for i := 0; i < 100; i++ {
		if sp := r.SpanStart(OpSearch); sp != nil {
			sampled++
			r.SpanEnd(sp, OpSearch, time.Microsecond)
		}
	}
	if sampled != 25 {
		t.Errorf("sampled %d of 100 with SampleEvery=4, want 25", sampled)
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := spanRegistry(t, Config{SampleEvery: 1, SpanCapacity: 8})
	for i := 0; i < 20; i++ {
		sp := r.SpanStart(OpSearch)
		r.SpanEnd(sp, OpSearch, time.Duration(i+1)*time.Microsecond)
	}
	spans := r.Spans()
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want capacity 8", len(spans))
	}
	// Oldest-first: the survivors are ops 13..20 (1-based).
	for i, sp := range spans {
		if want := time.Duration(13+i) * time.Microsecond; sp.Total != want {
			t.Errorf("span[%d].Total = %v, want %v", i, sp.Total, want)
		}
	}
}

func TestSlowOpFlightRecorder(t *testing.T) {
	r := spanRegistry(t, Config{SampleEvery: 1, SlowOpThreshold: time.Millisecond, FlightCapacity: 4})
	// An unsampled op below the threshold is ignored...
	r.SlowOp(OpSearch, 500*time.Microsecond)
	// ...and above it lands as a stage-less stub.
	r.SlowOp(OpDelete, 3*time.Millisecond)
	// A sampled span above the threshold is copied in with full stages.
	sp := r.SpanStart(OpInsert)
	r.SpanEnd(sp, OpInsert, 2*time.Millisecond)
	// A sampled span below the threshold stays out of the flight recorder.
	sp = r.SpanStart(OpSearch)
	r.SpanEnd(sp, OpSearch, 10*time.Microsecond)

	slow := r.SlowSpans()
	if len(slow) != 2 {
		t.Fatalf("flight recorder holds %d, want 2: %+v", len(slow), slow)
	}
	if slow[0].Op != OpDelete || slow[0].Sampled || !slow[0].Slow {
		t.Errorf("stub = %+v", slow[0])
	}
	if slow[0].Stages[StageOther] != 3*time.Millisecond {
		t.Errorf("stub should charge everything to other: %v", slow[0].Stages)
	}
	if slow[1].Op != OpInsert || !slow[1].Sampled || !slow[1].Slow {
		t.Errorf("sampled slow = %+v", slow[1])
	}
	if got := r.Snapshot().SlowOps; got != 2 {
		t.Errorf("SlowOps = %d, want 2", got)
	}
}

func TestStageCommitOffsets(t *testing.T) {
	r := spanRegistry(t, Config{SampleEvery: 1})
	sp := r.SpanStart(OpCommit)
	time.Sleep(time.Millisecond)
	sp.StageCommit(2*time.Millisecond, 500*time.Microsecond)
	r.SpanEnd(sp, OpCommit, 4*time.Millisecond)
	tr := r.Spans()[0]
	if tr.Stages[StageCommitPark] != 2*time.Millisecond {
		t.Errorf("park = %v", tr.Stages[StageCommitPark])
	}
	if tr.Stages[StageCommitForce] != 500*time.Microsecond {
		t.Errorf("force = %v", tr.Stages[StageCommitForce])
	}
	// Zero durations record nothing (immediate-ack durability modes).
	sp = r.SpanStart(OpCommit)
	sp.StageCommit(0, 0)
	r.SpanEnd(sp, OpCommit, time.Microsecond)
	tr = r.Spans()[1]
	if tr.Counts[StageCommitPark] != 0 || tr.Counts[StageCommitForce] != 0 {
		t.Errorf("zero commit stages recorded: %v", tr.Counts)
	}
}

func TestSpanIntervalBound(t *testing.T) {
	r := spanRegistry(t, Config{SampleEvery: 1})
	sp := r.SpanStart(OpSearch)
	for i := 0; i < maxSpanIntervals+10; i++ {
		sp.StageSince(StageBufFetch, 0, time.Now().Add(-time.Microsecond))
	}
	r.SpanEnd(sp, OpSearch, time.Millisecond)
	tr := r.Spans()[0]
	if len(tr.Intervals) != maxSpanIntervals {
		t.Errorf("intervals = %d, want bound %d", len(tr.Intervals), maxSpanIntervals)
	}
	if tr.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", tr.Dropped)
	}
	// Aggregates keep counting past the interval bound.
	if got := tr.Counts[StageBufFetch]; got != maxSpanIntervals+10 {
		t.Errorf("buf-fetch count = %d, want %d", got, maxSpanIntervals+10)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := spanRegistry(t, Config{SampleEvery: 1})
	sp := r.SpanStart(OpInsert)
	sp.EnterPhase(StageTraverse)
	lt0 := sp.Now()
	time.Sleep(time.Millisecond)
	sp.StageSince(StageLatchX, 2, lt0)
	sp.ExitPhase()
	sp.Restart()
	sp.Fallback()
	r.SpanEnd(sp, OpInsert, 2*time.Millisecond)
	sp = r.SpanStart(OpScan)
	r.SpanEnd(sp, OpScan, 30*time.Microsecond)
	want := r.Spans()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip count %d != %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Seq != w.Seq || g.Op != w.Op || g.Total != w.Total ||
			g.Restarts != w.Restarts || g.Fallback != w.Fallback ||
			g.Slow != w.Slow || g.Sampled != w.Sampled || g.Dropped != w.Dropped {
			t.Errorf("span %d header mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		if g.Stages != w.Stages {
			t.Errorf("span %d stages mismatch:\n got %v\nwant %v", i, g.Stages, w.Stages)
		}
		if g.Counts != w.Counts {
			t.Errorf("span %d counts mismatch:\n got %v\nwant %v", i, g.Counts, w.Counts)
		}
	}
}

func TestAttributeTail(t *testing.T) {
	mk := func(total, latch time.Duration) OpTrace {
		var tr OpTrace
		tr.Op = OpSearch
		tr.Total = total
		tr.Stages[StageLatchS] = latch
		tr.Counts[StageLatchS] = 1
		tr.Stages[StageOther] = total - latch
		tr.Counts[StageOther] = 1
		return tr
	}
	var spans []OpTrace
	for i := 0; i < 99; i++ {
		spans = append(spans, mk(time.Millisecond, 100*time.Microsecond))
	}
	// One outlier dominated by latch waits.
	spans = append(spans, mk(100*time.Millisecond, 90*time.Millisecond))

	thr, tail, shares := AttributeTail(spans, 0.99)
	if thr != 100*time.Millisecond || tail != 1 {
		t.Fatalf("thr=%v tail=%d, want 100ms/1", thr, tail)
	}
	if len(shares) == 0 || shares[0].Stage != StageLatchS {
		t.Fatalf("top tail stage = %+v, want latch-s", shares)
	}
	if shares[0].Share < 0.85 || shares[0].Share > 0.95 {
		t.Errorf("latch-s share = %v, want ~0.9", shares[0].Share)
	}

	if _, tail, _ := AttributeTail(nil, 0.99); tail != 0 {
		t.Errorf("empty input tail = %d", tail)
	}
	// q=1 clamps to the max element.
	thr, tail, _ = AttributeTail(spans, 1)
	if thr != 100*time.Millisecond || tail != 1 {
		t.Errorf("q=1: thr=%v tail=%d", thr, tail)
	}
}

func TestWriteAttributionOutput(t *testing.T) {
	var sb strings.Builder
	if err := WriteAttribution(&sb, nil); err != nil {
		t.Fatalf("empty: %v", err)
	}
	if !strings.Contains(sb.String(), "no sampled spans") {
		t.Errorf("empty output = %q", sb.String())
	}

	var tr OpTrace
	tr.Op = OpSearch
	tr.Total = time.Millisecond
	tr.Stages[StageTraverse] = 600 * time.Microsecond
	tr.Counts[StageTraverse] = 1
	tr.Stages[StageOther] = 400 * time.Microsecond
	tr.Counts[StageOther] = 1
	sb.Reset()
	if err := WriteAttribution(&sb, []OpTrace{tr}); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"stage coverage 100.0%", "traverse", "60.0%", "other", "40.0%",
		"p99 tail: 1 ops", "p999 tail: 1 ops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("attribution output missing %q:\n%s", want, out)
		}
	}
}

// TestSpanConcurrent runs sampled spans from many goroutines; under -race
// this validates that the shared sampling counter, rings and histograms are
// safe while each span stays goroutine-local.
func TestSpanConcurrent(t *testing.T) {
	r := spanRegistry(t, Config{SampleEvery: 2, SpanCapacity: 4096})
	var wg sync.WaitGroup
	const (
		workers = 8
		perG    = 500
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := r.SpanStart(OpSearch)
				if sp == nil {
					continue
				}
				t0 := sp.Now()
				sp.StageSince(StageBufFetch, 0, t0)
				r.SpanEnd(sp, OpSearch, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().SpansSampled; got != workers*perG/2 {
		t.Errorf("sampled %d, want %d", got, workers*perG/2)
	}
	if got := len(r.Spans()); got != workers*perG/2 {
		t.Errorf("ring holds %d", got)
	}
}
