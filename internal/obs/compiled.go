//go:build !obsoff

package obs

// Compiled reports whether observability instrumentation is compiled in.
// Building with -tags obsoff sets it to false: every instrumentation site
// is guarded by this constant, so the compiler removes the code entirely,
// producing the uninstrumented baseline CI's overhead gate compares against.
const Compiled = true
