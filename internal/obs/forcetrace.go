//go:build !obstrace

package obs

// ForceTrace is true under -tags obstrace: every tree is opened with full
// metrics and tracing regardless of Options.Observability, so the whole test
// suite exercises the instrumented paths (CI runs it with -race).
const ForceTrace = false
