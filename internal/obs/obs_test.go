package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{255, 0},
		{256, 1},
		{511, 1},
		{512, 2},
		{time.Microsecond, 2}, // 1000ns lies in [512ns, 1024ns)
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Monotone, and everything lands in range.
	prev := 0
	for d := time.Duration(1); d < 20*time.Second; d *= 3 {
		b := bucketFor(d)
		if b < prev || b >= HistBuckets {
			t.Fatalf("bucketFor(%v) = %d (prev %d)", d, b, prev)
		}
		prev = b
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	for i := 0; i < 90; i++ {
		h.Observe(300 * time.Nanosecond) // bucket 1, bound 512ns
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 != 512*time.Nanosecond {
		t.Fatalf("p50 = %v, want 512ns", p50)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want within [1ms, 2ms]", p99)
	}
	if m := s.Mean(); m < 100*time.Microsecond || m > 110*time.Microsecond {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramMergeDelta(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	before := h.Snapshot()
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	delta := h.Snapshot().Delta(before)
	if delta.Count != 2 {
		t.Fatalf("delta count = %d", delta.Count)
	}
	merged := before.Merge(delta)
	if merged.Count != 3 || merged != h.Snapshot() {
		t.Fatalf("merge mismatch: %+v vs %+v", merged, h.Snapshot())
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.ObserveOp(OpInsert, time.Millisecond)
	r.ObserveAction(ActPost, time.Millisecond)
	r.ObserveLongWait(time.Millisecond)
	r.ObserveLockWait(time.Millisecond)
	r.PageLoad(time.Millisecond)
	r.WriteBack(time.Millisecond)
	r.LogAppend(time.Millisecond)
	r.LogFlush(time.Millisecond)
	r.Emit(Event{Kind: EvStarted})
	if r.Events() != nil || r.Snapshot() != nil || r.MetricsOn() || r.TraceOn() {
		t.Fatal("nil registry should be inert")
	}
	if New(Config{}) != nil {
		t.Fatal("New with nothing enabled should return nil")
	}
}

func TestRingDropOldest(t *testing.T) {
	r := New(Config{Trace: true, TraceCapacity: 4})
	for i := 1; i <= 7; i++ {
		r.Emit(Event{Kind: EvStarted, Page: uint64(i)})
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d", len(ev))
	}
	for i, e := range ev {
		if want := uint64(i + 4); e.Page != want || e.Seq != want {
			t.Fatalf("event %d = page %d seq %d, want %d", i, e.Page, e.Seq, want)
		}
	}
	s := r.Snapshot()
	if s.TraceSeq != 7 || s.TraceDropped != 3 {
		t.Fatalf("seq/dropped = %d/%d", s.TraceSeq, s.TraceDropped)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := New(Config{Metrics: true, Trace: true, TraceCapacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.ObserveOp(Op(i%int(OpCount)), time.Duration(i))
				r.ObserveAction(Action(i%int(ActCount)), time.Duration(i))
				r.Emit(Event{Kind: EvStarted, Page: uint64(g)})
				if i%100 == 0 {
					r.Snapshot()
					r.Events()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	var total uint64
	for _, h := range s.Ops {
		total += h.Count
	}
	if total != 4000 {
		t.Fatalf("op observations = %d", total)
	}
	if s.TraceSeq != 4000 || s.TraceDropped != 4000-64 {
		t.Fatalf("trace seq/dropped = %d/%d", s.TraceSeq, s.TraceDropped)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 1, TS: time.Millisecond, Kind: EvEnqueued, Action: ActPost, Page: 7, Level: 1, Epoch: 42},
		{Seq: 2, TS: 2 * time.Millisecond, Kind: EvAbortDX, Action: ActDelete, Page: 9, DXWant: 3, DXSeen: 4},
		{Seq: 3, TS: 3 * time.Millisecond, Kind: EvAbortDD, Action: ActPost, Page: 9, DDWant: 1, DDSeen: 2},
		{Seq: 4, TS: 4 * time.Millisecond, Kind: EvLatchWait, Dur: 5 * time.Millisecond},
		{Seq: 5, TS: 5 * time.Millisecond, Kind: EvDeadlockVictim},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
	for _, e := range in {
		if s := FormatEvent(e); !strings.Contains(s, e.Kind.String()) {
			t.Fatalf("FormatEvent(%v) = %q missing kind", e.Kind, s)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	for o := OpSearch; o < OpCount; o++ {
		if strings.Contains(o.String(), "?") {
			t.Fatalf("Op %d has no name", o)
		}
	}
	for a := ActPost; a < ActCount; a++ {
		if strings.Contains(a.String(), "?") {
			t.Fatalf("Action %d has no name", a)
		}
		if actionFromString(a.String()) != a {
			t.Fatalf("action round-trip %v", a)
		}
	}
	for k := EvEnqueued; k <= EvRelatchAbort; k++ {
		if strings.Contains(k.String(), "?") {
			t.Fatalf("EventKind %d has no name", k)
		}
		if eventKindFromString(k.String()) != k {
			t.Fatalf("kind round-trip %v", k)
		}
	}
}
