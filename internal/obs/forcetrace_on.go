//go:build obstrace

package obs

// ForceTrace forces full metrics and tracing on every tree (see the
// !obstrace variant).
const ForceTrace = true
