package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one Chrome trace-event ("X" complete events only), the
// format Perfetto and about:tracing load natively. Timestamps and durations
// are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container form.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace writes the spans as Chrome trace-event JSON. Each span
// becomes its own track (tid = span sequence number): one complete event
// covering the operation — its args carry the exclusive per-stage
// aggregates, so the file round-trips through ReadChromeTrace — plus one
// event per recorded interval nested inside it. The output loads directly
// in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []OpTrace) error {
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, t := range spans {
		stages := make(map[string]any, StageCount)
		counts := make(map[string]any, StageCount)
		for st := SpanStage(0); st < StageCount; st++ {
			if t.Counts[st] == 0 && t.Stages[st] == 0 {
				continue
			}
			stages[st.String()] = t.Stages[st].Nanoseconds()
			counts[st.String()] = t.Counts[st]
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: t.Op.String(),
			Cat:  "op",
			Ph:   "X",
			TS:   usec(t.Start),
			Dur:  usec(t.Total),
			PID:  1,
			TID:  t.Seq,
			Args: map[string]any{
				"op":        t.Op.String(),
				"seq":       t.Seq,
				"total_ns":  t.Total.Nanoseconds(),
				"restarts":  t.Restarts,
				"fallback":  t.Fallback,
				"slow":      t.Slow,
				"sampled":   t.Sampled,
				"dropped":   t.Dropped,
				"stage_ns":  stages,
				"stage_cnt": counts,
			},
		})
		for _, iv := range t.Intervals {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: iv.Stage.String(),
				Cat:  "stage",
				Ph:   "X",
				TS:   usec(t.Start + iv.Start),
				Dur:  usec(iv.Dur),
				PID:  1,
				TID:  t.Seq,
				Args: map[string]any{"level": iv.Level},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// ReadChromeTrace parses a Chrome trace-event JSON file written by
// WriteChromeTrace back into OpTraces. Only the cat:"op" events are read —
// they carry the exact per-stage aggregates in their args; the cat:"stage"
// events are visualization detail. Both the object form ({"traceEvents":
// [...]}) and the bare-array form are accepted.
func ReadChromeTrace(r io.Reader) ([]OpTrace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		// Bare-array form.
		if aerr := json.Unmarshal(data, &tr.TraceEvents); aerr != nil {
			return nil, fmt.Errorf("chrome trace: %w", err)
		}
	}
	var out []OpTrace
	for _, ev := range tr.TraceEvents {
		if ev.Cat != "op" || ev.Ph != "X" {
			continue
		}
		t := OpTrace{
			Seq:   ev.TID,
			Op:    opFromString(ev.Name),
			Start: time.Duration(ev.TS * 1e3),
			Total: time.Duration(ev.Dur * 1e3),
		}
		if t.Op >= OpCount {
			continue
		}
		if n, ok := argFloat(ev.Args, "total_ns"); ok {
			t.Total = time.Duration(int64(n))
		}
		if n, ok := argFloat(ev.Args, "restarts"); ok {
			t.Restarts = uint32(n)
		}
		if n, ok := argFloat(ev.Args, "dropped"); ok {
			t.Dropped = uint32(n)
		}
		t.Fallback, _ = ev.Args["fallback"].(bool)
		t.Slow, _ = ev.Args["slow"].(bool)
		t.Sampled, _ = ev.Args["sampled"].(bool)
		if m, ok := ev.Args["stage_ns"].(map[string]any); ok {
			for name, v := range m {
				st := stageFromString(name)
				if st >= StageCount {
					continue
				}
				if n, ok := v.(float64); ok {
					t.Stages[st] = time.Duration(int64(n))
				}
			}
		}
		if m, ok := ev.Args["stage_cnt"].(map[string]any); ok {
			for name, v := range m {
				st := stageFromString(name)
				if st >= StageCount {
					continue
				}
				if n, ok := v.(float64); ok {
					t.Counts[st] = uint32(n)
				}
			}
		}
		out = append(out, t)
	}
	return out, nil
}

func argFloat(args map[string]any, key string) (float64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}
