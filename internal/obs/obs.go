// Package obs is the tree's observability layer: a lock-free per-tree
// metrics registry (latency histograms for operations, maintenance actions
// and I/O), and a bounded, drop-oldest trace ring recording SMO lifecycle
// transitions — enqueued → started → aborted-by-D_X / aborted-by-D_D /
// completed / requeued — plus latch-wait episodes, lock no-wait failures,
// deadlock victims and drain bailouts.
//
// Everything is nil-receiver safe: a tree built without observability holds
// a nil *Registry and every call collapses to a pointer test. Two build
// tags adjust the layer globally:
//
//	obstrace  — force full metrics+tracing on every tree (CI runs the whole
//	            suite this way so instrumentation is exercised under -race).
//	obsoff    — compile the instrumentation out entirely (Compiled=false
//	            makes every guarded site dead code), giving CI an
//	            uninstrumented baseline for the overhead gate.
package obs

import "time"

// Config enables and sizes a tree's observability. The zero value disables
// everything; a pointer to it in Options.Observability turns the layer on.
type Config struct {
	// Metrics enables the latency histograms (operations, maintenance
	// actions, I/O) and the long-latch-wait counter.
	Metrics bool

	// Trace enables the SMO lifecycle trace ring.
	Trace bool

	// TraceCapacity bounds the trace ring; once full the oldest events are
	// dropped (counted in Snapshot.TraceDropped). Default 4096.
	TraceCapacity int

	// LatchWaitThreshold is the blocking-latch-acquisition duration at or
	// above which a wait is counted as a long wait and, with Trace on,
	// recorded as an EvLatchWait event. Default 1ms.
	LatchWaitThreshold time.Duration

	// Spans enables sampling-based per-operation span tracing: 1 in
	// SampleEvery operations carries a span context through the hot path,
	// recording timed stages (optimistic descent, latch waits, buffer
	// fetches vs. misses, lock waits, WAL appends, group-commit park and
	// force). Sampled spans feed the per-stage latency histograms, the
	// sampled-span ring (Chrome trace export) and the slow-op flight
	// recorder. Enabling Spans implies Metrics.
	Spans bool

	// SampleEvery is the span sampling rate: 1 in SampleEvery operations is
	// traced (default 1024; 1 traces every operation).
	SampleEvery int

	// SlowOpThreshold is the operation latency at or above which an
	// operation enters the slow-op flight recorder. Zero selects the
	// adaptive default: the p999 of the merged operation histograms,
	// floored at 1ms, recomputed as samples accumulate.
	SlowOpThreshold time.Duration

	// SpanCapacity bounds the sampled-span ring; once full the oldest spans
	// are dropped. Default 512.
	SpanCapacity int

	// FlightCapacity bounds the slow-op flight recorder ring. Default 64.
	FlightCapacity int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 4096
	}
	if c.LatchWaitThreshold <= 0 {
		c.LatchWaitThreshold = time.Millisecond
	}
	if c.Spans {
		// Spans feed the per-stage histograms and the adaptive slow-op
		// threshold, both of which live in the metrics section.
		c.Metrics = true
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1024
	}
	if c.SpanCapacity <= 0 {
		c.SpanCapacity = 512
	}
	if c.FlightCapacity <= 0 {
		c.FlightCapacity = 64
	}
	return c
}

// Op identifies a foreground operation class for the latency histograms.
type Op uint8

// Operation classes.
const (
	OpSearch Op = iota
	OpInsert
	OpUpdate
	OpDelete
	OpScan
	// OpCommit is a transaction commit: the commit record append plus the
	// durability wait the configured mode imposes (sync force, or the
	// group-commit park until the log-writer's coalesced force).
	OpCommit
	// OpCount is the number of operation classes.
	OpCount
)

// String returns the lowercase operation name.
func (o Op) String() string {
	switch o {
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpCommit:
		return "commit"
	default:
		return "op?"
	}
}

// opFromString is the inverse of Op.String, for span decode.
func opFromString(s string) Op {
	for o := OpSearch; o < OpCount; o++ {
		if o.String() == s {
			return o
		}
	}
	return OpCount
}

// Action identifies a maintenance-action kind (mirrors the to-do queue's
// action kinds) for histograms and trace events.
type Action uint8

// Maintenance action kinds.
const (
	ActPost Action = iota
	ActDelete
	ActShrink
	ActReclaim
	// ActCount is the number of action kinds.
	ActCount
)

// String returns the lowercase action name.
func (a Action) String() string {
	switch a {
	case ActPost:
		return "post"
	case ActDelete:
		return "delete"
	case ActShrink:
		return "shrink"
	case ActReclaim:
		return "reclaim"
	default:
		return "action?"
	}
}

// EventKind classifies a trace event.
type EventKind uint8

// Trace event kinds. The SMO lifecycle is: EvEnqueued → EvStarted →
// {EvCompleted, EvAbortDX, EvAbortDD, EvAbortIdentity, EvAbortEdge,
// EvSkipFit, EvRequeued}. The remaining kinds record the §2.4 lock/latch
// interaction and scheduler distress.
const (
	// EvEnqueued: an action entered the to-do queue.
	EvEnqueued EventKind = iota + 1
	// EvStarted: a worker (or inline assist / drain) began processing.
	EvStarted
	// EvCompleted: the action finished (including found-already-done).
	EvCompleted
	// EvAbortDX: abandoned because the global index-delete state D_X
	// changed (§3.1); DXWant/DXSeen carry the remembered/observed values.
	EvAbortDX
	// EvAbortDD: a posting abandoned because the parent's data-delete
	// state D_D changed (§3.2); DDWant/DDSeen carry the values.
	EvAbortDD
	// EvAbortIdentity: abandoned because the remembered parent reference
	// no longer names the same node incarnation.
	EvAbortIdentity
	// EvAbortEdge: a consolidation abandoned for structural reasons
	// (leftmost child, sibling mismatch, victim gone).
	EvAbortEdge
	// EvSkipFit: a consolidation skipped — the victim refilled or does not
	// fit its left sibling.
	EvSkipFit
	// EvRequeued: the action was put back for a later retry.
	EvRequeued
	// EvDrainBailout: DrainTodo gave up on a queue that refused to shrink.
	EvDrainBailout
	// EvLatchWait: a blocking latch acquisition waited at least
	// Config.LatchWaitThreshold; Dur is the wait.
	EvLatchWait
	// EvLockNoWait: a record lock no-wait request was refused under the
	// leaf latch (§2.4), forcing the release-wait-relatch path.
	EvLockNoWait
	// EvDeadlockVictim: a transaction's blocking lock request was chosen
	// as the deadlock victim.
	EvDeadlockVictim
	// EvRelatchAbort: a transaction aborted because delete state changed
	// during the §2.4 re-latch.
	EvRelatchAbort
	// EvOptFallback: an optimistic (latch-free) read exhausted its restart
	// budget and fell back to the pessimistic latch-coupled traversal.
	EvOptFallback
	// EvTraverseExhausted: a latch-coupled traversal hit its restart
	// budget (live-lock); the operation failed.
	EvTraverseExhausted
	// EvRecoveryRedo: crash recovery completed its redo/undo passes; Page
	// carries the number of records replayed, Dur the recovery wall time.
	EvRecoveryRedo
	// EvRecoveryTornPage: redo found a torn (checksum-failing) page image
	// and repaired it from logged after-images; Page is the page ID.
	EvRecoveryTornPage
	// EvRecoveryTornTail: the log device found garbage past its last valid
	// frame (an append interrupted by the power cut); Page carries the
	// trailing byte count.
	EvRecoveryTornTail
)

// String returns the event kind's wire name (used in trace dumps).
func (k EventKind) String() string {
	switch k {
	case EvEnqueued:
		return "enqueued"
	case EvStarted:
		return "started"
	case EvCompleted:
		return "completed"
	case EvAbortDX:
		return "abort-dx"
	case EvAbortDD:
		return "abort-dd"
	case EvAbortIdentity:
		return "abort-identity"
	case EvAbortEdge:
		return "abort-edge"
	case EvSkipFit:
		return "skip-fit"
	case EvRequeued:
		return "requeued"
	case EvDrainBailout:
		return "drain-bailout"
	case EvLatchWait:
		return "latch-wait"
	case EvLockNoWait:
		return "lock-no-wait"
	case EvDeadlockVictim:
		return "deadlock-victim"
	case EvRelatchAbort:
		return "relatch-abort"
	case EvOptFallback:
		return "opt-fallback"
	case EvTraverseExhausted:
		return "traverse-exhausted"
	case EvRecoveryRedo:
		return "recovery-redo"
	case EvRecoveryTornPage:
		return "recovery-torn-page"
	case EvRecoveryTornTail:
		return "recovery-torn-tail"
	default:
		return "event?"
	}
}

// eventKindFromString is the inverse of EventKind.String, for trace decode.
func eventKindFromString(s string) EventKind {
	for k := EvEnqueued; k <= EvRecoveryTornTail; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// actionFromString is the inverse of Action.String, for trace decode.
func actionFromString(s string) Action {
	for a := ActPost; a < ActCount; a++ {
		if a.String() == s {
			return a
		}
	}
	return ActCount
}
