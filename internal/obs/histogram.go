package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of latency buckets. Bucket i counts durations
// in [256ns<<(i-1), 256ns<<i) (bucket 0 is everything below 256ns); the
// last bucket is unbounded. 26 buckets reach ~4.3s, beyond any latency the
// tree can legitimately produce outside a stall worth seeing whole.
const HistBuckets = 26

// Histogram is a lock-free fixed-bucket latency histogram with exponential
// (power-of-two) bucket bounds. The zero value is ready for use.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := uint64(d)
	if ns < 256 {
		return 0
	}
	b := bits.Len64(ns) - 8 // 256 = 1<<8 → bucket 1 starts at Len 9
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// bucketBound returns bucket i's exclusive upper bound; the last bucket has
// no bound and reports the largest finite one.
func bucketBound(i int) time.Duration {
	if i >= HistBuckets-1 {
		i = HistBuckets - 2
	}
	return time.Duration(256) << uint(i)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64 // total nanoseconds
}

// BucketBound returns bucket i's exclusive upper bound (see bucketFor); the
// unbounded last bucket reports the largest finite bound.
func (HistogramSnapshot) BucketBound(i int) time.Duration { return bucketBound(i) }

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket containing it — a conservative (never understated) estimate.
// Zero when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(HistBuckets - 1)
}

// Mean returns the average observed duration, zero when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Merge returns the bucket-wise sum of s and o.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return s
}

// Delta returns s minus an earlier snapshot prev of the same histogram,
// isolating the activity between the two (the bench harness uses it to
// exclude preload traffic from measured-phase percentiles).
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	for i := range s.Buckets {
		s.Buckets[i] -= prev.Buckets[i]
	}
	s.Count -= prev.Count
	s.Sum -= prev.Sum
	return s
}
