package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one trace-ring entry. Fields beyond Seq/TS/Kind are populated
// where they make sense for the kind: SMO lifecycle events carry the
// action's page/level/epoch and the remembered-vs-observed delete-state
// values; latch and lock events carry a duration or page where known.
type Event struct {
	// Seq is the event's emission sequence number (monotone per registry,
	// including dropped events).
	Seq uint64
	// TS is the monotonic emission time, as an offset from the registry's
	// creation.
	TS time.Duration

	Kind   EventKind
	Action Action

	// Page/Level/Epoch identify the node the action originates at.
	Page  uint64
	Level uint8
	Epoch uint64

	// DXWant/DXSeen are the remembered and observed global index-delete
	// state for EvAbortDX; DDWant/DDSeen the per-parent data-delete state
	// for EvAbortDD.
	DXWant, DXSeen uint64
	DDWant, DDSeen uint64

	// Dur is a duration where the kind has one (EvLatchWait).
	Dur time.Duration
}

// Registry is one tree's metrics-and-trace sink. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so instrumentation
// sites need only a single pointer test.
type Registry struct {
	cfg   Config
	start time.Time // monotonic base for Event.TS

	ops     [OpCount]Histogram
	actions [ActCount]Histogram

	pageLoad  Histogram // buffer pool misses: store read + decode
	writeBack Histogram // buffer pool dirty write-backs
	logAppend Histogram // WAL record appends
	logFlush  Histogram // WAL device syncs
	lockWait  Histogram // blocking record-lock waits

	groupForce Histogram // commit-pipeline coalesced forces (batch wall time)
	groupAck   Histogram // parked-commit enqueue-to-ack delay

	// groupBatch* account the commit-pipeline batch sizes (commits per
	// force): total commits, forces that carried commits, and the largest
	// single batch.
	groupBatchSum   atomic.Uint64
	groupBatchCount atomic.Uint64
	groupBatchMax   atomic.Uint64

	// combineWait is a parked combiner's publish-to-result delay;
	// combineBatch* account the combining drains' batch sizes (operations
	// per drain): total operations, drains, and the largest single batch.
	combineWait     Histogram
	combineBatchSum atomic.Uint64
	combineBatchCnt atomic.Uint64
	combineBatchMax atomic.Uint64

	longWaits atomic.Uint64 // latch waits >= cfg.LatchWaitThreshold

	// Span sampling state: every sampleCtr hit on cfg.SampleEvery starts a
	// span; finished spans feed spanStages, the sampled-span ring and —
	// past slowNS — the slow-op flight recorder.
	spanStages   [StageCount]Histogram
	sampleCtr    atomic.Uint64
	spanSeq      atomic.Uint64
	spansSampled atomic.Uint64
	slowOps      atomic.Uint64
	slowNS       atomic.Int64
	spanRing     opRing
	flightRing   opRing

	ring struct {
		mu      sync.Mutex
		buf     []Event
		next    int
		full    bool
		seq     uint64
		dropped uint64
	}
}

// opRing is a bounded, mutex-guarded, drop-oldest ring of finished spans.
// Pushes happen only on sampled or slow operations, so contention is
// negligible.
type opRing struct {
	mu   sync.Mutex
	buf  []OpTrace
	next int
	full bool
}

func (g *opRing) push(t OpTrace) {
	g.mu.Lock()
	g.buf[g.next] = t
	g.next++
	if g.next == len(g.buf) {
		g.next = 0
		g.full = true
	}
	g.mu.Unlock()
}

func (g *opRing) snapshot() []OpTrace {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []OpTrace
	if g.full {
		out = make([]OpTrace, 0, len(g.buf))
		out = append(out, g.buf[g.next:]...)
		out = append(out, g.buf[:g.next]...)
	} else {
		out = append(out, g.buf[:g.next]...)
	}
	return out
}

// New builds a registry for cfg. Returns nil when cfg enables nothing, so
// callers can keep the nil-pointer fast path.
func New(cfg Config) *Registry {
	if !cfg.Metrics && !cfg.Trace && !cfg.Spans {
		return nil
	}
	cfg = cfg.withDefaults()
	r := &Registry{cfg: cfg, start: time.Now()}
	if cfg.Trace {
		r.ring.buf = make([]Event, cfg.TraceCapacity)
	}
	if cfg.Spans {
		r.spanRing.buf = make([]OpTrace, cfg.SpanCapacity)
		r.flightRing.buf = make([]OpTrace, cfg.FlightCapacity)
		if cfg.SlowOpThreshold > 0 {
			r.slowNS.Store(int64(cfg.SlowOpThreshold))
		} else {
			// Adaptive: start at the 1ms floor; SpanEnd re-derives the
			// p999-based threshold as samples accumulate.
			r.slowNS.Store(int64(time.Millisecond))
		}
	}
	return r
}

// MetricsOn reports whether latency histograms are enabled.
func (r *Registry) MetricsOn() bool { return r != nil && r.cfg.Metrics }

// TraceOn reports whether the trace ring is enabled.
func (r *Registry) TraceOn() bool { return r != nil && r.cfg.Trace }

// LatchWaitThreshold returns the configured long-latch-wait threshold.
func (r *Registry) LatchWaitThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.LatchWaitThreshold
}

// SpansOn reports whether span sampling is enabled.
func (r *Registry) SpansOn() bool { return r != nil && r.cfg.Spans }

// SlowOpThresholdNS returns the current slow-op threshold in nanoseconds
// (fixed from the config, or the adaptive p999-derived value).
func (r *Registry) SlowOpThresholdNS() int64 {
	if r == nil {
		return 0
	}
	return r.slowNS.Load()
}

// SpanStart returns a new span when this operation is selected by the
// sampler, nil otherwise (and always nil when spans are off). The counter
// is a single shared atomic: with SampleEvery=N, one in N operations
// tree-wide is sampled regardless of which goroutine runs it.
func (r *Registry) SpanStart(op Op) *Span {
	if r == nil || !r.cfg.Spans {
		return nil
	}
	if r.sampleCtr.Add(1)%uint64(r.cfg.SampleEvery) != 0 {
		return nil
	}
	return &Span{op: op, start: time.Now()}
}

// SpanEnd finishes a sampled span: the uninstrumented remainder goes to
// StageOther (so the stage sum equals d exactly), stage aggregates feed the
// per-stage histograms, the trace enters the sampled-span ring, and — at or
// above the slow-op threshold — the flight recorder.
func (r *Registry) SpanEnd(sp *Span, op Op, d time.Duration) {
	if r == nil || sp == nil {
		return
	}
	sp.ExitPhase() // defensive: a panic path could leave a phase open
	if d < 0 {
		d = 0
	}
	var sum time.Duration
	for st := SpanStage(0); st < StageOther; st++ {
		sum += time.Duration(sp.stages[st])
	}
	if other := d - sum; other > 0 {
		sp.stages[StageOther] = int64(other)
		sp.counts[StageOther] = 1
	}
	t := OpTrace{
		Seq:       r.spanSeq.Add(1),
		Op:        op,
		Start:     time.Since(r.start) - d,
		Total:     d,
		Restarts:  sp.restarts,
		Fallback:  sp.fallback,
		Sampled:   true,
		Dropped:   sp.dropped,
		Intervals: sp.intervals,
	}
	if t.Start < 0 {
		t.Start = 0
	}
	for st := SpanStage(0); st < StageCount; st++ {
		t.Stages[st] = time.Duration(sp.stages[st])
		t.Counts[st] = sp.counts[st]
		if sp.counts[st] > 0 {
			r.spanStages[st].Observe(t.Stages[st])
		}
	}
	n := r.spansSampled.Add(1)
	if r.cfg.SlowOpThreshold <= 0 && n%64 == 0 {
		r.retuneSlowThreshold()
	}
	if int64(d) >= r.slowNS.Load() {
		t.Slow = true
		r.slowOps.Add(1)
		r.flightRing.push(t)
	}
	r.spanRing.push(t)
}

// SlowOp records an *unsampled* operation that met the slow-op threshold:
// a stage-less stub (all time in StageOther) enters the flight recorder so
// slow outliers are captured even between samples.
func (r *Registry) SlowOp(op Op, d time.Duration) {
	if r == nil || !r.cfg.Spans || int64(d) < r.slowNS.Load() {
		return
	}
	r.slowOps.Add(1)
	t := OpTrace{
		Seq:   r.spanSeq.Add(1),
		Op:    op,
		Start: time.Since(r.start) - d,
		Total: d,
		Slow:  true,
	}
	if t.Start < 0 {
		t.Start = 0
	}
	t.Stages[StageOther] = d
	t.Counts[StageOther] = 1
	r.flightRing.push(t)
}

// retuneSlowThreshold re-derives the adaptive slow-op threshold as the p999
// of the merged per-operation histograms, floored at 1ms.
func (r *Registry) retuneSlowThreshold() {
	var merged HistogramSnapshot
	for i := range r.ops {
		merged = merged.Merge(r.ops[i].Snapshot())
	}
	thr := merged.Quantile(0.999)
	if thr < time.Millisecond {
		thr = time.Millisecond
	}
	r.slowNS.Store(int64(thr))
}

// Spans returns the sampled-span ring's contents, oldest first.
func (r *Registry) Spans() []OpTrace {
	if r == nil || !r.cfg.Spans {
		return nil
	}
	return r.spanRing.snapshot()
}

// SlowSpans returns the slow-op flight recorder's contents, oldest first.
func (r *Registry) SlowSpans() []OpTrace {
	if r == nil || !r.cfg.Spans {
		return nil
	}
	return r.flightRing.snapshot()
}

// ObserveOp records one foreground operation's latency.
func (r *Registry) ObserveOp(op Op, d time.Duration) {
	if r == nil || !r.cfg.Metrics || op >= OpCount {
		return
	}
	r.ops[op].Observe(d)
}

// ObserveAction records one maintenance action's processing latency.
func (r *Registry) ObserveAction(a Action, d time.Duration) {
	if r == nil || !r.cfg.Metrics || a >= ActCount {
		return
	}
	r.actions[a].Observe(d)
}

// ObserveLongWait counts a latch wait at or above the threshold.
func (r *Registry) ObserveLongWait(d time.Duration) {
	if r == nil {
		return
	}
	r.longWaits.Add(1)
	if r.cfg.Trace {
		r.Emit(Event{Kind: EvLatchWait, Dur: d})
	}
}

// ObserveLockWait records one blocking record-lock wait.
func (r *Registry) ObserveLockWait(d time.Duration) {
	if r == nil || !r.cfg.Metrics {
		return
	}
	r.lockWait.Observe(d)
}

// PageLoad implements the buffer pool's Observer.
func (r *Registry) PageLoad(d time.Duration) {
	if r == nil || !r.cfg.Metrics {
		return
	}
	r.pageLoad.Observe(d)
}

// WriteBack implements the buffer pool's Observer.
func (r *Registry) WriteBack(d time.Duration) {
	if r == nil || !r.cfg.Metrics {
		return
	}
	r.writeBack.Observe(d)
}

// LogAppend implements the WAL's Observer.
func (r *Registry) LogAppend(d time.Duration) {
	if r == nil || !r.cfg.Metrics {
		return
	}
	r.logAppend.Observe(d)
}

// LogFlush implements the WAL's Observer.
func (r *Registry) LogFlush(d time.Duration) {
	if r == nil || !r.cfg.Metrics {
		return
	}
	r.logFlush.Observe(d)
}

// LogGroupForce implements the WAL's GroupObserver: one coalesced commit
// force of the log-writer, with the number of parked commits it covered
// (its group size) and the batch's wall time.
func (r *Registry) LogGroupForce(batch int, d time.Duration) {
	if r == nil || !r.cfg.Metrics {
		return
	}
	r.groupForce.Observe(d)
	if batch <= 0 {
		return
	}
	n := uint64(batch)
	r.groupBatchSum.Add(n)
	r.groupBatchCount.Add(1)
	for {
		max := r.groupBatchMax.Load()
		if n <= max || r.groupBatchMax.CompareAndSwap(max, n) {
			return
		}
	}
}

// ObserveCombineWait records one parked combiner's delay from publishing
// its operation into a leaf's combining buffer to receiving its result.
func (r *Registry) ObserveCombineWait(d time.Duration) {
	if r == nil || !r.cfg.Metrics {
		return
	}
	r.combineWait.Observe(d)
}

// CombineBatch accounts one combining drain that applied operations: its
// batch size feeds the sum/count/max aggregates.
func (r *Registry) CombineBatch(batch int) {
	if r == nil || !r.cfg.Metrics || batch <= 0 {
		return
	}
	n := uint64(batch)
	r.combineBatchSum.Add(n)
	r.combineBatchCnt.Add(1)
	for {
		max := r.combineBatchMax.Load()
		if n <= max || r.combineBatchMax.CompareAndSwap(max, n) {
			return
		}
	}
}

// LogGroupAck implements the WAL's GroupObserver: one parked commit's
// delay from enqueue on the log-writer to acknowledgement.
func (r *Registry) LogGroupAck(d time.Duration) {
	if r == nil || !r.cfg.Metrics {
		return
	}
	r.groupAck.Observe(d)
}

// Emit appends a trace event, stamping Seq and TS. The ring is bounded:
// once full the oldest event is overwritten and counted as dropped. Events
// are rare (SMO transitions and distress episodes, not per-operation), so a
// mutex-guarded ring costs nothing measurable.
func (r *Registry) Emit(e Event) {
	if r == nil || !r.cfg.Trace {
		return
	}
	e.TS = time.Since(r.start)
	rg := &r.ring
	rg.mu.Lock()
	rg.seq++
	e.Seq = rg.seq
	if rg.full {
		rg.dropped++
	}
	rg.buf[rg.next] = e
	rg.next++
	if rg.next == len(rg.buf) {
		rg.next = 0
		rg.full = true
	}
	rg.mu.Unlock()
}

// Events returns the ring's contents, oldest first.
func (r *Registry) Events() []Event {
	if r == nil || !r.cfg.Trace {
		return nil
	}
	rg := &r.ring
	rg.mu.Lock()
	defer rg.mu.Unlock()
	var out []Event
	if rg.full {
		out = make([]Event, 0, len(rg.buf))
		out = append(out, rg.buf[rg.next:]...)
		out = append(out, rg.buf[:rg.next]...)
	} else {
		out = append(out, rg.buf[:rg.next]...)
	}
	return out
}

// Snapshot is a point-in-time copy of every histogram and trace counter.
type Snapshot struct {
	// Ops holds one histogram per Op (index with OpSearch..OpScan).
	Ops [OpCount]HistogramSnapshot
	// Actions holds one histogram per maintenance Action.
	Actions [ActCount]HistogramSnapshot

	PageLoad  HistogramSnapshot
	WriteBack HistogramSnapshot
	LogAppend HistogramSnapshot
	LogFlush  HistogramSnapshot
	LockWait  HistogramSnapshot

	// GroupForce/GroupAck are the commit pipeline's coalesced-force wall
	// time and parked-commit ack delay; GroupBatch* account group sizes
	// (total commits over counted forces, and the largest batch).
	GroupForce      HistogramSnapshot
	GroupAck        HistogramSnapshot
	GroupBatchSum   uint64
	GroupBatchCount uint64
	GroupBatchMax   uint64

	// CombineWait is the parked combiner publish-to-result delay;
	// CombineBatch* account combining drain batch sizes (total operations
	// over counted drains, and the largest batch).
	CombineWait       HistogramSnapshot
	CombineBatchSum   uint64
	CombineBatchCount uint64
	CombineBatchMax   uint64

	// LatchLongWaits counts blocking latch acquisitions at or above the
	// configured threshold.
	LatchLongWaits uint64

	// SpanStages holds one histogram per span stage: the exclusive time a
	// sampled operation spent in that stage (one observation per sampled op
	// that touched the stage).
	SpanStages [StageCount]HistogramSnapshot
	// SpansSampled counts finished sampled spans; SlowOps counts
	// flight-recorder entries (sampled and stub); SlowOpThresholdNS is the
	// current slow-op threshold.
	SpansSampled      uint64
	SlowOps           uint64
	SlowOpThresholdNS int64

	// TraceSeq is the total number of events emitted; TraceDropped how many
	// the bounded ring overwrote.
	TraceSeq     uint64
	TraceDropped uint64
}

// Snapshot collects the registry's current state; nil on a nil receiver.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{LatchLongWaits: r.longWaits.Load()}
	for i := range r.ops {
		s.Ops[i] = r.ops[i].Snapshot()
	}
	for i := range r.actions {
		s.Actions[i] = r.actions[i].Snapshot()
	}
	s.PageLoad = r.pageLoad.Snapshot()
	s.WriteBack = r.writeBack.Snapshot()
	s.LogAppend = r.logAppend.Snapshot()
	s.LogFlush = r.logFlush.Snapshot()
	s.LockWait = r.lockWait.Snapshot()
	s.GroupForce = r.groupForce.Snapshot()
	s.GroupAck = r.groupAck.Snapshot()
	s.GroupBatchSum = r.groupBatchSum.Load()
	s.GroupBatchCount = r.groupBatchCount.Load()
	s.GroupBatchMax = r.groupBatchMax.Load()
	s.CombineWait = r.combineWait.Snapshot()
	s.CombineBatchSum = r.combineBatchSum.Load()
	s.CombineBatchCount = r.combineBatchCnt.Load()
	s.CombineBatchMax = r.combineBatchMax.Load()
	for i := range r.spanStages {
		s.SpanStages[i] = r.spanStages[i].Snapshot()
	}
	s.SpansSampled = r.spansSampled.Load()
	s.SlowOps = r.slowOps.Load()
	s.SlowOpThresholdNS = r.slowNS.Load()
	rg := &r.ring
	rg.mu.Lock()
	s.TraceSeq = rg.seq
	s.TraceDropped = rg.dropped
	rg.mu.Unlock()
	return s
}
