package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// SpanStage identifies one timed stage of a sampled operation's span. The
// stage times stored on a span are *exclusive*: the structural stages
// (StageDescend, StageTraverse) are charged only the time not already
// attributed to a leaf stage nested inside them, so the per-stage sum of a
// finished span equals its total latency exactly (StageOther absorbs the
// uninstrumented remainder).
type SpanStage uint8

// Span stages, in hot-path order.
const (
	// StageDescend is the optimistic (latch-free) descent: route reads,
	// version validations and side steps, exclusive of nested fetch/latch
	// stages. Restarted attempts accumulate.
	StageDescend SpanStage = iota
	// StageTraverse is the pessimistic latch-coupled traversal (including
	// the fallback after an exhausted optimistic budget), exclusive of
	// nested fetch/latch stages.
	StageTraverse
	// StageLatchS is time spent acquiring shared-mode node latches.
	StageLatchS
	// StageLatchX is time spent acquiring update/exclusive-mode node
	// latches, including update→exclusive promotions.
	StageLatchX
	// StageBufFetch is buffer-pool fetch time for resident pages (hits).
	StageBufFetch
	// StagePageLoad is buffer-pool miss time: store read plus page decode.
	StagePageLoad
	// StageLockWait is time blocked in the lock manager after a §2.4
	// no-wait denial (release latches, wait for the lock, re-latch is
	// charged to its own latch/fetch stages).
	StageLockWait
	// StageWALAppend is write-ahead-log record append time (buffering, not
	// forcing).
	StageWALAppend
	// StageCommitPark is group-commit park time: from enqueueing the commit
	// waiter to the start of the device force that covers it.
	StageCommitPark
	// StageCommitForce is the device force (fsync) covering the commit; in
	// sync durability mode this is the whole synchronous flush.
	StageCommitForce
	// StageOther is the uninstrumented remainder: leaf search, record
	// copies, allocation, scheduling gaps. Computed at span end as total
	// minus the sum of the recorded stages.
	StageOther
	// StageCount is the number of span stages.
	StageCount
)

// String returns the lowercase stage name used in metric labels, trace
// events and the attribution table.
func (s SpanStage) String() string {
	switch s {
	case StageDescend:
		return "descend"
	case StageTraverse:
		return "traverse"
	case StageLatchS:
		return "latch-s"
	case StageLatchX:
		return "latch-x"
	case StageBufFetch:
		return "buf-fetch"
	case StagePageLoad:
		return "page-load"
	case StageLockWait:
		return "lock-wait"
	case StageWALAppend:
		return "wal-append"
	case StageCommitPark:
		return "commit-park"
	case StageCommitForce:
		return "commit-force"
	case StageOther:
		return "other"
	default:
		return "stage?"
	}
}

// stageFromString is the inverse of SpanStage.String, for trace decode.
func stageFromString(s string) SpanStage {
	for st := SpanStage(0); st < StageCount; st++ {
		if st.String() == s {
			return st
		}
	}
	return StageCount
}

// maxSpanIntervals bounds the per-span interval list (the span "tree" shown
// in the Chrome trace). Stage aggregates keep accumulating past the bound;
// only the timeline detail is dropped (counted in OpTrace.Dropped).
const maxSpanIntervals = 64

// Interval is one timed episode inside a span, positioned relative to the
// span's start. Structural phases (descend/traverse) record their wall
// extent so nested leaf intervals render inside them; the aggregate stage
// times remain exclusive.
type Interval struct {
	// Stage is the stage this episode belongs to.
	Stage SpanStage
	// Level is the tree level involved, when known (0 = leaf).
	Level uint8
	// Start is the offset from the span's start.
	Start time.Duration
	// Dur is the episode's duration.
	Dur time.Duration
}

// Span is the mutable per-operation trace context carried through the hot
// path by a sampled operation. It is owned by a single goroutine (the one
// running the operation) and is not safe for concurrent use; the lone
// cross-goroutine touch — the group-commit pipeline recording park/force —
// is ordered by the commit acknowledgement channel. All methods are
// nil-receiver safe so call sites stay branch-free.
type Span struct {
	op    Op
	start time.Time

	stages [StageCount]int64 // exclusive nanoseconds per stage
	counts [StageCount]uint32

	restarts uint32
	fallback bool

	intervals []Interval
	dropped   uint32

	// inner accumulates leaf-stage time so an enclosing structural phase
	// can subtract it and charge only its exclusive share.
	inner      int64
	phaseOpen  bool
	phaseStage SpanStage
	phaseT0    time.Time
	phaseInner int64
}

// Now returns the current time for a live span and the zero time for a nil
// one, so `t0 := sp.Now()` costs nothing when the operation is unsampled.
func (s *Span) Now() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// StageSince charges now−t0 to stage st (level lv) and records the
// interval. A zero t0 (from a nil-span Now) is a no-op.
func (s *Span) StageSince(st SpanStage, lv uint8, t0 time.Time) {
	if s == nil || t0.IsZero() {
		return
	}
	now := time.Now()
	d := now.Sub(t0)
	if d < 0 {
		d = 0
	}
	s.addLeaf(st, lv, now.Sub(s.start)-d, d)
}

// addLeaf records a leaf-stage episode: aggregate, inner accounting for the
// enclosing phase, and the bounded interval list.
func (s *Span) addLeaf(st SpanStage, lv uint8, off, d time.Duration) {
	s.stages[st] += int64(d)
	s.counts[st]++
	if s.phaseOpen {
		s.inner += int64(d)
	}
	s.addInterval(Interval{Stage: st, Level: lv, Start: off, Dur: d})
}

func (s *Span) addInterval(iv Interval) {
	if iv.Start < 0 {
		iv.Start = 0
	}
	if len(s.intervals) < maxSpanIntervals {
		s.intervals = append(s.intervals, iv)
	} else {
		s.dropped++
	}
}

// EnterPhase opens a structural phase (descend or traverse). Leaf stages
// recorded until ExitPhase are subtracted from the phase's charge so the
// phase aggregate stays exclusive. Phases do not nest; a second EnterPhase
// while one is open is ignored (its ExitPhase then closes the outer one).
func (s *Span) EnterPhase(st SpanStage) {
	if s == nil || s.phaseOpen {
		return
	}
	s.phaseOpen = true
	s.phaseStage = st
	s.phaseT0 = time.Now()
	s.phaseInner = s.inner
}

// ExitPhase closes the open structural phase, charging it its wall time
// minus the leaf-stage time recorded inside it. The interval keeps the wall
// extent so the Chrome trace nests leaf episodes under the phase.
func (s *Span) ExitPhase() {
	if s == nil || !s.phaseOpen {
		return
	}
	s.phaseOpen = false
	now := time.Now()
	wall := now.Sub(s.phaseT0)
	if wall < 0 {
		wall = 0
	}
	excl := wall - time.Duration(s.inner-s.phaseInner)
	if excl < 0 {
		excl = 0
	}
	s.stages[s.phaseStage] += int64(excl)
	s.counts[s.phaseStage]++
	s.addInterval(Interval{Stage: s.phaseStage, Start: now.Sub(s.start) - wall, Dur: wall})
}

// Restart counts an optimistic-descent restart (a failed version
// validation forcing the attempt over).
func (s *Span) Restart() {
	if s != nil {
		s.restarts++
	}
}

// Fallback marks that the optimistic descent exhausted its budget and the
// operation fell back to the pessimistic traversal.
func (s *Span) Fallback() {
	if s != nil {
		s.fallback = true
	}
}

// StageCommit charges the group-commit park and force durations reported by
// the WAL pipeline. Called (via the pipeline's traced-commit callback)
// happens-before the commit acknowledgement, so the owning goroutine's
// later reads are ordered.
func (s *Span) StageCommit(park, force time.Duration) {
	if s == nil {
		return
	}
	end := time.Since(s.start)
	if force > 0 {
		s.stages[StageCommitForce] += int64(force)
		s.counts[StageCommitForce]++
		s.addInterval(Interval{Stage: StageCommitForce, Start: end - force, Dur: force})
	}
	if park > 0 {
		s.stages[StageCommitPark] += int64(park)
		s.counts[StageCommitPark]++
		s.addInterval(Interval{Stage: StageCommitPark, Start: end - force - park, Dur: park})
	}
}

// OpTrace is a finished span: the immutable record stored in the sampled
// span ring and the slow-op flight recorder, and the unit of the Chrome
// trace export.
type OpTrace struct {
	// Seq is the trace's sequence number (per registry, sampled and slow
	// stubs share the counter).
	Seq uint64
	// Op is the operation class.
	Op Op
	// Start is the operation's start offset from the registry's creation.
	Start time.Duration
	// Total is the operation's wall latency.
	Total time.Duration
	// Stages holds the exclusive per-stage time; the entries sum to Total.
	Stages [StageCount]time.Duration
	// Counts holds per-stage episode counts.
	Counts [StageCount]uint32
	// Restarts is the optimistic-descent restart count.
	Restarts uint32
	// Fallback reports whether the op fell back to pessimistic traversal.
	Fallback bool
	// Slow reports whether the op met the slow-op threshold (and was
	// therefore copied into the flight recorder).
	Slow bool
	// Sampled distinguishes a fully-instrumented sampled span from the
	// stage-less stub recorded when an unsampled op turned out slow.
	Sampled bool
	// Dropped counts timeline intervals discarded past the per-span bound.
	Dropped uint32
	// Intervals is the bounded timeline of episodes within the span.
	Intervals []Interval
}

// StageShare is one stage's row in a tail-latency attribution: how much of
// the tail ops' total time the stage accounts for.
type StageShare struct {
	// Stage is the attributed stage.
	Stage SpanStage
	// Time is the stage's summed exclusive time across the tail ops.
	Time time.Duration
	// Share is Time as a fraction of the tail ops' summed total latency.
	Share float64
	// Count is the stage's summed episode count across the tail ops.
	Count uint64
}

// AttributeTail selects the spans whose total latency is at or above the
// q-quantile of the given spans and returns that threshold, the tail size,
// and each stage's share of the tail's total time (descending, zero-time
// stages omitted). It answers "where does p99/p999 time go?".
func AttributeTail(spans []OpTrace, q float64) (thr time.Duration, tail int, shares []StageShare) {
	if len(spans) == 0 {
		return 0, 0, nil
	}
	totals := make([]time.Duration, len(spans))
	for i, t := range spans {
		totals[i] = t.Total
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	idx := int(q * float64(len(totals)))
	if idx >= len(totals) {
		idx = len(totals) - 1
	}
	if idx < 0 {
		idx = 0
	}
	thr = totals[idx]

	var stageNS [StageCount]time.Duration
	var stageCnt [StageCount]uint64
	var totalNS time.Duration
	for _, t := range spans {
		if t.Total < thr {
			continue
		}
		tail++
		totalNS += t.Total
		for st := SpanStage(0); st < StageCount; st++ {
			stageNS[st] += t.Stages[st]
			stageCnt[st] += uint64(t.Counts[st])
		}
	}
	for st := SpanStage(0); st < StageCount; st++ {
		if stageNS[st] <= 0 {
			continue
		}
		sh := StageShare{Stage: st, Time: stageNS[st], Count: stageCnt[st]}
		if totalNS > 0 {
			sh.Share = float64(stageNS[st]) / float64(totalNS)
		}
		shares = append(shares, sh)
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].Time > shares[j].Time })
	return thr, tail, shares
}

// WriteAttribution prints the tail-latency attribution table for the given
// spans: for the p99 and p999 tails, each stage's share of where the time
// went, plus the fraction of span time the instrumented stages cover
// (100% by construction — StageOther absorbs the remainder — so a lower
// figure indicates a recording bug).
func WriteAttribution(w io.Writer, spans []OpTrace) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "no sampled spans (enable span sampling, or lower -sample)")
		return err
	}
	type tailCol struct {
		name   string
		q      float64
		thr    time.Duration
		tail   int
		shares map[SpanStage]StageShare
	}
	cols := []tailCol{{name: "p99", q: 0.99}, {name: "p999", q: 0.999}}
	present := map[SpanStage]bool{}
	for i := range cols {
		thr, tail, shares := AttributeTail(spans, cols[i].q)
		cols[i].thr, cols[i].tail = thr, tail
		cols[i].shares = make(map[SpanStage]StageShare, len(shares))
		for _, sh := range shares {
			cols[i].shares[sh.Stage] = sh
			present[sh.Stage] = true
		}
	}

	var attributed, total time.Duration
	for _, t := range spans {
		total += t.Total
		for st := SpanStage(0); st < StageCount; st++ {
			attributed += t.Stages[st]
		}
	}
	coverage := 100.0
	if total > 0 {
		coverage = float64(attributed) / float64(total) * 100
	}

	fmt.Fprintf(w, "== tail-latency attribution: %d spans, stage coverage %.1f%% of span time ==\n",
		len(spans), coverage)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "stage")
	for _, c := range cols {
		fmt.Fprintf(tw, "\t%s share\t%s time", c.name, c.name)
	}
	fmt.Fprintln(tw)
	for st := SpanStage(0); st < StageCount; st++ {
		if !present[st] {
			continue
		}
		fmt.Fprintf(tw, "%s", st)
		for _, c := range cols {
			sh, ok := c.shares[st]
			if !ok {
				fmt.Fprint(tw, "\t-\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f%%\t%s", sh.Share*100, sh.Time.Round(time.Microsecond))
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, c := range cols {
		fmt.Fprintf(w, "%s tail: %d ops at/above %s\n", c.name, c.tail, c.thr.Round(time.Microsecond))
	}
	return nil
}
