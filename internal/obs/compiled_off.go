//go:build obsoff

package obs

// Compiled is false under -tags obsoff: instrumentation sites guarded by it
// become dead code and are compiled out.
const Compiled = false
