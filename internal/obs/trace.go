package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// eventJSON is the wire form of an Event: enum fields as their string
// names, durations in nanoseconds. One object per line (JSON Lines), so
// dumps stream and truncated files still parse up to the cut.
type eventJSON struct {
	Seq    uint64 `json:"seq"`
	TSNs   int64  `json:"ts_ns"`
	Kind   string `json:"kind"`
	Action string `json:"action,omitempty"`
	Page   uint64 `json:"page,omitempty"`
	Level  uint8  `json:"level,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	DXWant uint64 `json:"dx_want,omitempty"`
	DXSeen uint64 `json:"dx_seen,omitempty"`
	DDWant uint64 `json:"dd_want,omitempty"`
	DDSeen uint64 `json:"dd_seen,omitempty"`
	DurNs  int64  `json:"dur_ns,omitempty"`
}

func toJSON(e Event) eventJSON {
	j := eventJSON{
		Seq:    e.Seq,
		TSNs:   int64(e.TS),
		Kind:   e.Kind.String(),
		Page:   e.Page,
		Level:  e.Level,
		Epoch:  e.Epoch,
		DXWant: e.DXWant,
		DXSeen: e.DXSeen,
		DDWant: e.DDWant,
		DDSeen: e.DDSeen,
		DurNs:  int64(e.Dur),
	}
	// Only SMO lifecycle kinds carry an action; the zero Action is a real
	// value (post), so gate on kind rather than value.
	switch e.Kind {
	case EvEnqueued, EvStarted, EvCompleted, EvAbortDX, EvAbortDD,
		EvAbortIdentity, EvAbortEdge, EvSkipFit, EvRequeued:
		j.Action = e.Action.String()
	}
	return j
}

func fromJSON(j eventJSON) (Event, error) {
	k := eventKindFromString(j.Kind)
	if k == 0 {
		return Event{}, fmt.Errorf("obs: unknown event kind %q", j.Kind)
	}
	e := Event{
		Seq:    j.Seq,
		TS:     time.Duration(j.TSNs),
		Kind:   k,
		Page:   j.Page,
		Level:  j.Level,
		Epoch:  j.Epoch,
		DXWant: j.DXWant,
		DXSeen: j.DXSeen,
		DDWant: j.DDWant,
		DDSeen: j.DDSeen,
		Dur:    time.Duration(j.DurNs),
	}
	if j.Action != "" {
		a := actionFromString(j.Action)
		if a == ActCount {
			return Event{}, fmt.Errorf("obs: unknown action %q", j.Action)
		}
		e.Action = a
	}
	return e, nil
}

// WriteTrace encodes events as JSON Lines.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(toJSON(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace decodes a JSON Lines trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var j eventJSON
		if err := dec.Decode(&j); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		e, err := fromJSON(j)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// FormatEvent renders one event for human consumption (blinkdump -trace).
func FormatEvent(e Event) string {
	s := fmt.Sprintf("%8d %12s %-15s", e.Seq, e.TS.Round(time.Microsecond), e.Kind)
	switch e.Kind {
	case EvEnqueued, EvStarted, EvCompleted, EvAbortIdentity, EvAbortEdge,
		EvSkipFit, EvRequeued:
		s += fmt.Sprintf(" %-7s page=%d level=%d", e.Action, e.Page, e.Level)
		if e.Epoch != 0 {
			s += fmt.Sprintf(" epoch=%d", e.Epoch)
		}
	case EvAbortDX:
		s += fmt.Sprintf(" %-7s page=%d level=%d dx=%d→%d", e.Action, e.Page, e.Level, e.DXWant, e.DXSeen)
	case EvAbortDD:
		s += fmt.Sprintf(" %-7s page=%d level=%d dd=%d→%d", e.Action, e.Page, e.Level, e.DDWant, e.DDSeen)
	case EvLatchWait:
		s += fmt.Sprintf(" waited=%s", e.Dur)
	case EvLockNoWait, EvDeadlockVictim, EvRelatchAbort:
		if e.Page != 0 {
			s += fmt.Sprintf(" page=%d", e.Page)
		}
	case EvOptFallback, EvTraverseExhausted:
		if e.Page != 0 {
			s += fmt.Sprintf(" page=%d level=%d", e.Page, e.Level)
		}
	case EvRecoveryRedo:
		s += fmt.Sprintf(" records=%d took=%s", e.Page, e.Dur)
	case EvRecoveryTornPage:
		s += fmt.Sprintf(" page=%d", e.Page)
	case EvRecoveryTornTail:
		s += fmt.Sprintf(" trailing_bytes=%d", e.Page)
	}
	return s
}
