package latch

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats aggregates latch activity. Counters are maintained with atomics and
// are cheap enough to keep always-on; the experiment harness uses them to
// report latch waits and no-wait failures (paper §2.4).
type Stats struct {
	AcquireShared    uint64 // granted S requests
	AcquireUpdate    uint64 // granted U requests
	AcquireExclusive uint64 // granted X requests
	Waits            uint64 // blocking acquisitions that had to wait
	WaitNanos        uint64 // total nanoseconds spent blocked
	LongWaits        uint64 // waits at or above the recorder's threshold
	TryFailures      uint64 // TryAcquire calls that were refused
	Promotions       uint64 // U→X promotions
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.AcquireShared += o.AcquireShared
	s.AcquireUpdate += o.AcquireUpdate
	s.AcquireExclusive += o.AcquireExclusive
	s.Waits += o.Waits
	s.WaitNanos += o.WaitNanos
	s.LongWaits += o.LongWaits
	s.TryFailures += o.TryFailures
	s.Promotions += o.Promotions
}

// Recorder is a per-tree (or per-subsystem) latch statistics sink. Latches
// carrying a Recorder count into it instead of the package-global counters,
// so two trees in one process no longer pollute each other's numbers. The
// zero value is ready for use.
type Recorder struct {
	acquireS  atomic.Uint64
	acquireU  atomic.Uint64
	acquireX  atomic.Uint64
	waits     atomic.Uint64
	waitNanos atomic.Uint64
	longWaits atomic.Uint64
	tryFail   atomic.Uint64
	promote   atomic.Uint64

	// threshold/onLongWait are set once before the recorder sees traffic
	// (SetLongWaitCallback); a wait of at least threshold is counted in
	// longWaits and reported to onLongWait.
	threshold time.Duration
	onLong    func(d time.Duration)
}

// SetLongWaitCallback arms long-wait accounting: blocking acquisitions that
// wait at least threshold are counted and, when fn is non-nil, reported to
// it. Must be called before the recorder's latches see traffic.
func (r *Recorder) SetLongWaitCallback(threshold time.Duration, fn func(d time.Duration)) {
	r.threshold = threshold
	r.onLong = fn
}

func (r *Recorder) recordAcquire(m Mode, waited time.Duration, blocked bool) {
	switch m {
	case Shared:
		r.acquireS.Add(1)
	case Update:
		r.acquireU.Add(1)
	case Exclusive:
		r.acquireX.Add(1)
	}
	if !blocked {
		return
	}
	r.waits.Add(1)
	r.waitNanos.Add(uint64(waited))
	if r.threshold > 0 && waited >= r.threshold {
		r.longWaits.Add(1)
		if r.onLong != nil {
			r.onLong(waited)
		}
	}
}

func (r *Recorder) recordTryFail() { r.tryFail.Add(1) }
func (r *Recorder) recordPromote() { r.promote.Add(1) }

// Snapshot returns the recorder's current statistics.
func (r *Recorder) Snapshot() Stats {
	return Stats{
		AcquireShared:    r.acquireS.Load(),
		AcquireUpdate:    r.acquireU.Load(),
		AcquireExclusive: r.acquireX.Load(),
		Waits:            r.waits.Load(),
		WaitNanos:        r.waitNanos.Load(),
		LongWaits:        r.longWaits.Load(),
		TryFailures:      r.tryFail.Load(),
		Promotions:       r.promote.Load(),
	}
}

// reset zeroes the recorder.
func (r *Recorder) reset() {
	r.acquireS.Store(0)
	r.acquireU.Store(0)
	r.acquireX.Store(0)
	r.waits.Store(0)
	r.waitNanos.Store(0)
	r.longWaits.Store(0)
	r.tryFail.Store(0)
	r.promote.Store(0)
}

// global receives activity from latches without a Recorder, preserving the
// old package-wide behaviour.
var global Recorder

// registry tracks live Recorders so the deprecated package Snapshot can
// still report a process-wide aggregate.
var registry struct {
	mu   sync.Mutex
	recs map[*Recorder]struct{}
}

// RegisterRecorder includes r in the deprecated package-wide Snapshot
// aggregate. Trees register their recorder on open.
func RegisterRecorder(r *Recorder) {
	registry.mu.Lock()
	if registry.recs == nil {
		registry.recs = make(map[*Recorder]struct{})
	}
	registry.recs[r] = struct{}{}
	registry.mu.Unlock()
}

// UnregisterRecorder removes r from the package-wide aggregate.
func UnregisterRecorder(r *Recorder) {
	registry.mu.Lock()
	delete(registry.recs, r)
	registry.mu.Unlock()
}

// Snapshot returns process-wide latch statistics: recorder-less latches
// plus every registered Recorder.
//
// Deprecated: the package-global view mixes every tree in the process; use
// a per-tree Recorder (core.Tree.LatchStats) instead.
func Snapshot() Stats {
	s := global.Snapshot()
	registry.mu.Lock()
	for r := range registry.recs {
		s.add(r.Snapshot())
	}
	registry.mu.Unlock()
	return s
}

// ResetStats zeroes the package-wide statistics, including every registered
// Recorder. Concurrent latch traffic during the reset may be partially
// counted.
//
// Deprecated: use a per-tree Recorder and snapshot deltas instead.
func ResetStats() {
	global.reset()
	registry.mu.Lock()
	for r := range registry.recs {
		r.reset()
	}
	registry.mu.Unlock()
}
