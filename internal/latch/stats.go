package latch

import "sync/atomic"

// Stats aggregates package-wide latch activity. Counters are maintained with
// atomics and are cheap enough to keep always-on; the experiment harness uses
// them to report latch waits and no-wait failures (paper §2.4).
type Stats struct {
	AcquireShared    uint64 // granted S requests
	AcquireUpdate    uint64 // granted U requests
	AcquireExclusive uint64 // granted X requests
	Waits            uint64 // blocking acquisitions that had to wait
	TryFailures      uint64 // TryAcquire calls that were refused
	Promotions       uint64 // U→X promotions
}

var stats struct {
	acquireS atomic.Uint64
	acquireU atomic.Uint64
	acquireX atomic.Uint64
	waits    atomic.Uint64
	tryFail  atomic.Uint64
	promote  atomic.Uint64
}

func recordAcquire(m Mode, waited bool) {
	switch m {
	case Shared:
		stats.acquireS.Add(1)
	case Update:
		stats.acquireU.Add(1)
	case Exclusive:
		stats.acquireX.Add(1)
	}
	if waited {
		stats.waits.Add(1)
	}
}

func recordTryFail(Mode) { stats.tryFail.Add(1) }
func recordPromote()     { stats.promote.Add(1) }

// Snapshot returns the current package-wide latch statistics.
func Snapshot() Stats {
	return Stats{
		AcquireShared:    stats.acquireS.Load(),
		AcquireUpdate:    stats.acquireU.Load(),
		AcquireExclusive: stats.acquireX.Load(),
		Waits:            stats.waits.Load(),
		TryFailures:      stats.tryFail.Load(),
		Promotions:       stats.promote.Load(),
	}
}

// ResetStats zeroes the package-wide latch statistics. Intended for use
// between benchmark runs; concurrent latch traffic during the reset may be
// partially counted.
func ResetStats() {
	stats.acquireS.Store(0)
	stats.acquireU.Store(0)
	stats.acquireX.Store(0)
	stats.waits.Store(0)
	stats.tryFail.Store(0)
	stats.promote.Store(0)
}
