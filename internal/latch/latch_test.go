package latch

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestModeString(t *testing.T) {
	cases := map[Mode]string{None: "-", Shared: "S", Update: "U", Exclusive: "X", Mode(9): "?"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestCompatibilityMatrix(t *testing.T) {
	// The matrix from paper §2.4: S-S yes, S-U yes, U-U no, X-anything no.
	cases := []struct {
		held, req Mode
		want      bool
	}{
		{None, Shared, true}, {None, Update, true}, {None, Exclusive, true},
		{Shared, Shared, true}, {Shared, Update, true}, {Shared, Exclusive, false},
		{Update, Shared, true}, {Update, Update, false}, {Update, Exclusive, false},
		{Exclusive, Shared, false}, {Exclusive, Update, false}, {Exclusive, Exclusive, false},
	}
	for _, c := range cases {
		if got := Compatible(c.held, c.req); got != c.want {
			t.Errorf("Compatible(%v, %v) = %v, want %v", c.held, c.req, got, c.want)
		}
	}
}

func TestSharedConcurrent(t *testing.T) {
	var l Latch
	l.Acquire(Shared)
	if !l.TryAcquire(Shared) {
		t.Fatal("second shared acquisition refused")
	}
	if r, _, _ := l.Held(); r != 2 {
		t.Fatalf("readers = %d, want 2", r)
	}
	l.Release(Shared)
	l.Release(Shared)
	if r, u, x := l.Held(); r != 0 || u || x {
		t.Fatalf("latch not empty after releases: %d %v %v", r, u, x)
	}
}

func TestUpdateCompatibleWithShared(t *testing.T) {
	var l Latch
	l.Acquire(Update)
	if !l.TryAcquire(Shared) {
		t.Fatal("shared refused alongside update")
	}
	if l.TryAcquire(Update) {
		t.Fatal("second update granted")
	}
	if l.TryAcquire(Exclusive) {
		t.Fatal("exclusive granted alongside update+shared")
	}
	l.Release(Shared)
	l.Release(Update)
}

func TestExclusiveExcludesAll(t *testing.T) {
	var l Latch
	l.Acquire(Exclusive)
	for _, m := range []Mode{Shared, Update, Exclusive} {
		if l.TryAcquire(m) {
			t.Fatalf("%v granted alongside exclusive", m)
		}
	}
	l.Release(Exclusive)
	if !l.TryAcquire(Exclusive) {
		t.Fatal("exclusive refused on free latch")
	}
	l.Release(Exclusive)
}

func TestAcquireNoneIsNoop(t *testing.T) {
	var l Latch
	l.Acquire(None)
	if !l.TryAcquire(None) {
		t.Fatal("TryAcquire(None) = false")
	}
	l.Release(None)
	if !l.TryAcquire(Exclusive) {
		t.Fatal("latch disturbed by None operations")
	}
	l.Release(Exclusive)
}

func TestPromoteWaitsForReaders(t *testing.T) {
	var l Latch
	l.Acquire(Update)
	l.Acquire(Shared)

	promoted := make(chan struct{})
	go func() {
		l.Promote()
		close(promoted)
	}()

	select {
	case <-promoted:
		t.Fatal("promotion completed while a reader was present")
	case <-time.After(20 * time.Millisecond):
	}

	l.Release(Shared)
	select {
	case <-promoted:
	case <-time.After(time.Second):
		t.Fatal("promotion did not complete after reader drained")
	}
	if _, _, x := l.Held(); !x {
		t.Fatal("exclusive not held after promotion")
	}
	l.Release(Exclusive)
}

func TestPromotionBlocksNewReaders(t *testing.T) {
	var l Latch
	l.Acquire(Update)
	l.Acquire(Shared)

	go func() {
		time.Sleep(20 * time.Millisecond)
		l.Release(Shared)
	}()
	done := make(chan struct{})
	go func() {
		l.Promote()
		close(done)
	}()
	// Give the promoter time to set the promoting flag, then verify a new
	// reader is refused so promotion cannot starve.
	time.Sleep(10 * time.Millisecond)
	if l.TryAcquire(Shared) {
		t.Fatal("new reader admitted during pending promotion")
	}
	<-done
	l.Release(Exclusive)
}

func TestTryPromote(t *testing.T) {
	var l Latch
	l.Acquire(Update)
	l.Acquire(Shared)
	if l.TryPromote() {
		t.Fatal("TryPromote succeeded with reader present")
	}
	l.Release(Shared)
	if !l.TryPromote() {
		t.Fatal("TryPromote failed with no readers")
	}
	l.Release(Exclusive)
}

func TestDemote(t *testing.T) {
	var l Latch
	l.Acquire(Exclusive)
	l.Demote()
	if r, _, x := l.Held(); x || r != 1 {
		t.Fatalf("after demote: readers=%d exclusive=%v", r, x)
	}
	if !l.TryAcquire(Shared) {
		t.Fatal("reader refused after demote")
	}
	l.Release(Shared)
	l.Release(Shared)
}

func TestWritersNotStarved(t *testing.T) {
	var l Latch
	l.Acquire(Shared)
	got := make(chan struct{})
	go func() {
		l.Acquire(Exclusive)
		close(got)
	}()
	// Wait until the writer is queued, then verify new readers defer to it.
	deadline := time.Now().Add(time.Second)
	for {
		l.mu.Lock()
		waiting := l.waitingX
		l.mu.Unlock()
		if waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if l.TryAcquire(Shared) {
		t.Fatal("reader admitted ahead of waiting writer")
	}
	l.Release(Shared)
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("writer never granted")
	}
	l.Release(Exclusive)
}

func TestReleaseUnheldPanics(t *testing.T) {
	for _, m := range []Mode{Shared, Update, Exclusive} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Release(%v) on free latch did not panic", m)
				}
			}()
			var l Latch
			l.Release(m)
		}()
	}
}

func TestPromoteWithoutUpdatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Promote without update holder did not panic")
		}
	}()
	var l Latch
	l.Promote()
}

// TestMutualExclusionStress hammers a latch from many goroutines and checks
// the fundamental invariant: an exclusive holder is alone, and an update
// holder is unique.
func TestMutualExclusionStress(t *testing.T) {
	var l Latch
	var (
		inShared atomic.Int64
		inUpdate atomic.Int64
		inExcl   atomic.Int64
		bad      atomic.Int64
	)
	check := func() {
		s, u, x := inShared.Load(), inUpdate.Load(), inExcl.Load()
		if x > 1 || u > 1 || (x == 1 && (s > 0 || u > 0)) {
			bad.Add(1)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				switch rng.Intn(3) {
				case 0:
					l.Acquire(Shared)
					inShared.Add(1)
					check()
					inShared.Add(-1)
					l.Release(Shared)
				case 1:
					l.Acquire(Update)
					inUpdate.Add(1)
					check()
					if rng.Intn(2) == 0 {
						inUpdate.Add(-1)
						l.Promote()
						inExcl.Add(1)
						check()
						inExcl.Add(-1)
						l.Release(Exclusive)
					} else {
						inUpdate.Add(-1)
						l.Release(Update)
					}
				default:
					l.Acquire(Exclusive)
					inExcl.Add(1)
					check()
					inExcl.Add(-1)
					l.Release(Exclusive)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("observed %d exclusion violations", n)
	}
	if r, u, x := l.Held(); r != 0 || u || x {
		t.Fatalf("latch not free after stress: %d %v %v", r, u, x)
	}
}

// TestCompatibleQuick property-tests that Compatible is consistent with
// canGrant for single-holder states.
func TestCompatibleQuick(t *testing.T) {
	f := func(heldRaw, reqRaw uint8) bool {
		held := Mode(heldRaw%3 + 1) // Shared, Update, Exclusive
		req := Mode(reqRaw%3 + 1)
		var l Latch
		l.Acquire(held)
		got := l.TryAcquire(req)
		want := Compatible(held, req)
		if got {
			l.Release(req)
		}
		l.Release(held)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	ResetStats()
	var l Latch
	l.Acquire(Shared)
	l.Release(Shared)
	l.Acquire(Update)
	l.Promote()
	l.Release(Exclusive)
	l.Acquire(Exclusive)
	if l.TryAcquire(Shared) {
		t.Fatal("unexpected grant")
	}
	l.Release(Exclusive)
	s := Snapshot()
	if s.AcquireShared != 1 || s.AcquireUpdate != 1 || s.AcquireExclusive != 1 {
		t.Fatalf("acquire counts = %+v", s)
	}
	if s.Promotions != 1 || s.TryFailures != 1 {
		t.Fatalf("promotions/tryFailures = %+v", s)
	}
	ResetStats()
	if s := Snapshot(); s.AcquireShared != 0 {
		t.Fatalf("ResetStats did not zero: %+v", s)
	}
}

func TestRecorderSink(t *testing.T) {
	ResetStats()
	var rec Recorder
	var longWaits atomic.Uint64
	rec.SetLongWaitCallback(time.Nanosecond, func(d time.Duration) {
		if d < time.Nanosecond {
			t.Errorf("long-wait callback with d=%v", d)
		}
		longWaits.Add(1)
	})
	var l Latch
	l.SetRecorder(&rec)

	l.Acquire(Exclusive)
	done := make(chan struct{})
	go func() {
		l.Acquire(Shared) // must block, then wait ≥1ns
		l.Release(Shared)
		close(done)
	}()
	// Let the reader reach the wait loop, then release.
	for {
		if s := rec.Snapshot(); s.AcquireExclusive == 1 {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	l.Release(Exclusive)
	<-done

	s := rec.Snapshot()
	if s.AcquireShared != 1 || s.AcquireExclusive != 1 {
		t.Fatalf("recorder acquire counts = %+v", s)
	}
	if s.Waits != 1 || s.WaitNanos == 0 {
		t.Fatalf("recorder waits = %+v", s)
	}
	if s.LongWaits != 1 || longWaits.Load() != 1 {
		t.Fatalf("long waits = %d, callback = %d", s.LongWaits, longWaits.Load())
	}
	// Recorder traffic stays out of the globals but shows in the registered
	// aggregate.
	if g := global.Snapshot(); g.AcquireShared != 0 || g.AcquireExclusive != 0 {
		t.Fatalf("global polluted: %+v", g)
	}
	RegisterRecorder(&rec)
	if agg := Snapshot(); agg.AcquireShared != 1 || agg.Waits != 1 {
		t.Fatalf("aggregate missing recorder: %+v", agg)
	}
	UnregisterRecorder(&rec)
	if agg := Snapshot(); agg.AcquireShared != 0 {
		t.Fatalf("aggregate after unregister: %+v", agg)
	}
}

func TestVersionWord(t *testing.T) {
	var l Latch
	v0, ok := l.OptVersion()
	if !ok {
		t.Fatal("fresh latch version is odd")
	}
	if !l.Validate(v0) {
		t.Fatal("unchanged latch fails validation")
	}

	// Shared traffic never moves the version.
	l.Acquire(Shared)
	if _, ok := l.OptVersion(); !ok {
		t.Fatal("version odd under shared latch")
	}
	l.Release(Shared)
	if !l.Validate(v0) {
		t.Fatal("shared acquire/release changed the version")
	}

	// Exclusive ownership holds the version odd for its whole duration.
	l.Acquire(Exclusive)
	if _, ok := l.OptVersion(); ok {
		t.Fatal("version even while exclusively latched")
	}
	if l.Validate(v0) {
		t.Fatal("stale version validated across an exclusive acquire")
	}
	l.Release(Exclusive)
	v1, ok := l.OptVersion()
	if !ok {
		t.Fatal("version odd after exclusive release")
	}
	if v1 == v0 {
		t.Fatal("exclusive cycle did not advance the version")
	}

	// Promotion from Update opens an odd window; demotion closes it.
	l.Acquire(Update)
	if _, ok := l.OptVersion(); !ok {
		t.Fatal("version odd under update latch (update holders don't modify)")
	}
	l.Promote()
	if _, ok := l.OptVersion(); ok {
		t.Fatal("version even after promotion to exclusive")
	}
	l.Demote() // demotes to Shared
	v2, ok := l.OptVersion()
	if !ok {
		t.Fatal("version odd after demote")
	}
	if v2 == v1 {
		t.Fatal("promote/demote cycle did not advance the version")
	}
	l.Release(Shared)
	if !l.Validate(v2) {
		t.Fatal("shared release changed the version")
	}

	// TryPromote counts as an exclusive grant when it succeeds.
	l.Acquire(Update)
	if !l.TryPromote() {
		t.Fatal("uncontended TryPromote failed")
	}
	if _, ok := l.OptVersion(); ok {
		t.Fatal("version even after TryPromote")
	}
	l.Release(Exclusive)
	if v3, _ := l.OptVersion(); v3 == v2 {
		t.Fatal("TryPromote cycle did not advance the version")
	}
}
