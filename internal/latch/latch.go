// Package latch implements the light-weight node latches of Lomet's
// B-link-tree method (ICDE 2004, §2.4).
//
// Latches come in three modes:
//
//	Shared (S)     — compatible with S and U.
//	Update (U)     — compatible with S only; at most one U holder.
//	Exclusive (X)  — compatible with nothing.
//
// An Update holder may Promote to Exclusive without releasing; because U is
// incompatible with U there is never more than one promoter, so promotion
// cannot deadlock with another promoter (paper §3.1.1, footnote 4).
//
// Unlike locks, latches are not managed by a lock manager and perform no
// deadlock detection: all callers must acquire latches in the tree's partial
// order (down the tree, then rightward along side pointers, with the delete
// state latch ordered before any node latch).
package latch

import (
	"sync"
	"sync/atomic"
	"time"
)

// Mode identifies a latch mode.
type Mode uint8

// Latch modes.
const (
	// None means no latch is held. It is the zero Mode.
	None Mode = iota
	// Shared permits concurrent readers and one update holder.
	Shared
	// Update permits concurrent readers and reserves the right to promote.
	Update
	// Exclusive excludes all other holders.
	Exclusive
)

// String returns the conventional single-letter name of the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "-"
	case Shared:
		return "S"
	case Update:
		return "U"
	case Exclusive:
		return "X"
	default:
		return "?"
	}
}

// Compatible reports whether a new request in mode m may be granted while a
// latch in mode held is outstanding.
func Compatible(held, m Mode) bool {
	switch held {
	case None:
		return true
	case Shared:
		return m == Shared || m == Update
	case Update:
		return m == Shared
	default: // Exclusive
		return false
	}
}

// Latch is a S/U/X latch. The zero value is an unheld latch ready for use.
//
// A Latch must not be copied after first use.
type Latch struct {
	mu      sync.Mutex
	grant   sync.Cond // lazily bound to mu
	readers int       // current S holders
	update  bool      // a U holder exists
	excl    bool      // an X holder exists
	// promoting is set while the U holder waits for readers to drain; it
	// blocks new S admissions so promotion cannot starve.
	promoting bool
	// waitingX counts blocked X requesters; new S requests defer to them so
	// writers are not starved by a stream of readers.
	waitingX int

	// version is a seqlock-style sequence word for optimistic readers: it
	// is bumped whenever exclusive ownership is gained (Acquire/TryAcquire
	// in X mode, Promote, TryPromote) and again when it is given up
	// (Release(Exclusive), Demote), so it is odd exactly while an X holder
	// exists. An optimistic reader samples it with OptVersion, reads the
	// protected state through its own atomics, and calls Validate to learn
	// whether any exclusive ownership intervened.
	version atomic.Uint64

	// rec is the statistics sink; nil falls back to the package globals.
	// Set once (SetRecorder) before the latch sees traffic.
	rec *Recorder
}

// SetRecorder directs the latch's statistics to r (a per-tree sink). It
// must be called before the latch is shared between goroutines.
func (l *Latch) SetRecorder(r *Recorder) { l.rec = r }

// sink returns the latch's statistics sink.
func (l *Latch) sink() *Recorder {
	if l.rec != nil {
		return l.rec
	}
	return &global
}

func (l *Latch) init() {
	if l.grant.L == nil {
		l.grant.L = &l.mu
	}
}

// canGrant reports whether a request in mode m can be granted right now.
// Caller holds l.mu.
func (l *Latch) canGrant(m Mode) bool {
	switch m {
	case Shared:
		return !l.excl && !l.promoting && l.waitingX == 0
	case Update:
		return !l.excl && !l.update
	case Exclusive:
		return !l.excl && !l.update && l.readers == 0
	default:
		return false
	}
}

// grantLocked records a granted request in mode m. Caller holds l.mu.
func (l *Latch) grantLocked(m Mode) {
	switch m {
	case Shared:
		l.readers++
	case Update:
		l.update = true
	case Exclusive:
		l.excl = true
		l.version.Add(1) // now odd: optimistic readers back off
	}
}

// Acquire blocks until a latch in mode m is granted.
func (l *Latch) Acquire(m Mode) {
	if m == None {
		return
	}
	l.mu.Lock()
	l.init()
	if l.canGrant(m) {
		l.grantLocked(m)
		l.mu.Unlock()
		l.sink().recordAcquire(m, 0, false)
		return
	}
	// Blocked: the wait itself dwarfs the pair of clock reads, so measuring
	// here costs nothing on the fast path above.
	t0 := time.Now()
	if m == Exclusive {
		l.waitingX++
	}
	for !l.canGrant(m) {
		l.grant.Wait()
	}
	if m == Exclusive {
		l.waitingX--
	}
	l.grantLocked(m)
	l.mu.Unlock()
	l.sink().recordAcquire(m, time.Since(t0), true)
}

// TryAcquire attempts to acquire a latch in mode m without blocking and
// reports whether it was granted.
func (l *Latch) TryAcquire(m Mode) bool {
	if m == None {
		return true
	}
	l.mu.Lock()
	l.init()
	ok := l.canGrant(m)
	if ok {
		l.grantLocked(m)
	}
	l.mu.Unlock()
	if ok {
		l.sink().recordAcquire(m, 0, false)
	} else {
		l.sink().recordTryFail()
	}
	return ok
}

// Release releases a latch previously granted in mode m.
// Releasing a mode that is not held panics: that is a protocol bug, not a
// recoverable condition.
func (l *Latch) Release(m Mode) {
	if m == None {
		return
	}
	l.mu.Lock()
	l.init()
	switch m {
	case Shared:
		if l.readers <= 0 {
			l.mu.Unlock()
			panic("latch: Release(Shared) with no shared holders")
		}
		l.readers--
	case Update:
		if !l.update {
			l.mu.Unlock()
			panic("latch: Release(Update) with no update holder")
		}
		l.update = false
		l.promoting = false
	case Exclusive:
		if !l.excl {
			l.mu.Unlock()
			panic("latch: Release(Exclusive) with no exclusive holder")
		}
		l.excl = false
		l.version.Add(1) // even again: exclusive ownership is over
	}
	l.grant.Broadcast()
	l.mu.Unlock()
}

// Promote upgrades the caller's Update latch to Exclusive, waiting for
// current readers to drain. New readers are held off while the promotion is
// pending. The caller must hold the latch in Update mode.
func (l *Latch) Promote() {
	l.mu.Lock()
	l.init()
	if !l.update {
		l.mu.Unlock()
		panic("latch: Promote without update holder")
	}
	l.promoting = true
	for l.readers > 0 {
		l.grant.Wait()
	}
	l.update = false
	l.promoting = false
	l.excl = true
	l.version.Add(1)
	l.mu.Unlock()
	l.sink().recordPromote()
}

// TryPromote upgrades Update to Exclusive only if no readers are present,
// reporting whether the promotion happened. On false the Update latch is
// still held.
func (l *Latch) TryPromote() bool {
	l.mu.Lock()
	l.init()
	if !l.update {
		l.mu.Unlock()
		panic("latch: TryPromote without update holder")
	}
	if l.readers > 0 {
		l.mu.Unlock()
		return false
	}
	l.update = false
	l.excl = true
	l.version.Add(1)
	l.mu.Unlock()
	l.sink().recordPromote()
	return true
}

// Demote converts the caller's Exclusive latch to Shared without a window in
// which the latch is unheld. It is used when an updater has finished
// modifying a node but wants to keep reading it.
func (l *Latch) Demote() {
	l.mu.Lock()
	l.init()
	if !l.excl {
		l.mu.Unlock()
		panic("latch: Demote without exclusive holder")
	}
	l.excl = false
	l.readers++
	l.version.Add(1)
	l.grant.Broadcast()
	l.mu.Unlock()
}

// OptVersion samples the latch's version word for an optimistic read. ok is
// false while an exclusive holder exists (the word is odd); a reader seeing
// ok=false should retry or fall back to a real latch. The returned value is
// only meaningful for a later Validate.
func (l *Latch) OptVersion() (uint64, bool) {
	v := l.version.Load()
	return v, v&1 == 0
}

// Validate reports whether no exclusive ownership has been gained since
// OptVersion returned v: the optimistic reader's view is as good as one
// taken under a Shared latch held across the same window.
func (l *Latch) Validate(v uint64) bool {
	return l.version.Load() == v
}

// Held returns a best-effort snapshot of the latch occupancy, for tests and
// debugging only: (shared holders, update held, exclusive held).
func (l *Latch) Held() (readers int, update, exclusive bool) {
	l.mu.Lock()
	readers, update, exclusive = l.readers, l.update, l.excl
	l.mu.Unlock()
	return readers, update, exclusive
}
