package wal

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// DurabilityMode selects when a commit is acknowledged relative to the
// device force that makes it durable. The recovery protocol (paper §2.1)
// only assumes the log is forced *at* commit — it does not require each
// commit to pay its own force — so the pipeline can trade the per-commit
// fsync for batched or deferred forces without touching recovery.
type DurabilityMode uint8

// Durability modes, from strictest to loosest.
const (
	// DurSync forces the device before every commit acknowledgement, on
	// the committing goroutine. An acknowledged commit is durable. This is
	// the classic one-force-per-commit behavior and the default.
	DurSync DurabilityMode = iota
	// DurGroup parks committers on the log-writer goroutine, which
	// coalesces all waiting commits into a single device force and
	// acknowledges them after it completes. An acknowledged commit is
	// durable — same contract as DurSync — but concurrent committers share
	// one force instead of serializing behind one each.
	DurGroup
	// DurPeriodic acknowledges commits immediately; the log-writer forces
	// the device every PipelineConfig.Interval, or sooner when unforced
	// bytes exceed PipelineConfig.Bytes. A crash loses at most the commits
	// acknowledged inside the current unforced window.
	DurPeriodic
	// DurAsync acknowledges commits immediately and nudges the log-writer,
	// which forces as fast as the device allows, coalescing whatever
	// accumulated. Same loss window as DurPeriodic (the unforced tail),
	// typically shorter in practice because every commit triggers a force.
	DurAsync
)

// String returns the mode's flag/metric name.
func (m DurabilityMode) String() string {
	switch m {
	case DurSync:
		return "sync"
	case DurGroup:
		return "group"
	case DurPeriodic:
		return "periodic"
	case DurAsync:
		return "async"
	default:
		return fmt.Sprintf("durability?%d", uint8(m))
	}
}

// ParseDurabilityMode parses a mode name as used in command-line flags:
// "sync", "group", "periodic" or "async".
func ParseDurabilityMode(s string) (DurabilityMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sync", "":
		return DurSync, nil
	case "group":
		return DurGroup, nil
	case "periodic":
		return DurPeriodic, nil
	case "async":
		return DurAsync, nil
	default:
		return DurSync, fmt.Errorf("wal: unknown durability mode %q (want sync, group, periodic or async)", s)
	}
}

// AckAfterForce reports whether the mode acknowledges commits only after
// their LSN is durable (DurSync, DurGroup). Modes where it is false may
// lose acknowledged-but-unforced commits at a crash; the crash harness
// uses this to decide which commits count as promises.
func (m DurabilityMode) AckAfterForce() bool {
	return m == DurSync || m == DurGroup
}

// PipelineConfig parameterizes the log-writer pipeline started by
// StartPipeline.
type PipelineConfig struct {
	// Mode selects the durability mode. DurSync needs no pipeline
	// goroutine; the other modes start one.
	Mode DurabilityMode

	// Interval is DurPeriodic's background force period (default 2ms).
	// A negative Interval disables ALL autonomous forcing — no ticker, no
	// byte-threshold trigger, no per-commit nudge in DurAsync — leaving
	// Flush/FlushAll/Commit-parked forces only. The crash harness uses
	// this to keep the persistence-operation stream deterministic.
	Interval time.Duration

	// Bytes is DurPeriodic's unforced-byte threshold (default 256 KiB):
	// when more than this many appended bytes await a force, the writer is
	// nudged without waiting for the ticker.
	Bytes int64
}

// withDefaults fills unset fields.
func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Mode == DurPeriodic {
		if c.Interval == 0 {
			c.Interval = 2 * time.Millisecond
		}
		if c.Bytes == 0 {
			c.Bytes = 256 << 10
		}
	}
	return c
}

// GroupStats counts the pipeline's activity. All fields are monotone.
type GroupStats struct {
	// Commits is the number of commits acknowledged by the log-writer
	// after a coalesced force (DurGroup parked commits).
	Commits uint64
	// ImmediateAcks is the number of commits acknowledged before their
	// force (DurPeriodic / DurAsync).
	ImmediateAcks uint64
	// Forces is the number of device forces the log-writer issued.
	Forces uint64
	// MaxBatch is the largest number of parked commits one force covered.
	MaxBatch uint64
}

// GroupObserver is the optional Observer extension receiving group-commit
// telemetry: per-force batch size and duration, and per-commit ack delay
// (enqueue to acknowledgement). *obs.Registry implements it.
type GroupObserver interface {
	// LogGroupForce reports one log-writer force: how many parked commits
	// it covered and how long the batch took end to end.
	LogGroupForce(batch int, d time.Duration)
	// LogGroupAck reports one parked commit's enqueue-to-ack delay.
	LogGroupAck(d time.Duration)
}

// ErrPipelineStopped is returned to commits parked on a pipeline that was
// stopped without a final force (process-death simulation via Stop(false)).
var ErrPipelineStopped = errors.New("wal: commit pipeline stopped")

// waiter is one commit parked on the log-writer.
type waiter struct {
	lsn LSN
	ch  chan error
	t0  time.Time
	// traced, when non-nil, receives the commit's park and force durations
	// before the acknowledgement is sent (CommitTraced).
	traced func(park, force time.Duration)
}

// pipeline is the Log's group-commit state. Guarded by Log.mu except where
// noted.
type pipeline struct {
	cfg     PipelineConfig
	pending []waiter      // commits awaiting the next force
	wake    chan struct{} // 1-buffered writer nudge
	stopCh  chan struct{}
	done    chan struct{} // closed when the writer goroutine exits
	running bool          // writer goroutine live
	stopped bool          // Stop called; Commit falls back to direct force
	drain   bool          // Stop(force): final force before exit

	// unforced counts appended bytes since the last force (byte trigger).
	unforced int64

	commits   atomic.Uint64
	immediate atomic.Uint64
	forces    atomic.Uint64
	maxBatch  atomic.Uint64
}

// StartPipeline configures the log's durability mode and, for DurGroup and
// (unless autonomous forcing is disabled) DurPeriodic/DurAsync, starts the
// dedicated log-writer goroutine. Call once, before the log sees commits;
// a log without a started pipeline behaves as DurSync. Stop shuts the
// writer down.
func (l *Log) StartPipeline(cfg PipelineConfig) {
	cfg = cfg.withDefaults()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.p.cfg = cfg
	manual := cfg.Interval < 0
	needWriter := cfg.Mode == DurGroup ||
		((cfg.Mode == DurPeriodic || cfg.Mode == DurAsync) && !manual)
	if !needWriter || l.p.running {
		return
	}
	l.p.wake = make(chan struct{}, 1)
	l.p.stopCh = make(chan struct{})
	l.p.done = make(chan struct{})
	l.p.running = true
	var tick <-chan time.Time
	var ticker *time.Ticker
	if cfg.Mode == DurPeriodic && cfg.Interval > 0 {
		ticker = time.NewTicker(cfg.Interval)
		tick = ticker.C
	}
	go l.writerLoop(tick, ticker)
}

// Mode returns the pipeline's durability mode (DurSync when StartPipeline
// was never called).
func (l *Log) Mode() DurabilityMode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p.cfg.Mode
}

// GroupStats returns the pipeline's activity counters.
func (l *Log) GroupStats() GroupStats {
	return GroupStats{
		Commits:       l.p.commits.Load(),
		ImmediateAcks: l.p.immediate.Load(),
		Forces:        l.p.forces.Load(),
		MaxBatch:      l.p.maxBatch.Load(),
	}
}

// Commit acknowledges the commit record at lsn according to the durability
// mode: DurSync forces on the calling goroutine; DurGroup parks the caller
// until the log-writer's next coalesced force covers lsn; DurPeriodic and
// DurAsync return immediately (the record rides a later background force).
// A nil return in an ack-after-force mode guarantees lsn is durable; in the
// other modes it only guarantees the record was appended.
func (l *Log) Commit(lsn LSN) error {
	return l.commit(lsn, nil)
}

// CommitTraced is Commit with span attribution: traced, when non-nil, is
// called exactly once before the commit is acknowledged, with the time the
// commit spent parked on the log-writer (enqueue to force start) and the
// duration of the device force that covered it. DurSync reports the whole
// synchronous flush as force time with zero park; the immediate-ack modes
// (DurPeriodic, DurAsync) report both as zero. The callback runs on the
// log-writer goroutine, but the acknowledgement channel orders it before
// the caller resumes, so the caller may mutate its span from the callback
// without further synchronization. Error paths may skip the callback.
func (l *Log) CommitTraced(lsn LSN, traced func(park, force time.Duration)) error {
	return l.commit(lsn, traced)
}

func (l *Log) commit(lsn LSN, traced func(park, force time.Duration)) error {
	l.mu.Lock()
	mode := l.p.cfg.Mode
	switch {
	case mode == DurGroup && l.p.running && !l.p.stopped:
		w := waiter{lsn: lsn, ch: make(chan error, 1), t0: time.Now(), traced: traced}
		l.p.pending = append(l.p.pending, w)
		l.mu.Unlock()
		l.nudge()
		return <-w.ch
	case mode == DurPeriodic:
		l.p.immediate.Add(1)
		over := l.p.cfg.Bytes > 0 && l.p.unforced >= l.p.cfg.Bytes
		running := l.p.running && !l.p.stopped
		l.mu.Unlock()
		if over && running {
			l.nudge()
		}
		if traced != nil {
			traced(0, 0)
		}
		return nil
	case mode == DurAsync:
		l.p.immediate.Add(1)
		running := l.p.running && !l.p.stopped
		l.mu.Unlock()
		if running {
			l.nudge()
		}
		if traced != nil {
			traced(0, 0)
		}
		return nil
	default:
		// DurSync, or a group pipeline that is not (or no longer) running:
		// force on the calling goroutine, exactly the classic behavior.
		l.mu.Unlock()
		t0 := time.Now()
		err := l.Flush(lsn)
		if traced != nil {
			traced(0, time.Since(t0))
		}
		return err
	}
}

// nudge wakes the log-writer; a pending nudge is enough (the writer drains
// everything accumulated per wake-up).
func (l *Log) nudge() {
	select {
	case l.p.wake <- struct{}{}:
	default:
	}
}

// writerLoop is the dedicated log-writer goroutine: it coalesces parked
// commits and unforced bytes into single device forces until stopped.
func (l *Log) writerLoop(tick <-chan time.Time, ticker *time.Ticker) {
	defer close(l.p.done)
	if ticker != nil {
		defer ticker.Stop()
	}
	for {
		// Stop takes priority over a pending wake: once Stop has been
		// called, the drain decision (final force vs ErrPipelineStopped)
		// must govern every still-parked commit, not a leftover nudge.
		select {
		case <-l.p.stopCh:
			l.flushBatch(true)
			return
		default:
		}
		select {
		case <-l.p.stopCh:
			l.flushBatch(true)
			return
		case <-l.p.wake:
			l.flushBatch(false)
		case <-tick:
			l.flushBatch(false)
		}
	}
}

// flushBatch collects the parked commits and forces the device once for
// all of them, acknowledging each afterwards. final marks the drain on
// Stop: with drain disabled (process-death simulation) waiters get
// ErrPipelineStopped instead of a force.
func (l *Log) flushBatch(final bool) {
	l.mu.Lock()
	batch := l.p.pending
	l.p.pending = nil
	dirty := l.synced > l.flushed
	drain := !final || l.p.drain
	l.mu.Unlock()

	if !drain {
		for _, w := range batch {
			w.ch <- ErrPipelineStopped
		}
		return
	}
	if len(batch) == 0 && !dirty {
		return
	}
	t0 := time.Now()
	err := l.force(0)
	if err == nil {
		l.p.forces.Add(1)
		if n := uint64(len(batch)); n > 0 {
			l.p.commits.Add(n)
			for {
				max := l.p.maxBatch.Load()
				if n <= max || l.p.maxBatch.CompareAndSwap(max, n) {
					break
				}
			}
		}
	}
	end := time.Now()
	// Every waiter in the batch appended its record before parking, so a
	// successful force covers all of them: ack after, never before. A traced
	// callback runs before its waiter's ack so the channel send orders the
	// span mutation ahead of the committing goroutine's resume.
	for _, w := range batch {
		if w.traced != nil {
			park := t0.Sub(w.t0)
			if park < 0 {
				park = 0
			}
			w.traced(park, end.Sub(t0))
		}
		w.ch <- err
	}
	if gobs, ok := l.obs.(GroupObserver); ok && gobs != nil {
		gobs.LogGroupForce(len(batch), end.Sub(t0))
		for _, w := range batch {
			gobs.LogGroupAck(end.Sub(w.t0))
		}
	}
}

// Stop shuts the log-writer down. With force true the writer drains: any
// parked commits are covered by one final force and acknowledged (Close
// path). With force false the writer exits without touching the device and
// parked commits receive ErrPipelineStopped (Abandon / process-death
// simulation). After Stop, Commit falls back to DurSync semantics for
// group mode and to append-only acks for periodic/async. Idempotent.
func (l *Log) Stop(force bool) error {
	l.mu.Lock()
	if l.p.stopped {
		running := l.p.running
		l.mu.Unlock()
		if running {
			<-l.p.done
		}
		return nil
	}
	l.p.stopped = true
	l.p.drain = force
	running := l.p.running
	l.mu.Unlock()
	if running {
		close(l.p.stopCh)
		<-l.p.done
		l.mu.Lock()
		l.p.running = false
		l.mu.Unlock()
	} else if force {
		return l.force(0)
	}
	return nil
}
