package wal

import (
	"path/filepath"
	"strings"
	"testing"

	"blinktree/internal/page"
)

func TestAppendFuncStampsLSNBeforeEncode(t *testing.T) {
	l, err := NewLog(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	var sawLSN LSN
	lsn, err := l.AppendFunc(func(assigned LSN) *Record {
		sawLSN = assigned
		// Model stamping a page image with the record's own LSN.
		return &Record{
			Type:   TSMO,
			SMO:    SMOSplit,
			Images: []PageImage{{ID: 9, Data: []byte{byte(assigned)}}},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1 || sawLSN != 1 {
		t.Fatalf("lsn = %d, callback saw %d", lsn, sawLSN)
	}
	l.FlushAll()
	recs, _ := l.DurableRecords()
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("records = %v", recs)
	}
	if recs[0].Images[0].Data[0] != 1 {
		t.Fatal("image not stamped with the assigned LSN")
	}
	// Interleaved Append and AppendFunc share one LSN sequence.
	if n, _ := l.Append(&Record{Type: TBegin, Txn: 1}); n != 2 {
		t.Fatalf("next Append got LSN %d", n)
	}
	if n, _ := l.AppendFunc(func(LSN) *Record { return &Record{Type: TAbort, Txn: 1} }); n != 3 {
		t.Fatalf("next AppendFunc got LSN %d", n)
	}
}

func TestLogStats(t *testing.T) {
	l, _ := NewLog(NewMemDevice())
	l.Append(&Record{Type: TBegin, Txn: 1})
	l.Append(&Record{Type: TCommit, Txn: 1})
	l.Flush(2)
	appends, flushes := l.Stats()
	if appends != 2 || flushes != 1 {
		t.Fatalf("stats = %d appends, %d flushes", appends, flushes)
	}
}

func TestRootFieldRoundTrip(t *testing.T) {
	for _, r := range []*Record{
		{Type: TSMO, SMO: SMOGrow, Root: 42, Allocs: []page.PageID{42}},
		{Type: TCheckpoint, Root: 7, Active: []ActiveTxn{{ID: 3, LastLSN: 9}}},
	} {
		r.LSN = 5
		got, err := DecodeRecord(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.Root != r.Root {
			t.Fatalf("Root = %d, want %d", got.Root, r.Root)
		}
	}
}

func TestRecordStringAllTypes(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: TBegin, Txn: 3},
		{LSN: 2, Type: TRecOp, Txn: 3, Op: OpInsert, Page: 4, Key: []byte("k")},
		{LSN: 3, Type: TRecOp, Txn: 3, Op: OpDelete, CLR: true, UndoNext: 1, Key: []byte("k")},
		{LSN: 4, Type: TSMO, SMO: SMOConsolidate, Deallocs: []page.PageID{9}},
		{LSN: 5, Type: TCheckpoint, Active: []ActiveTxn{{ID: 1, LastLSN: 2}}},
		{LSN: 6, Type: TCommit, Txn: 3},
	}
	wants := []string{"BEGIN", "insert", "CLR", "consolidate", "CKPT", "COMMIT"}
	for i, r := range recs {
		if !strings.Contains(r.String(), wants[i]) {
			t.Fatalf("record %d String %q missing %q", i, r.String(), wants[i])
		}
	}
}

func TestUnframeErrors(t *testing.T) {
	if _, err := unframe([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	f := frame([]byte("payload"))
	f[0] ^= 0xFF // corrupt the length
	if _, err := unframe(f); err == nil {
		t.Fatal("length mismatch accepted")
	}
	f2 := frame([]byte("payload"))
	f2[len(f2)-1] ^= 0xFF // corrupt the payload
	if _, err := unframe(f2); err == nil {
		t.Fatal("checksum mismatch accepted")
	}
}

func TestFileDeviceClose(t *testing.T) {
	dev, err := OpenFileDevice(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	dev.Append(frame([]byte("x")))
	dev.Sync()
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemDeviceClose(t *testing.T) {
	d := NewMemDevice()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
