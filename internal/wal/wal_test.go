package wal

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"blinktree/internal/page"
)

func sampleRecords() []*Record {
	return []*Record{
		{Type: TBegin, Txn: 1},
		{Type: TRecOp, Txn: 1, PrevLSN: 1, Op: OpInsert, Page: 5,
			Key: []byte("k1"), Val: []byte("v1"), OldVal: nil},
		{Type: TSMO, SMO: SMOSplit,
			Images:   []PageImage{{ID: 5, Data: []byte("img5")}, {ID: 6, Data: []byte("img6")}},
			Allocs:   []page.PageID{6},
			Deallocs: nil},
		{Type: TRecOp, Txn: 1, PrevLSN: 2, Op: OpUpdate, Page: 6, CLR: true, UndoNext: 1,
			Key: []byte("k1"), Val: []byte("v2"), OldVal: []byte("v1")},
		{Type: TCommit, Txn: 1, PrevLSN: 4},
		{Type: TCheckpoint, Active: []ActiveTxn{{ID: 2, LastLSN: 3}}},
		{Type: TAbort, Txn: 2, PrevLSN: 3},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		r.LSN = LSN(i + 1)
		got, err := DecodeRecord(r.Encode())
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, got, r)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecord(nil); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("nil: %v", err)
	}
	if _, err := DecodeRecord([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown type: %v", err)
	}
	r := &Record{Type: TRecOp, Key: []byte("hello")}
	enc := r.Encode()
	if _, err := DecodeRecord(enc[:len(enc)-2]); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestTypeAndOpStrings(t *testing.T) {
	if TBegin.String() != "BEGIN" || TSMO.String() != "SMO" || Type(99).String() == "" {
		t.Fatal("Type.String broken")
	}
	if OpInsert.String() != "insert" || Op(9).String() == "" {
		t.Fatal("Op.String broken")
	}
	if SMOSplit.String() != "split" || SMOConsolidate.String() != "consolidate" || SMOKind(99).String() == "" {
		t.Fatal("SMOKind.String broken")
	}
	for _, r := range sampleRecords() {
		if r.String() == "" {
			t.Fatal("empty record String")
		}
	}
}

func TestLogAssignsDenseLSNs(t *testing.T) {
	l, err := NewLog(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		lsn, err := l.Append(&Record{Type: TBegin, Txn: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != LSN(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if l.NextLSN() != 6 {
		t.Fatalf("NextLSN = %d, want 6", l.NextLSN())
	}
}

func TestFlushIdempotent(t *testing.T) {
	dev := NewMemDevice()
	l, _ := NewLog(dev)
	l.Append(&Record{Type: TBegin, Txn: 1})
	if err := l.Flush(1); err != nil {
		t.Fatal(err)
	}
	syncs := dev.Syncs()
	// Re-flushing an already durable LSN must not force another sync.
	if err := l.Flush(1); err != nil {
		t.Fatal(err)
	}
	if dev.Syncs() != syncs {
		t.Fatal("redundant Flush forced a device sync")
	}
	if l.FlushedLSN() != 1 {
		t.Fatalf("FlushedLSN = %d", l.FlushedLSN())
	}
}

func TestCrashLosesUnsyncedTail(t *testing.T) {
	dev := NewMemDevice()
	l, _ := NewLog(dev)
	l.Append(&Record{Type: TBegin, Txn: 1})
	l.Flush(1)
	l.Append(&Record{Type: TCommit, Txn: 1})
	// No flush: the commit record must not survive the crash.
	dev.Crash()
	l2, err := NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l2.DurableRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != TBegin {
		t.Fatalf("durable records after crash = %v", recs)
	}
	// LSN numbering resumes after the durable horizon.
	lsn, _ := l2.Append(&Record{Type: TAbort, Txn: 1})
	if lsn != 2 {
		t.Fatalf("resumed LSN = %d, want 2", lsn)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := NewLog(dev)
	want := sampleRecords()
	for _, r := range want {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	dev.Close()

	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	l2, err := NewLog(dev2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l2.DurableRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if l2.NextLSN() != LSN(len(want)+1) {
		t.Fatalf("NextLSN after reopen = %d", l2.NextLSN())
	}
}

func TestFileDeviceToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := NewLog(dev)
	l.Append(&Record{Type: TBegin, Txn: 1})
	l.FlushAll()
	// Simulate a torn write: append garbage bytes directly.
	dev.Append([]byte{0xFF, 0x01, 0x02})
	dev.Sync()
	dev.Close()

	dev2, _ := OpenFileDevice(path)
	defer dev2.Close()
	l2, err := NewLog(dev2)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := l2.DurableRecords()
	if len(recs) != 1 {
		t.Fatalf("records after torn tail = %d, want 1", len(recs))
	}
}

func TestAnalyzeBasic(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: TBegin, Txn: 1},
		{LSN: 2, Type: TRecOp, Txn: 1, PrevLSN: 1, Op: OpInsert, Key: []byte("a")},
		{LSN: 3, Type: TBegin, Txn: 2},
		{LSN: 4, Type: TCommit, Txn: 1, PrevLSN: 2},
		{LSN: 5, Type: TRecOp, Txn: 2, PrevLSN: 3, Op: OpInsert, Key: []byte("b")},
	}
	a := Analyze(recs)
	if !a.Committed[1] || a.Committed[2] {
		t.Fatalf("committed = %v", a.Committed)
	}
	if got := a.Losers[2]; got != 5 {
		t.Fatalf("loser 2 lastLSN = %d, want 5", got)
	}
	if _, ok := a.Losers[1]; ok {
		t.Fatal("committed txn 1 listed as loser")
	}
	if a.MaxTxn != 2 {
		t.Fatalf("MaxTxn = %d", a.MaxTxn)
	}
	if a.RedoStart != 1 {
		t.Fatalf("RedoStart = %d", a.RedoStart)
	}
}

func TestAnalyzeCheckpoint(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: TBegin, Txn: 1},
		{LSN: 2, Type: TRecOp, Txn: 1, PrevLSN: 1, Op: OpInsert},
		{LSN: 3, Type: TCheckpoint, Active: []ActiveTxn{{ID: 1, LastLSN: 2}}},
		{LSN: 4, Type: TRecOp, Txn: 1, PrevLSN: 2, Op: OpInsert},
	}
	a := Analyze(recs)
	if a.RedoStart != 4 {
		t.Fatalf("RedoStart = %d, want 4", a.RedoStart)
	}
	if a.Losers[1] != 4 {
		t.Fatalf("loser lastLSN = %d, want 4", a.Losers[1])
	}
	redo := a.RedoRecords()
	if len(redo) != 1 || redo[0].LSN != 4 {
		t.Fatalf("redo records = %v", redo)
	}
}

func TestAnalyzeAbortedTxnNotLoser(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: TBegin, Txn: 7},
		{LSN: 2, Type: TRecOp, Txn: 7, PrevLSN: 1},
		{LSN: 3, Type: TAbort, Txn: 7, PrevLSN: 2},
	}
	a := Analyze(recs)
	if len(a.Losers) != 0 {
		t.Fatalf("losers = %v, want none", a.Losers)
	}
}

func TestUndoChainSkipsCLRs(t *testing.T) {
	// Txn 1: op@2, op@3, CLR@4 compensating op@3 (UndoNext = 2), then crash.
	// The undo chain must contain only op@2.
	recs := []*Record{
		{LSN: 1, Type: TBegin, Txn: 1},
		{LSN: 2, Type: TRecOp, Txn: 1, PrevLSN: 1, Op: OpInsert, Key: []byte("a")},
		{LSN: 3, Type: TRecOp, Txn: 1, PrevLSN: 2, Op: OpInsert, Key: []byte("b")},
		{LSN: 4, Type: TRecOp, Txn: 1, PrevLSN: 3, CLR: true, UndoNext: 2, Op: OpDelete, Key: []byte("b")},
	}
	a := Analyze(recs)
	chain := a.UndoChain(1)
	if len(chain) != 1 || chain[0].LSN != 2 {
		lsns := make([]LSN, len(chain))
		for i, r := range chain {
			lsns[i] = r.LSN
		}
		t.Fatalf("undo chain = %v, want [2]", lsns)
	}
}

func TestUndoChainFullyCompensated(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: TBegin, Txn: 1},
		{LSN: 2, Type: TRecOp, Txn: 1, PrevLSN: 1, Op: OpInsert, Key: []byte("a")},
		{LSN: 3, Type: TRecOp, Txn: 1, PrevLSN: 2, CLR: true, UndoNext: 0, Op: OpDelete, Key: []byte("a")},
	}
	a := Analyze(recs)
	if chain := a.UndoChain(1); len(chain) != 0 {
		t.Fatalf("undo chain = %d records, want 0", len(chain))
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, _ := NewLog(NewMemDevice())
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(&Record{Type: TBegin, Txn: id}); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	l.FlushAll()
	recs, err := l.DurableRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*per {
		t.Fatalf("records = %d, want %d", len(recs), goroutines*per)
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

// TestQuickRecordRoundTrip property-tests encode/decode over random records.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRecord(rng)
		got, err := DecodeRecord(r.Encode())
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(r, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func randomRecord(rng *rand.Rand) *Record {
	randBytes := func(n int) []byte {
		b := make([]byte, rng.Intn(n))
		if len(b) == 0 {
			return nil // zero-length fields decode to nil
		}
		rng.Read(b)
		return b
	}
	r := &Record{
		LSN:     LSN(rng.Uint64() % 10000),
		Txn:     rng.Uint64() % 100,
		PrevLSN: LSN(rng.Uint64() % 10000),
	}
	switch rng.Intn(6) {
	case 0:
		r.Type = TBegin
	case 1:
		r.Type = TCommit
	case 2:
		r.Type = TAbort
	case 3:
		r.Type = TRecOp
		r.Op = Op(rng.Intn(3) + 1)
		r.Page = page.PageID(rng.Uint64() % 1000)
		r.CLR = rng.Intn(2) == 0
		r.UndoNext = LSN(rng.Uint64() % 100)
		r.Key = randBytes(40)
		r.Val = randBytes(40)
		r.OldVal = randBytes(40)
	case 4:
		r.Type = TSMO
		r.SMO = SMOKind(rng.Intn(6) + 1)
		for i := 0; i < rng.Intn(4); i++ {
			r.Images = append(r.Images, PageImage{
				ID:   page.PageID(rng.Uint64()%1000 + 1),
				Data: randBytes(64),
			})
		}
		for i := 0; i < rng.Intn(3); i++ {
			r.Allocs = append(r.Allocs, page.PageID(rng.Uint64()%1000+1))
		}
		for i := 0; i < rng.Intn(3); i++ {
			r.Deallocs = append(r.Deallocs, page.PageID(rng.Uint64()%1000+1))
		}
	case 5:
		r.Type = TCheckpoint
		r.Txn = 0
		r.PrevLSN = 0
		for i := 0; i < rng.Intn(5); i++ {
			r.Active = append(r.Active, ActiveTxn{ID: rng.Uint64() % 50, LastLSN: LSN(rng.Uint64() % 500)})
		}
	}
	return r
}

func BenchmarkAppendFlushMem(b *testing.B) {
	l, _ := NewLog(NewMemDevice())
	r := &Record{Type: TRecOp, Txn: 1, Op: OpInsert, Page: 3,
		Key: []byte("key-000001"), Val: make([]byte, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn, err := l.Append(r)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Flush(lsn); err != nil {
			b.Fatal(err)
		}
	}
}
