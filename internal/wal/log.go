package wal

import (
	"sync"
	"time"
)

// Log is the write-ahead log: it assigns LSNs, frames records onto a Device
// and tracks the durable horizon. All methods are safe for concurrent use.
//
// Durability is governed by the commit pipeline (StartPipeline): in the
// default DurSync mode every Commit forces the device on the calling
// goroutine; the other modes batch or defer forces (see DurabilityMode).
// Device forces never run under the append mutex, so record appends
// pipeline behind an in-flight force instead of serializing on it.
type Log struct {
	mu      sync.Mutex
	dev     Device
	next    LSN // next LSN to assign
	flushed LSN // all records with LSN <= flushed are durable
	synced  LSN // records appended to the device up to here (pre-Sync)

	appends uint64
	flushes uint64

	// forceMu serializes device forces; it is never held together with mu
	// (force takes mu briefly before and after the device Sync, not
	// across it), so appends proceed while a force is in flight.
	forceMu sync.Mutex

	// p is the group-commit pipeline state (see group.go).
	p pipeline

	// obs, when set, is told how long appends and forced syncs take.
	// Set once (SetObserver) before the log sees traffic.
	obs Observer
}

// Observer receives log latencies. *obs.Registry implements it.
type Observer interface {
	LogAppend(d time.Duration)
	LogFlush(d time.Duration)
}

// SetObserver installs o as the log's latency observer. It must be called
// before the log is shared between goroutines.
func (l *Log) SetObserver(o Observer) { l.obs = o }

// NewLog creates a Log over dev, resuming after any records already durable
// on the device (their LSNs are skipped).
func NewLog(dev Device) (*Log, error) {
	l := &Log{dev: dev, next: 1}
	recs, err := l.readAll()
	if err != nil {
		return nil, err
	}
	if n := len(recs); n > 0 {
		l.next = recs[n-1].LSN + 1
		l.flushed = recs[n-1].LSN
		l.synced = l.flushed
	}
	return l, nil
}

// AppendFunc assigns the next LSN, passes it to build, and appends the
// record build returns. It exists for structure modifications: the pages an
// SMO touches must be stamped with the SMO record's own LSN *before* their
// after-images are encoded into that record, so LSN assignment and record
// construction must be atomic.
func (l *Log) AppendFunc(build func(lsn LSN) *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := build(l.next)
	r.LSN = l.next
	if err := l.appendLocked(r); err != nil {
		return 0, err
	}
	return r.LSN, nil
}

// AppendBatch assigns consecutive LSNs to a batch of records under a single
// mutex hold: builds[i] is called with the i'th LSN and returns the record
// to append, exactly as in AppendFunc. The hot-leaf combining engine uses it
// to log a drained batch as one append group — N records cost one mutex
// round trip instead of N. Each record is still framed and appended to the
// device individually, so the on-device layout (and any crash point between
// two records) is identical to N sequential AppendFunc calls. On a device
// error the already-appended prefix keeps its LSNs; the returned slice holds
// exactly the LSNs that reached the device, in batch order.
func (l *Log) AppendBatch(builds []func(lsn LSN) *Record) ([]LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsns := make([]LSN, 0, len(builds))
	for _, build := range builds {
		r := build(l.next)
		r.LSN = l.next
		if err := l.appendLocked(r); err != nil {
			return lsns, err
		}
		lsns = append(lsns, r.LSN)
	}
	return lsns, nil
}

// appendLocked encodes and buffers r (LSN already assigned), timing the
// device append for the observer. Caller holds l.mu.
func (l *Log) appendLocked(r *Record) error {
	var t0 time.Time
	if l.obs != nil {
		t0 = time.Now()
	}
	f := frame(r.Encode())
	if err := l.dev.Append(f); err != nil {
		return err
	}
	if l.obs != nil {
		l.obs.LogAppend(time.Since(t0))
	}
	l.next++
	l.synced = r.LSN
	l.appends++
	l.p.unforced += int64(len(f))
	return nil
}

// Append assigns the next LSN to r, encodes it and buffers it on the device.
// The record is durable only after a Flush covering its LSN.
func (l *Log) Append(r *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.next
	if err := l.appendLocked(r); err != nil {
		return 0, err
	}
	return r.LSN, nil
}

// Flush forces durability of all records with LSN <= upto. It is a no-op if
// they are already durable (the WAL rule check in the buffer pool calls this
// on every page write, so the common case must be cheap).
func (l *Log) Flush(upto LSN) error {
	l.mu.Lock()
	covered := upto <= l.flushed
	l.mu.Unlock()
	if covered {
		return nil
	}
	return l.force(upto)
}

// FlushAll forces durability of everything appended so far.
func (l *Log) FlushAll() error {
	return l.force(0)
}

// force makes every record appended so far durable: it captures the synced
// horizon, releases the mutex, forces the device (serialized on forceMu so
// concurrent forcers coalesce — a caller that waited behind another force
// covering its target returns without a second device sync), then advances
// the durable horizon. upto, when nonzero, is the caller's target LSN: a
// horizon already past it skips the device sync entirely.
func (l *Log) force(upto LSN) error {
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	l.mu.Lock()
	if upto != 0 && upto <= l.flushed {
		l.mu.Unlock()
		return nil
	}
	target := l.synced
	if target <= l.flushed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	var t0 time.Time
	if l.obs != nil {
		t0 = time.Now()
	}
	if err := l.dev.Sync(); err != nil {
		return err
	}
	if l.obs != nil {
		l.obs.LogFlush(time.Since(t0))
	}
	l.mu.Lock()
	if target > l.flushed {
		l.flushed = target
	}
	l.flushes++
	l.p.unforced = 0
	l.mu.Unlock()
	return nil
}

// FlushedLSN returns the durable horizon.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next Append will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Stats returns (appended records, device syncs forced by Flush).
func (l *Log) Stats() (appends, flushes uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.flushes
}

// readAll decodes every durable record.
func (l *Log) readAll() ([]*Record, error) {
	frames, err := l.dev.ReadDurable()
	if err != nil {
		return nil, err
	}
	recs := make([]*Record, 0, len(frames))
	for _, f := range frames {
		payload, err := unframe(f)
		if err != nil {
			return nil, err
		}
		r, err := DecodeRecord(payload)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// DurableRecords returns every durable record in LSN order. Used by
// recovery and by the blinkdump tool.
func (l *Log) DurableRecords() ([]*Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readAll()
}

// TailTorn reports the device's torn-tail observation (garbage bytes past
// the last valid frame, left by a power cut mid-append), or zero values
// when the device is not a TailReporter. Recovery surfaces it so operators
// can tell a clean shutdown's log from one truncated by a crash.
func (l *Log) TailTorn() (bool, int64) {
	if tr, ok := l.dev.(TailReporter); ok {
		return tr.TailTorn()
	}
	return false, 0
}
