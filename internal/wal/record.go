// Package wal implements a write-ahead log with multi-level recovery (MLR,
// Lomet SIGMOD'92), the recovery substrate the paper assumes (§2.1):
//
//	"Structure modifications are recovered first, restoring the B-link-tree
//	 to a well-formed state prior to the recovery of transactional
//	 operations that require a well-formed B-link-tree."
//
// Concretely:
//
//   - Structure modifications (half split, index-term post, node delete,
//     root grow/shrink) are system-level atomic actions. Each is logged as a
//     single record carrying the after-images of every page it touched plus
//     its allocator operations, so an SMO is atomic by construction: it is
//     either entirely in the log or entirely absent. SMOs are never undone.
//   - User record operations (insert/delete/update of a record) are logged
//     physiologically — against the page that held the record — with undo
//     information and a per-transaction backchain (PrevLSN).
//   - Redo replays both kinds in LSN order guarded by the page LSN test.
//     After redo the tree is exactly as it was at the crash, in particular
//     well-formed. Undo then rolls back loser transactions *logically*
//     through ordinary tree operations, logging compensation records (CLRs)
//     whose UndoNext pointers make repeated crashes during undo safe.
//
// The paper's delete states D_X/D_D and the to-do queue are volatile and
// deliberately absent from the log (§4.1.3): a crash "drains" all delete
// state, and lost index postings are re-discovered by side traversals.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"blinktree/internal/page"
)

// LSN is a log sequence number. LSNs are assigned densely starting at 1;
// 0 means "no LSN".
type LSN uint64

// Type identifies a log record type.
type Type uint8

// Log record types.
const (
	// TBegin marks the start of a user transaction.
	TBegin Type = iota + 1
	// TCommit marks a committed user transaction.
	TCommit
	// TAbort marks a fully rolled-back user transaction.
	TAbort
	// TRecOp is a physiological user record operation with undo info.
	TRecOp
	// TSMO is an atomic structure modification with full page after-images.
	TSMO
	// TCheckpoint is a sharp checkpoint: all dirty pages were flushed
	// before it was written; redo may start here.
	TCheckpoint
)

// String returns a short name for the record type.
func (t Type) String() string {
	switch t {
	case TBegin:
		return "BEGIN"
	case TCommit:
		return "COMMIT"
	case TAbort:
		return "ABORT"
	case TRecOp:
		return "RECOP"
	case TSMO:
		return "SMO"
	case TCheckpoint:
		return "CKPT"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Op identifies a user record operation.
type Op uint8

// Record operations.
const (
	// OpInsert adds a record. Undo is delete.
	OpInsert Op = iota + 1
	// OpDelete removes a record. Undo is insert of OldVal.
	OpDelete
	// OpUpdate replaces a record's value. Undo restores OldVal.
	OpUpdate
)

// String returns a short name for the operation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// SMOKind identifies the structure modification captured by a TSMO record.
type SMOKind uint8

// Structure modification kinds (paper §3.2).
const (
	// SMOSplit is the first half split: contents divided, side pointer set.
	SMOSplit SMOKind = iota + 1
	// SMOPost is the second half split: index term posted to the parent.
	SMOPost
	// SMOConsolidate is a node delete: contents merged into left sibling,
	// index term removed, node deallocated.
	SMOConsolidate
	// SMOGrow adds a new root above the old one.
	SMOGrow
	// SMOShrink removes a root that has a single child.
	SMOShrink
	// SMOFormat initializes a fresh tree (root allocation).
	SMOFormat
	// SMODrainMark is the drain comparator's extra update that marks a
	// page empty prior to deletion (§1.3 point 2: "Extra updates lead to
	// extra logging"). The paper's method never writes this record.
	SMODrainMark
	// SMOBulkChunk carries one chunk of a bulk load: the after-images and
	// allocations of a contiguous run of freshly built nodes. Chunk
	// records share a session ID in Txn and are inert on their own —
	// recovery replays them only if a SMOBulkCommit with the same session
	// ID made it into the log, which is what keeps a multi-record load
	// all-or-nothing.
	SMOBulkChunk
	// SMOBulkCommit completes a bulk-load session: it names the new root,
	// deallocates the old one, and its presence in the durable log is the
	// commit point that makes every SMOBulkChunk of the same session
	// (matched via Txn) redoable.
	SMOBulkCommit
)

// String returns a short name for the SMO kind.
func (k SMOKind) String() string {
	switch k {
	case SMOSplit:
		return "split"
	case SMOPost:
		return "post"
	case SMOConsolidate:
		return "consolidate"
	case SMOGrow:
		return "grow"
	case SMOShrink:
		return "shrink"
	case SMOFormat:
		return "format"
	case SMODrainMark:
		return "drain-mark"
	case SMOBulkChunk:
		return "bulk-chunk"
	case SMOBulkCommit:
		return "bulk-commit"
	default:
		return fmt.Sprintf("smo(%d)", uint8(k))
	}
}

// PageImage is the full after-image of one page within an SMO record.
type PageImage struct {
	ID   page.PageID
	Data []byte // exactly one page
}

// ActiveTxn is a live-transaction entry in a checkpoint record.
type ActiveTxn struct {
	ID      uint64
	LastLSN LSN
}

// Record is one write-ahead log record. Fields are populated according to
// Type; unused fields are zero.
type Record struct {
	LSN  LSN
	Type Type

	// Txn and PrevLSN form the per-transaction backchain used by undo.
	Txn     uint64
	PrevLSN LSN

	// TRecOp fields. A compensation record (CLR) has CLR set and UndoNext
	// pointing at the next record of the same transaction still to undo.
	Op       Op
	Page     page.PageID
	Key      []byte
	Val      []byte
	OldVal   []byte
	CLR      bool
	UndoNext LSN

	// TSMO fields.
	SMO      SMOKind
	Images   []PageImage
	Allocs   []page.PageID
	Deallocs []page.PageID

	// Root records the tree's root page after this record, for TSMO kinds
	// that move the root (format, grow, shrink) and for TCheckpoint.
	// Recovery re-derives the volatile root pointer from the last one seen.
	Root page.PageID

	// TCheckpoint fields.
	Active []ActiveTxn
}

// Errors from record encoding/decoding.
var (
	// ErrBadRecord is returned for framing or checksum failures.
	ErrBadRecord = errors.New("wal: bad record")
)

var recCRC = crc32.MakeTable(crc32.Castagnoli)

// appendUvarint-style helpers over a byte slice.
func putU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func putBytes(b, v []byte) []byte {
	b = putU64(b, uint64(len(v)))
	return append(b, v...)
}

type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.b) {
		d.err = fmt.Errorf("%w: truncated u64 at %d", ErrBadRecord, d.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

// bytes decodes a length-prefixed byte field. Zero length decodes to nil:
// the log does not distinguish empty from absent byte fields.
func (d *decoder) bytes() []byte {
	n := int(d.u64())
	if d.err != nil || n == 0 {
		return nil
	}
	if n < 0 || d.pos+n > len(d.b) {
		d.err = fmt.Errorf("%w: truncated bytes(%d) at %d", ErrBadRecord, n, d.pos)
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.pos:d.pos+n])
	d.pos += n
	return v
}

// Encode serializes r (without framing; the Log adds length+crc framing).
func (r *Record) Encode() []byte {
	b := make([]byte, 0, 64)
	b = append(b, byte(r.Type))
	b = putU64(b, uint64(r.LSN))
	b = putU64(b, r.Txn)
	b = putU64(b, uint64(r.PrevLSN))
	switch r.Type {
	case TRecOp:
		b = append(b, byte(r.Op))
		var flags byte
		if r.CLR {
			flags |= 1
		}
		b = append(b, flags)
		b = putU64(b, uint64(r.Page))
		b = putU64(b, uint64(r.UndoNext))
		b = putBytes(b, r.Key)
		b = putBytes(b, r.Val)
		b = putBytes(b, r.OldVal)
	case TSMO:
		b = append(b, byte(r.SMO))
		b = putU64(b, uint64(r.Root))
		b = putU64(b, uint64(len(r.Images)))
		for _, im := range r.Images {
			b = putU64(b, uint64(im.ID))
			b = putBytes(b, im.Data)
		}
		b = putU64(b, uint64(len(r.Allocs)))
		for _, id := range r.Allocs {
			b = putU64(b, uint64(id))
		}
		b = putU64(b, uint64(len(r.Deallocs)))
		for _, id := range r.Deallocs {
			b = putU64(b, uint64(id))
		}
	case TCheckpoint:
		b = putU64(b, uint64(r.Root))
		b = putU64(b, uint64(len(r.Active)))
		for _, a := range r.Active {
			b = putU64(b, a.ID)
			b = putU64(b, uint64(a.LastLSN))
		}
	}
	return b
}

// DecodeRecord parses a record serialized by Encode.
func DecodeRecord(b []byte) (*Record, error) {
	if len(b) < 1+24 {
		return nil, fmt.Errorf("%w: too short (%d)", ErrBadRecord, len(b))
	}
	r := &Record{Type: Type(b[0])}
	d := &decoder{b: b, pos: 1}
	r.LSN = LSN(d.u64())
	r.Txn = d.u64()
	r.PrevLSN = LSN(d.u64())
	switch r.Type {
	case TBegin, TCommit, TAbort:
		// header only
	case TRecOp:
		if d.pos+2 > len(d.b) {
			return nil, fmt.Errorf("%w: truncated recop", ErrBadRecord)
		}
		r.Op = Op(d.b[d.pos])
		flags := d.b[d.pos+1]
		d.pos += 2
		r.CLR = flags&1 != 0
		r.Page = page.PageID(d.u64())
		r.UndoNext = LSN(d.u64())
		r.Key = d.bytes()
		r.Val = d.bytes()
		r.OldVal = d.bytes()
	case TSMO:
		if d.pos+1 > len(d.b) {
			return nil, fmt.Errorf("%w: truncated smo", ErrBadRecord)
		}
		r.SMO = SMOKind(d.b[d.pos])
		d.pos++
		r.Root = page.PageID(d.u64())
		nImages := int(d.u64())
		for i := 0; i < nImages && d.err == nil; i++ {
			id := page.PageID(d.u64())
			data := d.bytes()
			r.Images = append(r.Images, PageImage{ID: id, Data: data})
		}
		nAllocs := int(d.u64())
		for i := 0; i < nAllocs && d.err == nil; i++ {
			r.Allocs = append(r.Allocs, page.PageID(d.u64()))
		}
		nDeallocs := int(d.u64())
		for i := 0; i < nDeallocs && d.err == nil; i++ {
			r.Deallocs = append(r.Deallocs, page.PageID(d.u64()))
		}
	case TCheckpoint:
		r.Root = page.PageID(d.u64())
		n := int(d.u64())
		for i := 0; i < n && d.err == nil; i++ {
			id := d.u64()
			last := LSN(d.u64())
			r.Active = append(r.Active, ActiveTxn{ID: id, LastLSN: last})
		}
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadRecord, b[0])
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// String renders a compact human-readable form, used by blinkdump.
func (r *Record) String() string {
	switch r.Type {
	case TRecOp:
		clr := ""
		if r.CLR {
			clr = " CLR"
		}
		return fmt.Sprintf("%d %s%s txn=%d prev=%d page=%d %s key=%q",
			r.LSN, r.Type, clr, r.Txn, r.PrevLSN, r.Page, r.Op, r.Key)
	case TSMO:
		return fmt.Sprintf("%d SMO %s pages=%d allocs=%v deallocs=%v",
			r.LSN, r.SMO, len(r.Images), r.Allocs, r.Deallocs)
	case TCheckpoint:
		return fmt.Sprintf("%d CKPT active=%d", r.LSN, len(r.Active))
	default:
		return fmt.Sprintf("%d %s txn=%d prev=%d", r.LSN, r.Type, r.Txn, r.PrevLSN)
	}
}
