package wal

// Analysis is the result of the recovery analysis pass: where redo must
// start, which transactions committed, and which are losers needing undo.
type Analysis struct {
	// Records is the full durable log in LSN order.
	Records []*Record
	// RedoStart is the first LSN that redo must consider; records at or
	// before the last sharp checkpoint are already reflected in the pages.
	RedoStart LSN
	// Committed holds the IDs of committed transactions.
	Committed map[uint64]bool
	// Losers maps each unfinished transaction to its last log record LSN,
	// the head of its undo backchain.
	Losers map[uint64]LSN
	// MaxTxn is the highest transaction ID seen; the transaction manager
	// resumes numbering above it.
	MaxTxn uint64
	// BulkCommitted holds the session IDs (Record.Txn) of bulk loads whose
	// SMOBulkCommit record is in the durable log. SMOBulkChunk records of
	// any other session are dead weight from a load that crashed before
	// its commit point: redo must skip them entirely — images AND
	// allocations — so the abandoned pages stay unallocated and invisible.
	BulkCommitted map[uint64]bool
}

// Analyze performs the analysis pass over the durable log.
func Analyze(records []*Record) *Analysis {
	a := &Analysis{
		Records:       records,
		RedoStart:     1,
		Committed:     make(map[uint64]bool),
		Losers:        make(map[uint64]LSN),
		BulkCommitted: make(map[uint64]bool),
	}
	for _, r := range records {
		if r.Txn > a.MaxTxn {
			a.MaxTxn = r.Txn
		}
		if r.Type == TSMO && r.SMO == SMOBulkCommit {
			a.BulkCommitted[r.Txn] = true
		}
		switch r.Type {
		case TCheckpoint:
			// Sharp checkpoint: every page was flushed before this record
			// was written, so redo restarts here. Live transactions are
			// carried in the record.
			a.RedoStart = r.LSN + 1
			a.Losers = make(map[uint64]LSN, len(r.Active))
			for _, at := range r.Active {
				a.Losers[at.ID] = at.LastLSN
			}
		case TBegin:
			a.Losers[r.Txn] = r.LSN
		case TRecOp:
			// Txn 0 marks non-transactional (auto-committed) operations;
			// they are redone but never undone.
			if r.Txn != 0 {
				a.Losers[r.Txn] = r.LSN
			}
		case TCommit:
			a.Committed[r.Txn] = true
			delete(a.Losers, r.Txn)
		case TAbort:
			// Fully undone before the crash: nothing left to do.
			delete(a.Losers, r.Txn)
		}
	}
	return a
}

// RedoRecords returns the suffix of the log that the redo pass must apply,
// in LSN order.
func (a *Analysis) RedoRecords() []*Record {
	for i, r := range a.Records {
		if r.LSN >= a.RedoStart {
			return a.Records[i:]
		}
	}
	return nil
}

// UndoChain walks the backchain of one loser transaction from its last
// record, honoring CLR UndoNext pointers, and returns the records still to
// be compensated, newest first.
func (a *Analysis) UndoChain(txn uint64) []*Record {
	byLSN := make(map[LSN]*Record, len(a.Records))
	for _, r := range a.Records {
		byLSN[r.LSN] = r
	}
	var chain []*Record
	cur := a.Losers[txn]
	for cur != 0 {
		r := byLSN[cur]
		if r == nil {
			break
		}
		switch {
		case r.Type == TRecOp && r.CLR:
			// Everything between this CLR and its UndoNext was already
			// compensated before the crash: skip it.
			cur = r.UndoNext
		case r.Type == TRecOp:
			chain = append(chain, r)
			cur = r.PrevLSN
		case r.Type == TBegin:
			cur = 0
		default:
			cur = r.PrevLSN
		}
	}
	return chain
}
