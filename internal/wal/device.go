package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Device is the append-only byte store beneath the Log.
//
// Durability contract: frames covered by a Sync are durable; frames
// appended but not yet synced may be lost at a crash. What survives a
// crash must be a clean prefix of the appended frames — a device may keep
// some unsynced tail frames (an OS may have written them out on its own),
// but never a frame whose predecessor was lost, because log analysis
// depends on LSN order and on a commit record implying its transaction's
// earlier records. FileDevice gets the prefix property for free: its frame
// chain breaks at the first torn or corrupt frame.
type Device interface {
	// Append buffers one frame. The frame is durable only after Sync.
	Append(frame []byte) error
	// Sync makes all appended frames durable.
	Sync() error
	// ReadDurable returns every durable frame in append order: a clean
	// prefix of the appended frames (see the Device durability contract).
	// Used at recovery.
	ReadDurable() ([][]byte, error)
	// Close releases resources. Buffered frames are not implicitly synced.
	Close() error
}

// TailReporter is the optional Device extension for torn-tail observation:
// devices that can detect garbage past the last valid frame (a frame torn
// by a power cut) report it here, and recovery surfaces it in the tree's
// RecoveryStats. FileDevice and the crash-simulation device implement it.
type TailReporter interface {
	// TailTorn reports whether trailing bytes past the last valid frame
	// were found, and how many.
	TailTorn() (torn bool, trailingBytes int64)
}

// MemDevice is an in-memory Device with explicit crash simulation: Crash
// discards the unsynced tail, exactly what a power failure does to a real
// disk queue. The recovery experiments (E9) depend on this.
type MemDevice struct {
	mu       sync.Mutex
	durable  [][]byte
	buffered [][]byte
	syncs    uint64
}

// NewMemDevice returns an empty in-memory log device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// Append implements Device.
func (d *MemDevice) Append(frame []byte) error {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	d.mu.Lock()
	d.buffered = append(d.buffered, cp)
	d.mu.Unlock()
	return nil
}

// Sync implements Device.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	d.durable = append(d.durable, d.buffered...)
	d.buffered = nil
	d.syncs++
	d.mu.Unlock()
	return nil
}

// ReadDurable implements Device.
func (d *MemDevice) ReadDurable() ([][]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][]byte, len(d.durable))
	copy(out, d.durable)
	return out, nil
}

// Crash discards all unsynced frames, simulating a power failure.
func (d *MemDevice) Crash() {
	d.mu.Lock()
	d.buffered = nil
	d.mu.Unlock()
}

// Syncs returns how many times Sync has been called; the logging-cost
// experiment (E3) uses it to compare forced-write counts.
func (d *MemDevice) Syncs() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// FileDevice is a Device over an append-only file. Frames are framed as
// u32 length + u32 crc32c + payload; a torn tail (partial or corrupt final
// frame, as a power cut mid-append leaves behind) is tolerated at
// ReadDurable, treated as the end of the log, and reported by TailTorn.
type FileDevice struct {
	mu   sync.Mutex
	f    *os.File
	path string

	// tornTail/tornBytes record the tail observation of the last
	// ReadDurable: whether bytes past the last valid frame were found.
	tornTail  bool
	tornBytes int64
}

// OpenFileDevice opens or creates the log file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f, path: path}, nil
}

// Append implements Device.
func (d *FileDevice) Append(frame []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.f.Write(frame)
	return err
}

// Sync implements Device.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

// ReadDurable implements Device. It re-reads the file from the start and
// stops at the first torn or corrupt frame; any bytes past that point are
// recorded as a torn tail (see TailTorn).
func (d *FileDevice) ReadDurable() ([][]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, err := os.Open(d.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var frames [][]byte
	var hdr [8]byte
	var consumed int64
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // clean EOF or torn header: end of log
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload: end of log
		}
		if crc32.Checksum(payload, recCRC) != want {
			break // corrupt frame: end of log
		}
		frame := make([]byte, 8+n)
		copy(frame, hdr[:])
		copy(frame[8:], payload)
		frames = append(frames, frame)
		consumed += int64(8 + n)
	}
	if fi, err := f.Stat(); err == nil {
		d.tornBytes = fi.Size() - consumed
		d.tornTail = d.tornBytes > 0
	}
	return frames, nil
}

// TailTorn implements TailReporter: it reports the tail observation of the
// most recent ReadDurable (trailing bytes past the last valid frame, left
// by a frame append a power cut interrupted).
func (d *FileDevice) TailTorn() (bool, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tornTail, d.tornBytes
}

// Close implements Device.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// frame wraps an encoded record with length+crc framing.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, recCRC))
	copy(out[8:], payload)
	return out
}

// unframe strips and verifies framing.
func unframe(f []byte) ([]byte, error) {
	if len(f) < 8 {
		return nil, fmt.Errorf("%w: short frame", ErrBadRecord)
	}
	n := binary.LittleEndian.Uint32(f[0:])
	want := binary.LittleEndian.Uint32(f[4:])
	if int(n) != len(f)-8 {
		return nil, fmt.Errorf("%w: frame length mismatch", ErrBadRecord)
	}
	payload := f[8:]
	if crc32.Checksum(payload, recCRC) != want {
		return nil, fmt.Errorf("%w: frame checksum", ErrBadRecord)
	}
	return payload, nil
}
