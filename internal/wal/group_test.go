package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateDevice wraps a MemDevice with a controllable Sync: each Sync
// announces itself on enter, then blocks until a token arrives on release.
// Tests use it to hold the log-writer inside a force while more committers
// park, making the coalescing assertions deterministic.
type gateDevice struct {
	*MemDevice
	enter   chan struct{}
	release chan struct{}
	ungated atomic.Bool
}

func newGateDevice() *gateDevice {
	return &gateDevice{
		MemDevice: NewMemDevice(),
		enter:     make(chan struct{}),
		release:   make(chan struct{}),
	}
}

func (d *gateDevice) Sync() error {
	if !d.ungated.Load() {
		d.enter <- struct{}{}
		<-d.release
	}
	return d.MemDevice.Sync()
}

// waitParked polls until n commits are parked on the log-writer.
func waitParked(t *testing.T, l *Log, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		parked := len(l.p.pending)
		l.mu.Unlock()
		if parked >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d parked commits (have %d)", n, parked)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestGroupCommitCoalesces holds the log-writer inside one force while N
// more committers park, then verifies all N are acknowledged by a single
// coalesced force — and that no committer is acknowledged before the
// durable horizon covers its LSN (ack-after-force).
func TestGroupCommitCoalesces(t *testing.T) {
	dev := newGateDevice()
	l, err := NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline(PipelineConfig{Mode: DurGroup})

	commit := func(errs chan<- error) {
		lsn, err := l.Append(&Record{Type: TCommit, Txn: 1})
		if err != nil {
			errs <- err
			return
		}
		if err := l.Commit(lsn); err != nil {
			errs <- err
			return
		}
		if got := l.FlushedLSN(); got < lsn {
			errs <- fmt.Errorf("acked before force: flushed %d < lsn %d", got, lsn)
			return
		}
		errs <- nil
	}

	// First committer: the writer picks it up and blocks inside Sync.
	first := make(chan error, 1)
	go commit(first)
	<-dev.enter

	// While the force is in flight, N more committers park.
	const n = 16
	rest := make(chan error, n)
	for i := 0; i < n; i++ {
		go commit(rest)
	}
	waitParked(t, l, n)

	// Release the first force, then the coalesced one covering all N.
	dev.release <- struct{}{}
	if err := <-first; err != nil {
		t.Fatalf("first commit: %v", err)
	}
	<-dev.enter
	dev.release <- struct{}{}
	for i := 0; i < n; i++ {
		if err := <-rest; err != nil {
			t.Fatalf("parked commit: %v", err)
		}
	}

	if syncs := dev.Syncs(); syncs != 2 {
		t.Fatalf("device syncs = %d, want 2 (1 + 1 coalesced for %d committers)", syncs, n)
	}
	gs := l.GroupStats()
	if gs.Commits != n+1 {
		t.Fatalf("GroupStats.Commits = %d, want %d", gs.Commits, n+1)
	}
	if gs.Forces != 2 {
		t.Fatalf("GroupStats.Forces = %d, want 2", gs.Forces)
	}
	if gs.MaxBatch != n {
		t.Fatalf("GroupStats.MaxBatch = %d, want %d", gs.MaxBatch, n)
	}
	dev.ungated.Store(true)
	if err := l.Stop(true); err != nil {
		t.Fatal(err)
	}
}

// TestSyncCommitAcksAfterForce pins the default mode's contract under
// concurrency: every Commit return implies the commit LSN is durable.
func TestSyncCommitAcksAfterForce(t *testing.T) {
	l, err := NewLog(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lsn, err := l.Append(&Record{Type: TCommit, Txn: 2})
			if err != nil {
				errs <- err
				return
			}
			if err := l.Commit(lsn); err != nil {
				errs <- err
				return
			}
			if got := l.FlushedLSN(); got < lsn {
				errs <- fmt.Errorf("acked before force: flushed %d < lsn %d", got, lsn)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupStopDrainsMidBatch stops the pipeline while one force is in
// flight and more commits are parked behind it: Stop(true) must drain — the
// parked commits are covered by one final force, acknowledged with nil, and
// the writer exits without hanging.
func TestGroupStopDrainsMidBatch(t *testing.T) {
	dev := newGateDevice()
	l, err := NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline(PipelineConfig{Mode: DurGroup})

	first := make(chan error, 1)
	go func() {
		lsn, err := l.Append(&Record{Type: TCommit, Txn: 1})
		if err == nil {
			err = l.Commit(lsn)
		}
		first <- err
	}()
	<-dev.enter // writer inside the first force

	const n = 6
	rest := make(chan error, n)
	var lsns [n]LSN
	for i := 0; i < n; i++ {
		lsn, err := l.Append(&Record{Type: TCommit, Txn: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
		go func() { rest <- l.Commit(lsn) }()
	}
	waitParked(t, l, n)

	stopped := make(chan error, 1)
	go func() { stopped <- l.Stop(true) }()

	dev.release <- struct{}{} // finish the in-flight force
	if err := <-first; err != nil {
		t.Fatalf("first commit: %v", err)
	}
	<-dev.enter // final drain force for the parked batch
	dev.release <- struct{}{}

	for i := 0; i < n; i++ {
		if err := <-rest; err != nil {
			t.Fatalf("parked commit during drain: %v", err)
		}
	}
	if err := <-stopped; err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, lsn := range lsns {
		if got := l.FlushedLSN(); got < lsn {
			t.Fatalf("drained commit not durable: flushed %d < lsn %d", got, lsn)
		}
	}
	// After Stop, group commits fall back to the direct sync path.
	dev.ungated.Store(true)
	lsn, err := l.Append(&Record{Type: TCommit, Txn: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatalf("post-stop commit: %v", err)
	}
	if got := l.FlushedLSN(); got < lsn {
		t.Fatalf("post-stop commit not durable: flushed %d < lsn %d", got, lsn)
	}
}

// TestGroupStopNoDrainRejectsParked stops the pipeline without a drain
// (process-death simulation): parked commits must receive
// ErrPipelineStopped and the device must see no further force.
func TestGroupStopNoDrainRejectsParked(t *testing.T) {
	dev := newGateDevice()
	l, err := NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline(PipelineConfig{Mode: DurGroup})

	first := make(chan error, 1)
	go func() {
		lsn, err := l.Append(&Record{Type: TCommit, Txn: 1})
		if err == nil {
			err = l.Commit(lsn)
		}
		first <- err
	}()
	<-dev.enter

	const n = 4
	rest := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			lsn, err := l.Append(&Record{Type: TCommit, Txn: 2})
			if err == nil {
				err = l.Commit(lsn)
			}
			rest <- err
		}()
	}
	waitParked(t, l, n)

	stopped := make(chan error, 1)
	go func() { stopped <- l.Stop(false) }()
	waitStopSignaled(t, l)
	dev.release <- struct{}{} // the in-flight force still completes
	if err := <-first; err != nil {
		t.Fatalf("first commit: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := <-rest; !errors.Is(err, ErrPipelineStopped) {
			t.Fatalf("parked commit after Stop(false): err = %v, want ErrPipelineStopped", err)
		}
	}
	if err := <-stopped; err != nil {
		t.Fatalf("stop: %v", err)
	}
	if syncs := dev.Syncs(); syncs != 1 {
		t.Fatalf("device syncs = %d, want 1 (no drain force)", syncs)
	}
}

// TestPeriodicByteThresholdForces pins DurPeriodic's byte trigger: with a
// tiny Bytes threshold and an effectively-never ticker, an acknowledged
// commit is forced by the nudged log-writer shortly after.
func TestPeriodicByteThresholdForces(t *testing.T) {
	l, err := NewLog(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline(PipelineConfig{Mode: DurPeriodic, Interval: time.Hour, Bytes: 1})
	lsn, err := l.Append(&Record{Type: TCommit, Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if gs := l.GroupStats(); gs.ImmediateAcks != 1 {
		t.Fatalf("ImmediateAcks = %d, want 1", gs.ImmediateAcks)
	}
	waitFlushed(t, l, lsn)
	if err := l.Stop(true); err != nil {
		t.Fatal(err)
	}
}

// TestPeriodicTickerForces pins the ticker trigger: appended-but-uncommitted
// records become durable within a few intervals with no explicit flush.
func TestPeriodicTickerForces(t *testing.T) {
	l, err := NewLog(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline(PipelineConfig{Mode: DurPeriodic, Interval: time.Millisecond})
	lsn, err := l.Append(&Record{Type: TBegin, Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFlushed(t, l, lsn)
	if err := l.Stop(true); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCommitForcesInBackground pins DurAsync: Commit acknowledges
// immediately and the nudged log-writer makes the record durable soon after.
func TestAsyncCommitForcesInBackground(t *testing.T) {
	l, err := NewLog(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline(PipelineConfig{Mode: DurAsync})
	lsn, err := l.Append(&Record{Type: TCommit, Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if gs := l.GroupStats(); gs.ImmediateAcks != 1 {
		t.Fatalf("ImmediateAcks = %d, want 1", gs.ImmediateAcks)
	}
	waitFlushed(t, l, lsn)
	if err := l.Stop(true); err != nil {
		t.Fatal(err)
	}
}

// TestManualFlushIntervalDisablesAutonomousForcing pins the crash-harness
// determinism knob: with a negative Interval, periodic/async start no
// writer, acks are immediate, and nothing forces until an explicit Flush.
func TestManualFlushIntervalDisablesAutonomousForcing(t *testing.T) {
	for _, mode := range []DurabilityMode{DurPeriodic, DurAsync} {
		dev := NewMemDevice()
		l, err := NewLog(dev)
		if err != nil {
			t.Fatal(err)
		}
		l.StartPipeline(PipelineConfig{Mode: mode, Interval: -1, Bytes: 1})
		lsn, err := l.Append(&Record{Type: TCommit, Txn: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if syncs := dev.Syncs(); syncs != 0 {
			t.Fatalf("%s manual: device syncs = %d, want 0 before explicit flush", mode, syncs)
		}
		if err := l.Flush(lsn); err != nil {
			t.Fatal(err)
		}
		if got := l.FlushedLSN(); got < lsn {
			t.Fatalf("%s manual: flushed %d < lsn %d after explicit flush", mode, got, lsn)
		}
		if err := l.Stop(true); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParseDurabilityMode pins the flag-name round trip.
func TestParseDurabilityMode(t *testing.T) {
	for _, mode := range []DurabilityMode{DurSync, DurGroup, DurPeriodic, DurAsync} {
		got, err := ParseDurabilityMode(mode.String())
		if err != nil || got != mode {
			t.Fatalf("ParseDurabilityMode(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseDurabilityMode("fsync-maybe"); err == nil {
		t.Fatal("ParseDurabilityMode accepted an unknown mode")
	}
	if got, err := ParseDurabilityMode(""); err != nil || got != DurSync {
		t.Fatalf("ParseDurabilityMode(\"\") = %v, %v; want DurSync default", got, err)
	}
}

// waitStopSignaled polls until Stop has closed the writer's stop channel,
// so a subsequently released force is followed by the stop-priority path
// rather than a leftover wake nudge.
func waitStopSignaled(t *testing.T, l *Log) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		ch := l.p.stopCh
		l.mu.Unlock()
		select {
		case <-ch:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for Stop to signal the writer")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// waitFlushed polls until the log's durable horizon covers lsn.
func waitFlushed(t *testing.T, l *Log, lsn LSN) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.FlushedLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for background force of LSN %d (flushed %d)", lsn, l.FlushedLSN())
		}
		time.Sleep(100 * time.Microsecond)
	}
}
