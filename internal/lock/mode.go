// Package lock implements the transactional lock manager the paper's method
// interacts with (ICDE 2004 §2.4).
//
// The B-link tree acquires record locks in "no wait" mode while holding node
// latches; if the lock is denied the caller releases its latch, re-requests
// the lock in blocking mode, and then re-latches via the tree's re-latch
// procedure. The lock manager therefore supports:
//
//   - Shared (S), Update (U) and Exclusive (X) modes with conversion,
//   - conditional (no-wait) and unconditional (blocking) requests,
//   - deadlock detection on the waits-for graph with victim selection,
//   - release of a single lock or of everything a transaction holds.
//
// Unlike latches, lock requests are tracked per owner and are re-entrant.
package lock

// Mode is a transactional lock mode.
type Mode uint8

// Lock modes, ordered by strength: S < U < X.
const (
	// Shared allows concurrent readers.
	Shared Mode = iota + 1
	// Update allows concurrent readers but only one prospective updater.
	Update
	// Exclusive excludes all other owners.
	Exclusive
)

// String returns the conventional single-letter name of the mode.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Update:
		return "U"
	case Exclusive:
		return "X"
	default:
		return "?"
	}
}

// Compatible reports whether mode b may be granted to a different owner
// while mode a is held. The matrix matches Gray & Reuter: S-S and S-U are
// compatible, U-U and anything-X are not.
func Compatible(a, b Mode) bool {
	switch a {
	case Shared:
		return b == Shared || b == Update
	case Update:
		return b == Shared
	case Exclusive:
		return false
	default:
		return true
	}
}

// stronger reports whether a is strictly stronger than b.
func stronger(a, b Mode) bool { return a > b }

// supremum returns the weakest mode at least as strong as both a and b.
func supremum(a, b Mode) Mode {
	if a > b {
		return a
	}
	return b
}
