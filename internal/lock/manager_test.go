package lock

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestModeString(t *testing.T) {
	cases := map[Mode]string{Shared: "S", Update: "U", Exclusive: "X", Mode(0): "?"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestCompatibility(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{Shared, Shared, true}, {Shared, Update, true}, {Shared, Exclusive, false},
		{Update, Shared, true}, {Update, Update, false}, {Update, Exclusive, false},
		{Exclusive, Shared, false}, {Exclusive, Update, false}, {Exclusive, Exclusive, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSharedGrants(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.TryLock(3, "k", Exclusive); !errors.Is(err, ErrDenied) {
		t.Fatalf("TryLock X over two S: %v, want ErrDenied", err)
	}
	if err := m.Unlock(1, "k"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(2, "k"); err != nil {
		t.Fatal(err)
	}
	if err := m.TryLock(3, "k", Exclusive); err != nil {
		t.Fatalf("TryLock X on free resource: %v", err)
	}
}

func TestReentrant(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		if err := m.Lock(1, "k", Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := m.Unlock(1, "k"); err != nil {
			t.Fatal(err)
		}
		if m.HeldMode(1, "k") != Exclusive {
			t.Fatalf("lock dropped after partial unlock %d", i)
		}
	}
	if err := m.Unlock(1, "k"); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, "k") != 0 {
		t.Fatal("lock still held after final unlock")
	}
}

func TestWeakerRequestKeepsStrongerMode(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, "k") != Exclusive {
		t.Fatal("mode weakened by re-entrant shared request")
	}
	m.ReleaseAll(1)
}

func TestConversion(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	// Sole holder converts immediately.
	if err := m.TryLock(1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, "k") != Exclusive {
		t.Fatalf("mode = %v after conversion", m.HeldMode(1, "k"))
	}
	m.ReleaseAll(1)

	// Conversion blocked by a second shared holder.
	if err := m.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.TryLock(1, "k", Exclusive); !errors.Is(err, ErrDenied) {
		t.Fatalf("conversion with second holder: %v, want ErrDenied", err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(1, "k", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatalf("blocking conversion: %v", err)
	}
	if m.HeldMode(1, "k") != Exclusive {
		t.Fatal("conversion did not upgrade mode")
	}
	m.ReleaseAll(1)
}

func TestNoWaitDenied(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.TryLock(2, "k", Shared); !errors.Is(err, ErrDenied) {
		t.Fatalf("TryLock: %v, want ErrDenied", err)
	}
	s := m.Snapshot()
	if s.NoWaitDenials != 1 {
		t.Fatalf("NoWaitDenials = %d, want 1", s.NoWaitDenials)
	}
	m.ReleaseAll(1)
}

func TestBlockingGrantAfterRelease(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, "k", Shared) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-got:
		t.Fatalf("blocked request returned early: %v", err)
	default:
	}
	if err := m.Unlock(1, "k"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("blocked request: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked request never granted")
	}
	if m.HeldMode(2, "k") != Shared {
		t.Fatal("grant not recorded")
	}
}

func TestFIFONoStarvation(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	xDone := make(chan struct{})
	go func() {
		if err := m.Lock(2, "k", Exclusive); err != nil {
			t.Error(err)
		}
		close(xDone)
	}()
	// Wait for the X request to queue, then a fresh S must queue behind it.
	time.Sleep(20 * time.Millisecond)
	if err := m.TryLock(3, "k", Shared); !errors.Is(err, ErrDenied) {
		t.Fatalf("fresh S jumped a queued X: %v", err)
	}
	m.ReleaseAll(1)
	<-xDone
	m.ReleaseAll(2)
}

func TestUnlockNotHeld(t *testing.T) {
	m := NewManager()
	if err := m.Unlock(1, "nope"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("Unlock on free resource: %v, want ErrNotHeld", err)
	}
	if err := m.Lock(2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(1, "k"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("Unlock by non-holder: %v, want ErrNotHeld", err)
	}
	m.ReleaseAll(2)
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var granted atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		res := Resource("a")
		if i%2 == 1 {
			res = "b"
		}
		go func(o Owner, r Resource) {
			defer wg.Done()
			if err := m.Lock(o, r, Shared); err == nil {
				granted.Add(1)
			}
		}(Owner(10+i), res)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	if granted.Load() != 4 {
		t.Fatalf("granted = %d, want 4", granted.Load())
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(1, "b", Exclusive) }()
	go func() { errs <- m.Lock(2, "a", Exclusive) }()

	var deadlocks, grants int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			switch {
			case errors.Is(err, ErrDeadlock):
				deadlocks++
				// Victim aborts: release everything so the survivor runs.
				m.ReleaseAll(1)
				m.ReleaseAll(2)
			case err == nil:
				grants++
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock never resolved")
		}
	}
	if deadlocks == 0 {
		t.Fatalf("no deadlock victim (deadlocks=%d grants=%d)", deadlocks, grants)
	}
	if s := m.Snapshot(); s.Deadlocks == 0 {
		t.Fatalf("stats did not record deadlock: %+v", s)
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := NewManager()
	for i := 1; i <= 3; i++ {
		if err := m.Lock(Owner(i), Resource(fmt.Sprintf("r%d", i)), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 3)
	for i := 1; i <= 3; i++ {
		next := i%3 + 1
		go func(o Owner, r Resource) { errs <- m.Lock(o, r, Exclusive) }(Owner(i), Resource(fmt.Sprintf("r%d", next)))
	}
	victims := 0
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				victims++
				// Abort every owner so the remaining waiters drain; this is
				// what the transaction layer would do.
				for o := 1; o <= 3; o++ {
					m.ReleaseAll(Owner(o))
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatal("three-way deadlock never resolved")
		}
	}
	if victims == 0 {
		t.Fatal("no victim in three-way deadlock")
	}
}

func TestConversionDeadlock(t *testing.T) {
	// Two S holders both converting to X is the classic conversion deadlock;
	// at least one must be victimized.
	m := NewManager()
	if err := m.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(1, "k", Exclusive) }()
	go func() { errs <- m.Lock(2, "k", Exclusive) }()
	resolved := false
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				resolved = true
				m.ReleaseAll(1)
				m.ReleaseAll(2)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("conversion deadlock never resolved")
		}
	}
	if !resolved {
		t.Fatal("conversion deadlock produced no victim")
	}
}

func TestHeldModeUnknown(t *testing.T) {
	m := NewManager()
	if got := m.HeldMode(9, "missing"); got != 0 {
		t.Fatalf("HeldMode on free resource = %v, want 0", got)
	}
}

// TestQuickSupremum property-tests supremum and stronger.
func TestQuickSupremum(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Mode(a%3+1), Mode(b%3+1)
		sup := supremum(x, y)
		return !stronger(x, sup) && !stronger(y, sup) && (sup == x || sup == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStressNoLostGrants runs many owners over few resources with random
// lock/unlock traffic and verifies exclusivity: an X holder observed via
// HeldMode is the sole holder.
func TestStressNoLostGrants(t *testing.T) {
	m := NewManager()
	resources := []Resource{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	var violations atomic.Int64
	var xHolders [4]atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(owner Owner, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				ri := rng.Intn(len(resources))
				res := resources[ri]
				mode := Shared
				if rng.Intn(3) == 0 {
					mode = Exclusive
				}
				var err error
				if rng.Intn(2) == 0 {
					err = m.TryLock(owner, res, mode)
				} else {
					err = m.Lock(owner, res, mode)
				}
				if err != nil {
					if errors.Is(err, ErrDeadlock) {
						m.ReleaseAll(owner)
					}
					continue
				}
				if mode == Exclusive {
					if xHolders[ri].Add(1) > 1 {
						violations.Add(1)
					}
					xHolders[ri].Add(-1)
				}
				if err := m.Unlock(owner, res); err != nil {
					t.Errorf("unlock: %v", err)
				}
			}
			m.ReleaseAll(owner)
		}(Owner(g+1), int64(g*7+1))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exclusivity violations", v)
	}
}
