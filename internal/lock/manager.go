package lock

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Owner identifies a lock owner, normally a transaction ID.
type Owner uint64

// Resource names a lockable resource; record locks use the record key.
type Resource string

// Errors returned by lock requests.
var (
	// ErrDenied is returned by a no-wait request that conflicts.
	ErrDenied = errors.New("lock: denied (no-wait conflict)")
	// ErrDeadlock is returned to a blocking requester chosen as the
	// deadlock victim. The caller is expected to abort its transaction.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrNotHeld is returned when releasing a lock the owner does not hold.
	ErrNotHeld = errors.New("lock: not held")
)

// Stats counts lock manager activity.
type Stats struct {
	Grants        uint64 // requests granted (including conversions)
	ImmediateOK   uint64 // no-wait requests granted without conflict
	NoWaitDenials uint64 // no-wait requests refused
	Waits         uint64 // blocking requests that had to wait
	Deadlocks     uint64 // requests aborted as deadlock victims
}

// holder records one owner's grant on a resource.
type holder struct {
	owner Owner
	mode  Mode
	count int // re-entrant grant count
}

// waiter is a blocked request parked on a resource queue.
type waiter struct {
	owner      Owner
	mode       Mode
	convert    bool // conversion of an existing grant
	granted    bool
	victimized bool
	ready      chan struct{}
}

// head is the lock queue for one resource.
type head struct {
	holders []holder
	queue   []*waiter // FIFO; conversions are scanned first at grant time
}

const shardCount = 64

type shard struct {
	mu    sync.Mutex
	heads map[Resource]*head
}

// Manager is a sharded lock table with deadlock detection.
// The zero value is not usable; call NewManager.
type Manager struct {
	shards [shardCount]shard

	grants    atomic.Uint64
	immediate atomic.Uint64
	denials   atomic.Uint64
	waits     atomic.Uint64
	deadlocks atomic.Uint64

	// waitObs, when set, is told how long each blocking request waited and
	// whether it ended as a deadlock victim. Set once (SetWaitObserver)
	// before the manager sees traffic.
	waitObs func(res Resource, d time.Duration, deadlock bool)
}

// SetWaitObserver installs fn as the manager's wait observer. It must be
// called before the manager is shared between goroutines.
func (m *Manager) SetWaitObserver(fn func(res Resource, d time.Duration, deadlock bool)) {
	m.waitObs = fn
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	m := &Manager{}
	for i := range m.shards {
		m.shards[i].heads = make(map[Resource]*head)
	}
	return m
}

func (m *Manager) shardFor(res Resource) *shard {
	h := fnv.New32a()
	h.Write([]byte(res))
	return &m.shards[h.Sum32()%shardCount]
}

// findHolder returns the index of owner's grant in h, or -1.
func (h *head) findHolder(owner Owner) int {
	for i := range h.holders {
		if h.holders[i].owner == owner {
			return i
		}
	}
	return -1
}

// compatibleWithHolders reports whether owner may be granted mode given the
// current holders, ignoring owner's own grant (for conversions).
func (h *head) compatibleWithHolders(owner Owner, mode Mode) bool {
	for i := range h.holders {
		if h.holders[i].owner == owner {
			continue
		}
		if !Compatible(h.holders[i].mode, mode) {
			return false
		}
	}
	return true
}

// Lock acquires res in the given mode for owner, blocking until granted.
// It returns ErrDeadlock if the request is chosen as a deadlock victim, in
// which case no lock is acquired.
func (m *Manager) Lock(owner Owner, res Resource, mode Mode) error {
	return m.lock(owner, res, mode, true)
}

// TryLock acquires res in the given mode for owner without blocking ("no
// wait" mode, §2.4). It returns ErrDenied on conflict.
func (m *Manager) TryLock(owner Owner, res Resource, mode Mode) error {
	return m.lock(owner, res, mode, false)
}

func (m *Manager) lock(owner Owner, res Resource, mode Mode, wait bool) error {
	s := m.shardFor(res)
	s.mu.Lock()
	h := s.heads[res]
	if h == nil {
		h = &head{}
		s.heads[res] = h
	}

	if i := h.findHolder(owner); i >= 0 {
		held := h.holders[i].mode
		if !stronger(mode, held) {
			// Re-entrant request at equal or weaker strength.
			h.holders[i].count++
			s.mu.Unlock()
			m.grants.Add(1)
			m.immediate.Add(1)
			return nil
		}
		// Conversion. A compatible conversion may jump the wait queue:
		// conversions have priority (standard practice; it prevents a
		// conversion from deadlocking behind waiters that are themselves
		// blocked by the converter's current grant).
		want := supremum(held, mode)
		if h.compatibleWithHolders(owner, want) {
			h.holders[i].mode = want
			h.holders[i].count++
			s.mu.Unlock()
			m.grants.Add(1)
			m.immediate.Add(1)
			return nil
		}
		if !wait {
			s.mu.Unlock()
			m.denials.Add(1)
			return ErrDenied
		}
		w := &waiter{owner: owner, mode: want, convert: true, ready: make(chan struct{})}
		h.queue = append(h.queue, w)
		s.mu.Unlock()
		return m.wait(owner, res, w)
	}

	// Fresh request. Grant only if compatible with holders and no earlier
	// waiter would be starved (first-come-first-served past the holders).
	if len(h.queue) == 0 && h.compatibleWithHolders(owner, mode) {
		h.holders = append(h.holders, holder{owner: owner, mode: mode, count: 1})
		s.mu.Unlock()
		m.grants.Add(1)
		m.immediate.Add(1)
		return nil
	}
	if !wait {
		s.mu.Unlock()
		m.denials.Add(1)
		return ErrDenied
	}
	w := &waiter{owner: owner, mode: mode, ready: make(chan struct{})}
	h.queue = append(h.queue, w)
	s.mu.Unlock()
	return m.wait(owner, res, w)
}

// wait parks the caller on w until granted or victimized. Detection is run
// immediately and then re-run periodically so that cycles closed by a
// concurrent blocker are eventually observed by someone in the cycle.
func (m *Manager) wait(owner Owner, res Resource, w *waiter) error {
	m.waits.Add(1)
	if m.waitObs == nil {
		return m.waitOn(owner, res, w)
	}
	t0 := time.Now()
	err := m.waitOn(owner, res, w)
	m.waitObs(res, time.Since(t0), err == ErrDeadlock)
	return err
}

func (m *Manager) waitOn(owner Owner, res Resource, w *waiter) error {
	timer := time.NewTimer(0) // first detection happens right away
	defer timer.Stop()
	for {
		select {
		case <-w.ready:
			if w.victimized {
				m.deadlocks.Add(1)
				return ErrDeadlock
			}
			m.grants.Add(1)
			return nil
		case <-timer.C:
		}
		if m.detect(owner) {
			// The requester closes the cycle: deny it rather than wait
			// forever — unless it was granted while we were detecting.
			s := m.shardFor(res)
			s.mu.Lock()
			select {
			case <-w.ready:
				s.mu.Unlock()
				if w.victimized {
					m.deadlocks.Add(1)
					return ErrDeadlock
				}
				m.grants.Add(1)
				return nil
			default:
			}
			h := s.heads[res]
			if h != nil {
				h.removeWaiter(w)
				m.promoteLocked(h)
				if h.empty() {
					delete(s.heads, res)
				}
			}
			s.mu.Unlock()
			m.deadlocks.Add(1)
			return ErrDeadlock
		}
		timer.Reset(deadlockRecheck)
	}
}

// deadlockRecheck is how often a blocked request re-runs deadlock detection.
const deadlockRecheck = 10 * time.Millisecond

func (h *head) removeWaiter(w *waiter) {
	for i, q := range h.queue {
		if q == w {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			return
		}
	}
}

func (h *head) empty() bool { return len(h.holders) == 0 && len(h.queue) == 0 }

// promoteLocked grants queued requests that are now compatible. Conversions
// are considered first, then the FIFO prefix of fresh requests. Caller holds
// the shard mutex.
func (h *head) promote() (granted []*waiter) {
	// Conversions first.
	for i := 0; i < len(h.queue); {
		w := h.queue[i]
		if !w.convert {
			i++
			continue
		}
		if h.compatibleWithHolders(w.owner, w.mode) {
			j := h.findHolder(w.owner)
			if j >= 0 {
				h.holders[j].mode = w.mode
				h.holders[j].count++
			} else {
				// Holder released everything while the conversion waited;
				// treat as a fresh grant.
				h.holders = append(h.holders, holder{owner: w.owner, mode: w.mode, count: 1})
			}
			w.granted = true
			granted = append(granted, w)
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			continue
		}
		i++
	}
	// Then the FIFO prefix of fresh requests.
	for len(h.queue) > 0 {
		w := h.queue[0]
		if w.convert || !h.compatibleWithHolders(w.owner, w.mode) {
			break
		}
		if j := h.findHolder(w.owner); j >= 0 {
			h.holders[j].mode = supremum(h.holders[j].mode, w.mode)
			h.holders[j].count++
		} else {
			h.holders = append(h.holders, holder{owner: w.owner, mode: w.mode, count: 1})
		}
		w.granted = true
		granted = append(granted, w)
		h.queue = h.queue[1:]
	}
	return granted
}

// promoteLocked runs promote and wakes the granted waiters.
func (m *Manager) promoteLocked(h *head) {
	for _, w := range h.promote() {
		close(w.ready)
	}
}

// Unlock releases one grant of owner's lock on res. Locks are re-entrant: the
// lock is fully released only when the grant count reaches zero.
func (m *Manager) Unlock(owner Owner, res Resource) error {
	s := m.shardFor(res)
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.heads[res]
	if h == nil {
		return fmt.Errorf("%w: owner %d, resource %q", ErrNotHeld, owner, res)
	}
	i := h.findHolder(owner)
	if i < 0 {
		return fmt.Errorf("%w: owner %d, resource %q", ErrNotHeld, owner, res)
	}
	h.holders[i].count--
	if h.holders[i].count > 0 {
		return nil
	}
	h.holders = append(h.holders[:i], h.holders[i+1:]...)
	m.promoteLocked(h)
	if h.empty() {
		delete(s.heads, res)
	}
	return nil
}

// ReleaseAll releases every lock owner holds and cancels its waiting
// requests. It is called at transaction commit or abort.
func (m *Manager) ReleaseAll(owner Owner) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for res, h := range s.heads {
			if j := h.findHolder(owner); j >= 0 {
				h.holders = append(h.holders[:j], h.holders[j+1:]...)
			}
			for k := 0; k < len(h.queue); {
				if h.queue[k].owner == owner {
					w := h.queue[k]
					h.queue = append(h.queue[:k], h.queue[k+1:]...)
					w.victimized = true
					close(w.ready)
					continue
				}
				k++
			}
			m.promoteLocked(h)
			if h.empty() {
				delete(s.heads, res)
			}
		}
		s.mu.Unlock()
	}
}

// HeldMode returns the mode owner currently holds on res, or 0 if none.
func (m *Manager) HeldMode(owner Owner, res Resource) Mode {
	s := m.shardFor(res)
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.heads[res]
	if h == nil {
		return 0
	}
	if i := h.findHolder(owner); i >= 0 {
		return h.holders[i].mode
	}
	return 0
}

// Snapshot returns current lock manager statistics.
func (m *Manager) Snapshot() Stats {
	return Stats{
		Grants:        m.grants.Load(),
		ImmediateOK:   m.immediate.Load(),
		NoWaitDenials: m.denials.Load(),
		Waits:         m.waits.Load(),
		Deadlocks:     m.deadlocks.Load(),
	}
}
