package lock

// Deadlock detection on the waits-for graph.
//
// A new cycle can only be closed by a newly added wait edge, so detection is
// run by the blocking requester itself: if the requester can reach itself in
// the waits-for graph, it is chosen as the victim and its request is denied
// with ErrDeadlock. Because two requests may block concurrently (each
// snapshotting the table before the other's edge is visible), waiters also
// re-run detection periodically from the wait loop; eventually one member of
// any cycle observes it.
//
// Edges are conservative: a waiter is considered to wait for every current
// holder of its resource and every waiter queued ahead of it. Conservatism
// can only cause a spurious victim (a safe transaction abort), never a
// missed conflict.

// waitsForGraph is adjacency: owner → owners it waits for.
type waitsForGraph map[Owner]map[Owner]struct{}

func (g waitsForGraph) addEdge(from, to Owner) {
	if from == to {
		return
	}
	m := g[from]
	if m == nil {
		m = make(map[Owner]struct{})
		g[from] = m
	}
	m[to] = struct{}{}
}

// buildGraph snapshots the waits-for graph. Shard mutexes are taken one at a
// time; the snapshot is therefore fuzzy, which is tolerable per the note
// above.
func (m *Manager) buildGraph() waitsForGraph {
	g := make(waitsForGraph)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, h := range s.heads {
			for qi, w := range h.queue {
				for _, hold := range h.holders {
					if w.convert && hold.owner == w.owner {
						continue
					}
					if !Compatible(hold.mode, w.mode) {
						g.addEdge(w.owner, hold.owner)
					}
				}
				for _, ahead := range h.queue[:qi] {
					g.addEdge(w.owner, ahead.owner)
				}
			}
		}
		s.mu.Unlock()
	}
	return g
}

// detect reports whether owner is part of a waits-for cycle.
func (m *Manager) detect(owner Owner) bool {
	g := m.buildGraph()
	if len(g[owner]) == 0 {
		return false
	}
	seen := make(map[Owner]struct{})
	var dfs func(o Owner) bool
	dfs = func(o Owner) bool {
		for next := range g[o] {
			if next == owner {
				return true
			}
			if _, ok := seen[next]; ok {
				continue
			}
			seen[next] = struct{}{}
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(owner)
}
