package bench

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

// tiny is the test scale: enough structure activity to exercise every code
// path without slowing the suite.
var tiny = Scale{Preload: 4000, Ops: 8000, Threads: []int{1, 4}}

func renderToTestLog(t *testing.T, tb *Table) {
	t.Helper()
	var buf bytes.Buffer
	tb.Render(&buf)
	t.Log(buf.String())
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestMixString(t *testing.T) {
	m := Mix{Insert: 50, Search: 30, Delete: 20}
	if got := m.String(); got != "i50/s30/d20" {
		t.Fatalf("Mix.String() = %q", got)
	}
	if Uniform.String() != "uniform" || Zipf.String() != "zipf" || Sequential.String() != "sequential" {
		t.Fatal("Dist.String broken")
	}
	if Hotspot.String() != "hotspot" || MovingHotspot.String() != "moving-hotspot" || SeqAppend.String() != "seq-append" {
		t.Fatal("skew Dist.String broken")
	}
	if Dist(9).String() != "dist?" {
		t.Fatal("unknown Dist.String broken")
	}
}

func TestGenDistributions(t *testing.T) {
	for _, d := range []Dist{Uniform, Zipf, Sequential} {
		g := NewGen(Spec{KeySpace: 100, Dist: d, Mix: Mix{Insert: 100}}, 1)
		seen := make(map[int]int)
		for i := 0; i < 1000; i++ {
			k := g.NextKey()
			if k < 0 || k >= 100 {
				t.Fatalf("%v: key %d out of range", d, k)
			}
			seen[k]++
		}
		if d == Sequential {
			if seen[0] != 10 {
				t.Fatalf("sequential wrap: seen[0] = %d, want 10", seen[0])
			}
		}
		if d == Zipf {
			// Skew: the hottest key should dominate.
			if seen[0] < 100 {
				t.Fatalf("zipf not skewed: seen[0] = %d", seen[0])
			}
		}
	}
}

func TestGenHotspot(t *testing.T) {
	g := NewGen(Spec{KeySpace: 1000, Dist: Hotspot, HotKeys: 10, HotFrac: 0.9, Mix: Mix{Insert: 100}}, 3)
	hot := 0
	for i := 0; i < 5000; i++ {
		k := g.NextKey()
		if k < 0 || k >= 1000 {
			t.Fatalf("hotspot key %d out of range", k)
		}
		if k < 10 {
			hot++
		}
	}
	// ~90% of draws must land in the 1% hot set (plus ~1% uniform spill).
	if hot < 4200 {
		t.Fatalf("hot-set mass %d/5000, want >= 4200", hot)
	}
}

func TestGenMovingHotspot(t *testing.T) {
	g := NewGen(Spec{
		KeySpace: 1000, Dist: MovingHotspot,
		HotKeys: 10, HotFrac: 1.0, MovePeriod: 100,
		Mix: Mix{Insert: 100},
	}, 4)
	// First window: draws 1..100 land in [0,10).
	for i := 0; i < 100; i++ {
		if k := g.NextKey(); k >= 10 {
			t.Fatalf("draw %d: key %d outside first window", i, k)
		}
	}
	// Second window: the hot set has drifted to [10,20).
	for i := 0; i < 100; i++ {
		if k := g.NextKey(); k < 10 || k >= 20 {
			t.Fatalf("draw %d: key %d outside drifted window", i, k)
		}
	}
}

func TestGenSeqAppend(t *testing.T) {
	g := NewGen(Spec{KeySpace: 100, Dist: SeqAppend, SeqOffset: 1, SeqStride: 4, Mix: Mix{Insert: 100}}, 5)
	prev := -1
	for i := 0; i < 500; i++ {
		k := g.NextKey()
		if k != 100+1+i*4 {
			t.Fatalf("draw %d: key %d, want %d", i, k, 100+1+i*4)
		}
		if k <= prev {
			t.Fatalf("draw %d: key %d not strictly increasing past %d", i, k, prev)
		}
		prev = k
	}
}

func TestGenMixProportions(t *testing.T) {
	g := NewGen(Spec{KeySpace: 10, Mix: Mix{Insert: 50, Search: 50}}, 2)
	counts := make(map[OpKind]int)
	for i := 0; i < 2000; i++ {
		counts[g.Next().Kind]++
	}
	if counts[OpDelete] != 0 || counts[OpScan] != 0 {
		t.Fatalf("unexpected ops: %v", counts)
	}
	if counts[OpInsert] < 800 || counts[OpSearch] < 800 {
		t.Fatalf("mix skewed: %v", counts)
	}
}

func TestRunAllComparators(t *testing.T) {
	spec := Spec{
		KeySpace: 3000, Preload: 2000, Ops: 4000,
		Mix: Mix{Insert: 30, Search: 40, Delete: 25, Scan: 5},
	}
	for _, cfg := range Comparators(1024, false) {
		res, err := Run(cfg, spec, 4)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Throughput <= 0 || res.Ops == 0 {
			t.Fatalf("%s: empty result %+v", cfg.Name, res)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Fatalf("%s: utilization %f", cfg.Name, res.Utilization)
		}
	}
}

func TestE1ThroughputShape(t *testing.T) {
	tb, err := E1Throughput(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	if len(tb.Rows) != len(tiny.Threads)*4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The paper's method must split and consolidate under this mix.
	row := tb.FindRow("delete-state")
	if row == nil {
		t.Fatal("no delete-state row")
	}
	if cellFloat(t, row[3]) == 0 {
		t.Fatal("no splits recorded")
	}
}

func TestE2UtilizationShape(t *testing.T) {
	tb, err := E2Utilization(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	ds := tb.FindRow("delete-state")
	dr := tb.FindRow("drain")
	if ds == nil || dr == nil {
		t.Fatal("missing rows")
	}
	// The headline claim: drain strands more pages and lower fill.
	if cellFloat(t, dr[1]) <= cellFloat(t, ds[1]) {
		t.Fatalf("drain live pages (%s) not worse than delete-state (%s)", dr[1], ds[1])
	}
	if cellFloat(t, dr[2]) >= cellFloat(t, ds[2]) {
		t.Fatalf("drain fill (%s) not worse than delete-state (%s)", dr[2], ds[2])
	}
}

func TestE3LoggingShape(t *testing.T) {
	tb, err := E3Logging(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	ds := tb.FindRow("delete-state")
	dr := tb.FindRow("drain")
	if ds == nil || dr == nil {
		t.Fatal("missing rows")
	}
	if cellFloat(t, ds[1]) == 0 || cellFloat(t, dr[1]) == 0 {
		t.Fatal("no consolidations in one of the configs")
	}
	// Drain writes ~2 SMO records per consolidation, delete-state ~1.
	if perDS, perDR := cellFloat(t, ds[5]), cellFloat(t, dr[5]); perDR <= perDS {
		t.Fatalf("drain records/consolidation %f not above delete-state %f", perDR, perDS)
	}
	if cellFloat(t, dr[4]) == 0 {
		t.Fatal("no drain marks logged")
	}
	if cellFloat(t, ds[4]) != 0 {
		t.Fatal("delete-state logged drain marks")
	}
}

func TestE4DeleteStateShape(t *testing.T) {
	tb, err := E4DeleteState(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	leaf := tb.FindRow("leaf node deletes")
	if leaf == nil || cellFloat(t, leaf[1]) == 0 {
		t.Fatal("no leaf deletes measured")
	}
	if frac := tb.FindRow("leaf fraction (%)"); frac != nil {
		if cellFloat(t, frac[1]) < 80 {
			t.Fatalf("leaf delete fraction %s%% — paper claims >99%%, expect at least dominance", frac[1])
		}
	}
	if succ := tb.FindRow("posting success (%)"); succ != nil {
		if cellFloat(t, succ[1]) < 50 {
			t.Fatalf("posting success only %s%%", succ[1])
		}
	}
}

func TestE5RelatchShape(t *testing.T) {
	tb, err := E5Relatch(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	if row := tb.FindRow("transactions committed"); row == nil || cellFloat(t, row[1]) == 0 {
		t.Fatal("no transactions committed")
	}
	// Hotspot contention must exercise the no-wait denial path.
	if row := tb.FindRow("no-wait denials"); row == nil || cellFloat(t, row[1]) == 0 {
		t.Fatal("no no-wait denials under hotspot contention")
	}
	if row := tb.FindRow("re-latches"); row == nil || cellFloat(t, row[1]) == 0 {
		t.Fatal("no re-latches")
	}
}

func TestE6LazyPostingShape(t *testing.T) {
	tb, err := E6LazyPosting(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	before := cellFloat(t, tb.Rows[0][3])
	after := cellFloat(t, tb.Rows[1][3])
	if before <= after {
		t.Fatalf("side traversals/search before repair (%f) not above after (%f)", before, after)
	}
	if after != 0 {
		t.Fatalf("side traversals remain after repair: %f", after)
	}
}

func TestE7RangeScanShape(t *testing.T) {
	tb, err := E7RangeScan(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if cellFloat(t, row[1]) <= 0 {
			t.Fatalf("%s: no scan throughput", row[0])
		}
	}
}

func TestE8AblationShape(t *testing.T) {
	tb, err := E8Ablation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	paper := tb.FindRow("split D_X/D_D (paper)")
	single := tb.FindRow("single global counter")
	if paper == nil || single == nil {
		t.Fatal("missing rows")
	}
	// Localizing data-node deletes (paper §4.1.2) keeps SMOs alive: the
	// single global counter must abort a larger fraction of deletes and
	// complete fewer consolidations.
	if cellFloat(t, single[5]) <= cellFloat(t, paper[5]) {
		t.Fatalf("single-counter delete abort rate (%s%%) not above split scheme (%s%%)",
			single[5], paper[5])
	}
	if cellFloat(t, single[3]) >= cellFloat(t, paper[3]) {
		t.Fatalf("single-counter consolidations (%s) not below split scheme (%s)",
			single[3], paper[3])
	}
}

func TestE9RecoveryShape(t *testing.T) {
	tb, err := E9Recovery(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	for _, metric := range []string{"well-formed after recovery", "committed == recovered"} {
		row := tb.FindRow(metric)
		if row == nil || !strings.HasPrefix(row[1], "PASS") {
			t.Fatalf("%s: %v", metric, row)
		}
	}
}

func TestE10OverheadShape(t *testing.T) {
	tb, err := E10Overhead(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	if len(tb.Rows) != 2*len(tiny.Threads) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE11SchedulerShape(t *testing.T) {
	tb, err := E11Scheduler(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	if len(tb.Rows) != 2*len(tiny.Threads) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), 2*len(tiny.Threads))
	}
	// First rows are the monolithic single-shard layout; later rows the
	// GOMAXPROCS-derived default.
	if tb.Cell(0, 0) != "1" {
		t.Fatalf("first row shards = %q, want 1", tb.Cell(0, 0))
	}
	for i, row := range tb.Rows {
		if cellFloat(t, row[2]) <= 0 {
			t.Fatalf("row %d: non-positive throughput", i)
		}
	}
}

func TestE12ReadPathShape(t *testing.T) {
	tb, err := E12ReadPath(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	// 2 mixes x 2 read paths x thread counts.
	if len(tb.Rows) != 4*len(tiny.Threads) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), 4*len(tiny.Threads))
	}
	for i, row := range tb.Rows {
		if cellFloat(t, row[3]) <= 0 {
			t.Fatalf("row %d: non-positive throughput", i)
		}
		attempts := cellFloat(t, row[5])
		switch row[0] {
		case "optimistic":
			if attempts == 0 {
				t.Fatalf("row %d: optimistic run recorded no attempts", i)
			}
		case "pessimistic":
			if attempts != 0 {
				t.Fatalf("row %d: pessimistic run recorded %v attempts", i, attempts)
			}
		}
	}
}

func TestE13CrashConsistencyShape(t *testing.T) {
	tb, err := E13CrashConsistency(tiny)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	// 2 fault modes x 1 seed at sub-Quick scale.
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if cellFloat(t, row[2]) == 0 {
			t.Fatalf("row %d: no crash points enumerated", i)
		}
		if cellFloat(t, row[3]) != 0 {
			t.Fatalf("row %d: crash-consistency violations: %v", i, row)
		}
	}
}

func TestE14SkewToleranceShape(t *testing.T) {
	small := Scale{Preload: 1000, Ops: 2000, Threads: []int{2}}
	tb, err := E14SkewTolerance(small)
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	// 5 distributions x 1 thread count x combining on/off.
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if cellFloat(t, row[3]) <= 0 {
			t.Fatalf("row %d: non-positive throughput", i)
		}
		if row[2] == "off" && cellFloat(t, row[4]) != 0 {
			t.Fatalf("row %d: combining-off run published %v ops", i, row[4])
		}
	}
}

func TestSkewReportGatesAndJSON(t *testing.T) {
	rep, err := RunSkew(SkewConfig{
		Dists:      []Dist{Uniform, Zipf, SeqAppend},
		Goroutines: []int{1, 2},
		KeySpace:   2000, Preload: 1000, Ops: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Results); got != 12 {
		t.Fatalf("cells = %d, want 12", got)
	}
	if g := rep.MaxGoroutines(); g != 2 {
		t.Fatalf("MaxGoroutines = %d", g)
	}
	if _, ok := rep.Lookup("seq-append", 2, true); !ok {
		t.Fatal("seq-append cell missing")
	}
	// The gates must at least evaluate at a trivially permissive bound.
	if desc, err := rep.GateSkewVsUniform(0.01); err != nil {
		t.Fatalf("skew gate at 0.01: %v (%s)", err, desc)
	}
	if desc, err := rep.GateCombining(0.01); err != nil {
		t.Fatalf("combining gate at 0.01: %v (%s)", err, desc)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSkewReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) || back.KeySpace != rep.KeySpace {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	if len(ExperimentIDs) != 16 {
		t.Fatalf("%d experiment IDs", len(ExperimentIDs))
	}
	for _, id := range ExperimentIDs {
		if Experiments[id] == nil {
			t.Fatalf("experiment %s unregistered", id)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tb := &Table{ID: "T", Title: "t", Header: []string{"a", "b"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("y", 2)
	tb.Note("hello %d", 7)
	if tb.Cell(0, 1) != "1.50" {
		t.Fatalf("Cell = %q", tb.Cell(0, 1))
	}
	if tb.Cell(5, 5) != "" {
		t.Fatal("out of range Cell not empty")
	}
	if tb.FindRow("y") == nil || tb.FindRow("z") != nil {
		t.Fatal("FindRow broken")
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "hello 7") || !strings.Contains(out, "1.50") {
		t.Fatalf("render output: %s", out)
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
