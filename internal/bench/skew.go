package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"blinktree/internal/core"
	"blinktree/internal/wal"
)

// SkewConfig parameterizes one skew scenario matrix sweep: every configured
// key distribution crossed with every goroutine count, each measured with
// the contention engine (hot-leaf combining + right-edge append fast path)
// on and off.
type SkewConfig struct {
	// Dists are the key distributions to sweep (default uniform, zipf,
	// hotspot, moving-hotspot, seq-append).
	Dists []Dist
	// Goroutines are the concurrency levels (default 1, 4, 8, 16).
	Goroutines []int
	// KeySpace, Preload and Ops size each cell (defaults 20_000 keys,
	// 10_000 preloaded, 20_000 measured operations).
	KeySpace int
	Preload  int
	Ops      int
	// ZipfS is the Zipf skew parameter (default 1.2).
	ZipfS float64
}

func (c SkewConfig) withDefaults() SkewConfig {
	if len(c.Dists) == 0 {
		c.Dists = []Dist{Uniform, Zipf, Hotspot, MovingHotspot, SeqAppend}
	}
	if len(c.Goroutines) == 0 {
		c.Goroutines = []int{1, 4, 8, 16}
	}
	if c.KeySpace == 0 {
		c.KeySpace = 20_000
	}
	if c.Preload == 0 {
		c.Preload = 10_000
	}
	if c.Ops == 0 {
		c.Ops = 20_000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	return c
}

// SkewResult is one (distribution, goroutines, combining) cell.
type SkewResult struct {
	// Dist is the distribution's flag name (uniform, zipf, hotspot,
	// moving-hotspot, seq-append).
	Dist string `json:"dist"`
	// Goroutines is the worker count.
	Goroutines int `json:"goroutines"`
	// Combining reports whether the contention engine (combining + append
	// fast path) was enabled for this cell.
	Combining bool `json:"combining"`
	// Ops is the measured operation count.
	Ops int `json:"ops"`
	// ElapsedNS is the measured wall time in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
	// OpsPerSec is the headline throughput.
	OpsPerSec float64 `json:"ops_per_sec"`
	// CombinePublishes, CombineDrained and CombineBatches snapshot the
	// combining counters (zero with the engine off).
	CombinePublishes uint64 `json:"combine_publishes"`
	CombineDrained   uint64 `json:"combine_drained"`
	CombineBatches   uint64 `json:"combine_batches"`
	// AppendFastHits counts inserts served by the right-edge fast path.
	AppendFastHits uint64 `json:"append_fast_hits"`
	// LatchWaits counts blocking latch acquisitions during the cell.
	LatchWaits uint64 `json:"latch_waits"`
}

// SkewReport is the persisted skew scenario matrix: the sweep configuration
// plus every measured cell, serialized to BENCH_skew.json at the repo root
// by the CI skew-gate job.
type SkewReport struct {
	// KeySpace, Preload and Ops restate the per-cell sizing.
	KeySpace int `json:"key_space"`
	Preload  int `json:"preload"`
	Ops      int `json:"ops"`
	// ZipfS restates the Zipf skew the zipf cells were measured under.
	ZipfS float64 `json:"zipf_s"`

	// Results holds every measured cell.
	Results []SkewResult `json:"results"`
}

// Lookup returns the cell for (dist, goroutines, combining), if present.
func (r *SkewReport) Lookup(dist string, goroutines int, combining bool) (SkewResult, bool) {
	for _, res := range r.Results {
		if res.Dist == dist && res.Goroutines == goroutines && res.Combining == combining {
			return res, true
		}
	}
	return SkewResult{}, false
}

// MaxGoroutines returns the largest goroutine count in the report.
func (r *SkewReport) MaxGoroutines() int {
	max := 0
	for _, res := range r.Results {
		if res.Goroutines > max {
			max = res.Goroutines
		}
	}
	return max
}

// GateSkewVsUniform checks the skew-tolerance invariant: at the highest
// goroutine count with the contention engine on, Zipf throughput must be at
// least frac times uniform throughput (skew must not collapse the tree).
// Returns a description of the comparison and an error when the gate fails.
func (r *SkewReport) GateSkewVsUniform(frac float64) (string, error) {
	g := r.MaxGoroutines()
	uni, ok1 := r.Lookup("uniform", g, true)
	zipf, ok2 := r.Lookup("zipf", g, true)
	if !ok1 || !ok2 {
		return "", fmt.Errorf("bench: report lacks uniform/zipf cells at %d goroutines", g)
	}
	desc := fmt.Sprintf("%d goroutines: zipf %.0f ops/s vs uniform %.0f ops/s (%.2fx, gate %.2fx)",
		g, zipf.OpsPerSec, uni.OpsPerSec, zipf.OpsPerSec/uni.OpsPerSec, frac)
	if zipf.OpsPerSec < uni.OpsPerSec*frac {
		return desc, fmt.Errorf("bench: skew-vs-uniform gate failed: %s", desc)
	}
	return desc, nil
}

// GateCombining checks that the contention engine pays for itself: at the
// highest goroutine count under Zipf skew, combining-on throughput must be
// at least ratio times combining-off (ratio 1.0 = "combining never loses
// under skew"). Returns a description and an error when the gate fails.
func (r *SkewReport) GateCombining(ratio float64) (string, error) {
	g := r.MaxGoroutines()
	on, ok1 := r.Lookup("zipf", g, true)
	off, ok2 := r.Lookup("zipf", g, false)
	if !ok1 || !ok2 {
		return "", fmt.Errorf("bench: report lacks zipf on/off cells at %d goroutines", g)
	}
	desc := fmt.Sprintf("zipf @ %d goroutines: combining on %.0f ops/s vs off %.0f ops/s (%.2fx, gate %.2fx)",
		g, on.OpsPerSec, off.OpsPerSec, on.OpsPerSec/off.OpsPerSec, ratio)
	if on.OpsPerSec < off.OpsPerSec*ratio {
		return desc, fmt.Errorf("bench: combining gate failed: %s", desc)
	}
	return desc, nil
}

// WriteJSON serializes the report (indented, trailing newline) for
// BENCH_skew.json.
func (r *SkewReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadSkewReport parses a report previously written by WriteJSON.
func ReadSkewReport(rd io.Reader) (*SkewReport, error) {
	var r SkewReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// skewSpec builds the workload spec for one distribution cell.
func (c SkewConfig) skewSpec(d Dist) Spec {
	return Spec{
		KeySpace: c.KeySpace,
		Preload:  c.Preload,
		Ops:      c.Ops,
		Mix:      Mix{Insert: 50, Search: 30, Delete: 20},
		Dist:     d,
		ZipfS:    c.ZipfS,
	}
}

// skewOptions builds the tree configuration for one cell. The matrix runs
// against a logged tree (MemDevice) so the combining layer's batched WAL
// appends are part of what is measured.
func skewOptions(combining bool) core.Options {
	mode := core.FeatureOff
	if combining {
		mode = core.FeatureOn
	}
	return core.Options{
		PageSize:       expPageSize,
		MinFill:        0.35,
		Workers:        2,
		LogDevice:      wal.NewMemDevice(),
		Combining:      mode,
		AppendFastPath: mode,
	}
}

// RunSkew measures the full skew scenario matrix: every configured
// distribution at every goroutine count, with the contention engine on and
// off.
func RunSkew(cfg SkewConfig) (*SkewReport, error) {
	cfg = cfg.withDefaults()
	rep := &SkewReport{
		KeySpace: cfg.KeySpace,
		Preload:  cfg.Preload,
		Ops:      cfg.Ops,
		ZipfS:    cfg.ZipfS,
	}
	for _, d := range cfg.Dists {
		for _, g := range cfg.Goroutines {
			for _, combining := range []bool{true, false} {
				res, err := runSkewCell(cfg, d, g, combining)
				if err != nil {
					return nil, fmt.Errorf("bench: skew %s/%d/combining=%v: %w", d, g, combining, err)
				}
				rep.Results = append(rep.Results, res)
			}
		}
	}
	return rep, nil
}

func runSkewCell(cfg SkewConfig, d Dist, goroutines int, combining bool) (SkewResult, error) {
	res, err := Run(Config{Name: d.String(), Opts: skewOptions(combining)}, cfg.skewSpec(d), goroutines)
	if err != nil {
		return SkewResult{}, err
	}
	return SkewResult{
		Dist:             d.String(),
		Goroutines:       goroutines,
		Combining:        combining,
		Ops:              res.Ops,
		ElapsedNS:        res.Elapsed.Nanoseconds(),
		OpsPerSec:        res.Throughput,
		CombinePublishes: res.Stats.CombinePublishes,
		CombineDrained:   res.Stats.CombineDrained,
		CombineBatches:   res.Stats.CombineBatches,
		AppendFastHits:   res.Stats.AppendFastHits,
		LatchWaits:       res.Latch.Waits,
	}, nil
}
