package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's output: a titled grid the harness renders and
// tests assert on.
type Table struct {
	ID     string // experiment id from DESIGN.md, e.g. "E2"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note records a free-text observation under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Cell returns the cell at (row, col) or "".
func (t *Table) Cell(row, col int) string {
	if row < len(t.Rows) && col < len(t.Rows[row]) {
		return t.Rows[row][col]
	}
	return ""
}

// FindRow returns the first row whose first cell equals name, or nil.
func (t *Table) FindRow(name string) []string {
	for _, r := range t.Rows {
		if len(r) > 0 && r[0] == name {
			return r
		}
	}
	return nil
}
