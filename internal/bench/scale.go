package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"blinktree/internal/core"
)

// ScaleConfig parameterizes the scale-tier sweep (experiment E15): bulk
// loads of Tiers keys at each Parallel fan-out, followed by point and range
// probes against the loaded tree.
type ScaleConfig struct {
	// Tiers are the key counts to load (default 10M and 20M).
	Tiers []int
	// Parallel are the bulk-load fan-outs to measure (default 1 and 8;
	// 1 is the serial baseline the speedup gate divides by).
	Parallel []int
	// Fill is the bulk-load fill factor (default 0.85).
	Fill float64
	// PageSize is the page size for every cell (default 4096 — the scale
	// tier models a realistic disk page, unlike the 1KB experiment pages).
	PageSize int
	// Probes is the number of point probes (Gets, then Puts) per cell
	// (default 2000). Range-scan probes are Probes/100 scans of 5000
	// records each.
	Probes int
	// Seed drives the probe key choice (default 1).
	Seed int64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Tiers) == 0 {
		c.Tiers = []int{10_000_000, 20_000_000}
	}
	if len(c.Parallel) == 0 {
		c.Parallel = []int{1, 8}
	}
	if c.Fill == 0 {
		c.Fill = 0.85
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.Probes == 0 {
		c.Probes = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ScaleResult is one (tier, parallel) cell of the sweep.
type ScaleResult struct {
	// Keys is the tier size; Parallel the bulk-load fan-out.
	Keys     int `json:"keys"`
	Parallel int `json:"parallel"`
	// LoadNS is the wall time of the bulk load; RowsPerSec the headline
	// load throughput.
	LoadNS     int64   `json:"load_ns"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// PagesBuilt and Chunks snapshot the loader's counters.
	PagesBuilt uint64 `json:"pages_built"`
	Chunks     uint64 `json:"chunks"`
	// Height and IndexFanout describe the built tree: root level and the
	// average child count of index nodes (compact separators push this up).
	Height      int     `json:"height"`
	IndexFanout float64 `json:"index_fanout"`
	// VerifyClean records whether the deep audit passed on the built tree.
	VerifyClean bool `json:"verify_clean"`
	// GetP50NS/GetP99NS and PutP50NS/PutP99NS are point-probe latencies
	// after the load; ScanNSPerKey is the amortized per-record cost of
	// range scans.
	GetP50NS     int64   `json:"get_p50_ns"`
	GetP99NS     int64   `json:"get_p99_ns"`
	PutP50NS     int64   `json:"put_p50_ns"`
	PutP99NS     int64   `json:"put_p99_ns"`
	ScanNSPerKey float64 `json:"scan_ns_per_key"`
}

// ScaleReport is the persisted scale-tier sweep, serialized to
// BENCH_scale.json at the repo root by the CI perf-trajectory job.
type ScaleReport struct {
	// PageSize and Fill restate the per-cell configuration.
	PageSize int     `json:"page_size"`
	Fill     float64 `json:"fill"`
	// Results holds every measured cell.
	Results []ScaleResult `json:"results"`
}

// Lookup returns the cell for (keys, parallel), if present.
func (r *ScaleReport) Lookup(keys, parallel int) (ScaleResult, bool) {
	for _, res := range r.Results {
		if res.Keys == keys && res.Parallel == parallel {
			return res, true
		}
	}
	return ScaleResult{}, false
}

// GateParallelSpeedup checks the headline acceptance ratio: at the smallest
// tier, the highest measured fan-out must load at least ratio times the
// serial rows/s, with both cells verify-clean. Returns a description of the
// comparison and an error when the gate fails.
func (r *ScaleReport) GateParallelSpeedup(ratio float64) (string, error) {
	tier, maxPar := 0, 0
	for _, res := range r.Results {
		if tier == 0 || res.Keys < tier {
			tier = res.Keys
		}
	}
	for _, res := range r.Results {
		if res.Keys == tier && res.Parallel > maxPar {
			maxPar = res.Parallel
		}
	}
	serial, ok1 := r.Lookup(tier, 1)
	par, ok2 := r.Lookup(tier, maxPar)
	if !ok1 || !ok2 || maxPar <= 1 {
		return "", fmt.Errorf("bench: report lacks serial and parallel cells at tier %d", tier)
	}
	if !serial.VerifyClean || !par.VerifyClean {
		return "", fmt.Errorf("bench: tier %d cells are not verify-clean", tier)
	}
	desc := fmt.Sprintf("%d keys: parallel@%d %.0f rows/s vs serial %.0f rows/s (%.2fx, gate %.2fx)",
		tier, maxPar, par.RowsPerSec, serial.RowsPerSec, par.RowsPerSec/serial.RowsPerSec, ratio)
	if par.RowsPerSec < serial.RowsPerSec*ratio {
		return desc, fmt.Errorf("bench: parallel-speedup gate failed: %s", desc)
	}
	return desc, nil
}

// WriteJSON serializes the report (indented, trailing newline) for
// BENCH_scale.json.
func (r *ScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadScaleReport parses a report previously written by WriteJSON.
func ReadScaleReport(rd io.Reader) (*ScaleReport, error) {
	var r ScaleReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// scaleKey renders the i-th key of a tier: fixed width keeps every level's
// separators the same length, so fanout differences measure the compact
// separator logic rather than key-length noise.
func scaleKey(i int) []byte { return []byte(fmt.Sprintf("k%012d", i)) }

func scaleVal(i int) []byte { return []byte(fmt.Sprintf("v%07d", i%10_000_000)) }

// scaleFeeder streams the tier without materializing it.
func scaleFeeder(n int) func() ([]byte, []byte, bool) {
	i := 0
	return func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		k, v := scaleKey(i), scaleVal(i)
		i++
		return k, v, true
	}
}

// RunScale measures every (tier, parallel) cell of the sweep.
func RunScale(cfg ScaleConfig) (*ScaleReport, error) {
	cfg = cfg.withDefaults()
	rep := &ScaleReport{PageSize: cfg.PageSize, Fill: cfg.Fill}
	for _, tier := range cfg.Tiers {
		for _, par := range cfg.Parallel {
			res, err := runScaleCell(cfg, tier, par)
			if err != nil {
				return nil, fmt.Errorf("bench: scale %d/%d: %w", tier, par, err)
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

func runScaleCell(cfg ScaleConfig, tier, parallel int) (ScaleResult, error) {
	tr, err := core.New(core.Options{
		PageSize:  cfg.PageSize,
		CacheSize: 1 << 15,
		Workers:   core.WorkersNone,
	})
	if err != nil {
		return ScaleResult{}, err
	}
	defer tr.Close()

	start := time.Now()
	if err := tr.BulkLoadParallel(scaleFeeder(tier), cfg.Fill, parallel); err != nil {
		return ScaleResult{}, err
	}
	loadNS := time.Since(start).Nanoseconds()

	res := ScaleResult{
		Keys: tier, Parallel: parallel,
		LoadNS:     loadNS,
		RowsPerSec: float64(tier) / (float64(loadNS) / 1e9),
		PagesBuilt: tr.Stats().BulkLoadPages,
		Chunks:     tr.Stats().BulkLoadChunks,
	}

	deep, err := tr.VerifyDeep()
	if err != nil {
		return res, fmt.Errorf("deep verify: %w", err)
	}
	res.VerifyClean = true
	res.Height = deep.Height
	var below, idx int
	for lvl := 1; lvl < len(deep.NodesPerLevel); lvl++ {
		below += deep.NodesPerLevel[lvl-1]
		idx += deep.NodesPerLevel[lvl]
	}
	if idx > 0 {
		res.IndexFanout = float64(below) / float64(idx)
	}

	if err := scaleProbes(tr, cfg, tier, &res); err != nil {
		return res, err
	}
	return res, nil
}

// scaleProbes measures post-load point and range latency: Gets on loaded
// keys, Puts of fresh keys landing between loaded ones, and range scans.
func scaleProbes(tr *core.Tree, cfg ScaleConfig, tier int, res *ScaleResult) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	lat := make([]int64, 0, cfg.Probes)
	for i := 0; i < cfg.Probes; i++ {
		k := scaleKey(rng.Intn(tier))
		t0 := time.Now()
		if _, err := tr.Get(k); err != nil {
			return fmt.Errorf("probe get %s: %w", k, err)
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	res.GetP50NS, res.GetP99NS = quantiles(lat)

	lat = lat[:0]
	for i := 0; i < cfg.Probes; i++ {
		// "x" suffix sorts the probe key just after a loaded key: a random
		// in-leaf insert, not a right-edge append.
		k := append(scaleKey(rng.Intn(tier)), 'x')
		t0 := time.Now()
		if err := tr.Put(k, []byte("probe")); err != nil {
			return fmt.Errorf("probe put %s: %w", k, err)
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	res.PutP50NS, res.PutP99NS = quantiles(lat)

	scans := cfg.Probes / 100
	if scans == 0 {
		scans = 1
	}
	const scanLen = 5000
	var scanned int
	t0 := time.Now()
	for i := 0; i < scans; i++ {
		start := scaleKey(rng.Intn(tier))
		n := 0
		err := tr.Scan(start, nil, func(k, v []byte) bool {
			n++
			return n < scanLen
		})
		if err != nil {
			return fmt.Errorf("probe scan from %s: %w", start, err)
		}
		scanned += n
	}
	if scanned > 0 {
		res.ScanNSPerKey = float64(time.Since(t0).Nanoseconds()) / float64(scanned)
	}
	return nil
}

// quantiles returns the p50 and p99 of lat (which it sorts in place).
func quantiles(lat []int64) (p50, p99 int64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], lat[len(lat)*99/100]
}
