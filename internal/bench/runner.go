package bench

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"blinktree/internal/core"
	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/wal"
)

// Config names one algorithm configuration under test.
type Config struct {
	Name string
	Opts core.Options
}

// Comparators returns the paper's method and the three comparator
// configurations, all with the given page size and a MemDevice log when
// logged is true.
func Comparators(pageSize int, logged bool) []Config {
	mk := func(name string, f func(*core.Options)) Config {
		o := core.Options{
			PageSize: pageSize, MinFill: 0.35, Workers: 2,
			Observability: &obs.Config{Metrics: true},
		}
		if logged {
			o.LogDevice = wal.NewMemDevice()
		}
		if f != nil {
			f(&o)
		}
		return Config{Name: name, Opts: o}
	}
	return []Config{
		mk("delete-state", nil),
		mk("drain", func(o *core.Options) { o.DeletePolicy = core.Drain }),
		mk("serial-smo", func(o *core.Options) { o.SerializeSMO = true }),
		mk("no-delete", func(o *core.Options) { o.NoDeleteSupport = true }),
	}
}

// Result is one measured run.
type Result struct {
	Name       string
	Goroutines int
	Ops        int
	Elapsed    time.Duration
	Throughput float64 // ops per second

	Stats core.Stats
	// Sched is the maintenance scheduler's observability snapshot (shard
	// high-water marks, inline assists, latency histogram).
	Sched core.SchedulerStats
	// Latch is this tree's latch activity (per-tree recorder; other trees
	// in the process do not pollute it).
	Latch latch.Stats
	// Obs is the tree's histogram snapshot; nil when the config disables
	// observability.
	Obs *obs.Snapshot
	// P50/P99/P999 are measured-phase operation latency quantiles merged
	// across all operation classes (preload excluded); zero when
	// observability is disabled.
	P50, P99, P999 time.Duration
	LivePages      int
	// Utilization is total leaf payload bytes / (leaf pages * page size).
	Utilization float64
	LogAppends  uint64
	LogForces   uint64
}

// Run preloads a tree with spec.Preload records, runs spec.Ops operations
// across the given goroutines, and measures.
func Run(cfg Config, spec Spec, goroutines int) (Result, error) {
	spec = spec.withDefaults()
	tr, err := core.New(cfg.Opts)
	if err != nil {
		return Result{}, err
	}
	defer tr.Close()
	if err := Preload(tr, spec); err != nil {
		return Result{}, err
	}
	// Snapshot the histograms after preload so the reported percentiles
	// cover only the measured phase.
	var pre *obs.Snapshot
	if reg := tr.Registry(); reg != nil {
		pre = reg.Snapshot()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	perG := spec.Ops / goroutines
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		// Each worker gets its own Gen (a Gen is not goroutine-safe) with a
		// seed derived from the spec's base, so runs stay reproducible while
		// workers draw independent streams. SeqAppend workers interleave by
		// stride so the merged key sequence is strictly increasing overall.
		wspec := spec
		if spec.Dist == SeqAppend {
			wspec.SeqOffset = spec.SeqOffset + g*spec.SeqStride
			wspec.SeqStride = spec.SeqStride * goroutines
		}
		wg.Add(1)
		go func(wspec Spec, seed int64) {
			defer wg.Done()
			errCh <- Worker(tr, wspec, seed, perG)
		}(wspec, spec.Seed+int64(g)+1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return Result{}, err
		}
	}
	tr.DrainTodo()

	res := Result{
		Name:       cfg.Name,
		Goroutines: goroutines,
		Ops:        perG * goroutines,
		Elapsed:    elapsed,
		Throughput: float64(perG*goroutines) / elapsed.Seconds(),
		Stats:      tr.Stats(),
		Sched:      tr.SchedulerStats(),
		Latch:      tr.LatchStats(),
		LivePages:  tr.StoreStats().LivePages,
	}
	if reg := tr.Registry(); reg != nil {
		res.Obs = reg.Snapshot()
		var merged obs.HistogramSnapshot
		for i := range res.Obs.Ops {
			h := res.Obs.Ops[i]
			if pre != nil {
				h = h.Delta(pre.Ops[i])
			}
			merged = merged.Merge(h)
		}
		res.P50 = merged.Quantile(0.50)
		res.P99 = merged.Quantile(0.99)
		res.P999 = merged.Quantile(0.999)
	}
	res.Utilization, err = LeafUtilization(tr, cfg.Opts.PageSize)
	if err != nil {
		return Result{}, err
	}
	if cfg.Opts.LogDevice != nil {
		res.LogAppends, res.LogForces = tr.LogStats()
	}
	return res, nil
}

// Preload inserts spec.Preload sequential records.
func Preload(tr *core.Tree, spec Spec) error {
	g := NewGen(spec, 0)
	for i := 0; i < spec.Preload; i++ {
		if err := tr.Put(Key(i%spec.KeySpace), g.Value()); err != nil {
			return fmt.Errorf("preload %d: %w", i, err)
		}
	}
	tr.DrainTodo()
	return nil
}

// Worker runs n operations from a fresh generator against tr.
func Worker(tr *core.Tree, spec Spec, seed int64, n int) error {
	g := NewGen(spec, seed)
	for i := 0; i < n; i++ {
		op := g.Next()
		k := Key(op.K)
		var err error
		switch op.Kind {
		case OpInsert:
			err = tr.Put(k, g.Value())
		case OpSearch:
			_, err = tr.Get(k)
			if errors.Is(err, core.ErrKeyNotFound) {
				err = nil
			}
		case OpDelete:
			err = tr.Delete(k)
			if errors.Is(err, core.ErrKeyNotFound) {
				err = nil
			}
		case OpScan:
			remaining := g.ScanLen()
			err = tr.Scan(k, nil, func(_, _ []byte) bool {
				remaining--
				return remaining > 0
			})
		case OpModify:
			err = tr.Delete(k)
			if errors.Is(err, core.ErrKeyNotFound) {
				err = nil
			}
			if err == nil {
				err = tr.Put(k, g.Value())
			}
		}
		if err != nil {
			return fmt.Errorf("op %d (%d): %w", i, op.Kind, err)
		}
	}
	return nil
}

// LeafUtilization computes average leaf fill: payload bytes over capacity.
func LeafUtilization(tr *core.Tree, pageSize int) (float64, error) {
	if pageSize == 0 {
		pageSize = 4096
	}
	ids, err := tr.LevelNodes(0)
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	total := 0
	for _, id := range ids {
		info, err := tr.NodeSnapshot(id)
		if err != nil {
			return 0, err
		}
		total += info.Size
	}
	return float64(total) / float64(len(ids)*pageSize), nil
}

// verifyTreeContents is a test helper: compares the tree against expected.
func verifyTreeContents(tr *core.Tree, want map[string][]byte) error {
	got, err := tr.Records()
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("record count %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			return fmt.Errorf("mismatch at %q", k)
		}
	}
	return nil
}
