package bench

import (
	"bytes"
	"testing"
	"time"

	"blinktree/internal/wal"
)

// TestCommitBenchSmoke runs a tiny commit-path sweep across all four modes
// and checks the report's shape: every cell present, commits counted,
// ack-after-force modes force at least once per batch, deferred modes
// acknowledge immediately.
func TestCommitBenchSmoke(t *testing.T) {
	cfg := CommitConfig{
		Modes:        []wal.DurabilityMode{wal.DurSync, wal.DurGroup, wal.DurPeriodic, wal.DurAsync},
		Writers:      []int{1, 4},
		OpsPerWriter: 25,
		SyncDelay:    20 * time.Microsecond,
	}
	rep, err := RunCommit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(cfg.Modes)*len(cfg.Writers) {
		t.Fatalf("results = %d cells, want %d", len(rep.Results), len(cfg.Modes)*len(cfg.Writers))
	}
	for _, mode := range cfg.Modes {
		for _, w := range cfg.Writers {
			res, ok := rep.Lookup(mode.String(), w)
			if !ok {
				t.Fatalf("missing cell %s/%d", mode, w)
			}
			if res.Commits != w*cfg.OpsPerWriter {
				t.Errorf("%s/%d: commits = %d, want %d", mode, w, res.Commits, w*cfg.OpsPerWriter)
			}
			if res.CommitsPerSec <= 0 {
				t.Errorf("%s/%d: non-positive throughput", mode, w)
			}
			if mode.AckAfterForce() && res.DeviceForces == 0 {
				t.Errorf("%s/%d: ack-after-force mode never forced the device", mode, w)
			}
			if !mode.AckAfterForce() && res.Group.ImmediateAcks != uint64(res.Commits) {
				t.Errorf("%s/%d: immediate acks = %d, want %d", mode, w, res.Group.ImmediateAcks, res.Commits)
			}
		}
	}
	if got, ok := rep.Lookup("group", 4); !ok || got.Group.Commits != uint64(4*cfg.OpsPerWriter) {
		t.Errorf("group/4: pipeline commits = %+v, ok=%v", got.Group, ok)
	}
}

// TestCommitReportRoundTrip pins the BENCH_commit.json wire format: a
// report survives WriteJSON/ReadCommitReport, and the gate reads the same
// numbers back.
func TestCommitReportRoundTrip(t *testing.T) {
	rep := &CommitReport{
		OpsPerWriter: 10,
		SyncDelayNS:  1000,
		Results: []CommitResult{
			{Mode: "sync", Writers: 16, Commits: 160, ElapsedNS: 2e6, CommitsPerSec: 100},
			{Mode: "group", Writers: 16, Commits: 160, ElapsedNS: 1e6, CommitsPerSec: 250},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCommitReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MaxWriters() != 16 {
		t.Fatalf("MaxWriters = %d", back.MaxWriters())
	}
	desc, err := back.GateGroupVsSync(1.0)
	if err != nil {
		t.Fatalf("gate should pass (2.5x): %v", err)
	}
	if desc == "" {
		t.Fatal("gate returned no description")
	}
	back.Results[1].CommitsPerSec = 50
	if _, err := back.GateGroupVsSync(1.0); err == nil {
		t.Fatal("gate should fail when group < sync")
	}
}
