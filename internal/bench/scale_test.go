package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestScaleSweepLarge is the CI scale job's deep tier: a million-key sweep
// with the parallel-speedup gate at break-even (parallel must never lose to
// serial; the 3x multi-core target is tracked by the committed
// BENCH_scale.json trajectory, not gated on shared runners). Gated behind
// BLINKTREE_SCALE because it loads millions of rows.
func TestScaleSweepLarge(t *testing.T) {
	if os.Getenv("BLINKTREE_SCALE") == "" {
		t.Skip("set BLINKTREE_SCALE=1 to run the large scale sweep")
	}
	rep, err := RunScale(ScaleConfig{
		Tiers:    []int{1_000_000, 2_000_000},
		Parallel: []int{1, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		t.Logf("%d keys @ parallel=%d: %.0f rows/s, %d pages, height %d, fanout %.1f",
			res.Keys, res.Parallel, res.RowsPerSec, res.PagesBuilt, res.Height, res.IndexFanout)
		if !res.VerifyClean {
			t.Errorf("%d/%d: not verify-clean", res.Keys, res.Parallel)
		}
	}
	desc, err := rep.GateParallelSpeedup(1.0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("speedup gate: %s", desc)
}

func TestRunScaleSmall(t *testing.T) {
	rep, err := RunScale(ScaleConfig{
		Tiers:    []int{5000, 10000},
		Parallel: []int{1, 4},
		Probes:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("cells = %d, want 4", len(rep.Results))
	}
	for _, res := range rep.Results {
		if !res.VerifyClean {
			t.Errorf("%d/%d: not verify-clean", res.Keys, res.Parallel)
		}
		if res.RowsPerSec <= 0 || res.PagesBuilt == 0 || res.Chunks == 0 {
			t.Errorf("%d/%d: empty load counters: %+v", res.Keys, res.Parallel, res)
		}
		if res.Height < 1 || res.IndexFanout <= 1 {
			t.Errorf("%d/%d: degenerate shape: height %d fanout %.1f",
				res.Keys, res.Parallel, res.Height, res.IndexFanout)
		}
		if res.GetP50NS <= 0 || res.PutP50NS <= 0 || res.ScanNSPerKey <= 0 {
			t.Errorf("%d/%d: missing probe latencies: %+v", res.Keys, res.Parallel, res)
		}
	}
	// Serial and parallel cells of one tier must describe the same tree.
	s, _ := rep.Lookup(10000, 1)
	p, _ := rep.Lookup(10000, 4)
	if s.Height != p.Height || s.PagesBuilt != p.PagesBuilt {
		t.Errorf("structural identity broken: serial %d/%d vs parallel %d/%d pages/height",
			s.PagesBuilt, s.Height, p.PagesBuilt, p.Height)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaleReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) || back.PageSize != rep.PageSize {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}

	// A trivially satisfiable ratio passes; an absurd one fails with the
	// measured numbers in the message.
	if desc, err := back.GateParallelSpeedup(0.01); err != nil {
		t.Fatalf("permissive gate failed: %v (%s)", err, desc)
	}
	if _, err := back.GateParallelSpeedup(1e9); err == nil {
		t.Fatal("absurd gate passed")
	} else if !strings.Contains(err.Error(), "rows/s") {
		t.Fatalf("gate error lacks measurements: %v", err)
	}
}

func TestE15ScaleTierShape(t *testing.T) {
	tb, err := E15ScaleTier(Scale{Preload: 200})
	if err != nil {
		t.Fatal(err)
	}
	renderToTestLog(t, tb)
	// 2 tiers x 2 fan-outs.
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if cellFloat(t, row[2]) <= 0 {
			t.Fatalf("row %d: non-positive rows/s", i)
		}
		if row[len(row)-1] != "true" {
			t.Fatalf("row %d: not verify-clean: %v", i, row)
		}
	}
}
