// Package bench generates workloads and runs the experiments that
// regenerate the paper's figures and quantitative claims (the experiment
// index lives in DESIGN.md; results are recorded in EXPERIMENTS.md).
package bench

import (
	"fmt"
	"math/rand"
)

// OpKind is one workload operation type.
type OpKind uint8

// Workload operation kinds.
const (
	// OpInsert inserts or overwrites a record.
	OpInsert OpKind = iota
	// OpSearch reads a record.
	OpSearch
	// OpDelete removes a record.
	OpDelete
	// OpScan reads a short key range.
	OpScan
	// OpModify is a delete immediately followed by an insert of a related
	// key (an indexed-field update, §1.3 / [5]).
	OpModify
)

// Mix is an operation mix in percent; fields must sum to 100.
type Mix struct {
	Insert, Search, Delete, Scan, Modify int
}

func (m Mix) total() int { return m.Insert + m.Search + m.Delete + m.Scan + m.Modify }

// String renders e.g. "i50/s30/d20".
func (m Mix) String() string {
	s := ""
	add := func(tag string, v int) {
		if v > 0 {
			if s != "" {
				s += "/"
			}
			s += fmt.Sprintf("%s%d", tag, v)
		}
	}
	add("i", m.Insert)
	add("s", m.Search)
	add("d", m.Delete)
	add("r", m.Scan)
	add("m", m.Modify)
	return s
}

// Dist selects the key popularity distribution.
type Dist uint8

// Key distributions.
const (
	// Uniform draws keys uniformly from the key space.
	Uniform Dist = iota
	// Zipf draws keys with a skewed (Zipfian) distribution; hot keys
	// model the paper's "skewed distribution" delete concern (§1.3).
	Zipf
	// Sequential walks the key space in order (purge patterns).
	Sequential
	// Hotspot sends HotFrac of the draws to a fixed hot set of HotKeys
	// contiguous keys at the bottom of the key space, the rest uniformly
	// over the whole space — a sharper contention shape than Zipf.
	Hotspot
	// MovingHotspot is Hotspot with a drifting hot set: every MovePeriod
	// draws the hot window shifts right by its own width (wrapping), so
	// cached right answers go stale (hot leaves cool, new ones heat up).
	MovingHotspot
	// SeqAppend emits strictly increasing key indexes past the preloaded
	// key space (SeqOffset + n*SeqStride), modelling a log-tail /
	// time-ordered-ID append load that always lands on the rightmost leaf.
	SeqAppend
)

func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Sequential:
		return "sequential"
	case Hotspot:
		return "hotspot"
	case MovingHotspot:
		return "moving-hotspot"
	case SeqAppend:
		return "seq-append"
	default:
		return "dist?"
	}
}

// ParseDist parses a distribution name as rendered by Dist.String
// (uniform, zipf, sequential, hotspot, moving-hotspot, seq-append).
func ParseDist(s string) (Dist, error) {
	for d := Uniform; d <= SeqAppend; d++ {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown distribution %q (uniform, zipf, sequential, hotspot, moving-hotspot, seq-append)", s)
}

// Spec describes a workload.
type Spec struct {
	// KeySpace is the number of distinct keys.
	KeySpace int
	// Preload is the number of records inserted before measurement.
	Preload int
	// Ops is the number of measured operations (across all goroutines).
	Ops int
	// Mix is the operation mix.
	Mix Mix
	// Dist is the key distribution; ZipfS is the skew (>1; default 1.2).
	Dist  Dist
	ZipfS float64
	// HotFrac is the fraction of Hotspot/MovingHotspot draws that hit the
	// hot set (default 0.9); HotKeys is the hot-set size in keys (default
	// KeySpace/100, minimum 1).
	HotFrac float64
	HotKeys int
	// MovePeriod is the number of draws between MovingHotspot window shifts
	// (default 1000).
	MovePeriod int
	// SeqStride and SeqOffset shape SeqAppend: the n'th draw is key index
	// KeySpace + SeqOffset + n*SeqStride (stride default 1). The runner
	// gives each worker offset=workerID, stride=goroutines so concurrent
	// workers interleave distinct, globally increasing keys.
	SeqStride int
	SeqOffset int
	// Seed is the base RNG seed; worker g derives its own as Seed+g+1, so
	// runs are reproducible yet workers draw independent streams.
	Seed int64
	// ValueSize is the record value length (default 24).
	ValueSize int
	// ScanLen is the number of records per OpScan (default 20).
	ScanLen int
}

func (s Spec) withDefaults() Spec {
	if s.KeySpace == 0 {
		s.KeySpace = 100_000
	}
	if s.ValueSize == 0 {
		s.ValueSize = 24
	}
	if s.ScanLen == 0 {
		s.ScanLen = 20
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.2
	}
	if s.HotFrac == 0 {
		s.HotFrac = 0.9
	}
	if s.HotKeys == 0 {
		s.HotKeys = s.KeySpace / 100
		if s.HotKeys < 1 {
			s.HotKeys = 1
		}
	}
	if s.MovePeriod == 0 {
		s.MovePeriod = 1000
	}
	if s.SeqStride == 0 {
		s.SeqStride = 1
	}
	return s
}

// Key renders the i'th key of the key space. Keys are fixed-width so
// ordering matches integer order.
func Key(i int) []byte { return []byte(fmt.Sprintf("user%010d", i)) }

// Op is one generated operation.
type Op struct {
	Kind OpKind
	K    int // key index
}

// Gen is a per-goroutine deterministic operation generator.
//
// A Gen is NOT safe for concurrent use: NextKey and Next mutate the
// generator's RNG and sequence state without synchronization. Give each
// worker goroutine its own Gen with a derived seed (the runner uses
// Spec.Seed + workerID + 1); sharing one Gen across goroutines both races
// and destroys reproducibility.
type Gen struct {
	spec  Spec
	rng   *rand.Rand
	zipf  *rand.Zipf
	seq   int
	draws int
	val   []byte
}

// NewGen returns a generator for spec with the given seed.
func NewGen(spec Spec, seed int64) *Gen {
	spec = spec.withDefaults()
	g := &Gen{
		spec: spec,
		rng:  rand.New(rand.NewSource(seed)),
		val:  make([]byte, spec.ValueSize),
	}
	if spec.Dist == Zipf {
		g.zipf = rand.NewZipf(g.rng, spec.ZipfS, 1, uint64(spec.KeySpace-1))
	}
	for i := range g.val {
		g.val[i] = byte('a' + i%26)
	}
	return g
}

// NextKey draws a key index from the distribution.
func (g *Gen) NextKey() int {
	g.draws++
	switch g.spec.Dist {
	case Zipf:
		return int(g.zipf.Uint64())
	case Sequential:
		k := g.seq % g.spec.KeySpace
		g.seq++
		return k
	case Hotspot:
		if g.rng.Float64() < g.spec.HotFrac {
			return g.rng.Intn(g.spec.HotKeys)
		}
		return g.rng.Intn(g.spec.KeySpace)
	case MovingHotspot:
		if g.rng.Float64() < g.spec.HotFrac {
			window := (g.draws - 1) / g.spec.MovePeriod
			start := (window * g.spec.HotKeys) % g.spec.KeySpace
			return (start + g.rng.Intn(g.spec.HotKeys)) % g.spec.KeySpace
		}
		return g.rng.Intn(g.spec.KeySpace)
	case SeqAppend:
		k := g.spec.KeySpace + g.spec.SeqOffset + g.seq*g.spec.SeqStride
		g.seq++
		return k
	default:
		return g.rng.Intn(g.spec.KeySpace)
	}
}

// Next draws the next operation.
func (g *Gen) Next() Op {
	m := g.spec.Mix
	r := g.rng.Intn(m.total())
	k := g.NextKey()
	switch {
	case r < m.Insert:
		return Op{Kind: OpInsert, K: k}
	case r < m.Insert+m.Search:
		return Op{Kind: OpSearch, K: k}
	case r < m.Insert+m.Search+m.Delete:
		return Op{Kind: OpDelete, K: k}
	case r < m.Insert+m.Search+m.Delete+m.Scan:
		return Op{Kind: OpScan, K: k}
	default:
		return Op{Kind: OpModify, K: k}
	}
}

// Value returns the (shared, read-only) value payload.
func (g *Gen) Value() []byte { return g.val }

// ScanLen returns the configured range-scan length.
func (g *Gen) ScanLen() int { return g.spec.ScanLen }
