package bench

import (
	"sync/atomic"
	"testing"

	"blinktree/internal/core"
)

// BenchmarkReadPath measures Get throughput on a preloaded tree with the
// optimistic versioned-latch read path against the pessimistic latch-coupled
// traversal. Run with -cpu to vary parallelism; the CI read-path smoke job
// compares the two sub-benchmarks and fails if optimistic is slower on this
// read-only workload.
func BenchmarkReadPath(b *testing.B) {
	const preload = 50_000
	for _, bc := range []struct {
		name string
		rp   core.ReadPath
	}{
		{"optimistic", core.ReadPathOptimistic},
		{"pessimistic", core.ReadPathPessimistic},
	} {
		b.Run(bc.name, func(b *testing.B) {
			tr, err := core.New(core.Options{
				PageSize: expPageSize, MinFill: 0.35, Workers: 2,
				OptimisticReads: bc.rp,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			if err := Preload(tr, Spec{KeySpace: preload, Preload: preload}); err != nil {
				b.Fatal(err)
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := Key(int(next.Add(1) % preload))
					if _, err := tr.Get(k); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkReadPathContended measures Get throughput while one background
// writer churns inserts and deletes, forcing splits and consolidations that
// invalidate optimistic validations mid-descent.
func BenchmarkReadPathContended(b *testing.B) {
	const preload = 50_000
	for _, bc := range []struct {
		name string
		rp   core.ReadPath
	}{
		{"optimistic", core.ReadPathOptimistic},
		{"pessimistic", core.ReadPathPessimistic},
	} {
		b.Run(bc.name, func(b *testing.B) {
			tr, err := core.New(core.Options{
				PageSize: expPageSize, MinFill: 0.35, Workers: 2,
				OptimisticReads: bc.rp,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			if err := Preload(tr, Spec{KeySpace: preload, Preload: preload}); err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				g := NewGen(Spec{KeySpace: preload, Mix: Mix{Insert: 100}}, 99)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := Key(g.NextKey())
					if i%2 == 0 {
						_ = tr.Put(k, g.Value())
					} else {
						_ = tr.Delete(k)
					}
				}
			}()
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := Key(int(next.Add(1) % preload))
					if _, err := tr.Get(k); err != nil && err != core.ErrKeyNotFound {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}
