package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"blinktree/internal/core"
	"blinktree/internal/wal"
)

// slowDevice wraps a MemDevice with a fixed Sync latency, modeling the
// device force a real fsync pays. The commit-path benchmark uses it instead
// of a file so the sync-versus-group comparison measures the pipeline's
// coalescing, not the host filesystem's mood — which is what lets CI gate
// on the result.
type slowDevice struct {
	*wal.MemDevice
	delay time.Duration
}

func (d *slowDevice) Sync() error {
	time.Sleep(d.delay)
	return d.MemDevice.Sync()
}

// CommitConfig parameterizes one commit-path sweep.
type CommitConfig struct {
	// Modes are the durability modes to measure (default sync, group).
	Modes []wal.DurabilityMode
	// Writers are the concurrent committer counts (default 1, 4, 16).
	Writers []int
	// OpsPerWriter is the number of single-put transactions each writer
	// commits (default 200).
	OpsPerWriter int
	// SyncDelay is the simulated device force latency (default 100µs).
	SyncDelay time.Duration
}

func (c CommitConfig) withDefaults() CommitConfig {
	if len(c.Modes) == 0 {
		c.Modes = []wal.DurabilityMode{wal.DurSync, wal.DurGroup}
	}
	if len(c.Writers) == 0 {
		c.Writers = []int{1, 4, 16}
	}
	if c.OpsPerWriter == 0 {
		c.OpsPerWriter = 200
	}
	if c.SyncDelay == 0 {
		c.SyncDelay = 100 * time.Microsecond
	}
	return c
}

// CommitResult is one (mode, writers) cell of the sweep.
type CommitResult struct {
	// Mode is the durability mode's flag name (sync, group, ...).
	Mode string `json:"mode"`
	// Writers is the concurrent committer count.
	Writers int `json:"writers"`
	// Commits is the total transactions committed.
	Commits int `json:"commits"`
	// ElapsedNS is the measured wall time in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
	// CommitsPerSec is the headline throughput.
	CommitsPerSec float64 `json:"commits_per_sec"`
	// DeviceForces is how many times the simulated device was forced; the
	// coalescing win is Commits/DeviceForces.
	DeviceForces uint64 `json:"device_forces"`
	// Group is the pipeline's counter snapshot (zero outside group mode).
	Group wal.GroupStats `json:"group"`
}

// CommitReport is the persisted perf trajectory for the commit path: the
// sweep configuration plus every measured cell, serialized to
// BENCH_commit.json at the repo root by the CI perf-trajectory job.
type CommitReport struct {
	// OpsPerWriter and SyncDelayNS restate the configuration the numbers
	// were measured under.
	OpsPerWriter int   `json:"ops_per_writer"`
	SyncDelayNS  int64 `json:"sync_delay_ns"`

	Results []CommitResult `json:"results"`
}

// Lookup returns the cell for (mode, writers), if present.
func (r *CommitReport) Lookup(mode string, writers int) (CommitResult, bool) {
	for _, res := range r.Results {
		if res.Mode == mode && res.Writers == writers {
			return res, true
		}
	}
	return CommitResult{}, false
}

// MaxWriters returns the largest writer count in the report.
func (r *CommitReport) MaxWriters() int {
	max := 0
	for _, res := range r.Results {
		if res.Writers > max {
			max = res.Writers
		}
	}
	return max
}

// GateGroupVsSync checks the perf-trajectory invariant: at the highest
// writer count, group-commit throughput must be at least ratio times sync
// throughput (ratio 1.0 = "group never loses to sync under concurrency").
// Returns a description of the comparison and an error when the gate fails.
func (r *CommitReport) GateGroupVsSync(ratio float64) (string, error) {
	w := r.MaxWriters()
	sync, ok1 := r.Lookup("sync", w)
	group, ok2 := r.Lookup("group", w)
	if !ok1 || !ok2 {
		return "", fmt.Errorf("bench: report lacks sync/group cells at %d writers", w)
	}
	desc := fmt.Sprintf("%d writers: group %.0f commits/s vs sync %.0f commits/s (%.2fx, gate %.2fx)",
		w, group.CommitsPerSec, sync.CommitsPerSec, group.CommitsPerSec/sync.CommitsPerSec, ratio)
	if group.CommitsPerSec < sync.CommitsPerSec*ratio {
		return desc, fmt.Errorf("bench: group-commit gate failed: %s", desc)
	}
	return desc, nil
}

// WriteJSON serializes the report (indented, trailing newline) for
// BENCH_commit.json.
func (r *CommitReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadCommitReport parses a report previously written by WriteJSON.
func ReadCommitReport(rd io.Reader) (*CommitReport, error) {
	var r CommitReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// RunCommit measures the commit path across the configured modes and writer
// counts. Each writer commits OpsPerWriter single-put transactions against
// its own key range (no lock conflicts: the benchmark isolates the
// durability pipeline, not the lock manager).
func RunCommit(cfg CommitConfig) (*CommitReport, error) {
	cfg = cfg.withDefaults()
	rep := &CommitReport{
		OpsPerWriter: cfg.OpsPerWriter,
		SyncDelayNS:  cfg.SyncDelay.Nanoseconds(),
	}
	for _, mode := range cfg.Modes {
		for _, writers := range cfg.Writers {
			res, err := runCommitCell(cfg, mode, writers)
			if err != nil {
				return nil, fmt.Errorf("bench: commit %s/%d writers: %w", mode, writers, err)
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

func runCommitCell(cfg CommitConfig, mode wal.DurabilityMode, writers int) (CommitResult, error) {
	dev := &slowDevice{MemDevice: wal.NewMemDevice(), delay: cfg.SyncDelay}
	tr, err := core.New(core.Options{
		PageSize:   1024,
		Workers:    core.WorkersNone,
		LogDevice:  dev,
		Durability: mode,
	})
	if err != nil {
		return CommitResult{}, err
	}
	total := writers * cfg.OpsPerWriter

	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerWriter; i++ {
				x, err := tr.Begin()
				if err != nil {
					errCh <- err
					return
				}
				key := fmt.Sprintf("w%03d-k%06d", w, i)
				if err := x.Put([]byte(key), []byte("v")); err != nil {
					_ = x.Abort()
					errCh <- err
					return
				}
				if err := x.Commit(); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			tr.Abandon()
			return CommitResult{}, err
		}
	}
	group := tr.Snapshot().WALGroup
	if err := tr.Close(); err != nil {
		return CommitResult{}, err
	}
	return CommitResult{
		Mode:          mode.String(),
		Writers:       writers,
		Commits:       total,
		ElapsedNS:     elapsed.Nanoseconds(),
		CommitsPerSec: float64(total) / elapsed.Seconds(),
		DeviceForces:  dev.Syncs(),
		Group:         group,
	}, nil
}
