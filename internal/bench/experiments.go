package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"blinktree/internal/core"
	"blinktree/internal/sim"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// Scale sizes an experiment run.
type Scale struct {
	Preload int
	Ops     int
	Threads []int
}

// Quick is the CI/test scale; Full is the reporting scale used by
// cmd/blinkbench and EXPERIMENTS.md.
var (
	Quick = Scale{Preload: 10_000, Ops: 20_000, Threads: []int{1, 4}}
	Full  = Scale{Preload: 200_000, Ops: 400_000, Threads: []int{1, 2, 4, 8, 16, 32}}
)

// pageSize used by all experiments: small enough that structure
// modifications are frequent at laptop scale.
const expPageSize = 1024

// E1Throughput measures mixed-workload scalability of the paper's method
// against the three comparators (§1.2's concurrency argument).
func E1Throughput(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "mixed workload throughput (ops/s) vs goroutines",
		Header: []string{"config", "threads", "ops/s", "splits", "consolidations", "latch waits", "p50", "p99", "p999"},
	}
	spec := Spec{
		KeySpace: scale.Preload * 2,
		Preload:  scale.Preload,
		Ops:      scale.Ops,
		Mix:      Mix{Insert: 30, Search: 40, Delete: 25, Scan: 5},
	}
	for _, threads := range scale.Threads {
		for _, cfg := range Comparators(expPageSize, false) {
			res, err := Run(cfg, spec, threads)
			if err != nil {
				return nil, fmt.Errorf("E1 %s/%d: %w", cfg.Name, threads, err)
			}
			t.AddRow(cfg.Name, threads, int(res.Throughput),
				res.Stats.Splits, res.Stats.LeafConsolidated+res.Stats.IndexConsolidated,
				res.Latch.Waits, res.P50, res.P99, res.P999)
		}
	}
	if runtime.NumCPU() == 1 {
		t.Note("single-CPU host: concurrency differences show up in blocking metrics, not wall clock")
	}
	return t, nil
}

// E2Utilization reproduces the §1.3 claim: the drain approach leaves many
// under-utilized pages under skewed deletes, compromising utilization.
func E2Utilization(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "space utilization after skewed purge (delete-state vs drain)",
		Header: []string{"config", "live pages", "avg leaf fill", "consolidations", "husks pending"},
	}
	// A scattered purge — §1.3's "dropping a set of products from an
	// inventory database": most records go, but survivors are spread over
	// every leaf, so no page ever empties. This is the drain approach's
	// worst case; the delete-state method consolidates freely.
	spec := Spec{
		KeySpace: scale.Preload,
		Preload:  scale.Preload,
	}
	for _, cfg := range Comparators(expPageSize, false) {
		if cfg.Name == "no-delete" || cfg.Name == "serial-smo" {
			continue
		}
		// Deterministic maintenance: the experiment drives the to-do queue
		// explicitly so the measured quiescent state is reproducible.
		cfg.Opts.Workers = core.WorkersNone
		tr, err := core.New(cfg.Opts)
		if err != nil {
			return nil, err
		}
		if err := Preload(tr, spec.withDefaults()); err != nil {
			tr.Close()
			return nil, err
		}
		for i := 0; i < spec.Preload; i++ {
			if i%10 != 0 {
				if err := tr.Delete(Key(i)); err != nil {
					tr.Close()
					return nil, err
				}
			}
		}
		// Re-discover under-utilization with full read passes (every leaf
		// must be traversed for its occupancy to be noticed) until the
		// consolidation cascade reaches a fixpoint.
		prev := -1
		for r := 0; r < 30; r++ {
			tr.DrainTodo()
			if live := tr.StoreStats().LivePages; live == prev {
				break
			} else {
				prev = live
			}
			for i := 0; i < spec.KeySpace; i += 7 {
				tr.Has(Key(i))
			}
		}
		tr.DrainTodo()
		util, err := LeafUtilization(tr, expPageSize)
		if err != nil {
			tr.Close()
			return nil, err
		}
		s := tr.Stats()
		t.AddRow(cfg.Name, tr.StoreStats().LivePages, util,
			s.LeafConsolidated+s.IndexConsolidated, tr.DrainPending())
		tr.Close()
	}
	t.Note("drain consolidates only empty pages; skewed survivors keep pages alive")
	return t, nil
}

// E3Logging reproduces §1.3 point 2: the drain approach logs an extra
// update per deleted page.
func E3Logging(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "log records per consolidated node (delete-state vs drain)",
		Header: []string{"config", "consolidations", "log appends", "SMO records", "drain marks", "records/consolidation"},
	}
	for _, cfg := range Comparators(expPageSize, true) {
		if cfg.Name == "no-delete" || cfg.Name == "serial-smo" {
			continue
		}
		tr, err := core.New(cfg.Opts)
		if err != nil {
			return nil, err
		}
		n := scale.Preload
		for i := 0; i < n; i++ {
			if err := tr.Put(Key(i), make([]byte, 24)); err != nil {
				tr.Close()
				return nil, err
			}
		}
		tr.DrainTodo()
		appendsBefore, _ := tr.LogStats()
		// Sequential purge empties whole leaves (drain's best case).
		for i := 0; i < n; i++ {
			tr.Delete(Key(i))
		}
		for r := 0; r < 6; r++ {
			tr.DrainTodo()
			tr.Has(Key(0))
		}
		tr.DrainTodo()
		appendsAfter, _ := tr.LogStats()
		s := tr.Stats()
		cons := s.LeafConsolidated + s.IndexConsolidated
		if err := tr.FlushLog(); err != nil {
			tr.Close()
			return nil, err
		}
		marks, smoRecs := countSMORecords(cfg.Opts.LogDevice.(*wal.MemDevice))
		perCons := 0.0
		if cons > 0 {
			perCons = float64(smoRecs) / float64(cons)
		}
		t.AddRow(cfg.Name, cons, appendsAfter-appendsBefore, smoRecs, marks, perCons)
		tr.Close()
	}
	return t, nil
}

func countSMORecords(dev *wal.MemDevice) (drainMarks, consolidationSMOs int) {
	log, err := wal.NewLog(dev)
	if err != nil {
		return 0, 0
	}
	recs, err := log.DurableRecords()
	if err != nil {
		return 0, 0
	}
	for _, r := range recs {
		if r.Type != wal.TSMO {
			continue
		}
		switch r.SMO {
		case wal.SMODrainMark:
			drainMarks++
			consolidationSMOs++
		case wal.SMOConsolidate:
			consolidationSMOs++
		}
	}
	return drainMarks, consolidationSMOs
}

// E4DeleteState profiles delete-state traffic under a delete-heavy
// workload: the §4.1.1 claim that index-node deletes (hence D_X changes)
// are a small fraction, so parent accesses almost always succeed.
func E4DeleteState(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "delete-state profile under delete-heavy load",
		Header: []string{"metric", "value"},
	}
	cfg := Comparators(expPageSize, false)[0]
	spec := Spec{
		KeySpace: scale.Preload,
		Preload:  scale.Preload,
		Ops:      scale.Ops,
		Mix:      Mix{Delete: 60, Insert: 25, Search: 15},
	}
	res, err := Run(cfg, spec, 8)
	if err != nil {
		return nil, err
	}
	s := res.Stats
	leaf, index := s.LeafConsolidated, s.IndexConsolidated
	total := leaf + index
	t.AddRow("leaf node deletes", leaf)
	t.AddRow("index node deletes", index)
	if total > 0 {
		t.AddRow("leaf fraction (%)", 100*float64(leaf)/float64(total))
	}
	t.AddRow("D_X increments", s.DXIncrements)
	t.AddRow("postings done", s.PostsDone)
	t.AddRow("postings aborted (D_X)", s.PostsAbortDX)
	t.AddRow("postings aborted (D_D)", s.PostsAbortDD)
	t.AddRow("postings aborted (identity)", s.PostsAbortID)
	posts := s.PostsDone + s.PostsAbortDX + s.PostsAbortDD + s.PostsAbortID
	if posts > 0 {
		t.AddRow("posting success (%)", 100*float64(s.PostsDone)/float64(posts))
	}
	t.Note("paper §4.1.1: 'Over 99%% of node deletes will be for data nodes'")
	return t, nil
}

// E5Relatch measures the §2.4 no-wait lock protocol under transactional
// hotspot contention: denials are the exception, re-latches are fast, and
// D_X-triggered transaction aborts are rare.
func E5Relatch(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "no-wait locks and re-latch under hotspot contention",
		Header: []string{"metric", "value"},
	}
	cfg := Comparators(expPageSize, false)[0]
	tr, err := core.New(cfg.Opts)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	const hot = 64
	for i := 0; i < hot; i++ {
		tr.Put(Key(i), make([]byte, 24))
	}
	ops := scale.Ops / 4
	var wg sync.WaitGroup
	var txnOps, retries int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := NewGen(Spec{KeySpace: hot, Mix: Mix{Insert: 60, Search: 40}}, seed)
			local, localRetries := 0, 0
			for i := 0; i < ops/8; i++ {
				// Multi-operation transactions hold their record locks to
				// commit (strict 2PL), so hot keys conflict and the
				// no-wait / re-latch machinery engages.
				for {
					x, err := tr.Begin()
					if err != nil {
						return
					}
					var oerr error
					for j := 0; j < 4 && oerr == nil; j++ {
						op := gen.Next()
						if op.Kind == OpInsert {
							oerr = x.Put(Key(op.K), gen.Value())
						} else {
							_, oerr = x.Get(Key(op.K))
							if errors.Is(oerr, core.ErrKeyNotFound) {
								oerr = nil
							}
						}
						// Model transaction think time: without a yield,
						// single-CPU runs never interleave lock holders and
						// the contention under test cannot arise.
						runtime.Gosched()
					}
					if oerr == nil {
						oerr = x.Commit()
					} else if !errors.Is(oerr, core.ErrTxnAborted) {
						x.Abort()
					}
					if errors.Is(oerr, core.ErrTxnAborted) {
						localRetries++
						continue
					}
					if oerr != nil {
						return
					}
					local++
					break
				}
			}
			mu.Lock()
			txnOps += int64(local)
			retries += int64(localRetries)
			mu.Unlock()
		}(int64(g))
	}
	wg.Wait()
	s := tr.Stats()
	locks := tr.LockStats()
	t.AddRow("transactions committed", txnOps)
	t.AddRow("deadlock/state retries", retries)
	t.AddRow("lock requests granted immediately", locks.ImmediateOK)
	t.AddRow("no-wait denials", s.NoWaitDenied)
	if g := locks.ImmediateOK + s.NoWaitDenied; g > 0 {
		t.AddRow("no-wait success (%)", 100*float64(locks.ImmediateOK)/float64(g))
	}
	t.AddRow("re-latches", s.Relatches)
	t.AddRow("re-latch fast path (D_D unchanged)", s.RelatchFast)
	t.AddRow("txn aborts from D_X", s.TxnAbortsDX)
	t.AddRow("txn aborts from deadlock", s.TxnDeadlocks)
	t.Note("paper §2.4: 'The no-wait lock request will almost always succeed'")
	return t, nil
}

// E6LazyPosting measures the cost of unposted index terms (extra node
// access per side traversal) and their repair (§2.3).
func E6LazyPosting(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "search cost with lazy (unposted) index terms",
		Header: []string{"phase", "searches", "side traversals", "traversals/search"},
	}
	cfg := core.Options{PageSize: expPageSize, MinFill: 0.35, Workers: core.WorkersNone}
	tr, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	// Maintenance lags rather than never runs: the queue is drained every
	// few thousand inserts, leaving the most recent splits unposted — the
	// steady state of a lazy-posting tree under load. Keys arrive in
	// random order so the unposted splits scatter across the key space.
	n := scale.Preload
	lag := n / 8
	if lag < 256 {
		lag = 256
	}
	order := rand.New(rand.NewSource(42)).Perm(n)
	for i, k := range order {
		if err := tr.Put(Key(k), make([]byte, 24)); err != nil {
			return nil, err
		}
		if i%lag == 0 {
			tr.DrainTodo()
		}
	}
	probe := func(phase string) {
		before := tr.Stats()
		for i := 0; i < n; i += 3 {
			tr.Get(Key(i))
		}
		after := tr.Stats()
		searches := after.Searches - before.Searches
		side := after.SideTraversals - before.SideTraversals
		t.AddRow(phase, searches, side, float64(side)/float64(searches))
	}
	probe("before repair (postings pending)")
	tr.DrainTodo() // the to-do queue posts everything discovered so far
	probe("after repair (index complete)")
	return t, nil
}

// E7RangeScan measures range-scan throughput while concurrent deleters
// shrink the tree (§3.1.4 cursors + re-latch).
func E7RangeScan(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "range scans concurrent with purge (delete-state method)",
		Header: []string{"config", "scans/s", "records/scan", "relatches", "restarts"},
	}
	for _, cfg := range Comparators(expPageSize, false) {
		if cfg.Name == "no-delete" {
			continue
		}
		tr, err := core.New(cfg.Opts)
		if err != nil {
			return nil, err
		}
		n := scale.Preload
		for i := 0; i < n; i++ {
			tr.Put(Key(i), make([]byte, 24))
		}
		tr.DrainTodo()

		stop := make(chan struct{})
		var del sync.WaitGroup
		del.Add(1)
		go func() {
			defer del.Done()
			for i := 0; i < n; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%7 != 0 {
					tr.Delete(Key(i))
				}
			}
		}()
		scans, records := 0, 0
		start := time.Now()
		deadline := start.Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			k := (scans * 97) % n
			cnt := 0
			tr.Scan(Key(k), nil, func(_, _ []byte) bool {
				cnt++
				return cnt < 50
			})
			records += cnt
			scans++
		}
		elapsed := time.Since(start)
		close(stop)
		del.Wait()
		s := tr.Stats()
		perScan := 0.0
		if scans > 0 {
			perScan = float64(records) / float64(scans)
		}
		t.AddRow(cfg.Name, int(float64(scans)/elapsed.Seconds()), perScan, s.Relatches, s.Restarts)
		tr.Close()
	}
	return t, nil
}

// E8Ablation compares the paper's split D_X/D_D scheme against a single
// global delete counter (§4.1.2: "there is real value to localizing data
// node deletes to a sub-tree").
func E8Ablation(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "ablation: split D_X/D_D vs one global delete counter",
		Header: []string{"config", "posts done", "posts aborted", "deletes done", "deletes aborted", "delete abort rate (%)"},
	}
	run := func(name string, single bool) error {
		opts := core.Options{PageSize: expPageSize, MinFill: 0.35, Workers: 2, SingleDeleteState: single}
		spec := Spec{
			KeySpace: scale.Preload,
			Preload:  scale.Preload,
			Ops:      scale.Ops,
			Mix:      Mix{Delete: 40, Insert: 40, Search: 20},
		}
		res, err := Run(Config{Name: name, Opts: opts}, spec, 8)
		if err != nil {
			return err
		}
		s := res.Stats
		postsAborted := s.PostsAbortDX + s.PostsAbortDD + s.PostsAbortID
		delDone := s.LeafConsolidated + s.IndexConsolidated
		delAborted := s.DeleteAbortDX + s.DeleteAbortID
		rate := 0.0
		if delDone+delAborted > 0 {
			rate = 100 * float64(delAborted) / float64(delDone+delAborted)
		}
		t.AddRow(name, s.PostsDone, postsAborted, delDone, delAborted, rate)
		return nil
	}
	if err := run("split D_X/D_D (paper)", false); err != nil {
		return nil, err
	}
	if err := run("single global counter", true); err != nil {
		return nil, err
	}
	t.Note("one global counter makes every node delete invalidate every pending SMO: consolidations starve")
	return t, nil
}

// E9Recovery crashes a tree mid-run and verifies recovery: committed work
// survives, losers are rolled back, the tree is well-formed, and lost
// postings are re-discovered (§4.1.3: delete state and the to-do queue are
// volatile).
func E9Recovery(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "crash recovery: committed survives, losers undone, tree well-formed",
		Header: []string{"metric", "value"},
	}
	dev := wal.NewMemDevice()
	store := storage.NewMemStore(expPageSize)
	tr, err := core.New(core.Options{
		PageSize: expPageSize, MinFill: 0.35, Workers: 2,
		Store: store, LogDevice: dev,
	})
	if err != nil {
		return nil, err
	}
	n := scale.Preload / 2
	committed := 0
	for i := 0; i < n; i += 10 {
		x, err := tr.Begin()
		if err != nil {
			return nil, err
		}
		for j := i; j < i+10 && j < n; j++ {
			if err := x.Put(Key(j), make([]byte, 24)); err != nil {
				return nil, err
			}
		}
		if err := x.Commit(); err != nil {
			return nil, err
		}
		committed += 10
	}
	// In-flight loser at crash time.
	x, _ := tr.Begin()
	for j := 0; j < 50; j++ {
		x.Put(Key(n+j), make([]byte, 24))
	}
	tr.FlushLog()
	dev.Crash()
	tr.Abandon()

	start := time.Now()
	tr2, err := core.New(core.Options{
		PageSize: expPageSize, MinFill: 0.35, Workers: 2,
		Store: storage.NewMemStore(expPageSize), LogDevice: dev,
	})
	if err != nil {
		return nil, fmt.Errorf("recovery failed: %w", err)
	}
	defer tr2.Close()
	recoveryTime := time.Since(start)

	cnt, err := tr2.Len()
	if err != nil {
		return nil, err
	}
	tr2.DrainTodo()
	verifyErr := tr2.Verify()
	t.AddRow("committed records", committed)
	t.AddRow("recovered records", cnt)
	t.AddRow("loser records rolled back", 50)
	t.AddRow("recovery time", recoveryTime.String())
	wellFormed := "PASS"
	if verifyErr != nil {
		wellFormed = "FAIL: " + verifyErr.Error()
	}
	t.AddRow("well-formed after recovery", wellFormed)
	match := "PASS"
	if cnt != committed {
		match = fmt.Sprintf("FAIL (%d != %d)", cnt, committed)
	}
	t.AddRow("committed == recovered", match)
	return t, nil
}

// E10Overhead measures the incremental cost of supporting node deletion
// (§4.2): the paper's method vs the no-delete variant on a workload with no
// node deletes at all.
func E10Overhead(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "cost of delete support on insert/search-only load",
		Header: []string{"config", "threads", "ops/s"},
	}
	spec := Spec{
		KeySpace: scale.Preload * 2,
		Preload:  scale.Preload,
		Ops:      scale.Ops,
		Mix:      Mix{Insert: 40, Search: 60},
	}
	for _, threads := range scale.Threads {
		for _, cfg := range Comparators(expPageSize, false) {
			if cfg.Name != "delete-state" && cfg.Name != "no-delete" {
				continue
			}
			res, err := Run(cfg, spec, threads)
			if err != nil {
				return nil, err
			}
			t.AddRow(cfg.Name, threads, int(res.Throughput))
		}
	}
	t.Note("delta = latch coupling + delete-state reads (paper §4.2.1)")
	return t, nil
}

// E11Scheduler profiles the sharded maintenance scheduler under an
// SMO-heavy mixed workload: queue-depth high-water marks, duplicate
// discoveries collapsed, backpressure inline assists, and the
// enqueue-to-process latency histogram, across thread counts and shard
// configurations (1 shard reproduces the old monolithic queue's
// contention profile).
func E11Scheduler(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "maintenance scheduler: sharding, ordering, backpressure",
		Header: []string{"shards", "threads", "ops/s", "queue hw",
			"dedup hits", "assists", "lat<100µs", "lat<1ms", "lat≥1ms"},
	}
	spec := Spec{
		KeySpace: scale.Preload,
		Preload:  scale.Preload,
		Ops:      scale.Ops,
		Mix:      Mix{Insert: 40, Delete: 40, Search: 20},
	}
	for _, shards := range []int{1, 0} { // 0 = GOMAXPROCS-derived default
		for _, threads := range scale.Threads {
			cfg := Comparators(expPageSize, false)[0]
			cfg.Opts.TodoShards = shards
			res, err := Run(cfg, spec, threads)
			if err != nil {
				return nil, fmt.Errorf("E11 shards=%d/%d: %w", shards, threads, err)
			}
			lb := res.Sched.LatencyBuckets
			t.AddRow(res.Sched.Shards, threads, int(res.Throughput),
				res.Sched.QueueHighWater, res.Sched.DedupHits,
				res.Sched.InlineAssists, lb[0], lb[1], lb[2]+lb[3]+lb[4])
		}
	}
	t.Note("index-level posts and shrinks drain before leaf work within each shard")
	t.Note("assists = foreground ops self-throttled past the soft cap (backpressure)")
	return t, nil
}

// E12ReadPath compares the optimistic versioned-latch read path against the
// pessimistic latch-coupled traversal on a read-only uniform workload, where
// index-node latching is pure overhead. A second mixed section shows the
// optimistic path's restart/fallback behaviour when writers force validation
// failures.
func E12ReadPath(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "optimistic vs pessimistic read path",
		Header: []string{"config", "mix", "threads", "ops/s",
			"latch waits", "opt attempts", "opt restarts", "fallbacks"},
	}
	readOnly := Spec{
		KeySpace: scale.Preload,
		Preload:  scale.Preload,
		Ops:      scale.Ops,
		Mix:      Mix{Search: 100},
	}
	mixed := Spec{
		KeySpace: scale.Preload,
		Preload:  scale.Preload,
		Ops:      scale.Ops,
		Mix:      Mix{Search: 80, Insert: 10, Delete: 10},
	}
	for _, sec := range []struct {
		mix  string
		spec Spec
	}{{"read-only", readOnly}, {"80/20", mixed}} {
		for _, path := range []struct {
			name string
			rp   core.ReadPath
		}{
			{"optimistic", core.ReadPathOptimistic},
			{"pessimistic", core.ReadPathPessimistic},
		} {
			for _, threads := range scale.Threads {
				cfg := Comparators(expPageSize, false)[0]
				cfg.Opts.OptimisticReads = path.rp
				res, err := Run(cfg, sec.spec, threads)
				if err != nil {
					return nil, fmt.Errorf("E12 %s/%s/%d: %w", path.name, sec.mix, threads, err)
				}
				t.AddRow(path.name, sec.mix, threads, int(res.Throughput),
					res.Latch.Waits, res.Stats.OptReadAttempts,
					res.Stats.OptReadRestarts, res.Stats.OptReadFallbacks)
			}
		}
	}
	t.Note("optimistic descends root-to-leaf with zero latches; only the target leaf is share-latched")
	t.Note("restarts = version validation failures; fallbacks = reads that reverted to latch coupling")
	return t, nil
}

// E13CrashConsistency runs the crash-point enumeration harness
// (internal/sim): a seeded workload replayed once per persistence-operation
// boundary, crashed there, rebooted and recovered, with structural and
// shadow-model verification after every recovery. One row per fault-model
// configuration; a nonzero violations cell is a correctness failure, not a
// performance result.
func E13CrashConsistency(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "crash-point enumeration: recover-and-verify sweep",
		Header: []string{"faults", "seed", "crash points", "violations",
			"torn pages", "torn tails", "smo redo", "recop redo", "losers undone", "full redo retries"},
	}
	// Scale maps onto workload length: Quick ~ the tier-1 smoke, Full adds
	// seeds and a longer history.
	steps, seeds := 150, []int64{1}
	if scale.Ops > Quick.Ops {
		steps, seeds = 250, []int64{1, 2, 3}
	}
	for _, torn := range []bool{false, true} {
		name := "clean-cut"
		if torn {
			name = "torn-writes"
		}
		for _, seed := range seeds {
			rep, err := sim.Run(sim.Config{
				Seed:           seed,
				Steps:          steps,
				TornPageWrites: torn,
				TornWALTail:    torn,
			})
			if err != nil {
				return nil, fmt.Errorf("E13 %s/seed=%d: %w", name, seed, err)
			}
			t.AddRow(name, seed, rep.CrashPoints, len(rep.Violations),
				rep.TornPages, rep.TornTails, rep.SMOsRedone, rep.RecOpsRedone,
				rep.LosersUndone, rep.FullRedoRetries)
			for _, v := range rep.Violations {
				t.Note("VIOLATION %s seed=%d: %s", name, seed, v)
			}
		}
	}
	t.Note("every crash point: reboot, recover, DrainTodo, VerifyDeep, shadow-model prefix equivalence")
	t.Note("violations must be zero; nonzero rows are crash-consistency bugs, not slow paths")
	return t, nil
}

// E14SkewTolerance runs the skew scenario matrix (skew.go): every key
// distribution at every goroutine count, contention engine (hot-leaf
// combining + right-edge append fast path) on and off. The table shows
// whether skewed load collapses throughput relative to uniform and whether
// the engine pays for itself where it should (zipf/hotspot: combining
// batches; seq-append: fast-path hits).
func E14SkewTolerance(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "skew tolerance: distribution x goroutines x contention engine",
		Header: []string{"dist", "threads", "combining", "ops/s",
			"publishes", "drained", "batches", "fastpath hits", "latch waits"},
	}
	cfg := SkewConfig{
		KeySpace: scale.Preload * 2,
		Preload:  scale.Preload,
		Ops:      scale.Ops,
	}
	if len(scale.Threads) > 0 {
		cfg.Goroutines = scale.Threads
	}
	rep, err := RunSkew(cfg)
	if err != nil {
		return nil, fmt.Errorf("E14: %w", err)
	}
	for _, res := range rep.Results {
		on := "off"
		if res.Combining {
			on = "on"
		}
		t.AddRow(res.Dist, res.Goroutines, on, int(res.OpsPerSec),
			res.CombinePublishes, res.CombineDrained, res.CombineBatches,
			res.AppendFastHits, res.LatchWaits)
	}
	t.Note("combining counters are zero with the engine off; seq-append rows show the append fast path")
	return t, nil
}

// E15ScaleTier measures the scale tier (scale.go): parallel bulk-load
// throughput against the serial baseline, the built tree's shape (height
// and index fanout under compact separators), and post-load point/range
// latency. Tiers derive from the scale so that Full lands exactly on the
// 10M/20M acceptance tiers.
func E15ScaleTier(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "scale tier: parallel bulk load + compact index pages",
		Header: []string{"keys", "parallel", "rows/s", "pages", "chunks", "height",
			"fanout", "get p50", "get p99", "put p50", "put p99", "scan ns/key", "clean"},
	}
	cfg := ScaleConfig{
		Tiers:    []int{scale.Preload * 50, scale.Preload * 100},
		Parallel: []int{1, 8},
		Probes:   1000,
	}
	rep, err := RunScale(cfg)
	if err != nil {
		return nil, fmt.Errorf("E15: %w", err)
	}
	for _, res := range rep.Results {
		t.AddRow(res.Keys, res.Parallel, int(res.RowsPerSec), res.PagesBuilt,
			res.Chunks, res.Height, res.IndexFanout,
			time.Duration(res.GetP50NS).String(), time.Duration(res.GetP99NS).String(),
			time.Duration(res.PutP50NS).String(), time.Duration(res.PutP99NS).String(),
			fmt.Sprintf("%.0f", res.ScanNSPerKey), fmt.Sprint(res.VerifyClean))
	}
	if desc, err := rep.GateParallelSpeedup(1.0); err == nil {
		t.Note("speedup: %s", desc)
	}
	t.Note("at -scale full the tiers are 10M and 20M keys (the acceptance tier); quick shrinks them 20x")
	t.Note("fanout = avg children per index node; fixed-width keys isolate the compact-separator effect")
	return t, nil
}

// E16NetworkedService measures the networked service tier (remote.go): an
// in-process blinkd server driven over loopback TCP at each connection
// count and pipeline depth, against the embedded direct-API baseline at
// the same concurrency. The embedded/net gap prices the wire layer; the
// depth-1/depth-32 gap prices round trips versus pipelining.
func E16NetworkedService(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "networked service: embedded vs blinkd over loopback",
		Header: []string{"mode", "conns", "pipeline", "ops", "ops/s", "errors"},
	}
	cfg := NetConfig{Ops: scale.Ops}
	if scale.Ops <= Quick.Ops {
		// Quick scale: trim the sweep so the cell count stays cheap.
		cfg.Conns = []int{1, 4, 16}
		cfg.Ops = scale.Ops / 2
	}
	rep, err := RunNet(cfg)
	if err != nil {
		return nil, fmt.Errorf("E16: %w", err)
	}
	for _, res := range rep.Results {
		pipe := "-"
		if res.Mode == "net" {
			pipe = fmt.Sprint(res.Pipeline)
		}
		t.AddRow(res.Mode, res.Conns, pipe, res.Ops, int(res.Throughput), res.Errors)
	}
	if desc, err := rep.GatePipeline(16, 2.0); err == nil {
		t.Note("pipeline gate: %s", desc)
	}
	t.Note("embedded rows call the public API directly (pipeline '-'); net rows cross loopback TCP")
	t.Note("depth-1 pays one round trip per op; blinkbench -net -out BENCH_net.json persists the report")
	return t, nil
}

// Experiments maps experiment IDs to their implementations.
var Experiments = map[string]func(Scale) (*Table, error){
	"E1":  E1Throughput,
	"E2":  E2Utilization,
	"E3":  E3Logging,
	"E4":  E4DeleteState,
	"E5":  E5Relatch,
	"E6":  E6LazyPosting,
	"E7":  E7RangeScan,
	"E8":  E8Ablation,
	"E9":  E9Recovery,
	"E10": E10Overhead,
	"E11": E11Scheduler,
	"E12": E12ReadPath,
	"E13": E13CrashConsistency,
	"E14": E14SkewTolerance,
	"E15": E15ScaleTier,
	"E16": E16NetworkedService,
}

// ExperimentIDs lists experiment IDs in order.
var ExperimentIDs = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
