package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	blinktree "blinktree"
	"blinktree/internal/resp"
	"blinktree/internal/server"
)

// RemoteConfig parameterizes a networked load run against a blinkd server
// (blinkbench -remote). Each connection is one worker goroutine with its
// own resp.Client and its own deterministic Gen, mirroring the embedded
// runner's worker model.
type RemoteConfig struct {
	// Addr is the server's data port ("host:port").
	Addr string
	// Conns is the number of concurrent client connections (default 4).
	Conns int
	// Pipeline is the number of commands each connection keeps in flight
	// before reading replies; 1 means strict request/response (default 1).
	Pipeline int
	// Ops is the total measured operations across all connections
	// (default 10000).
	Ops int
	// Spec shapes the workload (key space, mix, distribution). Preload runs
	// over connection 0 before measurement when Spec.Preload > 0.
	Spec Spec
	// TxnEvery, when > 0, wraps every TxnEvery'th operation in
	// BEGIN ... COMMIT so the transaction verbs see load too.
	TxnEvery int
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.Pipeline < 1 {
		c.Pipeline = 1
	}
	if c.Ops == 0 {
		c.Ops = 10000
	}
	c.Spec = c.Spec.withDefaults()
	return c
}

// RemoteResult is one measured networked run.
type RemoteResult struct {
	Conns      int     `json:"conns"`
	Pipeline   int     `json:"pipeline"`
	Ops        int     `json:"ops"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Throughput float64 `json:"ops_per_sec"`
	// Errors counts unexpected error replies; Aborts counts -ABORTED
	// commit outcomes (expected under contention, retried as no-ops).
	Errors uint64 `json:"errors"`
	Aborts uint64 `json:"aborts"`
}

// RunRemote drives a running blinkd server with cfg.Conns pipelining
// connections and returns the aggregate throughput. It PINGs each
// connection before measuring and reads INFO once afterwards, so a smoke
// run exercises every wire verb the generator's mix covers plus the
// session verbs.
func RunRemote(cfg RemoteConfig) (RemoteResult, error) {
	cfg = cfg.withDefaults()

	clients := make([]*resp.Client, cfg.Conns)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range clients {
		c, err := resp.DialTimeout(cfg.Addr, 10*time.Second)
		if err != nil {
			return RemoteResult{}, fmt.Errorf("dial %s: %w", cfg.Addr, err)
		}
		clients[i] = c
		if err := c.Ping(); err != nil {
			return RemoteResult{}, fmt.Errorf("ping: %w", err)
		}
	}

	if cfg.Spec.Preload > 0 {
		if err := remotePreload(clients[0], cfg.Spec); err != nil {
			return RemoteResult{}, fmt.Errorf("preload: %w", err)
		}
	}

	perConn := cfg.Ops / cfg.Conns
	var wg sync.WaitGroup
	type outcome struct {
		errors, aborts uint64
		err            error
	}
	outcomes := make([]outcome, cfg.Conns)
	start := time.Now()
	for i := range clients {
		wspec := cfg.Spec
		if cfg.Spec.Dist == SeqAppend {
			wspec.SeqOffset = cfg.Spec.SeqOffset + i*cfg.Spec.SeqStride
			wspec.SeqStride = cfg.Spec.SeqStride * cfg.Conns
		}
		wg.Add(1)
		go func(i int, wspec Spec) {
			defer wg.Done()
			e, a, err := remoteWorker(clients[i], wspec, cfg.Spec.Seed+int64(i)+1, perConn, cfg.Pipeline, cfg.TxnEvery)
			outcomes[i] = outcome{errors: e, aborts: a, err: err}
		}(i, wspec)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := RemoteResult{
		Conns:      cfg.Conns,
		Pipeline:   cfg.Pipeline,
		Ops:        perConn * cfg.Conns,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		Throughput: float64(perConn*cfg.Conns) / elapsed.Seconds(),
	}
	for _, o := range outcomes {
		if o.err != nil {
			return res, o.err
		}
		res.Errors += o.errors
		res.Aborts += o.aborts
	}

	// One INFO round trip closes the smoke loop over the session verbs.
	if rep, err := clients[0].DoStr("INFO"); err != nil {
		return res, fmt.Errorf("info: %w", err)
	} else if rep.IsError() {
		return res, rep.Err()
	}
	return res, nil
}

// remotePreload inserts spec.Preload sequential records over one pipelined
// connection.
func remotePreload(c *resp.Client, spec Spec) error {
	g := NewGen(spec, 0)
	const window = 256
	for i := 0; i < spec.Preload; i++ {
		if err := c.Send([]byte("SET"), Key(i%spec.KeySpace), g.Value()); err != nil {
			return err
		}
		if c.Pending() >= window {
			if err := drainReplies(c, window/2, nil, nil); err != nil {
				return err
			}
		}
	}
	return drainReplies(c, 0, nil, nil)
}

// remoteWorker runs n operations from a fresh generator over one
// connection, keeping up to window commands in flight.
func remoteWorker(c *resp.Client, spec Spec, seed int64, n, window, txnEvery int) (errCount, aborts uint64, err error) {
	g := NewGen(spec, seed)
	scanLimit := []byte(fmt.Sprintf("%d", g.ScanLen()))
	for i := 0; i < n; i++ {
		op := g.Next()
		k := Key(op.K)
		inTxn := txnEvery > 0 && i%txnEvery == 0
		if inTxn {
			if err := c.SendStr("BEGIN"); err != nil {
				return errCount, aborts, err
			}
		}
		var sendErr error
		switch op.Kind {
		case OpInsert:
			sendErr = c.Send([]byte("SET"), k, g.Value())
		case OpSearch:
			sendErr = c.Send([]byte("GET"), k)
		case OpDelete:
			sendErr = c.Send([]byte("DEL"), k)
		case OpScan:
			sendErr = c.Send([]byte("SCAN"), k, nil, scanLimit)
		case OpModify:
			if sendErr = c.Send([]byte("DEL"), k); sendErr == nil {
				sendErr = c.Send([]byte("SET"), k, g.Value())
			}
		}
		if sendErr == nil && inTxn {
			sendErr = c.SendStr("COMMIT")
		}
		if sendErr != nil {
			return errCount, aborts, sendErr
		}
		if c.Pending() >= window {
			if err := drainReplies(c, window/2, &errCount, &aborts); err != nil {
				return errCount, aborts, err
			}
		}
	}
	return errCount, aborts, drainReplies(c, 0, &errCount, &aborts)
}

// drainReplies flushes queued commands and reads replies until at most
// keep remain in flight, tallying unexpected error replies. A -ABORTED
// commit counts as an abort, not an error; -TXN after an aborted
// transaction's COMMIT cannot occur here because the server clears the
// session transaction when it reports the abort.
func drainReplies(c *resp.Client, keep int, errCount, aborts *uint64) error {
	if err := c.Flush(); err != nil {
		return err
	}
	for c.Pending() > keep {
		rep, err := c.Recv()
		if err != nil {
			return err
		}
		if rep.IsError() {
			switch rep.ErrorCode() {
			case "ABORTED":
				if aborts != nil {
					*aborts++
				}
			default:
				if errCount != nil {
					*errCount++
				}
			}
		}
	}
	return nil
}

// NetConfig parameterizes the E16 embedded-vs-networked comparison
// (blinkbench -net). Both sides run volatile (in-memory, no WAL) trees so
// the delta isolates the network layer: protocol parsing, the per-session
// goroutine pair, and round trips versus pipelining.
type NetConfig struct {
	// Conns are the connection counts to sweep (default 1, 4, 16, 64); the
	// embedded baseline runs the same counts as goroutines.
	Conns []int `json:"conns"`
	// Pipelines are the pipeline depths to sweep per connection count
	// (default 1, 32). Depth 1 pays one round trip per op.
	Pipelines []int `json:"pipelines"`
	// Ops is the measured operation count per cell (default 20000).
	Ops int `json:"ops"`
	// KeySpace and Preload shape the tree (defaults 50000 / 25000).
	KeySpace int `json:"key_space"`
	Preload  int `json:"preload"`
	// Seed is the base workload seed.
	Seed int64 `json:"seed"`
}

func (c NetConfig) withDefaults() NetConfig {
	if len(c.Conns) == 0 {
		c.Conns = []int{1, 4, 16, 64}
	}
	if len(c.Pipelines) == 0 {
		c.Pipelines = []int{1, 32}
	}
	if c.Ops == 0 {
		c.Ops = 20000
	}
	if c.KeySpace == 0 {
		c.KeySpace = 50000
	}
	if c.Preload == 0 {
		c.Preload = c.KeySpace / 2
	}
	return c
}

// NetResult is one cell of the embedded-vs-networked comparison. Mode is
// "embedded" (direct API calls, Conns goroutines, Pipeline 0) or "net"
// (TCP connections at the given pipeline depth).
type NetResult struct {
	Mode       string  `json:"mode"`
	Conns      int     `json:"conns"`
	Pipeline   int     `json:"pipeline"`
	Ops        int     `json:"ops"`
	Throughput float64 `json:"ops_per_sec"`
	Errors     uint64  `json:"errors"`
}

// NetReport is the persisted result set of the E16 comparison
// (BENCH_net.json), in the repo's standard report shape: the effective
// config restated plus one row per cell.
type NetReport struct {
	Config  NetConfig   `json:"config"`
	Results []NetResult `json:"results"`
}

// RunNet runs the E16 comparison: an embedded baseline at each concurrency,
// then an in-process blinkd server driven over loopback TCP at each
// connection count x pipeline depth. The workload is a uniform 50/50
// insert/search mix on both sides.
func RunNet(cfg NetConfig) (*NetReport, error) {
	cfg = cfg.withDefaults()
	rep := &NetReport{Config: cfg}
	spec := Spec{
		KeySpace: cfg.KeySpace,
		Preload:  cfg.Preload,
		Mix:      Mix{Insert: 50, Search: 50},
		Seed:     cfg.Seed,
	}

	for _, conns := range cfg.Conns {
		res, err := runNetEmbedded(spec, conns, cfg.Ops)
		if err != nil {
			return nil, fmt.Errorf("embedded %d goroutines: %w", conns, err)
		}
		rep.Results = append(rep.Results, res)
	}

	for _, conns := range cfg.Conns {
		for _, pipe := range cfg.Pipelines {
			res, err := runNetCell(spec, conns, pipe, cfg.Ops)
			if err != nil {
				return nil, fmt.Errorf("net %d conns pipeline %d: %w", conns, pipe, err)
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// runNetEmbedded measures the same workload through direct blinktree API
// calls — the zero-network baseline the server cells are compared against.
func runNetEmbedded(spec Spec, goroutines, ops int) (NetResult, error) {
	spec = spec.withDefaults()
	tree, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		return NetResult{}, err
	}
	defer tree.Close()
	g := NewGen(spec, 0)
	for i := 0; i < spec.Preload; i++ {
		if err := tree.Put(Key(i%spec.KeySpace), g.Value()); err != nil {
			return NetResult{}, err
		}
	}

	perG := ops / goroutines
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	start := time.Now()
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			g := NewGen(spec, seed)
			for i := 0; i < perG; i++ {
				op := g.Next()
				k := Key(op.K)
				var err error
				switch op.Kind {
				case OpInsert:
					err = tree.Put(k, g.Value())
				case OpSearch:
					if _, err = tree.Get(k); err == blinktree.ErrKeyNotFound {
						err = nil
					}
				}
				if err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(spec.Seed + int64(w) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return NetResult{}, err
		}
	}
	return NetResult{
		Mode:       "embedded",
		Conns:      goroutines,
		Ops:        perG * goroutines,
		Throughput: float64(perG*goroutines) / elapsed.Seconds(),
	}, nil
}

// runNetCell starts a fresh in-process server over loopback, preloads it,
// and measures one connection-count x pipeline-depth cell.
func runNetCell(spec Spec, conns, pipeline, ops int) (NetResult, error) {
	tree, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		return NetResult{}, err
	}
	srv := server.New(tree, server.Config{})
	if err := srv.Listen(); err != nil {
		tree.Close()
		return NetResult{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	rr, err := RunRemote(RemoteConfig{
		Addr:     srv.Addr().String(),
		Conns:    conns,
		Pipeline: pipeline,
		Ops:      ops,
		Spec:     spec,
	})
	if err != nil {
		return NetResult{}, err
	}
	return NetResult{
		Mode:       "net",
		Conns:      conns,
		Pipeline:   pipeline,
		Ops:        rr.Ops,
		Throughput: rr.Throughput,
		Errors:     rr.Errors,
	}, nil
}

// Lookup returns the cell for (mode, conns, pipeline), nil when absent.
func (r *NetReport) Lookup(mode string, conns, pipeline int) *NetResult {
	for i := range r.Results {
		c := &r.Results[i]
		if c.Mode == mode && c.Conns == conns && c.Pipeline == pipeline {
			return c
		}
	}
	return nil
}

// MaxConns returns the largest swept connection count.
func (r *NetReport) MaxConns() int {
	m := 0
	for _, c := range r.Config.Conns {
		if c > m {
			m = c
		}
	}
	return m
}

// GatePipeline checks that pipelined throughput at the given connection
// count is at least factor x the unpipelined (depth-1) throughput; the
// deepest swept pipeline is compared. It returns a description of the
// passing comparison, or an error describing the miss.
func (r *NetReport) GatePipeline(conns int, factor float64) (string, error) {
	deepest := 0
	for _, p := range r.Config.Pipelines {
		if p > deepest {
			deepest = p
		}
	}
	base := r.Lookup("net", conns, 1)
	piped := r.Lookup("net", conns, deepest)
	if base == nil || piped == nil {
		return "", fmt.Errorf("pipeline gate: missing cells at %d conns (have depth-1 %v, depth-%d %v)",
			conns, base != nil, deepest, piped != nil)
	}
	if piped.Throughput < factor*base.Throughput {
		return "", fmt.Errorf("pipeline gate: depth-%d %.0f ops/s < %.1fx depth-1 %.0f ops/s at %d conns",
			deepest, piped.Throughput, factor, base.Throughput, conns)
	}
	return fmt.Sprintf("depth-%d %.0f ops/s >= %.1fx depth-1 %.0f ops/s at %d conns",
		deepest, piped.Throughput, factor, base.Throughput, conns), nil
}

// WriteJSON writes the report as indented JSON (BENCH_net.json).
func (r *NetReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadNetReport loads a report written by WriteJSON.
func ReadNetReport(path string) (*NetReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r NetReport
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
