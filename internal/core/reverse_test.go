package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestMinMax(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	if _, _, err := tr.Max(); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Max on empty: %v", err)
	}
	if _, _, err := tr.Min(); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Min on empty: %v", err)
	}
	for i := 100; i < 600; i++ {
		tr.Put(key(i), valb(i))
	}
	k, v, err := tr.Min()
	if err != nil || !bytes.Equal(k, key(100)) || !bytes.Equal(v, valb(100)) {
		t.Fatalf("Min = %q, %q, %v", k, v, err)
	}
	k, v, err = tr.Max()
	if err != nil || !bytes.Equal(k, key(599)) || !bytes.Equal(v, valb(599)) {
		t.Fatalf("Max = %q, %q, %v", k, v, err)
	}
}

func TestScanReverseFull(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	const n = 800
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	// Both with and without posted index terms (side pointers are never
	// used backward, so laziness must not matter).
	for _, drain := range []bool{false, true} {
		if drain {
			tr.DrainTodo()
		}
		var got []string
		err := tr.ScanReverse(nil, nil, func(k, _ []byte) bool {
			got = append(got, string(k))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("drain=%v: reverse scan saw %d, want %d", drain, len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] <= got[i] {
				t.Fatalf("drain=%v: not descending at %d", drain, i)
			}
		}
		if got[0] != string(key(n-1)) || got[len(got)-1] != string(key(0)) {
			t.Fatalf("drain=%v: bounds %s .. %s", drain, got[0], got[len(got)-1])
		}
	}
}

func TestScanReverseRange(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	for i := 0; i < 500; i++ {
		tr.Put(key(i), valb(i))
	}
	var got []string
	err := tr.ScanReverse(key(100), key(200), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("range reverse scan: %d keys, want 100", len(got))
	}
	if got[0] != string(key(199)) || got[99] != string(key(100)) {
		t.Fatalf("bounds: %s .. %s", got[0], got[99])
	}
}

func TestScanReverseEarlyStop(t *testing.T) {
	tr := newTestTree(t, Options{})
	for i := 0; i < 50; i++ {
		tr.Put(key(i), valb(i))
	}
	count := 0
	tr.ScanReverse(nil, nil, func(_, _ []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop at %d", count)
	}
}

func TestReverseCursorExactBound(t *testing.T) {
	// high is an existing key: it must be excluded (exclusive bound), and
	// the boundary where bound == a node's High fence must not loop.
	tr := newTestTree(t, Options{PageSize: 512})
	for i := 0; i < 400; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	// Pick a leaf boundary key: the Low of the second leaf.
	leaves, err := tr.LevelNodes(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) < 2 {
		t.Skip("single leaf")
	}
	info, _ := tr.NodeSnapshot(leaves[1])
	boundary := info.Low

	cur := tr.NewReverseCursor(nil, boundary)
	k, _, ok, err := cur.Next()
	if err != nil || !ok {
		t.Fatalf("Next at boundary: %v %v", ok, err)
	}
	if bytes.Compare(k, boundary) >= 0 {
		t.Fatalf("reverse cursor returned %q >= bound %q", k, boundary)
	}
}

func TestReverseWithEmptyLeaves(t *testing.T) {
	// Deleting all records of interior leaves (without consolidation)
	// leaves empty leaves in the chain; backward steps must skip them.
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0, Workers: WorkersNone})
	const n = 600
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	for i := 100; i < 500; i++ {
		tr.Delete(key(i))
	}
	var got []string
	if err := tr.ScanReverse(nil, nil, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("reverse over empty leaves: %d keys, want 200", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] <= got[i] {
			t.Fatalf("not descending at %d", i)
		}
	}
}

func TestReverseConcurrentWithDeletes(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.4, Workers: 2})
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if i%5 != 0 {
				tr.Delete(key(i))
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				var prev []byte
				err := tr.ScanReverse(nil, nil, func(k, _ []byte) bool {
					if prev != nil && bytes.Compare(prev, k) <= 0 {
						t.Errorf("reverse order violation: %q then %q", prev, k)
						return false
					}
					prev = append(prev[:0], k...)
					return true
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mustVerify(t, tr)
}

// TestQuickReverseMatchesForward: reverse scan of random data equals the
// forward scan reversed, over random ranges.
func TestQuickReverseMatchesForward(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(Options{PageSize: 512, Workers: WorkersNone})
		if err != nil {
			return false
		}
		defer tr.Close()
		for i := 0; i < 250; i++ {
			tr.Put(key(rng.Intn(400)), []byte(fmt.Sprintf("%d", i)))
		}
		lo, hi := rng.Intn(400), rng.Intn(400)
		if lo > hi {
			lo, hi = hi, lo
		}
		var fwd []string
		tr.Scan(key(lo), key(hi), func(k, _ []byte) bool {
			fwd = append(fwd, string(k))
			return true
		})
		var rev []string
		tr.ScanReverse(key(lo), key(hi), func(k, _ []byte) bool {
			rev = append(rev, string(k))
			return true
		})
		if len(fwd) != len(rev) {
			t.Logf("fwd %d, rev %d", len(fwd), len(rev))
			return false
		}
		sort.Sort(sort.Reverse(sort.StringSlice(fwd)))
		for i := range fwd {
			if fwd[i] != rev[i] {
				t.Logf("mismatch at %d: %s vs %s", i, fwd[i], rev[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
