package core

import (
	"blinktree/internal/latch"
	"blinktree/internal/obs"
)

// Cursor iterates records in key order without holding latches between
// fetches (§3.1.4: "we cannot maintain page latches continuously on the
// leaf nodes in the range"). It remembers the path down the tree and uses
// the re-latch procedure to resume; if delete state shows the remembered
// nodes may be gone, it falls back to a fresh traversal — the cursor never
// aborts, it just pays a re-traverse.
type Cursor struct {
	t *Tree

	// lastKey is the largest key already returned; nil before the first
	// Next. The cursor is positioned strictly after it.
	lastKey []byte
	end     []byte // exclusive upper bound; nil = +inf
	started bool
	done    bool

	path []pathEntry
	dx   uint64

	// sp is the owning scan's span (nil when unsampled): one span covers
	// the whole scan, accumulating positioning and side-step stages across
	// Next calls.
	sp *obs.Span
}

// NewCursor returns a cursor over [start, end); end nil means +inf, start
// nil or empty means the smallest key.
func (t *Tree) NewCursor(start, end []byte) *Cursor {
	c := &Cursor{t: t, end: end}
	if len(start) > 0 {
		// Position strictly-after the key just below start: implemented by
		// treating start as "lastKey already returned" minus one step —
		// the fetch uses >= for the first positioning.
		c.lastKey = append([]byte(nil), start...)
	}
	return c
}

// Next returns the next record in order, or ok=false at the end of the
// range. Key and value are copies.
func (c *Cursor) Next() (key, val []byte, ok bool, err error) {
	if c.done {
		return nil, nil, false, nil
	}
	if err := c.t.opBegin(); err != nil {
		return nil, nil, false, err
	}
	defer c.t.opEnd()
	c.t.c.scans.Add(1)

	seek := c.lastKey
	if seek == nil {
		seek = []byte{} // smallest
	}
	leaf, rerr := c.position(seek)
	if rerr != nil {
		return nil, nil, false, rerr
	}
	// Find the first key matching the cursor's progress: strictly greater
	// than lastKey once started (or >= start before the first return).
	for {
		idx := 0
		if len(seek) > 0 {
			i, found := leaf.searchLeaf(c.t.cmp, seek)
			idx = i
			if found && c.started {
				idx = i + 1 // strictly after the already-returned key
			}
		}
		if idx < len(leaf.c.Keys) {
			k := leaf.c.Keys[idx]
			if c.end != nil && c.t.cmp(k, c.end) >= 0 {
				c.t.unlatchUnpin(leaf, latch.Shared, false)
				c.done = true
				return nil, nil, false, nil
			}
			key = append([]byte(nil), k...)
			val = append([]byte(nil), leaf.c.Vals[idx]...)
			c.lastKey = key
			c.started = true
			c.dx = c.t.dx.v.Load()
			c.t.unlatchUnpin(leaf, latch.Shared, false)
			return key, val, true, nil
		}
		// Exhausted this leaf: follow the side pointer (latch coupled).
		sib := leaf.c.Right
		if sib == 0 {
			c.t.unlatchUnpin(leaf, latch.Shared, false)
			c.done = true
			return nil, nil, false, nil
		}
		q, perr := c.t.pinLatchSpan(sib, latch.Shared, c.sp)
		c.t.unlatchUnpin(leaf, latch.Shared, false)
		if perr != nil || q.dead {
			if perr == nil {
				c.t.unlatchUnpin(q, latch.Shared, false)
			}
			// Rare: restart positioning from the remembered key.
			leaf, rerr = c.freshTraverse(seek)
			if rerr != nil {
				return nil, nil, false, rerr
			}
			continue
		}
		leaf = q
		// Keys in the sibling are all > anything seen: take its first.
		seek = []byte{}
	}
}

// position re-latches the leaf covering seek, preferring the remembered
// path (re-latch, §2.4 case 2) and falling back to a fresh traversal when
// delete state invalidated it.
func (c *Cursor) position(seek []byte) (*node, error) {
	if c.path != nil {
		leaf, path, err := c.t.relatch(c.path, seek, c.dx, latch.Shared, false)
		if err == nil {
			c.path = path
			return leaf, nil
		}
		// Delete state changed: the remembered path is worthless, not the
		// cursor. Re-traverse.
	}
	return c.freshTraverse(seek)
}

func (c *Cursor) freshTraverse(seek []byte) (*node, error) {
	dx := c.t.dx.v.Load()
	leaf, path, err := c.t.traverseRead(traverseOpts{key: seek, intent: latch.Shared, dx: dx, sp: c.sp})
	if err != nil {
		return nil, err
	}
	c.path = path
	c.dx = dx
	return leaf, nil
}

// Seek repositions the cursor so the next Next returns the first record
// with key >= target (still bounded by the cursor's end). Seeking backward
// is allowed.
func (c *Cursor) Seek(target []byte) {
	c.done = false
	c.started = false
	c.lastKey = append(c.lastKey[:0], target...)
	// The remembered path stays: re-latch will ride it if still valid.
}

// Scan calls fn for each record in [start, end) in key order; fn returning
// false stops the scan. No latches are held across fn calls.
func (t *Tree) Scan(start, end []byte, fn func(key, val []byte) bool) error {
	t0, sp := t.obsBegin(obs.OpScan)
	defer t.obsEnd(obs.OpScan, t0, sp)
	cur := t.NewCursor(start, end)
	cur.sp = sp
	for {
		k, v, ok, err := cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(k, v) {
			return nil
		}
	}
}

// Count returns the number of records in [start, end).
func (t *Tree) Count(start, end []byte) (int, error) {
	n := 0
	err := t.Scan(start, end, func(_, _ []byte) bool { n++; return true })
	return n, err
}
