package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"blinktree/internal/page"
)

func TestTodoDedup(t *testing.T) {
	tr := newTestTree(t, Options{})
	a := action{kind: actPost, origID: 1, newID: 2, dx: tr.DX()}
	tr.todo.enqueue(a)
	tr.todo.enqueue(a)
	tr.todo.enqueue(a)
	if got := tr.TodoLen(); got != 1 {
		t.Fatalf("queue length = %d, want 1 (deduplicated)", got)
	}
	// A different action is not deduplicated.
	tr.todo.enqueue(action{kind: actPost, origID: 1, newID: 3})
	if got := tr.TodoLen(); got != 2 {
		t.Fatalf("queue length = %d, want 2", got)
	}
}

func TestTodoDedupClearsAfterProcessing(t *testing.T) {
	tr := newTestTree(t, Options{})
	// A post whose parent hint is bogus simply aborts; afterwards the same
	// action may be enqueued again.
	a := action{kind: actPost, origID: 1, newID: 2, sep: []byte("x"),
		parent: ref{id: 999, epoch: 1}}
	tr.todo.enqueue(a)
	tr.DrainTodo()
	tr.todo.enqueue(a)
	if got := tr.TodoLen(); got != 1 {
		t.Fatalf("queue length after re-enqueue = %d, want 1", got)
	}
	tr.DrainTodo()
}

func TestTodoRequeueCapDrops(t *testing.T) {
	tr := newTestTree(t, Options{})
	a := action{kind: actPost, retries: maxActionRetries}
	tr.todo.requeue(a) // retries now exceeds the cap: dropped
	if got := tr.TodoLen(); got != 0 {
		t.Fatalf("over-retried action still queued: %d", got)
	}
}

func TestTodoKindString(t *testing.T) {
	cases := map[actionKind]string{
		actPost: "post", actDelete: "delete", actShrink: "shrink",
		actReclaim: "reclaim", actionKind(99): "action(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestTodoStopDiscardsQueue(t *testing.T) {
	tr, err := New(Options{Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	tr.todo.enqueue(action{kind: actPost, origID: 5, newID: 6})
	before := tr.TodoLen()
	tr.todo.stop()
	// enqueue and requeue after stop are no-ops.
	tr.todo.enqueue(action{kind: actPost, origID: 7, newID: 8})
	tr.todo.requeue(action{kind: actPost, origID: 9, newID: 10})
	if got := tr.TodoLen(); got != before {
		t.Fatalf("enqueue after stop changed queue length: %d -> %d", before, got)
	}
	tr.Close()
}

func TestTodoWorkersProcessInBackground(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2})
	for i := 0; i < 500; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Workers should drain the queue without an explicit DrainTodo.
	deadline := time.Now().Add(5 * time.Second)
	for tr.TodoLen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never drained the queue (%d left)", tr.TodoLen())
		}
		time.Sleep(time.Millisecond)
	}
	if tr.Stats().PostsDone == 0 {
		t.Fatal("workers processed nothing")
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTodoConcurrentEnqueueDrain(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tr.Put(key(g*300+i), valb(i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			tr.DrainTodo()
		}
	}()
	wg.Wait()
	<-done
	mustVerify(t, tr)
}

func TestWriteFigureWalkthrough(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureWalkthrough(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"side traversal", "aborted",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("walkthrough missing %q:\n%s", want, out)
		}
	}
}

func TestTodoDedupCollapsesAcrossShards(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 8})
	if got := len(tr.todo.shards); got != 8 {
		t.Fatalf("shard count = %d, want 8", got)
	}
	// Duplicate discoveries of one action hash to the same shard and
	// collapse regardless of how many shards exist.
	a := action{kind: actPost, origID: 1, newID: 2, dx: tr.DX()}
	for i := 0; i < 10; i++ {
		tr.todo.enqueue(a)
	}
	if got := tr.TodoLen(); got != 1 {
		t.Fatalf("queue length = %d, want 1 (deduplicated)", got)
	}
	if hits := tr.Stats().TodoDedupHits; hits != 9 {
		t.Fatalf("dedup hits = %d, want 9", hits)
	}
	// Distinct actions spread across shards and all count.
	for i := 2; i < 30; i++ {
		tr.todo.enqueue(action{kind: actPost, origID: page.PageID(i * 17), newID: 2})
	}
	if got := tr.TodoLen(); got != 29 {
		t.Fatalf("queue length = %d, want 29", got)
	}
	populated := 0
	for i := range tr.todo.shards {
		sh := &tr.todo.shards[i]
		sh.mu.Lock()
		if sh.depth() > 0 {
			populated++
		}
		sh.mu.Unlock()
	}
	if populated < 2 {
		t.Fatalf("actions hashed into %d shard(s), want spread over several", populated)
	}
	tr.todo.takeAll()
}

func TestTodoPostPendingDedupHit(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 4})
	if tr.todo.postPending(3, 4) {
		t.Fatal("empty queue reports pending post")
	}
	tr.todo.enqueue(action{kind: actPost, origID: 3, newID: 4})
	if !tr.todo.postPending(3, 4) {
		t.Fatal("queued post not reported pending")
	}
	if hits := tr.Stats().TodoDedupHits; hits == 0 {
		t.Fatal("postPending hit not counted")
	}
	tr.todo.takeAll()
}

func TestTodoLevelOrdering(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 1})
	// Leaf-level work enqueued first, index-level post and shrink after;
	// the urgent queue must still drain first.
	tr.todo.enqueue(action{kind: actPost, level: 0, origID: 11, newID: 12})
	tr.todo.enqueue(action{kind: actDelete, level: 0, origID: 13})
	tr.todo.enqueue(action{kind: actPost, level: 1, origID: 14, newID: 15})
	tr.todo.enqueue(action{kind: actShrink, origID: 16, level: 2})
	var order []page.PageID
	for {
		a, ok := tr.todo.tryPop()
		if !ok {
			break
		}
		order = append(order, a.origID)
		tr.todo.finish(a)
	}
	want := []page.PageID{14, 16, 11, 13}
	if len(order) != len(want) {
		t.Fatalf("popped %d actions, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v (index posts and shrinks first)", order, want)
		}
	}
}

func TestTodoBackpressureInlineAssist(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 2, TodoSoftCap: 1})
	// Worker-less trees disable assists for determinism; force the gate
	// open to exercise the mechanism deterministically.
	tr.todo.assist = true
	if tr.todo.softCap != 1 {
		t.Fatalf("softCap = %d, want 1", tr.todo.softCap)
	}
	// Three junk posts with a bogus parent: each aborts quickly when run.
	for i := 0; i < 3; i++ {
		tr.todo.enqueue(action{kind: actPost, origID: page.PageID(100 + i), newID: 2,
			sep: []byte("x"), parent: ref{id: 999, epoch: 1}})
	}
	depth := tr.TodoLen()
	// Any completing operation self-throttles past the soft cap.
	if _, err := tr.Get([]byte("absent")); err == nil {
		t.Fatal("expected ErrKeyNotFound")
	}
	if got := tr.Stats().TodoInlineAssists; got == 0 {
		t.Fatal("operation over soft cap did not assist")
	}
	if got := tr.TodoLen(); got >= depth {
		t.Fatalf("assist did not shrink the queue: %d -> %d", depth, got)
	}
	// Below the cap no assist happens.
	tr.todo.takeAll()
	assists := tr.Stats().TodoInlineAssists
	tr.todo.enqueue(action{kind: actPost, origID: 200, newID: 2,
		sep: []byte("x"), parent: ref{id: 999, epoch: 1}})
	tr.Get([]byte("absent"))
	if got := tr.Stats().TodoInlineAssists; got != assists {
		t.Fatalf("assist fired below soft cap: %d -> %d", assists, got)
	}
	tr.todo.takeAll()
}

func TestTodoBackpressureUnderLoad(t *testing.T) {
	// End-to-end: with workers and a tiny soft cap, a split-heavy load
	// must trigger inline assists without corrupting the tree.
	tr := newTestTree(t, Options{PageSize: 512, Workers: 1, TodoShards: 2, TodoSoftCap: 1})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				tr.Put(key(g*400+i), valb(i))
			}
		}(g)
	}
	wg.Wait()
	mustVerify(t, tr)
	if tr.Stats().TodoInlineAssists == 0 {
		t.Skip("load never exceeded the soft cap (scheduling-dependent)")
	}
}

func TestMaintainRacesPutDelete(t *testing.T) {
	// Maintain (DrainTodo) must be safe against concurrent writers; run
	// under -race this exercises the sharded scheduler's synchronization.
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2, TodoShards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				k := key(g*250 + i)
				if err := tr.Put(k, valb(i)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					tr.Delete(k)
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var mwg sync.WaitGroup
	for d := 0; d < 2; d++ {
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.DrainTodo()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	mwg.Wait()
	mustVerify(t, tr)
}

func TestDrainBailoutOnPerpetualRequeue(t *testing.T) {
	tr := newTestTree(t, Options{})
	// A page pinned by a "concurrent reader" makes every reclaim attempt
	// requeue; drain must bail out (counted) instead of spinning forever.
	n, err := tr.allocNode(page.Content{Kind: page.Leaf, Low: []byte{}})
	if err != nil {
		t.Fatal(err)
	} // n stays pinned
	tr.todo.drainSpinLimit = 50
	tr.todo.enqueue(action{kind: actReclaim, origID: n.id})
	done := make(chan struct{})
	go func() {
		tr.DrainTodo()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not bail out on a perpetually-requeuing action")
	}
	if got := tr.Stats().DrainBailouts; got != 1 {
		t.Fatalf("DrainBailouts = %d, want 1", got)
	}
	if tr.Stats().ReclaimRetry == 0 {
		t.Fatal("reclaim retries not counted")
	}
	// Unpinning the page lets the still-queued reclaim complete.
	tr.pool.Unpin(n.id, false)
	tr.DrainTodo()
	if got := tr.TodoLen(); got != 0 {
		t.Fatalf("queue not empty after unpin+drain: %d", got)
	}
}

func TestSchedulerStatsSnapshot(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 4, TodoSoftCap: 7})
	s := tr.SchedulerStats()
	if s.Shards != 4 || s.SoftCap != 7 {
		t.Fatalf("snapshot layout = %d shards cap %d, want 4/7", s.Shards, s.SoftCap)
	}
	if len(s.ShardHighWater) != 4 {
		t.Fatalf("per-shard high-water length = %d", len(s.ShardHighWater))
	}
	for i := 0; i < 20; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 600; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	s = tr.SchedulerStats()
	var perShard uint64
	for _, hw := range s.ShardHighWater {
		perShard += hw
	}
	if s.QueueHighWater == 0 || perShard == 0 {
		t.Fatalf("high-water marks not maintained: %+v", s)
	}
	var processed uint64
	for _, b := range s.LatencyBuckets {
		processed += b
	}
	if processed == 0 {
		t.Fatal("latency histogram empty after drain")
	}
	if processed != tr.Stats().TodoProcessed {
		t.Fatalf("latency histogram total %d != processed %d", processed, tr.Stats().TodoProcessed)
	}
}
