package core

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestTodoDedup(t *testing.T) {
	tr := newTestTree(t, Options{})
	a := action{kind: actPost, origID: 1, newID: 2, dx: tr.DX()}
	tr.todo.enqueue(a)
	tr.todo.enqueue(a)
	tr.todo.enqueue(a)
	if got := tr.TodoLen(); got != 1 {
		t.Fatalf("queue length = %d, want 1 (deduplicated)", got)
	}
	// A different action is not deduplicated.
	tr.todo.enqueue(action{kind: actPost, origID: 1, newID: 3})
	if got := tr.TodoLen(); got != 2 {
		t.Fatalf("queue length = %d, want 2", got)
	}
}

func TestTodoDedupClearsAfterProcessing(t *testing.T) {
	tr := newTestTree(t, Options{})
	// A post whose parent hint is bogus simply aborts; afterwards the same
	// action may be enqueued again.
	a := action{kind: actPost, origID: 1, newID: 2, sep: []byte("x"),
		parent: ref{id: 999, epoch: 1}}
	tr.todo.enqueue(a)
	tr.DrainTodo()
	tr.todo.enqueue(a)
	if got := tr.TodoLen(); got != 1 {
		t.Fatalf("queue length after re-enqueue = %d, want 1", got)
	}
	tr.DrainTodo()
}

func TestTodoRequeueCapDrops(t *testing.T) {
	tr := newTestTree(t, Options{})
	a := action{kind: actPost, retries: maxActionRetries}
	tr.todo.requeue(a) // retries now exceeds the cap: dropped
	if got := tr.TodoLen(); got != 0 {
		t.Fatalf("over-retried action still queued: %d", got)
	}
}

func TestTodoKindString(t *testing.T) {
	cases := map[actionKind]string{
		actPost: "post", actDelete: "delete", actShrink: "shrink",
		actReclaim: "reclaim", actionKind(99): "action(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestTodoStopDiscardsQueue(t *testing.T) {
	tr, err := New(Options{Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	tr.todo.enqueue(action{kind: actPost, origID: 5, newID: 6})
	tr.todo.stop()
	// enqueue after stop is a no-op.
	tr.todo.enqueue(action{kind: actPost, origID: 7, newID: 8})
	tr.Close()
}

func TestTodoWorkersProcessInBackground(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2})
	for i := 0; i < 500; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Workers should drain the queue without an explicit DrainTodo.
	deadline := time.Now().Add(5 * time.Second)
	for tr.TodoLen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never drained the queue (%d left)", tr.TodoLen())
		}
		time.Sleep(time.Millisecond)
	}
	if tr.Stats().PostsDone == 0 {
		t.Fatal("workers processed nothing")
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTodoConcurrentEnqueueDrain(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tr.Put(key(g*300+i), valb(i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			tr.DrainTodo()
		}
	}()
	wg.Wait()
	<-done
	mustVerify(t, tr)
}

func TestWriteFigureWalkthrough(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureWalkthrough(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"side traversal", "aborted",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("walkthrough missing %q:\n%s", want, out)
		}
	}
}
