package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"blinktree/internal/obs"
	"blinktree/internal/page"
)

func TestTodoDedup(t *testing.T) {
	tr := newTestTree(t, Options{})
	a := action{kind: actPost, origID: 1, newID: 2, dx: tr.DX()}
	tr.todo.enqueue(a)
	tr.todo.enqueue(a)
	tr.todo.enqueue(a)
	if got := tr.TodoLen(); got != 1 {
		t.Fatalf("queue length = %d, want 1 (deduplicated)", got)
	}
	// A different action is not deduplicated.
	tr.todo.enqueue(action{kind: actPost, origID: 1, newID: 3})
	if got := tr.TodoLen(); got != 2 {
		t.Fatalf("queue length = %d, want 2", got)
	}
}

func TestTodoDedupClearsAfterProcessing(t *testing.T) {
	tr := newTestTree(t, Options{})
	// A post whose parent hint is bogus simply aborts; afterwards the same
	// action may be enqueued again.
	a := action{kind: actPost, origID: 1, newID: 2, sep: []byte("x"),
		parent: ref{id: 999, epoch: 1}}
	tr.todo.enqueue(a)
	tr.DrainTodo()
	tr.todo.enqueue(a)
	if got := tr.TodoLen(); got != 1 {
		t.Fatalf("queue length after re-enqueue = %d, want 1", got)
	}
	tr.DrainTodo()
}

func TestTodoRequeueCapDrops(t *testing.T) {
	tr := newTestTree(t, Options{})
	a := action{kind: actPost, retries: maxActionRetries}
	tr.todo.requeue(a) // retries now exceeds the cap: dropped
	if got := tr.TodoLen(); got != 0 {
		t.Fatalf("over-retried action still queued: %d", got)
	}
}

func TestTodoKindString(t *testing.T) {
	cases := map[actionKind]string{
		actPost: "post", actDelete: "delete", actShrink: "shrink",
		actReclaim: "reclaim", actionKind(99): "action(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestTodoStopDiscardsQueue(t *testing.T) {
	tr, err := New(Options{Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	tr.todo.enqueue(action{kind: actPost, origID: 5, newID: 6})
	before := tr.TodoLen()
	tr.todo.stop()
	// enqueue and requeue after stop are no-ops.
	tr.todo.enqueue(action{kind: actPost, origID: 7, newID: 8})
	tr.todo.requeue(action{kind: actPost, origID: 9, newID: 10})
	if got := tr.TodoLen(); got != before {
		t.Fatalf("enqueue after stop changed queue length: %d -> %d", before, got)
	}
	tr.Close()
}

func TestTodoWorkersProcessInBackground(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2})
	for i := 0; i < 500; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Workers should drain the queue without an explicit DrainTodo.
	deadline := time.Now().Add(5 * time.Second)
	for tr.TodoLen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never drained the queue (%d left)", tr.TodoLen())
		}
		time.Sleep(time.Millisecond)
	}
	if tr.Stats().PostsDone == 0 {
		t.Fatal("workers processed nothing")
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTodoConcurrentEnqueueDrain(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tr.Put(key(g*300+i), valb(i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			tr.DrainTodo()
		}
	}()
	wg.Wait()
	<-done
	mustVerify(t, tr)
}

func TestWriteFigureWalkthrough(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureWalkthrough(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"side traversal", "aborted",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("walkthrough missing %q:\n%s", want, out)
		}
	}
}

func TestTodoDedupCollapsesAcrossShards(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 8})
	if got := len(tr.todo.shards); got != 8 {
		t.Fatalf("shard count = %d, want 8", got)
	}
	// Duplicate discoveries of one action hash to the same shard and
	// collapse regardless of how many shards exist.
	a := action{kind: actPost, origID: 1, newID: 2, dx: tr.DX()}
	for i := 0; i < 10; i++ {
		tr.todo.enqueue(a)
	}
	if got := tr.TodoLen(); got != 1 {
		t.Fatalf("queue length = %d, want 1 (deduplicated)", got)
	}
	if hits := tr.Stats().TodoDedupHits; hits != 9 {
		t.Fatalf("dedup hits = %d, want 9", hits)
	}
	// Distinct actions spread across shards and all count.
	for i := 2; i < 30; i++ {
		tr.todo.enqueue(action{kind: actPost, origID: page.PageID(i * 17), newID: 2})
	}
	if got := tr.TodoLen(); got != 29 {
		t.Fatalf("queue length = %d, want 29", got)
	}
	populated := 0
	for i := range tr.todo.shards {
		sh := &tr.todo.shards[i]
		sh.mu.Lock()
		if sh.depth() > 0 {
			populated++
		}
		sh.mu.Unlock()
	}
	if populated < 2 {
		t.Fatalf("actions hashed into %d shard(s), want spread over several", populated)
	}
	tr.todo.takeAll()
}

func TestTodoPostPendingDedupHit(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 4})
	if tr.todo.postPending(3, 4) {
		t.Fatal("empty queue reports pending post")
	}
	tr.todo.enqueue(action{kind: actPost, origID: 3, newID: 4})
	if !tr.todo.postPending(3, 4) {
		t.Fatal("queued post not reported pending")
	}
	if hits := tr.Stats().TodoDedupHits; hits == 0 {
		t.Fatal("postPending hit not counted")
	}
	tr.todo.takeAll()
}

func TestTodoLevelOrdering(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 1})
	// Leaf-level work enqueued first, index-level post and shrink after;
	// the urgent queue must still drain first.
	tr.todo.enqueue(action{kind: actPost, level: 0, origID: 11, newID: 12})
	tr.todo.enqueue(action{kind: actDelete, level: 0, origID: 13})
	tr.todo.enqueue(action{kind: actPost, level: 1, origID: 14, newID: 15})
	tr.todo.enqueue(action{kind: actShrink, origID: 16, level: 2})
	var order []page.PageID
	for {
		a, ok := tr.todo.tryPop()
		if !ok {
			break
		}
		order = append(order, a.origID)
		tr.todo.finish(a)
	}
	want := []page.PageID{14, 16, 11, 13}
	if len(order) != len(want) {
		t.Fatalf("popped %d actions, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v (index posts and shrinks first)", order, want)
		}
	}
}

func TestTodoBackpressureInlineAssist(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 2, TodoSoftCap: 1})
	// Worker-less trees disable assists for determinism; force the gate
	// open to exercise the mechanism deterministically.
	tr.todo.assist = true
	if tr.todo.softCap != 1 {
		t.Fatalf("softCap = %d, want 1", tr.todo.softCap)
	}
	// Three junk posts with a bogus parent: each aborts quickly when run.
	for i := 0; i < 3; i++ {
		tr.todo.enqueue(action{kind: actPost, origID: page.PageID(100 + i), newID: 2,
			sep: []byte("x"), parent: ref{id: 999, epoch: 1}})
	}
	depth := tr.TodoLen()
	// Any completing operation self-throttles past the soft cap.
	if _, err := tr.Get([]byte("absent")); err == nil {
		t.Fatal("expected ErrKeyNotFound")
	}
	if got := tr.Stats().TodoInlineAssists; got == 0 {
		t.Fatal("operation over soft cap did not assist")
	}
	if got := tr.TodoLen(); got >= depth {
		t.Fatalf("assist did not shrink the queue: %d -> %d", depth, got)
	}
	// Below the cap no assist happens.
	tr.todo.takeAll()
	assists := tr.Stats().TodoInlineAssists
	tr.todo.enqueue(action{kind: actPost, origID: 200, newID: 2,
		sep: []byte("x"), parent: ref{id: 999, epoch: 1}})
	tr.Get([]byte("absent"))
	if got := tr.Stats().TodoInlineAssists; got != assists {
		t.Fatalf("assist fired below soft cap: %d -> %d", assists, got)
	}
	tr.todo.takeAll()
}

func TestTodoBackpressureUnderLoad(t *testing.T) {
	// End-to-end: with workers and a tiny soft cap, a split-heavy load
	// must trigger inline assists without corrupting the tree.
	tr := newTestTree(t, Options{PageSize: 512, Workers: 1, TodoShards: 2, TodoSoftCap: 1})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				tr.Put(key(g*400+i), valb(i))
			}
		}(g)
	}
	wg.Wait()
	mustVerify(t, tr)
	if tr.Stats().TodoInlineAssists == 0 {
		t.Skip("load never exceeded the soft cap (scheduling-dependent)")
	}
}

func TestMaintainRacesPutDelete(t *testing.T) {
	// Maintain (DrainTodo) must be safe against concurrent writers; run
	// under -race this exercises the sharded scheduler's synchronization.
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2, TodoShards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				k := key(g*250 + i)
				if err := tr.Put(k, valb(i)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					tr.Delete(k)
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var mwg sync.WaitGroup
	for d := 0; d < 2; d++ {
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tr.DrainTodo()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	mwg.Wait()
	mustVerify(t, tr)
}

func TestDrainBailoutOnPerpetualRequeue(t *testing.T) {
	tr := newTestTree(t, Options{})
	// A page pinned by a "concurrent reader" makes every reclaim attempt
	// requeue; drain must bail out (counted) instead of spinning forever.
	n, err := tr.allocNode(page.Content{Kind: page.Leaf, Low: []byte{}})
	if err != nil {
		t.Fatal(err)
	} // n stays pinned
	tr.todo.drainSpinLimit = 50
	tr.todo.enqueue(action{kind: actReclaim, origID: n.id})
	done := make(chan struct{})
	go func() {
		tr.DrainTodo()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not bail out on a perpetually-requeuing action")
	}
	if got := tr.Stats().DrainBailouts; got != 1 {
		t.Fatalf("DrainBailouts = %d, want 1", got)
	}
	if tr.Stats().ReclaimRetry == 0 {
		t.Fatal("reclaim retries not counted")
	}
	// Unpinning the page lets the still-queued reclaim complete.
	tr.pool.Unpin(n.id, false)
	tr.DrainTodo()
	if got := tr.TodoLen(); got != 0 {
		t.Fatalf("queue not empty after unpin+drain: %d", got)
	}
}

func TestSchedulerStatsSnapshot(t *testing.T) {
	tr := newTestTree(t, Options{TodoShards: 4, TodoSoftCap: 7})
	s := tr.SchedulerStats()
	if s.Shards != 4 || s.SoftCap != 7 {
		t.Fatalf("snapshot layout = %d shards cap %d, want 4/7", s.Shards, s.SoftCap)
	}
	if len(s.ShardHighWater) != 4 {
		t.Fatalf("per-shard high-water length = %d", len(s.ShardHighWater))
	}
	for i := 0; i < 20; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 600; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	s = tr.SchedulerStats()
	var perShard uint64
	for _, hw := range s.ShardHighWater {
		perShard += hw
	}
	if s.QueueHighWater == 0 || perShard == 0 {
		t.Fatalf("high-water marks not maintained: %+v", s)
	}
	var processed uint64
	for _, b := range s.LatencyBuckets {
		processed += b
	}
	if processed == 0 {
		t.Fatal("latency histogram empty after drain")
	}
	if processed != tr.Stats().TodoProcessed {
		t.Fatalf("latency histogram total %d != processed %d", processed, tr.Stats().TodoProcessed)
	}
}

// TestTraceEventOrdering runs a concurrent insert/delete workload with the
// trace ring enabled and checks the SMO lifecycle invariant: every terminal
// event (completed or any abort/skip) for an action is preceded by a started
// event for the same action kind and origin page, and sequence numbers are
// strictly increasing.
func TestTraceEventOrdering(t *testing.T) {
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	tr := newTestTree(t, Options{
		PageSize: 512, Workers: 2, TodoShards: 4,
		Observability: &obs.Config{Metrics: true, Trace: true, TraceCapacity: 1 << 16},
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := key(g*300 + i)
				if err := tr.Put(k, valb(i)); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					tr.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	tr.DrainTodo()

	snap := tr.Registry().Snapshot()
	if snap.TraceDropped != 0 {
		t.Fatalf("ring dropped %d events; raise TraceCapacity", snap.TraceDropped)
	}
	events := tr.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events from a splitting workload")
	}

	type akey struct {
		act  obs.Action
		page uint64
	}
	started := map[akey]int{}
	terminal := map[akey]int{}
	var sawStarted, sawCompleted bool
	for i, e := range events {
		if i > 0 && e.Seq <= events[i-1].Seq {
			t.Fatalf("event %d: seq %d not after %d", i, e.Seq, events[i-1].Seq)
		}
		k := akey{e.Action, e.Page}
		switch e.Kind {
		case obs.EvStarted:
			sawStarted = true
			started[k]++
		case obs.EvCompleted, obs.EvAbortDX, obs.EvAbortDD, obs.EvAbortIdentity,
			obs.EvAbortEdge, obs.EvSkipFit:
			if e.Kind == obs.EvCompleted {
				sawCompleted = true
			}
			terminal[k]++
			if started[k] < terminal[k] {
				t.Fatalf("event %d: %s for %s page %d with no preceding started",
					i, e.Kind, e.Action, e.Page)
			}
		}
	}
	if !sawStarted || !sawCompleted {
		t.Fatalf("lifecycle kinds missing: started=%v completed=%v", sawStarted, sawCompleted)
	}
	mustVerify(t, tr)
}

// takePostWithParent inserts until the to-do queue holds a post action whose
// remembered parent is a real node (not the root-grow special case), then
// pops and returns it.
func takePostWithParent(t *testing.T, tr *Tree) action {
	t.Helper()
	for i := 0; i < 50_000; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			tr.DrainTodo() // grow the tree so later splits have real parents
		}
		for _, a := range tr.todo.takeAll() {
			if a.kind == actPost && a.parent.id != 0 {
				return a
			}
			tr.processAction(a)
		}
	}
	t.Fatal("no post action with a real parent appeared")
	return action{}
}

// TestTraceAbortCarriesDXValues forces a D_X abort deterministically and
// checks the event records both the remembered and the observed counter.
func TestTraceAbortCarriesDXValues(t *testing.T) {
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	tr := newTestTree(t, Options{
		PageSize: 512, Workers: WorkersNone,
		Observability: &obs.Config{Trace: true, TraceCapacity: 1 << 16},
	})
	a := takePostWithParent(t, tr)
	a.dx += 7 // stale remembered D_X: access parent must abandon at step 2
	tr.processAction(a)

	events := tr.TraceEvents()
	var ev *obs.Event
	for i := range events {
		if events[i].Kind == obs.EvAbortDX && events[i].Page == uint64(a.origID) {
			ev = &events[i]
		}
	}
	if ev == nil {
		t.Fatal("no abort-dx event recorded")
	}
	if ev.DXWant != a.dx {
		t.Errorf("DXWant = %d, want %d", ev.DXWant, a.dx)
	}
	if ev.DXSeen != tr.DX() {
		t.Errorf("DXSeen = %d, want observed %d", ev.DXSeen, tr.DX())
	}
	if ev.DXWant == ev.DXSeen {
		t.Error("abort event shows no delete-state change")
	}
	if got := tr.Stats().PostsAbortDX; got != 1 {
		t.Errorf("PostsAbortDX = %d, want 1", got)
	}
}

// TestTraceAbortCarriesDDValues forces a D_D abort (leaf-level post against
// a parent whose data-delete state moved) and checks the recorded values.
func TestTraceAbortCarriesDDValues(t *testing.T) {
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	tr := newTestTree(t, Options{
		PageSize: 512, Workers: WorkersNone,
		Observability: &obs.Config{Trace: true, TraceCapacity: 1 << 16},
	})
	a := takePostWithParent(t, tr)
	if a.level != 0 {
		t.Fatalf("expected a leaf-level post, got level %d", a.level)
	}
	a.dd += 3 // remembered D_D no longer matches the parent's counter
	tr.processAction(a)

	events := tr.TraceEvents()
	var ev *obs.Event
	for i := range events {
		if events[i].Kind == obs.EvAbortDD && events[i].Page == uint64(a.origID) {
			ev = &events[i]
		}
	}
	if ev == nil {
		t.Fatal("no abort-dd event recorded")
	}
	if ev.DDWant != a.dd {
		t.Errorf("DDWant = %d, want %d", ev.DDWant, a.dd)
	}
	if ev.DDSeen == ev.DDWant {
		t.Error("abort event shows no delete-state change")
	}
	if got := tr.Stats().PostsAbortDD; got != 1 {
		t.Errorf("PostsAbortDD = %d, want 1", got)
	}
}
