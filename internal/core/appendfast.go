package core

// Right-edge append fast path.
//
// Monotonic key loads (log tails, time-ordered IDs) send every insert to
// the rightmost leaf, yet the normal path still pays a full root-to-leaf
// descent per operation. The tree therefore caches a hint naming the
// rightmost leaf — refreshed whenever a writer mutates a leaf with no high
// fence — and an eligible insert tries that leaf directly:
//
//	hint  ← rightEdge load; give up unless key >= hint.low (cheap filter)
//	pin hint.id
//	v, ok ← latch.OptVersion()      (seqlock pre-check: back off while an
//	                                 exclusive holder is mutating)
//	try-acquire Update; Validate(v); then AUTHORITATIVE checks under the
//	latch: not dead, a leaf, High == nil (covers every key >= Low), and
//	key >= Low — the update latch excludes writers, so these cannot go
//	stale before the promote
//	fit check (no splits on the fast path), Promote, insert via putOnLeaf
//
// Any failure is a miss: the hint is dropped if it is definitively stale
// (dead node or no longer the right edge) and the insert falls back to the
// normal traversal. A stale hint is therefore harmless — the path is purely
// an optimization and every decision is re-validated under the latch.
//
// The pre-check against the hint's low fence keeps the path free for
// non-monotonic workloads: a uniform-random insert almost always compares
// below the rightmost leaf's low fence and walks away after one pointer
// load, no pin, no latch traffic.

import (
	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// rightEdgeHint names the believed-rightmost leaf. low is the leaf's low
// fence at publish time; a node's low fence never changes in place, so the
// copy stays accurate for the leaf's lifetime.
type rightEdgeHint struct {
	id  page.PageID
	low []byte
}

// noteRightEdge refreshes the right-edge cache after a mutation of leaf.
// The caller holds leaf's exclusive latch. Only leaves with no high fence
// are the right edge; re-publishing an unchanged hint is skipped so the
// steady state costs one atomic load and no allocation.
func (t *Tree) noteRightEdge(leaf *node) {
	if !t.appendFast || leaf.c.High != nil || leaf.dead || !leaf.isLeaf() {
		return
	}
	if h := t.rightEdge.Load(); h != nil && h.id == leaf.id {
		return
	}
	t.rightEdge.Store(&rightEdgeHint{
		id:  leaf.id,
		low: append([]byte(nil), leaf.c.Low...),
	})
}

// appendFastPut tries the right-edge fast path for a non-transactional
// upsert. done=false means the path did not apply (no hint, key not
// append-shaped, or validation failed) and the caller must run the normal
// traversal.
func (t *Tree) appendFastPut(lp recOpParams, key, val []byte) (lsn wal.LSN, updated, done bool, err error) {
	h := t.rightEdge.Load()
	if h == nil || t.cmp(key, h.low) < 0 {
		return 0, false, false, nil
	}
	leaf, ferr := t.fetchSpan(h.id, lp.sp)
	if ferr != nil {
		t.rightEdge.CompareAndSwap(h, nil)
		t.c.appendFastMisses.Add(1)
		return 0, false, false, nil
	}
	v, ok := leaf.latch.OptVersion()
	if !ok {
		// An exclusive holder is mutating the leaf right now (it may be
		// splitting); don't pile onto its latch from the fast path.
		t.unpin(leaf)
		t.c.appendFastMisses.Add(1)
		return 0, false, false, nil
	}
	if !leaf.latch.TryAcquire(latch.Update) {
		t.unpin(leaf)
		t.c.appendFastMisses.Add(1)
		return 0, false, false, nil
	}
	if !leaf.latch.Validate(v) && leaf.dead {
		// Version moved and the leaf died in the window: definitely stale.
		leaf.latch.Release(latch.Update)
		t.unpin(leaf)
		t.rightEdge.CompareAndSwap(h, nil)
		t.c.appendFastMisses.Add(1)
		return 0, false, false, nil
	}
	// Authoritative validation under the update latch.
	if leaf.dead || !leaf.isLeaf() || leaf.c.High != nil || t.cmp(key, leaf.c.Low) < 0 {
		stale := leaf.dead || leaf.c.High != nil || !leaf.isLeaf()
		leaf.latch.Release(latch.Update)
		t.unpin(leaf)
		if stale {
			t.rightEdge.CompareAndSwap(h, nil)
		}
		t.c.appendFastMisses.Add(1)
		return 0, false, false, nil
	}
	// Fit check: the fast path never splits (it has no parent hint worth
	// trusting for an SMO); a full leaf falls back to the normal path.
	pos, found := leaf.searchLeaf(t.cmp, key)
	fits := false
	if found {
		fits = leaf.size()+len(val)-len(leaf.c.Vals[pos]) <= t.opts.PageSize
	} else {
		fits = leaf.size()+page.EntrySize(page.Leaf, len(key), len(val)) <= t.opts.PageSize
	}
	if !fits {
		leaf.latch.Release(latch.Update)
		t.unpin(leaf)
		t.c.appendFastMisses.Add(1)
		return 0, false, false, nil
	}
	pt0 := lp.sp.Now()
	leaf.latch.Promote()
	lp.sp.StageSince(obs.StageLatchX, 0, pt0)
	t.c.appendFastHits.Add(1)
	dx := t.dx.v.Load()
	lsn, updated, err = t.putOnLeaf(leaf, nil, dx, lp, key, val)
	return lsn, updated, true, err
}
