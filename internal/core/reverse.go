package core

import (
	"fmt"

	"blinktree/internal/latch"
	"blinktree/internal/obs"
)

// Backward iteration (§3.1.4: the cursor "shifts forward or backward as
// fetching proceeds"). Side pointers only chain rightward, so stepping
// backward cannot ride them; instead each backward step descends from the
// root choosing the rightmost subtree strictly below the bound — the
// technique the paper describes for range reads "without side pointers".
// The cost is one root-to-leaf descent per leaf boundary crossed, which
// matches the paper's remark that side pointers "only are effective in a
// single direction".

// predecessor returns a copy of the largest record strictly below bound
// (exclusive); bound nil means "below +inf", i.e. the largest record.
// ok=false means no such record exists.
func (t *Tree) predecessor(bound []byte) (key, val []byte, ok bool, err error) {
	cur := bound
	for attempt := 0; attempt < maxTraverseRestarts; attempt++ {
		leaf, release, err := t.descendPredRead(cur)
		if err != nil {
			return nil, nil, false, err
		}
		if leaf == nil {
			return nil, nil, false, nil // nothing below the bound
		}
		idx := len(leaf.c.Keys)
		if cur != nil {
			idx = lowerBound(t.cmp, leaf.c.Keys, cur)
		}
		if idx > 0 {
			key = append([]byte(nil), leaf.c.Keys[idx-1]...)
			val = append([]byte(nil), leaf.c.Vals[idx-1]...)
			release()
			return key, val, true, nil
		}
		// The covering leaf holds nothing below the bound (it may be
		// empty, or every key is >= bound). Everything smaller lives left
		// of this leaf's low fence: retry with the fence as the bound.
		low := append([]byte(nil), leaf.c.Low...)
		release()
		if len(low) == 0 {
			return nil, nil, false, nil // leftmost leaf: no predecessor
		}
		cur = low
	}
	t.traverseExhausted()
	return nil, nil, false, fmt.Errorf("blinktree: predecessor search live-locked")
}

// descendPred descends to the leaf that may contain keys strictly below
// bound (nil = +inf), latch-coupled. It returns the leaf Shared-latched
// with a release func, or (nil, noop) when no subtree lies below the bound.
func (t *Tree) descendPred(bound []byte) (*node, func(), error) {
	couple := !t.opts.NoDeleteSupport
restart:
	for attempt := 0; attempt < maxTraverseRestarts; attempt++ {
		rootID, _ := t.readAnchor()
		n, err := t.pinLatch(rootID, latch.Shared)
		if err != nil || n.dead {
			if err == nil {
				t.unlatchUnpin(n, latch.Shared, false)
			}
			t.c.restarts.Add(1)
			continue restart
		}
		for {
			// Move right while some sibling still has keys below bound:
			// only needed when bound is above this node's high fence.
			for bound == nil && n.c.Right != 0 {
				// Largest record overall: chase the rightmost node.
				m, err := t.sideStep(n, couple)
				if err != nil {
					t.c.restarts.Add(1)
					continue restart
				}
				n = m
			}
			// Keys strictly below bound exist to the right of n only when
			// n.High < bound (strict: a sibling with Low == High == bound
			// holds keys >= bound only).
			for bound != nil && n.c.High != nil && t.cmp(n.c.High, bound) < 0 {
				m, err := t.sideStep(n, couple)
				if err != nil {
					t.c.restarts.Add(1)
					continue restart
				}
				n = m
			}
			if n.isLeaf() {
				return n, func() { t.unlatchUnpin(n, latch.Shared, false) }, nil
			}
			// Choose the rightmost child with any key space below bound.
			ci := len(n.c.Children) - 1
			if bound != nil {
				ci = lowerBound(t.cmp, n.c.Keys, bound) - 1
				if ci < 0 {
					// Even keys[0] >= bound: nothing below bound here.
					// (Only possible at the leftmost edge, where keys[0]
					// is the -inf sentinel — then ci would be >= 0 — or
					// under a stale anchor; treat as no predecessor.)
					t.unlatchUnpin(n, latch.Shared, false)
					return nil, func() {}, nil
				}
			}
			child := n.c.Children[ci]
			var m *node
			if couple {
				m, err = t.pinLatch(child, latch.Shared)
				t.unlatchUnpin(n, latch.Shared, false)
			} else {
				t.unlatchUnpin(n, latch.Shared, false)
				m, err = t.pinLatch(child, latch.Shared)
			}
			if err != nil || m.dead {
				if err == nil {
					t.unlatchUnpin(m, latch.Shared, false)
				}
				t.c.restarts.Add(1)
				continue restart
			}
			n = m
		}
	}
	t.traverseExhausted()
	return nil, nil, fmt.Errorf("blinktree: descendPred live-locked")
}

// sideStep latches n's right sibling (coupled when couple) and releases n.
func (t *Tree) sideStep(n *node, couple bool) (*node, error) {
	sib := n.c.Right
	var m *node
	var err error
	if couple {
		m, err = t.pinLatch(sib, latch.Shared)
		t.unlatchUnpin(n, latch.Shared, false)
	} else {
		t.unlatchUnpin(n, latch.Shared, false)
		m, err = t.pinLatch(sib, latch.Shared)
	}
	if err != nil {
		return nil, err
	}
	if m.dead {
		t.unlatchUnpin(m, latch.Shared, false)
		return nil, fmt.Errorf("blinktree: dead sibling")
	}
	t.c.sideTraversals.Add(1)
	return m, nil
}

// reverse cursor ------------------------------------------------------

// ReverseCursor iterates records in descending key order, holding no
// latches between fetches.
type ReverseCursor struct {
	t       *Tree
	bound   []byte // exclusive upper bound for the next fetch
	low     []byte // inclusive lower bound; nil/empty = -inf
	started bool
	done    bool
}

// NewReverseCursor returns a cursor over [low, high) iterating downward
// from just below high. high nil means +inf; low nil/empty means -inf.
func (t *Tree) NewReverseCursor(low, high []byte) *ReverseCursor {
	c := &ReverseCursor{t: t, low: low}
	if high != nil {
		c.bound = append([]byte(nil), high...)
	}
	return c
}

// Next returns the next record in descending order, or ok=false when the
// range is exhausted.
func (c *ReverseCursor) Next() (key, val []byte, ok bool, err error) {
	if c.done {
		return nil, nil, false, nil
	}
	if err := c.t.opBegin(); err != nil {
		return nil, nil, false, err
	}
	defer c.t.opEnd()
	c.t.c.scans.Add(1)
	k, v, ok, err := c.t.predecessor(c.bound)
	if err != nil {
		return nil, nil, false, err
	}
	if !ok || (len(c.low) > 0 && c.t.cmp(k, c.low) < 0) {
		c.done = true
		return nil, nil, false, nil
	}
	c.bound = k
	c.started = true
	return k, v, true, nil
}

// ScanReverse calls fn for each record in [low, high) in descending key
// order; fn returning false stops the scan.
func (t *Tree) ScanReverse(low, high []byte, fn func(key, val []byte) bool) error {
	t0 := t.obsStart()
	defer t.obsOp(obs.OpScan, t0)
	cur := t.NewReverseCursor(low, high)
	for {
		k, v, ok, err := cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(k, v) {
			return nil
		}
	}
}

// Max returns the largest record, or ErrKeyNotFound on an empty tree.
func (t *Tree) Max() (key, val []byte, err error) {
	if err := t.opBegin(); err != nil {
		return nil, nil, err
	}
	defer t.opEnd()
	k, v, ok, err := t.predecessor(nil)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, ErrKeyNotFound
	}
	return k, v, nil
}

// Min returns the smallest record, or ErrKeyNotFound on an empty tree.
func (t *Tree) Min() (key, val []byte, err error) {
	var rk, rv []byte
	found := false
	err = t.Scan(nil, nil, func(k, v []byte) bool {
		rk, rv = k, v
		found = true
		return false
	})
	if err != nil {
		return nil, nil, err
	}
	if !found {
		return nil, nil, ErrKeyNotFound
	}
	return rk, rv, nil
}
