package core

import (
	"blinktree/internal/latch"
)

// relatch re-establishes a latch on the leaf currently containing key after
// the caller released all latches (to wait on a denied no-wait lock, §2.4,
// or between cursor fetches, §3.1.4).
//
// The remembered path makes this fast: if D_X has not changed, the
// remembered parent-of-leaf still exists and is re-latched directly, then
// one latch-coupled step reaches the leaf (plus rightward moves for any
// splits). If D_X has changed, relatch fails with errDeleteState and the
// caller aborts (transactions) or falls back to a fresh traversal
// (cursors). The returned path has the parent entry refreshed.
func (t *Tree) relatch(path []pathEntry, key []byte, rememberedDX uint64, intent latch.Mode, promote bool) (*node, []pathEntry, error) {
	t.c.relatches.Add(1)
	if t.opts.NoDeleteSupport || len(path) == 0 {
		// No deletes (references never dangle) or the root is the leaf:
		// a fresh traversal is the re-latch.
		return t.traverse(traverseOpts{key: key, intent: intent, promote: promote, dx: rememberedDX})
	}
	if t.dx.v.Load() != rememberedDX {
		return nil, nil, errDeleteState
	}
	parent := path[len(path)-1]
	p, err := t.fetch(parent.id)
	if err != nil {
		return nil, nil, errDeleteState
	}
	p.latch.Acquire(latch.Shared)
	if p.dead || p.c.Epoch != parent.epoch || p.c.Level != 1 {
		t.unlatchUnpin(p, latch.Shared, false)
		return nil, nil, errDeleteState
	}
	// Rightward moves for parent splits since the original traversal.
	for p.pastHigh(t.cmp, key) {
		sib := p.c.Right
		q, err := t.pinLatch(sib, latch.Shared)
		t.unlatchUnpin(p, latch.Shared, false)
		if err != nil || q.dead {
			if err == nil {
				t.unlatchUnpin(q, latch.Shared, false)
			}
			return nil, nil, errDeleteState
		}
		p = q
	}
	// "Finding the correct leaf can be immediate if D_D indicates that the
	// remembered leaf node still exists" — we count the fast path; either
	// way one latch-coupled descent reaches the right leaf.
	if p.c.DD == parent.dd {
		t.c.relatchFast.Add(1)
	}
	ci := p.childFor(t.cmp, key)
	if ci < 0 {
		t.unlatchUnpin(p, latch.Shared, false)
		return nil, nil, errDeleteState
	}
	child := p.c.Children[ci]
	newPath := append(append([]pathEntry(nil), path[:len(path)-1]...), pathEntry{
		ref:   ref{id: p.id, epoch: p.c.Epoch},
		level: p.c.Level,
		dd:    p.c.DD,
	})
	leaf, err := t.pinLatch(child, intent)
	t.unlatchUnpin(p, latch.Shared, false)
	if err != nil || leaf.dead {
		if err == nil {
			t.unlatchUnpin(leaf, intent, false)
		}
		return nil, nil, errDeleteState
	}
	// Leaf-level rightward moves (splits below the parent's knowledge).
	for leaf.pastHigh(t.cmp, key) {
		sib := leaf.c.Right
		q, err := t.pinLatch(sib, intent)
		t.unlatchUnpin(leaf, intent, false)
		if err != nil || q.dead {
			if err == nil {
				t.unlatchUnpin(q, intent, false)
			}
			return nil, nil, errDeleteState
		}
		leaf = q
		t.c.sideTraversals.Add(1)
	}
	if promote && intent == latch.Update {
		leaf.latch.Promote()
	}
	return leaf, newPath, nil
}
