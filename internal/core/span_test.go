package core

import (
	"sync"
	"testing"
	"time"

	"blinktree/internal/obs"
	"blinktree/internal/wal"
)

// newSpanTree builds a tree sampling every operation's span.
func newSpanTree(t testing.TB, opts Options) *Tree {
	t.Helper()
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	if opts.Observability == nil {
		opts.Observability = &obs.Config{Spans: true, SampleEvery: 1}
	}
	return newTestTree(t, opts)
}

// TestSpansPerOpClass checks that every operation class produces a span with
// the expected stages, and that each span's stage sum equals its total
// latency (the acceptance bound is 10%; the implementation makes it exact).
func TestSpansPerOpClass(t *testing.T) {
	tr := newSpanTree(t, Options{PageSize: 512, LogDevice: wal.NewMemDevice()})
	for i := 0; i < 300; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := tr.Scan(key(100), key(140), func(_, _ []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("scan returned %d records, want 40", n)
	}

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans with SampleEvery=1")
	}
	byOp := map[obs.Op]int{}
	for _, sp := range spans {
		byOp[sp.Op]++
		if !sp.Sampled {
			t.Fatalf("unsampled span in the sampled ring: %+v", sp)
		}
		if sp.Total <= 0 {
			t.Fatalf("span %d total %v", sp.Seq, sp.Total)
		}
		var sum time.Duration
		for st := obs.SpanStage(0); st < obs.StageCount; st++ {
			sum += sp.Stages[st]
		}
		if sum != sp.Total {
			t.Fatalf("span %d (%s): stage sum %v != total %v", sp.Seq, sp.Op, sum, sp.Total)
		}
	}
	for _, op := range []obs.Op{obs.OpSearch, obs.OpInsert, obs.OpDelete, obs.OpScan} {
		if byOp[op] == 0 {
			t.Errorf("no spans for op %s (have %v)", op, byOp)
		}
	}

	// Reads descend optimistically; writes traverse latch-coupled and append
	// to the WAL. Check the signature stages across the whole ring.
	snap := tr.Registry().Snapshot()
	if snap.SpanStages[obs.StageDescend].Count == 0 {
		t.Error("no descend stage observations from reads")
	}
	if snap.SpanStages[obs.StageTraverse].Count == 0 {
		t.Error("no traverse stage observations from writes")
	}
	if snap.SpanStages[obs.StageWALAppend].Count == 0 {
		t.Error("no wal-append stage observations from logged writes")
	}
	if snap.SpansSampled == 0 {
		t.Error("SpansSampled counter is zero")
	}
	mustVerify(t, tr)
}

// TestSpanCommitStages checks that transaction commits under group
// durability record commit spans, including park/force time reported by the
// group-commit pipeline's traced callback.
func TestSpanCommitStages(t *testing.T) {
	tr := newSpanTree(t, Options{
		PageSize: 512, LogDevice: wal.NewMemDevice(),
		Durability: wal.DurGroup, Workers: 2,
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				txn, err := tr.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if err := txn.Put(key(g*1000+i), valb(i)); err != nil {
					t.Error(err)
					return
				}
				if err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var commits int
	var sawForce bool
	for _, sp := range tr.Spans() {
		if sp.Op != obs.OpCommit {
			continue
		}
		commits++
		var sum time.Duration
		for st := obs.SpanStage(0); st < obs.StageCount; st++ {
			sum += sp.Stages[st]
		}
		if sum != sp.Total {
			t.Fatalf("commit span %d: stage sum %v != total %v", sp.Seq, sum, sp.Total)
		}
		// Every group commit passes through the pipeline; the force stage is
		// recorded whenever its measured duration was nonzero. At least some
		// must be visible.
		if sp.Counts[obs.StageCommitForce] > 0 {
			sawForce = true
		}
	}
	if commits == 0 {
		t.Fatal("no commit spans sampled")
	}
	if !sawForce {
		t.Error("no commit span recorded a commit-force stage under DurGroup")
	}
	mustVerify(t, tr)
}

// TestSpanFlightRecorder drops the slow-op threshold to 1ns so every
// operation qualifies, and checks both rings fill.
func TestSpanFlightRecorder(t *testing.T) {
	tr := newSpanTree(t, Options{
		PageSize: 512,
		Observability: &obs.Config{
			Spans: true, SampleEvery: 1,
			SlowOpThreshold: time.Nanosecond, FlightCapacity: 16,
		},
	})
	for i := 0; i < 50; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	slow := tr.SlowSpans()
	if len(slow) != 16 {
		t.Fatalf("flight recorder holds %d, want its capacity 16", len(slow))
	}
	for _, sp := range slow {
		if !sp.Slow {
			t.Fatalf("non-slow span in flight recorder: %+v", sp)
		}
	}
	if snap := tr.Registry().Snapshot(); snap.SlowOps < 50 {
		t.Errorf("SlowOps = %d, want >= 50 (1ns threshold)", snap.SlowOps)
	}
}

// TestSpanSamplingDisabledByDefault checks a metrics-only tree keeps the
// span path entirely off: no rings, no sampled spans.
func TestSpanSamplingDisabledByDefault(t *testing.T) {
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	tr := newTestTree(t, Options{Observability: &obs.Config{Metrics: true}})
	for i := 0; i < 50; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	if spans := tr.Spans(); len(spans) != 0 {
		t.Fatalf("spans sampled without Observability.Spans: %d", len(spans))
	}
}

// TestSpanLockWaitStage forces a §2.4 lock conflict between two transactions
// and checks the blocked committer's span charges a lock-wait stage.
func TestSpanLockWaitStage(t *testing.T) {
	tr := newSpanTree(t, Options{PageSize: 512, LogDevice: wal.NewMemDevice()})
	if err := tr.Put(key(1), valb(1)); err != nil {
		t.Fatal(err)
	}

	t1, err := tr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Put(key(1), valb(100)); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		t2, err := tr.Begin()
		if err != nil {
			done <- err
			return
		}
		// Blocks on t1's record lock until t1 commits.
		if err := t2.Put(key(1), valb(200)); err != nil {
			done <- err
			return
		}
		done <- t2.Commit()
	}()

	time.Sleep(20 * time.Millisecond) // let t2 reach the lock wait
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	var sawLockWait bool
	for _, sp := range tr.Spans() {
		if sp.Counts[obs.StageLockWait] > 0 {
			sawLockWait = true
			if sp.Stages[obs.StageLockWait] <= 0 {
				t.Errorf("lock-wait counted but zero time: %+v", sp)
			}
		}
	}
	if !sawLockWait {
		t.Error("no span recorded a lock-wait stage across a forced conflict")
	}
}
