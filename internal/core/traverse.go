package core

import (
	"fmt"

	"blinktree/internal/latch"
	"blinktree/internal/obs"
)

// pathEntry remembers one node the traversal descended through. The
// remembered path optimizes index-term posting (the parent hint) and the
// re-latch procedure (§2.4); dd snapshots the parent-of-leaf delete state
// D_D at visit time (§4.1.2: "we remember the prior value for D_D when we
// visit the node on the way to a leaf node").
type pathEntry struct {
	ref
	level uint8
	dd    uint64
}

// traverseOpts parameterizes a traversal (Appendix A.1).
type traverseOpts struct {
	key    []byte
	level  uint8      // requested level; 0 for leaves
	intent latch.Mode // latch mode at the target level: Shared or Update
	// promote upgrades the target's Update latch to Exclusive before
	// returning, per A.1 ("promoted to exclusive before exiting traverse").
	promote bool
	// dx is the remembered D_X, read before accessing the tree (§4.2.1a);
	// enqueued actions carry it.
	dx uint64
	// sp is the sampled operation's span (nil when unsampled): traversal
	// phases, latch waits and buffer fetches are attributed to it.
	sp *obs.Span
}

const maxTraverseRestarts = 10000

// traverse descends from the root to the node at o.level covering o.key,
// returning it latched (and pinned) together with the remembered path from
// the root (topmost first). Latch coupling is used downward and rightward
// unless the tree was built with NoDeleteSupport, in which case a single
// latch is held at a time (§3.1.1: coupling is only required because nodes
// can be deleted).
func (t *Tree) traverse(o traverseOpts) (*node, []pathEntry, error) {
	// The traversal phase charges the span its wall time minus the nested
	// fetch/latch stages, so routing work is attributed separately from
	// waiting.
	o.sp.EnterPhase(obs.StageTraverse)
	defer o.sp.ExitPhase()
	couple := !t.opts.NoDeleteSupport
restart:
	for attempt := 0; attempt < maxTraverseRestarts; attempt++ {
		rootID, rootLevel := t.readAnchor()
		if rootLevel < o.level {
			return nil, nil, fmt.Errorf("blinktree: requested level %d above root level %d", o.level, rootLevel)
		}
		mode := t.modeFor(rootLevel, o.level, o.intent)
		n, err := t.pinLatchSpan(rootID, mode, o.sp)
		if err != nil {
			// The root was shrunk away between the anchor read and the
			// fetch; retry from the new anchor.
			t.c.restarts.Add(1)
			continue restart
		}
		if n.dead {
			t.unlatchUnpin(n, mode, false)
			t.c.restarts.Add(1)
			continue restart
		}
		var path []pathEntry
		for {
			// Side traversals: the key lies beyond this node's key space,
			// so follow the side pointer. Reaching a node only via its
			// side pointer means its index term is missing: re-discover
			// the posting (§2.3).
			for n.pastHigh(t.cmp, o.key) {
				sib := n.c.Right
				if sib == 0 {
					t.unlatchUnpin(n, mode, false)
					return nil, nil, fmt.Errorf("blinktree: node %d high fence without sibling", n.id)
				}
				t.enqueuePostFromSideMove(n, path, o.dx)
				var m *node
				if couple {
					m, err = t.pinLatchSpan(sib, mode, o.sp)
					t.unlatchUnpin(n, mode, false)
				} else {
					t.unlatchUnpin(n, mode, false)
					m, err = t.pinLatchSpan(sib, mode, o.sp)
				}
				if err != nil || m.dead {
					if err == nil {
						t.unlatchUnpin(m, mode, false)
					}
					t.c.restarts.Add(1)
					continue restart
				}
				n = m
				t.c.sideTraversals.Add(1)
			}
			if n.level() == o.level {
				if o.promote && mode == latch.Update {
					pt0 := o.sp.Now()
					n.latch.Promote()
					o.sp.StageSince(obs.StageLatchX, n.level(), pt0)
				}
				return n, path, nil
			}
			// Descend. The child cannot be deleted between reading its
			// address and latching it: its deleter would need this node
			// exclusively latched to remove the index term (latch
			// coupling argument, §3.1.1).
			ci := n.childFor(t.cmp, o.key)
			if ci < 0 {
				t.unlatchUnpin(n, mode, false)
				return nil, nil, fmt.Errorf("blinktree: key %q below node %d low fence", o.key, n.id)
			}
			child := n.c.Children[ci]
			childMode := t.modeFor(n.level()-1, o.level, o.intent)

			path = append(path, pathEntry{
				ref:   ref{id: n.id, epoch: n.c.Epoch},
				level: n.level(),
				dd:    n.c.DD,
			})
			t.maybeEnqueueDelete(n, path, o.dx)

			var m *node
			if couple {
				m, err = t.pinLatchSpan(child, childMode, o.sp)
				t.unlatchUnpin(n, mode, false)
			} else {
				t.unlatchUnpin(n, mode, false)
				m, err = t.pinLatchSpan(child, childMode, o.sp)
			}
			if err != nil || m.dead {
				if err == nil {
					t.unlatchUnpin(m, childMode, false)
				}
				t.c.restarts.Add(1)
				continue restart
			}
			n = m
			mode = childMode
		}
	}
	t.traverseExhausted()
	return nil, nil, fmt.Errorf("blinktree: traversal live-locked after %d restarts", maxTraverseRestarts)
}

// modeFor selects the latch mode for a node at nodeLevel during a traversal
// to reqLevel: Shared above the target, the caller's intent at the target
// (A.1: higher nodes are latched in share mode).
func (t *Tree) modeFor(nodeLevel, reqLevel uint8, intent latch.Mode) latch.Mode {
	if nodeLevel > reqLevel {
		return latch.Shared
	}
	return intent
}

// enqueuePostFromSideMove re-discovers a missing index term: n's side link
// carries the sibling's address and key space (the Pi-tree property), which
// is the complete index term to post.
func (t *Tree) enqueuePostFromSideMove(n *node, path []pathEntry, dx uint64) {
	if t.todo.postPending(n.id, n.c.Right) {
		return // already re-discovered; skip building the action
	}
	var parent ref
	var dd uint64
	if len(path) > 0 {
		top := path[len(path)-1]
		parent = top.ref
		dd = top.dd
	}
	// The sibling's epoch is unknown here (we have not latched it yet);
	// leave it zero — posts verify existence through D_D/D_X, and the
	// epoch is only needed for the root-race fallback, which re-checks.
	a := action{
		kind:   actPost,
		level:  n.level(),
		origID: n.id, origEpoch: n.c.Epoch,
		newID:  n.c.Right,
		sep:    append([]byte(nil), n.c.High...),
		parent: parent,
		dx:     dx,
		dd:     dd,
	}
	t.c.postsEnqueued.Add(1)
	t.todo.enqueue(a)
}

// maybeEnqueueDelete enqueues a consolidation for an under-utilized node
// seen during traversal (A.1 step 5). The root is never consolidated, but a
// single-child index root triggers a shrink.
func (t *Tree) maybeEnqueueDelete(n *node, path []pathEntry, dx uint64) {
	if t.opts.NoDeleteSupport {
		return
	}
	// Never read the anchor here: we hold n's latch, and the shrink SMO
	// holds the anchor while waiting for a node latch. Whether n really is
	// the root is re-verified by processShrink under the anchor.
	isRoot := len(path) <= 1 // path already includes n itself when called after append
	if isRoot {
		if !n.isLeaf() && len(n.c.Children) == 1 && n.c.Right == 0 {
			t.todo.enqueue(action{
				kind: actShrink, origID: n.id, origEpoch: n.c.Epoch, level: n.level(),
			})
		}
		return
	}
	if !t.underutilized(n) {
		return
	}
	parent := path[len(path)-2] // entry above n
	t.c.deletesEnqueued.Add(1)
	t.todo.enqueue(action{
		kind:   actDelete,
		level:  n.level(),
		origID: n.id, origEpoch: n.c.Epoch,
		sep:    append([]byte(nil), n.c.Low...),
		parent: parent.ref,
		dx:     dx,
	})
}

// maybeEnqueueLeafDelete is the leaf-level under-utilization check done by
// read node / update node (§3.1.2–3.1.3) after an operation.
func (t *Tree) maybeEnqueueLeafDelete(leaf *node, path []pathEntry, dx uint64) {
	if t.opts.NoDeleteSupport || len(path) == 0 || !t.underutilized(leaf) {
		return
	}
	parent := path[len(path)-1]
	t.c.deletesEnqueued.Add(1)
	t.todo.enqueue(action{
		kind:   actDelete,
		level:  leaf.level(),
		origID: leaf.id, origEpoch: leaf.c.Epoch,
		sep:    append([]byte(nil), leaf.c.Low...),
		parent: parent.ref,
		dx:     dx,
	})
}
