package core

import (
	"bytes"
	"errors"
	"testing"

	"blinktree/internal/storage"
)

// TestAllocFailureDuringSplit: an allocation failure mid-split must surface
// as an error from Put and leave the tree structurally intact.
func TestAllocFailureDuringSplit(t *testing.T) {
	fs := storage.NewFaultyStore(storage.NewMemStore(512))
	tr, err := New(Options{PageSize: 512, Store: fs, Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Fill until just before a split.
	i := 0
	for tr.Stats().Splits == 0 {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
		i++
	}
	before, _ := tr.Len()
	// Fail the NEXT allocation, then force another split.
	fs.FailNextAllocs(1)
	var perr error
	j := 0
	for perr == nil && j < 200 {
		perr = tr.Put(key(10000+j), valb(j))
		j++
	}
	if perr == nil {
		t.Fatal("no Put failed despite injected allocation fault")
	}
	if !errors.Is(perr, storage.ErrInjected) {
		t.Fatalf("error = %v, want injected", perr)
	}
	// Recovery of service: subsequent operations succeed, the tree
	// verifies, and the pre-failure records are intact.
	if err := tr.Put(key(20000), valb(1)); err != nil {
		t.Fatalf("put after fault cleared: %v", err)
	}
	mustVerify(t, tr)
	after, _ := tr.Len()
	if after < before {
		t.Fatalf("records lost: %d -> %d", before, after)
	}
	for k := 0; k < i; k++ {
		got, err := tr.Get(key(k))
		if err != nil || !bytes.Equal(got, valb(k)) {
			t.Fatalf("pre-fault record %d: %q, %v", k, got, err)
		}
	}
}

// TestWriteFailureDuringEviction: with a tiny cache, write-back failures
// surface as operation errors; once the fault clears, everything works and
// no committed data is lost.
func TestWriteFailureDuringEviction(t *testing.T) {
	fs := storage.NewFaultyStore(storage.NewMemStore(512))
	tr, err := New(Options{PageSize: 512, Store: fs, CacheSize: 8, Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const n = 400
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	fs.SetFailWrites(true)
	sawError := false
	for i := n; i < n+300; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			sawError = true
			break
		}
	}
	fs.SetFailWrites(false)
	if !sawError {
		t.Log("note: no eviction write-back needed during the fault window")
	}
	// Service restored.
	if err := tr.Put(key(99999), valb(1)); err != nil {
		t.Fatalf("put after fault cleared: %v", err)
	}
	mustVerify(t, tr)
	for i := 0; i < n; i++ {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatalf("record %d lost: %v", i, err)
		}
	}
}

// TestReadFailureSurfaces: a read fault makes operations fail cleanly, and
// clearing it restores service.
func TestReadFailureSurfaces(t *testing.T) {
	fs := storage.NewFaultyStore(storage.NewMemStore(512))
	tr, err := New(Options{PageSize: 512, Store: fs, CacheSize: 4, Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 300; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	fs.SetFailReads(true)
	// With a 4-frame cache most lookups need a read.
	sawError := false
	for i := 0; i < 300 && !sawError; i += 17 {
		if _, err := tr.Get(key(i)); err != nil && !errors.Is(err, ErrKeyNotFound) {
			sawError = true
		}
	}
	fs.SetFailReads(false)
	if !sawError {
		t.Skip("everything stayed cached; read fault not exercised")
	}
	for i := 0; i < 300; i++ {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatalf("get %d after fault cleared: %v", i, err)
		}
	}
	mustVerify(t, tr)
}

// TestBulkLoadAllocFailureCleansUp: an allocation fault mid-bulk-load frees
// everything built so far.
func TestBulkLoadAllocFailureCleansUp(t *testing.T) {
	fs := storage.NewFaultyStore(storage.NewMemStore(512))
	tr, err := New(Options{PageSize: 512, Store: fs, Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	fs.FailNextAllocs(0)
	// Fail the 5th allocation: several leaves exist by then.
	allocsSoFar := tr.StoreStats().Allocs
	_ = allocsSoFar
	i := 0
	fs.FailNextAllocs(5)
	err = tr.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= 3000 {
			return nil, nil, false
		}
		k := key(i)
		i++
		return k, valb(i), true
	}, 0.9)
	if err == nil {
		t.Fatal("bulk load survived injected allocation fault")
	}
	if live := tr.StoreStats().LivePages; live != 1 {
		t.Fatalf("live pages after failed bulk load = %d, want 1 (the root)", live)
	}
	// The tree still works.
	if err := tr.Put(key(1), valb(1)); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, tr)
}
