package core

import (
	"bytes"
	"fmt"
	"testing"
)

// These tests reproduce the paper's figures as executable scenarios:
//
//	Figure 1 — tree before the split: node F full.
//	Figure 2 — first half split: F's contents divided between F and the new
//	           node G; F's side pointer references G; G has NO index term
//	           in the parent, yet its data is reachable via side traversal.
//	Figure 3 — second half split: the index term for G is posted.
//	Figure 4 — access parent checks D_X (parent exists) and D_D (G exists)
//	           before posting; a changed D_D aborts the posting.

// buildFigureTree creates a two-level tree (a parent with several leaves)
// and returns it quiesced.
func buildFigureTree(t *testing.T) *Tree {
	t.Helper()
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.4})
	for i := 0; i < 300; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	mustVerify(t, tr)
	if tr.Height() < 1 {
		t.Fatal("figure tree needs at least two levels")
	}
	return tr
}

// takeQueuedActions drains the to-do queue's backlog WITHOUT processing it,
// returning the actions. White-box: lets tests control SMO timing exactly.
func takeQueuedActions(tr *Tree) []action {
	return tr.todo.takeAll()
}

// splitSalt makes the synthetic keys of successive splitOneLeaf calls
// unique, so repeated calls keep inserting fresh records.
var splitSalt int

// splitOneLeaf forces one leaf to split by stuffing keys into its range and
// returns the resulting post action (captured, not processed).
func splitOneLeaf(t *testing.T, tr *Tree) action {
	t.Helper()
	takeQueuedActions(tr) // start clean
	splitsBefore := tr.Stats().Splits
	splitSalt++
	i := 0
	for tr.Stats().Splits == splitsBefore {
		k := []byte(fmt.Sprintf("%s~%04d~%04d", key(10), splitSalt, i))
		if err := tr.Put(k, bytes.Repeat([]byte("x"), 30)); err != nil {
			t.Fatal(err)
		}
		i++
		if i > 500 {
			t.Fatal("could not force a split")
		}
	}
	for _, a := range takeQueuedActions(tr) {
		if a.kind == actPost {
			return a
		}
	}
	t.Fatal("split produced no post action")
	return action{}
}

func TestFigure1NodeFull(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	// Fill the single root leaf until the next insert would not fit.
	i := 0
	for {
		root, err := tr.NodeSnapshot(tr.RootID())
		if err != nil {
			t.Fatal(err)
		}
		if tr.opts.PageSize-root.Size < 40 {
			break // F is full
		}
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
		i++
	}
	root, _ := tr.NodeSnapshot(tr.RootID())
	if root.Right != 0 {
		t.Fatal("Figure 1 state must have no sibling yet")
	}
	if tr.Stats().Splits != 0 {
		t.Fatal("Figure 1 state must precede any split")
	}
}

func TestFigure2FirstHalfSplit(t *testing.T) {
	tr := buildFigureTree(t)
	a := splitOneLeaf(t, tr)

	f, err := tr.NodeSnapshot(a.origID)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tr.NodeSnapshot(a.newID)
	if err != nil {
		t.Fatal(err)
	}
	// F's side pointer references G, and the side link's key space
	// description (F.High == G.Low) is the complete index term.
	if f.Right != a.newID {
		t.Fatalf("F.right = %d, want G (%d)", f.Right, a.newID)
	}
	if !bytes.Equal(f.High, g.Low) {
		t.Fatalf("F.high %q != G.low %q", f.High, g.Low)
	}
	if !bytes.Equal(a.sep, g.Low) {
		t.Fatalf("post action sep %q != G.low %q", a.sep, g.Low)
	}
	// G is NOT referenced by an index term in the parent.
	p, err := tr.NodeSnapshot(a.parent.id)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Children {
		if c == a.newID {
			t.Fatal("G already has an index term before the 2nd half split")
		}
	}
	// Yet G's data is reachable (search correctness via side traversal).
	side := tr.Stats().SideTraversals
	gKey := g.Keys[0]
	if _, err := tr.Get(gKey); err != nil {
		t.Fatalf("key in G unreachable: %v", err)
	}
	if tr.Stats().SideTraversals == side {
		t.Fatal("reaching G did not use a side traversal")
	}
}

func TestFigure3SecondHalfSplit(t *testing.T) {
	tr := buildFigureTree(t)
	a := splitOneLeaf(t, tr)
	// Process the posting (2nd half split).
	tr.processPost(a)
	if tr.Stats().PostsDone == 0 {
		t.Fatal("index term was not posted")
	}
	// The parent (or a sibling it split into) now references G.
	mustVerify(t, tr)
	g, _ := tr.NodeSnapshot(a.newID)
	side := tr.Stats().SideTraversals
	if _, err := tr.Get(g.Keys[0]); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().SideTraversals != side {
		t.Fatal("search still side-traverses after index term was posted")
	}
}

func TestFigure4AccessParentChecksDD(t *testing.T) {
	tr := buildFigureTree(t)
	a := splitOneLeaf(t, tr)

	// Before the posting runs, a data node under the same parent is
	// deleted: D_D in the parent changes.
	ddBefore, err := tr.NodeSnapshot(a.parent.id)
	if err != nil {
		t.Fatal(err)
	}
	// Find a consolidation candidate: empty out a middle leaf.
	for i := 100; i < 160; i++ {
		tr.Delete(key(i))
	}
	// Run only delete actions.
	for _, act := range takeQueuedActions(tr) {
		if act.kind == actDelete {
			tr.processDelete(act)
		}
	}
	if tr.Stats().LeafConsolidated == 0 {
		t.Skip("no leaf consolidation achieved; cannot demonstrate Figure 4")
	}
	ddAfter, _ := tr.NodeSnapshot(a.parent.id)
	if ddAfter.DD == ddBefore.DD {
		t.Skipf("consolidation happened under a different parent (DD %d unchanged)", ddAfter.DD)
	}

	// Now the remembered posting runs: access parent sees D_D changed and
	// aborts it, even though G itself still exists (conservatism is safe).
	aborts := tr.Stats().PostsAbortDD
	tr.processPost(a)
	if got := tr.Stats().PostsAbortDD; got != aborts+1 {
		t.Fatalf("posting not aborted by D_D change (aborts %d -> %d)", aborts, got)
	}
	// G's data is still reachable, and the posting is re-discovered by the
	// side traversal and eventually completes.
	g, _ := tr.NodeSnapshot(a.newID)
	if _, err := tr.Get(g.Keys[0]); err != nil {
		t.Fatalf("data in G lost after aborted posting: %v", err)
	}
	mustVerify(t, tr)
	p2, _ := tr.NodeSnapshot(a.parent.id)
	foundTerm := false
	for _, c := range p2.Children {
		if c == a.newID {
			foundTerm = true
		}
	}
	if !foundTerm {
		// The term may live in a split sibling of the parent; full
		// verification above already proved the tree well-formed, so just
		// require reachability without side traversal.
		side := tr.Stats().SideTraversals
		tr.Get(g.Keys[0])
		if tr.Stats().SideTraversals != side {
			t.Fatal("index term never re-posted after abort")
		}
	}
}

func TestFigure4AccessParentChecksDX(t *testing.T) {
	tr := buildFigureTree(t)
	a := splitOneLeaf(t, tr)
	// Simulate an index-node delete between remembering and posting.
	tr.dx.v.Add(1)
	aborts := tr.Stats().PostsAbortDX
	tr.processPost(a)
	if got := tr.Stats().PostsAbortDX; got != aborts+1 {
		t.Fatalf("posting not aborted by D_X change")
	}
	// Re-discovery repairs the index.
	mustVerify(t, tr)
}

func TestAccessParentIdentityCheck(t *testing.T) {
	tr := buildFigureTree(t)
	a := splitOneLeaf(t, tr)
	// A stale parent reference whose page was recycled as a different node
	// is detected by the epoch, even with D_X unchanged.
	a.parent.epoch += 999
	tr.processPost(a)
	if tr.Stats().PostsAbortID == 0 {
		t.Fatal("recycled-parent identity mismatch not detected")
	}
	mustVerify(t, tr)
}
