package core

import (
	"bytes"
	"errors"
	"testing"

	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// pairFeeder returns a next() over n sequential records.
func pairFeeder(n int) func() ([]byte, []byte, bool) {
	i := 0
	return func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		k, v := key(i), valb(i)
		i++
		return k, v, true
	}
}

func TestBulkLoadBasic(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	const n = 5000
	if err := tr.BulkLoad(pairFeeder(n), 0.85); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, tr)
	if cnt, _ := tr.Len(); cnt != n {
		t.Fatalf("Len = %d, want %d", cnt, n)
	}
	for i := 0; i < n; i += 97 {
		got, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("get %d: %q, %v", i, got, err)
		}
	}
	if tr.Height() == 0 {
		t.Fatal("bulk loaded tree has height 0")
	}
	// The tree must behave normally afterwards: inserts, deletes, splits.
	for i := n; i < n+500; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	mustVerify(t, tr)
}

func TestBulkLoadEmptyStream(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	if err := tr.BulkLoad(pairFeeder(0), 0.85); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, tr)
	if cnt, _ := tr.Len(); cnt != 0 {
		t.Fatalf("Len = %d", cnt)
	}
	if err := tr.Put(key(1), valb(1)); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsNonEmptyTree(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	tr.Put(key(1), valb(1))
	if err := tr.BulkLoad(pairFeeder(10), 0.85); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("bulk load on non-empty tree: %v", err)
	}
}

func TestBulkLoadRejectsUnsortedInput(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	i := 0
	bad := func() ([]byte, []byte, bool) {
		i++
		switch i {
		case 1:
			return key(5), valb(5), true
		case 2:
			return key(3), valb(3), true // out of order
		default:
			return nil, nil, false
		}
	}
	if err := tr.BulkLoad(bad, 0.85); err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
	// The failed load must not leak pages: only the formatting root lives.
	if live := tr.StoreStats().LivePages; live != 1 {
		t.Fatalf("live pages after failed load = %d, want 1", live)
	}
	// The tree is still usable.
	if err := tr.Put(key(1), valb(1)); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, tr)
}

func TestBulkLoadFillFactor(t *testing.T) {
	for _, fill := range []float64{0.6, 0.95} {
		tr := newTestTree(t, Options{PageSize: 512})
		if err := tr.BulkLoad(pairFeeder(3000), fill); err != nil {
			t.Fatal(err)
		}
		mustVerify(t, tr)
		leaves, err := tr.LevelNodes(0)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, id := range leaves {
			info, _ := tr.NodeSnapshot(id)
			total += info.Size
		}
		got := float64(total) / float64(len(leaves)*512)
		if got < fill-0.25 || got > fill+0.10 {
			t.Fatalf("fill %.2f produced average occupancy %.2f", fill, got)
		}
		tr.Close()
	}
}

func TestBulkLoadSurvivesCrash(t *testing.T) {
	dev := wal.NewMemDevice()
	tr, err := New(Options{PageSize: 512, LogDevice: dev,
		Store: storage.NewMemStore(512), Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	if err := tr.BulkLoad(pairFeeder(n), 0.85); err != nil {
		t.Fatal(err)
	}
	// BulkLoad forces the log itself; crash without any page flush.
	dev.Crash()
	tr.Abandon()

	tr2, err := New(Options{PageSize: 512, LogDevice: dev,
		Store: storage.NewMemStore(512), Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	mustVerify(t, tr2)
	if cnt, _ := tr2.Len(); cnt != n {
		t.Fatalf("recovered Len = %d, want %d", cnt, n)
	}
	for i := 0; i < n; i += 131 {
		if _, err := tr2.Get(key(i)); err != nil {
			t.Fatalf("recovered get %d: %v", i, err)
		}
	}
}

func TestBulkLoadThenReverseScan(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	if err := tr.BulkLoad(pairFeeder(1200), 0.85); err != nil {
		t.Fatal(err)
	}
	var prev []byte
	count := 0
	tr.ScanReverse(nil, nil, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) <= 0 {
			t.Fatalf("reverse order violation")
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != 1200 {
		t.Fatalf("reverse scan saw %d", count)
	}
}
