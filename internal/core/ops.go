package core

import (
	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// recOpParams carries the logging identity of a record operation: the
// owning transaction (0 = non-transactional, auto-committed), the
// transaction's previous LSN for the undo backchain, and CLR fields when
// the operation compensates another during rollback.
type recOpParams struct {
	txn      uint64
	prevLSN  wal.LSN
	clr      bool
	undoNext wal.LSN
	// sp is the sampled operation's span (nil when unsampled); the WAL
	// append in logRecOp is timed into it.
	sp *obs.Span
}

// Get returns a copy of the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, error) {
	if err := t.opBegin(); err != nil {
		return nil, err
	}
	defer t.opEnd()
	if len(key) == 0 {
		return nil, ErrEmptyKey
	}
	t.c.searches.Add(1)
	t0, sp := t.obsBegin(obs.OpSearch)
	defer t.obsEnd(obs.OpSearch, t0, sp)
	dx := t.dx.v.Load()
	leaf, path, err := t.traverseRead(traverseOpts{key: key, intent: latch.Shared, dx: dx, sp: sp})
	if err != nil {
		return nil, err
	}
	pos, found := leaf.searchLeaf(t.cmp, key)
	var val []byte
	if found {
		val = append([]byte(nil), leaf.c.Vals[pos]...)
	}
	t.maybeEnqueueLeafDelete(leaf, path, dx)
	t.unlatchUnpin(leaf, latch.Shared, false)
	if !found {
		return nil, ErrKeyNotFound
	}
	return val, nil
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	switch err {
	case nil:
		return true, nil
	case ErrKeyNotFound:
		return false, nil
	default:
		return false, err
	}
}

// Put inserts or replaces the record under key.
func (t *Tree) Put(key, val []byte) error {
	if err := t.opBegin(); err != nil {
		return err
	}
	defer t.opEnd()
	if err := t.validateEntry(key, val); err != nil {
		return err
	}
	t.c.inserts.Add(1)
	t0, sp := t.obsBegin(obs.OpInsert)
	_, updated, err := t.putInternal(recOpParams{sp: sp}, key, val)
	if updated {
		t.c.updates.Add(1)
		t.obsEnd(obs.OpUpdate, t0, sp)
	} else {
		t.obsEnd(obs.OpInsert, t0, sp)
	}
	return err
}

// Delete removes the record under key, returning ErrKeyNotFound if absent.
func (t *Tree) Delete(key []byte) error {
	if err := t.opBegin(); err != nil {
		return err
	}
	defer t.opEnd()
	if len(key) == 0 {
		return ErrEmptyKey
	}
	t.c.deletes.Add(1)
	t0, sp := t.obsBegin(obs.OpDelete)
	defer t.obsEnd(obs.OpDelete, t0, sp)
	_, err := t.deleteInternal(recOpParams{sp: sp}, key)
	return err
}

// putInternal traverses to the covering leaf and upserts. The bool result
// reports whether an existing record was replaced (an update) rather than a
// new one inserted. Non-transactional upserts first try the right-edge
// append fast path (appendfast.go) and then the combining layer
// (combine.go); both fall through here when they decline.
func (t *Tree) putInternal(lp recOpParams, key, val []byte) (wal.LSN, bool, error) {
	if lp.txn == 0 && !lp.clr {
		if t.appendFast {
			if lsn, updated, done, err := t.appendFastPut(lp, key, val); done {
				return lsn, updated, err
			}
		}
		if t.combining {
			if lsn, updated, done, err := t.combinePut(lp, key, val); done {
				return lsn, updated, err
			}
		}
	}
	dx := t.dx.v.Load()
	leaf, path, err := t.traverse(traverseOpts{
		key: key, intent: latch.Update, promote: true, dx: dx, sp: lp.sp,
	})
	if err != nil {
		return 0, false, err
	}
	return t.putOnLeaf(leaf, path, dx, lp, key, val)
}

// putOnLeaf performs the upsert on an exclusively latched leaf (update
// node, §3.1.3), splitting and moving right as needed. It consumes the
// latch and pin.
func (t *Tree) putOnLeaf(leaf *node, path []pathEntry, dx uint64, lp recOpParams, key, val []byte) (wal.LSN, bool, error) {
	for {
		pos, found := leaf.searchLeaf(t.cmp, key)
		if found {
			delta := len(val) - len(leaf.c.Vals[pos])
			if leaf.size()+delta <= t.opts.PageSize {
				old := leaf.c.Vals[pos]
				leaf.c.Vals[pos] = append([]byte(nil), val...)
				lsn, err := t.logRecOp(leaf, lp, wal.OpUpdate, key, val, old)
				t.noteRightEdge(leaf)
				t.unlatchUnpin(leaf, latch.Exclusive, true)
				return lsn, true, err
			}
		} else {
			need := page.EntrySize(page.Leaf, len(key), len(val))
			if leaf.size()+need <= t.opts.PageSize {
				leaf.insertLeafAt(pos, key, val)
				lsn, err := t.logRecOp(leaf, lp, wal.OpInsert, key, val, nil)
				t.noteRightEdge(leaf)
				t.unlatchUnpin(leaf, latch.Exclusive, true)
				return lsn, false, err
			}
		}
		// The record does not fit: split. The ARIES/IM comparator releases
		// the leaf, runs the complete multi-level SMO under the global
		// tree latch, and re-traverses; the paper's method does only the
		// mandatory first half split in line (§3.2.1), enqueues the
		// posting, and follows the side pointer if the key moved right.
		if t.opts.SerializeSMO {
			t.unlatchUnpin(leaf, latch.Exclusive, true)
			need := page.EntrySize(page.Leaf, len(key), len(val))
			if err := t.serializedSplit(key, need); err != nil {
				return 0, false, err
			}
			var err error
			leaf, path, err = t.traverse(traverseOpts{
				key: key, intent: latch.Update, promote: true, dx: dx, sp: lp.sp,
			})
			if err != nil {
				return 0, false, err
			}
			continue
		}
		parent, dd := parentFromPath(path)
		if err := t.splitLocked(leaf, parent, dd, dx); err != nil {
			t.unlatchUnpin(leaf, latch.Exclusive, true)
			return 0, false, err
		}
		if leaf.pastHigh(t.cmp, key) {
			right, err := t.pinLatchSpan(leaf.c.Right, latch.Exclusive, lp.sp)
			t.unlatchUnpin(leaf, latch.Exclusive, true)
			if err != nil {
				return 0, false, err
			}
			leaf = right
		}
	}
}

// deleteInternal traverses to the covering leaf and removes key.
// Non-transactional deletes first try the combining layer (combine.go).
func (t *Tree) deleteInternal(lp recOpParams, key []byte) (wal.LSN, error) {
	if lp.txn == 0 && !lp.clr && t.combining {
		if lsn, done, err := t.combineDelete(lp, key); done {
			return lsn, err
		}
	}
	dx := t.dx.v.Load()
	leaf, path, err := t.traverse(traverseOpts{
		key: key, intent: latch.Update, promote: true, dx: dx, sp: lp.sp,
	})
	if err != nil {
		return 0, err
	}
	return t.deleteOnLeaf(leaf, path, dx, lp, key)
}

// deleteOnLeaf removes key from an exclusively latched leaf, consuming the
// latch and pin.
func (t *Tree) deleteOnLeaf(leaf *node, path []pathEntry, dx uint64, lp recOpParams, key []byte) (wal.LSN, error) {
	pos, found := leaf.searchLeaf(t.cmp, key)
	if !found {
		t.unlatchUnpin(leaf, latch.Exclusive, false)
		return 0, ErrKeyNotFound
	}
	kcopy := leaf.c.Keys[pos]
	old := leaf.removeLeafAt(pos)
	lsn, err := t.logRecOp(leaf, lp, wal.OpDelete, kcopy, nil, old)
	t.maybeEnqueueLeafDelete(leaf, path, dx)
	t.unlatchUnpin(leaf, latch.Exclusive, true)
	return lsn, err
}

// logRecOp appends the physiological log record for a leaf modification and
// stamps the leaf's page LSN. No-op without a log.
func (t *Tree) logRecOp(leaf *node, lp recOpParams, op wal.Op, key, val, old []byte) (wal.LSN, error) {
	if t.log == nil {
		return 0, nil
	}
	at0 := lp.sp.Now()
	defer lp.sp.StageSince(obs.StageWALAppend, 0, at0)
	return t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
		leaf.c.LSN = uint64(lsn)
		return &wal.Record{
			Type:     wal.TRecOp,
			Txn:      lp.txn,
			PrevLSN:  lp.prevLSN,
			Op:       op,
			Page:     leaf.id,
			Key:      append([]byte(nil), key...),
			Val:      append([]byte(nil), val...),
			OldVal:   append([]byte(nil), old...),
			CLR:      lp.clr,
			UndoNext: lp.undoNext,
		}
	})
}

// parentFromPath extracts the remembered parent reference and its D_D from
// a traversal path; a zero ref means the node was at root level.
func parentFromPath(path []pathEntry) (ref, uint64) {
	if len(path) == 0 {
		return ref{}, 0
	}
	top := path[len(path)-1]
	return top.ref, top.dd
}
