package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"blinktree/internal/wal"
)

// TestAppendFastPathMonotonic loads strictly increasing keys and requires
// the right-edge fast path to serve the bulk of them, with contents and
// invariants intact. A scattering of non-append keys must fall back cleanly.
func TestAppendFastPathMonotonic(t *testing.T) {
	tr, err := New(Options{
		PageSize:       1024,
		Workers:        WorkersNone,
		LogDevice:      wal.NewMemDevice(),
		Combining:      FeatureOff,
		AppendFastPath: FeatureOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("seq%08d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		// Every 50th insert lands below the right edge and must traverse.
		if i%50 == 0 {
			if err := tr.Put([]byte(fmt.Sprintf("aaa%08d", i)), []byte("w")); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := tr.Stats()
	if s.AppendFastHits < n/2 {
		t.Fatalf("append fast path hits %d of %d monotonic inserts", s.AppendFastHits, n)
	}
	tr.DrainTodo()
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	recs, err := tr.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n+n/50 {
		t.Fatalf("record count %d, want %d", len(recs), n+n/50)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(recs[fmt.Sprintf("seq%08d", i)], []byte("v")) {
			t.Fatalf("missing or wrong record seq%08d", i)
		}
	}
}

// TestAppendFastPathConcurrent interleaves monotonic appenders with random
// writers and deleters under -race: the hint may go stale at any moment
// (splits move the right edge, consolidations kill leaves) and every miss
// must fall back without losing an operation.
func TestAppendFastPathConcurrent(t *testing.T) {
	tr, err := New(Options{
		PageSize:       1024,
		Workers:        2,
		MinFill:        0.35,
		LogDevice:      wal.NewMemDevice(),
		AppendFastPath: FeatureOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	const goroutines = 6
	const perG = 500
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var err error
				if g%2 == 0 {
					// Appenders: per-goroutine increasing tails.
					err = tr.Put([]byte(fmt.Sprintf("tail%06d-%02d", i, g)), []byte("a"))
				} else {
					// Churners: scattered writes and deletes.
					k := []byte(fmt.Sprintf("mid%02d-%06d", g, (i*7)%200))
					if i%3 == 2 {
						if derr := tr.Delete(k); derr != nil && derr != ErrKeyNotFound {
							err = derr
						}
					} else {
						err = tr.Put(k, []byte("b"))
					}
				}
				if err != nil {
					errCh <- fmt.Errorf("g%d op %d: %w", g, i, err)
					return
				}
			}
			errCh <- nil
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	// Every appended tail key must be present exactly as written.
	for g := 0; g < goroutines; g += 2 {
		for i := 0; i < perG; i += 97 {
			if _, err := tr.Get([]byte(fmt.Sprintf("tail%06d-%02d", i, g))); err != nil {
				t.Fatalf("tail%06d-%02d lost: %v", i, g, err)
			}
		}
	}
}
