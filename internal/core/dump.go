package core

import (
	"fmt"
	"io"

	"blinktree/internal/page"
)

// NodeInfo is a read-only snapshot of one node, exposed for tools, tests
// and the figure experiments (which assert the exact structures of the
// paper's Figures 1–3).
type NodeInfo struct {
	ID       page.PageID
	Kind     page.Kind
	Level    uint8
	Low      []byte
	High     []byte // nil = +inf
	Right    page.PageID
	DD       uint64
	Epoch    uint64
	Keys     [][]byte
	Children []page.PageID
	Size     int
}

// RootID returns the current root page (quiescent use).
func (t *Tree) RootID() page.PageID {
	id, _ := t.readAnchor()
	return id
}

// NodeSnapshot returns a copy of one node's state (quiescent use).
func (t *Tree) NodeSnapshot(id page.PageID) (NodeInfo, error) {
	n, err := t.fetch(id)
	if err != nil {
		return NodeInfo{}, err
	}
	defer t.pool.Unpin(id, false)
	info := NodeInfo{
		ID: n.id, Kind: n.c.Kind, Level: n.c.Level,
		Low: append([]byte(nil), n.c.Low...), Right: n.c.Right,
		DD: n.c.DD, Epoch: n.c.Epoch, Size: n.size(),
	}
	if n.c.High != nil {
		info.High = append([]byte(nil), n.c.High...)
	}
	for _, k := range n.c.Keys {
		info.Keys = append(info.Keys, append([]byte(nil), k...))
	}
	info.Children = append(info.Children, n.c.Children...)
	return info, nil
}

// LevelNodes returns the node IDs of one level, leftmost first (quiescent).
func (t *Tree) LevelNodes(lvl uint8) ([]page.PageID, error) {
	id, rootLvl := t.readAnchor()
	if lvl > rootLvl {
		return nil, fmt.Errorf("blinktree: level %d above root level %d", lvl, rootLvl)
	}
	// Descend to the leftmost node of the level.
	for {
		n, err := t.fetch(id)
		if err != nil {
			return nil, err
		}
		if n.level() == lvl {
			t.pool.Unpin(id, false)
			break
		}
		next := n.c.Children[0]
		t.pool.Unpin(id, false)
		id = next
	}
	var ids []page.PageID
	for id != 0 {
		ids = append(ids, id)
		n, err := t.fetch(id)
		if err != nil {
			return nil, err
		}
		next := n.c.Right
		t.pool.Unpin(id, false)
		id = next
	}
	return ids, nil
}

// Dump writes a human-readable rendering of the whole tree to w, one level
// per section, leftmost to rightmost (quiescent use). The blinkdump tool
// and the figures experiment use it.
func (t *Tree) Dump(w io.Writer) error {
	_, rootLvl := t.readAnchor()
	fmt.Fprintf(w, "root=%d height=%d D_X=%d\n", t.RootID(), rootLvl, t.DX())
	for lvl := int(rootLvl); lvl >= 0; lvl-- {
		ids, err := t.LevelNodes(uint8(lvl))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "level %d:\n", lvl)
		for _, id := range ids {
			info, err := t.NodeSnapshot(id)
			if err != nil {
				return err
			}
			high := "+inf"
			if info.High != nil {
				high = fmt.Sprintf("%q", info.High)
			}
			fmt.Fprintf(w, "  node %-4d [%q, %s) right=%-4d keys=%-4d size=%-5d",
				info.ID, info.Low, high, info.Right, len(info.Keys), info.Size)
			if info.Level == 1 {
				fmt.Fprintf(w, " D_D=%d", info.DD)
			}
			if info.Kind == page.Index {
				fmt.Fprintf(w, " children=%v", info.Children)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
