package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/obs"
	"blinktree/internal/page"
)

// actionKind identifies a queued structure modification.
type actionKind uint8

const (
	// actPost posts the index term for a completed half split (§3.2.3).
	actPost actionKind = iota + 1
	// actDelete consolidates an under-utilized node into its left sibling
	// (§3.2.4).
	actDelete
	// actShrink removes a root that has a single child and no sibling.
	actShrink
	// actReclaim retries deallocation of a dead node whose buffer frame
	// was still pinned by a concurrent reader.
	actReclaim
)

func (k actionKind) String() string {
	switch k {
	case actPost:
		return "post"
	case actDelete:
		return "delete"
	case actShrink:
		return "shrink"
	case actReclaim:
		return "reclaim"
	default:
		return fmt.Sprintf("action(%d)", uint8(k))
	}
}

// ref is a remembered node reference: the address plus the incarnation
// number that makes stale references detectable.
type ref struct {
	id    page.PageID
	epoch uint64
}

// action is one entry on the volatile to-do queue. Every action carries the
// delete state remembered when the need for it was discovered (§4.1.1): the
// worker aborts the action if the state has changed.
type action struct {
	kind  actionKind
	level uint8 // level of the split/victim node

	// actPost: origID split, producing newID whose low key is sep.
	// actDelete: origID is the victim, sep is its (immutable) low key.
	// actShrink/actReclaim: origID is the target.
	origID    page.PageID
	origEpoch uint64
	newID     page.PageID
	newEpoch  uint64
	sep       []byte

	// parent is the remembered parent from the traversal path; a zero ID
	// means the node was at root level (posts go through the grow path)
	// or the parent is unknown (deletes resolve it by traversal).
	parent ref

	// dx is the remembered global index-delete state D_X.
	dx uint64
	// dd is the remembered parent D_D, meaningful for leaf-level posts.
	dd uint64

	retries int

	// enqAt is the (re-)enqueue time, feeding the scheduler's
	// enqueue-to-process latency histogram.
	enqAt time.Time
}

// urgent reports whether the action repairs the upper index levels. A
// missing upper-level index term forces a side traversal on every traversal
// of the key space below it, so index-level posts and root shrinks drain
// before leaf-level work. Index-node deletes are NOT prioritized: they bump
// D_X, which would invalidate every action queued behind them.
func (a action) urgent() bool {
	return a.kind == actShrink || (a.kind == actPost && a.level >= 1)
}

// dedupKey identifies an action for duplicate-discovery collapsing. It is
// a comparable struct (not a formatted string) so the hot re-discovery
// paths allocate nothing.
type dedupKey struct {
	kind actionKind
	orig page.PageID
	new  page.PageID
}

func (a action) dedup() dedupKey {
	return dedupKey{kind: a.kind, orig: a.origID, new: a.newID}
}

// maxActionRetries bounds re-enqueues of one action (root-grow races,
// reclaim of a transiently pinned page). A dropped post or delete is always
// safe: the need for it is re-discovered (§2.3).
const maxActionRetries = 1000

// maxDrainSpins bounds drain's tolerance for actions that keep requeuing
// without the queue shrinking; past it drain bails out, counted by
// Stats.DrainBailouts (stuck actions keep the tree correct regardless).
const maxDrainSpins = 1_000_000

// todoLatencyBuckets is the number of enqueue-to-process latency buckets:
// <100µs, <1ms, <10ms, <100ms, ≥100ms.
const todoLatencyBuckets = 5

// todoShard is one independently locked slice of the maintenance scheduler.
// Actions are placed by hash of their origID, so duplicate discoveries of
// the same action always land on — and are collapsed by — the same shard.
type todoShard struct {
	mu      sync.Mutex
	urgent  []action // index-level posts and shrinks: drained first
	lazy    []action // leaf-level posts, consolidations, reclaims
	pending map[dedupKey]struct{}

	// highWater is the maximum queue depth this shard has seen (under mu).
	highWater int

	// pad keeps shards on separate cache lines so per-shard mutexes do not
	// false-share under concurrent enqueue/pop.
	_ [32]byte
}

// depth returns the queued-action count (mu held).
func (sh *todoShard) depth() int { return len(sh.urgent) + len(sh.lazy) }

// push appends an action to the level-appropriate queue (mu held).
func (sh *todoShard) push(a action) {
	if a.urgent() {
		sh.urgent = append(sh.urgent, a)
	} else {
		sh.lazy = append(sh.lazy, a)
	}
	if d := sh.depth(); d > sh.highWater {
		sh.highWater = d
	}
}

// pop removes the next action, urgent queue first (mu held).
func (sh *todoShard) pop(urgentOnly bool) (action, bool) {
	if len(sh.urgent) > 0 {
		a := sh.urgent[0]
		sh.urgent = sh.urgent[1:]
		return a, true
	}
	if urgentOnly || len(sh.lazy) == 0 {
		return action{}, false
	}
	a := sh.lazy[0]
	sh.lazy = sh.lazy[1:]
	return a, true
}

// todoQueue is the volatile maintenance scheduler for lazy structure
// modifications, with a small worker pool. It does not survive crashes and
// is never logged (§4.1.3).
//
// The scheduler is sharded: each shard has its own mutex, dedup map and
// level-ordered queues, keyed by hash of the action's origID, so enqueue,
// postPending probes and worker pops contend only per shard. Global state
// (queued/busy counts, the worker wake condition) is atomic or touched only
// when a sleeper exists.
type todoQueue struct {
	t *Tree

	shards []todoShard

	queued atomic.Int64 // actions sitting in shard queues
	busy   atomic.Int64 // actions currently being processed

	// totalHighWater tracks the maximum total queued depth.
	totalHighWater atomic.Int64

	// latency is the enqueue-to-process histogram (todoLatencyBuckets).
	latency [todoLatencyBuckets]atomic.Uint64

	// softCap is the backpressure threshold: when the total queued depth
	// exceeds it, a completing foreground operation processes one action
	// inline (the paper's atomic-action model permits any thread to run
	// any action). <= 0 disables backpressure.
	softCap int
	// assist gates backpressure on having background workers at all:
	// worker-less trees are driven deterministically via DrainTodo, and
	// inline assists would destroy that determinism.
	assist bool

	stopped atomic.Bool

	// wake coordinates sleeping workers and drain waiters. waiters is
	// checked without the mutex so un-contended enqueue/finish never
	// touch it.
	wakeMu  sync.Mutex
	wake    *sync.Cond
	waiters atomic.Int32

	// rr distributes pop scans across shards.
	rr atomic.Uint32

	// drainSpinLimit is maxDrainSpins, overridable by tests.
	drainSpinLimit int

	workers int
	wg      sync.WaitGroup
}

// todoShardCount derives the shard count: the next power of two at or above
// GOMAXPROCS, capped at 64.
func todoShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 64 {
		s <<= 1
	}
	return s
}

func newTodoQueue(t *Tree, workers int) *todoQueue {
	shards := t.opts.TodoShards
	if shards < 1 {
		shards = 1
	}
	q := &todoQueue{
		t:              t,
		shards:         make([]todoShard, shards),
		softCap:        t.opts.TodoSoftCap,
		assist:         workers > 0 && t.opts.TodoSoftCap > 0,
		drainSpinLimit: maxDrainSpins,
		workers:        workers,
	}
	for i := range q.shards {
		q.shards[i].pending = make(map[dedupKey]struct{})
	}
	q.wake = sync.NewCond(&q.wakeMu)
	return q
}

// shard returns the shard owning actions on origID. Fibonacci hashing
// spreads sequential page IDs; the shard count is a power of two.
func (q *todoQueue) shard(id page.PageID) *todoShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &q.shards[(h>>32)%uint64(len(q.shards))]
}

func (q *todoQueue) start() {
	for i := 0; i < q.workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
}

// postPending reports whether a posting for (orig, new) is already queued;
// hot paths (side traversals re-discover the same missing term on every
// pass) use it to skip building the action at all. Only the owning shard's
// mutex is taken.
func (q *todoQueue) postPending(origID, newID page.PageID) bool {
	key := dedupKey{kind: actPost, orig: origID, new: newID}
	sh := q.shard(origID)
	sh.mu.Lock()
	_, dup := sh.pending[key]
	sh.mu.Unlock()
	if dup {
		q.t.c.todoDedupHits.Add(1)
	}
	return dup
}

// enqueue adds an action unless an identical one is already pending.
func (q *todoQueue) enqueue(a action) {
	if q.stopped.Load() {
		return
	}
	key := a.dedup()
	a.enqAt = time.Now()
	sh := q.shard(a.origID)
	sh.mu.Lock()
	if _, dup := sh.pending[key]; dup {
		sh.mu.Unlock()
		q.t.c.todoDedupHits.Add(1)
		return
	}
	sh.pending[key] = struct{}{}
	sh.push(a)
	sh.mu.Unlock()
	q.t.traceSMO(obs.EvEnqueued, &a)
	q.bumpQueued()
	q.wakeWaiters()
}

// requeue re-adds an action that must be retried later (with backoff via
// retry counting; beyond the cap it is dropped and will be re-discovered).
func (q *todoQueue) requeue(a action) {
	a.retries++
	if a.retries > maxActionRetries {
		return
	}
	if q.stopped.Load() {
		return
	}
	a.enqAt = time.Now()
	sh := q.shard(a.origID)
	sh.mu.Lock()
	// Deliberately not deduplicated: the pending entry for this action is
	// removed by the worker after process() returns, so re-adding under
	// the same key here keeps the slot occupied.
	sh.push(a)
	sh.mu.Unlock()
	q.t.traceSMO(obs.EvRequeued, &a)
	q.bumpQueued()
	q.wakeWaiters()
}

// bumpQueued increments the global depth and maintains its high-water mark.
func (q *todoQueue) bumpQueued() {
	total := q.queued.Add(1)
	for {
		hw := q.totalHighWater.Load()
		if total <= hw || q.totalHighWater.CompareAndSwap(hw, total) {
			return
		}
	}
}

// wakeWaiters wakes sleeping workers/drainers, touching the mutex only when
// someone is actually asleep.
func (q *todoQueue) wakeWaiters() {
	if q.waiters.Load() == 0 {
		return
	}
	q.wakeMu.Lock()
	q.wake.Broadcast()
	q.wakeMu.Unlock()
}

func (q *todoQueue) len() int {
	return int(q.queued.Load() + q.busy.Load())
}

// tryPop removes the next action without blocking. Two passes over the
// shards (round-robin from a rotating start) give index-level work global
// priority over leaf-level work.
func (q *todoQueue) tryPop() (action, bool) {
	if q.queued.Load() == 0 {
		return action{}, false
	}
	n := len(q.shards)
	start := int(q.rr.Add(1))
	for _, urgentOnly := range [2]bool{true, false} {
		for i := 0; i < n; i++ {
			sh := &q.shards[(start+i)%n]
			sh.mu.Lock()
			a, ok := sh.pop(urgentOnly)
			sh.mu.Unlock()
			if ok {
				q.busy.Add(1)
				q.queued.Add(-1)
				q.observeLatency(a)
				return a, true
			}
		}
	}
	return action{}, false
}

// observeLatency buckets the action's enqueue-to-process latency.
func (q *todoQueue) observeLatency(a action) {
	if a.enqAt.IsZero() {
		return
	}
	d := time.Since(a.enqAt)
	var b int
	switch {
	case d < 100*time.Microsecond:
		b = 0
	case d < time.Millisecond:
		b = 1
	case d < 10*time.Millisecond:
		b = 2
	case d < 100*time.Millisecond:
		b = 3
	default:
		b = 4
	}
	q.latency[b].Add(1)
}

// finish marks an action's processing complete and clears its dedup slot.
func (q *todoQueue) finish(a action) {
	sh := q.shard(a.origID)
	sh.mu.Lock()
	delete(sh.pending, a.dedup())
	sh.mu.Unlock()
	q.busy.Add(-1)
	q.wakeWaiters()
}

// run processes one popped action and releases its slot.
func (q *todoQueue) run(a action) {
	q.t.processActionGated(a)
	q.finish(a)
}

// runGated is run behind the checkpoint gate: workers and inline assists
// mutate pages concurrently with everything else, so a sharp checkpoint
// must be able to quiesce them exactly like foreground operations (the
// pool's FlushAll contract: no page may be modified during the flush).
// Drain paths use the ungated run — BulkLoad drains while holding the gate
// exclusively on the same goroutine.
func (q *todoQueue) runGated(a action) {
	q.t.ckpt.RLock()
	q.t.processActionGated(a)
	q.t.ckpt.RUnlock()
	q.finish(a)
}

func (q *todoQueue) worker() {
	defer q.wg.Done()
	for {
		if q.stopped.Load() {
			return
		}
		if a, ok := q.tryPop(); ok {
			q.runGated(a)
			continue
		}
		q.wakeMu.Lock()
		q.waiters.Add(1)
		for q.queued.Load() == 0 && !q.stopped.Load() {
			q.wake.Wait()
		}
		q.waiters.Add(-1)
		q.wakeMu.Unlock()
	}
}

// maybeAssist is the backpressure hook, called by foreground operations as
// they complete (no latches held): past the soft cap the operation
// processes one action inline, throttling producers to the rate the
// maintenance machinery can sustain.
func (q *todoQueue) maybeAssist() {
	if !q.assist || q.stopped.Load() {
		return
	}
	if int(q.queued.Load()) <= q.softCap {
		return
	}
	if a, ok := q.tryPop(); ok {
		q.t.c.todoInlineAssists.Add(1)
		q.runGated(a)
	}
}

// drain processes queued actions in the calling goroutine until every shard
// is empty and all workers are idle. Actions that keep requeuing (e.g. a
// reclaim blocked on a concurrent pin) get a tiny sleep so their blocker
// can progress; a queue that refuses to shrink for drainSpinLimit rounds
// makes drain bail out, counted in Stats.DrainBailouts (stuck actions keep
// the tree correct regardless — the need is re-discovered).
func (q *todoQueue) drain() {
	spins := 0
	for {
		a, ok := q.tryPop()
		if !ok {
			if q.queued.Load() > 0 {
				// Raced with a concurrent pop mid-bookkeeping: rescan.
				runtime.Gosched()
				continue
			}
			if q.busy.Load() == 0 {
				return
			}
			// Workers are mid-action: wait for them (they may enqueue
			// follow-up work before finishing).
			q.wakeMu.Lock()
			q.waiters.Add(1)
			for q.queued.Load() == 0 && q.busy.Load() > 0 && !q.stopped.Load() {
				q.wake.Wait()
			}
			q.waiters.Add(-1)
			q.wakeMu.Unlock()
			if q.stopped.Load() {
				return
			}
			continue
		}

		before := q.len() // includes the action just popped (busy)
		q.run(a)
		if q.len() >= before {
			spins++
			if spins%64 == 0 {
				time.Sleep(100 * time.Microsecond)
			}
			if spins > q.drainSpinLimit {
				q.t.c.drainBailouts.Add(1)
				q.t.traceSMO(obs.EvDrainBailout, &a)
				return
			}
		} else {
			spins = 0
		}
	}
}

// takeAll empties every shard and returns the captured actions, clearing
// all dedup slots. Diagnostic harnesses (the figure walkthrough) use it to
// intercept queued actions for manual processing.
func (q *todoQueue) takeAll() []action {
	var out []action
	for i := range q.shards {
		sh := &q.shards[i]
		sh.mu.Lock()
		taken := len(sh.urgent) + len(sh.lazy)
		out = append(out, sh.urgent...)
		out = append(out, sh.lazy...)
		sh.urgent, sh.lazy = nil, nil
		for k := range sh.pending {
			delete(sh.pending, k)
		}
		sh.mu.Unlock()
		q.queued.Add(-int64(taken))
	}
	return out
}

// stop shuts the scheduler down, discarding pending actions (they are
// volatile by design) after giving workers a chance to finish the current
// one.
func (q *todoQueue) stop() {
	q.stopped.Store(true)
	q.wakeMu.Lock()
	q.wake.Broadcast()
	q.wakeMu.Unlock()
	q.wg.Wait()
}

// SchedulerStats is a snapshot of the maintenance scheduler's internals:
// shard layout, queue depth high-water marks, backpressure and dedup
// activity, and the enqueue-to-process latency histogram.
type SchedulerStats struct {
	// Shards is the configured shard count.
	Shards int
	// SoftCap is the backpressure threshold (0 = disabled).
	SoftCap int
	// QueueHighWater is the maximum total queued depth observed.
	QueueHighWater uint64
	// ShardHighWater is each shard's maximum queued depth.
	ShardHighWater []uint64
	// InlineAssists counts foreground operations that processed an action
	// inline because the queue was over the soft cap.
	InlineAssists uint64
	// DedupHits counts enqueues and pending-probes collapsed onto an
	// already-queued identical action.
	DedupHits uint64
	// DrainBailouts counts DrainTodo calls that gave up on a queue that
	// refused to shrink (perpetually requeuing actions).
	DrainBailouts uint64
	// LatencyBuckets is the enqueue-to-process histogram:
	// <100µs, <1ms, <10ms, <100ms, ≥100ms.
	LatencyBuckets [todoLatencyBuckets]uint64
}

// snapshot collects the scheduler observability counters.
func (q *todoQueue) snapshot() SchedulerStats {
	s := SchedulerStats{
		Shards:         len(q.shards),
		SoftCap:        q.softCap,
		QueueHighWater: uint64(q.totalHighWater.Load()),
		ShardHighWater: make([]uint64, len(q.shards)),
		InlineAssists:  q.t.c.todoInlineAssists.Load(),
		DedupHits:      q.t.c.todoDedupHits.Load(),
		DrainBailouts:  q.t.c.drainBailouts.Load(),
	}
	for i := range q.shards {
		sh := &q.shards[i]
		sh.mu.Lock()
		s.ShardHighWater[i] = uint64(sh.highWater)
		sh.mu.Unlock()
	}
	for i := range q.latency {
		s.LatencyBuckets[i] = q.latency[i].Load()
	}
	return s
}
