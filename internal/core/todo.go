package core

import (
	"fmt"
	"sync"
	"time"

	"blinktree/internal/page"
)

// actionKind identifies a queued structure modification.
type actionKind uint8

const (
	// actPost posts the index term for a completed half split (§3.2.3).
	actPost actionKind = iota + 1
	// actDelete consolidates an under-utilized node into its left sibling
	// (§3.2.4).
	actDelete
	// actShrink removes a root that has a single child and no sibling.
	actShrink
	// actReclaim retries deallocation of a dead node whose buffer frame
	// was still pinned by a concurrent reader.
	actReclaim
)

func (k actionKind) String() string {
	switch k {
	case actPost:
		return "post"
	case actDelete:
		return "delete"
	case actShrink:
		return "shrink"
	case actReclaim:
		return "reclaim"
	default:
		return fmt.Sprintf("action(%d)", uint8(k))
	}
}

// ref is a remembered node reference: the address plus the incarnation
// number that makes stale references detectable.
type ref struct {
	id    page.PageID
	epoch uint64
}

// action is one entry on the volatile to-do queue. Every action carries the
// delete state remembered when the need for it was discovered (§4.1.1): the
// worker aborts the action if the state has changed.
type action struct {
	kind  actionKind
	level uint8 // level of the split/victim node

	// actPost: origID split, producing newID whose low key is sep.
	// actDelete: origID is the victim, sep is its (immutable) low key.
	// actShrink/actReclaim: origID is the target.
	origID    page.PageID
	origEpoch uint64
	newID     page.PageID
	newEpoch  uint64
	sep       []byte

	// parent is the remembered parent from the traversal path; a zero ID
	// means the node was at root level (posts go through the grow path)
	// or the parent is unknown (deletes resolve it by traversal).
	parent ref

	// dx is the remembered global index-delete state D_X.
	dx uint64
	// dd is the remembered parent D_D, meaningful for leaf-level posts.
	dd uint64

	retries int
}

// dedupKey identifies an action for duplicate-discovery collapsing. It is
// a comparable struct (not a formatted string) so the hot re-discovery
// paths allocate nothing.
type dedupKey struct {
	kind actionKind
	orig page.PageID
	new  page.PageID
}

func (a action) dedup() dedupKey {
	return dedupKey{kind: a.kind, orig: a.origID, new: a.newID}
}

// maxActionRetries bounds re-enqueues of one action (root-grow races,
// reclaim of a transiently pinned page). A dropped post or delete is always
// safe: the need for it is re-discovered (§2.3).
const maxActionRetries = 1000

// todoQueue is the volatile queue of lazy structure modifications with a
// small worker pool. It does not survive crashes and is never logged
// (§4.1.3).
type todoQueue struct {
	t *Tree

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []action
	pending map[dedupKey]struct{}
	busy    int
	stopped bool

	workers int
	wg      sync.WaitGroup
}

func newTodoQueue(t *Tree, workers int) *todoQueue {
	q := &todoQueue{
		t:       t,
		pending: make(map[dedupKey]struct{}),
		workers: workers,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *todoQueue) start() {
	for i := 0; i < q.workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
}

// postPending reports whether a posting for (orig, new) is already queued;
// hot paths (side traversals re-discover the same missing term on every
// pass) use it to skip building the action at all.
func (q *todoQueue) postPending(origID, newID page.PageID) bool {
	key := dedupKey{kind: actPost, orig: origID, new: newID}
	q.mu.Lock()
	_, dup := q.pending[key]
	q.mu.Unlock()
	return dup
}

// enqueue adds an action unless an identical one is already pending.
func (q *todoQueue) enqueue(a action) {
	key := a.dedup()
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return
	}
	if _, dup := q.pending[key]; dup {
		q.mu.Unlock()
		return
	}
	q.pending[key] = struct{}{}
	q.queue = append(q.queue, a)
	q.cond.Signal()
	q.mu.Unlock()
}

// requeue re-adds an action that must be retried later (with backoff via
// retry counting; beyond the cap it is dropped and will be re-discovered).
func (q *todoQueue) requeue(a action) {
	a.retries++
	if a.retries > maxActionRetries {
		return
	}
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return
	}
	// Deliberately not deduplicated: the pending entry for this action is
	// removed by the worker after process() returns, so re-adding under
	// the same key here keeps the slot occupied.
	q.queue = append(q.queue, a)
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *todoQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue) + q.busy
}

// tryPop removes the next action without blocking.
func (q *todoQueue) tryPop() (action, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queue) == 0 {
		return action{}, false
	}
	a := q.queue[0]
	q.queue = q.queue[1:]
	q.busy++
	return a, true
}

// pop removes the next action; blocks until one is available or the queue
// is stopped (ok=false).
func (q *todoQueue) pop() (action, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.queue) == 0 && !q.stopped {
		q.cond.Wait()
	}
	if q.stopped && len(q.queue) == 0 {
		return action{}, false
	}
	a := q.queue[0]
	q.queue = q.queue[1:]
	q.busy++
	return a, true
}

// finish marks an action's processing complete and clears its dedup slot.
func (q *todoQueue) finish(a action) {
	q.mu.Lock()
	delete(q.pending, a.dedup())
	q.busy--
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *todoQueue) worker() {
	defer q.wg.Done()
	for {
		a, ok := q.pop()
		if !ok {
			return
		}
		q.t.processActionGated(a)
		q.finish(a)
	}
}

// drain processes queued actions in the calling goroutine until the queue
// is empty and all workers are idle. Actions that keep requeuing (e.g. a
// reclaim blocked on a concurrent pin) get a tiny sleep so their blocker
// can progress.
func (q *todoQueue) drain() {
	spins := 0
	for {
		q.mu.Lock()
		if len(q.queue) == 0 {
			if q.busy == 0 {
				q.mu.Unlock()
				return
			}
			// Workers are mid-action: wait for them.
			q.cond.Wait()
			q.mu.Unlock()
			continue
		}
		a := q.queue[0]
		q.queue = q.queue[1:]
		q.busy++
		q.mu.Unlock()

		before := q.len()
		q.t.processActionGated(a)
		q.finish(a)
		if q.len() >= before {
			spins++
			if spins%64 == 0 {
				time.Sleep(100 * time.Microsecond)
			}
			if spins > 1_000_000 {
				return // stuck actions keep the tree correct regardless
			}
		} else {
			spins = 0
		}
	}
}

// stop shuts the queue down, discarding pending actions (they are volatile
// by design) after giving workers a chance to finish the current one.
func (q *todoQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wg.Wait()
}
