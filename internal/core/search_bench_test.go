package core

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkKeySearch measures the shared in-node binary search helpers that
// every traversal step funnels through (satellite of the optimistic read
// path: one descent is a handful of these plus pointer chases).
func BenchmarkKeySearch(b *testing.B) {
	cmp := bytes.Compare
	for _, n := range []int{16, 64, 256} {
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%06d", i*3))
		}
		probe := make([][]byte, 64)
		for i := range probe {
			probe[i] = []byte(fmt.Sprintf("key-%06d", (i*97)%(n*3)))
		}
		b.Run(fmt.Sprintf("lowerBound/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lowerBound(cmp, keys, probe[i%len(probe)])
			}
		})
		b.Run(fmt.Sprintf("keySearch/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				keySearch(cmp, keys, probe[i%len(probe)])
			}
		})
		b.Run(fmt.Sprintf("childIndex/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				childIndex(cmp, keys, probe[i%len(probe)])
			}
		})
	}
}
