package core

import "sync/atomic"

// Stats is a snapshot of tree activity counters. The experiment harness
// reads these to report the quantities the paper argues about: side
// traversals (lazy posting cost), SMO aborts from delete-state changes
// (robustness mechanism firing), leaf vs index delete counts (the ">99% are
// data node deletes" claim), and re-latch traffic (§2.4).
type Stats struct {
	// Operations.
	Searches uint64
	Inserts  uint64
	Updates  uint64
	Deletes  uint64
	Scans    uint64

	// Traversal behaviour.
	SideTraversals    uint64 // rightward moves during traversal
	Restarts          uint64 // traversals restarted from the root
	TraverseExhausted uint64 // traversals that hit the restart budget (live-lock)

	// Optimistic read path (latch-free descent, see optread.go).
	OptReadAttempts  uint64 // optimistic descents started
	OptReadRestarts  uint64 // attempts invalidated (version/fence/dead check)
	OptReadFallbacks uint64 // reads that fell back to the latched traversal

	// Splits and postings.
	Splits         uint64 // first half splits performed inline
	PostsEnqueued  uint64
	PostsDone      uint64 // index terms actually posted
	PostsDuplicate uint64 // posting found the term already present
	PostsAbortDX   uint64 // aborted: D_X changed
	PostsAbortDD   uint64 // aborted: D_D changed
	PostsAbortID   uint64 // aborted: parent identity (epoch) changed
	PostsRequeued  uint64 // root-grow race: action deferred

	// Node deletes.
	DeletesEnqueued   uint64
	LeafConsolidated  uint64 // data nodes consolidated
	IndexConsolidated uint64 // index nodes consolidated
	DeleteAbortDX     uint64 // aborted: D_X changed
	DeleteAbortID     uint64 // aborted: parent identity changed
	DeleteAbortEdge   uint64 // aborted: leftmost child / sibling mismatch
	DeleteSkipFit     uint64 // skipped: refilled or does not fit in sibling

	// Root SMOs.
	Grows   uint64
	Shrinks uint64

	// Delete state traffic.
	DXIncrements uint64
	DDIncrements uint64

	// Lock/latch interaction (§2.4).
	NoWaitDenied  uint64 // record lock no-wait requests that were refused
	Relatches     uint64 // re-latch procedure invocations
	RelatchFast   uint64 // re-latch took the D_D fast path to the leaf
	TxnAbortsDX   uint64 // transactions aborted because D_X changed
	TxnDeadlocks  uint64 // transactions aborted as deadlock victims
	TxnCommits    uint64
	TxnAborts     uint64
	ReclaimRetry  uint64 // page reclaim retried due to concurrent pin
	TodoProcessed uint64

	// Maintenance scheduler (per-shard detail in Tree.SchedulerStats).
	TodoInlineAssists  uint64 // foreground ops that ran an action inline (backpressure)
	TodoDedupHits      uint64 // enqueues/probes collapsed onto a pending duplicate
	TodoQueueHighWater uint64 // maximum total queued actions observed
	DrainBailouts      uint64 // DrainTodo gave up on a non-shrinking queue

	// Hot-leaf operation combining (combine.go).
	CombinePublishes uint64 // operations published into a combining buffer
	CombineDrained   uint64 // published operations applied by a drain
	CombineRetries   uint64 // published operations resolved as retry (SMO raced)
	CombineBatches   uint64 // drains that applied at least one operation

	// Right-edge append fast path (appendfast.go).
	AppendFastHits   uint64 // inserts served by the cached rightmost leaf
	AppendFastMisses uint64 // fast-path attempts that fell back to traversal

	// Bulk load (bulkload.go).
	BulkLoadPages  uint64 // pages built by bulk loads (leaves + index nodes)
	BulkLoadChunks uint64 // chunks dispatched/logged by bulk loads
}

// counters is the atomic backing for Stats.
type counters struct {
	searches, inserts, updates, deletes, scans       atomic.Uint64
	sideTraversals, restarts, traverseExhausted      atomic.Uint64
	optAttempts, optRestarts, optFallbacks           atomic.Uint64
	splits, postsEnqueued, postsDone, postsDuplicate atomic.Uint64
	postsAbortDX, postsAbortDD, postsAbortID         atomic.Uint64
	postsRequeued                                    atomic.Uint64
	deletesEnqueued, leafConsolidated                atomic.Uint64
	indexConsolidated, deleteAbortDX, deleteAbortID  atomic.Uint64
	deleteAbortEdge, deleteSkipFit                   atomic.Uint64
	grows, shrinks                                   atomic.Uint64
	dxIncrements, ddIncrements                       atomic.Uint64
	noWaitDenied, relatches, relatchFast             atomic.Uint64
	txnAbortsDX, txnDeadlocks, txnCommits, txnAborts atomic.Uint64
	reclaimRetry, todoProcessed                      atomic.Uint64
	todoInlineAssists, todoDedupHits, drainBailouts  atomic.Uint64
	combinePublishes, combineDrained                 atomic.Uint64
	combineRetries, combineBatches                   atomic.Uint64
	appendFastHits, appendFastMisses                 atomic.Uint64
	bulkLoadPages, bulkLoadChunks                    atomic.Uint64
}

// snapshot copies the counters into a Stats value.
func (c *counters) snapshot() Stats {
	return Stats{
		Searches:          c.searches.Load(),
		Inserts:           c.inserts.Load(),
		Updates:           c.updates.Load(),
		Deletes:           c.deletes.Load(),
		Scans:             c.scans.Load(),
		SideTraversals:    c.sideTraversals.Load(),
		Restarts:          c.restarts.Load(),
		TraverseExhausted: c.traverseExhausted.Load(),
		OptReadAttempts:   c.optAttempts.Load(),
		OptReadRestarts:   c.optRestarts.Load(),
		OptReadFallbacks:  c.optFallbacks.Load(),
		Splits:            c.splits.Load(),
		PostsEnqueued:     c.postsEnqueued.Load(),
		PostsDone:         c.postsDone.Load(),
		PostsDuplicate:    c.postsDuplicate.Load(),
		PostsAbortDX:      c.postsAbortDX.Load(),
		PostsAbortDD:      c.postsAbortDD.Load(),
		PostsAbortID:      c.postsAbortID.Load(),
		PostsRequeued:     c.postsRequeued.Load(),
		DeletesEnqueued:   c.deletesEnqueued.Load(),
		LeafConsolidated:  c.leafConsolidated.Load(),
		IndexConsolidated: c.indexConsolidated.Load(),
		DeleteAbortDX:     c.deleteAbortDX.Load(),
		DeleteAbortID:     c.deleteAbortID.Load(),
		DeleteAbortEdge:   c.deleteAbortEdge.Load(),
		DeleteSkipFit:     c.deleteSkipFit.Load(),
		Grows:             c.grows.Load(),
		Shrinks:           c.shrinks.Load(),
		DXIncrements:      c.dxIncrements.Load(),
		DDIncrements:      c.ddIncrements.Load(),
		NoWaitDenied:      c.noWaitDenied.Load(),
		Relatches:         c.relatches.Load(),
		RelatchFast:       c.relatchFast.Load(),
		TxnAbortsDX:       c.txnAbortsDX.Load(),
		TxnDeadlocks:      c.txnDeadlocks.Load(),
		TxnCommits:        c.txnCommits.Load(),
		TxnAborts:         c.txnAborts.Load(),
		ReclaimRetry:      c.reclaimRetry.Load(),
		TodoProcessed:     c.todoProcessed.Load(),
		TodoInlineAssists: c.todoInlineAssists.Load(),
		TodoDedupHits:     c.todoDedupHits.Load(),
		DrainBailouts:     c.drainBailouts.Load(),
		CombinePublishes:  c.combinePublishes.Load(),
		CombineDrained:    c.combineDrained.Load(),
		CombineRetries:    c.combineRetries.Load(),
		CombineBatches:    c.combineBatches.Load(),
		AppendFastHits:    c.appendFastHits.Load(),
		AppendFastMisses:  c.appendFastMisses.Load(),
		BulkLoadPages:     c.bulkLoadPages.Load(),
		BulkLoadChunks:    c.bulkLoadChunks.Load(),
	}
}
