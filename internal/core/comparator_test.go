package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// caseInsensitive orders ASCII keys ignoring case, falling back to bytewise
// for ties (so distinct byte strings of the same folded form are equal only
// when byte-identical... no: fold fully — "A" == "a"). Empty sorts lowest.
func caseInsensitive(a, b []byte) int {
	return bytes.Compare(bytes.ToLower(a), bytes.ToLower(b))
}

// shortlex orders keys by length first, then bytewise: a valid comparator
// (empty key lowest) whose order differs sharply from bytewise.
func shortlex(a, b []byte) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	return bytes.Compare(a, b)
}

func TestCustomComparatorCaseInsensitive(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Compare: caseInsensitive})
	if err := tr.Put([]byte("Hello"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Same key under folding: an overwrite, not a second record.
	if err := tr.Put([]byte("hello"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("HELLO"))
	if err != nil || string(got) != "2" {
		t.Fatalf("Get folded = %q, %v", got, err)
	}
	if n, _ := tr.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if err := tr.Delete([]byte("hElLo")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get([]byte("Hello")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("after folded delete: %v", err)
	}
}

func TestCustomComparatorShortlexFullLifecycle(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.4, Compare: shortlex})
	// Keys whose shortlex order differs from bytewise: "z" < "aa" < "zz" < "aaa".
	var keys [][]byte
	for i := 0; i < 1500; i++ {
		keys = append(keys, []byte(fmt.Sprintf("%s%d", strings.Repeat("k", i%20+1), i)))
	}
	for i, k := range keys {
		if err := tr.Put(k, valb(i)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	mustVerify(t, tr)
	for i, k := range keys {
		got, err := tr.Get(k)
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("get %q: %q, %v", k, got, err)
		}
	}
	// Scans must come out in SHORTLEX order, not bytewise.
	var scanned [][]byte
	tr.Scan(nil, nil, func(k, _ []byte) bool {
		scanned = append(scanned, append([]byte(nil), k...))
		return true
	})
	if len(scanned) != len(keys) {
		t.Fatalf("scan saw %d, want %d", len(scanned), len(keys))
	}
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return shortlex(sorted[i], sorted[j]) < 0 })
	for i := range sorted {
		if !bytes.Equal(sorted[i], scanned[i]) {
			t.Fatalf("scan order diverges at %d: %q vs %q", i, scanned[i], sorted[i])
		}
	}
	// Reverse scan mirrors it.
	var rev [][]byte
	tr.ScanReverse(nil, nil, func(k, _ []byte) bool {
		rev = append(rev, append([]byte(nil), k...))
		return true
	})
	if len(rev) != len(keys) {
		t.Fatalf("reverse scan saw %d", len(rev))
	}
	for i := range rev {
		if !bytes.Equal(rev[i], sorted[len(sorted)-1-i]) {
			t.Fatalf("reverse order diverges at %d", i)
		}
	}
	// Deletes drive consolidation under the custom order.
	for i, k := range keys {
		if i%10 != 0 {
			if err := tr.Delete(k); err != nil {
				t.Fatalf("delete %q: %v", k, err)
			}
		}
	}
	for r := 0; r < 4; r++ {
		tr.DrainTodo()
		tr.Has(keys[0])
	}
	mustVerify(t, tr)
	if tr.Stats().LeafConsolidated == 0 {
		t.Fatal("no consolidation under custom comparator")
	}
}

func TestCustomComparatorCrashRecovery(t *testing.T) {
	dev := wal.NewMemDevice()
	mk := func() *Tree {
		tr, err := New(Options{
			PageSize: 512, Compare: shortlex, Workers: WorkersNone,
			Store: storage.NewMemStore(512), LogDevice: dev,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr := mk()
	for i := 0; i < 400; i++ {
		tr.Put([]byte(fmt.Sprintf("%s%d", strings.Repeat("x", i%15+1), i)), valb(i))
	}
	tr.FlushLog()
	dev.Crash()
	tr.Abandon()

	tr2 := mk()
	defer tr2.Close()
	mustVerify(t, tr2)
	if n, _ := tr2.Len(); n != 400 {
		t.Fatalf("recovered %d records", n)
	}
}

func TestCustomComparatorNoTruncation(t *testing.T) {
	// With a custom comparator, separators must be full keys: truncation
	// assumes bytewise prefix ordering.
	tr := newTestTree(t, Options{PageSize: 512, Compare: shortlex})
	for i := 0; i < 400; i++ {
		tr.Put([]byte(fmt.Sprintf("%020d", i)), valb(i))
	}
	mustVerify(t, tr)
	leaves, err := tr.LevelNodes(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range leaves {
		info, _ := tr.NodeSnapshot(id)
		if info.High != nil && len(info.High) != 20 {
			t.Fatalf("truncated separator %q under custom comparator", info.High)
		}
	}
}
