package core

import (
	"bytes"
	"fmt"
	"io"
)

func figKey(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func figVal(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

// WriteFigureWalkthrough drives a small tree through the exact states of
// the paper's Figures 1–4 and renders each state to w. The blinkbench tool
// exposes it as the "figures" experiment; the figure unit tests assert the
// same states programmatically.
func WriteFigureWalkthrough(w io.Writer) error {
	tr, err := New(Options{PageSize: 512, MinFill: 0.4, Workers: WorkersNone})
	if err != nil {
		return err
	}
	defer tr.Close()

	// Build a two-level tree: a parent with a handful of leaves.
	for i := 0; i < 300; i++ {
		if err := tr.Put(figKey(i), figVal(i)); err != nil {
			return err
		}
	}
	tr.DrainTodo()

	// Figure 1: fill one leaf (call it F) until it is full.
	fmt.Fprintln(w, "--- Figure 1: B-link tree before split; node F is full ---")
	takeAll := tr.todo.takeAll
	takeAll()
	splitsBefore := tr.Stats().Splits
	var post action
	i := 0
	for tr.Stats().Splits == splitsBefore {
		k := []byte(string(figKey(10)) + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
		if err := tr.Put(k, bytes.Repeat([]byte("x"), 30)); err != nil {
			return err
		}
		i++
	}
	for _, a := range takeAll() {
		if a.kind == actPost {
			post = a
		}
	}
	if post.kind != actPost {
		return fmt.Errorf("figures: no post action captured")
	}
	f, _ := tr.NodeSnapshot(post.origID)
	g, _ := tr.NodeSnapshot(post.newID)
	p, _ := tr.NodeSnapshot(post.parent.id)
	fmt.Fprintf(w, "F = node %d, parent = node %d\n\n", f.ID, p.ID)

	fmt.Fprintln(w, "--- Figure 2: first half split — F's contents divided between F and G ---")
	fmt.Fprintf(w, "F: node %d [%q, %q) side pointer -> G (node %d)\n", f.ID, f.Low, f.High, f.Right)
	fmt.Fprintf(w, "G: node %d [%q, %s) keys=%d\n", g.ID, g.Low, highString(g.High), len(g.Keys))
	inParent := false
	for _, c := range p.Children {
		if c == g.ID {
			inParent = true
		}
	}
	fmt.Fprintf(w, "G referenced by an index term in parent: %v (data reached via side traversal)\n", inParent)
	side := tr.Stats().SideTraversals
	if _, err := tr.Get(g.Keys[0]); err != nil {
		return fmt.Errorf("figures: key in G unreachable: %w", err)
	}
	fmt.Fprintf(w, "lookup of a key in G used %d side traversal(s)\n\n", tr.Stats().SideTraversals-side)

	fmt.Fprintln(w, "--- Figure 3: second half split — index term for G posted to parent ---")
	tr.processPost(post)
	p3, _ := tr.NodeSnapshot(post.parent.id)
	inParent = false
	for _, c := range p3.Children {
		if c == g.ID {
			inParent = true
		}
	}
	fmt.Fprintf(w, "G referenced by an index term in parent: %v\n", inParent)
	side = tr.Stats().SideTraversals
	tr.Get(g.Keys[0])
	fmt.Fprintf(w, "lookup of a key in G now uses %d side traversal(s)\n\n", tr.Stats().SideTraversals-side)

	fmt.Fprintln(w, "--- Figure 4: access parent checks D_X, then D_D in the parent ---")
	post2 := post
	post2.dx = tr.DX() + 1 // as if remembered before an index-node delete
	before := tr.Stats().PostsAbortDX
	tr.processPost(post2)
	fmt.Fprintf(w, "posting with stale D_X: aborted (abort count %d -> %d)\n",
		before, tr.Stats().PostsAbortDX)
	post3 := post
	post3.dd = post.dd + 1 // as if a data node under the parent was deleted
	beforeDD := tr.Stats().PostsAbortDD
	tr.processPost(post3)
	fmt.Fprintf(w, "posting with stale D_D: aborted (abort count %d -> %d)\n",
		beforeDD, tr.Stats().PostsAbortDD)
	fmt.Fprintln(w, "the tree remains search-correct throughout; the posting is re-discovered lazily")
	tr.DrainTodo()
	if err := tr.Verify(); err != nil {
		return fmt.Errorf("figures: final verify: %w", err)
	}
	fmt.Fprintln(w, "\nfinal tree:")
	return tr.Dump(w)
}
