package core

import (
	"fmt"

	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// processActionGated runs one to-do action, serialized under the global
// tree latch when the ARIES/IM comparator is configured, and piggybacks
// drain-policy husk reclamation.
func (t *Tree) processActionGated(a action) {
	if t.opts.SerializeSMO {
		t.smoMu.Lock()
		t.processAction(a)
		t.smoMu.Unlock()
	} else {
		t.processAction(a)
	}
	if t.opts.DeletePolicy == Drain {
		t.drainReclaim(false)
	}
}

// serializedSplit is the ARIES/IM comparator's split path: the whole
// structure modification — leaf split, index-term postings, any recursive
// parent splits — runs to completion under the global tree latch before the
// triggering operation proceeds. No latches are held on entry.
func (t *Tree) serializedSplit(key []byte, need int) error {
	t.smoMu.Lock()
	defer t.smoMu.Unlock()
	dx := t.dx.v.Load()
	leaf, path, err := t.traverse(traverseOpts{
		key: key, intent: latch.Update, promote: true, dx: dx,
	})
	if err != nil {
		return err
	}
	if leaf.size()+need > t.opts.PageSize && len(leaf.c.Keys) >= 2 {
		parent, dd := parentFromPath(path)
		err = t.splitLocked(leaf, parent, dd, dx)
	}
	t.unlatchUnpin(leaf, latch.Exclusive, true)
	if err != nil {
		return err
	}
	// Eagerly complete every queued structure modification (postings and
	// their recursive splits) while holding the tree latch.
	for {
		a, ok := t.todo.tryPop()
		if !ok {
			return nil
		}
		t.processAction(a)
		t.todo.finish(a)
	}
}

// processAction executes one lazy structure modification from the to-do
// queue. Actions run with no latches held on entry (a precondition of
// access parent, §3.2.2); failures abandon the action — the B-link tree
// stays search-correct and the need is re-discovered (§2.3).
func (t *Tree) processAction(a action) {
	t.c.todoProcessed.Add(1)
	t.traceSMO(obs.EvStarted, &a)
	t0 := t.obsStart()
	switch a.kind {
	case actPost:
		t.processPost(a)
	case actDelete:
		t.processDelete(a)
	case actShrink:
		t.processShrink(a)
	case actReclaim:
		t.reclaimAction(a)
	}
	t.obsActionDone(a.kind, t0)
}

// accessParent implements the paper's access parent routine (A.3): it
// encapsulates all testing and updating of both delete states, and returns
// the current parent node latched (Update mode for posts, Exclusive for
// deletes) and pinned. Because of concurrent splitting the returned node
// may be a right sibling of the remembered parent. An errDeleteState return
// means the action must be abandoned.
func (t *Tree) accessParent(a *action, forDelete bool) (*node, error) {
	checkState := !t.opts.NoDeleteSupport
	dxMode := latch.Shared
	if forDelete {
		dxMode = latch.Exclusive
	}
	if checkState {
		// Step 1–2: latch D_X (coupled with the parent latch below) and
		// test it. If any index node was deleted since the action was
		// remembered, the parent may be gone: abandon.
		t.dx.l.Acquire(dxMode)
		if seen := t.dx.v.Load(); seen != a.dx {
			t.dx.l.Release(dxMode)
			t.traceAbort(obs.EvAbortDX, a, a.dx, seen)
			return nil, errDeleteState
		}
		// Step 3: an index-node delete updates D_X now, before the
		// consolidation happens. Conservative: even if the consolidation
		// later aborts, the increment only causes extra abandons.
		if forDelete && a.level >= 1 {
			t.dx.v.Add(1)
			t.c.dxIncrements.Add(1)
		}
	}

	// Step 4: latch the remembered parent, then release D_X.
	p, err := t.fetch(a.parent.id)
	if err != nil {
		if checkState {
			t.dx.l.Release(dxMode)
		}
		t.traceAbort(obs.EvAbortIdentity, a, 0, 0)
		return nil, errDeleteState
	}
	p.latch.Acquire(latch.Update)
	if checkState {
		t.dx.l.Release(dxMode)
	}

	// Identity check: the remembered reference must still name the same
	// incarnation (closes the recycled-page ABA window; DESIGN.md).
	if p.dead || p.c.Epoch != a.parent.epoch || p.c.Level != a.level+1 {
		t.unlatchUnpin(p, latch.Update, false)
		t.traceAbort(obs.EvAbortIdentity, a, 0, 0)
		return nil, errIdentity
	}

	// Step 5: the parent may have split; follow side pointers (latch
	// coupled, Update mode) until the node covering the separator key.
	for p.pastHigh(t.cmp, a.sep) {
		sib := p.c.Right
		if sib == 0 {
			t.unlatchUnpin(p, latch.Update, false)
			return nil, fmt.Errorf("blinktree: parent %d high fence without sibling", p.id)
		}
		q, err := t.pinLatch(sib, latch.Update)
		t.unlatchUnpin(p, latch.Update, false)
		if err != nil {
			t.traceAbort(obs.EvAbortIdentity, a, 0, 0)
			return nil, errDeleteState
		}
		if q.dead {
			t.unlatchUnpin(q, latch.Update, false)
			t.traceAbort(obs.EvAbortIdentity, a, 0, 0)
			return nil, errDeleteState
		}
		p = q
	}

	if forDelete {
		// Deletes modify the parent (index term removal), so take the
		// exclusive latch now; D_D for a data-node delete is updated under
		// it (step 6).
		p.latch.Promote()
		if checkState && a.level == 0 {
			p.c.DD++
			t.c.ddIncrements.Add(1)
			t.pool.MarkDirty(p.id)
		}
		if checkState && t.opts.SingleDeleteState {
			// Ablation: all deletes funnel into the global counter.
			t.dx.v.Add(1)
		}
		return p, nil
	}

	// Step 7: posting verification — has the new node survived?
	if checkState {
		if t.opts.SingleDeleteState {
			// Ablation: verify every post against the global counter.
			if seen := t.dx.v.Load(); seen != a.dx {
				t.unlatchUnpin(p, latch.Update, false)
				t.traceAbort(obs.EvAbortDX, a, a.dx, seen)
				return nil, errDeleteState
			}
		} else if a.level == 0 {
			// Data node: its deletion would have bumped this parent's
			// D_D (or a value copied forward through parent splits).
			if p.c.DD != a.dd {
				t.unlatchUnpin(p, latch.Update, false)
				t.traceAbort(obs.EvAbortDD, a, a.dd, p.c.DD)
				return nil, errDDChanged
			}
		} else {
			// Index node: re-check D_X (step 7b).
			if seen := t.dx.v.Load(); seen != a.dx {
				t.unlatchUnpin(p, latch.Update, false)
				t.traceAbort(obs.EvAbortDX, a, a.dx, seen)
				return nil, errDeleteState
			}
		}
	}
	return p, nil
}

// Sentinel errors distinguishing abandon reasons for the statistics.
var (
	errIdentity  = fmt.Errorf("%w (identity)", errDeleteState)
	errDDChanged = fmt.Errorf("%w (D_D)", errDeleteState)
)

// processPost executes the second half split: posting the index term for a
// split node to its parent (A.4).
func (t *Tree) processPost(a action) {
	if a.parent.id == 0 {
		t.postAtRootLevel(a)
		return
	}
	p, err := t.accessParent(&a, false)
	if err != nil {
		switch err {
		case errDDChanged:
			t.c.postsAbortDD.Add(1)
		case errIdentity:
			t.c.postsAbortID.Add(1)
		default:
			t.c.postsAbortDX.Add(1)
		}
		return
	}
	t.postInto(p, a)
}

// postInto inserts the index term (a.sep → a.newID) into the Update-latched
// parent p, splitting p if necessary. Consumes p's latch and pin.
func (t *Tree) postInto(p *node, a action) {
	p.latch.Promote()
	for {
		if p.findChild(a.newID) >= 0 {
			t.c.postsDuplicate.Add(1)
			t.unlatchUnpin(p, latch.Exclusive, false)
			t.traceSMO(obs.EvCompleted, &a)
			return
		}
		// A term with the same key but a different child means the key
		// space boundary was recreated by unrelated SMOs; the posting is
		// stale. Abandon.
		if i, _ := p.searchIndexKey(t.cmp, a.sep); i {
			t.c.postsDuplicate.Add(1)
			t.unlatchUnpin(p, latch.Exclusive, false)
			t.traceSMO(obs.EvCompleted, &a)
			return
		}
		need := page.EntrySize(page.Index, len(a.sep), 0)
		if p.size()+need <= t.opts.PageSize {
			p.insertIndexTerm(t.cmp, a.sep, a.newID)
			t.logPost(p)
			t.c.postsDone.Add(1)
			t.unlatchUnpin(p, latch.Exclusive, true)
			t.traceSMO(obs.EvCompleted, &a)
			return
		}
		// The parent itself is full: split it (a separate atomic action,
		// fully decoupled, §3.2.3). Its own index term goes through the
		// to-do queue with an unknown parent (resolved by traversal).
		if err := t.splitLocked(p, ref{}, 0, t.dx.v.Load()); err != nil {
			t.unlatchUnpin(p, latch.Exclusive, true)
			return
		}
		if p.pastHigh(t.cmp, a.sep) {
			right, err := t.pinLatch(p.c.Right, latch.Exclusive)
			t.unlatchUnpin(p, latch.Exclusive, true)
			if err != nil {
				return
			}
			p = right
		}
	}
}

// logPost writes the one-page SMO record for an index-term change in p.
func (t *Tree) logPost(p *node) {
	if t.log == nil {
		return
	}
	_, err := t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
		p.c.LSN = uint64(lsn)
		img, merr := p.Marshal(t.opts.PageSize)
		if merr != nil {
			panic(fmt.Sprintf("blinktree: post image of %d: %v", p.id, merr))
		}
		return &wal.Record{
			Type:   wal.TSMO,
			SMO:    wal.SMOPost,
			Images: []wal.PageImage{{ID: p.id, Data: img}},
		}
	})
	if err != nil {
		panic(fmt.Sprintf("blinktree: logging post: %v", err))
	}
}

// postAtRootLevel handles a post whose splitting node was at root level
// when remembered: either grow a new root above it, or — if the root has
// already changed — find the parent by traversal and post normally.
func (t *Tree) postAtRootLevel(a action) {
	t.anchor.mu.Lock()
	if t.anchor.root == a.origID && t.anchor.level == a.level {
		t.growLocked(a)
		t.anchor.mu.Unlock()
		return
	}
	rootLevel := t.anchor.level
	t.anchor.mu.Unlock()

	if rootLevel <= a.level {
		// The splitting node is on the root's level but is not the root:
		// it is an unposted right sibling of the root chain. Its term can
		// only be posted after the chain head grows a new root; defer.
		t.c.postsRequeued.Add(1)
		t.todo.requeue(a)
		return
	}

	// The root has grown since the action was remembered. Verify the new
	// node still exists (we created it, so we know its epoch), then find
	// the parent by a normal latch-coupled traversal.
	if a.newEpoch != 0 && !t.nodeAlive(a.newID, a.newEpoch) {
		t.c.postsAbortID.Add(1)
		return
	}
	p, _, err := t.traverse(traverseOpts{
		key: a.sep, level: a.level + 1, intent: latch.Update, dx: t.dx.v.Load(),
	})
	if err != nil {
		t.c.postsRequeued.Add(1)
		t.todo.requeue(a)
		return
	}
	t.postInto(p, a)
}

// nodeAlive reports whether the node id still exists with the given
// incarnation. Used only on the rare root-race fallback path.
func (t *Tree) nodeAlive(id page.PageID, epoch uint64) bool {
	n, err := t.pinLatch(id, latch.Shared)
	if err != nil {
		return false
	}
	alive := !n.dead && n.c.Epoch == epoch
	t.unlatchUnpin(n, latch.Shared, false)
	return alive
}

// growLocked adds a new root above the old one (anchor mutex held). The new
// root's two children are the old root and its first right sibling; any
// further unposted siblings are reached by side traversal and posted later.
func (t *Tree) growLocked(a action) {
	newRootC := page.Content{
		Kind:     page.Index,
		Level:    a.level + 1,
		Low:      []byte{},
		Keys:     [][]byte{{}, append([]byte(nil), a.sep...)},
		Children: []page.PageID{a.origID, a.newID},
	}
	root, err := t.allocNode(newRootC)
	if err != nil {
		return // allocation failure: the tree stays correct, grow retries
	}
	if t.log != nil {
		_, err = t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
			root.c.LSN = uint64(lsn)
			root.c.Epoch = uint64(lsn)
			img, merr := root.Marshal(t.opts.PageSize)
			if merr != nil {
				panic(fmt.Sprintf("blinktree: grow image: %v", merr))
			}
			return &wal.Record{
				Type:   wal.TSMO,
				SMO:    wal.SMOGrow,
				Images: []wal.PageImage{{ID: root.id, Data: img}},
				Allocs: []page.PageID{root.id},
				Root:   root.id,
			}
		})
		if err != nil {
			panic(fmt.Sprintf("blinktree: logging grow: %v", err))
		}
	}
	// The new root is still private (nothing points at it); publish its
	// routing snapshot before the anchor makes it reachable.
	root.publishRoute()
	t.anchor.root = root.id
	t.anchor.level = root.c.Level
	t.c.grows.Add(1)
	t.c.postsDone.Add(1)
	t.pool.Unpin(root.id, true)
	t.traceSMO(obs.EvCompleted, &a)
}
