package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"blinktree/internal/wal"
)

func TestTxnCommitVisible(t *testing.T) {
	tr := newTestTree(t, Options{LogDevice: wal.NewMemDevice()})
	x, err := tr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("after commit: %q, %v", got, err)
	}
	if err := x.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestTxnAbortRollsBack(t *testing.T) {
	tr := newTestTree(t, Options{LogDevice: wal.NewMemDevice()})
	tr.Put([]byte("existing"), []byte("old"))
	x, _ := tr.Begin()
	x.Put([]byte("fresh"), []byte("dirty"))
	x.Put([]byte("existing"), []byte("dirty"))
	x.Delete([]byte("existing")) // delete the value it just wrote
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get([]byte("fresh")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("aborted insert visible: %v", err)
	}
	got, err := tr.Get([]byte("existing"))
	if err != nil || string(got) != "old" {
		t.Fatalf("aborted update not rolled back: %q, %v", got, err)
	}
	mustVerify(t, tr)
}

func TestTxnAbortRollsBackManyAcrossSplits(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, LogDevice: wal.NewMemDevice()})
	x, _ := tr.Begin()
	for i := 0; i < 500; i++ {
		if err := x.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	if cnt, _ := tr.Len(); cnt != 0 {
		t.Fatalf("Len after abort = %d, want 0", cnt)
	}
	mustVerify(t, tr) // splits persist (SMOs are system actions), records do not
	if tr.Stats().Splits == 0 {
		t.Fatal("expected splits during the big transaction")
	}
}

func TestTxnIsolationBlocksConflict(t *testing.T) {
	tr := newTestTree(t, Options{})
	x1, _ := tr.Begin()
	if err := x1.Put([]byte("k"), []byte("x1")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		x2, _ := tr.Begin()
		defer x2.Commit()
		_, err := x2.Get([]byte("k")) // must block until x1 finishes
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("conflicting read did not block")
	case <-time.After(30 * time.Millisecond):
	}
	if err := x1.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked read after commit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read never resumed")
	}
	if tr.Stats().NoWaitDenied == 0 {
		t.Fatal("no-wait denial path never taken")
	}
}

func TestTxnNoWaitRelatchFindsMovedRecord(t *testing.T) {
	// While a reader waits for a lock, the writer splits the leaf so the
	// record moves; the re-latch must find it in its new node.
	tr := newTestTree(t, Options{PageSize: 512})
	for i := 0; i < 6; i++ {
		tr.Put(key(i), valb(i))
	}
	x1, _ := tr.Begin()
	if err := x1.Put(key(3), []byte("locked")); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	errs := make(chan error, 1)
	go func() {
		x2, _ := tr.Begin()
		defer x2.Commit()
		v, err := x2.Get(key(3))
		errs <- err
		got <- v
	}()
	time.Sleep(20 * time.Millisecond)
	// Split the leaf while the reader waits: fill the page.
	for i := 100; i < 200; i++ {
		if err := x1.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Splits == 0 {
		t.Fatal("setup failed: no split while reader waited")
	}
	if err := x1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("reader after relatch: %v", err)
	}
	if v := <-got; string(v) != "locked" {
		t.Fatalf("reader saw %q", v)
	}
	if tr.Stats().Relatches == 0 {
		t.Fatal("re-latch path never taken")
	}
}

func TestTxnDeadlockVictimAborted(t *testing.T) {
	tr := newTestTree(t, Options{})
	tr.Put([]byte("a"), []byte("0"))
	tr.Put([]byte("b"), []byte("0"))

	var ready sync.WaitGroup
	ready.Add(2)
	start := make(chan struct{})
	results := make(chan error, 2)
	run := func(first, second []byte) {
		x, _ := tr.Begin()
		if err := x.Put(first, []byte("1")); err != nil {
			ready.Done()
			results <- err
			return
		}
		ready.Done()
		<-start // both first locks are held before anyone proceeds
		err := x.Put(second, []byte("1"))
		if err == nil {
			err = x.Commit()
		}
		// On ErrTxnAborted the rollback already happened inside Put.
		results <- err
	}
	go run([]byte("a"), []byte("b"))
	go run([]byte("b"), []byte("a"))
	ready.Wait()
	close(start)

	var aborted, committed int
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			switch {
			case err == nil:
				committed++
			case errors.Is(err, ErrTxnAborted):
				aborted++
			default:
				t.Fatalf("unexpected: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("deadlock never resolved")
		}
	}
	if aborted == 0 {
		t.Fatalf("no deadlock victim (committed=%d)", committed)
	}
	if tr.Stats().TxnDeadlocks == 0 {
		t.Fatal("deadlock stat not recorded")
	}
	mustVerify(t, tr)
}

func TestTxnOpsAfterFinish(t *testing.T) {
	tr := newTestTree(t, Options{})
	x, _ := tr.Begin()
	x.Commit()
	if err := x.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Put on finished txn: %v", err)
	}
	if _, err := x.Get([]byte("k")); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Get on finished txn: %v", err)
	}
	if err := x.Delete([]byte("k")); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Delete on finished txn: %v", err)
	}
	if err := x.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Abort on finished txn: %v", err)
	}
}

func TestTxnConcurrentDisjointCommits(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, LogDevice: wal.NewMemDevice(), Workers: 2})
	const goroutines, per = 6, 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				x, err := tr.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				k := g*per + i
				if err := x.Put(key(k), valb(k)); err != nil {
					t.Errorf("put %d: %v", k, err)
					x.Abort()
					return
				}
				if err := x.Commit(); err != nil {
					t.Errorf("commit %d: %v", k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mustVerify(t, tr)
	if n, _ := tr.Len(); n != goroutines*per {
		t.Fatalf("Len = %d, want %d", n, goroutines*per)
	}
	if s := tr.Stats(); s.TxnCommits != goroutines*per {
		t.Fatalf("TxnCommits = %d", s.TxnCommits)
	}
}

func TestTxnContendedCounterSerializes(t *testing.T) {
	// Classic increment race: with strict 2PL every read-modify-write is
	// serialized, so the counter must equal the number of increments
	// (retries on deadlock victims included).
	tr := newTestTree(t, Options{})
	tr.Put([]byte("ctr"), []byte{0, 0})
	const goroutines, per = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					x, _ := tr.Begin()
					v, err := x.Get([]byte("ctr"))
					if err != nil {
						if errors.Is(err, ErrTxnAborted) {
							continue // deadlock victim: retry
						}
						t.Error(err)
						return
					}
					n := int(v[0])<<8 | int(v[1])
					n++
					err = x.Put([]byte("ctr"), []byte{byte(n >> 8), byte(n)})
					if err != nil {
						if errors.Is(err, ErrTxnAborted) {
							continue
						}
						t.Error(err)
						return
					}
					if err := x.Commit(); err != nil {
						t.Error(err)
						return
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	v, err := tr.Get([]byte("ctr"))
	if err != nil {
		t.Fatal(err)
	}
	if got := int(v[0])<<8 | int(v[1]); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestTxnGetMissingStillLocks(t *testing.T) {
	tr := newTestTree(t, Options{})
	x, _ := tr.Begin()
	if _, err := x.Get([]byte("ghost")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	// The shared lock on the key is held until commit.
	if tr.locks.HeldMode(x.owner(), "ghost") == 0 {
		t.Fatal("no lock held after Get of missing key")
	}
	x.Commit()
	if tr.locks.HeldMode(x.owner(), "ghost") != 0 {
		t.Fatal("lock survived commit")
	}
}

func TestTxnDeleteRollbackRestoresValue(t *testing.T) {
	tr := newTestTree(t, Options{LogDevice: wal.NewMemDevice()})
	tr.Put([]byte("k"), []byte("precious"))
	x, _ := tr.Begin()
	if err := x.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("k"))
	if err != nil || !bytes.Equal(got, []byte("precious")) {
		t.Fatalf("after abort: %q, %v", got, err)
	}
}
