// Package core implements the paper's contribution: a B-link tree with
// simple, robust, highly concurrent node deletion based on delete state
// (Lomet, "Simple, Robust and Highly Concurrent B-trees with Node Deletion",
// ICDE 2004).
//
// The tree is a Pi-tree-style B-link tree: every node carries its key-space
// description (low/high fence keys) and a side pointer whose key space is
// known, so the tree is search-correct even when index terms have not been
// posted. Structure modifications beyond the mandatory first half split are
// lazy: they are enqueued on a volatile to-do queue and simply abandoned if
// the delete state (a global index-delete counter D_X, and a per-parent
// data-delete counter D_D) shows a node delete might have invalidated them.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"blinktree/internal/latch"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// node is the in-memory form of one tree node. The latch protects every
// field except id, which is immutable. A node must be pinned in the buffer
// pool while latched (pin before latch, unlatch before unpin), so eviction
// can never race with a latch holder.
type node struct {
	latch latch.Latch
	id    page.PageID

	// dead marks a consolidated node. It is set under the exclusive latch
	// just before deallocation; any latcher that finds it must back off.
	dead bool

	// c is the node's logical content (fences, side pointer, entries, D_D,
	// page LSN). It is mutated in place under the exclusive latch.
	c page.Content

	// route is the immutable routing snapshot optimistic readers descend
	// through without latching; nil for leaves (leaves are always read
	// under a Shared latch). It is republished whenever the exclusive
	// latch is released and the reader validates currency against the
	// latch version word (see optread.go).
	route atomic.Pointer[route]

	// hot counts contended latch encounters on a leaf (failed
	// try-acquires by prospective combiners); once it reaches the
	// combine threshold, writers publish into the combining buffer
	// instead of queueing on the latch. Reset by a drain that finds the
	// buffer (nearly) empty, so a leaf that cools down stops combining.
	hot atomic.Uint32

	// comb is the leaf's combining buffer, created lazily by its first
	// publisher and drained by every exclusive-latch releaser (see
	// combine.go). Nil on index nodes and on leaves that never saw
	// contention.
	comb atomic.Pointer[combiner]
}

// route is an immutable snapshot of everything an optimistic reader needs
// from an index node: fences, side pointer, separator keys and child
// addresses, plus the identity (epoch) and delete state (D_D) that a
// traversal path entry remembers. A published route is never mutated; a
// new one replaces it wholesale under the exclusive latch.
type route struct {
	level uint8
	epoch uint64
	dd    uint64
	dead  bool
	size  int // logical (pre-compression) size at publish time (under-utilization check)

	low, high []byte
	right     page.PageID
	keys      [][]byte
	children  []page.PageID
}

// publishRoute installs a fresh routing snapshot. The caller must hold the
// node's exclusive latch, or own the node privately (creation, load, bulk
// build) so no concurrent reader exists yet. Leaves publish nothing.
func (n *node) publishRoute() {
	if n.isLeaf() {
		return
	}
	n.route.Store(&route{
		level:    n.c.Level,
		epoch:    n.c.Epoch,
		dd:       n.c.DD,
		dead:     n.dead,
		size:     n.logicalSize(),
		low:      n.c.Low,
		high:     n.c.High,
		right:    n.c.Right,
		keys:     append([][]byte(nil), n.c.Keys...),
		children: append([]page.PageID(nil), n.c.Children...),
	})
}

// newNode wraps fresh content.
func newNode(id page.PageID, c page.Content) *node {
	c.ID = id
	return &node{id: id, c: c}
}

// PageLSN implements buffer.Object.
func (n *node) PageLSN() wal.LSN { return wal.LSN(n.c.LSN) }

// Marshal implements buffer.Object.
func (n *node) Marshal(pageSize int) ([]byte, error) {
	return page.Marshal(&n.c, pageSize)
}

// isLeaf reports whether n is a data node.
func (n *node) isLeaf() bool { return n.c.Kind == page.Leaf }

// level returns the node's level; leaves are level 0.
func (n *node) level() uint8 { return n.c.Level }

// covers reports whether key falls in [Low, High) under cmp.
func (n *node) covers(cmp Compare, key []byte) bool {
	if cmp(key, n.c.Low) < 0 {
		return false
	}
	return n.c.High == nil || cmp(key, n.c.High) < 0
}

// pastHigh reports whether key belongs to a right sibling.
func (n *node) pastHigh(cmp Compare, key []byte) bool {
	return n.c.High != nil && cmp(key, n.c.High) >= 0
}

// lowerBound returns the index of the first key in keys that is >= key
// under cmp (len(keys) when every key is smaller). It is the single binary
// search underlying every in-node lookup; keys within a node are unique.
func lowerBound(cmp Compare, keys [][]byte, key []byte) int {
	return sort.Search(len(keys), func(i int) bool {
		return cmp(keys[i], key) >= 0
	})
}

// keySearch returns the lower-bound position of key in keys and whether the
// key at that position is an exact match.
func keySearch(cmp Compare, keys [][]byte, key []byte) (int, bool) {
	i := lowerBound(cmp, keys, key)
	return i, i < len(keys) && cmp(keys[i], key) == 0
}

// childIndex returns the position of the child covering key in an index
// node keyed by keys (keys[i] is child i's low fence): the last position
// whose key is <= key, or -1 when key sorts below keys[0].
func childIndex(cmp Compare, keys [][]byte, key []byte) int {
	i, found := keySearch(cmp, keys, key)
	if found {
		return i
	}
	return i - 1
}

// searchLeaf returns the position of key in a leaf and whether it is
// present; absent keys return their insertion position.
func (n *node) searchLeaf(cmp Compare, key []byte) (int, bool) {
	return keySearch(cmp, n.c.Keys, key)
}

// childFor returns the index of the child covering key in an index node.
// The caller must have established key >= Low (keys[0] == Low).
func (n *node) childFor(cmp Compare, key []byte) int {
	return childIndex(cmp, n.c.Keys, key)
}

// searchIndexKey reports whether an index node has an entry with exactly
// this separator key, and its position.
func (n *node) searchIndexKey(cmp Compare, key []byte) (bool, int) {
	i, found := keySearch(cmp, n.c.Keys, key)
	return found, i
}

// findChild returns the position of the index entry pointing at child, or
// -1 if absent.
func (n *node) findChild(child page.PageID) int {
	for i, c := range n.c.Children {
		if c == child {
			return i
		}
	}
	return -1
}

// insertLeafAt inserts (key, val) at position i.
func (n *node) insertLeafAt(i int, key, val []byte) {
	n.c.Keys = append(n.c.Keys, nil)
	copy(n.c.Keys[i+1:], n.c.Keys[i:])
	n.c.Keys[i] = append([]byte(nil), key...)
	n.c.Vals = append(n.c.Vals, nil)
	copy(n.c.Vals[i+1:], n.c.Vals[i:])
	n.c.Vals[i] = append([]byte(nil), val...)
}

// removeLeafAt removes the entry at position i, returning its value.
func (n *node) removeLeafAt(i int) []byte {
	old := n.c.Vals[i]
	n.c.Keys = append(n.c.Keys[:i], n.c.Keys[i+1:]...)
	n.c.Vals = append(n.c.Vals[:i], n.c.Vals[i+1:]...)
	return old
}

// insertIndexTerm inserts the separator key -> child entry in sorted
// position. It reports false if a term with the same key already exists
// (the posting was already done, e.g. re-discovered twice).
func (n *node) insertIndexTerm(cmp Compare, key []byte, child page.PageID) bool {
	i, found := keySearch(cmp, n.c.Keys, key)
	if found {
		return false
	}
	n.c.Keys = append(n.c.Keys, nil)
	copy(n.c.Keys[i+1:], n.c.Keys[i:])
	n.c.Keys[i] = append([]byte(nil), key...)
	n.c.Children = append(n.c.Children, 0)
	copy(n.c.Children[i+1:], n.c.Children[i:])
	n.c.Children[i] = child
	return true
}

// removeIndexTermAt removes the index entry at position i.
func (n *node) removeIndexTermAt(i int) {
	n.c.Keys = append(n.c.Keys[:i], n.c.Keys[i+1:]...)
	n.c.Children = append(n.c.Children[:i], n.c.Children[i+1:]...)
}

// size returns the marshaled byte size, the occupancy measure.
func (n *node) size() int { return n.c.Size() }

// logicalSize is size before fence-prefix compression: the occupancy
// measure for the under-utilization policy. The policy must ignore
// compression — a well-filled index page whose keys share a long fence
// prefix marshals far below the threshold, and consolidating it would only
// force an immediate re-split (and abort postings via D_X churn).
func (n *node) logicalSize() int { return n.c.Size() + len(n.c.Keys)*n.c.PrefixLen() }

// String renders a debug description; used by blinkdump and tests.
func (n *node) String() string {
	return fmt.Sprintf("node %d %s L%d [%q,%q) right=%d keys=%d dd=%d lsn=%d",
		n.id, n.c.Kind, n.c.Level, n.c.Low, highString(n.c.High), n.c.Right,
		len(n.c.Keys), n.c.DD, n.c.LSN)
}

func highString(h []byte) string {
	if h == nil {
		return "+inf"
	}
	return string(h)
}
