package core

import (
	"bytes"
	"fmt"

	"blinktree/internal/page"
)

// Verify checks the structural invariants of the tree. It must be called on
// a quiescent tree (no concurrent operations); tests call it after draining
// the to-do queue. It returns the first violation found.
//
// Invariants checked, per level from the root down:
//
//   - fence sanity: Low < High (unless High is +inf); keys lie in [Low, High)
//     and are strictly sorted;
//   - side chain: each node's High equals its right sibling's Low, the
//     leftmost node's Low is -inf, the rightmost node's High is +inf;
//   - index nodes: keys[0] == Low, one child per key, every child is one
//     level down, alive, and its Low equals its index term's key;
//   - size: every node's serialized size fits the page;
//   - reachability: every node at each level is reached by the side chain
//     from the leftmost node (so no orphans within a level), and child
//     links only point into the next level's chain;
//   - leaf records across the whole leaf chain are strictly sorted.
func (t *Tree) Verify() error {
	rootID, rootLevel := t.readAnchor()
	leftmost := rootID
	for lvl := int(rootLevel); lvl >= 0; lvl-- {
		nodes, err := t.verifyLevel(leftmost, uint8(lvl))
		if err != nil {
			return err
		}
		if lvl > 0 {
			// Descend to the next level's leftmost node.
			first, err := t.fetch(leftmost)
			if err != nil {
				return fmt.Errorf("verify: fetch leftmost %d: %w", leftmost, err)
			}
			if len(first.c.Children) == 0 {
				t.pool.Unpin(first.id, false)
				return fmt.Errorf("verify: index node %d at level %d has no children", first.id, lvl)
			}
			next := first.c.Children[0]
			t.pool.Unpin(first.id, false)
			// Verify child links of the whole level point into the chain
			// one level down (checked inside verifyLevel via child.Low).
			leftmost = next
		}
		_ = nodes
	}
	return t.verifyLeafOrder()
}

// verifyLevel walks one level's side chain, checking per-node and chain
// invariants, and returns the visited node IDs.
func (t *Tree) verifyLevel(start page.PageID, lvl uint8) ([]page.PageID, error) {
	var ids []page.PageID
	var prevHigh []byte
	id := start
	first := true
	for id != 0 {
		n, err := t.fetch(id)
		if err != nil {
			return nil, fmt.Errorf("verify: level %d fetch %d: %w", lvl, id, err)
		}
		if n.dead {
			t.pool.Unpin(id, false)
			return nil, fmt.Errorf("verify: dead node %d reachable at level %d", id, lvl)
		}
		if n.level() != lvl {
			t.pool.Unpin(id, false)
			return nil, fmt.Errorf("verify: node %d has level %d, expected %d", id, n.level(), lvl)
		}
		if first {
			if len(n.c.Low) != 0 {
				t.pool.Unpin(id, false)
				return nil, fmt.Errorf("verify: leftmost node %d at level %d has low %q, want -inf", id, lvl, n.c.Low)
			}
			first = false
		} else if !bytes.Equal(prevHigh, n.c.Low) {
			t.pool.Unpin(id, false)
			return nil, fmt.Errorf("verify: chain gap at level %d: prev high %q != node %d low %q", lvl, prevHigh, id, n.c.Low)
		}
		if err := t.verifyNode(n); err != nil {
			t.pool.Unpin(id, false)
			return nil, err
		}
		ids = append(ids, id)
		prevHigh = n.c.High
		next := n.c.Right
		if n.c.High == nil && next != 0 {
			t.pool.Unpin(id, false)
			return nil, fmt.Errorf("verify: node %d has +inf high but sibling %d", id, next)
		}
		if n.c.High != nil && next == 0 {
			t.pool.Unpin(id, false)
			return nil, fmt.Errorf("verify: node %d has high %q but no sibling", id, n.c.High)
		}
		t.pool.Unpin(id, false)
		id = next
	}
	return ids, nil
}

// verifyNode checks one node's internal invariants.
func (t *Tree) verifyNode(n *node) error {
	// Slice-shape checks come first: size() indexes Vals by Keys position.
	if n.isLeaf() && len(n.c.Vals) != len(n.c.Keys) {
		return fmt.Errorf("verify: leaf %d has %d keys, %d vals", n.id, len(n.c.Keys), len(n.c.Vals))
	}
	if !n.isLeaf() && len(n.c.Children) != len(n.c.Keys) {
		return fmt.Errorf("verify: index %d has %d keys, %d children", n.id, len(n.c.Keys), len(n.c.Children))
	}
	if n.size() > t.opts.PageSize {
		return fmt.Errorf("verify: node %d size %d exceeds page size %d", n.id, n.size(), t.opts.PageSize)
	}
	if n.c.High != nil && t.cmp(n.c.Low, n.c.High) >= 0 {
		return fmt.Errorf("verify: node %d fences inverted: [%q, %q)", n.id, n.c.Low, n.c.High)
	}
	for i, k := range n.c.Keys {
		if i > 0 && t.cmp(n.c.Keys[i-1], k) >= 0 {
			return fmt.Errorf("verify: node %d keys out of order at %d", n.id, i)
		}
		if t.cmp(k, n.c.Low) < 0 {
			return fmt.Errorf("verify: node %d key %q below low fence %q", n.id, k, n.c.Low)
		}
		if n.c.High != nil && t.cmp(k, n.c.High) >= 0 {
			return fmt.Errorf("verify: node %d key %q at/above high fence %q", n.id, k, n.c.High)
		}
	}
	if n.isLeaf() {
		return nil
	}
	if len(n.c.Keys) == 0 {
		return fmt.Errorf("verify: index node %d is empty", n.id)
	}
	if !bytes.Equal(n.c.Keys[0], n.c.Low) {
		return fmt.Errorf("verify: index %d keys[0] %q != low %q", n.id, n.c.Keys[0], n.c.Low)
	}
	for i, childID := range n.c.Children {
		child, err := t.fetch(childID)
		if err != nil {
			return fmt.Errorf("verify: index %d child %d: %w", n.id, childID, err)
		}
		if child.dead {
			t.pool.Unpin(childID, false)
			return fmt.Errorf("verify: index %d references dead child %d", n.id, childID)
		}
		if child.level() != n.level()-1 {
			t.pool.Unpin(childID, false)
			return fmt.Errorf("verify: index %d (level %d) child %d has level %d", n.id, n.level(), childID, child.level())
		}
		if !bytes.Equal(child.c.Low, n.c.Keys[i]) {
			t.pool.Unpin(childID, false)
			return fmt.Errorf("verify: index %d term %q != child %d low %q", n.id, n.c.Keys[i], childID, child.c.Low)
		}
		t.pool.Unpin(childID, false)
	}
	return nil
}

// verifyLeafOrder walks the full leaf chain checking global key order.
func (t *Tree) verifyLeafOrder() error {
	id, lvl := t.readAnchor()
	for lvl > 0 {
		n, err := t.fetch(id)
		if err != nil {
			return err
		}
		next := n.c.Children[0]
		lvl = n.level() - 1
		t.pool.Unpin(id, false)
		id = next
	}
	var prev []byte
	haveAny := false
	for id != 0 {
		n, err := t.fetch(id)
		if err != nil {
			return err
		}
		for _, k := range n.c.Keys {
			if haveAny && t.cmp(prev, k) >= 0 {
				t.pool.Unpin(id, false)
				return fmt.Errorf("verify: leaf chain order violation at key %q (prev %q)", k, prev)
			}
			prev = append(prev[:0], k...)
			haveAny = true
		}
		next := n.c.Right
		t.pool.Unpin(id, false)
		id = next
	}
	return nil
}

// Records returns every record in key order (quiescent use only).
func (t *Tree) Records() (map[string][]byte, error) {
	out := make(map[string][]byte)
	err := t.Scan(nil, nil, func(k, v []byte) bool {
		out[string(k)] = v
		return true
	})
	return out, err
}

// Len returns the total number of records.
func (t *Tree) Len() (int, error) { return t.Count(nil, nil) }
