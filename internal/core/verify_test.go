package core

import (
	"strings"
	"testing"

	"blinktree/internal/latch"
	"blinktree/internal/page"
)

// withNode latches a node exclusively and runs fn on it.
func withNode(t *testing.T, tr *Tree, idx int, lvl uint8, fn func(*node)) {
	t.Helper()
	ids, err := tr.LevelNodes(lvl)
	if err != nil {
		t.Fatal(err)
	}
	if idx >= len(ids) {
		t.Fatalf("level %d has only %d nodes", lvl, len(ids))
	}
	n, err := tr.pinLatch(ids[idx], latch.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	fn(n)
	tr.unlatchUnpin(n, latch.Exclusive, true)
}

func buildVerifyTree(t *testing.T) *Tree {
	tr := newTestTree(t, Options{PageSize: 512})
	for i := 0; i < 600; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	if err := tr.Verify(); err != nil {
		t.Fatalf("baseline tree dirty: %v", err)
	}
	return tr
}

func expectViolation(t *testing.T, tr *Tree, substr string) {
	t.Helper()
	err := tr.Verify()
	if err == nil {
		t.Fatalf("corruption not detected (want %q)", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("violation %q does not mention %q", err, substr)
	}
}

func TestVerifyDetectsKeyOrderViolation(t *testing.T) {
	tr := buildVerifyTree(t)
	withNode(t, tr, 1, 0, func(n *node) {
		if len(n.c.Keys) >= 2 {
			n.c.Keys[0], n.c.Keys[1] = n.c.Keys[1], n.c.Keys[0]
		}
	})
	expectViolation(t, tr, "out of order")
}

func TestVerifyDetectsFenceViolation(t *testing.T) {
	tr := buildVerifyTree(t)
	withNode(t, tr, 1, 0, func(n *node) {
		n.c.Keys[0] = []byte("\x00below-everything")
	})
	expectViolation(t, tr, "below")
}

func TestVerifyDetectsChainGap(t *testing.T) {
	tr := buildVerifyTree(t)
	withNode(t, tr, 0, 0, func(n *node) {
		// Extending the leftmost leaf's high fence keeps its own
		// invariants intact but breaks High == right sibling's Low.
		n.c.High = append(n.c.High, 'x')
	})
	expectViolation(t, tr, "chain gap")
}

func TestVerifyDetectsWrongIndexTerm(t *testing.T) {
	tr := buildVerifyTree(t)
	if tr.Height() < 1 {
		t.Skip("tree too small")
	}
	withNode(t, tr, 0, 1, func(n *node) {
		if len(n.c.Keys) >= 2 {
			n.c.Keys[1] = append(n.c.Keys[1], 'z')
		}
	})
	// Either the child-low/term mismatch or the chain invariant trips.
	if err := tr.Verify(); err == nil {
		t.Fatal("wrong index term not detected")
	}
}

func TestVerifyDetectsMismatchedVals(t *testing.T) {
	tr := buildVerifyTree(t)
	withNode(t, tr, 0, 0, func(n *node) {
		n.c.Vals = n.c.Vals[:len(n.c.Vals)-1]
	})
	expectViolation(t, tr, "vals")
}

func TestNodeSnapshotAndLevelNodes(t *testing.T) {
	tr := buildVerifyTree(t)
	leaves, err := tr.LevelNodes(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) < 2 {
		t.Fatalf("only %d leaves", len(leaves))
	}
	info, err := tr.NodeSnapshot(leaves[0])
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != 0 || len(info.Low) != 0 {
		t.Fatalf("leftmost leaf snapshot: %+v", info)
	}
	if info.Size <= 0 || info.Size > 512 {
		t.Fatalf("size = %d", info.Size)
	}
	if _, err := tr.LevelNodes(9); err == nil {
		t.Fatal("LevelNodes above root succeeded")
	}
	if tr.RootID() == 0 {
		t.Fatal("zero root")
	}
}

func TestNodeStringForms(t *testing.T) {
	n := newNode(7, page.Content{Kind: page.Leaf, Low: []byte("a"), Keys: [][]byte{}, Vals: [][]byte{}})
	if s := n.String(); !strings.Contains(s, "node 7") {
		t.Fatalf("node.String() = %q", s)
	}
	if highString(nil) != "+inf" {
		t.Fatal("highString(nil)")
	}
}
