package core

import (
	"fmt"

	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// processDelete executes the node delete atomic action (A.5): consolidate
// an under-utilized node into its left sibling under the same parent, after
// removing its index term.
//
// Latch order: parent (X) → left sibling (X) → victim (X, via the left
// sibling's side pointer), all downward/rightward — deadlock-free. One
// deviation from the paper's step 7 (documented in DESIGN.md): the parent
// latch is held until the single atomic SMO log record has been appended,
// so that the three page after-images form one atomic unit.
func (t *Tree) processDelete(a action) {
	if a.parent.id == 0 {
		// Parent unknown (e.g. the victim's parent was itself enqueued for
		// deletion, or the action was discovered without a full path).
		// Resolve it with a fresh traversal and a freshly remembered D_X.
		if !t.resolveParent(&a) {
			t.c.deleteAbortEdge.Add(1)
			t.traceSMO(obs.EvAbortEdge, &a)
			return
		}
	}
	p, err := t.accessParent(&a, true)
	if err != nil {
		switch err {
		case errIdentity:
			t.c.deleteAbortID.Add(1)
		default:
			t.c.deleteAbortDX.Add(1)
		}
		return
	}
	// p is exclusively latched and covers a.sep (the victim's immutable
	// low key). Locate the victim's index term.
	found, i := p.searchIndexKey(t.cmp, a.sep)
	if !found || p.c.Children[i] != a.origID {
		// The term was never posted, or the victim is already gone.
		t.c.deleteAbortEdge.Add(1)
		t.traceSMO(obs.EvAbortEdge, &a)
		t.unlatchUnpin(p, latch.Exclusive, true)
		return
	}
	if i == 0 {
		// Leftmost child of this parent: no left sibling under the same
		// parent — abort (A.5 step 2). Consolidating the parent later can
		// unblock this node.
		t.c.deleteAbortEdge.Add(1)
		t.traceSMO(obs.EvAbortEdge, &a)
		t.unlatchUnpin(p, latch.Exclusive, true)
		return
	}

	left, err := t.pinLatch(p.c.Children[i-1], latch.Exclusive)
	if err != nil || left.dead {
		if err == nil {
			t.unlatchUnpin(left, latch.Exclusive, false)
		}
		t.c.deleteAbortEdge.Add(1)
		t.traceSMO(obs.EvAbortEdge, &a)
		t.unlatchUnpin(p, latch.Exclusive, true)
		return
	}
	// Reach the victim by side traversal from its left sibling (A.5 step
	// 3); a mismatch means splits intervened.
	if left.c.Right != a.origID {
		t.c.deleteAbortEdge.Add(1)
		t.traceSMO(obs.EvAbortEdge, &a)
		t.unlatchUnpin(left, latch.Exclusive, false)
		t.unlatchUnpin(p, latch.Exclusive, true)
		return
	}
	victim, err := t.pinLatch(a.origID, latch.Exclusive)
	if err != nil || victim.dead || victim.c.Epoch != a.origEpoch {
		if err == nil {
			t.unlatchUnpin(victim, latch.Exclusive, false)
		}
		t.c.deleteAbortEdge.Add(1)
		t.traceSMO(obs.EvAbortEdge, &a)
		t.unlatchUnpin(left, latch.Exclusive, false)
		t.unlatchUnpin(p, latch.Exclusive, true)
		return
	}

	// Step 4: still worth consolidating, and does it fit?
	if !t.underutilized(victim) || t.mergedSize(left, victim) > t.opts.PageSize {
		t.c.deleteSkipFit.Add(1)
		t.traceSMO(obs.EvSkipFit, &a)
		t.unlatchUnpin(victim, latch.Exclusive, false)
		t.unlatchUnpin(left, latch.Exclusive, false)
		t.unlatchUnpin(p, latch.Exclusive, true)
		return
	}

	// Drain comparator: the page is first marked empty with its own logged
	// update, the extra update and log record §1.3 criticizes.
	if t.opts.DeletePolicy == Drain {
		t.logDrainMark(victim)
	}

	// Step 5: remove the index term; subsequent searches for the victim's
	// key space go through the left sibling's side pointer (which still
	// reaches the victim until the merge below completes — and afterwards,
	// the left sibling covers the space itself).
	p.removeIndexTermAt(i)

	// Step 8: merge the victim into the left sibling — contents, high
	// fence and side pointer.
	left.c.High = victim.c.High
	left.c.Right = victim.c.Right
	left.c.Keys = append(left.c.Keys, victim.c.Keys...)
	if victim.isLeaf() {
		left.c.Vals = append(left.c.Vals, victim.c.Vals...)
	} else {
		left.c.Children = append(left.c.Children, victim.c.Children...)
	}
	if victim.c.Level == 1 {
		// Merging two parent-of-leaf nodes invalidates D_D values
		// remembered against either: force a visible change.
		left.c.DD = left.c.DD + victim.c.DD + 1
	}
	victim.dead = true

	t.logConsolidate(p, left, victim)

	if victim.isLeaf() {
		t.c.leafConsolidated.Add(1)
	} else {
		t.c.indexConsolidated.Add(1)
	}
	t.traceSMO(obs.EvCompleted, &a)

	// Step 6: the parent may itself have become under-utilized. (Whether it
	// is actually consolidatable — e.g. not the root — is re-checked when
	// the action runs; the anchor must not be read while holding latches.)
	dxNow := t.dx.v.Load()
	if t.underutilized(p) {
		t.c.deletesEnqueued.Add(1)
		t.todo.enqueue(action{
			kind:   actDelete,
			level:  p.c.Level,
			origID: p.id, origEpoch: p.c.Epoch,
			sep: append([]byte(nil), p.c.Low...),
			dx:  dxNow, // parent ref unknown: resolved at processing time
		})
	}

	// Step 7: release the parent; the left sibling and victim latches
	// protect the rest.
	t.unlatchUnpin(p, latch.Exclusive, true)
	t.unlatchUnpin(left, latch.Exclusive, true)
	t.unlatchUnpin(victim, latch.Exclusive, false)

	// Step 8b: deallocate the victim's page. Under the drain policy the
	// page must "live" until no pointers to it exist ([16]); the grace
	// period defers the deallocation.
	if t.opts.DeletePolicy == Drain {
		t.drainDefer(victim.id)
	} else {
		t.reclaim(victim.id)
	}
}

// logDrainMark writes the drain comparator's mark-empty update for the
// victim page.
func (t *Tree) logDrainMark(victim *node) {
	if t.log == nil {
		return
	}
	_, err := t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
		victim.c.LSN = uint64(lsn)
		img, merr := victim.Marshal(t.opts.PageSize)
		if merr != nil {
			panic(fmt.Sprintf("blinktree: drain mark image of %d: %v", victim.id, merr))
		}
		return &wal.Record{
			Type:   wal.TSMO,
			SMO:    wal.SMODrainMark,
			Images: []wal.PageImage{{ID: victim.id, Data: img}},
		}
	})
	if err != nil {
		panic(fmt.Sprintf("blinktree: logging drain mark: %v", err))
	}
}

// resolveParent fills a.parent (and re-remembers D_X) by traversing to the
// victim's parent level. Returns false if the victim is at or above the
// root level (nothing to consolidate into).
func (t *Tree) resolveParent(a *action) bool {
	_, rootLevel := t.readAnchor()
	if rootLevel <= a.level {
		return false
	}
	dx := t.dx.v.Load()
	p, _, err := t.traverse(traverseOpts{
		key: a.sep, level: a.level + 1, intent: latch.Shared, dx: dx,
	})
	if err != nil {
		return false
	}
	a.parent = ref{id: p.id, epoch: p.c.Epoch}
	a.dx = dx
	t.unlatchUnpin(p, latch.Shared, false)
	return true
}

// logConsolidate appends the atomic SMO record for a consolidation: parent
// and left-sibling after-images plus the victim's deallocation.
func (t *Tree) logConsolidate(p, left, victim *node) {
	if t.log == nil {
		return
	}
	_, err := t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
		p.c.LSN = uint64(lsn)
		left.c.LSN = uint64(lsn)
		pi, perr := p.Marshal(t.opts.PageSize)
		if perr != nil {
			panic(fmt.Sprintf("blinktree: consolidate image of parent %d: %v", p.id, perr))
		}
		li, lerr := left.Marshal(t.opts.PageSize)
		if lerr != nil {
			panic(fmt.Sprintf("blinktree: consolidate image of left %d: %v", left.id, lerr))
		}
		return &wal.Record{
			Type: wal.TSMO,
			SMO:  wal.SMOConsolidate,
			Images: []wal.PageImage{
				{ID: p.id, Data: pi},
				{ID: left.id, Data: li},
			},
			Deallocs: []page.PageID{victim.id},
		}
	})
	if err != nil {
		panic(fmt.Sprintf("blinktree: logging consolidate: %v", err))
	}
}

// processShrink removes a root that has exactly one child and no right
// sibling, making the child the new root. The root is an index node, so its
// deletion increments D_X. Latch order: anchor ≺ D_X ≺ node.
func (t *Tree) processShrink(a action) {
	t.anchor.mu.Lock()
	defer t.anchor.mu.Unlock()
	if t.anchor.root != a.origID {
		return // already shrunk or grown past
	}
	t.dx.l.Acquire(latch.Exclusive)
	defer t.dx.l.Release(latch.Exclusive)

	root, err := t.pinLatch(a.origID, latch.Exclusive)
	if err != nil {
		return
	}
	if root.dead || root.isLeaf() || len(root.c.Children) != 1 || root.c.Right != 0 ||
		root.c.Epoch != a.origEpoch {
		t.unlatchUnpin(root, latch.Exclusive, false)
		return
	}
	child := root.c.Children[0]
	t.dx.v.Add(1)
	t.c.dxIncrements.Add(1)
	root.dead = true

	if t.log != nil {
		_, err := t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
			return &wal.Record{
				Type:     wal.TSMO,
				SMO:      wal.SMOShrink,
				Deallocs: []page.PageID{root.id},
				Root:     child,
			}
		})
		if err != nil {
			panic(fmt.Sprintf("blinktree: logging shrink: %v", err))
		}
	}

	t.anchor.root = child
	t.anchor.level = root.c.Level - 1
	t.c.shrinks.Add(1)
	t.traceSMO(obs.EvCompleted, &a)
	t.unlatchUnpin(root, latch.Exclusive, false)
	t.reclaim(root.id)
}
