package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// crashEnv is a tree over a shared MemStore + MemDevice whose crash
// semantics we control: Crash() discards unsynced log records and simulates
// total loss of volatile state (the buffer pool's dirty pages, the to-do
// queue, delete state).
type crashEnv struct {
	dev *wal.MemDevice
}

// openLogged opens a (possibly recovered) tree over the env's log. Each
// open gets a FRESH page store populated only by recovery: that simulates
// the worst case where no data page made it to disk. For checkpoint tests
// use openLoggedSharedStore instead.
func (e *crashEnv) openLogged(t *testing.T, store storage.Store) *Tree {
	t.Helper()
	tr, err := New(Options{
		PageSize:  512,
		Store:     store,
		LogDevice: e.dev,
		Workers:   WorkersNone,
		MinFill:   0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecoveryEmptyLogFormatsFresh(t *testing.T) {
	env := &crashEnv{dev: wal.NewMemDevice()}
	tr := env.openLogged(t, storage.NewMemStore(512))
	defer tr.Close()
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryRedoCommitted(t *testing.T) {
	env := &crashEnv{dev: wal.NewMemDevice()}
	tr := env.openLogged(t, storage.NewMemStore(512))
	const n = 600
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	// Force the log durable, then crash without flushing any data page.
	if err := tr.log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	env.dev.Crash()
	tr.todo.stop() // abandon, simulating process death

	tr2 := env.openLogged(t, storage.NewMemStore(512))
	defer tr2.Close()
	if err := tr2.Verify(); err != nil {
		t.Fatalf("recovered tree ill-formed: %v", err)
	}
	for i := 0; i < n; i++ {
		got, err := tr2.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("recovered get %d: %q, %v", i, got, err)
		}
	}
	if cnt, _ := tr2.Len(); cnt != n {
		t.Fatalf("recovered Len = %d, want %d", cnt, n)
	}
}

func TestRecoveryMidSMOCrash(t *testing.T) {
	// Crash with many splits logged but index postings pending (the to-do
	// queue is volatile). Recovery must produce a well-formed tree; lost
	// postings are re-discovered by side traversals.
	env := &crashEnv{dev: wal.NewMemDevice()}
	tr := env.openLogged(t, storage.NewMemStore(512))
	const n = 800
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	// No drain: postings pending. Flush the log, crash.
	if err := tr.log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	env.dev.Crash()
	tr.todo.stop()

	tr2 := env.openLogged(t, storage.NewMemStore(512))
	defer tr2.Close()
	for i := 0; i < n; i++ {
		got, err := tr2.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("recovered get %d: %q, %v", i, got, err)
		}
	}
	if tr2.Stats().SideTraversals == 0 {
		t.Log("note: no side traversals needed after recovery (all terms were posted)")
	}
	mustVerify(t, tr2)
	// After draining re-discovered postings, the tree is fully repaired.
	if err := tr2.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryLosesUnflushedTail(t *testing.T) {
	env := &crashEnv{dev: wal.NewMemDevice()}
	tr := env.openLogged(t, storage.NewMemStore(512))
	tr.Put([]byte("durable"), []byte("1"))
	tr.log.FlushAll()
	tr.Put([]byte("volatile"), []byte("2")) // not flushed
	env.dev.Crash()
	tr.todo.stop()

	tr2 := env.openLogged(t, storage.NewMemStore(512))
	defer tr2.Close()
	if _, err := tr2.Get([]byte("durable")); err != nil {
		t.Fatalf("durable record lost: %v", err)
	}
	if _, err := tr2.Get([]byte("volatile")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("unflushed record survived crash: %v", err)
	}
}

func TestRecoveryUndoesLoserTxn(t *testing.T) {
	env := &crashEnv{dev: wal.NewMemDevice()}
	tr := env.openLogged(t, storage.NewMemStore(512))
	// Committed baseline.
	x1, _ := tr.Begin()
	x1.Put([]byte("keep"), []byte("committed"))
	x1.Put([]byte("mod"), []byte("original"))
	if err := x1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Loser: updates, inserts and deletes, then crash before commit.
	x2, _ := tr.Begin()
	x2.Put([]byte("mod"), []byte("dirty"))
	x2.Put([]byte("new"), []byte("dirty"))
	x2.Delete([]byte("keep"))
	tr.log.FlushAll() // loser's records are durable, commit is not
	env.dev.Crash()
	tr.todo.stop()

	tr2 := env.openLogged(t, storage.NewMemStore(512))
	defer tr2.Close()
	if got, err := tr2.Get([]byte("keep")); err != nil || string(got) != "committed" {
		t.Fatalf("deleted-by-loser record: %q, %v", got, err)
	}
	if got, err := tr2.Get([]byte("mod")); err != nil || string(got) != "original" {
		t.Fatalf("updated-by-loser record: %q, %v", got, err)
	}
	if _, err := tr2.Get([]byte("new")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("loser insert survived: %v", err)
	}
	mustVerify(t, tr2)
}

func TestRecoveryIdempotentDoubleCrash(t *testing.T) {
	// Crash, recover, crash again immediately (undo CLRs durable), recover
	// again: same final state.
	env := &crashEnv{dev: wal.NewMemDevice()}
	tr := env.openLogged(t, storage.NewMemStore(512))
	x, _ := tr.Begin()
	for i := 0; i < 50; i++ {
		x.Put(key(i), valb(i))
	}
	tr.log.FlushAll()
	env.dev.Crash()
	tr.todo.stop()

	tr2 := env.openLogged(t, storage.NewMemStore(512)) // undoes the loser
	tr2.log.FlushAll()
	env.dev.Crash() // crash right after recovery completes
	tr2.todo.stop()

	tr3 := env.openLogged(t, storage.NewMemStore(512))
	defer tr3.Close()
	if cnt, _ := tr3.Len(); cnt != 0 {
		t.Fatalf("after double crash Len = %d, want 0", cnt)
	}
	mustVerify(t, tr3)
}

func TestCheckpointBoundsRedo(t *testing.T) {
	env := &crashEnv{dev: wal.NewMemDevice()}
	store := storage.NewMemStore(512)
	tr := env.openLogged(t, store)
	const n = 400
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	if err := tr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := n; i < n+100; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.log.FlushAll()
	env.dev.Crash()
	tr.todo.stop()

	// Reopen over the SAME store: the checkpoint flushed pages there, so
	// redo only needs the post-checkpoint suffix.
	tr2 := env.openLogged(t, store)
	defer tr2.Close()
	for i := 0; i < n+100; i++ {
		got, err := tr2.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("get %d after checkpointed recovery: %q, %v", i, got, err)
		}
	}
	mustVerify(t, tr2)
}

func TestCheckpointCarriesActiveTxn(t *testing.T) {
	env := &crashEnv{dev: wal.NewMemDevice()}
	store := storage.NewMemStore(512)
	tr := env.openLogged(t, store)
	x, _ := tr.Begin()
	x.Put([]byte("loser-key"), []byte("dirty"))
	if err := tr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash with the transaction's only record BEFORE the checkpoint: the
	// checkpoint's active-transaction list is what makes it a loser.
	tr.log.FlushAll()
	env.dev.Crash()
	tr.todo.stop()

	tr2 := env.openLogged(t, store)
	defer tr2.Close()
	if _, err := tr2.Get([]byte("loser-key")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("pre-checkpoint loser not undone: %v", err)
	}
}

func TestRecoveryWithConsolidations(t *testing.T) {
	env := &crashEnv{dev: wal.NewMemDevice()}
	tr := env.openLogged(t, storage.NewMemStore(512))
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	for i := 0; i < n; i++ {
		if i%7 != 0 {
			tr.Delete(key(i))
		}
	}
	tr.DrainTodo() // consolidations (and their SMO records) happen
	if tr.Stats().LeafConsolidated == 0 {
		t.Fatal("setup: no consolidations to recover")
	}
	tr.log.FlushAll()
	env.dev.Crash()
	tr.todo.stop()

	tr2 := env.openLogged(t, storage.NewMemStore(512))
	defer tr2.Close()
	mustVerify(t, tr2)
	for i := 0; i < n; i++ {
		got, err := tr2.Get(key(i))
		if i%7 == 0 {
			if err != nil || !bytes.Equal(got, valb(i)) {
				t.Fatalf("survivor %d: %q, %v", i, got, err)
			}
		} else if !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("deleted %d resurrected: %q, %v", i, got, err)
		}
	}
}

func TestRecoveryFileBacked(t *testing.T) {
	dir := t.TempDir()
	dev, err := wal.OpenFileDevice(dir + "/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	store, err := storage.OpenFileStore(dir+"/pages.db", 512)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Options{PageSize: 512, Store: store, LogDevice: dev, Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	dev.Close()

	dev2, err := wal.OpenFileDevice(dir + "/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	store2, err := storage.OpenFileStore(dir+"/pages.db", 512)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := New(Options{PageSize: 512, Store: store2, LogDevice: dev2, Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	for i := 0; i < n; i++ {
		got, err := tr2.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("file-backed recovery get %d: %q, %v", i, got, err)
		}
	}
	mustVerify(t, tr2)
}

func TestTxnSeqResumesAboveRecovered(t *testing.T) {
	env := &crashEnv{dev: wal.NewMemDevice()}
	tr := env.openLogged(t, storage.NewMemStore(512))
	var lastID uint64
	for i := 0; i < 5; i++ {
		x, _ := tr.Begin()
		x.Put(key(i), valb(i))
		x.Commit()
		lastID = x.ID()
	}
	tr.log.FlushAll()
	env.dev.Crash()
	tr.todo.stop()

	tr2 := env.openLogged(t, storage.NewMemStore(512))
	defer tr2.Close()
	x, _ := tr2.Begin()
	defer x.Abort()
	if x.ID() <= lastID {
		t.Fatalf("txn ID %d not above recovered max %d", x.ID(), lastID)
	}
}

func TestRecoveryManyRandomCrashes(t *testing.T) {
	// Fuzz-style: run random work, crash at a random durable horizon,
	// recover, verify invariants and that committed == surviving.
	for trial := 0; trial < 5; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			env := &crashEnv{dev: wal.NewMemDevice()}
			tr := env.openLogged(t, storage.NewMemStore(512))
			committed := make(map[string][]byte)
			for round := 0; round < 10; round++ {
				x, _ := tr.Begin()
				local := make(map[string][]byte)
				for i := 0; i < 20; i++ {
					k := key((trial*1000 + round*20 + i) % 300)
					v := []byte(fmt.Sprintf("t%d-r%d-%d", trial, round, i))
					if err := x.Put(k, v); err != nil {
						t.Fatal(err)
					}
					local[string(k)] = v
				}
				if round%3 == 2 {
					x.Abort()
				} else {
					if err := x.Commit(); err != nil {
						t.Fatal(err)
					}
					for k, v := range local {
						committed[k] = v
					}
				}
			}
			// One loser in flight at crash time.
			x, _ := tr.Begin()
			x.Put([]byte("in-flight"), []byte("dirty"))
			tr.log.FlushAll()
			env.dev.Crash()
			tr.todo.stop()

			tr2 := env.openLogged(t, storage.NewMemStore(512))
			defer tr2.Close()
			mustVerify(t, tr2)
			got, err := tr2.Records()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(committed) {
				t.Fatalf("recovered %d records, want %d", len(got), len(committed))
			}
			for k, v := range committed {
				if !bytes.Equal(got[k], v) {
					t.Fatalf("key %q: got %q want %q", k, got[k], v)
				}
			}
		})
	}
}
