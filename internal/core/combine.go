package core

// Hot-leaf operation combining (flat combining ahead of the leaf latch).
//
// Uniform-random workloads spread writers across leaves, but a skewed
// workload funnels many writers onto one leaf, and the paper's latch
// protocol then serializes them: each writer pays a full latch handoff
// (block, wake, promote) and a WAL mutex round trip for one record. The
// combining engine collapses that convoy. A writer that finds a leaf's
// latch contended — or, past the contention threshold, any writer headed
// for that leaf — publishes its operation into a small per-leaf buffer
// instead of queueing on the latch. Whoever next holds the leaf exclusively
// (the "winner": a writer on the normal path, a publisher rescuing itself,
// or an SMO) drains the buffer before releasing: the whole batch is applied
// under that one latch acquisition and logged as one WAL append group
// (wal.Log.AppendBatch), and each parked publisher is handed its individual
// result — LSN, updated/not-found outcome, or a retry verdict.
//
// Retry verdicts preserve the paper's per-operation semantics: an operation
// whose key no longer falls in the leaf's key space (a split moved it
// right), whose leaf died (consolidated, §2.3), or whose record no longer
// fits is NOT applied by the winner; the publisher re-executes it through
// the normal traverse/split path, exactly as if it had arrived after the
// SMO. The winner never splits on behalf of a published operation, so the
// drain adds no SMO surface.
//
// Only non-transactional operations combine: a transactional write must
// interleave its record-lock no-wait protocol and the §2.4 re-latch
// procedure with the leaf latch, which cannot be delegated to a winner
// holding different locks.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// combineSpinBudget is the number of done-checks a parked publisher makes
// (interleaved with try-acquire self-drain attempts and Gosched) before it
// blocks on the leaf latch to rescue itself.
const combineSpinBudget = 128

// combineOp is one published operation and, once done, its result. The
// winner fills the result fields and then sets done; the publisher reads
// them only after observing done, so the atomic bool orders the handoff.
type combineOp struct {
	op  wal.Op // OpInsert (upsert) or OpDelete
	key []byte
	val []byte

	// Result, valid once done is set.
	lsn     wal.LSN
	updated bool  // upsert replaced an existing record
	retry   bool  // not applied: re-execute via the normal path
	err     error // ErrKeyNotFound for a delete of an absent key

	// done is the publisher/winner handoff bit: the winner's Store
	// happens-after its result writes, the publisher's reads happen-after
	// observing true.
	done atomic.Bool
}

// combiner is a leaf's combining buffer: a bounded slice of pending
// operations under a small mutex. Publishes and takes are rare relative to
// the operations they batch, so a mutex (not a lock-free ring) keeps the
// lifecycle trivially correct.
type combiner struct {
	mu      sync.Mutex
	cap     int
	pending []*combineOp
}

// publish appends op, reporting false when the buffer is full (the caller
// then takes the normal path).
func (c *combiner) publish(op *combineOp) bool {
	c.mu.Lock()
	if len(c.pending) >= c.cap {
		c.mu.Unlock()
		return false
	}
	c.pending = append(c.pending, op)
	c.mu.Unlock()
	return true
}

// take removes and returns every pending operation.
func (c *combiner) take() []*combineOp {
	c.mu.Lock()
	ops := c.pending
	c.pending = nil
	c.mu.Unlock()
	return ops
}

// combinerFor returns n's combining buffer, creating it on first use.
func (n *node) combinerFor(capacity int) *combiner {
	if c := n.comb.Load(); c != nil {
		return c
	}
	c := &combiner{cap: capacity}
	if n.comb.CompareAndSwap(nil, c) {
		return c
	}
	return n.comb.Load()
}

// resolve publishes op's result to its publisher.
func (op *combineOp) resolve() { op.done.Store(true) }

// findLeafForCombine descends optimistically (through routing snapshots,
// like traverseOpt) to the leaf that should cover key, returning it pinned
// but UNLATCHED, together with the remembered path. Nothing about the
// returned node is validated — the caller re-checks everything under a
// latch (direct apply) or at drain time (covers/dead checks). ok=false
// means the descent lost a validation race; the caller falls back to the
// normal traversal.
func (t *Tree) findLeafForCombine(key []byte, sp *obs.Span) (*node, []pathEntry, bool) {
	rootID, rootLevel := t.readAnchor()
	n, err := t.fetchSpan(rootID, sp)
	if err != nil {
		return nil, nil, false
	}
	var path []pathEntry
	level := rootLevel
	for level > 0 {
		r, v, ok := n.routeView()
		if !ok || r.dead || r.level != level || t.cmp(key, r.low) < 0 {
			t.unpin(n)
			return nil, nil, false
		}
		var next page.PageID
		if r.high != nil && t.cmp(key, r.high) >= 0 {
			if r.right == 0 {
				t.unpin(n)
				return nil, nil, false
			}
			next = r.right
		} else {
			ci := childIndex(t.cmp, r.keys, key)
			if ci < 0 || ci >= len(r.children) {
				t.unpin(n)
				return nil, nil, false
			}
			next = r.children[ci]
			path = append(path, pathEntry{
				ref:   ref{id: n.id, epoch: r.epoch},
				level: r.level,
				dd:    r.dd,
			})
			level--
		}
		m, err := t.fetchSpan(next, sp)
		if err != nil || !n.latch.Validate(v) {
			if err == nil {
				t.unpin(m)
			}
			t.unpin(n)
			return nil, nil, false
		}
		t.unpin(n)
		n = m
	}
	return n, path, true
}

// combinePut is the combining front end for a non-transactional upsert.
// done=false means the combining layer did not handle the operation and the
// caller must run the normal path.
func (t *Tree) combinePut(lp recOpParams, key, val []byte) (lsn wal.LSN, updated, done bool, err error) {
	op := &combineOp{op: wal.OpInsert, key: key, val: val}
	outcome, leaf, path, dx := t.combineAttempt(op, lp.sp)
	switch outcome {
	case combineDirect:
		lsn, updated, err = t.putOnLeaf(leaf, path, dx, lp, key, val)
		return lsn, updated, true, err
	case combineResolved:
		return op.lsn, op.updated, true, op.err
	default:
		return 0, false, false, nil
	}
}

// combineDelete is the combining front end for a non-transactional delete.
func (t *Tree) combineDelete(lp recOpParams, key []byte) (lsn wal.LSN, done bool, err error) {
	op := &combineOp{op: wal.OpDelete, key: key}
	outcome, leaf, path, dx := t.combineAttempt(op, lp.sp)
	switch outcome {
	case combineDirect:
		lsn, err = t.deleteOnLeaf(leaf, path, dx, lp, key)
		return lsn, true, err
	case combineResolved:
		return op.lsn, true, op.err
	default:
		return 0, false, nil
	}
}

// combineOutcome is combineAttempt's verdict.
type combineOutcome uint8

const (
	// combineMiss: not handled; run the normal traversal.
	combineMiss combineOutcome = iota
	// combineDirect: the leaf is held exclusively (pinned); apply directly.
	combineDirect
	// combineResolved: a winner resolved the published op; result is in it.
	combineResolved
)

// combineAttempt routes one operation through the combining layer: an
// optimistic descent to the candidate leaf, then either a direct uncontended
// apply (try-latch won), a publish-and-wait (contention past the threshold),
// or a miss back to the normal path. On combineDirect the returned leaf is
// pinned and exclusively latched, with the optimistic path for SMO hints.
func (t *Tree) combineAttempt(op *combineOp, sp *obs.Span) (combineOutcome, *node, []pathEntry, uint64) {
	dx := t.dx.v.Load()
	leaf, path, ok := t.findLeafForCombine(op.key, sp)
	if !ok {
		return combineMiss, nil, nil, dx
	}
	if !t.combineAlways {
		if leaf.latch.TryAcquire(latch.Update) {
			// Uncontended: validate the optimistic landing under the
			// update latch, then promote and apply in place.
			if !leaf.dead && leaf.isLeaf() && leaf.covers(t.cmp, op.key) {
				pt0 := sp.Now()
				leaf.latch.Promote()
				sp.StageSince(obs.StageLatchX, 0, pt0)
				return combineDirect, leaf, path, dx
			}
			leaf.latch.Release(latch.Update)
			t.unpin(leaf)
			return combineMiss, nil, nil, dx
		}
		if leaf.hot.Add(1) < uint32(t.opts.CombineThreshold) {
			t.unpin(leaf)
			return combineMiss, nil, nil, dx
		}
	}
	if !leaf.combinerFor(t.opts.CombineBuffer).publish(op) {
		t.unpin(leaf)
		return combineMiss, nil, nil, dx
	}
	t.c.combinePublishes.Add(1)
	var w0 time.Time
	if t.obs.MetricsOn() {
		w0 = time.Now()
	}
	t.combineAwait(leaf, op)
	if !w0.IsZero() {
		t.obs.ObserveCombineWait(time.Since(w0))
	}
	t.unpin(leaf)
	if op.retry {
		t.c.combineRetries.Add(1)
		return combineMiss, nil, nil, dx
	}
	return combineResolved, nil, nil, dx
}

// combineAwait parks the publisher until its operation is resolved. The
// publisher is its own rescuer: it spins on the done flag, periodically
// try-acquires the leaf exclusively to self-drain (which resolves its own
// operation, batch size >= 1), and past the spin budget blocks on the latch
// like any writer — the drain in unlatchUnpin runs on every exclusive
// release, so once the publisher holds the latch its operation is resolved.
// The publisher's pin is preserved across self-drains (unlatchUnpin
// consumes one pin, so a replacement is taken first) and released by the
// caller.
func (t *Tree) combineAwait(leaf *node, op *combineOp) {
	spins := 0
	for !op.done.Load() {
		if leaf.latch.TryAcquire(latch.Exclusive) {
			t.selfDrain(leaf)
			continue
		}
		spins++
		if spins > combineSpinBudget {
			leaf.latch.Acquire(latch.Exclusive)
			t.selfDrain(leaf)
			spins = 0
			continue
		}
		runtime.Gosched()
	}
}

// selfDrain releases an exclusive latch through unlatchUnpin (running the
// combiner drain) while keeping one pin for the caller: the frame is
// re-pinned first, and unlatchUnpin consumes that replacement. The fetch
// cannot miss — the caller's existing pin keeps the frame resident.
func (t *Tree) selfDrain(leaf *node) {
	if _, err := t.fetch(leaf.id); err != nil {
		// Unreachable for a pinned frame; release without the extra pin
		// so the latch is never leaked.
		leaf.latch.Release(latch.Exclusive)
		return
	}
	t.unlatchUnpin(leaf, latch.Exclusive, false)
}

// drainCombiner applies every operation published on n. The caller holds
// n's exclusive latch; the return value reports whether the page was
// mutated (the caller marks the frame dirty). Operations the winner cannot
// apply safely under this latch — dead leaf, key outside the fences, record
// does not fit without a split, delete of an absent key — are resolved
// individually (retry or ErrKeyNotFound); the rest are applied in arrival
// order and logged as one WAL append group with consecutive LSNs.
func (t *Tree) drainCombiner(n *node) bool {
	c := n.comb.Load()
	if c == nil {
		return false
	}
	ops := c.take()
	if len(ops) == 0 {
		return false
	}
	// A (nearly) empty drain means contention has subsided: cool the
	// counter so the leaf stops routing writers through the buffer.
	if len(ops) <= 1 {
		n.hot.Store(0)
	}
	if n.dead {
		for _, op := range ops {
			op.retry = true
			op.resolve()
		}
		return false
	}
	var applied []*combineOp
	var builds []func(wal.LSN) *wal.Record
	mutated := false
	for _, op := range ops {
		if !n.covers(t.cmp, op.key) {
			op.retry = true
			op.resolve()
			continue
		}
		pos, found := n.searchLeaf(t.cmp, op.key)
		var logOp wal.Op
		var old []byte
		key := op.key
		switch {
		case op.op == wal.OpDelete && !found:
			op.err = ErrKeyNotFound
			op.resolve()
			continue
		case op.op == wal.OpDelete:
			key = n.c.Keys[pos]
			old = n.removeLeafAt(pos)
			logOp = wal.OpDelete
		case found: // upsert of an existing record
			if n.size()+len(op.val)-len(n.c.Vals[pos]) > t.opts.PageSize {
				op.retry = true
				op.resolve()
				continue
			}
			old = n.c.Vals[pos]
			n.c.Vals[pos] = append([]byte(nil), op.val...)
			op.updated = true
			logOp = wal.OpUpdate
		default: // fresh insert
			if n.size()+page.EntrySize(page.Leaf, len(op.key), len(op.val)) > t.opts.PageSize {
				op.retry = true
				op.resolve()
				continue
			}
			n.insertLeafAt(pos, op.key, op.val)
			logOp = wal.OpInsert
		}
		mutated = true
		t.c.combineDrained.Add(1)
		if t.log == nil {
			op.resolve()
			continue
		}
		applied = append(applied, op)
		builds = append(builds, combineRecOp(n, logOp, key, op.val, old))
	}
	if len(builds) > 0 {
		lsns, err := t.log.AppendBatch(builds)
		for i, op := range applied {
			if i < len(lsns) {
				op.lsn = lsns[i]
			} else {
				op.err = err
			}
			op.resolve()
		}
	}
	if mutated {
		t.c.combineBatches.Add(1)
		t.obs.CombineBatch(len(ops))
		t.noteRightEdge(n)
	}
	return mutated
}

// combineRecOp builds one drained operation's log-record constructor for
// AppendBatch, copying the mutable byte slices now (the build closure runs
// later, under the log mutex) and stamping the leaf's page LSN exactly as
// logRecOp does.
func combineRecOp(leaf *node, op wal.Op, key, val, old []byte) func(wal.LSN) *wal.Record {
	key = append([]byte(nil), key...)
	val = append([]byte(nil), val...)
	old = append([]byte(nil), old...)
	return func(lsn wal.LSN) *wal.Record {
		leaf.c.LSN = uint64(lsn)
		return &wal.Record{
			Type:   wal.TRecOp,
			Op:     op,
			Page:   leaf.id,
			Key:    key,
			Val:    val,
			OldVal: old,
		}
	}
}
