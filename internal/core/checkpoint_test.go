package core

import (
	"errors"
	"sync"
	"testing"

	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// TestCheckpointConcurrentWithAborts hammers checkpoints against committing
// and aborting transactions: the abort compensations must respect the
// checkpoint gate (flushed pages are never mid-mutation).
func TestCheckpointConcurrentWithAborts(t *testing.T) {
	tr := newTestTree(t, Options{
		PageSize: 1024, Workers: 2,
		Store: storage.NewMemStore(1024), LogDevice: wal.NewMemDevice(),
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				x, err := tr.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 6; j++ {
					if err := x.Put(key(w*1000+i*6+j), valb(j)); err != nil {
						t.Error(err)
						return
					}
				}
				if i%2 == 0 {
					err = x.Abort()
				} else {
					err = x.Commit()
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := tr.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	mustVerify(t, tr)
	// Exactly the committed halves survive.
	want := 4 * 20 * 6
	if n, _ := tr.Len(); n != want {
		t.Fatalf("Len = %d, want %d", n, want)
	}
}

// TestSavepointRollbackConcurrentWithCheckpoint: RollbackTo also takes the
// checkpoint gate.
func TestSavepointRollbackConcurrentWithCheckpoint(t *testing.T) {
	tr := newTestTree(t, Options{
		PageSize: 1024, Workers: 2, LogDevice: wal.NewMemDevice(),
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			x, _ := tr.Begin()
			x.Put(key(i), valb(i))
			sp := x.Savepoint()
			x.Put(key(1000+i), valb(i))
			if err := x.RollbackTo(sp); err != nil {
				t.Error(err)
				return
			}
			if err := x.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := tr.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	mustVerify(t, tr)
	if n, _ := tr.Len(); n != 30 {
		t.Fatalf("Len = %d, want 30", n)
	}
}

// TestAbortAfterCloseFails documents the semantics: rollback needs the tree.
func TestAbortAfterCloseFails(t *testing.T) {
	tr, err := New(Options{Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tr.Begin()
	x.Put(key(1), valb(1))
	tr.Close()
	if err := x.Abort(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Abort after Close: %v, want ErrClosed", err)
	}
}
