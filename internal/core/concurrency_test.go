package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentInserts hammers the tree with disjoint insert ranges and
// verifies nothing is lost and every invariant holds.
func TestConcurrentInserts(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2})
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := g*per + i
				if err := tr.Put(key(k), valb(k)); err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mustVerify(t, tr)
	for k := 0; k < goroutines*per; k++ {
		got, err := tr.Get(key(k))
		if err != nil || !bytes.Equal(got, valb(k)) {
			t.Fatalf("get %d: %q, %v", k, got, err)
		}
	}
	if n, _ := tr.Len(); n != goroutines*per {
		t.Fatalf("Len = %d, want %d", n, goroutines*per)
	}
}

// TestConcurrentMixed runs inserts, deletes, gets and scans concurrently
// with background SMO workers, then checks invariants and a model of the
// final expected contents for keys owned by a single writer.
func TestConcurrentMixed(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.4, Workers: 2})
	const writers, per = 6, 400
	var wg sync.WaitGroup
	// Each writer owns a disjoint key range and records its final state.
	finals := make([]map[int][]byte, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			final := make(map[int][]byte)
			for i := 0; i < per; i++ {
				k := g*per + rng.Intn(per)
				switch rng.Intn(3) {
				case 0, 1:
					v := []byte(fmt.Sprintf("v-%d-%d", g, i))
					if err := tr.Put(key(k), v); err != nil {
						t.Errorf("put: %v", err)
						return
					}
					final[k] = v
				case 2:
					err := tr.Delete(key(k))
					if err != nil && !errors.Is(err, ErrKeyNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
					delete(final, k)
				}
			}
			finals[g] = final
		}(g)
	}
	// Two readers scan concurrently.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := ""
				err := tr.Scan(nil, nil, func(k, _ []byte) bool {
					if prev != "" && string(k) <= prev {
						t.Errorf("scan order violation: %q after %q", k, prev)
						return false
					}
					prev = string(k)
					return true
				})
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	mustVerify(t, tr)

	want := 0
	for g, final := range finals {
		if final == nil {
			continue
		}
		for k, v := range final {
			got, err := tr.Get(key(k))
			if err != nil || !bytes.Equal(got, v) {
				t.Fatalf("writer %d key %d: got %q (%v), want %q", g, k, got, err, v)
			}
			want++
		}
	}
	if n, _ := tr.Len(); n != want {
		t.Fatalf("Len = %d, want %d", n, want)
	}
}

// TestConcurrentDeleteHeavy drives the node-delete machinery hard: fill,
// then concurrent deleters and readers, with workers consolidating behind
// them.
func TestConcurrentDeleteHeavy(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.45, Workers: 4})
	const n = 4000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				if i%5 == 0 {
					continue // survivors
				}
				if err := tr.Delete(key(i)); err != nil && !errors.Is(err, ErrKeyNotFound) {
					t.Errorf("delete %d: %v", i, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := rng.Intn(n)
				_, err := tr.Get(key(k))
				if err != nil && !errors.Is(err, ErrKeyNotFound) {
					t.Errorf("get %d: %v", k, err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	mustVerify(t, tr)
	s := tr.Stats()
	if s.LeafConsolidated == 0 {
		t.Fatalf("no consolidation under concurrent delete load: %+v", s)
	}
	for i := 0; i < n; i += 5 {
		got, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("survivor %d: %q, %v", i, got, err)
		}
	}
}

// TestConcurrentGrowShrinkCycles repeatedly fills and empties the tree so
// root grows and shrinks race with traffic.
func TestConcurrentGrowShrinkCycles(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.45, Workers: 4})
	const n = 1200
	for cycle := 0; cycle < 3; cycle++ {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < n; i += 4 {
					if err := tr.Put(key(i), valb(i)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < n; i += 4 {
					if err := tr.Delete(key(i)); err != nil && !errors.Is(err, ErrKeyNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		mustVerify(t, tr)
		if cnt, _ := tr.Len(); cnt != 0 {
			t.Fatalf("cycle %d: Len = %d, want 0", cycle, cnt)
		}
	}
}

// TestTinyCacheEviction forces heavy buffer pool churn so nodes round-trip
// through serialization mid-run (D_D persistence across eviction, §4.1.2).
func TestTinyCacheEviction(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, CacheSize: 8, MinFill: 0.4, Workers: 2})
	const n = 1500
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	mustVerify(t, tr)
	if tr.PoolStats().Evictions == 0 {
		t.Fatal("tiny cache produced no evictions")
	}
	for i := 1; i < n; i += 2 {
		got, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("get %d: %q, %v", i, got, err)
		}
	}
}

// TestHotspotContention makes all goroutines fight over few keys, driving
// latch promotion and update-latch serialization.
func TestHotspotContention(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, Workers: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(i % 8)
				switch (g + i) % 3 {
				case 0:
					tr.Put(k, []byte(fmt.Sprintf("g%d-i%d", g, i)))
				case 1:
					tr.Get(k)
				case 2:
					tr.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	mustVerify(t, tr)
}
