package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"blinktree/internal/wal"
)

// TestDrainPolicyEmptyOnly verifies the drain comparator consolidates only
// empty nodes, so skewed deletes leave under-utilized pages behind (§1.3).
func TestDrainPolicyEmptyOnly(t *testing.T) {
	mk := func(policy DeletePolicy) (*Tree, int) {
		tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.45, DeletePolicy: policy})
		const n = 2000
		for i := 0; i < n; i++ {
			tr.Put(key(i), valb(i))
		}
		tr.DrainTodo()
		// Skewed purge: delete 90% of records, scattered.
		for i := 0; i < n; i++ {
			if i%10 != 0 {
				tr.Delete(key(i))
			}
		}
		for r := 0; r < 6; r++ {
			tr.DrainTodo()
			tr.Has(key(0))
		}
		mustVerify(t, tr)
		return tr, tr.StoreStats().LivePages
	}
	_, pagesDeleteState := mk(DeleteState)
	drainTr, pagesDrain := mk(Drain)
	if pagesDrain <= pagesDeleteState {
		t.Fatalf("drain policy should strand more pages: drain=%d delete-state=%d",
			pagesDrain, pagesDeleteState)
	}
	if drainTr.Stats().LeafConsolidated != 0 {
		// Scattered survivors keep every leaf non-empty, so drain never
		// consolidates anything here.
		t.Logf("note: drain consolidated %d empty leaves", drainTr.Stats().LeafConsolidated)
	}
}

// TestDrainPolicyConsolidatesEmptyNodes checks drain does delete nodes once
// they are fully empty, after the grace period.
func TestDrainPolicyConsolidatesEmptyNodes(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.45, DeletePolicy: Drain})
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	before := tr.StoreStats().LivePages
	// Range purge: delete a contiguous prefix so whole leaves empty out.
	for i := 0; i < n-100; i++ {
		tr.Delete(key(i))
	}
	for r := 0; r < 8; r++ {
		tr.DrainTodo()
		tr.Has(key(n - 1))
	}
	mustVerify(t, tr)
	if got := tr.Stats().LeafConsolidated; got == 0 {
		t.Fatal("drain never consolidated fully empty leaves")
	}
	after := tr.StoreStats().LivePages
	if after >= before {
		t.Fatalf("live pages did not shrink under range purge: %d -> %d", before, after)
	}
	if tr.DrainPending() != 0 {
		t.Fatalf("husks left after quiescent drain: %d", tr.DrainPending())
	}
}

// TestDrainMarkLogged verifies the comparator's extra log record per
// consolidation (§1.3 point 2).
func TestDrainMarkLogged(t *testing.T) {
	dev := wal.NewMemDevice()
	tr := newTestTree(t, Options{
		PageSize: 512, MinFill: 0.45, DeletePolicy: Drain, LogDevice: dev,
	})
	const n = 1200
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	for i := 0; i < n; i++ {
		tr.Delete(key(i))
	}
	for r := 0; r < 8; r++ {
		tr.DrainTodo()
		tr.Has(key(0))
	}
	if tr.Stats().LeafConsolidated == 0 {
		t.Fatal("setup: no consolidations")
	}
	tr.log.FlushAll()
	recs, err := tr.log.DurableRecords()
	if err != nil {
		t.Fatal(err)
	}
	var marks, consolidates int
	for _, r := range recs {
		if r.Type == wal.TSMO {
			switch r.SMO {
			case wal.SMODrainMark:
				marks++
			case wal.SMOConsolidate:
				consolidates++
			}
		}
	}
	if marks == 0 {
		t.Fatal("no drain-mark records logged")
	}
	if marks != consolidates {
		t.Fatalf("marks (%d) != consolidations (%d)", marks, consolidates)
	}
}

// TestSerializeSMOCorrectness runs the ARIES/IM comparator through the
// standard concurrent workload: same results, serialized SMOs.
func TestSerializeSMOCorrectness(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, SerializeSMO: true, Workers: 2})
	const goroutines, per = 6, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := g*per + i
				if err := tr.Put(key(k), valb(k)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mustVerify(t, tr)
	for k := 0; k < goroutines*per; k++ {
		got, err := tr.Get(key(k))
		if err != nil || !bytes.Equal(got, valb(k)) {
			t.Fatalf("get %d: %q, %v", k, got, err)
		}
	}
}

// TestSerializeSMOPostsAreEager: with the ARIES/IM comparator, index terms
// are posted before the triggering insert returns — no pending postings, no
// side traversals on later lookups.
func TestSerializeSMOPostsAreEager(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, SerializeSMO: true})
	const n = 800
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	if q := tr.TodoLen(); q != 0 {
		t.Fatalf("pending SMOs after eager mode inserts: %d", q)
	}
	side := tr.Stats().SideTraversals
	for i := 0; i < n; i++ {
		tr.Get(key(i))
	}
	if got := tr.Stats().SideTraversals; got != side {
		t.Fatalf("side traversals in eager mode lookups: %d", got-side)
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSerializeSMODeleteEmptyOnly: the ARIES/IM comparator also requires
// empty pages for node deletes.
func TestSerializeSMODeleteEmptyOnly(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.45, SerializeSMO: true, Workers: 2})
	const n = 1500
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	// Range purge empties leaves: consolidation must happen.
	for i := 0; i < n-50; i++ {
		if err := tr.Delete(key(i)); err != nil && !errors.Is(err, ErrKeyNotFound) {
			t.Fatal(err)
		}
	}
	for r := 0; r < 8; r++ {
		tr.DrainTodo()
		tr.Has(key(n - 1))
	}
	mustVerify(t, tr)
	if tr.Stats().LeafConsolidated == 0 {
		t.Fatal("no consolidation of empty leaves in serialize mode")
	}
}

// TestPoliciesAgreeOnContents: all four configurations produce identical
// record contents for the same operation sequence.
func TestPoliciesAgreeOnContents(t *testing.T) {
	configs := map[string]Options{
		"delete-state": {PageSize: 512, MinFill: 0.4},
		"drain":        {PageSize: 512, MinFill: 0.4, DeletePolicy: Drain},
		"ariesim":      {PageSize: 512, MinFill: 0.4, SerializeSMO: true},
		"nodelete":     {PageSize: 512, NoDeleteSupport: true},
	}
	var want map[string][]byte
	for name, opts := range configs {
		t.Run(name, func(t *testing.T) {
			tr := newTestTree(t, opts)
			for i := 0; i < 900; i++ {
				tr.Put(key(i%300), []byte{byte(i)})
			}
			for i := 0; i < 300; i += 3 {
				tr.Delete(key(i))
			}
			mustVerify(t, tr)
			got, err := tr.Records()
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				return
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d records, want %d", name, len(got), len(want))
			}
			for k, v := range want {
				if !bytes.Equal(got[k], v) {
					t.Fatalf("%s: mismatch at %q", name, k)
				}
			}
		})
	}
}
