package core

import (
	"errors"
	"fmt"
	"sync"

	"blinktree/internal/latch"
	"blinktree/internal/page"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// ErrNotEmpty is returned by BulkLoad on a tree that already has records.
var ErrNotEmpty = errors.New("blinktree: bulk load requires an empty tree")

// ErrBadParallel is returned for a negative parallelism degree.
var ErrBadParallel = errors.New("blinktree: bulk load parallelism must be >= 0")

// defaultChunkPages is the number of leaves grouped into one build/log chunk
// when Options.BulkChunkPages is zero. A chunk is the unit of WAL logging
// (one SMOBulkChunk record) and of hand-off to a builder goroutine, so it
// bounds both the largest log record and the pages pinned per in-flight
// chunk.
const defaultChunkPages = 64

// BulkLoad populates an empty tree from strictly ascending (key, value)
// pairs, building it bottom-up: leaves are packed to fill*PageSize, then
// each index level is built over the one below. This is far faster than
// repeated Put (no traversals, no splits) and yields a tree at the chosen
// fill factor.
//
// next returns the stream; ok=false ends it. fill in (0,1] defaults to
// 0.85. The tree must be empty; concurrent operations are blocked for the
// duration (the load holds the checkpoint gate exclusively). With logging
// enabled the load is made durable as chunked SMO records sealed by a
// commit record and a load-completion checkpoint: after a crash the load
// either happened completely or not at all.
func (t *Tree) BulkLoad(next func() (key, val []byte, ok bool), fill float64) error {
	return t.bulkLoad(next, fill, 1)
}

// BulkLoadParallel is BulkLoad with parallel builder goroutines: the
// ascending stream is partitioned into contiguous key-range chunks, each
// chunk's leaves are built by a worker from a page-ID lease taken up front
// (so workers never contend on the allocator), and the coordinator stitches
// fences and side pointers across chunk seams before building the shared
// upper index levels. The resulting tree satisfies structure invariants
// identical to a serial load's. parallel <= 1 degrades to the serial path;
// 0 means serial.
func (t *Tree) BulkLoadParallel(next func() (key, val []byte, ok bool), fill float64, parallel int) error {
	if parallel < 0 {
		return ErrBadParallel
	}
	return t.bulkLoad(next, fill, parallel)
}

// bulkChild is one node of the level below the one being built: its low
// fence and page ID, all an index level needs.
type bulkChild struct {
	low []byte
	id  page.PageID
}

// bulkSession carries the state of one load across its phases.
type bulkSession struct {
	t        *Tree
	target   int // fill * PageSize
	parallel int
	chunk    int    // leaves per chunk
	sid      uint64 // WAL bulk session ID (Record.Txn)

	// allocated records every page this load reserved, for reclamation if
	// the load fails before the anchor flip.
	allocated []page.PageID

	// level accumulates (low fence, page ID) of the level most recently
	// completed, bottom-up; rootLvl is the height after the index build.
	level   []bulkChild
	rootLvl uint8

	// pending holds built-but-unlogged nodes of the serial leaf path and
	// of the index-level build; flushPending logs and unpins them.
	pending []*node

	pages  uint64 // nodes built
	chunks uint64 // chunk groups logged/flushed
}

// bulkLoad is the shared implementation behind BulkLoad and
// BulkLoadParallel.
func (t *Tree) bulkLoad(next func() (key, val []byte, ok bool), fill float64, parallel int) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.ckpt.Lock()
	defer t.ckpt.Unlock()
	if t.closed.Load() {
		return ErrClosed
	}
	t.todo.drain() // quiesce pending maintenance before replacing the root
	if fill <= 0 || fill > 1 {
		fill = 0.85
	}

	// Emptiness: the anchor level rules out any multi-level tree without
	// touching a page; only a level-0 root needs fetching, to distinguish
	// a fresh (or fully emptied) tree from one still holding records.
	oldRoot, oldLevel := t.readAnchor()
	if oldLevel != 0 {
		return ErrNotEmpty
	}
	r, err := t.fetch(oldRoot)
	if err != nil {
		return err
	}
	empty := len(r.c.Keys) == 0
	t.pool.Unpin(oldRoot, false)
	if !empty {
		return ErrNotEmpty
	}

	s := &bulkSession{
		t:        t,
		target:   int(fill * float64(t.opts.PageSize)),
		parallel: parallel,
		chunk:    t.bulkChunkPages(parallel),
	}
	if t.log != nil {
		s.sid = t.txnSeq.Add(1)
	}

	done := false
	defer func() {
		if done {
			return
		}
		// Failed load: every reserved page is unreferenced (the anchor
		// never flipped); release and free them so nothing leaks. The
		// phases have already unpinned whatever they had pinned.
		for _, id := range s.allocated {
			t.reclaim(id)
		}
	}()

	if s.parallel > 1 {
		err = s.loadLeavesParallel(next)
	} else {
		err = s.loadLeavesSerial(next)
	}
	if err != nil {
		return err
	}
	rootID, err := s.buildIndexLevels()
	if err != nil {
		return err
	}

	// Commit point: one record naming the new root seals the session — its
	// presence makes every chunk of this session redoable, its absence
	// makes them all dead weight (recovery skips them), so the load is
	// atomic across any crash point despite spanning many records.
	if t.log != nil {
		if _, err := t.log.Append(&wal.Record{
			Type:     wal.TSMO,
			SMO:      wal.SMOBulkCommit,
			Txn:      s.sid,
			Root:     rootID,
			Deallocs: []page.PageID{oldRoot},
		}); err != nil {
			return err
		}
		if err := t.log.FlushAll(); err != nil {
			return err
		}
	}

	t.anchor.mu.Lock()
	t.anchor.root = rootID
	t.anchor.level = s.rootLevel()
	t.anchor.mu.Unlock()
	done = true
	t.c.bulkLoadPages.Add(s.pages)
	t.c.bulkLoadChunks.Add(s.chunks)

	// The formatting leaf is unreachable now; retire it. Its deletion is a
	// leaf delete under no parent, so no delete-state update is needed —
	// nothing can hold a reference to an empty just-formatted root.
	old, err := t.fetch(oldRoot)
	if err == nil {
		old.latch.Acquire(latch.Exclusive)
		old.dead = true
		old.latch.Release(latch.Exclusive)
		t.pool.Unpin(oldRoot, false)
		t.reclaim(oldRoot)
	}

	// Load-completion checkpoint: flush the freshly built pages and bound
	// redo past the load, so no later recovery replays it. Inlined rather
	// than calling Checkpoint (the load already holds the gate).
	if t.log != nil {
		if err := t.pool.FlushAll(); err != nil {
			return err
		}
		if err := t.store.Sync(); err != nil {
			return err
		}
		t.active.mu.Lock()
		var act []wal.ActiveTxn
		for id, x := range t.active.m {
			act = append(act, wal.ActiveTxn{ID: id, LastLSN: x.last()})
		}
		t.active.mu.Unlock()
		if _, err := t.log.Append(&wal.Record{
			Type:   wal.TCheckpoint,
			Root:   rootID,
			Active: act,
		}); err != nil {
			return err
		}
		if err := t.log.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// bulkChunkPages resolves the chunk size, clamped so the pinned working set
// (the in-flight dispatch window plus one building chunk plus the index
// pending group) stays safely inside the buffer pool.
func (t *Tree) bulkChunkPages(parallel int) int {
	cp := t.opts.BulkChunkPages
	if cp <= 0 {
		cp = defaultChunkPages
	}
	if parallel < 1 {
		parallel = 1
	}
	budget := t.opts.CacheSize - 8
	if max := budget / (parallel + 2); cp > max {
		cp = max
	}
	if cp < 1 {
		cp = 1
	}
	return cp
}

// rootLevel returns the level of the single remaining node after the index
// build. s.level holds exactly that node.
func (s *bulkSession) rootLevel() uint8 {
	return s.rootLvl
}

// leafBoundary reports whether adding an entry of the given key/value sizes
// would overfill the open leaf. size is the leaf's current serialized size.
// len(k) extra bytes are reserved for the high fence the leaf will receive
// when it closes: the separator is never longer than the first key of the
// next leaf, so the reservation is a safe upper bound — without it a load
// at fill=1.0 could build a leaf that no longer fits once its fence is set.
func (s *bulkSession) leafBoundary(size, nkeys, klen, vlen int) bool {
	return nkeys > 0 && size+page.EntrySize(page.Leaf, klen, vlen)+klen > s.target
}

// boundarySep returns the fence separating two adjacent leaves: the
// shortest byte string above the last key of the left leaf under bytewise
// ordering (suffix truncation, same as leaf splits), or an exact copy of
// the right leaf's first key under a custom comparator.
func (s *bulkSession) boundarySep(prevKey, k []byte) []byte {
	if s.t.bytewise {
		return shortestSeparator(prevKey, k)
	}
	return append([]byte(nil), k...)
}

// logChunk makes one chunk of freshly built nodes durable (one SMOBulkChunk
// record carrying all after-images and allocations, stamped with the record
// LSN), publishes their routing snapshots and unpins them dirty. The nodes
// were private until now; they stay unreachable until the anchor flip, but
// once unpinned they may be evicted, which is exactly why the images must
// be in the log first (the WAL rule covers the write-back).
func (s *bulkSession) logChunk(nodes []*node) error {
	if len(nodes) == 0 {
		return nil
	}
	t := s.t
	if t.log != nil {
		_, err := t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
			rec := &wal.Record{Type: wal.TSMO, SMO: wal.SMOBulkChunk, Txn: s.sid}
			for _, n := range nodes {
				n.c.LSN = uint64(lsn)
				n.c.Epoch = uint64(lsn)
				img, merr := n.Marshal(t.opts.PageSize)
				if merr != nil {
					panic(fmt.Sprintf("blinktree: bulk load image of %d: %v", n.id, merr))
				}
				rec.Images = append(rec.Images, wal.PageImage{ID: n.id, Data: img})
				rec.Allocs = append(rec.Allocs, n.id)
			}
			return rec
		})
		if err != nil {
			return err
		}
	}
	for _, n := range nodes {
		n.publishRoute()
		t.pool.Unpin(n.id, true)
	}
	s.pages += uint64(len(nodes))
	s.chunks++
	return nil
}

// flushPending logs and releases the accumulated pending nodes. On a log
// failure the nodes are unpinned anyway (the load is aborting).
func (s *bulkSession) flushPending() error {
	if len(s.pending) == 0 {
		return nil
	}
	err := s.logChunk(s.pending)
	if err != nil {
		for _, n := range s.pending {
			s.t.pool.Unpin(n.id, false)
		}
	}
	s.pending = s.pending[:0]
	return err
}

// unpinPending releases the pending nodes without logging (failure path).
func (s *bulkSession) unpinPending() {
	for _, n := range s.pending {
		s.t.pool.Unpin(n.id, false)
	}
	s.pending = s.pending[:0]
}

// allocTracked allocates a node and records its page for failure cleanup.
func (s *bulkSession) allocTracked(c page.Content) (*node, error) {
	n, err := s.t.allocNode(c)
	if err != nil {
		return nil, err
	}
	s.allocated = append(s.allocated, n.id)
	return n, nil
}

// loadLeavesSerial is the single-goroutine leaf build: the baseline the
// parallel path is measured against. It streams entries into the open leaf
// with per-entry copies, closing leaves at the shared boundary rule and
// logging/unpinning them a chunk at a time so the pinned working set stays
// bounded no matter how large the load is.
func (s *bulkSession) loadLeavesSerial(next func() (key, val []byte, ok bool)) error {
	t := s.t
	fail := func(cur *node, err error) error {
		if cur != nil {
			t.pool.Unpin(cur.id, false)
		}
		s.unpinPending()
		return err
	}
	cur, err := s.allocTracked(page.Content{
		Kind: page.Leaf, Level: 0,
		Low:  []byte{},
		Keys: [][]byte{}, Vals: [][]byte{},
	})
	if err != nil {
		return err
	}
	var prevKey []byte
	count := 0
	for {
		k, v, ok := next()
		if !ok {
			break
		}
		if err := t.validateEntry(k, v); err != nil {
			return fail(cur, err)
		}
		if count > 0 && t.cmp(prevKey, k) >= 0 {
			return fail(cur, fmt.Errorf("blinktree: bulk load keys not strictly ascending at %q", k))
		}
		if s.leafBoundary(cur.size(), len(cur.c.Keys), len(k), len(v)) {
			sep := s.boundarySep(prevKey, k)
			nxt, err := s.allocTracked(page.Content{
				Kind: page.Leaf, Level: 0,
				Low:  sep,
				Keys: [][]byte{}, Vals: [][]byte{},
			})
			if err != nil {
				return fail(cur, err)
			}
			cur.c.High = sep
			cur.c.Right = nxt.id
			if err := s.closeLeaf(cur); err != nil {
				return fail(nxt, err)
			}
			cur = nxt
		}
		cur.c.Keys = append(cur.c.Keys, append([]byte(nil), k...))
		cur.c.Vals = append(cur.c.Vals, append([]byte(nil), v...))
		prevKey = append(prevKey[:0], k...)
		count++
	}
	if err := s.closeLeaf(cur); err != nil {
		return fail(nil, err)
	}
	if err := s.flushPending(); err != nil {
		s.unpinPending()
		return err
	}
	return nil
}

// closeLeaf files a completed leaf: it joins the level hand-off list for
// the index build and the pending chunk, which is flushed when full.
func (s *bulkSession) closeLeaf(n *node) error {
	s.level = append(s.level, bulkChild{low: n.c.Low, id: n.id})
	s.pending = append(s.pending, n)
	if len(s.pending) >= s.chunk {
		return s.flushPending()
	}
	return nil
}

// --- parallel leaf build ---

// bulkEnt locates one entry inside a chunk arena: the key starts at off,
// the value follows it immediately.
type bulkEnt struct {
	off  int
	klen int
	vlen int
}

// bulkLeafSpec describes one leaf of a chunk: its first entry index and its
// low fence (an owned copy, produced by the coordinator's boundary rule).
type bulkLeafSpec struct {
	start int
	low   []byte
}

// bulkChunk is the unit of hand-off between the coordinator and a builder
// goroutine: a contiguous key-range of whole leaves, the arena holding
// their bytes, and the page-ID lease the leaves adopt.
type bulkChunk struct {
	buf    []byte
	ents   []bulkEnt
	leaves []bulkLeafSpec
	ids    []page.PageID

	// Seam stitching: the low fence and page ID of the next chunk's first
	// leaf, filled in by the coordinator when that chunk is sealed; zero
	// on the final chunk (its last leaf keeps High=nil, Right=0).
	nextLow []byte
	nextID  page.PageID

	// Worker results. done is closed when the worker is finished; on
	// success nodes holds one pinned node per leaf, on failure err is set
	// and the worker has already unpinned whatever it had inserted.
	nodes    []*node
	err      error
	done     chan struct{}
	finished bool
}

// loadLeavesParallel is the multi-goroutine leaf build. The coordinator
// (the calling goroutine) streams entries into per-chunk arenas and decides
// every leaf boundary with the same rule as the serial path — which is what
// makes the two paths structurally identical — while builder goroutines
// turn completed chunks into pinned leaf nodes under pre-leased page IDs.
// Chunks are finished (seam-stitched, logged, unpinned) strictly in key
// order, at most `parallel` chunks in flight, so memory stays bounded and
// the WAL sees chunk records in ascending key order.
func (s *bulkSession) loadLeavesParallel(next func() (key, val []byte, ok bool)) error {
	t := s.t

	in := make(chan *bulkChunk, s.parallel)
	var wg sync.WaitGroup
	for i := 0; i < s.parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range in {
				s.buildChunk(c)
				close(c.done)
			}
		}()
	}

	var chunks []*bulkChunk
	nextFinish := 0 // chunks[:nextFinish] are finished
	inClosed := false
	abort := func(err error) error {
		if !inClosed {
			close(in)
		}
		wg.Wait()
		for _, c := range chunks[nextFinish:] {
			<-c.done
			for _, n := range c.nodes {
				t.pool.Unpin(n.id, false)
			}
		}
		return err
	}

	arenaCap := s.chunk * s.target
	newChunk := func() *bulkChunk {
		return &bulkChunk{
			buf:    make([]byte, 0, arenaCap),
			leaves: []bulkLeafSpec{{start: 0, low: []byte{}}},
			done:   make(chan struct{}),
		}
	}
	cur := newChunk()

	seal := func(c *bulkChunk) error {
		ids, err := storage.AllocateBatch(t.store, len(c.leaves))
		if err != nil {
			return err
		}
		s.allocated = append(s.allocated, ids...)
		c.ids = ids
		if len(chunks) > 0 {
			prev := chunks[len(chunks)-1]
			prev.nextLow = c.leaves[0].low
			prev.nextID = ids[0]
		}
		chunks = append(chunks, c)
		in <- c
		// Keep at most `parallel` chunks in flight beyond this one.
		if len(chunks)-nextFinish > s.parallel {
			if err := s.finishChunk(chunks[nextFinish]); err != nil {
				return err
			}
			nextFinish++
		}
		return nil
	}

	leafBase := (&page.Content{Kind: page.Leaf}).Size()
	leafSize := leafBase // open leaf's serialized size (Low is empty)
	leafEnts := 0
	var prevKey []byte // last appended key, aliasing a chunk arena

	for {
		k, v, ok := next()
		if !ok {
			break
		}
		if err := t.validateEntry(k, v); err != nil {
			return abort(err)
		}
		if s.leafBoundary(leafSize, leafEnts, len(k), len(v)) {
			// The boundary pair is ordering-checked here; builders check
			// the pairs interior to each leaf. Together every adjacent
			// pair is checked exactly once.
			if t.cmp(prevKey, k) >= 0 {
				return abort(fmt.Errorf("blinktree: bulk load keys not strictly ascending at %q", k))
			}
			sep := s.boundarySep(prevKey, k)
			if len(cur.leaves) >= s.chunk {
				if err := seal(cur); err != nil {
					return abort(err)
				}
				cur = newChunk()
				cur.leaves[0].low = sep
			} else {
				cur.leaves = append(cur.leaves, bulkLeafSpec{start: len(cur.ents), low: sep})
			}
			leafSize = leafBase + len(sep)
			leafEnts = 0
		}
		off := len(cur.buf)
		cur.buf = append(cur.buf, k...)
		cur.buf = append(cur.buf, v...)
		cur.ents = append(cur.ents, bulkEnt{off: off, klen: len(k), vlen: len(v)})
		prevKey = cur.buf[off : off+len(k)]
		leafSize += page.EntrySize(page.Leaf, len(k), len(v))
		leafEnts++
	}

	// Final (possibly partial, possibly empty) chunk, then drain in order.
	if err := seal(cur); err != nil {
		return abort(err)
	}
	inClosed = true
	close(in)
	for ; nextFinish < len(chunks); nextFinish++ {
		if err := s.finishChunk(chunks[nextFinish]); err != nil {
			return abort(err)
		}
	}
	wg.Wait()
	return nil
}

// buildChunk turns one sealed chunk into pinned leaf nodes (run on a
// builder goroutine). Keys and values alias the chunk arena — the tree
// never mutates stored key/value bytes in place, so the zero-copy slices
// are safe and the build does two allocations per leaf instead of two per
// entry. On failure the nodes already inserted are unpinned and err is set.
func (s *bulkSession) buildChunk(c *bulkChunk) {
	t := s.t
	fail := func(nodes []*node, err error) {
		for _, n := range nodes {
			t.pool.Unpin(n.id, false)
		}
		c.err = err
	}
	nodes := make([]*node, 0, len(c.leaves))
	for i, lf := range c.leaves {
		end := len(c.ents)
		if i+1 < len(c.leaves) {
			end = c.leaves[i+1].start
		}
		keys := make([][]byte, 0, end-lf.start)
		vals := make([][]byte, 0, end-lf.start)
		var prev []byte
		for _, e := range c.ents[lf.start:end] {
			k := c.buf[e.off : e.off+e.klen]
			v := c.buf[e.off+e.klen : e.off+e.klen+e.vlen]
			if prev != nil && t.cmp(prev, k) >= 0 {
				fail(nodes, fmt.Errorf("blinktree: bulk load keys not strictly ascending at %q", k))
				return
			}
			prev = k
			keys = append(keys, k)
			vals = append(vals, v)
		}
		cont := page.Content{
			Kind: page.Leaf, Level: 0,
			Low:  lf.low,
			Keys: keys, Vals: vals,
		}
		if i+1 < len(c.leaves) {
			cont.High = c.leaves[i+1].low
			cont.Right = c.ids[i+1]
		}
		n, err := t.adoptNode(c.ids[i], cont)
		if err != nil {
			fail(nodes, err)
			return
		}
		nodes = append(nodes, n)
	}
	c.nodes = nodes
}

// finishChunk completes one built chunk in key order: waits for its
// builder, stitches the seam to the following chunk (the last leaf's high
// fence and side pointer), logs the chunk record, and releases the nodes.
func (s *bulkSession) finishChunk(c *bulkChunk) error {
	t := s.t
	<-c.done
	if c.err != nil {
		c.finished = true
		return c.err
	}
	last := c.nodes[len(c.nodes)-1]
	if c.nextID != 0 {
		last.c.High = c.nextLow
		last.c.Right = c.nextID
	}
	if err := s.logChunk(c.nodes); err != nil {
		for _, n := range c.nodes {
			t.pool.Unpin(n.id, false)
		}
		c.nodes = nil
		c.finished = true
		return err
	}
	for i := range c.nodes {
		s.level = append(s.level, bulkChild{low: c.leaves[i].low, id: c.ids[i]})
	}
	c.nodes = nil
	c.finished = true
	return nil
}

// buildIndexLevels builds the shared upper levels over the completed leaf
// level, serially, using the same packing rule at every level and the same
// chunked logging as the leaves. Separators are the children's low fences —
// already suffix-truncated by the boundary rule — so index pages inherit
// the short keys, and prefix compression (page.Content.Compress, set by
// adoptNode under the bytewise comparator) densifies them further at
// marshal time. Returns the root's page ID.
func (s *bulkSession) buildIndexLevels() (page.PageID, error) {
	t := s.t
	lvl := uint8(0)
	for len(s.level) > 1 {
		lvl++
		children := s.level
		s.level = nil
		fail := func(cur *node, err error) error {
			if cur != nil {
				t.pool.Unpin(cur.id, false)
			}
			s.unpinPending()
			return err
		}
		cur, err := s.allocTracked(page.Content{
			Kind: page.Index, Level: lvl,
			Low:  []byte{},
			Keys: [][]byte{}, Children: []page.PageID{},
		})
		if err != nil {
			return 0, err
		}
		for _, ch := range children {
			term := page.EntrySize(page.Index, len(ch.low), 0)
			// Same shape as the leaf boundary rule: reserve len(low) for
			// the high fence this node receives when it closes.
			if len(cur.c.Keys) > 0 && cur.size()+term+len(ch.low) > s.target {
				nxt, err := s.allocTracked(page.Content{
					Kind: page.Index, Level: lvl,
					Low:  ch.low,
					Keys: [][]byte{}, Children: []page.PageID{},
				})
				if err != nil {
					return 0, fail(cur, err)
				}
				cur.c.High = ch.low
				cur.c.Right = nxt.id
				if err := s.closeIndex(cur); err != nil {
					return 0, fail(nxt, err)
				}
				cur = nxt
			}
			cur.c.Keys = append(cur.c.Keys, ch.low)
			cur.c.Children = append(cur.c.Children, ch.id)
		}
		if err := s.closeIndex(cur); err != nil {
			return 0, fail(nil, err)
		}
		if err := s.flushPending(); err != nil {
			s.unpinPending()
			return 0, err
		}
	}
	s.rootLvl = lvl
	return s.level[0].id, nil
}

// closeIndex files a completed index node, mirroring closeLeaf.
func (s *bulkSession) closeIndex(n *node) error {
	s.level = append(s.level, bulkChild{low: n.c.Low, id: n.id})
	s.pending = append(s.pending, n)
	if len(s.pending) >= s.chunk {
		return s.flushPending()
	}
	return nil
}
