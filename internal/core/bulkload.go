package core

import (
	"errors"
	"fmt"

	"blinktree/internal/latch"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// ErrNotEmpty is returned by BulkLoad on a tree that already has records.
var ErrNotEmpty = errors.New("blinktree: bulk load requires an empty tree")

// BulkLoad populates an empty tree from strictly ascending (key, value)
// pairs, building it bottom-up: leaves are packed to fill*PageSize, then
// each index level is built over the one below. This is far faster than
// repeated Put (no traversals, no splits) and yields a tree at the chosen
// fill factor.
//
// next returns the stream; ok=false ends it. fill in (0,1] defaults to
// 0.85. The tree must be empty; concurrent operations are blocked for the
// duration (the load holds the checkpoint gate exclusively). With logging
// enabled the entire load is one atomic SMO record: after a crash the load
// either happened completely or not at all.
func (t *Tree) BulkLoad(next func() (key, val []byte, ok bool), fill float64) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.ckpt.Lock()
	defer t.ckpt.Unlock()
	if t.closed.Load() {
		return ErrClosed
	}
	t.todo.drain() // quiesce pending maintenance before replacing the root
	if fill <= 0 || fill > 1 {
		fill = 0.85
	}
	target := int(fill * float64(t.opts.PageSize))

	oldRoot, oldLevel := t.readAnchor()
	if oldLevel != 0 {
		return ErrNotEmpty
	}
	r, err := t.fetch(oldRoot)
	if err != nil {
		return err
	}
	empty := len(r.c.Keys) == 0
	t.pool.Unpin(oldRoot, false)
	if !empty {
		return ErrNotEmpty
	}

	// Build the leaf level.
	var nodes []*node // all created nodes, for logging and unpinning
	var level []*node // current level being built
	done := false
	defer func() {
		if done {
			return
		}
		// Failed load: the built pages are unreferenced; release and free
		// them so nothing leaks.
		for _, n := range nodes {
			t.pool.Unpin(n.id, false)
		}
		for _, n := range nodes {
			t.reclaim(n.id)
		}
	}()
	newLeaf := func(low []byte) (*node, error) {
		n, err := t.allocNode(page.Content{
			Kind: page.Leaf, Level: 0,
			Low:  low,
			Keys: [][]byte{}, Vals: [][]byte{},
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
		level = append(level, n)
		return n, nil
	}
	cur, err := newLeaf([]byte{})
	if err != nil {
		return err
	}
	var prevKey []byte
	count := 0
	for {
		k, v, ok := next()
		if !ok {
			break
		}
		if err := t.validateEntry(k, v); err != nil {
			return err
		}
		if count > 0 && t.cmp(prevKey, k) >= 0 {
			return fmt.Errorf("blinktree: bulk load keys not strictly ascending at %q", k)
		}
		if cur.size()+page.EntrySize(page.Leaf, len(k), len(v)) > target && len(cur.c.Keys) > 0 {
			low := append([]byte(nil), k...)
			nxt, err := newLeaf(low)
			if err != nil {
				return err
			}
			cur.c.High = low
			cur.c.Right = nxt.id
			cur = nxt
		}
		cur.c.Keys = append(cur.c.Keys, append([]byte(nil), k...))
		cur.c.Vals = append(cur.c.Vals, append([]byte(nil), v...))
		prevKey = append(prevKey[:0], k...)
		count++
	}

	// Build index levels until a single node remains.
	lvl := uint8(0)
	for len(level) > 1 {
		lvl++
		below := level
		level = nil
		var parent *node
		newIndex := func(low []byte) (*node, error) {
			n, err := t.allocNode(page.Content{
				Kind: page.Index, Level: lvl,
				Low:  low,
				Keys: [][]byte{}, Children: []page.PageID{},
			})
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
			level = append(level, n)
			return n, nil
		}
		parent, err = newIndex([]byte{})
		if err != nil {
			return err
		}
		for _, child := range below {
			term := page.EntrySize(page.Index, len(child.c.Low), 0)
			if parent.size()+term > target && len(parent.c.Keys) > 0 {
				low := append([]byte(nil), child.c.Low...)
				nxt, err := newIndex(low)
				if err != nil {
					return err
				}
				parent.c.High = low
				parent.c.Right = nxt.id
				parent = nxt
			}
			parent.c.Keys = append(parent.c.Keys, append([]byte(nil), child.c.Low...))
			parent.c.Children = append(parent.c.Children, child.id)
		}
	}
	root := level[0]

	// Make the load durable as ONE atomic action, then flip the anchor.
	if t.log != nil {
		_, err := t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
			rec := &wal.Record{
				Type:     wal.TSMO,
				SMO:      wal.SMOFormat,
				Root:     root.id,
				Deallocs: []page.PageID{oldRoot},
			}
			for _, n := range nodes {
				n.c.LSN = uint64(lsn)
				n.c.Epoch = uint64(lsn)
				img, merr := n.Marshal(t.opts.PageSize)
				if merr != nil {
					panic(fmt.Sprintf("blinktree: bulk load image of %d: %v", n.id, merr))
				}
				rec.Images = append(rec.Images, wal.PageImage{ID: n.id, Data: img})
				rec.Allocs = append(rec.Allocs, n.id)
			}
			return rec
		})
		if err != nil {
			return err
		}
		if err := t.log.FlushAll(); err != nil {
			return err
		}
	}

	// All built nodes are private until the anchor flip; their routing
	// snapshots must exist before optimistic readers can reach them.
	for _, n := range nodes {
		n.publishRoute()
	}
	t.anchor.mu.Lock()
	t.anchor.root = root.id
	t.anchor.level = root.c.Level
	t.anchor.mu.Unlock()
	done = true

	for _, n := range nodes {
		t.pool.Unpin(n.id, true)
	}
	// The formatting leaf is unreachable now; retire it. Its deletion is a
	// leaf delete under no parent, so no delete-state update is needed —
	// nothing can hold a reference to an empty just-formatted root.
	old, err := t.fetch(oldRoot)
	if err == nil {
		old.latch.Acquire(latch.Exclusive)
		old.dead = true
		old.latch.Release(latch.Exclusive)
		t.pool.Unpin(oldRoot, false)
		t.reclaim(oldRoot)
	}
	return nil
}
