package core

import (
	"errors"
	"fmt"
	"time"

	"blinktree/internal/obs"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// errTornPage aborts a checkpoint-bounded redo pass that found a torn page
// image: a page whose on-disk bytes fail the checksum because a power cut
// interrupted a post-checkpoint write-back, destroying the checkpointed
// state that bounded redo depends on. The remedy is a full-log redo — SMO
// records carry complete page after-images, so replaying from LSN 1
// reconstructs every page from scratch (the log is never truncated).
var errTornPage = errors.New("blinktree: torn page detected during checkpoint-bounded redo")

// RecoveryStats reports what crash recovery found and did. The zero value
// (Recovered false) means the tree was not recovered: it was opened fresh,
// or without a log. Observability exporters surface these counters so an
// operator can distinguish a clean restart from a crash recovery, and a
// routine recovery from one that salvaged torn state.
type RecoveryStats struct {
	// Recovered reports whether a recovery ran (the log held records).
	Recovered bool

	// RecordsScanned is the number of durable log records analyzed.
	RecordsScanned int
	// RedoStart is the LSN the checkpoint-bounded redo pass started at.
	RedoStart uint64

	// SMOsRedone and RecOpsRedone count log records replayed by the redo
	// pass(es); SkippedByLSN counts record/page encounters skipped because
	// the page already reflected the record (the page-LSN test).
	SMOsRedone   int
	RecOpsRedone int
	SkippedByLSN int

	// ImagesApplied, AllocsReplayed and DeallocsReplayed break down SMO
	// redo work: full page after-images written, allocations and
	// deallocations replayed.
	ImagesApplied    int
	AllocsReplayed   int
	DeallocsReplayed int

	// LosersUndone is the number of unfinished transactions rolled back.
	LosersUndone int

	// BulkChunksSkipped counts bulk-load chunk records ignored because
	// their session never reached its commit record: the load crashed
	// mid-way, and skipping its chunks (images and allocations alike) is
	// what makes a chunked-logging load all-or-nothing.
	BulkChunksSkipped int

	// CorruptPages counts checksum-failing page images detected during
	// redo (torn writes the crash left behind); each was repaired from
	// logged after-images. FullRedoRetries counts redo passes restarted
	// from LSN 1 because a torn page invalidated checkpoint-bounded redo.
	CorruptPages    int
	FullRedoRetries int

	// TornTail reports whether the log device found garbage past its last
	// valid frame (a frame append interrupted by the power cut), and
	// TornTailBytes how many bytes of it. The torn frame was never
	// acknowledged as durable, so discarding it loses nothing.
	TornTail      bool
	TornTailBytes int64
}

// recover rebuilds the tree from the durable log using multi-level recovery
// (§2.1): a physiological redo pass first restores every page — including
// completing all structure modifications, each of which was logged as a
// single atomic record — so the tree is well-formed; only then are loser
// transactions rolled back logically through ordinary tree operations.
//
// Delete state (D_X, D_D-remembered values) and the to-do queue are
// volatile and start empty: a crash drains all delete state (§1.3), and
// lost index postings are re-discovered by side traversals.
//
// Redo normally starts at the last checkpoint. If it encounters a torn
// page — a checksum-failing image whose pre-crash state the bounded pass
// needed — it restarts from LSN 1: every page's first incarnation is a full
// after-image in some SMO record, so the full-log pass self-heals any torn
// page, and the page-LSN test keeps the rework idempotent.
//
// Returns false if the log is empty (the caller formats a fresh tree).
func (t *Tree) recover() (bool, error) {
	t0 := time.Now()
	recs, err := t.log.DurableRecords()
	if err != nil {
		return false, err
	}
	if len(recs) == 0 {
		return false, nil
	}
	a := wal.Analyze(recs)
	t.recStats = RecoveryStats{
		Recovered:      true,
		RecordsScanned: len(recs),
		RedoStart:      uint64(a.RedoStart),
	}
	t.recStats.TornTail, t.recStats.TornTailBytes = t.log.TailTorn()
	if t.recStats.TornTail && t.tracing() {
		t.obs.Emit(obs.Event{Kind: obs.EvRecoveryTornTail, Page: uint64(t.recStats.TornTailBytes)})
	}

	// Track the root pointer across the whole log (it may predate the
	// redo window).
	var root page.PageID
	for _, r := range recs {
		if r.Root != 0 {
			root = r.Root
		}
	}
	if root == 0 {
		return false, fmt.Errorf("blinktree: log has records but no root (missing format record)")
	}

	// Checkpoint-bounded redo; fall back to full-log redo on a torn page.
	err = t.redoPass(a.RedoRecords(), a.BulkCommitted, false)
	if err == nil {
		err = t.installRoot(root, false)
	}
	if errors.Is(err, errTornPage) {
		t.recStats.FullRedoRetries++
		if err = t.redoPass(recs, a.BulkCommitted, true); err == nil {
			err = t.installRoot(root, true)
		}
	}
	if err != nil {
		return false, err
	}
	t.txnSeq.Store(a.MaxTxn)

	// Undo pass: roll back losers through ordinary (well-formed-tree)
	// operations, logging CLRs so a crash during undo resumes correctly.
	for txn := range a.Losers {
		if err := t.undoLoser(a, txn); err != nil {
			return false, err
		}
		t.recStats.LosersUndone++
	}
	if err := t.log.FlushAll(); err != nil {
		return false, err
	}
	if t.tracing() {
		t.obs.Emit(obs.Event{
			Kind: obs.EvRecoveryRedo,
			Page: uint64(t.recStats.SMOsRedone + t.recStats.RecOpsRedone),
			Dur:  time.Since(t0),
		})
	}
	return true, nil
}

// redoPass replays the redoable records in LSN order. full marks a
// full-log pass, in which a torn page is unrepairable (a hard error)
// rather than a reason to widen the redo window. bulkCommitted gates
// SMOBulkChunk records: chunks of a session with no durable commit record
// are from a load that crashed before its commit point and are skipped
// entirely, preserving the load's all-or-nothing contract.
func (t *Tree) redoPass(recs []*wal.Record, bulkCommitted map[uint64]bool, full bool) error {
	for _, r := range recs {
		switch r.Type {
		case wal.TSMO:
			if r.SMO == wal.SMOBulkChunk && !bulkCommitted[r.Txn] {
				t.recStats.BulkChunksSkipped++
				continue
			}
			if err := t.redoSMO(r); err != nil {
				return err
			}
			t.recStats.SMOsRedone++
		case wal.TRecOp:
			if err := t.redoRecOp(r, full); err != nil {
				return err
			}
		}
	}
	return nil
}

// installRoot reads the recovered root and publishes it as the anchor. A
// corrupt — or missing — root during the bounded pass means the store fell
// behind the checkpoint that bounded redo (torn write-back, or a store that
// lost pages wholesale); the full-log pass rewrites it from the grow/format
// SMO images.
func (t *Tree) installRoot(root page.PageID, full bool) error {
	raw, err := t.store.Read(root)
	if err != nil {
		if !full {
			return errTornPage
		}
		return fmt.Errorf("blinktree: reading recovered root %d: %w", root, err)
	}
	rc, err := page.Unmarshal(raw)
	if err != nil {
		if !full {
			t.recStats.CorruptPages++
			return errTornPage
		}
		return fmt.Errorf("blinktree: recovered root %d: %w", root, err)
	}
	t.anchor.root = root
	t.anchor.level = rc.Level
	return nil
}

// redoSMO applies one atomic structure modification: allocations, page
// after-images (guarded by the page LSN test), then deallocations. A torn
// page encountered here needs no special handling: its LSN reads as zero,
// so the logged after-image simply overwrites — and heals — it.
func (t *Tree) redoSMO(r *wal.Record) error {
	for _, id := range r.Allocs {
		if err := t.store.EnsureAllocated(id); err != nil {
			return err
		}
		t.recStats.AllocsReplayed++
	}
	for _, im := range r.Images {
		if err := t.store.EnsureAllocated(im.ID); err != nil {
			return err
		}
		cur, err := t.pageLSN(im.ID)
		if err != nil {
			return err
		}
		if cur >= uint64(r.LSN) {
			t.recStats.SkippedByLSN++
			continue // page already reflects this or a later state
		}
		if err := t.store.Write(im.ID, im.Data); err != nil {
			return err
		}
		t.recStats.ImagesApplied++
	}
	for _, id := range r.Deallocs {
		if !t.store.Allocated(id) {
			continue
		}
		cur, err := t.pageLSN(id)
		if err != nil {
			return err
		}
		if cur > uint64(r.LSN) {
			// The page was recycled by a later allocation whose state is
			// already on disk: do not free it again.
			continue
		}
		if err := t.store.Deallocate(id); err != nil {
			return err
		}
		t.recStats.DeallocsReplayed++
	}
	return nil
}

// redoRecOp re-applies one physiological record operation to its page if
// the page state predates it.
func (t *Tree) redoRecOp(r *wal.Record, full bool) error {
	if !t.store.Allocated(r.Page) {
		// The page was consolidated away later; the consolidation SMO's
		// images carry the record's final location.
		return nil
	}
	raw, err := t.store.Read(r.Page)
	if err != nil {
		return err
	}
	c, err := page.Unmarshal(raw)
	if err != nil {
		if zeroPage(raw) {
			// Allocated but never written (crash between the alloc and the
			// image write-back): the SMO image redo already handled every
			// logged state, so a blank page cannot be this record's target
			// in a state that needs redo.
			return nil
		}
		// Non-blank but checksum-failing: a torn write. Bounded redo
		// cannot trust any page state it did not itself rebuild, so
		// restart from LSN 1 — the full pass rewrites this page from its
		// creating SMO's after-image before reaching this record again.
		t.recStats.CorruptPages++
		if t.tracing() {
			t.obs.Emit(obs.Event{Kind: obs.EvRecoveryTornPage, Page: uint64(r.Page)})
		}
		if full {
			return fmt.Errorf("blinktree: page %d corrupt under full-log redo: %w", r.Page, err)
		}
		return errTornPage
	}
	if c.LSN >= uint64(r.LSN) {
		t.recStats.SkippedByLSN++
		return nil
	}
	applyRecOp(t.cmp, c, r)
	c.LSN = uint64(r.LSN)
	out, err := page.Marshal(c, t.opts.PageSize)
	if err != nil {
		return err
	}
	if err := t.store.Write(r.Page, out); err != nil {
		return err
	}
	t.recStats.RecOpsRedone++
	return nil
}

// applyRecOp applies a record operation to leaf content in place.
func applyRecOp(cmp Compare, c *page.Content, r *wal.Record) {
	i, found := keySearch(cmp, c.Keys, r.Key)
	switch r.Op {
	case wal.OpInsert:
		if found {
			c.Vals[i] = append([]byte(nil), r.Val...)
			return
		}
		c.Keys = append(c.Keys, nil)
		copy(c.Keys[i+1:], c.Keys[i:])
		c.Keys[i] = append([]byte(nil), r.Key...)
		c.Vals = append(c.Vals, nil)
		copy(c.Vals[i+1:], c.Vals[i:])
		c.Vals[i] = append([]byte(nil), r.Val...)
	case wal.OpUpdate:
		if found {
			c.Vals[i] = append([]byte(nil), r.Val...)
		}
	case wal.OpDelete:
		if found {
			c.Keys = append(c.Keys[:i], c.Keys[i+1:]...)
			c.Vals = append(c.Vals[:i], c.Vals[i+1:]...)
		}
	}
}

// undoLoser rolls back one unfinished transaction after redo, walking its
// backchain (skipping already-compensated work via CLR UndoNext pointers)
// and applying inverse operations through normal tree ops.
func (t *Tree) undoLoser(a *wal.Analysis, txn uint64) error {
	chain := a.UndoChain(txn)
	lastLSN := a.Losers[txn]
	for _, r := range chain {
		lp := recOpParams{txn: txn, prevLSN: lastLSN, clr: true, undoNext: r.PrevLSN}
		var lsn wal.LSN
		var err error
		switch r.Op {
		case wal.OpInsert:
			lsn, err = t.deleteInternal(lp, r.Key)
			if err == ErrKeyNotFound {
				err = nil
			}
		case wal.OpDelete:
			lsn, _, err = t.putInternal(lp, r.Key, r.OldVal)
		case wal.OpUpdate:
			lsn, _, err = t.putInternal(lp, r.Key, r.OldVal)
		}
		if err != nil {
			return fmt.Errorf("blinktree: undo txn %d op at LSN %d: %w", txn, r.LSN, err)
		}
		if lsn != 0 {
			lastLSN = lsn
		}
	}
	_, err := t.log.Append(&wal.Record{Type: wal.TAbort, Txn: txn, PrevLSN: lastLSN})
	return err
}

// pageLSN reads the LSN of a page directly from the store; zero for pages
// never written or with a torn (checksum-failing) image. Reporting a torn
// page as LSN zero is what makes SMO image redo self-healing: the image is
// never skipped, so the torn bytes are overwritten with logged state.
func (t *Tree) pageLSN(id page.PageID) (uint64, error) {
	raw, err := t.store.Read(id)
	if err != nil {
		return 0, err
	}
	c, err := page.Unmarshal(raw)
	if err != nil {
		if !zeroPage(raw) {
			t.recStats.CorruptPages++
		}
		return 0, nil
	}
	return c.LSN, nil
}

// zeroPage reports whether a page image is entirely zero bytes (allocated
// but never written), as distinct from a torn write's garbage.
func zeroPage(raw []byte) bool {
	for _, b := range raw {
		if b != 0 {
			return false
		}
	}
	return true
}
