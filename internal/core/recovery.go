package core

import (
	"fmt"

	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// recover rebuilds the tree from the durable log using multi-level recovery
// (§2.1): a physiological redo pass first restores every page — including
// completing all structure modifications, each of which was logged as a
// single atomic record — so the tree is well-formed; only then are loser
// transactions rolled back logically through ordinary tree operations.
//
// Delete state (D_X, D_D-remembered values) and the to-do queue are
// volatile and start empty: a crash drains all delete state (§1.3), and
// lost index postings are re-discovered by side traversals.
//
// Returns false if the log is empty (the caller formats a fresh tree).
func (t *Tree) recover() (bool, error) {
	recs, err := t.log.DurableRecords()
	if err != nil {
		return false, err
	}
	if len(recs) == 0 {
		return false, nil
	}
	a := wal.Analyze(recs)

	// Track the root pointer across the whole log (it may predate the
	// redo window).
	var root page.PageID
	for _, r := range recs {
		if r.Root != 0 {
			root = r.Root
		}
	}
	if root == 0 {
		return false, fmt.Errorf("blinktree: log has records but no root (missing format record)")
	}

	for _, r := range a.RedoRecords() {
		switch r.Type {
		case wal.TSMO:
			if err := t.redoSMO(r); err != nil {
				return false, err
			}
		case wal.TRecOp:
			if err := t.redoRecOp(r); err != nil {
				return false, err
			}
		}
	}

	// Install the recovered root.
	raw, err := t.store.Read(root)
	if err != nil {
		return false, fmt.Errorf("blinktree: reading recovered root %d: %w", root, err)
	}
	rc, err := page.Unmarshal(raw)
	if err != nil {
		return false, fmt.Errorf("blinktree: recovered root %d: %w", root, err)
	}
	t.anchor.root = root
	t.anchor.level = rc.Level
	t.txnSeq.Store(a.MaxTxn)

	// Undo pass: roll back losers through ordinary (well-formed-tree)
	// operations, logging CLRs so a crash during undo resumes correctly.
	for txn := range a.Losers {
		if err := t.undoLoser(a, txn); err != nil {
			return false, err
		}
	}
	if err := t.log.FlushAll(); err != nil {
		return false, err
	}
	return true, nil
}

// redoSMO applies one atomic structure modification: allocations, page
// after-images (guarded by the page LSN test), then deallocations.
func (t *Tree) redoSMO(r *wal.Record) error {
	for _, id := range r.Allocs {
		if err := t.store.EnsureAllocated(id); err != nil {
			return err
		}
	}
	for _, im := range r.Images {
		if err := t.store.EnsureAllocated(im.ID); err != nil {
			return err
		}
		cur, err := t.pageLSN(im.ID)
		if err != nil {
			return err
		}
		if cur >= uint64(r.LSN) {
			continue // page already reflects this or a later state
		}
		if err := t.store.Write(im.ID, im.Data); err != nil {
			return err
		}
	}
	for _, id := range r.Deallocs {
		if !t.store.Allocated(id) {
			continue
		}
		cur, err := t.pageLSN(id)
		if err != nil {
			return err
		}
		if cur > uint64(r.LSN) {
			// The page was recycled by a later allocation whose state is
			// already on disk: do not free it again.
			continue
		}
		if err := t.store.Deallocate(id); err != nil {
			return err
		}
	}
	return nil
}

// redoRecOp re-applies one physiological record operation to its page if
// the page state predates it.
func (t *Tree) redoRecOp(r *wal.Record) error {
	if !t.store.Allocated(r.Page) {
		// The page was consolidated away later; the consolidation SMO's
		// images carry the record's final location.
		return nil
	}
	raw, err := t.store.Read(r.Page)
	if err != nil {
		return err
	}
	c, err := page.Unmarshal(raw)
	if err != nil {
		// A page allocated but never written (crash between the alloc and
		// the image write-back): the SMO image redo already handled every
		// logged state, so an unparseable page cannot be this record's
		// target in a state that needs redo.
		return nil
	}
	if c.LSN >= uint64(r.LSN) {
		return nil
	}
	applyRecOp(t.cmp, c, r)
	c.LSN = uint64(r.LSN)
	out, err := page.Marshal(c, t.opts.PageSize)
	if err != nil {
		return err
	}
	return t.store.Write(r.Page, out)
}

// applyRecOp applies a record operation to leaf content in place.
func applyRecOp(cmp Compare, c *page.Content, r *wal.Record) {
	i, found := keySearch(cmp, c.Keys, r.Key)
	switch r.Op {
	case wal.OpInsert:
		if found {
			c.Vals[i] = append([]byte(nil), r.Val...)
			return
		}
		c.Keys = append(c.Keys, nil)
		copy(c.Keys[i+1:], c.Keys[i:])
		c.Keys[i] = append([]byte(nil), r.Key...)
		c.Vals = append(c.Vals, nil)
		copy(c.Vals[i+1:], c.Vals[i:])
		c.Vals[i] = append([]byte(nil), r.Val...)
	case wal.OpUpdate:
		if found {
			c.Vals[i] = append([]byte(nil), r.Val...)
		}
	case wal.OpDelete:
		if found {
			c.Keys = append(c.Keys[:i], c.Keys[i+1:]...)
			c.Vals = append(c.Vals[:i], c.Vals[i+1:]...)
		}
	}
}

// undoLoser rolls back one unfinished transaction after redo, walking its
// backchain (skipping already-compensated work via CLR UndoNext pointers)
// and applying inverse operations through normal tree ops.
func (t *Tree) undoLoser(a *wal.Analysis, txn uint64) error {
	chain := a.UndoChain(txn)
	lastLSN := a.Losers[txn]
	for _, r := range chain {
		lp := recOpParams{txn: txn, prevLSN: lastLSN, clr: true, undoNext: r.PrevLSN}
		var lsn wal.LSN
		var err error
		switch r.Op {
		case wal.OpInsert:
			lsn, err = t.deleteInternal(lp, r.Key)
			if err == ErrKeyNotFound {
				err = nil
			}
		case wal.OpDelete:
			lsn, _, err = t.putInternal(lp, r.Key, r.OldVal)
		case wal.OpUpdate:
			lsn, _, err = t.putInternal(lp, r.Key, r.OldVal)
		}
		if err != nil {
			return fmt.Errorf("blinktree: undo txn %d op at LSN %d: %w", txn, r.LSN, err)
		}
		if lsn != 0 {
			lastLSN = lsn
		}
	}
	_, err := t.log.Append(&wal.Record{Type: wal.TAbort, Txn: txn, PrevLSN: lastLSN})
	return err
}

// pageLSN reads the LSN of a page directly from the store; zero for pages
// never written.
func (t *Tree) pageLSN(id page.PageID) (uint64, error) {
	raw, err := t.store.Read(id)
	if err != nil {
		return 0, err
	}
	c, err := page.Unmarshal(raw)
	if err != nil {
		return 0, nil // never-written (zero) page
	}
	return c.LSN, nil
}
