package core

import (
	"time"

	"blinktree/internal/obs"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// DeletePolicy selects how node deletion is performed; the non-default
// policies are the paper's comparators.
type DeletePolicy uint8

const (
	// DeleteState is the paper's contribution: any under-utilized node may
	// be consolidated; D_X/D_D guard the lazy structure modifications.
	DeleteState DeletePolicy = iota
	// Drain is the "drain approach" (§1.3, [16,19]): a node is deleted
	// only once empty, its page is marked empty with an extra logged
	// update before deletion, and the page "lives" until outstanding
	// references have drained (modeled by an operation-count grace
	// period). Simple, but under skewed deletes it leaves under-utilized
	// pages for long periods — exactly what experiment E2 measures.
	Drain
)

// ReadPath selects the traversal strategy for point reads and cursor
// positioning.
type ReadPath uint8

const (
	// ReadPathDefault resolves to ReadPathOptimistic.
	ReadPathDefault ReadPath = iota
	// ReadPathOptimistic descends root-to-leaf without latching, validating
	// each index node against its latch version word and taking a single
	// Shared latch at the target leaf; validation failures restart, and a
	// bounded number of restarts falls back to the latched traversal.
	ReadPathOptimistic
	// ReadPathPessimistic always uses the latch-coupled traversal.
	ReadPathPessimistic
)

// FeatureMode is a tri-state switch for optional engine features whose
// resolved default is on: the zero value lets the tree choose.
type FeatureMode uint8

const (
	// FeatureDefault lets the tree choose (currently on).
	FeatureDefault FeatureMode = iota
	// FeatureOn enables the feature explicitly.
	FeatureOn
	// FeatureOff disables the feature.
	FeatureOff
)

// Compare orders keys like bytes.Compare: negative when a < b, zero when
// equal, positive when a > b. A custom comparator must order the empty key
// below every non-empty key (it is the tree's -infinity sentinel), and two
// keys comparing equal are the same record.
type Compare func(a, b []byte) int

// Options configures a Tree.
type Options struct {
	// PageSize is the node size in bytes. Default 4096.
	PageSize int

	// Compare orders keys; nil means bytewise (bytes.Compare). With a
	// custom comparator, separator truncation is disabled (truncation
	// assumes bytewise prefix ordering). This is the paper's §2.1
	// "general indexing framework" hook: the tree's concurrency and
	// recovery machinery is independent of the key interpretation.
	Compare Compare

	// CacheSize is the buffer pool capacity in nodes. Default 4096.
	CacheSize int

	// MinFill is the under-utilization threshold as a fraction of PageSize:
	// a node whose serialized size falls below MinFill*PageSize is enqueued
	// for consolidation (the paper: "we can set any utilization lower bound
	// that we wish", §2.3). Default 0.30. Zero disables consolidation
	// entirely without disabling delete-state support.
	MinFill float64

	// Workers is the number of to-do queue worker goroutines processing
	// lazy structure modifications. Zero means no background workers; the
	// caller drives the queue with DrainTodo (deterministic tests do this).
	// Default 2.
	Workers int

	// TodoShards is the number of maintenance-scheduler shards. Enqueue,
	// duplicate-discovery probes and worker pops contend only within one
	// shard (actions are placed by hash of their origin page). Zero
	// derives the count from GOMAXPROCS (next power of two, capped at
	// 64); values below 1 are clamped to 1.
	TodoShards int

	// TodoSoftCap is the scheduler's backpressure threshold: when the
	// total number of queued maintenance actions exceeds it, a completing
	// foreground operation processes one action inline, throttling
	// producers to the rate maintenance can sustain. Zero means the
	// default (64 per shard). TodoSoftCapNone disables backpressure.
	// Backpressure is only active when Workers > 0: worker-less trees are
	// driven deterministically via DrainTodo.
	TodoSoftCap int

	// Store supplies the page store. Nil means a fresh in-memory store.
	Store storage.Store

	// LogDevice enables write-ahead logging and crash recovery when
	// non-nil. Nil disables logging: the tree is volatile.
	LogDevice wal.Device

	// Durability selects when Txn.Commit is acknowledged relative to the
	// log force that makes it durable. DurSync (the default) and DurGroup
	// acknowledge only after the commit LSN is durable — DurSync forces on
	// the committing goroutine, DurGroup coalesces concurrent commits into
	// one force on a dedicated log-writer goroutine. DurPeriodic and
	// DurAsync acknowledge immediately and force in the background; a
	// crash loses at most the commits inside the unforced window, and a
	// successful FlushLog/Checkpoint/Close re-establishes full durability.
	// Recovery is identical in every mode. No effect without a LogDevice.
	Durability wal.DurabilityMode

	// FlushInterval is DurPeriodic's background force period (0 means the
	// default, 2ms). Negative disables all autonomous forcing in the
	// periodic and async modes — commits are then durable only at explicit
	// FlushLog/Checkpoint/Close points; the crash harness uses this to
	// keep its persistence-operation stream deterministic.
	FlushInterval time.Duration

	// FlushBytes is DurPeriodic's unforced-byte threshold (0 means the
	// default, 256 KiB): once more than this many appended log bytes await
	// a force, the log-writer forces without waiting for FlushInterval.
	FlushBytes int64

	// DeletePolicy selects the node-deletion comparator. Default
	// DeleteState (the paper's method).
	DeletePolicy DeletePolicy

	// SerializeSMO builds the ARIES/IM-style comparator (§1.2, [15]):
	// every structure modification — split, index-term posting, node
	// consolidation — runs under one global tree latch, one at a time,
	// and postings are eager (the triggering operation completes the full
	// multi-level SMO before returning). Node deletes additionally require
	// empty pages, as in [15]. Experiment E1 measures the concurrency this
	// costs.
	SerializeSMO bool

	// NoDeleteSupport builds the Lomet–Salzberg "variant 1" comparator: a
	// B-link tree with node deletion disabled. Consolidation is never
	// enqueued, delete states are neither read nor checked, and downward
	// traversal holds a single latch at a time instead of latch coupling
	// (the paper: "Latch coupling isn't required if node deletes cannot
	// occur", §3.1.1). Used by the overhead experiment (E10).
	NoDeleteSupport bool

	// SingleDeleteState is an ablation switch (E8): instead of the paper's
	// split D_X / per-parent D_D scheme, every node delete (leaf or index)
	// increments the one global counter, and index-term postings verify
	// against it. This mimics a naive "one delete counter" design and
	// should abort far more postings under leaf-delete load.
	SingleDeleteState bool

	// OptimisticReads selects the read-path strategy: the default
	// (ReadPathDefault / ReadPathOptimistic) descends latch-free with
	// version validation, paying latches only at the leaf; set
	// ReadPathPessimistic to force the classic latch-coupled traversal
	// everywhere (comparators and debugging).
	OptimisticReads ReadPath

	// Combining enables the hot-leaf operation-combining engine (default
	// on): a non-transactional writer that finds a leaf's latch contended
	// publishes its operation into the leaf's combining buffer, and the
	// latch winner applies the whole batch under one exclusive latch
	// acquisition and one WAL append group, handing each parked publisher
	// its individual result. Transactional operations never combine (they
	// must interleave with record locking and the re-latch procedure).
	Combining FeatureMode

	// CombineBuffer is the per-leaf combining buffer capacity in pending
	// operations (default 16). A full buffer sends the writer down the
	// normal latched path.
	CombineBuffer int

	// CombineThreshold is the number of contended latch encounters
	// (failed try-acquires) a leaf must accumulate before writers start
	// publishing into its combining buffer (default 4). CombineAlways
	// publishes unconditionally, without even attempting the latch —
	// deterministic tests and the crash harness use it to force every
	// operation through the combine/drain machinery.
	CombineThreshold int

	// AppendFastPath enables the right-edge append fast path (default on):
	// the rightmost leaf is cached, and an insert of a key at or beyond its
	// low fence tries that leaf directly — a version-word pre-check, then
	// an authoritative re-validation under its latch — skipping the full
	// root-to-leaf descent that monotonic (sequential-append) workloads
	// would otherwise pay on every insert. Any validation failure falls
	// back to the normal traversal.
	AppendFastPath FeatureMode

	// BulkChunkPages is the number of pages grouped into one bulk-load
	// chunk — the unit of WAL logging (one SMOBulkChunk record per chunk)
	// and of hand-off to parallel builder goroutines. Zero means the
	// default (64); the value is clamped down so the in-flight chunks of a
	// parallel load always fit inside the buffer pool. Small values make
	// good crash-test granularity; large values amortize log appends.
	BulkChunkPages int

	// Observability enables per-operation latency histograms and/or the
	// SMO lifecycle trace ring (see obs.Config). Nil disables both: the
	// instrumentation collapses to a nil-pointer check on the hot paths.
	Observability *obs.Config
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.MinFill == 0 {
		o.MinFill = 0.30
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.TodoShards == 0 {
		o.TodoShards = todoShardCount()
	}
	if o.TodoShards < 1 {
		o.TodoShards = 1
	}
	switch {
	case o.TodoSoftCap == 0:
		o.TodoSoftCap = 64 * o.TodoShards
	case o.TodoSoftCap < 0:
		o.TodoSoftCap = 0 // TodoSoftCapNone: backpressure disabled
	}
	if o.OptimisticReads == ReadPathDefault {
		o.OptimisticReads = ReadPathOptimistic
	}
	if o.Combining == FeatureDefault {
		o.Combining = FeatureOn
	}
	if o.AppendFastPath == FeatureDefault {
		o.AppendFastPath = FeatureOn
	}
	if o.CombineBuffer <= 0 {
		o.CombineBuffer = 16
	}
	if o.CombineThreshold == 0 {
		o.CombineThreshold = 4
	}
	if o.Store == nil {
		o.Store = storage.NewMemStore(o.PageSize)
	}
	if o.NoDeleteSupport {
		o.MinFill = -1 // never under-utilized
	}
	return o
}

// explicit sentinel: Workers < 0 means "no workers" after defaulting.
// Callers pass WorkersNone to run the queue manually.
const WorkersNone = -1

// TodoSoftCapNone disables scheduler backpressure (inline assists).
const TodoSoftCapNone = -1

// CombineAlways, as a CombineThreshold, makes every eligible write publish
// into the combining buffer unconditionally (no contention required); used
// by deterministic tests and the crash harness.
const CombineAlways = -1
