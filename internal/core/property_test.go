package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"blinktree/internal/wal"
)

// TestQuickModelEquivalence drives the tree with random operation sequences
// and checks it against a map model after every batch, plus invariants at
// the end. This is the central correctness property: the tree is a
// linearizable ordered map.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(Options{PageSize: 512, MinFill: 0.4, Workers: WorkersNone})
		if err != nil {
			t.Log(err)
			return false
		}
		defer tr.Close()
		model := make(map[string]string)
		keyOf := func() []byte { return key(rng.Intn(200)) }
		for step := 0; step < 600; step++ {
			k := keyOf()
			switch rng.Intn(4) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Intn(1<<20))
				if err := tr.Put(k, []byte(v)); err != nil {
					t.Logf("put: %v", err)
					return false
				}
				model[string(k)] = v
			case 2:
				err := tr.Delete(k)
				_, inModel := model[string(k)]
				if inModel != (err == nil) {
					t.Logf("delete disagreement on %q: model=%v err=%v", k, inModel, err)
					return false
				}
				delete(model, string(k))
			case 3:
				got, err := tr.Get(k)
				want, inModel := model[string(k)]
				if inModel != (err == nil) {
					t.Logf("get disagreement on %q", k)
					return false
				}
				if inModel && string(got) != want {
					t.Logf("get %q = %q, want %q", k, got, want)
					return false
				}
			}
			if rng.Intn(100) == 0 {
				tr.DrainTodo()
			}
		}
		tr.DrainTodo()
		if err := tr.Verify(); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		recs, err := tr.Records()
		if err != nil {
			return false
		}
		if len(recs) != len(model) {
			t.Logf("size mismatch: tree %d, model %d", len(recs), len(model))
			return false
		}
		for k, v := range model {
			if string(recs[k]) != v {
				t.Logf("content mismatch at %q", k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanMatchesSortedModel checks that range scans agree with a
// sorted model over random data and random ranges.
func TestQuickScanMatchesSortedModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(Options{PageSize: 512, Workers: WorkersNone})
		if err != nil {
			return false
		}
		defer tr.Close()
		model := make(map[string]bool)
		for i := 0; i < 300; i++ {
			k := key(rng.Intn(500))
			tr.Put(k, []byte("x"))
			model[string(k)] = true
		}
		lo, hi := rng.Intn(500), rng.Intn(500)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for k := range model {
			if k >= string(key(lo)) && k < string(key(hi)) {
				want++
			}
		}
		got, err := tr.Count(key(lo), key(hi))
		if err != nil {
			return false
		}
		if got != want {
			t.Logf("range [%d,%d): got %d, want %d", lo, hi, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashRecoveryEquivalence: random committed work, crash at a
// random point, recovery must yield exactly the committed prefix.
func TestQuickCrashRecoveryEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := wal.NewMemDevice()
		tr, err := New(Options{PageSize: 512, LogDevice: dev, Workers: WorkersNone, MinFill: 0.4})
		if err != nil {
			return false
		}
		committed := make(map[string]string)
		nTxns := 3 + rng.Intn(8)
		for i := 0; i < nTxns; i++ {
			x, err := tr.Begin()
			if err != nil {
				return false
			}
			local := make(map[string]*string)
			for j := 0; j < 1+rng.Intn(25); j++ {
				k := key(rng.Intn(150))
				if rng.Intn(4) == 0 {
					err := x.Delete(k)
					if err != nil && !errors.Is(err, ErrKeyNotFound) {
						t.Logf("txn delete: %v", err)
						return false
					}
					local[string(k)] = nil
				} else {
					v := fmt.Sprintf("s%d-%d", seed, j)
					if err := x.Put(k, []byte(v)); err != nil {
						t.Logf("txn put: %v", err)
						return false
					}
					vv := v
					local[string(k)] = &vv
				}
			}
			switch rng.Intn(3) {
			case 0:
				if err := x.Abort(); err != nil {
					return false
				}
			default:
				if err := x.Commit(); err != nil {
					return false
				}
				for k, v := range local {
					if v == nil {
						delete(committed, k)
					} else {
						committed[k] = *v
					}
				}
			}
		}
		// Crash: committed txns flushed at commit; in-flight tail may die.
		dev.Crash()
		tr.todo.stop()

		tr2, err := New(Options{PageSize: 512, LogDevice: dev, Workers: WorkersNone})
		if err != nil {
			t.Logf("recovery: %v", err)
			return false
		}
		defer tr2.Close()
		if err := tr2.Verify(); err != nil {
			t.Logf("verify after recovery: %v", err)
			return false
		}
		recs, err := tr2.Records()
		if err != nil {
			return false
		}
		if len(recs) != len(committed) {
			t.Logf("recovered %d records, committed %d", len(recs), len(committed))
			return false
		}
		for k, v := range committed {
			if string(recs[k]) != v {
				t.Logf("mismatch at %q: %q vs %q", k, recs[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcurrentDisjointWriters: random concurrent writers over
// disjoint ranges always produce exactly the union.
func TestQuickConcurrentDisjointWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		tr, err := New(Options{PageSize: 512, MinFill: 0.4, Workers: 2})
		if err != nil {
			return false
		}
		defer tr.Close()
		const writers = 4
		done := make(chan map[string]string, writers)
		for w := 0; w < writers; w++ {
			go func(w int) {
				rng := rand.New(rand.NewSource(seed + int64(w)))
				final := make(map[string]string)
				for i := 0; i < 150; i++ {
					k := key(w*1000 + rng.Intn(100))
					if rng.Intn(3) == 0 {
						tr.Delete(k)
						delete(final, string(k))
					} else {
						v := fmt.Sprintf("w%d-%d", w, i)
						tr.Put(k, []byte(v))
						final[string(k)] = v
					}
				}
				done <- final
			}(w)
		}
		union := make(map[string]string)
		for w := 0; w < writers; w++ {
			for k, v := range <-done {
				union[k] = v
			}
		}
		tr.DrainTodo()
		if err := tr.Verify(); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		recs, err := tr.Records()
		if err != nil {
			return false
		}
		if len(recs) != len(union) {
			t.Logf("tree %d records, union %d", len(recs), len(union))
			return false
		}
		for k, v := range union {
			if !bytes.Equal(recs[k], []byte(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
