package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"blinktree/internal/latch"
	"blinktree/internal/lock"
	"blinktree/internal/obs"
	"blinktree/internal/wal"
)

// Transaction errors.
var (
	// ErrTxnDone is returned by operations on a committed or aborted
	// transaction.
	ErrTxnDone = errors.New("blinktree: transaction finished")
	// ErrTxnAborted is returned when the transaction had to be aborted —
	// as a deadlock victim, or because delete state changed during a
	// re-latch (§2.4: "if D_X indicates a node delete has occurred, we can
	// abort the transaction. Such aborts are rare."). The caller's work is
	// rolled back; retry the transaction.
	ErrTxnAborted = errors.New("blinktree: transaction aborted")
)

// Txn is a transaction: strict two-phase record locking (no-wait requests
// under latches, blocking re-requests after latch release), write-ahead
// logged operations with an undo backchain, and rollback on abort.
type Txn struct {
	t    *Tree
	id   uint64
	undo []undoRec
	done bool
	mu   sync.Mutex

	// lastLSN is the transaction's most recent log record (the undo
	// backchain head). Atomic because checkpoints read it without taking
	// the transaction mutex (taking it there could deadlock against an
	// operation blocked on the checkpoint gate).
	lastLSN atomic.Uint64
}

// last returns the transaction's most recent LSN.
func (x *Txn) last() wal.LSN { return wal.LSN(x.lastLSN.Load()) }

// setLast records the transaction's most recent LSN.
func (x *Txn) setLast(l wal.LSN) { x.lastLSN.Store(uint64(l)) }

// undoRec is the in-memory rollback entry for one operation.
type undoRec struct {
	op      wal.Op
	key     []byte
	oldVal  []byte
	lsn     wal.LSN // the operation's own LSN
	prevLSN wal.LSN // backchain: operation before it
}

// activeTxns tracks live transactions for checkpointing.
type activeTxns struct {
	mu sync.Mutex
	m  map[uint64]*Txn
}

// Begin starts a transaction.
func (t *Tree) Begin() (*Txn, error) {
	if t.closed.Load() {
		return nil, ErrClosed
	}
	x := &Txn{t: t, id: t.txnSeq.Add(1)}
	if t.log != nil {
		lsn, err := t.log.Append(&wal.Record{Type: wal.TBegin, Txn: x.id})
		if err != nil {
			return nil, err
		}
		x.setLast(lsn)
	}
	t.active.mu.Lock()
	t.active.m[x.id] = x
	t.active.mu.Unlock()
	return x, nil
}

// ID returns the transaction identifier.
func (x *Txn) ID() uint64 { return x.id }

func (x *Txn) owner() lock.Owner { return lock.Owner(x.id) }

// finish removes the transaction from the active table and releases locks.
func (x *Txn) finish() {
	x.done = true
	x.t.active.mu.Lock()
	delete(x.t.active.m, x.id)
	x.t.active.mu.Unlock()
	x.t.locks.ReleaseAll(x.owner())
}

// Commit ends the transaction and releases its locks. The durability of
// the acknowledgement follows Options.Durability: under the sync mode the
// calling goroutine forces the log through the commit LSN; under the group
// mode the commit parks until the log-writer's next coalesced force covers
// it (both guarantee a nil return means the commit survives any crash);
// under the periodic and async modes the commit is acknowledged as soon as
// its record is appended and becomes durable at the next background force
// or explicit FlushLog/Checkpoint/Close.
func (x *Txn) Commit() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.done {
		return ErrTxnDone
	}
	t := x.t
	t0, sp := t.obsBegin(obs.OpCommit)
	if t.log != nil {
		at0 := sp.Now()
		lsn, err := t.log.Append(&wal.Record{Type: wal.TCommit, Txn: x.id, PrevLSN: x.last()})
		sp.StageSince(obs.StageWALAppend, 0, at0)
		if err != nil {
			return err
		}
		if err := t.commitLSN(lsn, sp); err != nil {
			return err
		}
	}
	x.finish()
	t.c.txnCommits.Add(1)
	t.obsEnd(obs.OpCommit, t0, sp)
	return nil
}

// Abort rolls the transaction back: its operations are compensated in
// reverse order (logging CLRs whose UndoNext pointers make crash-during-
// rollback safe), an abort record is written, and locks are released.
func (x *Txn) Abort() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.abortLocked(false)
}

// abortLocked rolls the transaction back. gateHeld says whether the caller
// already holds the checkpoint gate (operations that abort from inside
// lockWithLatch do; the public Abort does not). The compensating writes must
// run under the gate, or a concurrent Checkpoint could flush pages
// mid-mutation — but the gate is a sync.RWMutex, so it must not be
// re-acquired on the same goroutine.
func (x *Txn) abortLocked(gateHeld bool) error {
	if x.done {
		return ErrTxnDone
	}
	t := x.t
	if !gateHeld {
		if err := t.opBegin(); err != nil {
			return err
		}
	}
	err := func() error {
		if !gateHeld {
			defer t.opEnd()
		}
		for i := len(x.undo) - 1; i >= 0; i-- {
			if cerr := t.compensate(x, x.undo[i]); cerr != nil {
				return fmt.Errorf("blinktree: rollback of txn %d: %w", x.id, cerr)
			}
		}
		return nil
	}()
	if err != nil {
		return err
	}
	if t.log != nil {
		if _, err := t.log.Append(&wal.Record{Type: wal.TAbort, Txn: x.id, PrevLSN: x.last()}); err != nil {
			return err
		}
	}
	x.finish()
	t.c.txnAborts.Add(1)
	return nil
}

// Savepoint marks the current point in the transaction; RollbackTo returns
// to it. The returned token is only valid for this transaction.
func (x *Txn) Savepoint() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.undo)
}

// RollbackTo compensates every operation performed after the savepoint, in
// reverse order, leaving the transaction active. CLRs are logged so a crash
// during the partial rollback recovers correctly.
func (x *Txn) RollbackTo(savepoint int) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.done {
		return ErrTxnDone
	}
	if savepoint < 0 || savepoint > len(x.undo) {
		return fmt.Errorf("blinktree: invalid savepoint %d (undo length %d)", savepoint, len(x.undo))
	}
	t := x.t
	// Compensations run under the checkpoint gate (RollbackTo is a public
	// entry point; no operation gate is held here).
	if err := t.opBegin(); err != nil {
		return err
	}
	err := func() error {
		defer t.opEnd()
		for i := len(x.undo) - 1; i >= savepoint; i-- {
			if cerr := t.compensate(x, x.undo[i]); cerr != nil {
				return fmt.Errorf("blinktree: rollback to savepoint: %w", cerr)
			}
		}
		return nil
	}()
	if err != nil {
		return err
	}
	x.undo = x.undo[:savepoint]
	// Locks acquired after the savepoint are retained until commit/abort:
	// strict 2PL never releases early.
	return nil
}

// compensate applies the inverse of one operation, logging a CLR.
func (t *Tree) compensate(x *Txn, u undoRec) error {
	lp := recOpParams{txn: x.id, prevLSN: x.last(), clr: true, undoNext: u.prevLSN}
	var lsn wal.LSN
	var err error
	switch u.op {
	case wal.OpInsert:
		lsn, err = t.deleteInternal(lp, u.key)
		if errors.Is(err, ErrKeyNotFound) {
			err = nil // already gone; compensation is idempotent
		}
	case wal.OpDelete, wal.OpUpdate:
		lsn, _, err = t.putInternal(lp, u.key, u.oldVal)
	}
	if err != nil {
		return err
	}
	if lsn != 0 {
		x.setLast(lsn)
	}
	return nil
}

// record appends an undo entry after a successful logged operation.
func (x *Txn) record(op wal.Op, key, oldVal []byte, lsn wal.LSN) {
	prev := x.last()
	if lsn != 0 {
		x.setLast(lsn)
	}
	x.undo = append(x.undo, undoRec{
		op:      op,
		key:     append([]byte(nil), key...),
		oldVal:  append([]byte(nil), oldVal...),
		lsn:     lsn,
		prevLSN: prev,
	})
}

// lockWithLatch implements the §2.4 protocol: request the record lock in
// no-wait mode while the leaf latch is held; on denial, release the latch,
// block for the lock, and re-latch via the remembered path. It returns the
// (possibly different) latched leaf, or aborts the transaction.
//
// mode is the latch mode currently held on leaf (and re-acquired on the
// re-latch path); promote applies after a re-latch for update intents.
func (x *Txn) lockWithLatch(leaf *node, path []pathEntry, dx uint64, key []byte,
	lmode lock.Mode, latchMode latch.Mode, promote bool, sp *obs.Span) (*node, []pathEntry, error) {

	t := x.t
	err := t.locks.TryLock(x.owner(), lock.Resource(key), lmode)
	if err == nil {
		return leaf, path, nil
	}
	// Denied: give up the latch, wait for the lock, then re-latch.
	t.c.noWaitDenied.Add(1)
	if t.tracing() {
		t.obs.Emit(obs.Event{Kind: obs.EvLockNoWait, Page: uint64(leaf.id), Level: leaf.level()})
	}
	relMode := latchMode
	if promote {
		relMode = latch.Exclusive // traverse promoted before returning
	}
	t.unlatchUnpin(leaf, relMode, false)

	wt0 := sp.Now()
	err = t.locks.Lock(x.owner(), lock.Resource(key), lmode)
	sp.StageSince(obs.StageLockWait, 0, wt0)
	if err != nil {
		// Deadlock victim: roll back (the surrounding operation still
		// holds the checkpoint gate).
		t.c.txnDeadlocks.Add(1)
		if t.tracing() {
			t.obs.Emit(obs.Event{Kind: obs.EvDeadlockVictim, Epoch: x.id})
		}
		if aerr := x.abortLocked(true); aerr != nil {
			return nil, nil, aerr
		}
		return nil, nil, fmt.Errorf("%w: %v", ErrTxnAborted, err)
	}
	leaf2, path2, err := t.relatch(path, key, dx, latchMode, promote)
	if err != nil {
		// D_X changed while we waited: abort (paper §2.4). Rare.
		t.c.txnAbortsDX.Add(1)
		if t.tracing() {
			t.obs.Emit(obs.Event{Kind: obs.EvRelatchAbort, DXWant: dx, DXSeen: t.dx.v.Load(), Epoch: x.id})
		}
		if aerr := x.abortLocked(true); aerr != nil {
			return nil, nil, aerr
		}
		return nil, nil, fmt.Errorf("%w: delete state changed during re-latch", ErrTxnAborted)
	}
	return leaf2, path2, nil
}

// Get reads key under a shared record lock held to commit (strict 2PL).
func (x *Txn) Get(key []byte) ([]byte, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.done {
		return nil, ErrTxnDone
	}
	t := x.t
	if err := t.opBegin(); err != nil {
		return nil, err
	}
	defer t.opEnd()
	if len(key) == 0 {
		return nil, ErrEmptyKey
	}
	t.c.searches.Add(1)
	t0, sp := t.obsBegin(obs.OpSearch)
	defer t.obsEnd(obs.OpSearch, t0, sp)
	dx := t.dx.v.Load()
	leaf, path, err := t.traverseRead(traverseOpts{key: key, intent: latch.Shared, dx: dx, sp: sp})
	if err != nil {
		return nil, err
	}
	leaf, path, err = x.lockWithLatch(leaf, path, dx, key, lock.Shared, latch.Shared, false, sp)
	if err != nil {
		return nil, err
	}
	pos, found := leaf.searchLeaf(t.cmp, key)
	var val []byte
	if found {
		val = append([]byte(nil), leaf.c.Vals[pos]...)
	}
	t.maybeEnqueueLeafDelete(leaf, path, dx)
	t.unlatchUnpin(leaf, latch.Shared, false)
	if !found {
		return nil, ErrKeyNotFound
	}
	return val, nil
}

// Put inserts or replaces key under an exclusive record lock.
func (x *Txn) Put(key, val []byte) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.done {
		return ErrTxnDone
	}
	t := x.t
	if err := t.opBegin(); err != nil {
		return err
	}
	defer t.opEnd()
	if err := t.validateEntry(key, val); err != nil {
		return err
	}
	t.c.inserts.Add(1)
	t0, sp := t.obsBegin(obs.OpInsert)
	dx := t.dx.v.Load()
	leaf, path, err := t.traverse(traverseOpts{key: key, intent: latch.Update, promote: true, dx: dx, sp: sp})
	if err != nil {
		return err
	}
	leaf, path, err = x.lockWithLatch(leaf, path, dx, key, lock.Exclusive, latch.Update, true, sp)
	if err != nil {
		return err
	}
	// Capture the prior value for undo before the write.
	var op wal.Op = wal.OpInsert
	var old []byte
	if pos, found := leaf.searchLeaf(t.cmp, key); found {
		op = wal.OpUpdate
		old = append([]byte(nil), leaf.c.Vals[pos]...)
	}
	lsn, updated, err := t.putOnLeaf(leaf, path, dx, recOpParams{txn: x.id, prevLSN: x.last(), sp: sp}, key, val)
	if err != nil {
		return err
	}
	if updated {
		t.c.updates.Add(1)
		t.obsEnd(obs.OpUpdate, t0, sp)
	} else {
		t.obsEnd(obs.OpInsert, t0, sp)
	}
	x.record(op, key, old, lsn)
	return nil
}

// Delete removes key under an exclusive record lock.
func (x *Txn) Delete(key []byte) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.done {
		return ErrTxnDone
	}
	t := x.t
	if err := t.opBegin(); err != nil {
		return err
	}
	defer t.opEnd()
	if len(key) == 0 {
		return ErrEmptyKey
	}
	t.c.deletes.Add(1)
	t0, sp := t.obsBegin(obs.OpDelete)
	defer t.obsEnd(obs.OpDelete, t0, sp)
	dx := t.dx.v.Load()
	leaf, path, err := t.traverse(traverseOpts{key: key, intent: latch.Update, promote: true, dx: dx, sp: sp})
	if err != nil {
		return err
	}
	leaf, path, err = x.lockWithLatch(leaf, path, dx, key, lock.Exclusive, latch.Update, true, sp)
	if err != nil {
		return err
	}
	var old []byte
	if pos, found := leaf.searchLeaf(t.cmp, key); found {
		old = append([]byte(nil), leaf.c.Vals[pos]...)
	}
	lsn, err := t.deleteOnLeaf(leaf, path, dx, recOpParams{txn: x.id, prevLSN: x.last(), sp: sp}, key)
	if err != nil {
		return err
	}
	x.record(wal.OpDelete, key, old, lsn)
	return nil
}
