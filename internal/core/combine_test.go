package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"blinktree/internal/wal"
)

// combineTree opens a volatile logged tree with the given combining mode.
func combineTree(t *testing.T, combining FeatureMode, threshold int) *Tree {
	t.Helper()
	tr, err := New(Options{
		PageSize:         1024,
		Workers:          WorkersNone,
		LogDevice:        wal.NewMemDevice(),
		Combining:        combining,
		CombineThreshold: threshold,
		AppendFastPath:   FeatureOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestCombineSingleThreadEquivalence drives an identical operation sequence
// through a CombineAlways tree (every eligible op publishes and
// self-drains) and a combining-off tree, and requires identical per-op
// results and identical final contents. This pins the drain's apply logic
// (insert/update/delete, fit checks, WAL batching) to the normal path's
// semantics without any scheduling nondeterminism.
func TestCombineSingleThreadEquivalence(t *testing.T) {
	on := combineTree(t, FeatureOn, CombineAlways)
	off := combineTree(t, FeatureOff, 0)

	key := func(i int) []byte { return []byte(fmt.Sprintf("k%05d", i)) }
	val := func(i, rev int) []byte { return []byte(fmt.Sprintf("v%05d-%d", i, rev)) }

	type step struct {
		op  string
		i   int
		rev int
	}
	var steps []step
	for i := 0; i < 400; i++ {
		steps = append(steps, step{"put", i % 120, 0})
		if i%3 == 0 {
			steps = append(steps, step{"put", i % 120, 1}) // update in place
		}
		if i%5 == 0 {
			steps = append(steps, step{"del", (i + 7) % 120, 0})
		}
		if i%11 == 0 {
			steps = append(steps, step{"del", 10_000 + i, 0}) // absent key
		}
	}
	for n, s := range steps {
		var errOn, errOff error
		switch s.op {
		case "put":
			errOn = on.Put(key(s.i), val(s.i, s.rev))
			errOff = off.Put(key(s.i), val(s.i, s.rev))
		case "del":
			errOn = on.Delete(key(s.i))
			errOff = off.Delete(key(s.i))
		}
		if !errors.Is(errOn, errOff) && (errOn != nil || errOff != nil) {
			t.Fatalf("step %d (%s %d): combining err %v, plain err %v", n, s.op, s.i, errOn, errOff)
		}
	}
	if on.Stats().CombinePublishes == 0 {
		t.Fatal("CombineAlways run never published")
	}
	gotOn, err := on.Records()
	if err != nil {
		t.Fatal(err)
	}
	gotOff, err := off.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotOn) != len(gotOff) {
		t.Fatalf("record counts differ: combining %d, plain %d", len(gotOn), len(gotOff))
	}
	for k, v := range gotOff {
		if !bytes.Equal(gotOn[k], v) {
			t.Fatalf("mismatch at %q: combining %q, plain %q", k, gotOn[k], v)
		}
	}
	if err := on.Verify(); err != nil {
		t.Fatalf("combining tree invariants: %v", err)
	}
}

// TestCombineConcurrentDisjointKeys has goroutines mutate disjoint keys that
// share leaves, with combining forced to publish eagerly (threshold 1). The
// final state is interleaving-independent, so it must exactly equal the
// expected map, and every individual result (update flags via counters,
// delete-absent errors) must come back correct through the combining
// hand-off. Run under -race this also checks the publisher/drainer memory
// ordering.
func TestCombineConcurrentDisjointKeys(t *testing.T) {
	tr := combineTree(t, FeatureOn, 1)
	const goroutines = 8
	const perG = 300

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := []byte(fmt.Sprintf("g%02d-%06d", g, i%40))
				v := []byte(fmt.Sprintf("val-%02d-%06d", g, i))
				if err := tr.Put(k, v); err != nil {
					errCh <- fmt.Errorf("g%d put %d: %w", g, i, err)
					return
				}
				if i%4 == 3 {
					if err := tr.Delete(k); err != nil {
						errCh <- fmt.Errorf("g%d del %d: %w", g, i, err)
						return
					}
				}
				// Deleting another goroutine's never-inserted key must
				// surface ErrKeyNotFound through the combining hand-off.
				if i%17 == 0 {
					absent := []byte(fmt.Sprintf("zz-absent-%02d-%06d", g, i))
					if err := tr.Delete(absent); !errors.Is(err, ErrKeyNotFound) {
						errCh <- fmt.Errorf("g%d absent delete: %v", g, err)
						return
					}
				}
			}
			errCh <- nil
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]string{}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			k := fmt.Sprintf("g%02d-%06d", g, i%40)
			want[k] = fmt.Sprintf("val-%02d-%06d", g, i)
			if i%4 == 3 {
				delete(want, k)
			}
		}
	}
	got, err := tr.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("record count %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if string(got[k]) != v {
			t.Fatalf("mismatch at %q: got %q, want %q", k, got[k], v)
		}
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.CombineDrained+s.CombineRetries > s.CombinePublishes {
		t.Fatalf("combining accounting: drained %d + retries %d > publishes %d",
			s.CombineDrained, s.CombineRetries, s.CombinePublishes)
	}
}

// TestCombineHotKeyStress hammers one hot key (plus a split-forcing filler
// stream) from many goroutines with combining on, then verifies invariants.
// The point is adversarial scheduling around drains racing splits and
// consolidations — retry verdicts must re-execute, never drop or duplicate
// an operation. The final hot-key value must be one of the values actually
// written.
func TestCombineHotKeyStress(t *testing.T) {
	tr := combineTree(t, FeatureOn, 1)
	hot := []byte("hot-key")
	const goroutines = 8
	const perG = 400

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 4 {
				case 0, 1:
					if err := tr.Put(hot, []byte(fmt.Sprintf("h%02d-%06d", g, i))); err != nil {
						errCh <- err
						return
					}
				case 2:
					if err := tr.Delete(hot); err != nil && !errors.Is(err, ErrKeyNotFound) {
						errCh <- err
						return
					}
				case 3:
					// Filler keys force splits of the hot leaf while the
					// combiner is active.
					k := []byte(fmt.Sprintf("hos-%02d-%06d", g, i))
					if err := tr.Put(k, bytes.Repeat([]byte{'x'}, 64)); err != nil {
						errCh <- err
						return
					}
				}
				if i%16 == 0 {
					if _, err := tr.Get(hot); err != nil && !errors.Is(err, ErrKeyNotFound) {
						errCh <- err
						return
					}
				}
			}
			errCh <- nil
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.Get(hot); err == nil {
		if !bytes.HasPrefix(v, []byte("h")) {
			t.Fatalf("hot key holds foreign value %q", v)
		}
	} else if !errors.Is(err, ErrKeyNotFound) {
		t.Fatal(err)
	}
}
