package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// TestSoakEverythingAtOnce is the kitchen-sink robustness test: concurrent
// transactional and plain writers, forward and reverse scanners, periodic
// checkpoints, simulated crashes with recovery between rounds — with the
// invariant checker run after every round and a committed-records model
// checked at the end.
func TestSoakEverythingAtOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	dev := wal.NewMemDevice()
	store := storage.NewMemStore(1024)
	committed := make(map[string][]byte) // model, guarded by modelMu
	var modelMu sync.Mutex

	open := func() *Tree {
		tr, err := New(Options{
			PageSize: 1024, MinFill: 0.4, Workers: 2,
			Store: store, LogDevice: dev, CacheSize: 64,
		})
		if err != nil {
			t.Fatalf("open/recover: %v", err)
		}
		return tr
	}

	tr := open()
	for round := 0; round < 5; round++ {
		var wg sync.WaitGroup
		// Transactional writers over disjoint ranges.
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w, round int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*10 + w)))
				for txn := 0; txn < 20; txn++ {
					x, err := tr.Begin()
					if err != nil {
						t.Error(err)
						return
					}
					local := make(map[string][]byte)
					for op := 0; op < 8; op++ {
						k := key(w*10000 + rng.Intn(300))
						if rng.Intn(4) == 0 {
							err := x.Delete(k)
							if err != nil && !errors.Is(err, ErrKeyNotFound) {
								t.Error(err)
								return
							}
							local[string(k)] = nil
						} else {
							v := []byte(fmt.Sprintf("r%d-w%d-t%d-%d", round, w, txn, op))
							if err := x.Put(k, v); err != nil {
								t.Error(err)
								return
							}
							local[string(k)] = v
						}
					}
					if rng.Intn(3) == 0 {
						if err := x.Abort(); err != nil {
							t.Error(err)
						}
						continue
					}
					if err := x.Commit(); err != nil {
						t.Error(err)
						continue
					}
					modelMu.Lock()
					for k, v := range local {
						if v == nil {
							delete(committed, k)
						} else {
							committed[k] = v
						}
					}
					modelMu.Unlock()
				}
			}(w, round)
		}
		// Scanners in both directions (own WaitGroup: they run until the
		// writers and checkpointer finish).
		stop := make(chan struct{})
		var scanners sync.WaitGroup
		for s := 0; s < 2; s++ {
			scanners.Add(1)
			go func(reverse bool) {
				defer scanners.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var prev []byte
					check := func(k, _ []byte) bool {
						if prev != nil {
							c := bytes.Compare(prev, k)
							if (reverse && c <= 0) || (!reverse && c >= 0) {
								t.Errorf("scan order violation (reverse=%v)", reverse)
								return false
							}
						}
						prev = append(prev[:0], k...)
						return true
					}
					var err error
					if reverse {
						err = tr.ScanReverse(nil, nil, check)
					} else {
						err = tr.Scan(nil, nil, check)
					}
					if err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("scan: %v", err)
						return
					}
				}
			}(s == 1)
		}
		// A checkpointer.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if err := tr.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}()
		// Wait for writers+checkpointer, then stop scanners.
		wg.Wait()
		close(stop)
		scanners.Wait()

		tr.DrainTodo()
		if err := tr.Verify(); err != nil {
			t.Fatalf("round %d verify: %v", round, err)
		}

		// Every other round: crash and recover.
		if round%2 == 1 {
			tr.FlushLog() // commits already flushed; this covers SMO tails
			dev.Crash()
			tr.Abandon()
			tr = open()
			tr.DrainTodo()
			if err := tr.Verify(); err != nil {
				t.Fatalf("round %d post-recovery verify: %v", round, err)
			}
		}
	}

	// Final model check.
	recs, err := tr.Records()
	if err != nil {
		t.Fatal(err)
	}
	modelMu.Lock()
	defer modelMu.Unlock()
	if len(recs) != len(committed) {
		t.Fatalf("final records %d, committed model %d", len(recs), len(committed))
	}
	for k, v := range committed {
		if !bytes.Equal(recs[k], v) {
			t.Fatalf("mismatch at %q: %q vs %q", k, recs[k], v)
		}
	}
	tr.Close()
}
