package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"blinktree/internal/page"
)

func TestShortestSeparator(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"apple", "banana", "b"},
		{"banana", "bandana", "band"},
		{"abc", "abcd", "abcd"}, // a is a prefix of b: all of b needed
		{"a", "b", "b"},
		{"car", "cat", "cat"},
		{"user0000099", "user0000100", "user00001"},
	}
	for _, c := range cases {
		got := shortestSeparator([]byte(c.a), []byte(c.b))
		if string(got) != c.want {
			t.Errorf("shortestSeparator(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

// TestQuickShortestSeparatorInvariant: for random a < b, the separator s
// satisfies a < s <= b and is never longer than b.
func TestQuickShortestSeparatorInvariant(t *testing.T) {
	f := func(x, y []byte) bool {
		a, b := x, y
		if bytes.Equal(a, b) {
			return true
		}
		if bytes.Compare(a, b) > 0 {
			a, b = b, a
		}
		s := shortestSeparator(a, b)
		return bytes.Compare(a, s) < 0 &&
			bytes.Compare(s, b) <= 0 &&
			len(s) <= len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSeparatorTruncationShrinksFences: with long shared-prefix keys the
// leaf fences must be much shorter than the keys.
func TestSeparatorTruncationShrinksFences(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	longKey := func(i int) []byte {
		return []byte("tenant-0001/region-eu-west/table-orders/" + string(key(i)))
	}
	for i := 0; i < 800; i++ {
		if err := tr.Put(longKey(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	mustVerify(t, tr)
	leaves, err := tr.LevelNodes(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) < 3 {
		t.Skip("not enough leaves")
	}
	totalFence, n := 0, 0
	for _, id := range leaves {
		info, _ := tr.NodeSnapshot(id)
		if info.High != nil {
			totalFence += len(info.High)
			n++
		}
	}
	avgFence := totalFence / n
	keyLen := len(longKey(0))
	if avgFence >= keyLen {
		t.Fatalf("average fence %d not shorter than key length %d", avgFence, keyLen)
	}
	// Every key must still be found, and ranges must still partition.
	for i := 0; i < 800; i += 13 {
		if _, err := tr.Get(longKey(i)); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
}

func TestSplitPointBalancesBySize(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 4096})
	n := newNode(1, pageLeafContent())
	// One giant value at the front, many small ones after: the byte-wise
	// split point must land after the giant entry, not at the key midpoint.
	n.c.Keys = append(n.c.Keys, []byte("aaa"))
	n.c.Vals = append(n.c.Vals, bytes.Repeat([]byte("X"), 1000))
	for i := 0; i < 20; i++ {
		n.c.Keys = append(n.c.Keys, []byte{byte('b' + i)})
		n.c.Vals = append(n.c.Vals, []byte("v"))
	}
	mid := tr.splitPoint(n)
	if mid > 5 {
		t.Fatalf("splitPoint = %d; size-weighted split should land early", mid)
	}
	if mid < 1 || mid >= len(n.c.Keys) {
		t.Fatalf("splitPoint = %d out of range", mid)
	}
}

func pageLeafContent() page.Content {
	return page.Content{Kind: page.Leaf, Low: []byte{}, Keys: [][]byte{}, Vals: [][]byte{}}
}

func TestSplitPointIndexPrefersShortFence(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 4096})
	c := page.Content{Kind: page.Index, Level: 1, Low: []byte{}}
	// 33 uniform long keys, with one short key just off the size midpoint.
	// The window (±nk/8 around the midpoint) must pick the short key: it
	// becomes the separator posted to the parent.
	nk := 33
	short := nk/2 + 2
	for i := 0; i < nk; i++ {
		var k []byte
		if i == short {
			k = []byte{byte('a' + i)}
		} else {
			k = bytes.Repeat([]byte{byte('a' + i%26)}, 40)
		}
		c.Keys = append(c.Keys, k)
		c.Children = append(c.Children, page.PageID(100+i))
	}
	n := newNode(1, c)
	if got := tr.splitPoint(n); got != short {
		t.Fatalf("splitPoint = %d, want the short fence at %d", got, short)
	}
	// With no short key in the window, the choice stays near the midpoint.
	n.c.Keys[short] = bytes.Repeat([]byte{'z'}, 40)
	mid := tr.splitPoint(n)
	if abs(mid-nk/2) > nk/8+1 {
		t.Fatalf("splitPoint = %d strayed outside the window around %d", mid, nk/2)
	}
}
