package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/buffer"
	"blinktree/internal/latch"
	"blinktree/internal/lock"
	"blinktree/internal/obs"
	"blinktree/internal/page"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// Errors returned by tree operations.
var (
	// ErrKeyNotFound is returned by Get/Delete/Update of an absent key.
	ErrKeyNotFound = errors.New("blinktree: key not found")
	// ErrEmptyKey is returned for zero-length keys; the empty key is the
	// -infinity fence sentinel.
	ErrEmptyKey = errors.New("blinktree: empty key")
	// ErrEntryTooLarge is returned when a record cannot fit in a node.
	ErrEntryTooLarge = errors.New("blinktree: entry too large for page")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("blinktree: tree closed")
	// errDeleteState aborts a structure modification whose delete state
	// changed (paper §2.3): the action is abandoned, to be re-discovered.
	errDeleteState = errors.New("blinktree: delete state changed")
)

// deleteState is the global index-delete state D_X (§4.1.1): a counter
// incremented whenever an index node is deleted, with a latch that is
// latch-coupled with the parent latch in access parent (Figure 4).
type deleteState struct {
	l latch.Latch
	v atomic.Uint64
}

// anchor is the volatile tree anchor: the root pointer and its level.
// A stale root read is harmless — a former root still reaches every node at
// or below its level via side traversals — so readers take only a brief
// read lock and hold no latches.
type anchor struct {
	mu    sync.RWMutex
	root  page.PageID
	level uint8
}

// Tree is a B-link tree with delete-state-based node deletion.
type Tree struct {
	opts  Options
	store storage.Store
	pool  *buffer.Pool
	log   *wal.Log // nil when logging is disabled
	locks *lock.Manager

	// cmp orders keys; bytewise reports whether it is the default
	// bytes.Compare (enables separator truncation and prefix tricks).
	cmp      Compare
	bytewise bool

	// optReads enables the latch-free optimistic read path (optread.go).
	optReads bool

	// combining/combineAlways resolve the Options combining knobs;
	// appendFast enables the right-edge append fast path. rightEdge is
	// that path's cache: a hint naming the rightmost leaf and its low
	// fence (see appendfast.go). All are set in New, before sharing.
	combining     bool
	combineAlways bool
	appendFast    bool
	rightEdge     atomic.Pointer[rightEdgeHint]

	anchor anchor
	dx     deleteState
	todo   *todoQueue
	c      counters

	// obs is the observability registry; nil (the common case) means
	// metrics and tracing are off and every hook is a nil check.
	obs *obs.Registry

	// latchRec receives latch statistics from every latch this tree owns
	// (node latches, the D_X latch), keeping trees in one process from
	// polluting each other's numbers.
	latchRec latch.Recorder

	// epochGen issues node incarnation numbers in non-logged mode; with
	// logging, epochs are SMO record LSNs (monotone across crashes).
	epochGen atomic.Uint64

	// txnSeq issues transaction IDs (resumed above recovered IDs).
	txnSeq atomic.Uint64

	// recStats records what crash recovery found and did; written once
	// during New (before the tree is shared) and read-only afterwards.
	recStats RecoveryStats

	// active tracks live transactions for checkpoint records.
	active activeTxns

	// ckpt gates operations against sharp checkpoints: every operation
	// holds it shared, Checkpoint holds it exclusively.
	ckpt sync.RWMutex

	// smoMu is the global tree latch of the ARIES/IM-style comparator
	// (Options.SerializeSMO): all structure modifications serialize on it.
	// Never acquired while holding node latches.
	smoMu sync.Mutex

	// Drain-policy state: operation counters driving the reference-drain
	// grace period, and the husk list of emptied pages awaiting it.
	opsActive   atomic.Int64
	opsFinished atomic.Uint64
	drainMu     sync.Mutex
	drainList   []drainEntry

	closed atomic.Bool
}

// drainEntry is a deleted page waiting out the drain grace period.
type drainEntry struct {
	id        page.PageID
	releaseAt uint64 // opsFinished horizon at which references have drained
}

// codec deserializes page images into nodes for the buffer pool.
type codec struct{ t *Tree }

// Unmarshal implements buffer.Codec.
func (cd codec) Unmarshal(data []byte) (buffer.Object, error) {
	c, err := page.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	n := &node{id: c.ID, c: *c}
	// Prefix compression is a property of the tree's comparator, not of the
	// stored image: a bytewise tree (re)compresses index pages on write-out,
	// a custom-comparator tree never does (its key order need not preserve
	// byte prefixes). Unmarshal already reconstructed full keys either way.
	n.c.Compress = cd.t.bytewise
	n.latch.SetRecorder(&cd.t.latchRec)
	// The node is private until the pool publishes the frame; optimistic
	// readers arriving later need the routing snapshot in place.
	n.publishRoute()
	return n, nil
}

// New creates a tree. With a LogDevice holding an existing log, the tree is
// recovered from it (redo, then undo of loser transactions); otherwise a
// fresh single-leaf tree is formatted.
func New(opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	if opts.Workers == WorkersNone {
		opts.Workers = 0
	}
	t := &Tree{
		opts:  opts,
		store: opts.Store,
		locks: lock.NewManager(),
	}
	if opts.Compare != nil {
		t.cmp = opts.Compare
		t.bytewise = false
	} else {
		t.cmp = bytes.Compare
		t.bytewise = true
	}
	t.active.m = make(map[uint64]*Txn)
	t.optReads = opts.OptimisticReads == ReadPathOptimistic
	t.combining = opts.Combining == FeatureOn
	t.combineAlways = t.combining && opts.CombineThreshold == CombineAlways
	t.appendFast = opts.AppendFastPath == FeatureOn

	// Observability: resolve the config (the obstrace build tag forces full
	// tracing; the obsoff tag compiles all of it out), then point every
	// subsystem's observer hook at the registry.
	if obs.Compiled {
		var cfg obs.Config
		if opts.Observability != nil {
			cfg = *opts.Observability
		}
		if obs.ForceTrace {
			cfg.Metrics = true
			cfg.Trace = true
			// Spans too, so the race-detector CI run exercises the span
			// machinery on every tree (at the default sampling rate unless
			// the test configured its own).
			cfg.Spans = true
		}
		t.obs = obs.New(cfg)
	}
	t.dx.l.SetRecorder(&t.latchRec)
	latch.RegisterRecorder(&t.latchRec)
	if t.obs != nil {
		t.latchRec.SetLongWaitCallback(t.obs.LatchWaitThreshold(), t.obs.ObserveLongWait)
		t.locks.SetWaitObserver(func(_ lock.Resource, d time.Duration, _ bool) {
			t.obs.ObserveLockWait(d)
		})
	}

	if opts.LogDevice != nil {
		log, err := wal.NewLog(opts.LogDevice)
		if err != nil {
			return nil, fmt.Errorf("blinktree: opening log: %w", err)
		}
		t.log = log
		if t.obs != nil {
			t.log.SetObserver(t.obs)
		}
		t.log.StartPipeline(wal.PipelineConfig{
			Mode:     opts.Durability,
			Interval: opts.FlushInterval,
			Bytes:    opts.FlushBytes,
		})
	}
	t.pool = buffer.NewPool(t.store, t.log, codec{t}, opts.CacheSize)
	if t.obs != nil {
		t.pool.SetObserver(t.obs)
	}
	t.todo = newTodoQueue(t, opts.Workers)

	recovered := false
	if t.log != nil {
		var err error
		recovered, err = t.recover()
		if err != nil {
			return nil, err
		}
	}
	if !recovered {
		if err := t.format(); err != nil {
			return nil, err
		}
	}
	t.todo.start()
	return t, nil
}

// format initializes a fresh tree: a single empty leaf as the root.
func (t *Tree) format() error {
	rootC := page.Content{
		Kind:  page.Leaf,
		Level: 0,
		Low:   []byte{},
		Keys:  [][]byte{},
		Vals:  [][]byte{},
	}
	root, err := t.allocNode(rootC)
	if err != nil {
		return err
	}
	t.anchor.root = root.id
	t.anchor.level = 0
	if t.log != nil {
		_, err = t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
			root.c.LSN = uint64(lsn)
			root.c.Epoch = uint64(lsn)
			img, merr := root.Marshal(t.opts.PageSize)
			if merr != nil {
				panic(merr) // fresh empty root always fits
			}
			return &wal.Record{
				Type:   wal.TSMO,
				SMO:    wal.SMOFormat,
				Images: []wal.PageImage{{ID: root.id, Data: img}},
				Allocs: []page.PageID{root.id},
				Root:   root.id,
			}
		})
		if err != nil {
			return err
		}
		if err := t.log.FlushAll(); err != nil {
			return err
		}
	}
	t.pool.Unpin(root.id, true)
	return nil
}

// readAnchor returns the current root and its level.
func (t *Tree) readAnchor() (page.PageID, uint8) {
	t.anchor.mu.RLock()
	defer t.anchor.mu.RUnlock()
	return t.anchor.root, t.anchor.level
}

// fetch pins the node for id.
func (t *Tree) fetch(id page.PageID) (*node, error) {
	obj, err := t.pool.Fetch(id)
	if err != nil {
		return nil, err
	}
	return obj.(*node), nil
}

// pinLatch pins id and acquires its latch in the given mode. On error
// nothing is held. The caller must check n.dead where a deleted node is
// possible.
func (t *Tree) pinLatch(id page.PageID, m latch.Mode) (*node, error) {
	n, err := t.fetch(id)
	if err != nil {
		return nil, err
	}
	n.latch.Acquire(m)
	return n, nil
}

// unlatchUnpin releases the latch and the pin. Every exclusive release of
// an index node funnels through here, so this is where the routing snapshot
// for optimistic readers is republished — after the mutation, before the
// version word goes even again inside Release. Exclusive releases of leaves
// are likewise where the combining buffer is drained: the releaser is the
// latch winner, so it applies every published operation before giving the
// latch up (combine.go).
func (t *Tree) unlatchUnpin(n *node, m latch.Mode, dirty bool) {
	if m == latch.Exclusive {
		if t.combining && n.isLeaf() {
			dirty = t.drainCombiner(n) || dirty
		}
		n.publishRoute()
	}
	n.latch.Release(m)
	t.pool.Unpin(n.id, dirty)
}

// allocNode allocates a store page and registers a node for it, returned
// pinned. In non-logged mode the epoch is assigned here; in logged mode the
// caller's SMO stamps it with the SMO record's LSN.
func (t *Tree) allocNode(c page.Content) (*node, error) {
	id, err := t.store.Allocate()
	if err != nil {
		return nil, err
	}
	n, err := t.adoptNode(id, c)
	if err != nil {
		derr := t.store.Deallocate(id)
		if derr != nil {
			return nil, errors.Join(err, derr)
		}
		return nil, err
	}
	return n, nil
}

// adoptNode registers a node for an already-allocated page ID, returned
// pinned. Bulk load leases page-ID batches from the allocator up front and
// adopts them here, so builder goroutines never touch the allocator lock.
func (t *Tree) adoptNode(id page.PageID, c page.Content) (*node, error) {
	if t.log == nil {
		c.Epoch = t.epochGen.Add(1)
	}
	c.Compress = t.bytewise
	n := newNode(id, c)
	n.latch.SetRecorder(&t.latchRec)
	if err := t.pool.Insert(id, n); err != nil {
		return nil, err
	}
	return n, nil
}

// reclaim removes a dead node's page. The caller must have released its own
// pin; if another goroutine still pins the frame (it will observe the dead
// flag and back off), reclamation is retried via the to-do queue.
func (t *Tree) reclaim(id page.PageID) {
	ok, err := t.pool.DiscardIfUnpinned(id, func() error {
		return t.store.Deallocate(id)
	})
	if err != nil {
		// Duplicate reclaim of an already-deallocated page: ignore.
		return
	}
	if !ok {
		t.c.reclaimRetry.Add(1)
		t.todo.enqueue(action{kind: actReclaim, origID: id})
	}
}

// reclaimAction is the queue-driven retry of reclaim. It must requeue (not
// enqueue) on failure: while the action is being processed its dedup slot
// is still occupied, so a nested enqueue of the same key would be collapsed
// and the retry silently lost.
func (t *Tree) reclaimAction(a action) {
	ok, err := t.pool.DiscardIfUnpinned(a.origID, func() error {
		return t.store.Deallocate(a.origID)
	})
	if err != nil {
		// Duplicate reclaim of an already-deallocated page: ignore.
		return
	}
	if !ok {
		t.c.reclaimRetry.Add(1)
		t.todo.requeue(a)
		return
	}
	t.traceSMO(obs.EvCompleted, &a)
}

// Stats returns a snapshot of the tree's activity counters.
func (t *Tree) Stats() Stats {
	s := t.c.snapshot()
	s.TodoQueueHighWater = uint64(t.todo.totalHighWater.Load())
	return s
}

// SchedulerStats returns a snapshot of the maintenance scheduler: shard
// layout, queue-depth high-water marks, backpressure/dedup activity and the
// enqueue-to-process latency histogram.
func (t *Tree) SchedulerStats() SchedulerStats { return t.todo.snapshot() }

// DX returns the current global index-delete-state counter, for tests and
// experiment reporting.
func (t *Tree) DX() uint64 { return t.dx.v.Load() }

// RecoveryStats returns what crash recovery found and did when this tree
// was opened; the zero value (Recovered false) means no recovery ran.
func (t *Tree) RecoveryStats() RecoveryStats { return t.recStats }

// PoolStats returns buffer pool statistics.
func (t *Tree) PoolStats() buffer.Stats { return t.pool.Snapshot() }

// StoreStats returns page store statistics (live page count drives the
// utilization experiment E2).
func (t *Tree) StoreStats() storage.Stats { return t.store.Stats() }

// LockStats returns lock manager statistics.
func (t *Tree) LockStats() lock.Stats { return t.locks.Snapshot() }

// LogStats returns the write-ahead log's (appended records, forced
// flushes); zeros when logging is disabled. The logging experiment (E3)
// compares these across delete policies.
func (t *Tree) LogStats() (appends, flushes uint64) {
	if t.log == nil {
		return 0, 0
	}
	return t.log.Stats()
}

// Height returns the current root level (a single-leaf tree has height 0).
func (t *Tree) Height() uint8 {
	_, lvl := t.readAnchor()
	return lvl
}

// DrainTodo synchronously processes queued structure modifications until
// the queue is empty and idle. Tests and benchmarks use it to reach a
// quiescent, fully-posted state. Under the drain policy, it also reclaims
// every husk (quiescence means all references have drained).
func (t *Tree) DrainTodo() {
	t.todo.drain()
	if t.opts.DeletePolicy == Drain {
		t.drainReclaim(true)
	}
}

// DrainPending returns the number of deleted pages still waiting out the
// drain grace period (drain policy only); experiment E2 reports it.
func (t *Tree) DrainPending() int {
	t.drainMu.Lock()
	defer t.drainMu.Unlock()
	return len(t.drainList)
}

// TodoLen returns the number of queued structure-modification actions.
func (t *Tree) TodoLen() int { return t.todo.len() }

// Checkpoint takes a sharp checkpoint: operations are quiesced, all dirty
// pages are flushed (honoring the WAL rule), and a checkpoint record is
// logged and forced. Redo after a crash restarts at the checkpoint.
func (t *Tree) Checkpoint() error {
	if t.log == nil {
		return nil
	}
	t.ckpt.Lock()
	defer t.ckpt.Unlock()
	if err := t.pool.FlushAll(); err != nil {
		return err
	}
	if err := t.store.Sync(); err != nil {
		return err
	}
	root, _ := t.readAnchor()
	// Operations are quiesced (ckpt held exclusively), but transactions
	// can span checkpoints: record the live ones so analysis still finds
	// losers whose records all precede the checkpoint.
	t.active.mu.Lock()
	var act []wal.ActiveTxn
	for id, x := range t.active.m {
		act = append(act, wal.ActiveTxn{ID: id, LastLSN: x.last()})
	}
	t.active.mu.Unlock()
	if _, err := t.log.Append(&wal.Record{
		Type:   wal.TCheckpoint,
		Root:   root,
		Active: act,
	}); err != nil {
		return err
	}
	return t.log.FlushAll()
}

// Close drains the to-do queue, flushes state and shuts the tree down. The
// commit pipeline is drained first: parked group commits are covered by a
// final force and acknowledged before the writer goroutine exits.
func (t *Tree) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	latch.UnregisterRecorder(&t.latchRec)
	t.todo.stop()
	if t.log != nil {
		if err := t.log.Stop(true); err != nil {
			return err
		}
		if err := t.pool.FlushAll(); err != nil {
			return err
		}
		if err := t.log.FlushAll(); err != nil {
			return err
		}
	}
	return t.store.Sync()
}

// FlushLog forces all appended log records durable without checkpointing.
// In every durability mode a successful return guarantees every operation
// completed before the call survives any later crash — under the periodic
// and async modes this is THE explicit durability barrier (commit
// acknowledgements there do not wait for a force). Crash-simulation
// harnesses use it to define the durable horizon before simulating a
// failure.
func (t *Tree) FlushLog() error {
	if t.log == nil {
		return nil
	}
	return t.log.FlushAll()
}

// Abandon stops background workers without flushing any state, simulating
// process death. The commit pipeline's writer is stopped without a final
// force (parked commits would get ErrPipelineStopped — a real power cut
// never acks them either). The tree is unusable afterwards; reopen over
// the same log device to exercise recovery.
func (t *Tree) Abandon() {
	t.closed.Store(true)
	latch.UnregisterRecorder(&t.latchRec)
	t.todo.stop()
	if t.log != nil {
		_ = t.log.Stop(false)
	}
}

// opBegin gates an operation against checkpoints and rejects closed trees.
func (t *Tree) opBegin() error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.ckpt.RLock()
	if t.closed.Load() {
		t.ckpt.RUnlock()
		return ErrClosed
	}
	if t.opts.DeletePolicy == Drain {
		t.opsActive.Add(1)
	}
	return nil
}

func (t *Tree) opEnd() {
	if t.opts.DeletePolicy == Drain {
		t.opsActive.Add(-1)
		t.opsFinished.Add(1)
	}
	t.ckpt.RUnlock()
	// Backpressure: a completing operation holds no latches, so it is a
	// safe point to self-throttle by running one queued action inline.
	t.todo.maybeAssist()
}

// drainDefer parks a deleted page until outstanding references could have
// drained: after every operation active at deletion time has finished.
func (t *Tree) drainDefer(id page.PageID) {
	release := t.opsFinished.Load() + uint64(t.opsActive.Load()) + 1
	t.drainMu.Lock()
	t.drainList = append(t.drainList, drainEntry{id: id, releaseAt: release})
	t.drainMu.Unlock()
}

// drainReclaim frees husks whose grace period has passed. force reclaims
// everything (Close / quiescent drains).
func (t *Tree) drainReclaim(force bool) {
	horizon := t.opsFinished.Load()
	t.drainMu.Lock()
	var keep []drainEntry
	var free []page.PageID
	for _, e := range t.drainList {
		if force || horizon >= e.releaseAt {
			free = append(free, e.id)
		} else {
			keep = append(keep, e)
		}
	}
	t.drainList = keep
	t.drainMu.Unlock()
	for _, id := range free {
		t.reclaim(id)
	}
}

// maxEntry returns the largest record that fits: a page must hold at least
// two entries plus fences for splits to terminate.
func (t *Tree) maxEntry() int {
	return (t.opts.PageSize - 128) / 2
}

// validateEntry rejects keys/values the tree cannot store.
func (t *Tree) validateEntry(key, val []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if page.EntrySize(page.Leaf, len(key), len(val))+len(key) > t.maxEntry() {
		return fmt.Errorf("%w: key %d + value %d bytes", ErrEntryTooLarge, len(key), len(val))
	}
	return nil
}

// underutilized reports whether n qualifies for consolidation. The drain
// and ARIES/IM comparators require the node to be completely empty (§1.3:
// "It requires waiting until a node is empty before deleting it. ... The
// method of [15] also requires pages to be empty."); the paper's method
// consolidates at any utilization bound.
func (t *Tree) underutilized(n *node) bool {
	return t.underutilizedRaw(n.logicalSize(), len(n.c.Keys))
}

// underutilizedRaw is the underutilized policy on raw numbers, shared with
// the optimistic read path (which works from routing snapshots, not nodes).
func (t *Tree) underutilizedRaw(size, nkeys int) bool {
	if t.opts.MinFill <= 0 {
		return false
	}
	if t.opts.DeletePolicy == Drain || t.opts.SerializeSMO {
		return nkeys == 0
	}
	return float64(size) < t.opts.MinFill*float64(t.opts.PageSize)
}
