package core

import (
	"bytes"
	"errors"
	"testing"

	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

func TestSavepointPartialRollback(t *testing.T) {
	tr := newTestTree(t, Options{LogDevice: wal.NewMemDevice()})
	tr.Put([]byte("base"), []byte("orig"))

	x, _ := tr.Begin()
	x.Put([]byte("a"), []byte("1"))
	sp := x.Savepoint()
	x.Put([]byte("b"), []byte("2"))
	x.Put([]byte("base"), []byte("dirty"))
	x.Delete([]byte("a"))

	if err := x.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	// Work after the savepoint is undone; work before it survives.
	if v, err := x.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("a after partial rollback: %q, %v", v, err)
	}
	if _, err := x.Get([]byte("b")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("b after partial rollback: %v", err)
	}
	if v, _ := x.Get([]byte("base")); string(v) != "orig" {
		t.Fatalf("base after partial rollback: %q", v)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("a after commit: %q, %v", v, err)
	}
	mustVerify(t, tr)
}

func TestSavepointNested(t *testing.T) {
	tr := newTestTree(t, Options{})
	x, _ := tr.Begin()
	x.Put(key(1), []byte("v1"))
	sp1 := x.Savepoint()
	x.Put(key(2), []byte("v2"))
	sp2 := x.Savepoint()
	x.Put(key(3), []byte("v3"))

	if err := x.RollbackTo(sp2); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Get(key(3)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("key3 survived inner rollback: %v", err)
	}
	if _, err := x.Get(key(2)); err != nil {
		t.Fatalf("key2 lost by inner rollback: %v", err)
	}
	if err := x.RollbackTo(sp1); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Get(key(2)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("key2 survived outer rollback: %v", err)
	}
	x.Commit()
	if n, _ := tr.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestSavepointInvalid(t *testing.T) {
	tr := newTestTree(t, Options{})
	x, _ := tr.Begin()
	if err := x.RollbackTo(-1); err == nil {
		t.Fatal("negative savepoint accepted")
	}
	if err := x.RollbackTo(5); err == nil {
		t.Fatal("future savepoint accepted")
	}
	x.Commit()
	if err := x.RollbackTo(0); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("RollbackTo on finished txn: %v", err)
	}
}

func TestSavepointAbortAfterPartialRollback(t *testing.T) {
	tr := newTestTree(t, Options{LogDevice: wal.NewMemDevice()})
	x, _ := tr.Begin()
	x.Put(key(1), []byte("v1"))
	sp := x.Savepoint()
	x.Put(key(2), []byte("v2"))
	x.RollbackTo(sp)
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Len(); n != 0 {
		t.Fatalf("Len = %d after abort", n)
	}
	mustVerify(t, tr)
}

func TestSavepointCrashRecovery(t *testing.T) {
	// A crash after a partial rollback must not resurrect the rolled-back
	// suffix: the CLR UndoNext chain skips it during recovery undo.
	dev := wal.NewMemDevice()
	tr, err := New(Options{PageSize: 512, LogDevice: dev,
		Store: storage.NewMemStore(512), Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tr.Begin()
	x.Put([]byte("keep-candidate"), []byte("v"))
	sp := x.Savepoint()
	x.Put([]byte("rolled-back"), []byte("v"))
	if err := x.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	tr.FlushLog()
	dev.Crash()
	tr.Abandon()

	tr2, err := New(Options{PageSize: 512, LogDevice: dev,
		Store: storage.NewMemStore(512), Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	// The whole transaction was a loser: everything is undone, once.
	if n, _ := tr2.Len(); n != 0 {
		recs, _ := tr2.Records()
		t.Fatalf("Len = %d after crash (%v)", n, recs)
	}
	mustVerify(t, tr2)
}

func TestCursorSeek(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	for i := 0; i < 300; i++ {
		tr.Put(key(i), valb(i))
	}
	cur := tr.NewCursor(nil, nil)
	// Read a few, then jump forward.
	for i := 0; i < 5; i++ {
		if _, _, ok, err := cur.Next(); !ok || err != nil {
			t.Fatal(ok, err)
		}
	}
	cur.Seek(key(200))
	k, _, ok, err := cur.Next()
	if err != nil || !ok || !bytes.Equal(k, key(200)) {
		t.Fatalf("after Seek(200): %q %v %v", k, ok, err)
	}
	// Jump backward.
	cur.Seek(key(10))
	k, _, ok, err = cur.Next()
	if err != nil || !ok || !bytes.Equal(k, key(10)) {
		t.Fatalf("after Seek(10): %q %v %v", k, ok, err)
	}
	// Seek past the end exhausts the cursor.
	cur.Seek([]byte("zzzz"))
	if _, _, ok, _ := cur.Next(); ok {
		t.Fatal("cursor returned a record past the end")
	}
	// Seek revives an exhausted cursor.
	cur.Seek(key(299))
	k, _, ok, err = cur.Next()
	if err != nil || !ok || !bytes.Equal(k, key(299)) {
		t.Fatalf("after revive: %q %v %v", k, ok, err)
	}
}
