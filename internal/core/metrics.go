package core

import (
	"time"

	"blinktree/internal/buffer"
	"blinktree/internal/latch"
	"blinktree/internal/lock"
	"blinktree/internal/obs"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// TreeMetrics is one consistent observability snapshot of a tree: every
// counter family the tree maintains, gathered in a single call so exporters
// (expvar, Prometheus) do not stitch together readings from different
// instants. Each family is internally consistent (atomic loads); families
// are read back-to-back.
type TreeMetrics struct {
	Stats  Stats          // operation/SMO counters
	Sched  SchedulerStats // maintenance scheduler
	Latch  latch.Stats    // per-tree latch activity
	Pool   buffer.Stats   // buffer pool
	Store  storage.Stats  // page store
	Locks  lock.Stats     // record lock manager
	Height uint8          // current root level

	// LogAppends/LogForces are zero when logging is disabled.
	LogAppends uint64
	LogForces  uint64

	// WALGroup counts the commit pipeline's activity (group-commit batches,
	// immediate acks, writer forces); zero when logging is disabled or the
	// tree runs in the default sync mode.
	WALGroup wal.GroupStats

	// Recovery reports what crash recovery found and did at open time
	// (Recovered false when the tree started fresh or without a log).
	Recovery RecoveryStats

	// Obs holds the latency histograms and trace-ring counters; nil when
	// Options.Observability metrics are disabled.
	Obs *obs.Snapshot
}

// Snapshot gathers the tree's full metrics in one call.
func (t *Tree) Snapshot() TreeMetrics {
	m := TreeMetrics{
		Stats:    t.Stats(),
		Sched:    t.SchedulerStats(),
		Latch:    t.latchRec.Snapshot(),
		Pool:     t.pool.Snapshot(),
		Store:    t.store.Stats(),
		Locks:    t.locks.Snapshot(),
		Height:   t.Height(),
		Recovery: t.RecoveryStats(),
		Obs:      t.obs.Snapshot(),
	}
	m.LogAppends, m.LogForces = t.LogStats()
	if t.log != nil {
		m.WALGroup = t.log.GroupStats()
	}
	return m
}

// LatchStats returns this tree's latch activity. Unlike the deprecated
// package-wide latch.Snapshot, it covers only this tree's latches.
func (t *Tree) LatchStats() latch.Stats { return t.latchRec.Snapshot() }

// TraceEvents returns the buffered trace events, oldest first; nil when
// tracing is disabled.
func (t *Tree) TraceEvents() []obs.Event { return t.obs.Events() }

// Registry exposes the tree's observability registry (nil when disabled);
// the bench harness reads histograms from it directly.
func (t *Tree) Registry() *obs.Registry { return t.obs }

// obsStart returns an operation start time, or the zero time when metrics
// are off — the disabled path is one nil check and no clock read.
func (t *Tree) obsStart() time.Time {
	if t.obs.MetricsOn() {
		return time.Now()
	}
	return time.Time{}
}

// obsOp records an operation latency started at t0 (no-op when t0 is zero).
func (t *Tree) obsOp(op obs.Op, t0 time.Time) {
	if !t0.IsZero() {
		t.obs.ObserveOp(op, time.Since(t0))
	}
}

// obsBegin starts an operation's observation: the histogram start time plus
// a span when the sampler selects this operation (nil otherwise). The
// metrics-off path is one nil check, no clock read, no span.
func (t *Tree) obsBegin(op obs.Op) (time.Time, *obs.Span) {
	if !t.obs.MetricsOn() {
		return time.Time{}, nil
	}
	return time.Now(), t.obs.SpanStart(op)
}

// obsEnd finishes an operation's observation: records the latency
// histogram, finishes the span (sampled ops), or checks the slow-op flight
// recorder threshold (unsampled ops). op is passed again because Put only
// resolves insert-vs-update at the end.
func (t *Tree) obsEnd(op obs.Op, t0 time.Time, sp *obs.Span) {
	if t0.IsZero() {
		return
	}
	d := time.Since(t0)
	t.obs.ObserveOp(op, d)
	if sp != nil {
		t.obs.SpanEnd(sp, op, d)
	} else {
		t.obs.SlowOp(op, d)
	}
}

// tracing reports whether trace events should be built and emitted.
func (t *Tree) tracing() bool { return t.obs.TraceOn() }

// obsAction maps a scheduler action kind onto its obs label.
func obsAction(k actionKind) obs.Action {
	switch k {
	case actPost:
		return obs.ActPost
	case actDelete:
		return obs.ActDelete
	case actShrink:
		return obs.ActShrink
	default:
		return obs.ActReclaim
	}
}

// traceSMO emits one SMO lifecycle event for a, filling in the common
// fields (kind label, origin page, level, node epoch).
func (t *Tree) traceSMO(kind obs.EventKind, a *action) {
	if !t.tracing() {
		return
	}
	t.obs.Emit(obs.Event{
		Kind:   kind,
		Action: obsAction(a.kind),
		Page:   uint64(a.origID),
		Level:  a.level,
		Epoch:  a.origEpoch,
	})
}

// traceAbort emits an SMO abort event carrying the delete-state values that
// caused it: the remembered value (want) versus what was observed (seen).
func (t *Tree) traceAbort(kind obs.EventKind, a *action, want, seen uint64) {
	if !t.tracing() {
		return
	}
	e := obs.Event{
		Kind:   kind,
		Action: obsAction(a.kind),
		Page:   uint64(a.origID),
		Level:  a.level,
		Epoch:  a.origEpoch,
	}
	switch kind {
	case obs.EvAbortDX:
		e.DXWant, e.DXSeen = want, seen
	case obs.EvAbortDD:
		e.DDWant, e.DDSeen = want, seen
	}
	t.obs.Emit(e)
}

// traceOptFallback emits the event for an optimistic read that exhausted
// its restart budget and fell back to the latched traversal.
func (t *Tree) traceOptFallback() {
	if !t.tracing() {
		return
	}
	t.obs.Emit(obs.Event{Kind: obs.EvOptFallback})
}

// traverseExhausted counts a traversal that hit its restart budget
// (live-lock) and emits the matching trace event.
func (t *Tree) traverseExhausted() {
	t.c.traverseExhausted.Add(1)
	if t.tracing() {
		t.obs.Emit(obs.Event{Kind: obs.EvTraverseExhausted})
	}
}

// obsActionDone records an action-processing latency started at t0.
func (t *Tree) obsActionDone(k actionKind, t0 time.Time) {
	if !t0.IsZero() {
		t.obs.ObserveAction(obsAction(k), time.Since(t0))
	}
}
