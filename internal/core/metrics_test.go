package core

import (
	"errors"
	"sync"
	"testing"

	"blinktree/internal/obs"
)

// TestSnapshotConcurrent hammers every read-side stats surface while writers
// and the maintenance scheduler run; under -race this proves Stats, Snapshot,
// TraceEvents and LatchStats are safe against concurrent mutation.
func TestSnapshotConcurrent(t *testing.T) {
	if !obs.Compiled {
		t.Skip("observability compiled out (obsoff)")
	}
	tr := newTestTree(t, Options{
		PageSize: 512, Workers: 2, TodoShards: 4,
		Observability: &obs.Config{Metrics: true, Trace: true},
	})
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := tr.Snapshot()
				if m.Obs == nil {
					t.Error("Snapshot.Obs nil with metrics enabled")
					return
				}
				if m.Obs.TraceDropped > m.Obs.TraceSeq {
					t.Errorf("dropped %d > emitted %d", m.Obs.TraceDropped, m.Obs.TraceSeq)
					return
				}
				_ = tr.Stats()
				_ = tr.LatchStats()
				_ = tr.TraceEvents()
				_ = tr.SchedulerStats()
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				k := key(g*300 + i)
				if err := tr.Put(k, valb(i)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					tr.Delete(k)
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	tr.DrainTodo()

	m := tr.Snapshot()
	if m.Stats.Inserts == 0 || m.Latch.AcquireShared == 0 {
		t.Fatalf("implausible final snapshot: %+v", m.Stats)
	}
	if m.Obs.Ops[obs.OpInsert].Count == 0 {
		t.Fatal("insert histogram empty after workload")
	}
	mustVerify(t, tr)
}

// TestSnapshotDisabled checks the no-op fast path: a tree without
// observability reports a nil histogram section and no trace events.
func TestSnapshotDisabled(t *testing.T) {
	tr := newTestTree(t, Options{})
	if err := tr.Put(key(1), valb(1)); err != nil {
		t.Fatal(err)
	}
	m := tr.Snapshot()
	if m.Obs != nil && obs.Compiled && !obs.ForceTrace {
		t.Fatal("Obs section present without Options.Observability")
	}
	if evs := tr.TraceEvents(); len(evs) != 0 && !obs.ForceTrace {
		t.Fatalf("trace events without tracing: %d", len(evs))
	}
	if m.Stats.Inserts != 1 {
		t.Fatalf("Inserts = %d, want 1", m.Stats.Inserts)
	}
}

// BenchmarkObsOverheadMixed measures the instrumentation cost of a mixed
// point workload at three observability levels. CI compares the disabled
// case against an -tags obsoff build (instrumentation compiled out) and
// fails when the residual overhead exceeds its gate.
func BenchmarkObsOverheadMixed(b *testing.B) {
	for _, bc := range []struct {
		name string
		cfg  *obs.Config
	}{
		{"disabled", nil},
		{"metrics", &obs.Config{Metrics: true}},
		{"full", &obs.Config{Metrics: true, Trace: true}},
		{"sampled", &obs.Config{Metrics: true, Trace: true, Spans: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			tr := newTestTree(b, Options{PageSize: 4096, Workers: 2, Observability: bc.cfg})
			const space = 20_000
			for i := 0; i < space/2; i++ {
				if err := tr.Put(key(i*2), valb(i)); err != nil {
					b.Fatal(err)
				}
			}
			tr.DrainTodo()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				k := key(n % space)
				var err error
				switch n % 4 {
				case 0, 1:
					_, err = tr.Get(k)
				case 2:
					err = tr.Put(k, valb(n))
				case 3:
					err = tr.Delete(k)
				}
				if err != nil && !errors.Is(err, ErrKeyNotFound) {
					b.Fatal(err)
				}
			}
		})
	}
}
