package core

import (
	"fmt"

	"blinktree/internal/page"
)

// DeepReport summarizes what VerifyDeep examined: the structural audit's
// coverage plus the store- and log-level facts an operator triaging a
// suspect directory wants to see.
type DeepReport struct {
	// Height is the root level; NodesPerLevel counts chain-reachable nodes
	// from the leaf level (index 0) up to the root.
	Height        int
	NodesPerLevel []int

	// Records is the total record count across the leaf chain.
	Records int

	// LivePages is the store's allocated-page count; ReachablePages how
	// many of them the tree's chains reach. A clean tree has them equal.
	LivePages      int
	ReachablePages int

	// DDCarriers counts nodes with a nonzero data-delete state D_D. Only
	// level-1 nodes (parents of data nodes) legitimately carry one.
	DDCarriers int

	// WALRecords, WALFirstLSN and WALLastLSN summarize the durable log;
	// LSNs are dense, so WALLastLSN-WALFirstLSN+1 == WALRecords. Zero
	// values when the tree has no log.
	WALRecords  int
	WALFirstLSN uint64
	WALLastLSN  uint64

	// TailTorn/TailTornBytes report the log device's torn-tail
	// observation: garbage past the last valid frame, left by a crash.
	// A torn tail is not a violation — the torn frame was never durable.
	TailTorn      bool
	TailTornBytes int64
}

// VerifyDeep runs Verify plus the deep audits the blinkcheck -deep tool
// exposes, on a quiescent tree:
//
//   - the full structural check (fences, side chains, index terms, key
//     order across the leaf chain — see Verify);
//   - a whole-store page scan: every allocated page must deserialize
//     (checksum-clean), carry its own page ID, and be reachable from the
//     tree's level chains — an unreachable allocated page is a leak;
//   - a delete-state audit: a nonzero D_D may appear only on level-1
//     nodes, the parents of data nodes (paper §4: D_D counts data-node
//     deletes below that parent);
//   - WAL tail sanity: durable records must have dense, strictly
//     ascending LSNs starting at 1, and a torn tail, if any, is reported.
//
// It returns the report and the first violation found (report is non-nil
// even on error, reflecting what was audited before the violation).
func (t *Tree) VerifyDeep() (*DeepReport, error) {
	rep := &DeepReport{}
	if err := t.Verify(); err != nil {
		return rep, err
	}

	// Walk every level chain, collecting the reachable page set.
	reachable := make(map[page.PageID]uint8)
	rootID, rootLevel := t.readAnchor()
	rep.Height = int(rootLevel)
	rep.NodesPerLevel = make([]int, int(rootLevel)+1)
	leftmost := rootID
	for lvl := int(rootLevel); lvl >= 0; lvl-- {
		id := leftmost
		next := page.PageID(0)
		for id != 0 {
			n, err := t.fetch(id)
			if err != nil {
				return rep, fmt.Errorf("verify-deep: level %d fetch %d: %w", lvl, id, err)
			}
			reachable[id] = uint8(lvl)
			rep.NodesPerLevel[lvl]++
			if n.c.DD != 0 {
				rep.DDCarriers++
				if lvl != 1 {
					t.pool.Unpin(id, false)
					return rep, fmt.Errorf("verify-deep: node %d at level %d carries D_D=%d; only level-1 nodes (data-node parents) may", id, lvl, n.c.DD)
				}
			}
			if lvl == 0 {
				rep.Records += len(n.c.Keys)
			}
			if lvl > 0 && next == 0 {
				next = n.c.Children[0]
			}
			right := n.c.Right
			t.pool.Unpin(id, false)
			id = right
		}
		leftmost = next
	}
	rep.ReachablePages = len(reachable)

	// Whole-store scan: every allocated page must deserialize cleanly,
	// name itself, and be reachable.
	st := t.store.Stats()
	rep.LivePages = st.LivePages
	for id := page.PageID(1); id <= st.HighestPage; id++ {
		if !t.store.Allocated(id) {
			continue
		}
		n, err := t.fetch(id)
		if err != nil {
			return rep, fmt.Errorf("verify-deep: allocated page %d does not deserialize: %w", id, err)
		}
		selfID := n.c.ID
		t.pool.Unpin(id, false)
		if selfID != id {
			return rep, fmt.Errorf("verify-deep: page %d names itself %d", id, selfID)
		}
		if _, ok := reachable[id]; !ok {
			return rep, fmt.Errorf("verify-deep: allocated page %d is unreachable (leaked)", id)
		}
	}

	// WAL tail sanity: dense, strictly ascending LSNs; report the torn
	// tail if the device saw one.
	if t.log != nil {
		recs, err := t.log.DurableRecords()
		if err != nil {
			return rep, fmt.Errorf("verify-deep: reading log: %w", err)
		}
		rep.WALRecords = len(recs)
		for i, r := range recs {
			if i == 0 {
				rep.WALFirstLSN = uint64(r.LSN)
				if r.LSN != 1 {
					return rep, fmt.Errorf("verify-deep: log starts at LSN %d, want 1", r.LSN)
				}
				continue
			}
			if r.LSN != recs[i-1].LSN+1 {
				return rep, fmt.Errorf("verify-deep: LSN gap: %d follows %d", r.LSN, recs[i-1].LSN)
			}
		}
		if len(recs) > 0 {
			rep.WALLastLSN = uint64(recs[len(recs)-1].LSN)
		}
		rep.TailTorn, rep.TailTornBytes = t.log.TailTorn()
	}
	return rep, nil
}
