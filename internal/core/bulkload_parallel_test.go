package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// collect scans a tree's full contents into parallel key/value slices.
func collect(t *testing.T, tr *Tree) ([][]byte, [][]byte) {
	t.Helper()
	var keys, vals [][]byte
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		vals = append(vals, append([]byte(nil), v...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys, vals
}

// TestBulkLoadParallelMatchesSerial is the structural-identity property: a
// parallel load at any fan-out yields a tree with the same records, the
// same height and the same per-level node counts as a serial load of the
// same stream, and both pass the deep audit.
func TestBulkLoadParallelMatchesSerial(t *testing.T) {
	const n = 20000
	serial := newTestTree(t, Options{PageSize: 512})
	if err := serial.BulkLoad(pairFeeder(n), 0.85); err != nil {
		t.Fatal(err)
	}
	sRep, err := serial.VerifyDeep()
	if err != nil {
		t.Fatalf("serial deep verify: %v", err)
	}
	sKeys, sVals := collect(t, serial)
	if len(sKeys) != n {
		t.Fatalf("serial records = %d, want %d", len(sKeys), n)
	}

	for _, k := range []int{2, 4, 8} {
		k := k
		t.Run(fmt.Sprintf("parallel=%d", k), func(t *testing.T) {
			tr := newTestTree(t, Options{PageSize: 512})
			if err := tr.BulkLoadParallel(pairFeeder(n), 0.85, k); err != nil {
				t.Fatal(err)
			}
			rep, err := tr.VerifyDeep()
			if err != nil {
				t.Fatalf("deep verify: %v", err)
			}
			if rep.Height != sRep.Height {
				t.Errorf("height = %d, serial %d", rep.Height, sRep.Height)
			}
			for lvl := range sRep.NodesPerLevel {
				if rep.NodesPerLevel[lvl] != sRep.NodesPerLevel[lvl] {
					t.Errorf("level %d nodes = %d, serial %d",
						lvl, rep.NodesPerLevel[lvl], sRep.NodesPerLevel[lvl])
				}
			}
			keys, vals := collect(t, tr)
			if len(keys) != len(sKeys) {
				t.Fatalf("records = %d, serial %d", len(keys), len(sKeys))
			}
			for i := range keys {
				if !bytes.Equal(keys[i], sKeys[i]) || !bytes.Equal(vals[i], sVals[i]) {
					t.Fatalf("record %d mismatch: %q/%q vs %q/%q",
						i, keys[i], vals[i], sKeys[i], sVals[i])
				}
			}
		})
	}
}

// TestBulkLoadParallelCustomComparator checks the non-bytewise path: no
// suffix truncation, no prefix compression, yet serial and parallel loads
// still agree structurally.
func TestBulkLoadParallelCustomComparator(t *testing.T) {
	rev := func(a, b []byte) int { return bytes.Compare(a, b) } // bytewise order, custom identity
	const n = 6000
	serial := newTestTree(t, Options{PageSize: 512, Compare: rev})
	if err := serial.BulkLoad(pairFeeder(n), 0.85); err != nil {
		t.Fatal(err)
	}
	sRep, err := serial.VerifyDeep()
	if err != nil {
		t.Fatal(err)
	}
	tr := newTestTree(t, Options{PageSize: 512, Compare: rev})
	if err := tr.BulkLoadParallel(pairFeeder(n), 0.85, 4); err != nil {
		t.Fatal(err)
	}
	rep, err := tr.VerifyDeep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Height != sRep.Height || rep.Records != sRep.Records {
		t.Fatalf("parallel %d/%d vs serial %d/%d",
			rep.Height, rep.Records, sRep.Height, sRep.Records)
	}
	for lvl := range sRep.NodesPerLevel {
		if rep.NodesPerLevel[lvl] != sRep.NodesPerLevel[lvl] {
			t.Errorf("level %d nodes = %d, serial %d",
				lvl, rep.NodesPerLevel[lvl], sRep.NodesPerLevel[lvl])
		}
	}
}

// TestBulkLoadParallelStats checks the BulkLoadPages/BulkLoadChunks
// counters: pages equals the audit's node count, chunks is positive.
func TestBulkLoadParallelStats(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, BulkChunkPages: 8})
	if err := tr.BulkLoadParallel(pairFeeder(5000), 0.85, 4); err != nil {
		t.Fatal(err)
	}
	rep, err := tr.VerifyDeep()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range rep.NodesPerLevel {
		total += c
	}
	s := tr.Stats()
	if s.BulkLoadPages != uint64(total) {
		t.Errorf("BulkLoadPages = %d, audit reached %d nodes", s.BulkLoadPages, total)
	}
	if s.BulkLoadChunks == 0 {
		t.Error("BulkLoadChunks = 0")
	}
}

// TestBulkLoadEmptiedByDeletes loads a tree that once held data: grown to
// height >= 1, fully emptied by deletes and shrunk back to a level-0 root.
// BulkLoad must accept it (it holds no records) — the emptiness check is
// anchor-level-first, with the root fetch only disambiguating level 0.
func TestBulkLoadEmptiedByDeletes(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	if tr.Height() == 0 {
		t.Fatal("tree did not grow")
	}
	for i := 0; i < n; i++ {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Under-utilization is detected during descents, so alternate probe
	// rounds with drains until the root collapses back to a leaf.
	for round := 0; round < 30 && tr.Height() > 0; round++ {
		for i := 0; i < n; i += 37 {
			tr.Get(key(i))
		}
		tr.DrainTodo()
	}
	if h := tr.Height(); h != 0 {
		t.Fatalf("tree did not shrink back to a leaf root (height %d)", h)
	}
	if err := tr.BulkLoad(pairFeeder(500), 0.85); err != nil {
		t.Fatalf("bulk load on emptied tree: %v", err)
	}
	mustVerify(t, tr)
	if cnt, _ := tr.Len(); cnt != 500 {
		t.Fatalf("Len = %d", cnt)
	}
}

// TestBulkLoadRejectsShrunkNonEmptyTree is the counterpart: a tree shrunk
// back to a level-0 root that still holds records is refused.
func TestBulkLoadRejectsShrunkNonEmptyTree(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	for i := 0; i < n-3; i++ {
		tr.Delete(key(i))
	}
	for round := 0; round < 30 && tr.Height() > 0; round++ {
		for i := 0; i < n; i += 37 {
			tr.Get(key(i))
		}
		tr.DrainTodo()
	}
	if h := tr.Height(); h != 0 {
		t.Skipf("tree kept height %d with 3 records", h)
	}
	if err := tr.BulkLoad(pairFeeder(10), 0.85); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("bulk load on shrunk non-empty tree: %v", err)
	}
}

// TestBulkLoadParallelSurvivesCrash crashes immediately after a parallel,
// chunk-logged load — no page was flushed — and recovers from the log into
// an empty store. Every chunk must replay (the commit record is durable).
func TestBulkLoadParallelSurvivesCrash(t *testing.T) {
	dev := wal.NewMemDevice()
	tr, err := New(Options{PageSize: 512, LogDevice: dev, BulkChunkPages: 4,
		Store: storage.NewMemStore(512), Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	if err := tr.BulkLoadParallel(pairFeeder(n), 0.85, 4); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	tr.Abandon()

	tr2, err := New(Options{PageSize: 512, LogDevice: dev,
		Store: storage.NewMemStore(512), Workers: WorkersNone})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	rs := tr2.RecoveryStats()
	if !rs.Recovered {
		t.Fatal("no recovery ran")
	}
	if rs.BulkChunksSkipped != 0 {
		t.Fatalf("committed load had %d chunks skipped", rs.BulkChunksSkipped)
	}
	if _, err := tr2.VerifyDeep(); err != nil {
		t.Fatalf("deep verify after recovery: %v", err)
	}
	if cnt, _ := tr2.Len(); cnt != n {
		t.Fatalf("recovered Len = %d, want %d", cnt, n)
	}
	for i := 0; i < n; i += 173 {
		got, err := tr2.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("recovered get %d: %q, %v", i, got, err)
		}
	}
}

// badFeeder yields good ascending entries, then one out-of-order key.
func badFeeder(good int) func() ([]byte, []byte, bool) {
	i := 0
	return func() ([]byte, []byte, bool) {
		if i < good {
			k, v := key(i), valb(i)
			i++
			return k, v, true
		}
		if i == good {
			i++
			return key(0), valb(0), true // out of order
		}
		return nil, nil, false
	}
}

// TestBulkLoadAbortedChunksSkippedOnRecovery fails a chunk-logged load
// after several chunk records are durable, then crashes. Recovery must skip
// every chunk of the committed-less session — the abandoned pages stay
// unallocated and invisible — and replay only the work after the failure.
func TestBulkLoadAbortedChunksSkippedOnRecovery(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		parallel := parallel
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			dev := wal.NewMemDevice()
			tr, err := New(Options{PageSize: 512, LogDevice: dev, BulkChunkPages: 2,
				Store: storage.NewMemStore(512), Workers: WorkersNone})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.BulkLoadParallel(badFeeder(400), 0.85, parallel); err == nil {
				t.Fatal("unsorted bulk load accepted")
			}
			// The failed load must leave a usable tree; this put is the only
			// durable record.
			if err := tr.Put(key(7), valb(7)); err != nil {
				t.Fatal(err)
			}
			if err := tr.FlushLog(); err != nil {
				t.Fatal(err)
			}
			dev.Crash()
			tr.Abandon()

			tr2, err := New(Options{PageSize: 512, LogDevice: dev,
				Store: storage.NewMemStore(512), Workers: WorkersNone})
			if err != nil {
				t.Fatal(err)
			}
			defer tr2.Close()
			rs := tr2.RecoveryStats()
			if rs.BulkChunksSkipped == 0 {
				t.Fatal("no chunk records skipped — the aborted session left no durable chunks?")
			}
			if _, err := tr2.VerifyDeep(); err != nil {
				t.Fatalf("deep verify after recovery: %v", err)
			}
			if cnt, _ := tr2.Len(); cnt != 1 {
				t.Fatalf("recovered Len = %d, want 1", cnt)
			}
			if got, err := tr2.Get(key(7)); err != nil || !bytes.Equal(got, valb(7)) {
				t.Fatalf("recovered get: %q, %v", got, err)
			}
		})
	}
}

// TestBulkLoadTinyCachePins checks the chunk-size clamp: a parallel load
// through a pool far smaller than the tree must stream without exhausting
// pins.
func TestBulkLoadTinyCachePins(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, CacheSize: 16})
	const n = 20000
	if err := tr.BulkLoadParallel(pairFeeder(n), 0.85, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.VerifyDeep(); err != nil {
		t.Fatal(err)
	}
	if cnt, _ := tr.Len(); cnt != n {
		t.Fatalf("Len = %d", cnt)
	}
}
