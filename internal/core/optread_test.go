package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"blinktree/internal/latch"
	"blinktree/internal/obs"
)

// TestOptReadBasic checks that default-on optimistic reads return the same
// answers as pessimistic ones on a multi-level tree, and that the attempt
// counter moves.
func TestOptReadBasic(t *testing.T) {
	tr := newTestTree(t, Options{})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	if tr.Height() == 0 {
		t.Fatal("tree did not grow; test needs index levels")
	}
	for i := 0; i < n; i++ {
		got, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, valb(i)) {
			t.Fatalf("Get %d = %q", i, got)
		}
	}
	s := tr.Stats()
	if s.OptReadAttempts == 0 {
		t.Fatal("no optimistic attempts recorded with OptimisticReads default-on")
	}
	if s.OptReadAttempts < s.OptReadRestarts {
		t.Fatalf("restarts %d exceed attempts %d", s.OptReadRestarts, s.OptReadAttempts)
	}
	mustVerify(t, tr)
}

// TestOptReadDisabled checks the pessimistic toggle: no optimistic counters
// move.
func TestOptReadDisabled(t *testing.T) {
	tr := newTestTree(t, Options{OptimisticReads: ReadPathPessimistic})
	for i := 0; i < 500; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := tr.Stats(); s.OptReadAttempts != 0 || s.OptReadFallbacks != 0 {
		t.Fatalf("pessimistic tree recorded optimistic activity: %+v", s)
	}
}

// TestOptReadFallback forces validation failures by holding the root's
// exclusive latch: the version word stays odd, every optimistic attempt
// fails immediately, and the read falls back to the pessimistic traversal,
// which blocks until the latch is released.
func TestOptReadFallback(t *testing.T) {
	if !obs.Compiled {
		t.Skip("trace events compiled out (obsoff)")
	}
	tr := newTestTree(t, Options{Observability: &obs.Config{Trace: true}})
	for i := 0; i < 2000; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	rootID, _ := tr.readAnchor()
	root, err := tr.fetch(rootID)
	if err != nil {
		t.Fatal(err)
	}
	root.latch.Acquire(latch.Exclusive)

	done := make(chan error, 1)
	go func() {
		v, err := tr.Get(key(7))
		if err == nil && !bytes.Equal(v, valb(7)) {
			err = fmt.Errorf("wrong value %q", v)
		}
		done <- err
	}()
	// The reader must reach its pessimistic fallback and park on the root
	// latch; fallbacks is bumped before the latch acquire, so poll for it.
	for {
		if tr.Stats().OptReadFallbacks > 0 {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("Get finished before fallback was recorded: %v", err)
		default:
		}
	}
	tr.unlatchUnpin(root, latch.Exclusive, false)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.OptReadRestarts < uint64(3) {
		t.Fatalf("restarts = %d, want >= maxOptAttempts", s.OptReadRestarts)
	}
	var sawFallback bool
	for _, ev := range tr.TraceEvents() {
		if ev.Kind == obs.EvOptFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("no EvOptFallback trace event")
	}
}

// TestTraverseExhaustedCounter drives both paths into livelock with a
// directly poisoned root (dead flag set outside any SMO): the optimistic
// attempts burn their budget, fall back, and the pessimistic traversal
// exhausts its restart bound. The error, counter and trace event must all
// fire.
func TestTraverseExhaustedCounter(t *testing.T) {
	if !obs.Compiled {
		t.Skip("trace events compiled out (obsoff)")
	}
	tr := newTestTree(t, Options{Observability: &obs.Config{Trace: true}})
	if err := tr.Put(key(1), valb(1)); err != nil {
		t.Fatal(err)
	}
	rootID, _ := tr.readAnchor()
	root, err := tr.fetch(rootID)
	if err != nil {
		t.Fatal(err)
	}
	root.latch.Acquire(latch.Exclusive)
	root.dead = true
	tr.unlatchUnpin(root, latch.Exclusive, false)

	_, err = tr.Get(key(1))
	if err == nil || !strings.Contains(err.Error(), "live-locked") {
		t.Fatalf("Get on poisoned root: %v", err)
	}
	s := tr.Stats()
	if s.TraverseExhausted == 0 {
		t.Fatal("TraverseExhausted not counted")
	}
	if s.OptReadFallbacks == 0 {
		t.Fatal("optimistic attempts should have fallen back first")
	}
	var saw bool
	for _, ev := range tr.TraceEvents() {
		if ev.Kind == obs.EvTraverseExhausted {
			saw = true
		}
	}
	if !saw {
		t.Fatal("no EvTraverseExhausted trace event")
	}
}

// TestOptReadConcurrentRootShrink races optimistic readers against a purge
// that collapses the tree's height (root shrink SMOs run on workers), then
// re-grows it. Run under -race this exercises descent through dying index
// levels and stale anchor reads.
func TestOptReadConcurrentRootShrink(t *testing.T) {
	tr := newTestTree(t, Options{Workers: 2})
	const n = 4000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	if tr.Height() < 1 {
		t.Fatal("need index levels")
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key((i*13 + g) % n)
				if _, err := tr.Get(k); err != nil && !errors.Is(err, ErrKeyNotFound) {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	// Shrink: delete everything but one key, drive maintenance to collapse
	// levels, then rebuild — twice.
	for round := 0; round < 2; round++ {
		for i := 1; i < n; i++ {
			if err := tr.Delete(key(i)); err != nil && !errors.Is(err, ErrKeyNotFound) {
				t.Fatal(err)
			}
		}
		for r := 0; r < 10; r++ {
			tr.DrainTodo()
			tr.Has(key(0))
		}
		for i := 1; i < n; i++ {
			if err := tr.Put(key(i), valb(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	readers.Wait()
	mustVerify(t, tr)
}

// TestOptReadSideChainsUnderSplits runs readers over a tree whose index
// terms are never posted (no workers, no drains during the run), so every
// descent lands left of its target and walks split-sibling chains via side
// pointers — through route snapshots on index levels and latched side steps
// at the leaves.
func TestOptReadSideChainsUnderSplits(t *testing.T) {
	tr := newTestTree(t, Options{}) // WorkersNone via newTestTree
	const n = 1500
	for i := 0; i < 200; i++ {
		if err := tr.Put(key(i*7), valb(i*7)); err != nil {
			t.Fatal(err)
		}
	}
	tr.DrainTodo()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tr.Get(key((i*11 + g) % n)); err != nil && !errors.Is(err, ErrKeyNotFound) {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	// Writers split leaves constantly; postings stay queued, so side chains
	// grow until the drain below.
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if tr.Stats().SideTraversals == 0 {
		t.Fatal("no side traversals: test exercised nothing")
	}
	mustVerify(t, tr)
}

// TestOptReadUnderEvictionPressure reruns the read path with a cache far
// smaller than the tree, so descents race page loads and evictions, in both
// read-path modes.
func TestOptReadUnderEvictionPressure(t *testing.T) {
	for _, rp := range []ReadPath{ReadPathOptimistic, ReadPathPessimistic} {
		name := "optimistic"
		if rp == ReadPathPessimistic {
			name = "pessimistic"
		}
		t.Run(name, func(t *testing.T) {
			tr := newTestTree(t, Options{
				CacheSize: 64, Workers: 2, OptimisticReads: rp,
			})
			const n = 8000
			for i := 0; i < n; i++ {
				if err := tr.Put(key(i), valb(i)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 4000; i++ {
						if _, err := tr.Get(key((i*7 + g) % n)); err != nil {
							t.Errorf("Get: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestOptReadMixedEquivalence runs one deterministic workload against an
// optimistic and a pessimistic tree concurrently mutated the same way, then
// compares full contents.
func TestOptReadMixedEquivalence(t *testing.T) {
	run := func(rp ReadPath) map[string][]byte {
		tr := newTestTree(t, Options{Workers: 2, OptimisticReads: rp})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 3000; i++ {
					k := (i*4 + g) // disjoint per goroutine: deterministic final state
					switch {
					case i%5 == 4:
						tr.Delete(key(k))
					case i%3 == 0:
						tr.Get(key((i + g) % 6000))
					default:
						if err := tr.Put(key(k), valb(k)); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		mustVerify(t, tr)
		recs, err := tr.Records()
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	opt := run(ReadPathOptimistic)
	pes := run(ReadPathPessimistic)
	if len(opt) != len(pes) {
		t.Fatalf("record counts differ: optimistic %d, pessimistic %d", len(opt), len(pes))
	}
	for k, v := range pes {
		if !bytes.Equal(opt[k], v) {
			t.Fatalf("mismatch at %q", k)
		}
	}
}

// TestOptReadReverseAndCursor covers the optimistic descents used by
// reverse scans and cursors while writers churn.
func TestOptReadReverseAndCursor(t *testing.T) {
	tr := newTestTree(t, Options{Workers: 2})
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := key(n + i%2000)
			if i%2 == 0 {
				tr.Put(k, valb(i))
			} else {
				tr.Delete(k)
			}
		}
	}()
	for round := 0; round < 20; round++ {
		// Forward cursor over a slice of the stable keyspace.
		seen := 0
		err := tr.Scan(key(100), key(200), func(k, v []byte) bool {
			seen++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != 100 {
			t.Fatalf("forward scan saw %d of 100 stable keys", seen)
		}
		seen = 0
		err = tr.ScanReverse(key(100), key(200), func(k, v []byte) bool {
			seen++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != 100 {
			t.Fatalf("reverse scan saw %d of 100 stable keys", seen)
		}
	}
	close(stop)
	writers.Wait()
	mustVerify(t, tr)
}
