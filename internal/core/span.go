package core

// Span plumbing: the hot-path helpers that attribute a sampled operation's
// time to stages (buffer fetch vs page load, shared vs exclusive latch
// waits, WAL append, group-commit park/force). Every helper degrades to the
// plain uninstrumented call when the operation carries no span, so the
// unsampled path pays one predictable nil check per site.

import (
	"time"

	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// latchStage maps a latch mode onto its span stage: shared acquisitions are
// reader waits; update/exclusive acquisitions are writer-intent waits.
func latchStage(m latch.Mode) obs.SpanStage {
	if m == latch.Shared {
		return obs.StageLatchS
	}
	return obs.StageLatchX
}

// fetchSpan is fetch with stage attribution: hit time goes to buf-fetch,
// miss time (store read + decode) to page-load. Level is unknown here — the
// node cannot be inspected until latched — so intervals record level 0.
func (t *Tree) fetchSpan(id page.PageID, sp *obs.Span) (*node, error) {
	if sp == nil {
		return t.fetch(id)
	}
	t0 := time.Now()
	obj, miss, err := t.pool.FetchMiss(id)
	st := obs.StageBufFetch
	if miss {
		st = obs.StagePageLoad
	}
	sp.StageSince(st, 0, t0)
	if err != nil {
		return nil, err
	}
	return obj.(*node), nil
}

// pinLatchSpan is pinLatch with stage attribution: the fetch and the latch
// acquisition are timed into their own stages. The level on the latch
// interval is read under the latch, so it is exact.
func (t *Tree) pinLatchSpan(id page.PageID, m latch.Mode, sp *obs.Span) (*node, error) {
	if sp == nil {
		return t.pinLatch(id, m)
	}
	n, err := t.fetchSpan(id, sp)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	n.latch.Acquire(m)
	sp.StageSince(latchStage(m), n.level(), t0)
	return n, nil
}

// commitLSN acknowledges a commit record per the durability mode; with a
// span it uses the traced variant so group-commit park and force time land
// on the committing operation's span.
func (t *Tree) commitLSN(lsn wal.LSN, sp *obs.Span) error {
	if sp == nil {
		return t.log.Commit(lsn)
	}
	return t.log.CommitTraced(lsn, sp.StageCommit)
}

// Spans returns the sampled-span ring's contents, oldest first; nil when
// span sampling is disabled.
func (t *Tree) Spans() []obs.OpTrace { return t.obs.Spans() }

// SlowSpans returns the slow-op flight recorder's contents, oldest first;
// nil when span sampling is disabled.
func (t *Tree) SlowSpans() []obs.OpTrace { return t.obs.SlowSpans() }
