package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// newTestTree returns a small-page tree with manual to-do draining, so
// tests control exactly when lazy SMOs run.
func newTestTree(t testing.TB, opts Options) *Tree {
	t.Helper()
	if opts.PageSize == 0 {
		opts.PageSize = 512
	}
	if opts.Workers == 0 {
		opts.Workers = WorkersNone
	}
	tr, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func key(i int) []byte  { return []byte(fmt.Sprintf("key-%06d", i)) }
func valb(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

// mustVerify drains lazy SMOs and checks all invariants.
func mustVerify(t testing.TB, tr *Tree) {
	t.Helper()
	tr.DrainTodo()
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetSingle(t *testing.T) {
	tr := newTestTree(t, Options{})
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Fatalf("got %q", got)
	}
	mustVerify(t, tr)
}

func TestGetMissing(t *testing.T) {
	tr := newTestTree(t, Options{})
	if _, err := tr.Get([]byte("nope")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	ok, err := tr.Has([]byte("nope"))
	if err != nil || ok {
		t.Fatalf("Has missing = %v, %v", ok, err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := newTestTree(t, Options{})
	if err := tr.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Put empty key: %v", err)
	}
	if _, err := tr.Get(nil); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Get empty key: %v", err)
	}
	if err := tr.Delete([]byte{}); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Delete empty key: %v", err)
	}
}

func TestEntryTooLargeRejected(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	big := make([]byte, 600)
	if err := tr.Put([]byte("k"), big); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("oversized put: %v", err)
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := newTestTree(t, Options{})
	tr.Put([]byte("k"), []byte("v1"))
	tr.Put([]byte("k"), []byte("v2"))
	got, err := tr.Get([]byte("k"))
	if err != nil || string(got) != "v2" {
		t.Fatalf("got %q, %v", got, err)
	}
	n, err := tr.Len()
	if err != nil || n != 1 {
		t.Fatalf("len = %d, %v", n, err)
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t, Options{})
	tr.Put([]byte("k"), []byte("v"))
	if err := tr.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get([]byte("k")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := tr.Delete([]byte("k")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestManyInsertsCauseSplitsAndStayCorrect(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), valb(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s := tr.Stats(); s.Splits == 0 {
		t.Fatal("no splits after 2000 inserts into 512-byte pages")
	}
	// Every key must be findable even before the to-do queue runs
	// (B-link search correctness with unposted index terms).
	for i := 0; i < n; i += 37 {
		got, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("get %d before drain: %v", i, err)
		}
		if !bytes.Equal(got, valb(i)) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
	mustVerify(t, tr)
	if tr.Height() == 0 {
		t.Fatal("tree did not grow after draining lazy SMOs")
	}
	for i := 0; i < n; i++ {
		got, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("get %d after drain: %q, %v", i, got, err)
		}
	}
	if cnt, _ := tr.Len(); cnt != n {
		t.Fatalf("Len = %d, want %d", cnt, n)
	}
}

func TestReverseAndRandomInsertOrders(t *testing.T) {
	orders := map[string]func(n int) []int{
		"reverse": func(n int) []int {
			out := make([]int, n)
			for i := range out {
				out[i] = n - 1 - i
			}
			return out
		},
		"random": func(n int) []int {
			out := rand.New(rand.NewSource(7)).Perm(n)
			return out
		},
	}
	for name, gen := range orders {
		t.Run(name, func(t *testing.T) {
			tr := newTestTree(t, Options{PageSize: 512})
			const n = 1500
			for _, i := range gen(n) {
				if err := tr.Put(key(i), valb(i)); err != nil {
					t.Fatal(err)
				}
			}
			mustVerify(t, tr)
			for i := 0; i < n; i++ {
				if _, err := tr.Get(key(i)); err != nil {
					t.Fatalf("get %d: %v", i, err)
				}
			}
		})
	}
}

func TestDeletesTriggerConsolidation(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.4})
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	livBefore := tr.StoreStats().LivePages
	// Delete most records; consolidation should reclaim pages.
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			if err := tr.Delete(key(i)); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
	}
	mustVerify(t, tr)
	s := tr.Stats()
	if s.LeafConsolidated == 0 {
		t.Fatalf("no leaf consolidation happened: %+v", s)
	}
	livAfter := tr.StoreStats().LivePages
	if livAfter >= livBefore {
		t.Fatalf("live pages did not shrink: %d -> %d", livBefore, livAfter)
	}
	// Remaining records intact.
	for i := 0; i < n; i += 10 {
		got, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(got, valb(i)) {
			t.Fatalf("survivor %d: %q, %v", i, got, err)
		}
	}
	if cnt, _ := tr.Len(); cnt != n/10 {
		t.Fatalf("Len = %d, want %d", cnt, n/10)
	}
}

func TestDeleteEverythingShrinksTree(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.4})
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	if tr.Height() == 0 {
		t.Fatal("tree did not grow")
	}
	for i := 0; i < n; i++ {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	// Repeated drains let cascaded consolidations and shrinks run.
	for i := 0; i < 10; i++ {
		tr.DrainTodo()
		// Touch the tree so under-utilization is re-discovered.
		tr.Has(key(0))
	}
	mustVerify(t, tr)
	if cnt, _ := tr.Len(); cnt != 0 {
		t.Fatalf("Len = %d, want 0", cnt)
	}
	s := tr.Stats()
	if s.IndexConsolidated == 0 && s.Shrinks == 0 {
		t.Fatalf("no index consolidation or shrink after emptying: %+v", s)
	}
	if s.Shrinks > 0 && tr.DX() == 0 {
		t.Fatal("shrink happened but D_X unchanged")
	}
}

func TestIndexNodeDeleteBumpsDX(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.45})
	const n = 6000 // enough for height >= 2 so index nodes can consolidate
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	if tr.Height() < 2 {
		t.Skipf("height %d < 2; cannot exercise index consolidation", tr.Height())
	}
	for i := 0; i < n; i++ {
		tr.Delete(key(i))
	}
	for i := 0; i < 20; i++ {
		tr.DrainTodo()
		tr.Has(key(0))
	}
	mustVerify(t, tr)
	s := tr.Stats()
	if s.IndexConsolidated == 0 {
		t.Skipf("no index consolidation occurred (stats %+v)", s)
	}
	if tr.DX() == 0 {
		t.Fatal("index nodes consolidated but D_X never incremented")
	}
	// The paper's claim: index deletes are a small minority.
	if s.LeafConsolidated <= s.IndexConsolidated {
		t.Fatalf("leaf consolidations (%d) not dominant over index (%d)",
			s.LeafConsolidated, s.IndexConsolidated)
	}
}

func TestScanRange(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	const n = 500
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	var got []string
	err := tr.Scan(key(100), key(200), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("scan returned %d keys, want 100", len(got))
	}
	if got[0] != string(key(100)) || got[99] != string(key(199)) {
		t.Fatalf("scan bounds wrong: %s .. %s", got[0], got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order at %d", i)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTestTree(t, Options{})
	for i := 0; i < 50; i++ {
		tr.Put(key(i), valb(i))
	}
	count := 0
	tr.Scan(nil, nil, func(_, _ []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop at %d, want 10", count)
	}
}

func TestScanEmptyTree(t *testing.T) {
	tr := newTestTree(t, Options{})
	n, err := tr.Count(nil, nil)
	if err != nil || n != 0 {
		t.Fatalf("Count on empty = %d, %v", n, err)
	}
}

func TestCursorSurvivesConcurrentMutation(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.4})
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	cur := tr.NewCursor(nil, nil)
	seen := 0
	for {
		k, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen++
		// Mutate between fetches: delete keys behind the cursor, insert ahead.
		if seen%10 == 0 {
			var i int
			fmt.Sscanf(string(k), "key-%06d", &i)
			if i > 0 {
				tr.Delete(key(i - 1))
			}
			tr.Put([]byte(fmt.Sprintf("key-%06d-x", i)), []byte("new"))
			tr.DrainTodo()
		}
	}
	if seen < n {
		t.Fatalf("cursor saw %d of %d original keys", seen, n)
	}
	mustVerify(t, tr)
}

func TestCloseIdempotent(t *testing.T) {
	tr := newTestTree(t, Options{})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := tr.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
}

func TestLazyPostingRediscovery(t *testing.T) {
	// With no workers and no drains, index terms are never posted; search
	// must still find everything via side traversals, and a drain must
	// repair the index (posts re-discovered during traversals).
	tr := newTestTree(t, Options{PageSize: 512})
	const n = 800
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	s1 := tr.Stats()
	if s1.PostsDone != 0 {
		t.Fatalf("posts ran without workers or drain: %d", s1.PostsDone)
	}
	for i := 0; i < n; i++ {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatalf("get %d with unposted terms: %v", i, err)
		}
	}
	s2 := tr.Stats()
	if s2.SideTraversals == 0 {
		t.Fatal("no side traversals despite unposted index terms")
	}
	mustVerify(t, tr)
	// After the drain, lookups should not need side traversals.
	before := tr.Stats().SideTraversals
	for i := 0; i < n; i++ {
		tr.Get(key(i))
	}
	after := tr.Stats().SideTraversals
	if after != before {
		t.Fatalf("side traversals still happening after drain: %d -> %d", before, after)
	}
}

func TestNoDeleteSupportVariant(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, NoDeleteSupport: true})
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Put(key(i), valb(i))
	}
	for i := 0; i < n; i += 2 {
		tr.Delete(key(i)) // record deletes still work
	}
	mustVerify(t, tr)
	s := tr.Stats()
	if s.LeafConsolidated != 0 || s.DeletesEnqueued != 0 {
		t.Fatalf("node deletes ran in NoDeleteSupport mode: %+v", s)
	}
	for i := 1; i < n; i += 2 {
		if _, err := tr.Get(key(i)); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	tr := newTestTree(t, Options{})
	tr.Put([]byte("a"), []byte("1"))
	tr.Get([]byte("a"))
	tr.Delete([]byte("a"))
	s := tr.Stats()
	if s.Inserts != 1 || s.Searches != 1 || s.Deletes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDumpRuns(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	for i := 0; i < 300; i++ {
		tr.Put(key(i), valb(i))
	}
	mustVerify(t, tr)
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty dump")
	}
}
