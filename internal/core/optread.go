package core

import (
	"blinktree/internal/latch"
	"blinktree/internal/obs"
	"blinktree/internal/page"
)

// Optimistic (latch-free) read path.
//
// A read descends root→leaf taking no latches at all: each index node is
// read through its immutable routing snapshot (node.route, republished on
// every exclusive-latch release) and validated against the latch's version
// word. The protocol per index node is
//
//	v    ← latch.OptVersion()        (fails while an X holder exists)
//	r    ← route snapshot
//	        fence / level / dead checks on r; pick child or side pointer
//	pin the next node
//	ok   ← latch.Validate(v)         (no X ownership intervened)
//
// Pin-coupling replaces latch-coupling: the parent's pin is held until the
// child is pinned and the parent validated, so the child's page cannot be
// deallocated and reused in the window (reclaim refuses pinned frames, and
// a reloaded page gets a fresh node object). A child that is consolidated
// after validation keeps its dead flag forever on this object, and fences
// only ever tighten rightward — both are re-checked on arrival, exactly the
// recoverable situations Lomet's side pointers and delete states already
// handle for latched readers that run behind an SMO.
//
// Only the target leaf is latched (Shared), closing the race with in-place
// record updates; leaf-level side steps are latch-coupled as in traverse.
// Any validation failure restarts from the root; after maxOptAttempts
// failures the read falls back to the pessimistic traversal.

// maxOptAttempts bounds optimistic descent attempts before falling back to
// the latched traversal. Restarts are rare (an SMO must hit the read's
// exact path mid-descent), so a small budget loses nothing.
const maxOptAttempts = 3

// unpin drops a pin taken with fetch (no latch involved).
func (t *Tree) unpin(n *node) { t.pool.Unpin(n.id, false) }

// traverseRead is the entry point for Shared leaf traversals (Get,
// transactional point reads, cursor positioning): optimistic first, latched
// fallback. Non-read shapes go straight to traverse.
func (t *Tree) traverseRead(o traverseOpts) (*node, []pathEntry, error) {
	if t.optReads && o.intent == latch.Shared && o.level == 0 && !o.promote {
		for attempt := 0; attempt < maxOptAttempts; attempt++ {
			t.c.optAttempts.Add(1)
			o.sp.EnterPhase(obs.StageDescend)
			leaf, path, ok := t.traverseOpt(o)
			o.sp.ExitPhase()
			if ok {
				return leaf, path, nil
			}
			o.sp.Restart()
			t.c.optRestarts.Add(1)
		}
		o.sp.Fallback()
		t.c.optFallbacks.Add(1)
		t.traceOptFallback()
	}
	return t.traverse(o)
}

// routeView samples n's version word and routing snapshot for one
// optimistic step. ok is false when an exclusive holder is active or no
// snapshot exists (a leaf, or a node loaded before publication).
func (n *node) routeView() (*route, uint64, bool) {
	v, ok := n.latch.OptVersion()
	if !ok {
		return nil, 0, false
	}
	r := n.route.Load()
	if r == nil {
		return nil, 0, false
	}
	return r, v, true
}

// traverseOpt makes one optimistic descent attempt for o.key. ok=false
// means a validation failed and the caller should retry or fall back;
// on ok=true the covering leaf is returned pinned and Shared-latched with
// the remembered path, exactly like traverse.
func (t *Tree) traverseOpt(o traverseOpts) (*node, []pathEntry, bool) {
	rootID, rootLevel := t.readAnchor()
	n, err := t.fetchSpan(rootID, o.sp)
	if err != nil {
		return nil, nil, false // root shrunk away; retry from new anchor
	}
	var path []pathEntry
	level := rootLevel
	for level > 0 {
		r, v, ok := n.routeView()
		if !ok || r.dead || r.level != level {
			t.unpin(n)
			return nil, nil, false
		}
		if t.cmp(o.key, r.low) < 0 {
			// Mis-routed below the node's key space: unlike the latched
			// traversal this is reachable (the route that sent us here was
			// stale), and a restart recovers.
			t.unpin(n)
			return nil, nil, false
		}
		if r.high != nil && t.cmp(o.key, r.high) >= 0 {
			// Side traversal; reaching a node only via its side pointer
			// means its index term is missing (§2.3).
			if r.right == 0 {
				t.unpin(n)
				return nil, nil, false
			}
			t.enqueuePostFromRoute(n.id, r, path, o.dx)
			m, err := t.fetchSpan(r.right, o.sp)
			if err != nil || !n.latch.Validate(v) {
				if err == nil {
					t.unpin(m)
				}
				t.unpin(n)
				return nil, nil, false
			}
			t.unpin(n)
			n = m
			t.c.sideTraversals.Add(1)
			continue
		}
		ci := childIndex(t.cmp, r.keys, o.key)
		if ci < 0 || ci >= len(r.children) {
			t.unpin(n)
			return nil, nil, false
		}
		path = append(path, pathEntry{
			ref:   ref{id: n.id, epoch: r.epoch},
			level: r.level,
			dd:    r.dd,
		})
		t.maybeEnqueueDeleteFromRoute(n.id, r, path, o.dx)
		m, err := t.fetchSpan(r.children[ci], o.sp)
		if err != nil || !n.latch.Validate(v) {
			if err == nil {
				t.unpin(m)
			}
			t.unpin(n)
			return nil, nil, false
		}
		t.unpin(n)
		n = m
		level--
	}
	// Target level: the only latch of the whole descent. Everything decided
	// optimistically is re-verified under it.
	lt0 := o.sp.Now()
	n.latch.Acquire(latch.Shared)
	o.sp.StageSince(obs.StageLatchS, 0, lt0)
	if n.dead || !n.isLeaf() || t.cmp(o.key, n.c.Low) < 0 {
		t.unlatchUnpin(n, latch.Shared, false)
		return nil, nil, false
	}
	couple := !t.opts.NoDeleteSupport
	for n.pastHigh(t.cmp, o.key) {
		sib := n.c.Right
		if sib == 0 {
			t.unlatchUnpin(n, latch.Shared, false)
			return nil, nil, false
		}
		t.enqueuePostFromSideMove(n, path, o.dx)
		var m *node
		if couple {
			m, err = t.pinLatchSpan(sib, latch.Shared, o.sp)
			t.unlatchUnpin(n, latch.Shared, false)
		} else {
			t.unlatchUnpin(n, latch.Shared, false)
			m, err = t.pinLatchSpan(sib, latch.Shared, o.sp)
		}
		if err != nil || m.dead {
			if err == nil {
				t.unlatchUnpin(m, latch.Shared, false)
			}
			return nil, nil, false
		}
		n = m
		t.c.sideTraversals.Add(1)
	}
	return n, path, true
}

// enqueuePostFromRoute is enqueuePostFromSideMove for an optimistic side
// move: the snapshot carries the sibling's address and key space (the
// Pi-tree property), which is the complete index term to post. A stale
// snapshot enqueues a posting that the D_D/D_X verification in processPost
// will abandon — the same safety argument as every other lazy action.
func (t *Tree) enqueuePostFromRoute(id page.PageID, r *route, path []pathEntry, dx uint64) {
	if t.todo.postPending(id, r.right) {
		return
	}
	var parent ref
	var dd uint64
	if len(path) > 0 {
		top := path[len(path)-1]
		parent = top.ref
		dd = top.dd
	}
	a := action{
		kind:   actPost,
		level:  r.level,
		origID: id, origEpoch: r.epoch,
		newID:  r.right,
		sep:    append([]byte(nil), r.high...),
		parent: parent,
		dx:     dx,
		dd:     dd,
	}
	t.c.postsEnqueued.Add(1)
	t.todo.enqueue(a)
}

// maybeEnqueueDeleteFromRoute is maybeEnqueueDelete for an optimistic
// descent, working from the snapshot's size and child count. path already
// includes the node itself (appended just before the call), matching the
// latched traversal's calling convention.
func (t *Tree) maybeEnqueueDeleteFromRoute(id page.PageID, r *route, path []pathEntry, dx uint64) {
	if t.opts.NoDeleteSupport {
		return
	}
	isRoot := len(path) <= 1
	if isRoot {
		if len(r.children) == 1 && r.right == 0 {
			t.todo.enqueue(action{
				kind: actShrink, origID: id, origEpoch: r.epoch, level: r.level,
			})
		}
		return
	}
	if !t.underutilizedRaw(r.size, len(r.keys)) {
		return
	}
	parent := path[len(path)-2]
	t.c.deletesEnqueued.Add(1)
	t.todo.enqueue(action{
		kind:   actDelete,
		level:  r.level,
		origID: id, origEpoch: r.epoch,
		sep:    append([]byte(nil), r.low...),
		parent: parent.ref,
		dx:     dx,
	})
}

// reverse positioning --------------------------------------------------

// descendPredRead is the read-path entry for backward positioning:
// optimistic descents with the same restart budget and fallback as
// traverseRead, landing on descendPred when exhausted.
func (t *Tree) descendPredRead(bound []byte) (*node, func(), error) {
	if t.optReads {
		for attempt := 0; attempt < maxOptAttempts; attempt++ {
			t.c.optAttempts.Add(1)
			leaf, release, ok := t.descendPredOpt(bound)
			if ok {
				return leaf, release, nil
			}
			t.c.optRestarts.Add(1)
		}
		t.c.optFallbacks.Add(1)
		t.traceOptFallback()
	}
	return t.descendPred(bound)
}

// descendPredOpt makes one optimistic attempt at descendPred: descend to
// the leaf that may contain keys strictly below bound (nil = +inf) without
// latching, then Shared-latch it. ok=false restarts; leaf == nil with
// ok=true means no subtree lies below the bound (validated verdict).
func (t *Tree) descendPredOpt(bound []byte) (*node, func(), bool) {
	rootID, rootLevel := t.readAnchor()
	n, err := t.fetch(rootID)
	if err != nil {
		return nil, nil, false
	}
	level := rootLevel
	for level > 0 {
		r, v, ok := n.routeView()
		if !ok || r.dead || r.level != level {
			t.unpin(n)
			return nil, nil, false
		}
		// Move right while some sibling still has keys below bound (see
		// descendPred for the strictness argument).
		sib := page.PageID(0)
		if bound == nil && r.right != 0 {
			sib = r.right
		} else if bound != nil && r.high != nil && t.cmp(r.high, bound) < 0 {
			if r.right == 0 {
				t.unpin(n)
				return nil, nil, false
			}
			sib = r.right
		}
		if sib != 0 {
			m, err := t.fetch(sib)
			if err != nil || !n.latch.Validate(v) {
				if err == nil {
					t.unpin(m)
				}
				t.unpin(n)
				return nil, nil, false
			}
			t.unpin(n)
			n = m
			t.c.sideTraversals.Add(1)
			continue
		}
		// Choose the rightmost child with any key space below bound.
		ci := len(r.children) - 1
		if bound != nil {
			ci = lowerBound(t.cmp, r.keys, bound) - 1
			if ci < 0 {
				// Even keys[0] >= bound: nothing below bound here. The
				// verdict is only as current as the snapshot — validate
				// before trusting it.
				ok := n.latch.Validate(v)
				t.unpin(n)
				if !ok {
					return nil, nil, false
				}
				return nil, func() {}, true
			}
		}
		if ci >= len(r.children) {
			t.unpin(n)
			return nil, nil, false
		}
		m, err := t.fetch(r.children[ci])
		if err != nil || !n.latch.Validate(v) {
			if err == nil {
				t.unpin(m)
			}
			t.unpin(n)
			return nil, nil, false
		}
		t.unpin(n)
		n = m
		level--
	}
	n.latch.Acquire(latch.Shared)
	if n.dead || !n.isLeaf() {
		t.unlatchUnpin(n, latch.Shared, false)
		return nil, nil, false
	}
	// Re-run the rightward checks under real latches: the leaf may still
	// need side steps (splits since validation, or a stale landing).
	couple := !t.opts.NoDeleteSupport
	for bound == nil && n.c.Right != 0 {
		m, err := t.sideStep(n, couple)
		if err != nil {
			return nil, nil, false
		}
		n = m
	}
	for bound != nil && n.c.High != nil && t.cmp(n.c.High, bound) < 0 {
		m, err := t.sideStep(n, couple)
		if err != nil {
			return nil, nil, false
		}
		n = m
	}
	leaf := n
	return leaf, func() { t.unlatchUnpin(leaf, latch.Shared, false) }, true
}
