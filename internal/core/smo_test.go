package core

import (
	"bytes"
	"errors"
	"testing"

	"blinktree/internal/latch"
	"blinktree/internal/page"
)

// TestAccessParentFollowsParentSplit: the remembered parent splits before
// the posting runs; access parent must ride the parent's side pointer to
// the node now covering the separator (A.3 step 5).
func TestAccessParentFollowsParentSplit(t *testing.T) {
	tr := buildFigureTree(t)
	a := splitOneLeaf(t, tr)
	// Force the remembered parent to split by posting many other terms
	// into it: split more leaves in the same key region and post each.
	// (Bounded: once the parent splits, later leaves hang off its halves.)
	parentBefore, err := tr.NodeSnapshot(a.parent.id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		b := splitOneLeaf(t, tr)
		tr.processPost(b)
	}
	parentAfter, err := tr.NodeSnapshot(a.parent.id)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(parentBefore.High, parentAfter.High) {
		t.Logf("note: remembered parent did not split; rightward path not exercised")
	}
	// Whether or not the parent actually split, the original posting must
	// succeed or abort cleanly — never corrupt the tree.
	tr.processPost(a)
	mustVerify(t, tr)
	// The new node must be reachable without side traversal after drain.
	g, err := tr.NodeSnapshot(a.newID)
	if err == nil && len(g.Keys) > 0 {
		if _, err := tr.Get(g.Keys[0]); err != nil {
			t.Fatalf("key in new node lost: %v", err)
		}
	}
}

// TestPostDuplicateIsIdempotent: processing the same post twice (double
// re-discovery) must insert the term once.
func TestPostDuplicateIsIdempotent(t *testing.T) {
	tr := buildFigureTree(t)
	a := splitOneLeaf(t, tr)
	b := a // the same action, re-discovered
	tr.processPost(a)
	done := tr.Stats().PostsDone
	tr.processPost(b)
	if tr.Stats().PostsDone != done {
		t.Fatal("duplicate posting inserted a second term")
	}
	if tr.Stats().PostsDuplicate == 0 {
		t.Fatal("duplicate not recognized")
	}
	mustVerify(t, tr)
}

// TestRootGrowRace: two splits of the same root-level node both enqueue
// with parent hint 0; the first grows, the second must fall back to a
// traversal and still post.
func TestRootGrowRace(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	// Fill the single-leaf root until two splits have happened, capturing
	// both post actions unprocessed.
	var posts []action
	i := 0
	for len(posts) < 2 {
		if err := tr.Put(key(i), bytes.Repeat([]byte("v"), 40)); err != nil {
			t.Fatal(err)
		}
		i++
		for _, a := range takeQueuedActions(tr) {
			if a.kind == actPost {
				posts = append(posts, a)
			}
		}
	}
	if posts[0].parent.id != 0 || posts[1].parent.id != 0 {
		t.Fatalf("expected root-level posts, got parents %d %d",
			posts[0].parent.id, posts[1].parent.id)
	}
	tr.processPost(posts[0]) // grows a new root
	if tr.Height() != 1 {
		t.Fatalf("height after grow = %d", tr.Height())
	}
	tr.processPost(posts[1]) // must fall back to traversal
	mustVerify(t, tr)
	if tr.Stats().Grows != 1 {
		t.Fatalf("grows = %d, want 1", tr.Stats().Grows)
	}
}

// TestShrinkStaleActionIgnored: a shrink action for a node that is no
// longer the root is a no-op.
func TestShrinkStaleActionIgnored(t *testing.T) {
	tr := buildFigureTree(t)
	oldRoot := tr.RootID()
	shrinks := tr.Stats().Shrinks
	tr.processShrink(action{kind: actShrink, origID: oldRoot + 999, level: 1})
	tr.processShrink(action{kind: actShrink, origID: oldRoot, origEpoch: 12345, level: 1})
	if tr.Stats().Shrinks != shrinks {
		t.Fatal("stale shrink executed")
	}
	mustVerify(t, tr)
}

// TestDeleteActionStaleVictim: the victim was already consolidated (or its
// page recycled); the delete action must abort on the epoch/side checks.
func TestDeleteActionStaleVictim(t *testing.T) {
	tr := buildFigureTree(t)
	leaves, _ := tr.LevelNodes(0)
	victim, _ := tr.NodeSnapshot(leaves[2])
	pInfo := parentSnapshotOf(t, tr, victim.ID)
	a := action{
		kind: actDelete, level: 0,
		origID: victim.ID, origEpoch: victim.Epoch + 7, // wrong incarnation
		sep:    victim.Low,
		parent: ref{id: pInfo.ID, epoch: pInfo.Epoch},
		dx:     tr.DX(),
	}
	edge := tr.Stats().DeleteAbortEdge
	tr.processDelete(a)
	if tr.Stats().DeleteAbortEdge != edge+1 {
		t.Fatal("stale victim not detected")
	}
	mustVerify(t, tr)
}

// parentSnapshotOf finds the level-1 node holding the index term for leaf.
func parentSnapshotOf(t *testing.T, tr *Tree, leaf page.PageID) NodeInfo {
	t.Helper()
	parents, err := tr.LevelNodes(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pid := range parents {
		info, err := tr.NodeSnapshot(pid)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range info.Children {
			if c == leaf {
				return info
			}
		}
	}
	t.Fatalf("no parent holds an index term for leaf %d", leaf)
	return NodeInfo{}
}

// TestLeftmostChildNotConsolidated (A.5 step 2).
func TestLeftmostChildNotConsolidated(t *testing.T) {
	tr := buildFigureTree(t)
	parents, err := tr.LevelNodes(1)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := tr.NodeSnapshot(parents[0])
	leftmost := p.Children[0]
	li, _ := tr.NodeSnapshot(leftmost)
	a := action{
		kind: actDelete, level: 0,
		origID: leftmost, origEpoch: li.Epoch,
		sep:    li.Low,
		parent: ref{id: p.ID, epoch: p.Epoch},
		dx:     tr.DX(),
	}
	edge := tr.Stats().DeleteAbortEdge
	tr.processDelete(a)
	if tr.Stats().DeleteAbortEdge != edge+1 {
		t.Fatal("leftmost child consolidation not refused")
	}
	mustVerify(t, tr)
}

// TestSingleDeleteStateAblationCore: with the global-counter ablation, a
// leaf delete invalidates a pending posting even under a different parent.
func TestSingleDeleteStateAblationCore(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512, MinFill: 0.4, SingleDeleteState: true})
	for i := 0; i < 600; i++ {
		tr.Put(key(i), valb(i))
	}
	tr.DrainTodo()
	a := splitOneLeaf(t, tr)
	// A consolidation anywhere bumps the one global counter.
	for i := 400; i < 470; i++ {
		tr.Delete(key(i))
	}
	for _, act := range takeQueuedActions(tr) {
		if act.kind == actDelete {
			tr.processDelete(act)
		}
	}
	if tr.Stats().LeafConsolidated == 0 {
		t.Skip("no consolidation achieved")
	}
	aborts := tr.Stats().PostsAbortDX
	tr.processPost(a)
	if tr.Stats().PostsAbortDX != aborts+1 {
		t.Fatal("global-counter ablation did not abort the posting")
	}
	mustVerify(t, tr)
}

// TestRelatchDirect exercises the re-latch procedure in isolation.
func TestRelatchDirect(t *testing.T) {
	tr := buildFigureTree(t)
	dx := tr.DX()
	k := key(150)
	leaf, path, err := tr.traverse(traverseOpts{key: k, intent: latch.Shared, dx: dx})
	if err != nil {
		t.Fatal(err)
	}
	tr.unlatchUnpin(leaf, latch.Shared, false)

	// Ordinary re-latch succeeds and finds the same leaf.
	leaf2, _, err := tr.relatch(path, k, dx, latch.Shared, false)
	if err != nil {
		t.Fatal(err)
	}
	if !leaf2.covers(tr.cmp, k) {
		t.Fatal("re-latched leaf does not cover the key")
	}
	tr.unlatchUnpin(leaf2, latch.Shared, false)

	// D_X changed: re-latch must fail (transaction would abort).
	tr.dx.v.Add(1)
	if _, _, err := tr.relatch(path, k, dx, latch.Shared, false); !errors.Is(err, errDeleteState) {
		t.Fatalf("re-latch with stale D_X: %v", err)
	}
}

// TestRelatchAfterLeafSplit: the remembered leaf splits while unlatched;
// re-latch must land on the node now covering the key.
func TestRelatchAfterLeafSplit(t *testing.T) {
	tr := buildFigureTree(t)
	dx := tr.DX()
	k := key(150)
	leaf, path, err := tr.traverse(traverseOpts{key: k, intent: latch.Shared, dx: dx})
	if err != nil {
		t.Fatal(err)
	}
	tr.unlatchUnpin(leaf, latch.Shared, false)
	// Split the leaf by stuffing its range.
	for i := 0; i < 30; i++ {
		tr.Put([]byte(string(k)+string(rune('a'+i))), bytes.Repeat([]byte("x"), 30))
	}
	leaf2, _, err := tr.relatch(path, k, dx, latch.Update, true)
	if err != nil {
		t.Fatal(err)
	}
	if !leaf2.covers(tr.cmp, k) {
		t.Fatal("re-latch missed the split")
	}
	tr.unlatchUnpin(leaf2, latch.Exclusive, false)
	mustVerify(t, tr)
}

// TestUpdateValueOverflowSplits: replacing a small value with one that no
// longer fits must split and still land the update.
func TestUpdateValueOverflowSplits(t *testing.T) {
	tr := newTestTree(t, Options{PageSize: 512})
	for i := 0; i < 10; i++ {
		tr.Put(key(i), []byte("small"))
	}
	big := bytes.Repeat([]byte("B"), 150)
	splits := tr.Stats().Splits
	if err := tr.Put(key(5), big); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(key(6), big); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(key(7), big); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Splits == splits {
		t.Skip("no split triggered; page larger than expected")
	}
	got, err := tr.Get(key(5))
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("updated value lost: %v", err)
	}
	mustVerify(t, tr)
}
