package core

import (
	"fmt"

	"blinktree/internal/page"
	"blinktree/internal/wal"
)

// splitLocked performs the first half split of n (A.2), which must be held
// in Exclusive mode by the caller. The upper half of n's entries moves to a
// freshly allocated right sibling; n's side pointer and high fence are
// updated so the tree is immediately well-formed. The index-term posting
// (the second half split) is enqueued on the to-do queue.
//
// parent/dd are the remembered parent reference and its D_D from the
// caller's traversal path (zero parent = n was at root level). dx is the
// delete state remembered at operation start.
//
// The whole first half split is one atomic action: a single SMO log record
// carries both after-images and the allocation.
func (t *Tree) splitLocked(n *node, parent ref, dd uint64, dx uint64) error {
	nk := len(n.c.Keys)
	if nk < 2 {
		return fmt.Errorf("blinktree: splitting node %d with %d entries", n.id, nk)
	}
	mid := t.splitPoint(n)
	var sep []byte
	if n.isLeaf() && t.bytewise {
		// Suffix truncation: any separator s with lastLeft < s <= firstRight
		// partitions the halves correctly, so pick the shortest one. Short
		// separators shrink every index level above. Only valid under
		// bytewise ordering (a custom comparator need not order prefixes).
		sep = shortestSeparator(n.c.Keys[mid-1], n.c.Keys[mid])
	} else {
		// Index separators must stay exact: an index term's key must equal
		// its child's low fence.
		sep = append([]byte(nil), n.c.Keys[mid]...)
	}

	newC := page.Content{
		Kind:  n.c.Kind,
		Level: n.c.Level,
		Low:   sep,
		High:  n.c.High, // may be nil (+inf)
		Right: n.c.Right,
		// D_D is copied to the new half so delete-state values remembered
		// against the old parent remain comparable after rightward
		// traversal (monotone along the copy chain).
		DD: n.c.DD,
	}
	newC.Keys = append([][]byte(nil), n.c.Keys[mid:]...)
	if n.isLeaf() {
		newC.Vals = append([][]byte(nil), n.c.Vals[mid:]...)
	} else {
		newC.Children = append([]page.PageID(nil), n.c.Children[mid:]...)
	}

	right, err := t.allocNode(newC)
	if err != nil {
		return err
	}

	// Shrink the original in place and hook up the side pointer carrying
	// the new node's key space description (High of n == Low of new).
	n.c.Keys = n.c.Keys[:mid]
	if n.isLeaf() {
		n.c.Vals = n.c.Vals[:mid]
	} else {
		n.c.Children = n.c.Children[:mid]
	}
	n.c.High = sep
	n.c.Right = right.id

	if err := t.logSplit(n, right); err != nil {
		return err
	}
	// The new half becomes reachable (via n's side pointer) once the
	// caller's exclusive latch on n is released; its routing snapshot must
	// be in place by then. n's own snapshot is republished at that release.
	right.publishRoute()
	t.c.splits.Add(1)

	a := action{
		kind:   actPost,
		level:  n.level(),
		origID: n.id, origEpoch: n.c.Epoch,
		newID: right.id, newEpoch: right.c.Epoch,
		sep:    sep,
		parent: parent,
		dx:     dx,
		dd:     dd,
	}
	t.pool.Unpin(right.id, true)
	t.c.postsEnqueued.Add(1)
	t.todo.enqueue(a)
	return nil
}

// shortestSeparator returns the shortest byte string s with a < s <= b
// (callers guarantee a < b). It is the shortest prefix of b that still
// exceeds a.
func shortestSeparator(a, b []byte) []byte {
	for i := 0; i < len(b); i++ {
		if i >= len(a) || a[i] != b[i] {
			return append([]byte(nil), b[:i+1]...)
		}
	}
	// a is a prefix of b (a < b means len(a) < len(b)): all of b is needed.
	return append([]byte(nil), b...)
}

// splitPoint picks the split position that most evenly divides the node's
// serialized size, keeping at least one entry on each side.
//
// For index nodes the size-balanced position is only a starting point: an
// index separator must equal the new right half's low fence exactly (a
// truncated separator would misroute keys interior to the child left of the
// cut), so instead of shortening the separator itself the split slides the
// cut within a window of ±nk/8 entries around the balanced midpoint to the
// position whose existing key is shortest. The chosen key becomes both
// fences and the separator posted one level up, so a short pick shrinks
// every level above — the index-level analogue of leaf suffix truncation,
// and sound under any comparator because the separator is an existing key.
func (t *Tree) splitPoint(n *node) int {
	total := 0
	sizes := make([]int, len(n.c.Keys))
	for i, k := range n.c.Keys {
		var s int
		if n.isLeaf() {
			s = page.EntrySize(page.Leaf, len(k), len(n.c.Vals[i]))
		} else {
			s = page.EntrySize(page.Index, len(k), 0)
		}
		sizes[i] = s
		total += s
	}
	nk := len(n.c.Keys)
	mid := nk / 2
	half := total / 2
	acc := 0
	for i, s := range sizes {
		acc += s
		if acc >= half {
			mid = i + 1
			if mid >= nk {
				mid = nk - 1
			}
			break
		}
	}
	if n.isLeaf() {
		return mid
	}
	// Shortest-fence window selection for index nodes.
	w := nk / 8
	if w < 1 {
		w = 1
	}
	lo, hi := mid-w, mid+w
	if lo < 1 {
		lo = 1
	}
	if hi > nk-1 {
		hi = nk - 1
	}
	best := mid
	for i := lo; i <= hi; i++ {
		kl := len(n.c.Keys[i])
		bl := len(n.c.Keys[best])
		if kl < bl || (kl == bl && abs(i-mid) < abs(best-mid)) {
			best = i
		}
	}
	return best
}

// abs returns the absolute value of x.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// logSplit writes the single atomic SMO record for a half split and stamps
// both nodes with its LSN. With logging disabled it is a no-op.
func (t *Tree) logSplit(orig, right *node) error {
	if t.log == nil {
		return nil
	}
	_, err := t.log.AppendFunc(func(lsn wal.LSN) *wal.Record {
		orig.c.LSN = uint64(lsn)
		right.c.LSN = uint64(lsn)
		right.c.Epoch = uint64(lsn)
		oi, err := orig.Marshal(t.opts.PageSize)
		if err != nil {
			panic(fmt.Sprintf("blinktree: split image of %d: %v", orig.id, err))
		}
		ri, err := right.Marshal(t.opts.PageSize)
		if err != nil {
			panic(fmt.Sprintf("blinktree: split image of %d: %v", right.id, err))
		}
		return &wal.Record{
			Type: wal.TSMO,
			SMO:  wal.SMOSplit,
			Images: []wal.PageImage{
				{ID: orig.id, Data: oi},
				{ID: right.id, Data: ri},
			},
			Allocs: []page.PageID{right.id},
		}
	})
	return err
}

// mergedSize returns the serialized size of left after absorbing victim's
// entries, high fence and side pointer (A.5 step 4's fit check). It must be
// exact, not an estimate: with fence-key prefix compression the merge
// extends left's key space to victim's High, which can SHRINK the shared
// fence prefix and make every key on the page cost more bytes than before —
// an additive estimate would under-count and let Marshal overflow the page.
// Building the merged shape and asking Size() accounts for the new prefix.
func (t *Tree) mergedSize(left, victim *node) int {
	m := page.Content{
		Kind:     left.c.Kind,
		Low:      left.c.Low,
		High:     victim.c.High,
		Compress: left.c.Compress,
	}
	m.Keys = make([][]byte, 0, len(left.c.Keys)+len(victim.c.Keys))
	m.Keys = append(append(m.Keys, left.c.Keys...), victim.c.Keys...)
	if left.isLeaf() {
		m.Vals = make([][]byte, 0, len(left.c.Vals)+len(victim.c.Vals))
		m.Vals = append(append(m.Vals, left.c.Vals...), victim.c.Vals...)
	}
	return m.Size()
}
