package storage

import (
	"fmt"
	"sync"

	"blinktree/internal/page"
)

// MemStore is an in-memory Store. It recycles deallocated page IDs in LIFO
// order, which makes use-after-free bugs surface quickly in tests (a stale
// reference will usually observe an unrelated fresh page or an allocation
// failure rather than the old image).
type MemStore struct {
	mu       sync.Mutex
	pageSize int
	pages    map[page.PageID][]byte
	free     []page.PageID
	next     page.PageID
	closed   bool

	reads    uint64
	writes   uint64
	allocs   uint64
	deallocs uint64
}

// NewMemStore returns an empty in-memory store with the given page size.
func NewMemStore(pageSize int) *MemStore {
	return &MemStore{
		pageSize: pageSize,
		pages:    make(map[page.PageID][]byte),
		next:     1, // page 0 is the nil pointer
	}
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

// Allocate implements Store.
func (s *MemStore) Allocate() (page.PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return page.InvalidPage, ErrClosed
	}
	var id page.PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	s.pages[id] = make([]byte, s.pageSize)
	s.allocs++
	return id, nil
}

// AllocateBatch implements BatchAllocator: n fresh pages under one lock
// acquisition.
func (s *MemStore) AllocateBatch(n int) ([]page.PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	ids := make([]page.PageID, 0, n)
	for i := 0; i < n; i++ {
		var id page.PageID
		if f := len(s.free); f > 0 {
			id = s.free[f-1]
			s.free = s.free[:f-1]
		} else {
			id = s.next
			s.next++
		}
		s.pages[id] = make([]byte, s.pageSize)
		s.allocs++
		ids = append(ids, id)
	}
	return ids, nil
}

// EnsureAllocated implements Store.
func (s *MemStore) EnsureAllocated(id page.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.pages[id]; ok {
		return nil
	}
	// Remove id from the free list if it was recycled there.
	for i, f := range s.free {
		if f == id {
			s.free = append(s.free[:i], s.free[i+1:]...)
			break
		}
	}
	// Any page between the old frontier and id becomes free.
	for s.next <= id {
		if s.next != id {
			s.free = append(s.free, s.next)
		}
		s.next++
	}
	s.pages[id] = make([]byte, s.pageSize)
	s.allocs++
	return nil
}

// Deallocate implements Store.
func (s *MemStore) Deallocate(id page.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.pages[id]; !ok {
		return fmt.Errorf("%w: deallocate %d", ErrNotAllocated, id)
	}
	delete(s.pages, id)
	s.free = append(s.free, id)
	s.deallocs++
	return nil
}

// Read implements Store.
func (s *MemStore) Read(id page.PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	buf, ok := s.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: read %d", ErrNotAllocated, id)
	}
	s.reads++
	out := make([]byte, len(buf))
	copy(out, buf)
	return out, nil
}

// Write implements Store.
func (s *MemStore) Write(id page.PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("%w: got %d, want %d", ErrBadSize, len(buf), s.pageSize)
	}
	dst, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("%w: write %d", ErrNotAllocated, id)
	}
	copy(dst, buf)
	s.writes++
	return nil
}

// Allocated implements Store.
func (s *MemStore) Allocated(id page.PageID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pages[id]
	return ok
}

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Reads: s.reads, Writes: s.writes,
		Allocs: s.allocs, Deallocs: s.deallocs,
		LivePages: len(s.pages), HighestPage: s.next - 1,
	}
}

// Sync implements Store (no-op).
func (s *MemStore) Sync() error { return nil }

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.pages = nil
	s.free = nil
	return nil
}
