package storage

import (
	"errors"
	"sync/atomic"

	"blinktree/internal/page"
)

// ErrInjected is the error surfaced by a FaultyStore's injected failures.
var ErrInjected = errors.New("storage: injected fault")

// FaultyStore wraps a Store and injects failures on demand. It exists for
// fault-injection tests: the tree must surface clean errors — and remain
// structurally intact — when the storage layer misbehaves.
type FaultyStore struct {
	Inner Store

	failAllocs atomic.Int64 // fail the next N Allocate calls
	failWrites atomic.Bool  // fail all Write calls while set
	failReads  atomic.Bool  // fail all Read calls while set
}

// NewFaultyStore wraps inner.
func NewFaultyStore(inner Store) *FaultyStore { return &FaultyStore{Inner: inner} }

// FailNextAllocs makes the next n Allocate calls fail.
func (s *FaultyStore) FailNextAllocs(n int) { s.failAllocs.Store(int64(n)) }

// SetFailWrites toggles Write failures.
func (s *FaultyStore) SetFailWrites(v bool) { s.failWrites.Store(v) }

// SetFailReads toggles Read failures.
func (s *FaultyStore) SetFailReads(v bool) { s.failReads.Store(v) }

// PageSize implements Store.
func (s *FaultyStore) PageSize() int { return s.Inner.PageSize() }

// Allocate implements Store.
func (s *FaultyStore) Allocate() (page.PageID, error) {
	if s.failAllocs.Add(-1) >= 0 {
		return page.InvalidPage, ErrInjected
	}
	return s.Inner.Allocate()
}

// Deallocate implements Store.
func (s *FaultyStore) Deallocate(id page.PageID) error { return s.Inner.Deallocate(id) }

// EnsureAllocated implements Store.
func (s *FaultyStore) EnsureAllocated(id page.PageID) error { return s.Inner.EnsureAllocated(id) }

// Read implements Store.
func (s *FaultyStore) Read(id page.PageID) ([]byte, error) {
	if s.failReads.Load() {
		return nil, ErrInjected
	}
	return s.Inner.Read(id)
}

// Write implements Store.
func (s *FaultyStore) Write(id page.PageID, buf []byte) error {
	if s.failWrites.Load() {
		return ErrInjected
	}
	return s.Inner.Write(id, buf)
}

// Allocated implements Store.
func (s *FaultyStore) Allocated(id page.PageID) bool { return s.Inner.Allocated(id) }

// Stats implements Store.
func (s *FaultyStore) Stats() Stats { return s.Inner.Stats() }

// Sync implements Store.
func (s *FaultyStore) Sync() error { return s.Inner.Sync() }

// Close implements Store.
func (s *FaultyStore) Close() error { return s.Inner.Close() }
