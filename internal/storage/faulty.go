package storage

import (
	"errors"

	"blinktree/internal/page"
)

// ErrInjected is the error surfaced by injected failures (see Injector).
var ErrInjected = errors.New("storage: injected fault")

// FaultyStore wraps a Store and injects failures on demand through the
// embedded Injector — the same injection surface SimStore uses, so
// error-injection tests and crash-simulation tests are configured
// identically. It exists for fault-injection tests: the tree must surface
// clean errors — and remain structurally intact — when the storage layer
// misbehaves.
//
// An injected failure is reported before the inner store is touched, so the
// inner store's durable state is unchanged by the failed call.
type FaultyStore struct {
	Injector

	// Inner is the wrapped store; all successful calls pass through to it.
	Inner Store
}

// NewFaultyStore wraps inner with an inactive Injector.
func NewFaultyStore(inner Store) *FaultyStore { return &FaultyStore{Inner: inner} }

// PageSize implements Store.
func (s *FaultyStore) PageSize() int { return s.Inner.PageSize() }

// Allocate implements Store.
func (s *FaultyStore) Allocate() (page.PageID, error) {
	if err := s.allocErr(); err != nil {
		return page.InvalidPage, err
	}
	return s.Inner.Allocate()
}

// Deallocate implements Store.
func (s *FaultyStore) Deallocate(id page.PageID) error { return s.Inner.Deallocate(id) }

// EnsureAllocated implements Store.
func (s *FaultyStore) EnsureAllocated(id page.PageID) error { return s.Inner.EnsureAllocated(id) }

// Read implements Store.
func (s *FaultyStore) Read(id page.PageID) ([]byte, error) {
	if err := s.readErr(); err != nil {
		return nil, err
	}
	return s.Inner.Read(id)
}

// Write implements Store.
func (s *FaultyStore) Write(id page.PageID, buf []byte) error {
	if err := s.writeErr(); err != nil {
		return err
	}
	return s.Inner.Write(id, buf)
}

// Allocated implements Store.
func (s *FaultyStore) Allocated(id page.PageID) bool { return s.Inner.Allocated(id) }

// Stats implements Store.
func (s *FaultyStore) Stats() Stats { return s.Inner.Stats() }

// Sync implements Store.
func (s *FaultyStore) Sync() error {
	if err := s.syncErr(); err != nil {
		return err
	}
	return s.Inner.Sync()
}

// Close implements Store.
func (s *FaultyStore) Close() error { return s.Inner.Close() }
