// Package storage provides page stores: flat collections of fixed-size page
// images addressed by page ID, with allocation and deallocation.
//
// Two implementations are provided. MemStore keeps pages in memory and is
// the substrate for concurrency experiments (the paper's algorithms are
// about latching, not I/O). FileStore persists pages to a single file and
// backs the durable configurations exercised by the recovery experiments.
//
// Node deallocation matters here because the paper's whole topic is node
// delete: a deallocated page may be reused by a later allocation, and the
// tree must guarantee (via delete state and latch coupling) that no stale
// reference is ever dereferenced. The stores detect use-after-free in tests
// by failing reads of unallocated pages.
package storage

import (
	"errors"
	"fmt"

	"blinktree/internal/page"
)

// Errors returned by stores.
var (
	// ErrNotAllocated is returned when reading or writing a page that is
	// not currently allocated: a use-after-free in the tree.
	ErrNotAllocated = errors.New("storage: page not allocated")
	// ErrBadSize is returned when writing a buffer that is not exactly one
	// page long.
	ErrBadSize = errors.New("storage: buffer size != page size")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("storage: store closed")
)

// Store persists fixed-size page images by page ID.
//
// Implementations must be safe for concurrent use.
type Store interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Allocate reserves a fresh page and returns its ID. IDs may be
	// recycled from deallocated pages.
	Allocate() (page.PageID, error)
	// Deallocate releases a page for reuse.
	Deallocate(id page.PageID) error
	// EnsureAllocated makes a specific page ID allocated, advancing the
	// allocation frontier past it if needed. Recovery uses it to replay
	// logged allocations at their original IDs; it is idempotent.
	EnsureAllocated(id page.PageID) error
	// Read returns a copy of the page image.
	Read(id page.PageID) ([]byte, error)
	// Write replaces the page image. len(buf) must equal PageSize.
	Write(id page.PageID, buf []byte) error
	// Allocated reports whether id is currently allocated.
	Allocated(id page.PageID) bool
	// Stats returns cumulative operation counts.
	Stats() Stats
	// Sync makes previous writes durable (no-op for MemStore).
	Sync() error
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// BatchAllocator is an optional Store capability: reserving a run of fresh
// pages under one lock acquisition. Bulk load leases each builder goroutine
// its own page-ID batch up front so the workers never contend on the
// allocator — the shared-lock hot spot a page-at-a-time load would hit.
type BatchAllocator interface {
	// AllocateBatch reserves n fresh pages and returns their IDs.
	AllocateBatch(n int) ([]page.PageID, error)
}

// AllocateBatch reserves n pages from s, using its BatchAllocator fast path
// when present and falling back to n single allocations otherwise (wrappers
// like the fault-injecting store keep their per-call semantics that way).
// On a partial failure the pages already reserved are released.
func AllocateBatch(s Store, n int) ([]page.PageID, error) {
	if ba, ok := s.(BatchAllocator); ok {
		return ba.AllocateBatch(n)
	}
	ids := make([]page.PageID, 0, n)
	for i := 0; i < n; i++ {
		id, err := s.Allocate()
		if err != nil {
			for _, got := range ids {
				_ = s.Deallocate(got)
			}
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Stats counts store operations.
type Stats struct {
	Reads       uint64
	Writes      uint64
	Allocs      uint64
	Deallocs    uint64
	LivePages   int // currently allocated
	HighestPage page.PageID
}

// String renders the counters on one line for logs and test output.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d deallocs=%d live=%d highest=%d",
		s.Reads, s.Writes, s.Allocs, s.Deallocs, s.LivePages, s.HighestPage)
}
