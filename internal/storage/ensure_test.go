package storage

import (
	"bytes"
	"path/filepath"
	"testing"

	"blinktree/internal/page"
)

func TestEnsureAllocated(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if s.PageSize() != 256 {
				t.Fatalf("PageSize = %d", s.PageSize())
			}
			// Ensure a page far past the frontier: intermediate IDs become
			// free, the target is allocated and zeroed.
			if err := s.EnsureAllocated(5); err != nil {
				t.Fatal(err)
			}
			if !s.Allocated(5) {
				t.Fatal("page 5 not allocated")
			}
			buf, err := s.Read(5)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, make([]byte, 256)) {
				t.Fatal("ensured page not zeroed")
			}
			// Idempotent: ensuring again must not clobber contents.
			payload := bytes.Repeat([]byte{7}, 256)
			if err := s.Write(5, payload); err != nil {
				t.Fatal(err)
			}
			if err := s.EnsureAllocated(5); err != nil {
				t.Fatal(err)
			}
			got, _ := s.Read(5)
			if !bytes.Equal(got, payload) {
				t.Fatal("EnsureAllocated clobbered an allocated page")
			}
			// The skipped IDs (1..4) are reusable by Allocate.
			seen := map[page.PageID]bool{}
			for i := 0; i < 4; i++ {
				id, err := s.Allocate()
				if err != nil {
					t.Fatal(err)
				}
				if id >= 5 {
					t.Fatalf("Allocate returned %d before recycling the gap", id)
				}
				if seen[id] {
					t.Fatalf("duplicate id %d", id)
				}
				seen[id] = true
			}
			// Ensure an ID that sits on the free list: it must come off it.
			if err := s.Deallocate(2); err != nil {
				t.Fatal(err)
			}
			if err := s.EnsureAllocated(2); err != nil {
				t.Fatal(err)
			}
			if !s.Allocated(2) {
				t.Fatal("freed page not re-ensured")
			}
			// Sync succeeds on a healthy store.
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFileStoreEnsurePersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	s, err := OpenFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureAllocated(9); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, 256)
	s.Write(9, payload)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Allocated(9) {
		t.Fatal("ensured page lost across reopen")
	}
	got, err := s2.Read(9)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("contents lost: %v", err)
	}
}
