package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"blinktree/internal/page"
)

// ErrPowerCut is returned by every operation on a SimDisk facade once the
// simulated power cut has fired, and by the operation the cut interrupts.
// The interrupted operation has no durable effect.
var ErrPowerCut = errors.New("storage: simulated power cut")

// SimConfig configures a SimDisk.
type SimConfig struct {
	// Seed drives every random decision (write survival, tearing), making
	// each crash run reproducible.
	Seed int64

	// CrashAt is the 1-based persistence-operation index at which the power
	// cut fires: operations 1..CrashAt-1 take effect normally, operation
	// CrashAt and everything after it fail with ErrPowerCut. Counted
	// operations are page-store Allocate/Deallocate/Write/Sync and WAL
	// Append/Sync. Zero never cuts power (use CrashNow, or a counting run).
	CrashAt int64

	// SectorSize is the granularity of torn page writes (default 512): at a
	// power cut, a page write caught in flight may land as a per-sector mix
	// of the old and new images.
	SectorSize int

	// TornPageWrites enables torn (partial, sector-granular) page writes at
	// the power cut. The resulting page fails its checksum; recovery must
	// detect and repair it from the log.
	TornPageWrites bool

	// TornWALTail enables a torn final WAL frame at the power cut: a prefix
	// of the first lost frame's bytes survives as trailing garbage that a
	// log reader must recognize as the end of the log.
	TornWALTail bool
}

// SimDisk is a deterministic simulation of a crash-prone storage device
// beneath a durable tree: one simulated medium holding both the page file
// (SimStore, a storage.Store) and the write-ahead log (SimWAL, a
// wal.Device), sharing a persistence-operation counter so a power cut can
// be scheduled at any exact operation boundary.
//
// The crash model is the adversarial union of what real hardware does:
//
//   - Synced state is durable: page writes covered by a store Sync and WAL
//     frames covered by a WAL Sync always survive.
//   - Unsynced WAL frames survive as a random prefix of the append order
//     (a log file's frame chain breaks at the first hole), optionally
//     followed by a torn half-written frame.
//   - Unsynced page writes survive per page as a random prefix of that
//     page's write order — writes to different pages reach the platter in
//     any order — optionally with the first lost write torn mid-sector-run.
//   - Allocator metadata (the page file header) reverts to the last store
//     Sync; bytes written to pages the durable header never knew are lost.
//
// After CrashNow or the scheduled cut, every facade operation returns
// ErrPowerCut until Reboot resolves the surviving state; the facades then
// serve the post-crash disk with fault injection disarmed, so the same
// SimStore/SimWAL pair can be handed to a recovering tree.
type SimDisk struct {
	mu  sync.Mutex
	cfg SimConfig
	rng *rand.Rand

	ops     int64
	crashed bool
	armed   bool

	store *SimStore
	wal   *SimWAL

	tornPages     int
	droppedFrames int
	tornTail      bool
	tornTailBytes int64
}

// NewSimDisk creates a simulated disk with an empty page file and WAL.
func NewSimDisk(pageSize int, cfg SimConfig) *SimDisk {
	if cfg.SectorSize <= 0 {
		cfg.SectorSize = 512
	}
	d := &SimDisk{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		armed: cfg.CrashAt > 0,
	}
	d.store = &SimStore{
		d:        d,
		pageSize: pageSize,
		cur:      newDiskImage(),
		dur:      newDiskImage(),
		pending:  make(map[page.PageID][][]byte),
	}
	d.wal = &SimWAL{d: d}
	return d
}

// Store returns the page-store facade (a storage.Store).
func (d *SimDisk) Store() *SimStore { return d.store }

// WAL returns the log-device facade (a wal.Device).
func (d *SimDisk) WAL() *SimWAL { return d.wal }

// Ops returns the number of persistence operations counted so far. A
// counting run (CrashAt zero) uses it to enumerate crash points.
func (d *SimDisk) Ops() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Crashed reports whether the power cut has fired and Reboot has not yet
// run.
func (d *SimDisk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// CrashNow cuts power immediately, regardless of CrashAt.
func (d *SimDisk) CrashNow() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashLocked()
}

// TornPages returns how many page images were left torn (checksum-invalid)
// by the crash lottery.
func (d *SimDisk) TornPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tornPages
}

// DroppedFrames returns how many unsynced WAL frames the crash discarded.
func (d *SimDisk) DroppedFrames() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.droppedFrames
}

// Reboot resolves the durable post-crash state and brings the facades back
// up over it with fault injection disarmed: ErrPowerCut stops, CrashAt no
// longer fires, and a recovering tree can be opened over Store() and WAL().
// If power was never cut, Reboot cuts it first (a reboot without a clean
// shutdown is a power cut).
func (d *SimDisk) Reboot() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashLocked()
	d.crashed = false
	d.armed = false
	d.store.cur = d.store.dur.clone()
}

// opLocked counts one persistence operation, firing the scheduled power cut
// when the counter reaches CrashAt. The caller holds d.mu; on error the
// operation must have no effect.
func (d *SimDisk) opLocked() error {
	if d.crashed {
		return ErrPowerCut
	}
	d.ops++
	if d.armed && d.ops >= d.cfg.CrashAt {
		d.crashLocked()
		return ErrPowerCut
	}
	return nil
}

// crashLocked runs the crash lottery, resolving which unsynced state
// survives on the durable medium. Idempotent; caller holds d.mu.
func (d *SimDisk) crashLocked() {
	if d.crashed {
		return
	}
	d.crashed = true

	// Page file: each page's unsynced writes survive as an independent
	// random prefix; optionally the first lost write lands torn. Bytes
	// written to pages the durable allocator never recorded are ghost
	// writes: invisible after reboot (the header says the page is free, and
	// reallocation zero-fills it), so they are simply dropped.
	s := d.store
	ids := make([]page.PageID, 0, len(s.pending))
	for id := range s.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		q := s.pending[id]
		base, ok := s.dur.pages[id]
		if !ok {
			continue
		}
		keep := d.rng.Intn(len(q) + 1)
		img := base
		if keep > 0 {
			img = q[keep-1]
		}
		if d.cfg.TornPageWrites && keep < len(q) && d.rng.Intn(2) == 0 {
			img = tornMix(d.rng, d.cfg.SectorSize, img, q[keep])
			d.tornPages++
		}
		s.dur.pages[id] = append([]byte(nil), img...)
	}
	s.pending = make(map[page.PageID][][]byte)

	// WAL: a random prefix of the unsynced frames survives; optionally the
	// next frame survives torn — trailing garbage a reader must stop at,
	// recorded here but never returned by ReadDurable (mirroring how
	// FileDevice stops at the first bad frame).
	w := d.wal
	keep := d.rng.Intn(len(w.buffered) + 1)
	w.durable = append(w.durable, w.buffered[:keep]...)
	if d.cfg.TornWALTail && keep < len(w.buffered) && d.rng.Intn(2) == 0 {
		if n := len(w.buffered[keep]); n > 1 {
			d.tornTail = true
			d.tornTailBytes = int64(1 + d.rng.Intn(n-1))
		}
	}
	d.droppedFrames += len(w.buffered) - keep
	w.buffered = nil
}

// tornMix builds a torn page image: a per-sector mix of the old and new
// images, as left by a multi-sector write interrupted mid-flight.
func tornMix(rng *rand.Rand, sector int, old, new []byte) []byte {
	out := append([]byte(nil), old...)
	for off := 0; off < len(out); off += sector {
		end := off + sector
		if end > len(out) {
			end = len(out)
		}
		if rng.Intn(2) == 0 {
			copy(out[off:end], new[off:end])
		}
	}
	return out
}

// diskImage is one complete durable state of the simulated page file: page
// contents plus the allocator header (free list and frontier) a real
// pages.db persists on Sync.
type diskImage struct {
	pages map[page.PageID][]byte
	free  []page.PageID
	next  page.PageID
}

func newDiskImage() *diskImage {
	return &diskImage{pages: make(map[page.PageID][]byte), next: 1}
}

func (im *diskImage) clone() *diskImage {
	out := &diskImage{
		pages: make(map[page.PageID][]byte, len(im.pages)),
		free:  append([]page.PageID(nil), im.free...),
		next:  im.next,
	}
	for id, buf := range im.pages {
		out.pages[id] = append([]byte(nil), buf...)
	}
	return out
}

// SimStore is the page-store facade of a SimDisk: a storage.Store whose
// writes and allocator changes are durable only once covered by Sync, and
// whose unsynced state is subject to the SimDisk crash lottery. The
// embedded Injector adds toggle-style error injection on top (shared with
// FaultyStore).
//
// Unlike FileStore, Close is a no-op: the simulated medium outlives any one
// tree so the harness can reopen a recovering tree over the same disk.
type SimStore struct {
	Injector

	d        *SimDisk
	pageSize int

	// cur is the volatile view (what in-flight software observes); dur is
	// the durable medium as of the last Sync, updated by the crash lottery.
	cur *diskImage
	dur *diskImage

	// pending journals unsynced content writes per page, in write order,
	// for the crash lottery.
	pending map[page.PageID][][]byte

	reads, writes, allocs, deallocs uint64
}

// PageSize implements Store.
func (s *SimStore) PageSize() int { return s.pageSize }

// Allocate implements Store. The allocation is durable only after Sync.
func (s *SimStore) Allocate() (page.PageID, error) {
	if err := s.allocErr(); err != nil {
		return page.InvalidPage, err
	}
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if err := s.d.opLocked(); err != nil {
		return page.InvalidPage, err
	}
	var id page.PageID
	if n := len(s.cur.free); n > 0 {
		id = s.cur.free[n-1]
		s.cur.free = s.cur.free[:n-1]
	} else {
		id = s.cur.next
		s.cur.next++
	}
	s.cur.pages[id] = make([]byte, s.pageSize)
	s.allocs++
	return id, nil
}

// EnsureAllocated implements Store: it makes id allocated (zero-filled when
// fresh, like FileStore) and is idempotent. Not counted as a persistence
// operation — recovery replays allocations through it after Reboot.
func (s *SimStore) EnsureAllocated(id page.PageID) error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if s.d.crashed {
		return ErrPowerCut
	}
	if _, ok := s.cur.pages[id]; ok {
		return nil
	}
	for i, f := range s.cur.free {
		if f == id {
			s.cur.free = append(s.cur.free[:i], s.cur.free[i+1:]...)
			break
		}
	}
	for s.cur.next <= id {
		if s.cur.next != id {
			s.cur.free = append(s.cur.free, s.cur.next)
		}
		s.cur.next++
	}
	s.cur.pages[id] = make([]byte, s.pageSize)
	s.allocs++
	return nil
}

// Deallocate implements Store. The deallocation is durable only after Sync.
func (s *SimStore) Deallocate(id page.PageID) error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if err := s.d.opLocked(); err != nil {
		return err
	}
	if _, ok := s.cur.pages[id]; !ok {
		return fmt.Errorf("%w: deallocate %d", ErrNotAllocated, id)
	}
	delete(s.cur.pages, id)
	s.cur.free = append(s.cur.free, id)
	s.deallocs++
	return nil
}

// Read implements Store. Reads observe the volatile view (the OS page
// cache serves unsynced writes back to the writer).
func (s *SimStore) Read(id page.PageID) ([]byte, error) {
	if err := s.readErr(); err != nil {
		return nil, err
	}
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if s.d.crashed {
		return nil, ErrPowerCut
	}
	buf, ok := s.cur.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: read %d", ErrNotAllocated, id)
	}
	s.reads++
	out := make([]byte, len(buf))
	copy(out, buf)
	return out, nil
}

// Write implements Store. The write is durable only once covered by Sync;
// until then it may be lost — or torn — at a power cut.
func (s *SimStore) Write(id page.PageID, buf []byte) error {
	if err := s.writeErr(); err != nil {
		return err
	}
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if err := s.d.opLocked(); err != nil {
		return err
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("%w: got %d, want %d", ErrBadSize, len(buf), s.pageSize)
	}
	if _, ok := s.cur.pages[id]; !ok {
		return fmt.Errorf("%w: write %d", ErrNotAllocated, id)
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	s.cur.pages[id] = cp
	s.pending[id] = append(s.pending[id], cp)
	s.writes++
	return nil
}

// Allocated implements Store (volatile view).
func (s *SimStore) Allocated(id page.PageID) bool {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	_, ok := s.cur.pages[id]
	return ok
}

// Stats implements Store (volatile view).
func (s *SimStore) Stats() Stats {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	return Stats{
		Reads: s.reads, Writes: s.writes,
		Allocs: s.allocs, Deallocs: s.deallocs,
		LivePages: len(s.cur.pages), HighestPage: s.cur.next - 1,
	}
}

// Sync implements Store: every prior write and allocator change becomes
// durable (immune to the crash lottery).
func (s *SimStore) Sync() error {
	if err := s.syncErr(); err != nil {
		return err
	}
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if err := s.d.opLocked(); err != nil {
		return err
	}
	s.dur = s.cur.clone()
	s.pending = make(map[page.PageID][][]byte)
	return nil
}

// Close implements Store as a no-op: the simulated medium persists across
// tree lifetimes so crash harnesses can reopen over it.
func (s *SimStore) Close() error { return nil }

// SimWAL is the log-device facade of a SimDisk. It implements wal.Device:
// appended frames are durable only once covered by Sync; at a power cut a
// random prefix of the unsynced frames survives (a log file's frame chain
// breaks at its first hole), optionally followed by a torn frame that
// ReadDurable treats as the end of the log.
type SimWAL struct {
	d        *SimDisk
	durable  [][]byte
	buffered [][]byte
	syncs    uint64
}

// Append implements wal.Device. The frame is durable only after Sync.
func (w *SimWAL) Append(frame []byte) error {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	if err := w.d.opLocked(); err != nil {
		return err
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	w.buffered = append(w.buffered, cp)
	return nil
}

// Sync implements wal.Device: all appended frames become durable.
func (w *SimWAL) Sync() error {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	if err := w.d.opLocked(); err != nil {
		return err
	}
	w.durable = append(w.durable, w.buffered...)
	w.buffered = nil
	w.syncs++
	return nil
}

// ReadDurable implements wal.Device: every durable frame in append order —
// a clean prefix of the appended frames. A torn tail left by the crash is
// not returned (the reader stops at it); TailTorn reports it.
func (w *SimWAL) ReadDurable() ([][]byte, error) {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	if w.d.crashed {
		return nil, ErrPowerCut
	}
	out := make([][]byte, len(w.durable))
	copy(out, w.durable)
	return out, nil
}

// TailTorn reports whether the last crash left a torn frame past the valid
// log tail, and how many garbage bytes it holds. It has the same shape as
// (*wal.FileDevice).TailTorn so wal.Log surfaces either transparently.
func (w *SimWAL) TailTorn() (bool, int64) {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	return w.d.tornTail, w.d.tornTailBytes
}

// Syncs returns how many times Sync has completed.
func (w *SimWAL) Syncs() uint64 {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	return w.syncs
}

// Close implements wal.Device as a no-op (see SimStore.Close).
func (w *SimWAL) Close() error { return nil }
