package storage

import "sync/atomic"

// Injector is the storage layer's single fault-injection surface. It is
// embedded by FaultyStore (toggle-style error injection against any inner
// Store) and by SimStore (the crash-simulation store), so injected-error
// tests and crash tests configure failures through one API instead of
// per-wrapper toggles.
//
// All methods are safe for concurrent use; the zero value injects nothing.
// Injected failures are clean errors (ErrInjected) reported before the
// underlying operation runs: the store's durable state is never changed by
// a failed call.
type Injector struct {
	failAllocs atomic.Int64 // fail the next N Allocate calls
	failWrites atomic.Bool  // fail all Write calls while set
	failReads  atomic.Bool  // fail all Read calls while set
	failSyncs  atomic.Bool  // fail all Sync calls while set
}

// FailNextAllocs makes the next n Allocate calls fail with ErrInjected.
func (i *Injector) FailNextAllocs(n int) { i.failAllocs.Store(int64(n)) }

// SetFailWrites toggles Write failures (ErrInjected while set).
func (i *Injector) SetFailWrites(v bool) { i.failWrites.Store(v) }

// SetFailReads toggles Read failures (ErrInjected while set).
func (i *Injector) SetFailReads(v bool) { i.failReads.Store(v) }

// SetFailSyncs toggles Sync failures (ErrInjected while set).
func (i *Injector) SetFailSyncs(v bool) { i.failSyncs.Store(v) }

// allocErr consumes one scheduled Allocate failure, if any.
func (i *Injector) allocErr() error {
	if i.failAllocs.Add(-1) >= 0 {
		return ErrInjected
	}
	return nil
}

// writeErr reports the injected Write failure, if toggled.
func (i *Injector) writeErr() error {
	if i.failWrites.Load() {
		return ErrInjected
	}
	return nil
}

// readErr reports the injected Read failure, if toggled.
func (i *Injector) readErr() error {
	if i.failReads.Load() {
		return ErrInjected
	}
	return nil
}

// syncErr reports the injected Sync failure, if toggled.
func (i *Injector) syncErr() error {
	if i.failSyncs.Load() {
		return ErrInjected
	}
	return nil
}
