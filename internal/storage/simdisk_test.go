package storage

import (
	"bytes"
	"errors"
	"testing"

	"blinktree/internal/page"
)

func fill(size int, b byte) []byte {
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestSimDiskSyncedWritesSurvive(t *testing.T) {
	d := NewSimDisk(128, SimConfig{Seed: 1})
	s := d.Store()
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, fill(128, 0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// An unsynced overwrite may or may not survive; the synced one must.
	if err := s.Write(id, fill(128, 0xBB)); err != nil {
		t.Fatal(err)
	}
	d.CrashNow()
	if _, err := s.Read(id); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("read while crashed: got %v, want ErrPowerCut", err)
	}
	d.Reboot()
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA && got[0] != 0xBB {
		t.Fatalf("post-crash page is neither image: %x", got[0])
	}
	for _, b := range got[1:] {
		if b != got[0] {
			t.Fatalf("untorn config produced a mixed page")
		}
	}
}

func TestSimDiskGhostWritesDropped(t *testing.T) {
	d := NewSimDisk(128, SimConfig{Seed: 7})
	s := d.Store()
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	// Allocation and write never covered by a Sync: the durable allocator
	// header never knew the page, so its bytes are invisible after reboot.
	if err := s.Write(id, fill(128, 0xCC)); err != nil {
		t.Fatal(err)
	}
	d.Reboot()
	if s.Allocated(id) {
		t.Fatalf("unsynced allocation survived reboot")
	}
	if _, err := s.Read(id); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("ghost page read: got %v, want ErrNotAllocated", err)
	}
}

func TestSimDiskCrashAtOpBoundary(t *testing.T) {
	// Counting run: how many ops does the sequence cost?
	count := NewSimDisk(128, SimConfig{Seed: 3})
	seq := func(d *SimDisk) error {
		s := d.Store()
		id, err := s.Allocate()
		if err != nil {
			return err
		}
		if err := s.Write(id, fill(128, 1)); err != nil {
			return err
		}
		if err := d.WAL().Append([]byte("frame")); err != nil {
			return err
		}
		if err := d.WAL().Sync(); err != nil {
			return err
		}
		return s.Sync()
	}
	if err := seq(count); err != nil {
		t.Fatal(err)
	}
	total := count.Ops()
	if total != 5 {
		t.Fatalf("op count: got %d, want 5", total)
	}
	// Crash at every boundary: op k fails, ops beyond fail, earlier applied.
	for k := int64(1); k <= total; k++ {
		d := NewSimDisk(128, SimConfig{Seed: 3, CrashAt: k})
		err := seq(d)
		if !errors.Is(err, ErrPowerCut) {
			t.Fatalf("crash at %d: got %v, want ErrPowerCut", k, err)
		}
		if d.Ops() != k {
			t.Fatalf("crash at %d: counted %d ops", k, d.Ops())
		}
		d.Reboot()
		// The WAL sync is op 4: at k<=4 the frame is durable only if the
		// lottery kept it; at k=5 it must be durable.
		frames, err := d.WAL().ReadDurable()
		if err != nil {
			t.Fatal(err)
		}
		if k == 5 && len(frames) != 1 {
			t.Fatalf("crash at 5: synced frame lost")
		}
		if k <= 3 && len(frames) > 1 {
			t.Fatalf("crash at %d: phantom frames %d", k, len(frames))
		}
	}
}

func TestSimWALKeepsPrefix(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d := NewSimDisk(128, SimConfig{Seed: seed})
		w := d.WAL()
		var appended [][]byte
		for i := byte(0); i < 10; i++ {
			f := []byte{i, i, i}
			appended = append(appended, f)
			if err := w.Append(f); err != nil {
				t.Fatal(err)
			}
			if i == 4 {
				if err := w.Sync(); err != nil {
					t.Fatal(err)
				}
			}
		}
		d.Reboot()
		frames, err := w.ReadDurable()
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) < 5 {
			t.Fatalf("seed %d: synced prefix lost: %d frames", seed, len(frames))
		}
		for i, f := range frames {
			if !bytes.Equal(f, appended[i]) {
				t.Fatalf("seed %d: frame %d is not a prefix element", seed, i)
			}
		}
	}
}

func TestSimDiskTornPageWrite(t *testing.T) {
	torn := 0
	for seed := int64(0); seed < 64 && torn == 0; seed++ {
		d := NewSimDisk(1024, SimConfig{Seed: seed, TornPageWrites: true, SectorSize: 256})
		s := d.Store()
		id, _ := s.Allocate()
		if err := s.Write(id, fill(1024, 0x11)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, fill(1024, 0x22)); err != nil {
			t.Fatal(err)
		}
		d.Reboot()
		if d.TornPages() == 0 {
			continue
		}
		torn++
		got, err := s.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		// A torn page mixes whole sectors of the two images.
		for off := 0; off < 1024; off += 256 {
			b := got[off]
			if b != 0x11 && b != 0x22 {
				t.Fatalf("sector %d holds byte from neither image: %x", off/256, b)
			}
			for _, x := range got[off : off+256] {
				if x != b {
					t.Fatalf("tear not sector-aligned at %d", off)
				}
			}
		}
	}
	if torn == 0 {
		t.Fatalf("no seed in 64 produced a torn page")
	}
}

func TestSimWALTornTailReported(t *testing.T) {
	found := false
	for seed := int64(0); seed < 64 && !found; seed++ {
		d := NewSimDisk(128, SimConfig{Seed: seed, TornWALTail: true})
		w := d.WAL()
		for i := 0; i < 6; i++ {
			if err := w.Append(fill(32, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		d.Reboot()
		if torn, n := w.TailTorn(); torn {
			found = true
			if n <= 0 || n >= 32 {
				t.Fatalf("torn tail bytes out of range: %d", n)
			}
			frames, _ := w.ReadDurable()
			if len(frames) >= 6 {
				t.Fatalf("torn tail reported but all frames survived")
			}
		}
	}
	if !found {
		t.Fatalf("no seed in 64 produced a torn WAL tail")
	}
}

func TestSimStoreSharesInjectorSurface(t *testing.T) {
	d := NewSimDisk(128, SimConfig{Seed: 1})
	s := d.Store()
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	s.SetFailWrites(true)
	if err := s.Write(id, fill(128, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write: got %v, want ErrInjected", err)
	}
	s.SetFailWrites(false)
	s.FailNextAllocs(1)
	if _, err := s.Allocate(); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected alloc: got %v, want ErrInjected", err)
	}
	if _, err := s.Allocate(); err != nil {
		t.Fatalf("alloc after injection consumed: %v", err)
	}
	if err := s.Write(id, fill(128, 1)); err != nil {
		t.Fatalf("write after injection cleared: %v", err)
	}
}

func TestSimDiskAllocatorRecyclesLIFO(t *testing.T) {
	d := NewSimDisk(128, SimConfig{Seed: 1})
	s := d.Store()
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	if err := s.Deallocate(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Deallocate(b); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Allocate()
	if c != b {
		t.Fatalf("LIFO recycle: got %d, want %d", c, b)
	}
	if err := s.EnsureAllocated(page.PageID(9)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().HighestPage; got != 9 {
		t.Fatalf("frontier after EnsureAllocated(9): %d", got)
	}
}
