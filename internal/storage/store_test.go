package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"blinktree/internal/page"
)

// stores returns a fresh instance of each Store implementation for
// table-driven tests.
func stores(t *testing.T, pageSize int) map[string]Store {
	t.Helper()
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.db"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMemStore(pageSize),
		"file": fs,
	}
}

func TestAllocateReadWrite(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id == page.InvalidPage {
				t.Fatal("allocated the nil page")
			}
			buf := bytes.Repeat([]byte{0xAB}, 256)
			if err := s.Write(id, buf); err != nil {
				t.Fatal(err)
			}
			got, err := s.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, buf) {
				t.Fatal("read returned different bytes")
			}
		})
	}
}

func TestFreshPageReadsZero(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, make([]byte, 256)) {
				t.Fatal("fresh page not zeroed")
			}
		})
	}
}

func TestUseAfterFree(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, _ := s.Allocate()
			if err := s.Deallocate(id); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Read(id); !errors.Is(err, ErrNotAllocated) {
				t.Fatalf("read after free: %v, want ErrNotAllocated", err)
			}
			if err := s.Write(id, make([]byte, 256)); !errors.Is(err, ErrNotAllocated) {
				t.Fatalf("write after free: %v, want ErrNotAllocated", err)
			}
			if err := s.Deallocate(id); !errors.Is(err, ErrNotAllocated) {
				t.Fatalf("double free: %v, want ErrNotAllocated", err)
			}
			if s.Allocated(id) {
				t.Fatal("Allocated true after free")
			}
		})
	}
}

func TestIDRecycling(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			a, _ := s.Allocate()
			b, _ := s.Allocate()
			if err := s.Deallocate(a); err != nil {
				t.Fatal(err)
			}
			c, _ := s.Allocate()
			if c != a {
				t.Fatalf("expected recycled id %d, got %d", a, c)
			}
			// The recycled page must read as zero, not the old image.
			got, err := s.Read(c)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, make([]byte, 256)) {
				t.Fatal("recycled page not zeroed")
			}
			_ = b
		})
	}
}

func TestBadWriteSize(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, _ := s.Allocate()
			if err := s.Write(id, make([]byte, 255)); !errors.Is(err, ErrBadSize) {
				t.Fatalf("short write: %v, want ErrBadSize", err)
			}
		})
	}
}

func TestClosedStore(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			id, _ := s.Allocate()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Allocate(); !errors.Is(err, ErrClosed) {
				t.Fatalf("Allocate after close: %v", err)
			}
			if _, err := s.Read(id); !errors.Is(err, ErrClosed) {
				t.Fatalf("Read after close: %v", err)
			}
		})
	}
}

func TestStatsCounts(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			a, _ := s.Allocate()
			b, _ := s.Allocate()
			s.Write(a, make([]byte, 256))
			s.Read(a)
			s.Read(b)
			s.Deallocate(b)
			st := s.Stats()
			if st.Allocs != 2 || st.Deallocs != 1 || st.Writes != 1 || st.Reads != 2 {
				t.Fatalf("stats = %+v", st)
			}
			if st.LivePages != 1 {
				t.Fatalf("LivePages = %d, want 1", st.LivePages)
			}
			if !strings.Contains(st.String(), "allocs=2") {
				t.Fatalf("Stats.String() = %q", st.String())
			}
		})
	}
}

func TestConcurrentAllocations(t *testing.T) {
	for name, s := range stores(t, 256) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			var mu sync.Mutex
			seen := make(map[page.PageID]bool)
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						id, err := s.Allocate()
						if err != nil {
							t.Error(err)
							return
						}
						mu.Lock()
						if seen[id] {
							t.Errorf("duplicate allocation of %d", id)
						}
						seen[id] = true
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			if len(seen) != 400 {
				t.Fatalf("allocated %d unique pages, want 400", len(seen))
			}
		})
	}
}

func TestFileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	s, err := OpenFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	c, _ := s.Allocate()
	payload := bytes.Repeat([]byte{0x5C}, 256)
	if err := s.Write(b, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Deallocate(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Allocated(a) || !s2.Allocated(b) {
		t.Fatal("allocated pages lost across reopen")
	}
	if s2.Allocated(c) {
		t.Fatal("deallocated page resurrected across reopen")
	}
	got, err := s2.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("page contents lost across reopen")
	}
	// The freed page should be recycled before the frontier advances.
	d, _ := s2.Allocate()
	if d != c {
		t.Fatalf("recycled id = %d, want %d", d, c)
	}
}

func TestFileStoreRejectsWrongPageSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	s, err := OpenFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenFileStore(path, 512); err == nil {
		t.Fatal("reopen with different page size succeeded")
	}
}

func TestFileStoreRejectsTinyPageSize(t *testing.T) {
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "p.db"), 16); err == nil {
		t.Fatal("page size below minimum accepted")
	}
}

// TestQuickAllocFreeCycle property-tests that any interleaving of
// allocations and frees maintains the invariant: live set == allocated minus
// freed, and reads succeed exactly on the live set.
func TestQuickAllocFreeCycle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMemStore(128)
		defer s.Close()
		live := make(map[page.PageID]bool)
		for i := 0; i < 200; i++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				id, err := s.Allocate()
				if err != nil || live[id] {
					return false
				}
				live[id] = true
			} else {
				var victim page.PageID
				for id := range live {
					victim = id
					break
				}
				if err := s.Deallocate(victim); err != nil {
					return false
				}
				delete(live, victim)
			}
		}
		for id := range live {
			if !s.Allocated(id) {
				return false
			}
			if _, err := s.Read(id); err != nil {
				return false
			}
		}
		return s.Stats().LivePages == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
