package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"blinktree/internal/page"
)

// FileStore is a Store backed by a single file. Page i lives at byte offset
// i*pageSize; offset 0 holds the store header (magic, page size, allocation
// frontier and free list), so page IDs start at 1, which conveniently leaves
// 0 as the nil pointer.
//
// The allocator state is written out on Sync and Close. Crash consistency of
// allocation is the write-ahead log's job (alloc/dealloc are logged and
// replayed), so a torn header is repaired by recovery, not by the store.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	next     page.PageID
	free     []page.PageID
	live     map[page.PageID]struct{}
	closed   bool

	reads    uint64
	writes   uint64
	allocs   uint64
	deallocs uint64
}

const fileMagic = "BLKS"

// minPageSize keeps the header representable; real configurations use 4KiB+.
const minPageSize = 128

// OpenFileStore opens or creates a file-backed store at path. If the file
// exists its page size must match pageSize.
func OpenFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize < minPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, minPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileStore{
		f:        f,
		pageSize: pageSize,
		next:     1,
		live:     make(map[page.PageID]struct{}),
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if err := s.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return s, nil
	}
	if err := s.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// header layout: magic(4) pageSize(4) next(8) freeCount(4) free[...](8 each)
func (s *FileStore) writeHeader() error {
	buf := make([]byte, s.pageSize)
	copy(buf, fileMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(s.pageSize))
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.next))
	maxFree := (s.pageSize - 20) / 8
	n := len(s.free)
	if n > maxFree {
		// Overflowing free entries are dropped: those pages leak until a
		// rebuild. Acceptable for this store; noted in the package docs.
		n = maxFree
	}
	binary.LittleEndian.PutUint32(buf[16:], uint32(n))
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[20+8*i:], uint64(s.free[i]))
	}
	_, err := s.f.WriteAt(buf, 0)
	return err
}

func (s *FileStore) readHeader() error {
	buf := make([]byte, s.pageSize)
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("storage: reading header: %w", err)
	}
	if string(buf[:4]) != fileMagic {
		return fmt.Errorf("storage: bad file magic %q", buf[:4])
	}
	if got := int(binary.LittleEndian.Uint32(buf[4:])); got != s.pageSize {
		return fmt.Errorf("storage: file page size %d, opened with %d", got, s.pageSize)
	}
	s.next = page.PageID(binary.LittleEndian.Uint64(buf[8:]))
	nfree := int(binary.LittleEndian.Uint32(buf[16:]))
	s.free = s.free[:0]
	freeSet := make(map[page.PageID]struct{}, nfree)
	for i := 0; i < nfree; i++ {
		id := page.PageID(binary.LittleEndian.Uint64(buf[20+8*i:]))
		s.free = append(s.free, id)
		freeSet[id] = struct{}{}
	}
	for id := page.PageID(1); id < s.next; id++ {
		if _, ok := freeSet[id]; !ok {
			s.live[id] = struct{}{}
		}
	}
	return nil
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.pageSize }

// Allocate implements Store.
func (s *FileStore) Allocate() (page.PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return page.InvalidPage, ErrClosed
	}
	var id page.PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	s.live[id] = struct{}{}
	// Extend the file with a zero page so later reads of an allocated but
	// never-written page succeed.
	zero := make([]byte, s.pageSize)
	if _, err := s.f.WriteAt(zero, int64(id)*int64(s.pageSize)); err != nil {
		delete(s.live, id)
		return page.InvalidPage, err
	}
	s.allocs++
	return id, nil
}

// AllocateBatch implements BatchAllocator: n fresh pages under one lock
// acquisition, extending the file once for the whole run when the batch
// comes off the frontier (the common case during bulk load).
func (s *FileStore) AllocateBatch(n int) ([]page.PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	ids := make([]page.PageID, 0, n)
	for len(ids) < n && len(s.free) > 0 {
		id := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		zero := make([]byte, s.pageSize)
		if _, err := s.f.WriteAt(zero, int64(id)*int64(s.pageSize)); err != nil {
			s.free = append(s.free, id)
			s.rollbackBatch(ids)
			return nil, err
		}
		s.live[id] = struct{}{}
		s.allocs++
		ids = append(ids, id)
	}
	if rest := n - len(ids); rest > 0 {
		first := s.next
		zero := make([]byte, rest*s.pageSize)
		if _, err := s.f.WriteAt(zero, int64(first)*int64(s.pageSize)); err != nil {
			s.rollbackBatch(ids)
			return nil, err
		}
		for i := 0; i < rest; i++ {
			id := first + page.PageID(i)
			s.live[id] = struct{}{}
			s.allocs++
			ids = append(ids, id)
		}
		s.next = first + page.PageID(rest)
	}
	return ids, nil
}

// rollbackBatch releases pages reserved by a batch that failed part-way.
// Caller holds s.mu.
func (s *FileStore) rollbackBatch(ids []page.PageID) {
	for _, id := range ids {
		delete(s.live, id)
		s.free = append(s.free, id)
		s.deallocs++
	}
}

// EnsureAllocated implements Store.
func (s *FileStore) EnsureAllocated(id page.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.live[id]; ok {
		return nil
	}
	for i, f := range s.free {
		if f == id {
			s.free = append(s.free[:i], s.free[i+1:]...)
			break
		}
	}
	for s.next <= id {
		if s.next != id {
			s.free = append(s.free, s.next)
		}
		s.next++
	}
	s.live[id] = struct{}{}
	zero := make([]byte, s.pageSize)
	if _, err := s.f.WriteAt(zero, int64(id)*int64(s.pageSize)); err != nil {
		delete(s.live, id)
		return err
	}
	s.allocs++
	return nil
}

// Deallocate implements Store.
func (s *FileStore) Deallocate(id page.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.live[id]; !ok {
		return fmt.Errorf("%w: deallocate %d", ErrNotAllocated, id)
	}
	delete(s.live, id)
	s.free = append(s.free, id)
	s.deallocs++
	return nil
}

// Read implements Store.
func (s *FileStore) Read(id page.PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.live[id]; !ok {
		return nil, fmt.Errorf("%w: read %d", ErrNotAllocated, id)
	}
	buf := make([]byte, s.pageSize)
	if _, err := s.f.ReadAt(buf, int64(id)*int64(s.pageSize)); err != nil {
		return nil, err
	}
	s.reads++
	return buf, nil
}

// Write implements Store.
func (s *FileStore) Write(id page.PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("%w: got %d, want %d", ErrBadSize, len(buf), s.pageSize)
	}
	if _, ok := s.live[id]; !ok {
		return fmt.Errorf("%w: write %d", ErrNotAllocated, id)
	}
	if _, err := s.f.WriteAt(buf, int64(id)*int64(s.pageSize)); err != nil {
		return err
	}
	s.writes++
	return nil
}

// Allocated implements Store.
func (s *FileStore) Allocated(id page.PageID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.live[id]
	return ok
}

// Stats implements Store.
func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Reads: s.reads, Writes: s.writes,
		Allocs: s.allocs, Deallocs: s.deallocs,
		LivePages: len(s.live), HighestPage: s.next - 1,
	}
}

// Sync implements Store: persists the allocator header and fsyncs.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.writeHeader(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.writeHeader(); err != nil {
		s.f.Close()
		s.closed = true
		return err
	}
	err := s.f.Close()
	s.closed = true
	return err
}
