package server

import (
	"bufio"
	"errors"
	"net"
	"strconv"
	"strings"
	"time"

	blinktree "blinktree"
	"blinktree/internal/resp"
)

// conn is one client session: a reader goroutine (serve) that parses and
// executes commands in arrival order, and a writer goroutine (writeLoop)
// that streams the queued replies. The bounded reply queue between them is
// both the pipelining window and the backpressure mechanism: when the
// client stops reading, the queue fills and the reader blocks, stalling
// only this connection.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	out chan []byte
	// txn is the session's open transaction, nil outside BEGIN..COMMIT/ABORT.
	// Only the reader goroutine touches it.
	txn *blinktree.Txn
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv: s,
		nc:  nc,
		br:  bufio.NewReaderSize(nc, 1<<16),
		out: make(chan []byte, s.cfg.WriteQueue),
	}
}

// serve is the reader side: the connection's command loop. It returns when
// the client disconnects, a protocol error poisons the stream, the idle
// timeout fires, or the server drains; any open transaction is aborted
// before the reply queue is closed and the writer flushes out.
func (c *conn) serve() {
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop()
	}()

	for {
		if c.srv.draining() {
			break
		}
		if c.srv.cfg.IdleTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout))
		}
		args, err := resp.ReadCommand(c.br, c.srv.cfg.MaxBulk)
		if err != nil {
			if errors.Is(err, resp.ErrProto) {
				c.srv.stats.protoErrors.Add(1)
				c.send(resp.AppendError(nil, "PROTO", err.Error()))
			} else if isTimeout(err) && !c.srv.draining() {
				c.srv.stats.idleClosed.Add(1)
			}
			break
		}
		c.send(c.dispatch(args))
	}

	if c.txn != nil {
		// Disconnect (or drain) with a transaction open: roll it back so
		// its record locks never outlive the session.
		c.txn.Abort()
		c.txn = nil
		c.srv.stats.disconnectAborts.Add(1)
	}
	close(c.out)
	<-writerDone
	c.nc.Close()
}

// send queues one encoded reply for the writer, blocking when the queue is
// full (client-read backpressure).
func (c *conn) send(frame []byte) {
	depth := uint64(len(c.out) + 1)
	c.srv.stats.noteDepth(depth)
	c.out <- frame
}

// writeLoop is the writer side: it batches every reply available right now
// into the buffered writer and flushes once the queue momentarily empties,
// so a pipelined burst costs one syscall per drain, not one per reply.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 1<<16)
	// On a write error the peer is gone; keep draining the queue so the
	// reader never blocks on send, until it closes the channel.
	drain := func() {
		for range c.out {
		}
	}
	for frame := range c.out {
		for frame != nil {
			if _, err := bw.Write(frame); err != nil {
				drain()
				return
			}
			select {
			case next, ok := <-c.out:
				if !ok {
					bw.Flush()
					return
				}
				frame = next
			default:
				frame = nil
			}
		}
		if err := bw.Flush(); err != nil {
			drain()
			return
		}
	}
	bw.Flush()
}

// dispatch looks up and executes one command, returning the encoded reply.
func (c *conn) dispatch(args [][]byte) []byte {
	name := strings.ToUpper(string(args[0]))
	v, ok := verbs[name]
	if !ok {
		c.srv.stats.unknown.Add(1)
		return resp.AppendError(nil, "ERR", "unknown command '"+printable(args[0])+"'")
	}
	c.srv.stats.commands[v.idx].Add(1)
	if len(args) != v.arity {
		return resp.AppendError(nil, "ERR", "wrong number of arguments for '"+name+"'")
	}
	start := time.Now()
	reply := v.fn(c, args, nil)
	c.srv.stats.verbLatency[v.idx].Observe(time.Since(start))
	return reply
}

func (c *conn) cmdPing(_ [][]byte, dst []byte) []byte {
	return resp.AppendSimple(dst, "PONG")
}

func (c *conn) cmdGet(args [][]byte, dst []byte) []byte {
	var val []byte
	var err error
	if c.txn != nil {
		val, err = c.txn.Get(args[1])
	} else {
		val, err = c.srv.tree.Get(args[1])
	}
	if errors.Is(err, blinktree.ErrKeyNotFound) {
		return resp.AppendNull(dst)
	}
	if err != nil {
		return c.opError(dst, err)
	}
	return resp.AppendBulk(dst, val)
}

func (c *conn) cmdSet(args [][]byte, dst []byte) []byte {
	var err error
	if c.txn != nil {
		err = c.txn.Put(args[1], args[2])
	} else {
		err = c.srv.tree.Put(args[1], args[2])
	}
	if err != nil {
		return c.opError(dst, err)
	}
	return resp.AppendSimple(dst, "OK")
}

func (c *conn) cmdDel(args [][]byte, dst []byte) []byte {
	var err error
	if c.txn != nil {
		err = c.txn.Delete(args[1])
	} else {
		err = c.srv.tree.Delete(args[1])
	}
	if errors.Is(err, blinktree.ErrKeyNotFound) {
		return resp.AppendInt(dst, 0)
	}
	if err != nil {
		return c.opError(dst, err)
	}
	return resp.AppendInt(dst, 1)
}

func (c *conn) cmdScan(args [][]byte, dst []byte) []byte {
	limit, err := strconv.Atoi(string(args[3]))
	if err != nil || limit < 1 {
		return resp.AppendError(dst, "ERR", "SCAN limit must be a positive integer")
	}
	if limit > c.srv.cfg.MaxScan {
		limit = c.srv.cfg.MaxScan
	}
	start := args[1]
	var end []byte
	if len(args[2]) > 0 {
		end = args[2]
	}
	// SCAN reads the live tree without record locks even inside a
	// transaction (PROTOCOL.md): cursors are latch-only by design.
	type kv struct{ k, v []byte }
	pairs := make([]kv, 0, min(limit, 64))
	scanErr := c.srv.tree.Scan(start, end, func(k, v []byte) bool {
		pairs = append(pairs, kv{k: append([]byte(nil), k...), v: append([]byte(nil), v...)})
		return len(pairs) < limit
	})
	if scanErr != nil {
		return c.opError(dst, scanErr)
	}
	dst = resp.AppendArrayHeader(dst, 2*len(pairs))
	for _, p := range pairs {
		dst = resp.AppendBulk(dst, p.k)
		dst = resp.AppendBulk(dst, p.v)
	}
	return dst
}

func (c *conn) cmdBegin(_ [][]byte, dst []byte) []byte {
	if c.txn != nil {
		return resp.AppendError(dst, "TXN", "transaction already open")
	}
	txn, err := c.srv.tree.Begin()
	if err != nil {
		return c.opError(dst, err)
	}
	c.txn = txn
	c.srv.stats.txnBegins.Add(1)
	return resp.AppendSimple(dst, "OK")
}

func (c *conn) cmdCommit(_ [][]byte, dst []byte) []byte {
	if c.txn == nil {
		return resp.AppendError(dst, "TXN", "no transaction open")
	}
	err := c.txn.Commit()
	c.txn = nil
	if err != nil {
		return c.opError(dst, err)
	}
	c.srv.stats.txnCommits.Add(1)
	return resp.AppendSimple(dst, "OK")
}

func (c *conn) cmdAbort(_ [][]byte, dst []byte) []byte {
	if c.txn == nil {
		return resp.AppendError(dst, "TXN", "no transaction open")
	}
	err := c.txn.Abort()
	c.txn = nil
	if err != nil {
		return c.opError(dst, err)
	}
	c.srv.stats.txnAborts.Add(1)
	return resp.AppendSimple(dst, "OK")
}

func (c *conn) cmdInfo(_ [][]byte, dst []byte) []byte {
	return resp.AppendBulk(dst, c.srv.info())
}

// opError maps a tree error onto the wire error codes of PROTOCOL.md.
// ErrTxnAborted and ErrTxnDone mean the underlying transaction is finished:
// the session's txn pointer is cleared so the client's next BEGIN works.
func (c *conn) opError(dst []byte, err error) []byte {
	switch {
	case errors.Is(err, blinktree.ErrTxnAborted):
		c.txn = nil
		c.srv.stats.txnAborts.Add(1)
		return resp.AppendError(dst, "ABORTED", "transaction rolled back ("+err.Error()+"); retry")
	case errors.Is(err, blinktree.ErrTxnDone):
		c.txn = nil
		return resp.AppendError(dst, "TXN", "transaction already finished")
	case errors.Is(err, blinktree.ErrClosed):
		return resp.AppendError(dst, "ERR", "server shutting down")
	case errorsIsAny(err, blinktree.ErrEmptyKey, blinktree.ErrEntryTooLarge):
		return resp.AppendError(dst, "ERR", err.Error())
	default:
		return resp.AppendError(dst, "ERR", err.Error())
	}
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// printable sanitizes client-supplied bytes for inclusion in an error
// message: non-graphic bytes become '?', length is capped.
func printable(b []byte) string {
	if len(b) > 32 {
		b = b[:32]
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if c < 0x20 || c > 0x7e {
			c = '?'
		}
		out[i] = c
	}
	return string(out)
}
