package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"blinktree/internal/obs"
)

// serverStats holds the server's own counters, kept separate from the
// tree's metrics: the tree counts B-tree work, these count wire work.
// Per-verb arrays are indexed by verb.idx (sorted verb-name order).
type serverStats struct {
	accepted    atomic.Uint64
	rejected    atomic.Uint64
	open        atomic.Uint64
	idleClosed  atomic.Uint64
	protoErrors atomic.Uint64
	unknown     atomic.Uint64

	commands    [verbCount]atomic.Uint64
	verbLatency [verbCount]obs.Histogram

	txnBegins        atomic.Uint64
	txnCommits       atomic.Uint64
	txnAborts        atomic.Uint64
	disconnectAborts atomic.Uint64

	pipelineMaxDepth atomic.Uint64
	pipelineDepthSum atomic.Uint64
	pipelineDepthObs atomic.Uint64
}

// verbCount is the number of registered wire verbs; the dispatch table in
// server.go is the source of truth and init panics on a mismatch.
const verbCount = 9

func init() {
	if len(verbs) != verbCount {
		panic(fmt.Sprintf("server: verbCount %d does not match dispatch table (%d verbs)", verbCount, len(verbs)))
	}
}

// noteDepth records one reply-queue depth sample (the pipeline depth seen
// when a command's reply was enqueued).
func (st *serverStats) noteDepth(d uint64) {
	st.pipelineDepthSum.Add(d)
	st.pipelineDepthObs.Add(1)
	for {
		cur := st.pipelineMaxDepth.Load()
		if d <= cur || st.pipelineMaxDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the server's wire-level counters,
// as exposed on the admin port (blinktree_server_* series) and via INFO.
type Stats struct {
	// Open is the current connection count; Accepted and Rejected are
	// lifetime totals (Rejected counts over-limit accepts).
	Open     uint64
	Accepted uint64
	Rejected uint64
	// IdleClosed counts connections closed by the idle timeout.
	IdleClosed uint64
	// ProtoErrors counts connections dropped for malformed framing.
	ProtoErrors uint64
	// Unknown counts commands whose verb was not in the dispatch table.
	Unknown uint64

	// Commands maps each registered verb to its dispatch count; VerbLatency
	// maps it to the execution-latency histogram (parse-to-reply-encoded).
	Commands    map[string]uint64
	VerbLatency map[string]obs.HistogramSnapshot

	// TxnBegins/TxnCommits/TxnAborts count session transaction outcomes;
	// DisconnectAborts counts transactions rolled back because their
	// connection vanished mid-flight.
	TxnBegins        uint64
	TxnCommits       uint64
	TxnAborts        uint64
	DisconnectAborts uint64

	// PipelineMaxDepth is the deepest reply queue observed on any
	// connection; PipelineDepthSum/PipelineDepthObs give the average.
	PipelineMaxDepth uint64
	PipelineDepthSum uint64
	PipelineDepthObs uint64
}

// Stats snapshots the server's wire-level counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Open:             s.stats.open.Load(),
		Accepted:         s.stats.accepted.Load(),
		Rejected:         s.stats.rejected.Load(),
		IdleClosed:       s.stats.idleClosed.Load(),
		ProtoErrors:      s.stats.protoErrors.Load(),
		Unknown:          s.stats.unknown.Load(),
		Commands:         make(map[string]uint64, verbCount),
		VerbLatency:      make(map[string]obs.HistogramSnapshot, verbCount),
		TxnBegins:        s.stats.txnBegins.Load(),
		TxnCommits:       s.stats.txnCommits.Load(),
		TxnAborts:        s.stats.txnAborts.Load(),
		DisconnectAborts: s.stats.disconnectAborts.Load(),
		PipelineMaxDepth: s.stats.pipelineMaxDepth.Load(),
		PipelineDepthSum: s.stats.pipelineDepthSum.Load(),
		PipelineDepthObs: s.stats.pipelineDepthObs.Load(),
	}
	for _, name := range verbNames {
		idx := verbs[name].idx
		st.Commands[name] = s.stats.commands[idx].Load()
		st.VerbLatency[name] = s.stats.verbLatency[idx].Snapshot()
	}
	return st
}

// CommandCount returns one verb's dispatch count (zero for an unregistered
// verb). Tests poll it to detect that a command has started executing.
func (s *Server) CommandCount(verbName string) uint64 {
	v, ok := verbs[verbName]
	if !ok {
		return 0
	}
	return s.stats.commands[v.idx].Load()
}

// WritePrometheus appends the blinktree_server_* series for st in
// Prometheus text exposition format. It complements (and is normally
// concatenated after) blinkmetrics.WritePrometheus's tree series.
func (st Stats) WritePrometheus(w io.Writer) error {
	p := &statsPrinter{w: w}
	p.header("blinktree_server_connections", "Currently open client connections.", "gauge")
	p.line("blinktree_server_connections", "", st.Open)
	p.header("blinktree_server_connections_total", "Connection lifecycle events.", "counter")
	p.line("blinktree_server_connections_total", `event="accepted"`, st.Accepted)
	p.line("blinktree_server_connections_total", `event="rejected"`, st.Rejected)
	p.line("blinktree_server_connections_total", `event="idle_closed"`, st.IdleClosed)
	p.line("blinktree_server_connections_total", `event="proto_error"`, st.ProtoErrors)
	p.header("blinktree_server_commands_total", "Commands dispatched by verb.", "counter")
	for _, name := range verbNames {
		p.line("blinktree_server_commands_total", `verb="`+name+`"`, st.Commands[name])
	}
	p.line("blinktree_server_commands_total", `verb="UNKNOWN"`, st.Unknown)
	p.header("blinktree_server_txn_total", "Session transaction outcomes.", "counter")
	p.line("blinktree_server_txn_total", `event="begin"`, st.TxnBegins)
	p.line("blinktree_server_txn_total", `event="commit"`, st.TxnCommits)
	p.line("blinktree_server_txn_total", `event="abort"`, st.TxnAborts)
	p.line("blinktree_server_txn_total", `event="disconnect_abort"`, st.DisconnectAborts)
	p.header("blinktree_server_pipeline_depth_max", "Deepest per-connection reply queue observed.", "gauge")
	p.line("blinktree_server_pipeline_depth_max", "", st.PipelineMaxDepth)
	p.header("blinktree_server_pipeline_depth_sum", "Sum of reply-queue depth samples (one per command).", "counter")
	p.line("blinktree_server_pipeline_depth_sum", "", st.PipelineDepthSum)
	p.header("blinktree_server_pipeline_depth_count", "Number of reply-queue depth samples.", "counter")
	p.line("blinktree_server_pipeline_depth_count", "", st.PipelineDepthObs)
	p.header("blinktree_server_verb_latency_seconds", "Command execution latency by verb.", "histogram")
	for _, name := range verbNames {
		p.hist("blinktree_server_verb_latency_seconds", "verb", name, st.VerbLatency[name])
	}
	return p.err
}

// ExpvarDoc builds the "server" JSON sub-document the admin handler merges
// into the expvar view next to the tree's metrics.
func (st Stats) ExpvarDoc() map[string]any {
	commands := make(map[string]any, verbCount+1)
	latency := make(map[string]any, verbCount)
	for _, name := range verbNames {
		commands[name] = st.Commands[name]
		h := st.VerbLatency[name]
		latency[name] = map[string]any{
			"count":   h.Count,
			"mean_ns": int64(h.Mean()),
			"p99_ns":  int64(h.Quantile(0.99)),
		}
	}
	commands["UNKNOWN"] = st.Unknown
	return map[string]any{
		"connections": map[string]any{
			"open":        st.Open,
			"accepted":    st.Accepted,
			"rejected":    st.Rejected,
			"idle_closed": st.IdleClosed,
			"proto_error": st.ProtoErrors,
		},
		"commands":     commands,
		"verb_latency": latency,
		"txns": map[string]any{
			"begun":             st.TxnBegins,
			"committed":         st.TxnCommits,
			"aborted":           st.TxnAborts,
			"disconnect_aborts": st.DisconnectAborts,
		},
		"pipeline": map[string]any{
			"depth_max":   st.PipelineMaxDepth,
			"depth_sum":   st.PipelineDepthSum,
			"depth_count": st.PipelineDepthObs,
		},
	}
}

// statsPrinter accumulates Prometheus exposition lines, remembering the
// first write error (mirrors blinkmetrics' internal writer).
type statsPrinter struct {
	w   io.Writer
	err error
}

func (p *statsPrinter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *statsPrinter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *statsPrinter) line(name, labels string, v uint64) {
	if labels == "" {
		p.printf("%s %d\n", name, v)
	} else {
		p.printf("%s{%s} %d\n", name, labels, v)
	}
}

// hist emits one histogram with cumulative le buckets in seconds.
func (p *statsPrinter) hist(name, labelKey, labelVal string, h obs.HistogramSnapshot) {
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if c == 0 && i != obs.HistBuckets-1 {
			continue
		}
		le := "+Inf"
		if i != obs.HistBuckets-1 {
			le = fmt.Sprintf("%g", h.BucketBound(i).Seconds())
		}
		p.printf("%s_bucket{%s=%q,le=%q} %d\n", name, labelKey, labelVal, le, cum)
	}
	p.printf("%s_sum{%s=%q} %g\n", name, labelKey, labelVal, time.Duration(h.Sum).Seconds())
	p.printf("%s_count{%s=%q} %d\n", name, labelKey, labelVal, h.Count)
}
