package server

import (
	"encoding/json"
	"net/http"

	"blinktree/blinkmetrics"
	"blinktree/internal/obs"
)

// AdminHandler returns the admin-port HTTP handler for s:
//
//	/metrics            expvar-style JSON: the tree document plus a
//	                    "server" sub-document of wire-level counters
//	/metrics?format=prometheus
//	                    Prometheus text exposition: the blinktree_* tree
//	                    series followed by the blinktree_server_* series
//	/metrics?format=trace
//	                    the tree's structural trace as JSON Lines
//	/metrics?format=spans
//	                    sampled operation spans as Chrome trace-event JSON
//	/healthz            "ok" while the server is accepting commands,
//	                    503 once draining
//
// cmd/blinkd mounts this on a separate listener (-admin) so operational
// scraping never competes with the data port.
func AdminHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "prometheus", "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := blinkmetrics.WritePrometheus(w, s.tree.Snapshot()); err != nil {
				return
			}
			_ = s.Stats().WritePrometheus(w)
		case "trace":
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = obs.WriteTrace(w, s.tree.TraceEvents())
		case "spans":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = obs.WriteChromeTrace(w, s.tree.Spans())
		default:
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			doc := blinkmetrics.ExpvarDoc(s.tree.Snapshot())
			doc["server"] = s.Stats().ExpvarDoc()
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(doc)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}
