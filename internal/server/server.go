// Package server implements blinkd, the networked key/value service over
// the public blinktree API. It speaks the RESP-style pipelined wire
// protocol specified in PROTOCOL.md (codec in internal/resp): one TCP
// connection is one session with one goroutine pair — a reader that parses
// and executes commands in arrival order, and a writer that streams the
// replies back — so a client may pipeline any number of requests and the
// server overlaps their execution with the flushing of earlier replies.
//
// Sessions hold per-connection transaction state (BEGIN/COMMIT/ABORT map
// onto blinktree.Txn), bounded reply buffering with backpressure (a slow
// reader eventually stalls its own connection's command stream, nothing
// else), a connection limit, idle timeouts, and graceful shutdown that
// drains in-flight work and closes the tree. The cmd/blinkd binary is a
// thin flag wrapper around this package; blinkbench -remote is the load
// generator.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	blinktree "blinktree"
	"blinktree/internal/buildinfo"
)

// Default configuration values; see Config.
const (
	// DefaultMaxConns is the default connection limit.
	DefaultMaxConns = 1024
	// DefaultIdleTimeout is the default per-connection idle timeout.
	DefaultIdleTimeout = 5 * time.Minute
	// DefaultWriteQueue is the default per-connection reply-queue depth —
	// the pipelining window the server buffers before backpressure stalls
	// the connection's reader.
	DefaultWriteQueue = 128
	// DefaultMaxScan is the default cap on a single SCAN's record count.
	DefaultMaxScan = 1000
)

// Config parameterizes a Server. The zero value is usable: it listens on
// an OS-assigned port with the defaults above.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// MaxConns caps concurrent connections; further accepts are answered
	// with -ERR and closed (default DefaultMaxConns).
	MaxConns int
	// IdleTimeout closes a connection that sends no command for this long;
	// an open transaction on it is aborted. <0 disables (default
	// DefaultIdleTimeout).
	IdleTimeout time.Duration
	// WriteQueue bounds each connection's queued replies; a full queue
	// blocks that connection's command execution until the client reads
	// (default DefaultWriteQueue).
	WriteQueue int
	// MaxScan caps the per-SCAN record count; larger requested limits are
	// clamped (default DefaultMaxScan).
	MaxScan int
	// MaxBulk caps a single request bulk string — effectively the largest
	// key or value the server will parse (default resp.DefaultMaxBulk).
	MaxBulk int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxConns == 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.WriteQueue <= 0 {
		c.WriteQueue = DefaultWriteQueue
	}
	if c.MaxScan <= 0 {
		c.MaxScan = DefaultMaxScan
	}
	return c
}

// Server is a blinkd instance: one tree served over one listener. Create
// with New, start with Listen + Serve, stop with Shutdown.
type Server struct {
	tree  *blinktree.Tree
	cfg   Config
	ln    net.Listener
	quit  chan struct{}
	start time.Time

	mu    sync.Mutex
	conns map[*conn]struct{}
	wg    sync.WaitGroup

	stats serverStats
}

// New returns an unstarted server for tree. The server owns the tree from
// Serve onward: Shutdown closes it after draining connections.
func New(tree *blinktree.Tree, cfg Config) *Server {
	return &Server{
		tree:  tree,
		cfg:   cfg.withDefaults(),
		quit:  make(chan struct{}),
		conns: make(map[*conn]struct{}),
	}
}

// Tree returns the served tree (admin handlers and tests read through it).
func (s *Server) Tree() *blinktree.Tree { return s.tree }

// Listen binds the configured address. Call before Serve; Addr reports
// the bound address (useful with port 0).
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown. It returns nil after a
// graceful shutdown, or the listener's error.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	s.start = time.Now()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.startConn(nc)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// startConn registers a new connection and launches its goroutine pair,
// or rejects it when the connection limit is reached.
func (s *Server) startConn(nc net.Conn) {
	c := newConn(s, nc)
	s.mu.Lock()
	if s.draining() || len(s.conns) >= s.cfg.MaxConns {
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		// Best-effort courtesy reply; the client may also just see the close.
		nc.SetWriteDeadline(time.Now().Add(time.Second))
		nc.Write(errMaxConns)
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.stats.accepted.Add(1)
	s.stats.open.Add(1)
	go func() {
		defer func() {
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			s.stats.open.Add(^uint64(0))
			s.wg.Done()
		}()
		c.serve()
	}()
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// Shutdown stops the server gracefully: it stops accepting, interrupts
// each connection's next read, lets commands already received finish
// executing and their replies flush, aborts transactions still open, and
// finally closes the tree (making every completed operation durable). If
// ctx expires first, remaining connections are closed forcibly; the tree
// is still closed. Shutdown is idempotent; later calls return nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	select {
	case <-s.quit:
		s.mu.Unlock()
		return nil
	default:
	}
	close(s.quit)
	if s.ln != nil {
		s.ln.Close()
	}
	// Kick every blocked read; readers then observe draining() and wind
	// down after the command currently executing, if any, completes.
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return s.tree.Close()
}

// errMaxConns is the pre-encoded reject reply for over-limit accepts.
var errMaxConns = []byte("-ERR max connections reached\r\n")

// verbHandler executes one command (args[0] is the verb) and appends the
// reply frame to dst.
type verbHandler func(c *conn, args [][]byte, dst []byte) []byte

// verb is one dispatch-table entry.
type verb struct {
	// arity is the exact argument count, verb included.
	arity int
	// idx is the verb's dense index into the per-verb stats arrays,
	// assigned at init from the sorted verb names.
	idx int
	fn  verbHandler
}

// verbs is the server's dispatch table — the authoritative list of wire
// verbs this server implements. PROTOCOL.md must document every verb
// registered here; the repo doc lint (doc_lint_test.go) parses this
// literal and fails the build on an undocumented or phantom verb.
var verbs = map[string]*verb{
	"GET":    {arity: 2},
	"SET":    {arity: 3},
	"DEL":    {arity: 2},
	"SCAN":   {arity: 4},
	"BEGIN":  {arity: 1},
	"COMMIT": {arity: 1},
	"ABORT":  {arity: 1},
	"PING":   {arity: 1},
	"INFO":   {arity: 1},
}

// Handlers are wired here rather than in the literal above: INFO's handler
// reaches Stats, which iterates verbs, and a method reference in the
// initializer would make that an initialization cycle.
func init() {
	for name, fn := range map[string]verbHandler{
		"GET":    (*conn).cmdGet,
		"SET":    (*conn).cmdSet,
		"DEL":    (*conn).cmdDel,
		"SCAN":   (*conn).cmdScan,
		"BEGIN":  (*conn).cmdBegin,
		"COMMIT": (*conn).cmdCommit,
		"ABORT":  (*conn).cmdAbort,
		"PING":   (*conn).cmdPing,
		"INFO":   (*conn).cmdInfo,
	} {
		verbs[name].fn = fn
	}
}

// VerbNames returns the registered wire verbs in sorted order.
func VerbNames() []string { return append([]string(nil), verbNames...) }

// verbNames is the sorted verb list; verbs[name].idx indexes it.
var verbNames []string

func init() {
	for name := range verbs {
		verbNames = append(verbNames, name)
	}
	// Small fixed set: insertion sort keeps init dependency-free.
	for i := 1; i < len(verbNames); i++ {
		for j := i; j > 0 && verbNames[j] < verbNames[j-1]; j-- {
			verbNames[j], verbNames[j-1] = verbNames[j-1], verbNames[j]
		}
	}
	for i, name := range verbNames {
		verbs[name].idx = i
	}
}

// info renders the INFO payload.
func (s *Server) info() []byte {
	st := s.Stats()
	var b strings.Builder
	add := func(k string, v any) { fmt.Fprintf(&b, "%s:%v\r\n", k, v) }
	add("server", "blinkd")
	add("version", buildinfo.Version())
	add("go", buildinfo.GoVersion())
	add("uptime_seconds", strconv.FormatInt(int64(time.Since(s.start)/time.Second), 10))
	add("connections_open", st.Open)
	add("connections_accepted", st.Accepted)
	add("connections_rejected", st.Rejected)
	total := st.Unknown
	for _, n := range st.Commands {
		total += n
	}
	add("commands_total", total)
	for _, name := range verbNames {
		add("commands_"+strings.ToLower(name), st.Commands[name])
	}
	add("pipeline_depth_max", st.PipelineMaxDepth)
	add("txns_begun", st.TxnBegins)
	add("txns_committed", st.TxnCommits)
	add("txns_aborted", st.TxnAborts)
	add("tree_height", s.tree.Height())
	add("tree_pages", s.tree.Pages())
	return []byte(b.String())
}

// errorsIsAny reports whether err matches any of targets.
func errorsIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
