package server

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	blinktree "blinktree"
	"blinktree/internal/resp"
)

// startServer launches a server over a fresh volatile tree and returns it
// with its address. Shutdown (which closes the tree) runs in cleanup unless
// the test already shut it down.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	tree, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := New(tree, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && err != blinktree.ErrClosed {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, srv.Addr().String()
}

func dial(t *testing.T, addr string) *resp.Client {
	t.Helper()
	c, err := resp.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	c.SetDeadline(time.Now().Add(30 * time.Second))
	return c
}

// TestAllVerbs drives every registered wire verb through one connection and
// checks each reply shape against PROTOCOL.md.
func TestAllVerbs(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("PING: %v", err)
	}
	if err := c.Set([]byte("alpha"), []byte("1")); err != nil {
		t.Fatalf("SET: %v", err)
	}
	if err := c.Set([]byte("beta"), []byte("2")); err != nil {
		t.Fatalf("SET: %v", err)
	}
	val, ok, err := c.Get([]byte("alpha"))
	if err != nil || !ok || string(val) != "1" {
		t.Fatalf("GET alpha = %q, %v, %v", val, ok, err)
	}
	if _, ok, err := c.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("GET missing: ok=%v err=%v", ok, err)
	}

	// SCAN over [alpha, zzz) limited to 10: both keys, key/value flattened.
	rep, err := c.DoStr("SCAN", "alpha", "zzz", "10")
	if err != nil {
		t.Fatalf("SCAN: %v", err)
	}
	if rep.Kind != resp.KindArray || len(rep.Array) != 4 {
		t.Fatalf("SCAN reply = %+v", rep)
	}
	if string(rep.Array[0].Bulk) != "alpha" || string(rep.Array[2].Bulk) != "beta" {
		t.Fatalf("SCAN keys = %q, %q", rep.Array[0].Bulk, rep.Array[2].Bulk)
	}

	// Transaction verbs: BEGIN, transactional SET, COMMIT.
	for _, step := range []struct{ cmd, want string }{
		{"BEGIN", "OK"},
	} {
		rep, err := c.DoStr(step.cmd)
		if err != nil || rep.Str != step.want {
			t.Fatalf("%s = %+v, %v", step.cmd, rep, err)
		}
	}
	if err := c.Set([]byte("gamma"), []byte("3")); err != nil {
		t.Fatalf("txn SET: %v", err)
	}
	if rep, err := c.DoStr("COMMIT"); err != nil || rep.Str != "OK" {
		t.Fatalf("COMMIT = %+v, %v", rep, err)
	}
	if _, ok, _ := c.Get([]byte("gamma")); !ok {
		t.Fatal("committed key gamma missing")
	}

	// ABORT rolls back.
	if rep, err := c.DoStr("BEGIN"); err != nil || rep.Str != "OK" {
		t.Fatalf("BEGIN = %+v, %v", rep, err)
	}
	if err := c.Set([]byte("delta"), []byte("4")); err != nil {
		t.Fatalf("txn SET: %v", err)
	}
	if rep, err := c.DoStr("ABORT"); err != nil || rep.Str != "OK" {
		t.Fatalf("ABORT = %+v, %v", rep, err)
	}
	if _, ok, _ := c.Get([]byte("delta")); ok {
		t.Fatal("aborted key delta visible")
	}

	// DEL: 1 then 0.
	if deleted, err := c.Del([]byte("alpha")); err != nil || !deleted {
		t.Fatalf("DEL alpha = %v, %v", deleted, err)
	}
	if deleted, err := c.Del([]byte("alpha")); err != nil || deleted {
		t.Fatalf("DEL alpha again = %v, %v", deleted, err)
	}

	// INFO is a bulk of key:value lines.
	rep, err = c.DoStr("INFO")
	if err != nil || rep.Kind != resp.KindBulk {
		t.Fatalf("INFO = %+v, %v", rep, err)
	}
	info := string(rep.Bulk)
	for _, want := range []string{"server:blinkd", "commands_get:", "txns_committed:1", "tree_height:"} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO missing %q:\n%s", want, info)
		}
	}
}

// TestErrorReplies checks the wire error codes: ERR for unknown verbs and
// arity misuse, TXN for transaction-state misuse.
func TestErrorReplies(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)
	defer c.Close()

	cases := []struct {
		args []string
		code string
	}{
		{[]string{"NOPE"}, "ERR"},
		{[]string{"GET"}, "ERR"},
		{[]string{"SET", "k"}, "ERR"},
		{[]string{"PING", "x"}, "ERR"},
		{[]string{"COMMIT"}, "TXN"},
		{[]string{"ABORT"}, "TXN"},
		{[]string{"SCAN", "a", "b", "-5"}, "ERR"},
		{[]string{"SET", "", "v"}, "ERR"}, // empty key rejected by the tree
	}
	for _, tc := range cases {
		rep, err := c.DoStr(tc.args...)
		if err != nil {
			t.Fatalf("%v: transport error %v", tc.args, err)
		}
		if !rep.IsError() || rep.ErrorCode() != tc.code {
			t.Errorf("%v = %+v, want -%s", tc.args, rep, tc.code)
		}
	}

	// Double BEGIN is a TXN error and leaves the first transaction usable.
	if rep, _ := c.DoStr("BEGIN"); rep.Str != "OK" {
		t.Fatalf("BEGIN = %+v", rep)
	}
	if rep, _ := c.DoStr("BEGIN"); !rep.IsError() || rep.ErrorCode() != "TXN" {
		t.Fatalf("second BEGIN = %+v", rep)
	}
	if rep, _ := c.DoStr("ABORT"); rep.Str != "OK" {
		t.Fatalf("ABORT after double BEGIN = %+v", rep)
	}
}

// TestPipelinedOrdering floods one connection with interleaved SET/GET
// pipelines from the client side and checks that replies come back exactly
// in request order. Run under -race this also exercises the reader/writer
// pair for data races.
func TestPipelinedOrdering(t *testing.T) {
	_, addr := startServer(t, Config{WriteQueue: 8}) // small queue: force backpressure
	c := dial(t, addr)
	defer c.Close()

	const n = 500
	for i := 0; i < n; i++ {
		if err := c.SendStr("SET", fmt.Sprintf("k%04d", i), fmt.Sprintf("v%04d", i)); err != nil {
			t.Fatalf("send SET %d: %v", i, err)
		}
		if err := c.SendStr("GET", fmt.Sprintf("k%04d", i)); err != nil {
			t.Fatalf("send GET %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < n; i++ {
		rep, err := c.Recv()
		if err != nil {
			t.Fatalf("recv SET reply %d: %v", i, err)
		}
		if rep.Kind != resp.KindSimple || rep.Str != "OK" {
			t.Fatalf("SET reply %d = %+v", i, rep)
		}
		rep, err = c.Recv()
		if err != nil {
			t.Fatalf("recv GET reply %d: %v", i, err)
		}
		if want := fmt.Sprintf("v%04d", i); string(rep.Bulk) != want {
			t.Fatalf("GET reply %d = %q, want %q (reply order violated)", i, rep.Bulk, want)
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after draining", c.Pending())
	}
}

// TestConcurrentConnections runs parallel pipelining clients against one
// server; with -race this is the main interleaving stress.
func TestConcurrentConnections(t *testing.T) {
	_, addr := startServer(t, Config{})
	const workers, ops = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := resp.DialTimeout(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(30 * time.Second))
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("w%dk%03d", w, i)
				if err := c.SendStr("SET", key, key); err != nil {
					errs <- err
					return
				}
				if err := c.SendStr("GET", key); err != nil {
					errs <- err
					return
				}
			}
			if err := c.Flush(); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 2*ops; i++ {
				if _, err := c.Recv(); err != nil {
					errs <- fmt.Errorf("worker %d recv %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDisconnectAbortsTxn drops a connection mid-transaction and checks the
// server rolls the transaction back: its record locks release so another
// session can write the same key, and the dirty write is not visible.
func TestDisconnectAbortsTxn(t *testing.T) {
	srv, addr := startServer(t, Config{})

	c1 := dial(t, addr)
	if rep, err := c1.DoStr("BEGIN"); err != nil || rep.Str != "OK" {
		t.Fatalf("BEGIN = %+v, %v", rep, err)
	}
	if err := c1.Set([]byte("contended"), []byte("dirty")); err != nil {
		t.Fatalf("txn SET: %v", err)
	}
	// Hard close with the transaction open.
	c1.Close()

	// The server notices the close asynchronously; wait for the abort.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().DisconnectAborts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect abort not recorded")
		}
		time.Sleep(time.Millisecond)
	}

	// A second session can now lock and write the same key immediately.
	c2 := dial(t, addr)
	defer c2.Close()
	if err := c2.Set([]byte("contended"), []byte("clean")); err != nil {
		t.Fatalf("post-disconnect SET: %v", err)
	}
	val, ok, err := c2.Get([]byte("contended"))
	if err != nil || !ok || string(val) != "clean" {
		t.Fatalf("GET contended = %q, %v, %v (dirty txn leaked?)", val, ok, err)
	}
}

// TestGracefulShutdown pipelines a batch including a COMMIT, then calls
// Shutdown while replies are in flight: every queued command's reply must
// still arrive (the in-flight commit completes), and Serve returns nil.
func TestGracefulShutdown(t *testing.T) {
	tree, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := New(tree, Config{})
	if err := srv.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	c := dial(t, srv.Addr().String())
	defer c.Close()
	c.SendStr("BEGIN")
	for i := 0; i < 50; i++ {
		c.SendStr("SET", fmt.Sprintf("g%03d", i), "v")
	}
	c.SendStr("COMMIT")
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Wait until the server has started executing the batch, then shut down
	// concurrently with the in-flight pipeline.
	deadline := time.Now().Add(5 * time.Second)
	for srv.CommandCount("SET") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never started executing")
		}
		time.Sleep(100 * time.Microsecond)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// All 52 replies must arrive despite the concurrent shutdown.
	for i := 0; i < 52; i++ {
		rep, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d during shutdown: %v", i, err)
		}
		if rep.IsError() {
			t.Fatalf("reply %d is error: %+v", i, rep)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := srv.Stats().TxnCommits; got != 1 {
		t.Fatalf("TxnCommits = %d, want 1", got)
	}
	// Tree is closed; further dials are refused or die immediately.
	if nc, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second); err == nil {
		nc.Close()
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestConnLimit checks the MaxConns reject path: the over-limit client gets
// the -ERR courtesy reply and is closed.
func TestConnLimit(t *testing.T) {
	srv, addr := startServer(t, Config{MaxConns: 2})
	c1, c2 := dial(t, addr), dial(t, addr)
	defer c1.Close()
	defer c2.Close()
	if err := c1.Ping(); err != nil {
		t.Fatalf("c1 PING: %v", err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatalf("c2 PING: %v", err)
	}

	c3 := dial(t, addr)
	defer c3.Close()
	rep, err := c3.DoStr("PING")
	if err == nil && (!rep.IsError() || rep.ErrorCode() != "ERR") {
		t.Fatalf("over-limit PING = %+v, want -ERR or closed conn", rep)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejected connection not counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIdleTimeout checks that a silent connection is closed and counted.
func TestIdleTimeout(t *testing.T) {
	srv, addr := startServer(t, Config{IdleTimeout: 50 * time.Millisecond})
	c := dial(t, addr)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("PING: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().IdleClosed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("PING succeeded on idle-closed connection")
	}
}

// TestProtoErrorClosesConn sends malformed framing and expects the -PROTO
// reply followed by connection close.
func TestProtoErrorClosesConn(t *testing.T) {
	srv, addr := startServer(t, Config{})
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := nc.Write([]byte("GET inline-commands-not-supported\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 512)
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(string(buf[:n]), "-PROTO ") {
		t.Fatalf("reply = %q, want -PROTO prefix", buf[:n])
	}
	// Connection must be closed afterwards: next read hits EOF.
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection still open after protocol error")
	}
	if got := srv.Stats().ProtoErrors; got != 1 {
		t.Fatalf("ProtoErrors = %d, want 1", got)
	}
}

// TestAdminHandler scrapes the combined admin endpoint in every format.
func TestAdminHandler(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dial(t, addr)
	defer c.Close()
	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("SET: %v", err)
	}

	ts := httptest.NewServer(AdminHandler(srv))
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer res.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := res.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	prom := get("/metrics?format=prometheus")
	for _, want := range []string{
		"blinktree_ops_total",
		"blinktree_server_connections",
		`blinktree_server_commands_total{verb="SET"} 1`,
		"blinktree_server_verb_latency_seconds_bucket",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus scrape missing %q", want)
		}
	}

	jsonDoc := get("/metrics")
	for _, want := range []string{`"server"`, `"commands"`, `"pipeline"`} {
		if !strings.Contains(jsonDoc, want) {
			t.Errorf("expvar scrape missing %q", want)
		}
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("healthz = %q", body)
	}
}
