package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"blinktree/internal/page"
	"blinktree/internal/storage"
	"blinktree/internal/wal"
)

// testObj is a minimal Object: a page-sized blob with an LSN header.
type testObj struct {
	lsn  wal.LSN
	data byte // fill byte, for identity checks
	mu   sync.Mutex
}

func (o *testObj) PageLSN() wal.LSN {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lsn
}

func (o *testObj) Marshal(pageSize int) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	buf := make([]byte, pageSize)
	buf[0] = byte(o.lsn)
	buf[1] = o.data
	return buf, nil
}

type testCodec struct {
	loads atomic.Uint64
}

func (c *testCodec) Unmarshal(data []byte) (Object, error) {
	c.loads.Add(1)
	return &testObj{lsn: wal.LSN(data[0]), data: data[1]}, nil
}

func newTestPool(t *testing.T, capacity int) (*Pool, storage.Store, *testCodec) {
	t.Helper()
	store := storage.NewMemStore(128)
	codec := &testCodec{}
	return NewPool(store, nil, codec, capacity), store, codec
}

// allocObj allocates a store page holding a testObj with the given fill.
func allocObj(t *testing.T, p *Pool, store storage.Store, fill byte) page.PageID {
	t.Helper()
	id, err := store.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(id, &testObj{data: fill}); err != nil {
		t.Fatal(err)
	}
	p.Unpin(id, true)
	return id
}

func TestFetchHitReturnsSameObject(t *testing.T) {
	p, store, codec := newTestPool(t, 4)
	id := allocObj(t, p, store, 7)
	a, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("two fetches of a resident page returned different objects")
	}
	if codec.loads.Load() != 0 {
		t.Fatal("resident page was reloaded from store")
	}
	p.Unpin(id, false)
	p.Unpin(id, false)
	s := p.Snapshot()
	if s.Hits != 2 {
		t.Fatalf("hits = %d, want 2", s.Hits)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	p, store, codec := newTestPool(t, 2)
	a := allocObj(t, p, store, 1)
	b := allocObj(t, p, store, 2)
	// Fetching a third page must evict one of the first two and write it
	// back (both are dirty).
	c := allocObj(t, p, store, 3)
	_ = c
	s := p.Snapshot()
	if s.Evictions == 0 || s.WriteBacks == 0 {
		t.Fatalf("stats = %+v, want evictions and writebacks", s)
	}
	// Whichever of a/b was evicted must reload with its data intact.
	for _, id := range []page.PageID{a, b} {
		obj, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		got := obj.(*testObj).data
		want := byte(1)
		if id == b {
			want = 2
		}
		if got != want {
			t.Fatalf("page %d data = %d, want %d", id, got, want)
		}
		p.Unpin(id, false)
	}
	if codec.loads.Load() == 0 {
		t.Fatal("no reload happened despite eviction")
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	p, store, _ := newTestPool(t, 2)
	a := allocObj(t, p, store, 1)
	b := allocObj(t, p, store, 2)
	// Pin both.
	if _, err := p.Fetch(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(b); err != nil {
		t.Fatal(err)
	}
	// A third page cannot enter: everything is pinned.
	id, _ := store.Allocate()
	if err := p.Insert(id, &testObj{}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("Insert with all pinned: %v, want ErrPoolFull", err)
	}
	p.Unpin(a, false)
	if err := p.Insert(id, &testObj{}); err != nil {
		t.Fatalf("Insert after unpin: %v", err)
	}
	p.Unpin(id, false)
	p.Unpin(b, false)
}

func TestUnpinUnderflowPanics(t *testing.T) {
	p, store, _ := newTestPool(t, 2)
	id := allocObj(t, p, store, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	p.Unpin(id, false)
}

func TestMarkDirtyRequiresPin(t *testing.T) {
	p, store, _ := newTestPool(t, 2)
	id := allocObj(t, p, store, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDirty of unpinned page did not panic")
		}
	}()
	p.MarkDirty(id)
}

func TestDiscardDropsWithoutWriteBack(t *testing.T) {
	p, store, _ := newTestPool(t, 4)
	id, _ := store.Allocate()
	if err := p.Insert(id, &testObj{data: 9}); err != nil {
		t.Fatal(err)
	}
	p.Discard(id)
	if p.Resident(id) {
		t.Fatal("discarded page still resident")
	}
	if s := p.Snapshot(); s.WriteBacks != 0 {
		t.Fatalf("Discard wrote back: %+v", s)
	}
}

func TestFlushAllPersistsDirtyPages(t *testing.T) {
	p, store, _ := newTestPool(t, 4)
	id := allocObj(t, p, store, 42)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw, err := store.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if raw[1] != 42 {
		t.Fatalf("store image byte = %d, want 42", raw[1])
	}
}

func TestWALRuleOnWriteBack(t *testing.T) {
	store := storage.NewMemStore(128)
	dev := wal.NewMemDevice()
	log, err := wal.NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(store, log, &testCodec{}, 4)

	// Log a record, stamp the page with its LSN, do not flush.
	lsn, err := log.Append(&wal.Record{Type: wal.TBegin, Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := store.Allocate()
	if err := p.Insert(id, &testObj{lsn: lsn, data: 1}); err != nil {
		t.Fatal(err)
	}
	p.Unpin(id, true)
	if log.FlushedLSN() != 0 {
		t.Fatal("log flushed prematurely")
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if log.FlushedLSN() < lsn {
		t.Fatalf("WAL rule violated: page written with FlushedLSN=%d < pageLSN=%d",
			log.FlushedLSN(), lsn)
	}
}

func TestFetchMissingPageFails(t *testing.T) {
	p, _, _ := newTestPool(t, 4)
	if _, err := p.Fetch(999); err == nil {
		t.Fatal("Fetch of unallocated page succeeded")
	}
	// The failed frame must not poison later fetches of other pages.
	if p.Resident(999) {
		t.Fatal("failed frame left resident")
	}
}

func TestConcurrentFetchSingleLoad(t *testing.T) {
	p, store, codec := newTestPool(t, 8)
	id := allocObj(t, p, store, 5)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Force out of cache.
	p2 := NewPool(store, nil, codec, 8)
	codec.loads.Store(0)

	var wg sync.WaitGroup
	objs := make([]Object, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obj, err := p2.Fetch(id)
			if err != nil {
				t.Error(err)
				return
			}
			objs[i] = obj
		}(i)
	}
	wg.Wait()
	if codec.loads.Load() != 1 {
		t.Fatalf("loads = %d, want 1 (deduplicated)", codec.loads.Load())
	}
	for i := 1; i < 16; i++ {
		if objs[i] != objs[0] {
			t.Fatal("concurrent fetches returned different objects")
		}
	}
	for i := 0; i < 16; i++ {
		p2.Unpin(id, false)
	}
}

func TestConcurrentChurn(t *testing.T) {
	p, store, _ := newTestPool(t, 4)
	var ids []page.PageID
	for i := 0; i < 16; i++ {
		ids = append(ids, allocObj(t, p, store, byte(i)))
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(seed*31+i*7)%len(ids)]
				obj, err := p.Fetch(id)
				if err != nil {
					t.Errorf("fetch %d: %v", id, err)
					return
				}
				to := obj.(*testObj)
				to.mu.Lock()
				want := byte((int(id) - 1) % 16)
				_ = want
				to.mu.Unlock()
				p.Unpin(id, i%3 == 0)
			}
		}(g)
	}
	wg.Wait()
	// Every page must still carry its original fill byte after churn.
	for i, id := range ids {
		obj, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := obj.(*testObj).data; got != byte(i) {
			t.Fatalf("page %d data = %d, want %d", id, got, i)
		}
		p.Unpin(id, false)
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	p, store, _ := newTestPool(t, 4)
	id := allocObj(t, p, store, 1)
	if err := p.Insert(id, &testObj{}); err == nil {
		t.Fatal("duplicate Insert succeeded")
	}
}

func TestSnapshotCounts(t *testing.T) {
	p, store, _ := newTestPool(t, 4)
	id := allocObj(t, p, store, 1)
	if _, err := p.Fetch(id); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.Resident != 1 || s.Pinned != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	p.Unpin(id, false)
	if s := p.Snapshot(); s.Pinned != 0 {
		t.Fatalf("pinned after unpin = %d", s.Pinned)
	}
}

func BenchmarkFetchHit(b *testing.B) {
	store := storage.NewMemStore(128)
	codec := &testCodec{}
	p := NewPool(store, nil, codec, 16)
	id, _ := store.Allocate()
	if err := p.Insert(id, &testObj{data: 1}); err != nil {
		b.Fatal(err)
	}
	p.Unpin(id, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := p.Fetch(id)
		if err != nil {
			b.Fatal(err)
		}
		_ = obj
		p.Unpin(id, false)
	}
}

func ExamplePool() {
	store := storage.NewMemStore(128)
	pool := NewPool(store, nil, &testCodec{}, 8)
	id, _ := store.Allocate()
	_ = pool.Insert(id, &testObj{data: 3})
	pool.Unpin(id, true)
	obj, _ := pool.Fetch(id)
	fmt.Println(obj.(*testObj).data)
	pool.Unpin(id, false)
	// Output: 3
}

// slowObj is a testObj whose Marshal blocks until released, holding the
// frame in stateEvicting (pool mutex dropped) for as long as the test needs.
type slowObj struct {
	testObj
	started chan struct{} // closed when Marshal begins
	release chan struct{} // Marshal returns after this closes
}

func (o *slowObj) Marshal(pageSize int) ([]byte, error) {
	close(o.started)
	<-o.release
	return o.testObj.Marshal(pageSize)
}

// TestConcurrentMissDuringEviction reproduces the duplicate-frame race: a
// miss makes room by evicting, which releases the pool mutex during
// write-back; a second miss for the same page in that window must not
// overwrite the first loader's frame when it resumes. With the bug, the two
// loaders get distinct frames for one page and their unpins cross,
// underflowing the pin count (panic "Unpin of unpinned page").
func TestConcurrentMissDuringEviction(t *testing.T) {
	p, store, _ := newTestPool(t, 2)
	// Two dirty slow-marshal victims fill the pool.
	mkSlow := func(fill byte) (page.PageID, *slowObj) {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		o := &slowObj{
			testObj: testObj{data: fill},
			started: make(chan struct{}),
			release: make(chan struct{}),
		}
		if err := p.Insert(id, o); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id, true) // dirty: eviction must write back (slowly)
		return id, o
	}
	_, v1 := mkSlow(1)
	_, v2 := mkSlow(2)
	// The contended page: on the store but not resident.
	x, err := store.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(x, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}

	// Fetch only; pins are dropped at the end, so the first loader's pin is
	// still outstanding when the second resumes — with the bug the second
	// unpin below underflows.
	fetch := func(done chan error) {
		_, err := p.Fetch(x)
		done <- err
	}
	// Loader A misses x and starts evicting one victim; once its write-back
	// has the mutex dropped, loader B misses x too and evicts the other.
	// Releasing A first lets it finish its load while B is still evicting;
	// B must then adopt A's frame instead of installing its own.
	doneA := make(chan error, 1)
	doneB := make(chan error, 1)
	go fetch(doneA)
	<-v1.started
	go fetch(doneB)
	<-v2.started
	close(v1.release)
	if err := <-doneA; err != nil {
		t.Fatal(err)
	}
	close(v2.release)
	if err := <-doneB; err != nil {
		t.Fatal(err)
	}
	p.Unpin(x, false)
	p.Unpin(x, false)
	s := p.Snapshot()
	if s.Pinned != 0 {
		t.Fatalf("pins leaked: %d pages still pinned", s.Pinned)
	}
}
